The SCP replay debugger — §5's "debug the SC part with SC tools":

  $ racedet replay unguarded_handoff --seed 2 --watch x --watch flag
  SC-prefix replay (4 steps, SCP fully covered):
    0 scp  issue(P0)  write[data] x=42
    1 scp  issue(P1)  read[acquire] flag=1  write[sync] flag=1
    2 scp  issue(P0)  write[release] flag=0
    3 scp  issue(P1)  read[data] x=42
  
  watch x: [step 0] 42
  
  watch flag: [step 0] 1 [step 2] 0



The cache-coherent machine is a drop-in alternative backend:

  $ racedet detect fig1b --machine cache --model RCsc --seed 4
  No data races detected.
  By Condition 3.4(1) the execution was sequentially consistent.

  $ racedet detect counter_racy --machine cache --model WO --seed 1
  1 data race(s) in 1 first partition(s) — each contains at least
  one race that also occurs in a sequentially consistent execution:
  
  partition #0 (2 events, 1 data races)
    E0(P0 comp P1:read-counter) <-> E1(P1 comp P2:read-counter) on counter
  [2]


The cost model quantifies what an SC debug mode would give up:

  $ racedet cost fig1a
  model      cycles       stalls
  SC             40            0
  TSO            40           19
  WO             40           19
  RCsc           40           19
  DRF0           40           19
  DRF1           40           19
