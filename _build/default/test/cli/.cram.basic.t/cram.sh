  $ racedet list
  $ racedet show fig1a
  $ racedet show no_such_program
