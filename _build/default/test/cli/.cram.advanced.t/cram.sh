  $ racedet replay unguarded_handoff --seed 2 --watch x --watch flag
  $ racedet detect fig1b --machine cache --model RCsc --seed 4
  $ racedet detect counter_racy --machine cache --model WO --seed 1
  $ racedet cost fig1a
