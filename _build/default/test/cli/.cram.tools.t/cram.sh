  $ racedet graph fig1a --seed 1
  $ racedet graph guarded_handoff --seed 4 | grep so1
  $ racedet gen --kind racefree --seed 3 > g.race
  $ racedet enumerate g.race | tail -1
  $ racedet gen --kind racy --seed 5 --procs 3 --ops 5 > r.race
  $ racedet detect r.race --seed 1 > /dev/null 2>&1; echo "exit $?"
  $ racedet sweep fig1b -n 10
  $ racedet trace unguarded_handoff --seed 2 --split -o split.d
  $ ls split.d
  $ racedet analyze split.d > /dev/null 2>&1; echo "exit $?"
