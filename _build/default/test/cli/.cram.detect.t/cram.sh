  $ racedet detect fig1b --model WO --seed 3
  $ racedet detect fig1a --model RCsc --seed 1
  $ racedet detect handoff.race --model DRF1 --seed 5
  $ racedet enumerate handoff.race
  $ cat > broken.race <<'EOF'
  > program broken
  > loc x
  > proc {
  >   r := x + 1
  > }
  > EOF
  $ racedet detect broken.race
