Graphviz export of the augmented hb1 graph (Figure 3 style):

  $ racedet graph fig1a --seed 1
  digraph augmented_hb1 {
    rankdir=TB; node [shape=box, fontsize=10];
    subgraph cluster_P0 {
      label="P0";
      e0 [label="E0: R{} W{x,y}", style=filled, fillcolor=lightyellow];
    }
    subgraph cluster_P1 {
      label="P1";
      e1 [label="E1: R{x,y} W{}", style=filled, fillcolor=lightyellow];
    }
    e0 -> e1 [dir=both, color=red, penwidth=2];
  }

  $ racedet graph guarded_handoff --seed 4 | grep so1
    e1 -> e2 [style=dashed, label="so1"];

Random program generation round-trips through the whole toolchain:

  $ racedet gen --kind racefree --seed 3 > g.race
  $ racedet enumerate g.race | tail -1
  the program is data-race-free: every weak execution is SC

  $ racedet gen --kind racy --seed 5 --procs 3 --ops 5 > r.race
  $ racedet detect r.race --seed 1 > /dev/null 2>&1; echo "exit $?"
  exit 2

Fuzz sweeps summarize how often races materialize per model:

  $ racedet sweep fig1b -n 10
  model      runs  racy-runs   races(max)    truncated
  SC           10          0            0            0
  TSO          10          0            0            0
  WO           10          0            0            0
  RCsc         10          0            0            0
  DRF0         10          0            0            0
  DRF1         10          0            0            0

Split (per-processor) trace directories round-trip through analyze:

  $ racedet trace unguarded_handoff --seed 2 --split -o split.d
  wrote 5 events (2 computation, 3 sync) to split.d
  $ ls split.d
  proc0.trace
  proc1.trace
  sync.trace
  $ racedet analyze split.d > /dev/null 2>&1; echo "exit $?"
  exit 2
