  $ racedet trace unguarded_handoff --model WO --seed 2 -o u.trace
  $ racedet analyze u.trace
  $ racedet analyze u.trace --reconstruct-so1
  $ head -c 120 u.trace > cut.trace
  $ racedet analyze cut.trace
  $ racedet check unguarded_handoff -n 4
  $ racedet check unguarded_handoff --exhaustive
