(* Exhaustive weak-model exploration: the strongest form of the paper's
   validation.  For litmus-sized programs we enumerate EVERY schedule a
   weak model admits (issues and retirements) and check the claims over
   the whole envelope, not a sample:

   - data-race-free programs are sequentially consistent on every weak
     execution (the DRF guarantee behind WO/RCsc/DRF0/DRF1);
   - Condition 3.4 holds on every weak execution (Theorem 3.5);
   - WO's behaviours are contained in RCsc's (the envelope ordering);
   - the SC behaviours are contained in every weak model's. *)

open Racedetect

let explore_weak ~model p =
  let r =
    Memsim.Enumerate.explore_weak ~limit:2_000_000 ~model (fun () ->
        Minilang.Interp.source p)
  in
  if not r.Memsim.Enumerate.complete then
    Alcotest.failf "weak exploration incomplete for %s" p.Minilang.Ast.name;
  r.Memsim.Enumerate.executions

let explore_sc p =
  let r = Memsim.Enumerate.explore ~limit:2_000_000 (fun () -> Minilang.Interp.source p) in
  if not r.Memsim.Enumerate.complete then Alcotest.fail "SC enumeration incomplete";
  r.Memsim.Enumerate.executions

let behaviour_subset a b =
  List.for_all
    (fun ea -> List.exists (Memsim.Exec.same_program_behaviour ea) b)
    (Memsim.Enumerate.behaviours a)

(* ------------------------------------------------------------------ *)

let test_fig1a_envelopes () =
  let p = Minilang.Programs.fig1a in
  let sc = explore_sc p in
  let outcome (e : Memsim.Exec.t) =
    Array.to_list e.Memsim.Exec.ops
    |> List.filter_map (fun (o : Memsim.Op.t) ->
           if o.Memsim.Op.kind = Memsim.Op.Read then Some o.Memsim.Op.value else None)
  in
  List.iter
    (fun model ->
      let weak = explore_weak ~model p in
      (* SC behaviours are a strict subset of the weak envelope *)
      Alcotest.(check bool) "SC within weak" true (behaviour_subset sc weak);
      let outcomes = List.map outcome weak |> List.sort_uniq compare in
      Alcotest.(check (list (list int)))
        (Memsim.Model.name model ^ " all four outcomes")
        [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ]
        outcomes)
    Memsim.Model.weak

let test_tso_between_sc_and_wo () =
  (* fig1a: TSO's FIFO buffer preserves the x-then-y write order, so the
     paper's (1,0) anomaly is impossible; dekker's (0,0) survives *)
  let outcome (e : Memsim.Exec.t) =
    Array.to_list e.Memsim.Exec.ops
    |> List.filter_map (fun (o : Memsim.Op.t) ->
           if o.Memsim.Op.kind = Memsim.Op.Read then Some o.Memsim.Op.value else None)
  in
  let tso_fig1a = explore_weak ~model:Memsim.Model.TSO Minilang.Programs.fig1a in
  Alcotest.(check bool) "fig1a (1,0) impossible under TSO" false
    (List.exists (fun e -> outcome e = [ 1; 0 ]) tso_fig1a);
  let tso_dekker = explore_weak ~model:Memsim.Model.TSO Minilang.Programs.dekker in
  Alcotest.(check bool) "dekker (0,0) possible under TSO" true
    (List.exists (fun e -> outcome e = [ 0; 0 ]) tso_dekker);
  (* envelope ordering: SC within TSO within WO *)
  List.iter
    (fun p ->
      let sc = explore_sc p in
      let tso = explore_weak ~model:Memsim.Model.TSO p in
      let wo = explore_weak ~model:Memsim.Model.WO p in
      Alcotest.(check bool) "SC within TSO" true (behaviour_subset sc tso);
      Alcotest.(check bool) "TSO within WO" true (behaviour_subset tso wo))
    [ Minilang.Programs.fig1a; Minilang.Programs.dekker;
      Minilang.Programs.mp_data_flag ]

let test_condition_34_tso () =
  (* TSO is "a weak implementation" in the paper's sense too: it must obey
     Condition 3.4 — over its entire envelope *)
  List.iter
    (fun p ->
      let pool = explore_sc p in
      List.iter
        (fun e ->
          let v = Condition.check ~sc:pool e in
          if not v.Condition.holds then
            Alcotest.failf "Condition 3.4 violated on TSO for %s" p.Minilang.Ast.name)
        (Memsim.Enumerate.behaviours
           (explore_weak ~model:Memsim.Model.TSO p)))
    [ Minilang.Programs.fig1a; Minilang.Programs.dekker;
      Minilang.Programs.unguarded_handoff ]

let test_wo_within_rcsc () =
  List.iter
    (fun p ->
      let wo = explore_weak ~model:Memsim.Model.WO p in
      let rcsc = explore_weak ~model:Memsim.Model.RCsc p in
      Alcotest.(check bool)
        (p.Minilang.Ast.name ^ ": WO behaviours within RCsc")
        true (behaviour_subset wo rcsc);
      Alcotest.(check bool)
        (p.Minilang.Ast.name ^ ": at least as many RCsc schedules")
        true
        (List.length rcsc >= List.length wo))
    [ Minilang.Programs.fig1a; Minilang.Programs.unguarded_handoff;
      Minilang.Programs.mp_data_flag ]

let test_drf_programs_always_sc () =
  (* the DRF guarantee, exhaustively: every weak execution of a
     data-race-free program matches an SC execution read for read *)
  List.iter
    (fun p ->
      let sc = explore_sc p in
      List.iter
        (fun model ->
          let weak = explore_weak ~model p in
          List.iter
            (fun e ->
              if not (List.exists (Memsim.Exec.same_program_behaviour e) sc) then
                Alcotest.failf "%s on %s: weak execution outside the SC set"
                  p.Minilang.Ast.name (Memsim.Model.name model))
            weak)
        Memsim.Model.weak)
    [ Minilang.Programs.guarded_handoff; Minilang.Programs.mp_release_acquire;
      Minilang.Programs.disjoint ]

let test_condition_34_exhaustively () =
  (* Theorem 3.5 over the ENTIRE envelope of each program *)
  let tiny_cfg =
    { Minilang.Gen.n_procs = 2; n_shared = 2; n_locks = 1; ops_per_proc = 3; sync_freq = 3 }
  in
  let programs =
    [ Minilang.Programs.fig1a; Minilang.Programs.unguarded_handoff;
      Minilang.Programs.mp_data_flag;
      Minilang.Gen.random_racy ~config:tiny_cfg ~seed:11 ();
      Minilang.Gen.random_racy ~config:tiny_cfg ~seed:12 () ]
  in
  List.iter
    (fun p ->
      let pool = explore_sc p in
      List.iter
        (fun model ->
          let weak = explore_weak ~model p in
          List.iter
            (fun e ->
              let v = Condition.check ~sc:pool e in
              if not v.Condition.holds then
                Alcotest.failf "Condition 3.4 violated: %s on %s"
                  p.Minilang.Ast.name (Memsim.Model.name model))
            (Memsim.Enumerate.behaviours weak))
        Memsim.Model.weak)
    programs

let test_theorems_41_42_exhaustively () =
  let p = Minilang.Programs.unguarded_handoff in
  let pool = explore_sc p in
  List.iter
    (fun model ->
      List.iter
        (fun e ->
          let a = Postmortem.analyze_execution e in
          let races = Postmortem.data_races a <> [] in
          let first = Postmortem.first_partitions a in
          Alcotest.(check bool) "Thm 4.1" races (first <> []);
          if first <> [] then begin
            let v = Condition.check ~sc:pool e in
            Alcotest.(check bool) "SCP witness exists" true
              (v.Condition.scp_witness <> None)
          end)
        (explore_weak ~model p))
    Memsim.Model.weak

let test_weak_exploration_incompleteness_flag () =
  (* spinning programs cannot be explored exhaustively; the flag says so *)
  let r =
    Memsim.Enumerate.explore_weak ~max_steps:30 ~limit:200 ~model:Memsim.Model.WO
      (fun () -> Minilang.Interp.source Minilang.Programs.fig1b)
  in
  Alcotest.(check bool) "incomplete" false r.Memsim.Enumerate.complete

let test_behaviours_dedup () =
  let p = Minilang.Programs.disjoint in
  let weak = explore_weak ~model:Memsim.Model.WO p in
  (* disjoint has a single behaviour: no shared values flow anywhere *)
  Alcotest.(check int) "one behaviour" 1
    (List.length (Memsim.Enumerate.behaviours weak));
  Alcotest.(check bool) "many schedules" true (List.length weak > 1)

let () =
  Alcotest.run "exhaustive"
    [
      ( "envelopes",
        [
          Alcotest.test_case "fig1a all outcomes on every weak model" `Slow
            test_fig1a_envelopes;
          Alcotest.test_case "WO within RCsc" `Slow test_wo_within_rcsc;
          Alcotest.test_case "TSO between SC and WO" `Slow test_tso_between_sc_and_wo;
          Alcotest.test_case "Condition 3.4 on TSO" `Slow test_condition_34_tso;
          Alcotest.test_case "behaviour dedup" `Quick test_behaviours_dedup;
        ] );
      ( "drf-guarantee",
        [ Alcotest.test_case "DRF programs are SC on every weak execution" `Slow
            test_drf_programs_always_sc ] );
      ( "condition-3.4",
        [ Alcotest.test_case "holds on the entire envelope" `Slow
            test_condition_34_exhaustively ] );
      ( "theorems",
        [ Alcotest.test_case "4.1/4.2 on the entire envelope" `Slow
            test_theorems_41_42_exhaustively ] );
      ( "limits",
        [ Alcotest.test_case "incompleteness is reported" `Quick
            test_weak_exploration_incompleteness_flag ] );
    ]
