(* End-to-end integration: a ground-truth verdict table over every stock
   program, every model, both machines; plus a scale check of the whole
   pipeline on a workload three orders of magnitude above litmus size. *)

open Racedetect

(* Expected detector verdict per program.
   [`Racy_always]     — every adversarial execution exhibits data races
                        (the racing accesses are unconditional);
   [`Racy_sometimes]  — races appear only on executions taking a branch;
   [`Race_free]       — no execution may report a race. *)
let ground_truth =
  [
    ("fig1a", `Racy_always);
    ("fig1b", `Race_free);
    ("queue_bug", `Racy_always);  (* the QEmpty read always races *)
    ("dekker", `Racy_always);
    ("mp_data_flag", `Racy_always);  (* the flag accesses always race *)
    ("mp_release_acquire", `Race_free);
    ("guarded_handoff", `Race_free);  (* the branch guards every access *)
    ("unguarded_handoff", `Racy_sometimes);
    ("counter_locked", `Race_free);
    ("counter_racy", `Racy_always);
    ("disjoint", `Race_free);
    ("peterson", `Racy_always);
    ("lazy_init", `Racy_always);  (* the fast-path check always races *)
    ("barrier_phases", `Race_free);
  ]

let machines = [ ("buffer", `Buffer); ("cache", `Cache) ]

let run_on machine model seed p =
  match machine with
  | `Buffer ->
    Minilang.Interp.run ~model ~sched:(Memsim.Sched.adversarial ~seed ()) p
  | `Cache ->
    Coherence.Cmachine.run_program ~model ~sched:(Memsim.Sched.adversarial ~seed ()) p

let test_ground_truth_table () =
  List.iter
    (fun (name, expected) ->
      let p =
        match Minilang.Programs.find name with
        | Some p -> p
        | None -> Alcotest.failf "unknown stock program %s" name
      in
      List.iter
        (fun (mname, machine) ->
          List.iter
            (fun model ->
              if not (machine = `Cache && Memsim.Model.fifo_buffer model) then begin
                let verdicts =
                  List.init 12 (fun seed ->
                      let e = run_on machine model seed p in
                      if e.Memsim.Exec.truncated then None
                      else
                        Some
                          (not
                             (Postmortem.race_free (Postmortem.analyze_execution e))))
                  |> List.filter_map (fun v -> v)
                in
                let ctx =
                  Printf.sprintf "%s on %s/%s" name mname (Memsim.Model.name model)
                in
                match expected with
                | `Race_free ->
                  Alcotest.(check bool) (ctx ^ ": never racy") true
                    (List.for_all not verdicts)
                | `Racy_always ->
                  Alcotest.(check bool) (ctx ^ ": always racy") true
                    (verdicts <> [] && List.for_all (fun v -> v) verdicts)
                | `Racy_sometimes ->
                  (* must never crash and must be racy for at least one seed
                     across the whole sweep (checked globally below) *)
                  ()
              end)
            Memsim.Model.all)
        machines)
    ground_truth

let test_racy_sometimes_programs () =
  List.iter
    (fun name ->
      let p = Option.get (Minilang.Programs.find name) in
      let racy_seen = ref false and clean_seen = ref false in
      for seed = 0 to 40 do
        let e = run_on `Buffer Memsim.Model.WO seed p in
        if Postmortem.race_free (Postmortem.analyze_execution e) then clean_seen := true
        else racy_seen := true
      done;
      Alcotest.(check bool) (name ^ ": both verdicts occur") true
        (!racy_seen && !clean_seen))
    [ "unguarded_handoff" ]

(* every stock program's verdict agrees between the recorded-so1 analysis,
   the reconstructed-so1 analysis, and a codec round trip *)
let test_analysis_paths_agree () =
  List.iter
    (fun (name, p) ->
      let e = run_on `Buffer Memsim.Model.RCsc 5 p in
      let t = Tracing.Trace.of_execution e in
      let verdict so1 tr = Postmortem.race_free (Postmortem.analyze ~so1 tr) in
      let v1 = verdict `Recorded t in
      let v2 = verdict `Reconstructed t in
      let v3 =
        match Tracing.Codec.decode (Tracing.Codec.encode t) with
        | Ok t' -> verdict `Recorded t'
        | Error msg -> Alcotest.failf "%s: codec failed: %s" name msg
      in
      Alcotest.(check bool) (name ^ ": reconstructed agrees") v1 v2;
      Alcotest.(check bool) (name ^ ": codec agrees") v1 v3)
    Minilang.Programs.all

(* the pipeline at three orders of magnitude above litmus size *)
let test_scale () =
  let p = Minilang.Programs.queue_bug ~region:400 () in
  let started = Unix.gettimeofday () in
  let e =
    Minilang.Interp.run ~max_steps:100_000 ~model:Memsim.Model.WO
      ~sched:(Memsim.Sched.adversarial ~seed:11 ())
      p
  in
  Alcotest.(check bool) "terminates" false e.Memsim.Exec.truncated;
  (* P3 alone scans 400 cells; if P2 dequeues, the count triples *)
  Alcotest.(check bool) "hundreds of operations" true (Memsim.Exec.n_ops e > 400);
  let a = Postmortem.analyze_execution e in
  Alcotest.(check bool) "races found" true (Postmortem.data_races a <> []);
  Alcotest.(check bool) "first partitions non-empty" true
    (Postmortem.first_partitions a <> []);
  let t = a.Postmortem.trace in
  (match Tracing.Codec.decode (Tracing.Codec.encode t) with
   | Ok t' -> Alcotest.(check bool) "codec at scale" true (Tracing.Codec.equivalent t t')
   | Error msg -> Alcotest.failf "codec at scale: %s" msg);
  let elapsed = Unix.gettimeofday () -. started in
  Alcotest.(check bool)
    (Printf.sprintf "pipeline under 10s (took %.2fs)" elapsed)
    true (elapsed < 10.0)

let test_big_barrier () =
  let p = Minilang.Programs.barrier_phases ~n_procs:6 () in
  List.iter
    (fun seed ->
      let e = run_on `Buffer Memsim.Model.DRF1 seed p in
      Alcotest.(check bool) "terminates" false e.Memsim.Exec.truncated;
      Alcotest.(check bool) "race free at 6 processors" true
        (Postmortem.race_free (Postmortem.analyze_execution e)))
    (List.init 10 (fun s -> s))

let () =
  Alcotest.run "integration"
    [
      ( "ground-truth",
        [
          Alcotest.test_case "verdict table" `Slow test_ground_truth_table;
          Alcotest.test_case "branch-dependent programs" `Quick
            test_racy_sometimes_programs;
        ] );
      ( "consistency",
        [ Alcotest.test_case "analysis paths agree" `Quick test_analysis_paths_agree ] );
      ( "scale",
        [
          Alcotest.test_case "queue region 400" `Slow test_scale;
          Alcotest.test_case "six-processor barrier" `Slow test_big_barrier;
        ] );
    ]
