(* Tests for the graph substrate: bit sets, digraphs, Tarjan SCC and the
   reachability closure used by every happens-before query. *)

open Graphlib

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)
(* ------------------------------------------------------------------ *)

let test_bitset_basic () =
  let s = Bitset.create 70 in
  Alcotest.(check bool) "fresh set empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 7;
  Bitset.add s 8;
  Bitset.add s 69;
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal s);
  Alcotest.(check bool) "mem 7" true (Bitset.mem s 7);
  Alcotest.(check bool) "mem 9" false (Bitset.mem s 9);
  Alcotest.(check bool) "mem out of range" false (Bitset.mem s 700);
  Bitset.remove s 7;
  Alcotest.(check bool) "removed" false (Bitset.mem s 7);
  Alcotest.(check (list int)) "elements sorted" [ 0; 8; 69 ] (Bitset.elements s)

let test_bitset_add_out_of_range () =
  let s = Bitset.create 4 in
  Alcotest.check_raises "add out of range"
    (Invalid_argument "Bitset.add: out of range") (fun () -> Bitset.add s 4)

let test_bitset_set_ops () =
  let a = Bitset.of_list 32 [ 1; 2; 3; 30 ] in
  let b = Bitset.of_list 32 [ 2; 3; 4 ] in
  Alcotest.(check (list int)) "inter" [ 2; 3 ] (Bitset.elements (Bitset.inter a b));
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4; 30 ]
    (Bitset.elements (Bitset.union a b));
  Alcotest.(check bool) "intersects" true (Bitset.intersects a b);
  Alcotest.(check bool) "disjoint" false
    (Bitset.intersects (Bitset.of_list 32 [ 0 ]) (Bitset.of_list 32 [ 1 ]));
  Alcotest.(check bool) "subset yes" true
    (Bitset.subset (Bitset.of_list 32 [ 2; 3 ]) a);
  Alcotest.(check bool) "subset no" false (Bitset.subset a b);
  Alcotest.(check bool) "equal self" true (Bitset.equal a (Bitset.copy a))

let test_bitset_capacity_mismatch () =
  let a = Bitset.create 8 and b = Bitset.create 16 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Bitset.inter: capacity mismatch") (fun () ->
      ignore (Bitset.inter a b))

let test_bitset_clear_copy_independent () =
  let a = Bitset.of_list 16 [ 1; 5 ] in
  let b = Bitset.copy a in
  Bitset.clear a;
  Alcotest.(check bool) "a cleared" true (Bitset.is_empty a);
  Alcotest.(check (list int)) "b untouched" [ 1; 5 ] (Bitset.elements b)

(* qcheck properties *)

let small_set_gen =
  QCheck.Gen.(
    let* n = int_range 1 128 in
    let* xs = list_size (int_bound 40) (int_bound (n - 1)) in
    return (n, xs))

let arb_set = QCheck.make ~print:(fun (n, xs) ->
    Printf.sprintf "(%d, [%s])" n (String.concat ";" (List.map string_of_int xs)))
    small_set_gen

let prop_union_commutes =
  QCheck.Test.make ~name:"bitset union commutes" ~count:200
    (QCheck.pair arb_set arb_set)
    (fun ((n1, xs), (n2, ys)) ->
      let n = max n1 n2 in
      let a = Bitset.of_list n (List.filter (fun x -> x < n) xs)
      and b = Bitset.of_list n (List.filter (fun y -> y < n) ys) in
      Bitset.equal (Bitset.union a b) (Bitset.union b a))

let prop_inter_subset =
  QCheck.Test.make ~name:"bitset inter is subset of both" ~count:200
    (QCheck.pair arb_set arb_set)
    (fun ((n1, xs), (n2, ys)) ->
      let n = max n1 n2 in
      let a = Bitset.of_list n (List.filter (fun x -> x < n) xs)
      and b = Bitset.of_list n (List.filter (fun y -> y < n) ys) in
      let i = Bitset.inter a b in
      Bitset.subset i a && Bitset.subset i b)

let prop_elements_roundtrip =
  QCheck.Test.make ~name:"bitset of_list/elements roundtrip" ~count:200 arb_set
    (fun (n, xs) ->
      let s = Bitset.of_list n xs in
      Bitset.equal s (Bitset.of_list n (Bitset.elements s)))

(* ------------------------------------------------------------------ *)
(* Digraph                                                             *)
(* ------------------------------------------------------------------ *)

let test_digraph_edges () =
  let g = Digraph.create 4 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 1 2;
  Alcotest.(check int) "dedup edges" 2 (Digraph.n_edges g);
  Alcotest.(check bool) "mem 0->1" true (Digraph.mem_edge g 0 1);
  Alcotest.(check bool) "no 1->0" false (Digraph.mem_edge g 1 0);
  Alcotest.(check (list int)) "succ order" [ 1 ] (Digraph.succ g 0)

let test_digraph_out_of_range () =
  let g = Digraph.create 2 in
  Alcotest.check_raises "bad node" (Invalid_argument "Digraph: node out of range")
    (fun () -> Digraph.add_edge g 0 2)

let test_digraph_transpose () =
  let g = Digraph.of_edges 3 [ (0, 1); (1, 2) ] in
  let t = Digraph.transpose g in
  Alcotest.(check bool) "transposed edge" true (Digraph.mem_edge t 1 0);
  Alcotest.(check bool) "transposed edge 2" true (Digraph.mem_edge t 2 1);
  Alcotest.(check int) "edge count preserved" 2 (Digraph.n_edges t)

let test_digraph_paths () =
  let g = Digraph.of_edges 5 [ (0, 1); (1, 2); (3, 4) ] in
  Alcotest.(check bool) "0 reaches 2" true (Digraph.has_path g 0 2);
  Alcotest.(check bool) "2 not reach 0" false (Digraph.has_path g 2 0);
  Alcotest.(check bool) "0 not reach 4" false (Digraph.has_path g 0 4);
  Alcotest.(check bool) "self" true (Digraph.has_path g 3 3)

let test_digraph_topo () =
  let g = Digraph.of_edges 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  (match Digraph.topological_order g with
   | None -> Alcotest.fail "expected acyclic"
   | Some order ->
     let pos = Array.make 4 0 in
     List.iteri (fun i u -> pos.(u) <- i) order;
     Digraph.iter_edges g (fun u v ->
         if pos.(u) >= pos.(v) then Alcotest.fail "order violates an edge"));
  let cyc = Digraph.of_edges 2 [ (0, 1); (1, 0) ] in
  Alcotest.(check bool) "cyclic has no topo order" true
    (Digraph.topological_order cyc = None)

(* ------------------------------------------------------------------ *)
(* Scc + Reach                                                         *)
(* ------------------------------------------------------------------ *)

let test_scc_two_cycles () =
  let g = Digraph.of_edges 6 [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 3) ] in
  let scc = Scc.compute g in
  Alcotest.(check int) "3 components" 3 scc.Scc.n_components;
  Alcotest.(check bool) "0,1,2 together" true
    (Scc.same_component scc 0 1 && Scc.same_component scc 1 2);
  Alcotest.(check bool) "3,4 together" true (Scc.same_component scc 3 4);
  Alcotest.(check bool) "0 and 3 apart" false (Scc.same_component scc 0 3);
  Alcotest.(check bool) "5 alone" true
    (not (Scc.same_component scc 5 0) && not (Scc.same_component scc 5 3));
  (* topological numbering: the {0,1,2} component feeds {3,4} *)
  Alcotest.(check bool) "topological ids" true
    (scc.Scc.component.(0) < scc.Scc.component.(3))

let test_scc_acyclic_trivial () =
  let g = Digraph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let scc = Scc.compute g in
  Alcotest.(check int) "n components" 4 scc.Scc.n_components;
  Alcotest.(check bool) "trivial" true (Scc.is_trivial scc)

let test_scc_self_loop () =
  let g = Digraph.of_edges 2 [ (0, 0); (0, 1) ] in
  let scc = Scc.compute g in
  Alcotest.(check int) "self loop is its own component" 2 scc.Scc.n_components

let test_reach_queries () =
  let g = Digraph.of_edges 6 [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 3) ] in
  let r = Reach.compute g in
  Alcotest.(check bool) "0 reaches 4 (through both cycles)" true (Reach.reaches r 0 4);
  Alcotest.(check bool) "4 does not reach 0" false (Reach.reaches r 4 0);
  Alcotest.(check bool) "node reaches itself" true (Reach.reaches r 5 5);
  Alcotest.(check bool) "0<->2 both ways" true
    (Reach.reaches r 0 2 && Reach.reaches r 2 0);
  Alcotest.(check bool) "0 and 5 unordered" false (Reach.ordered r 0 5);
  Alcotest.(check bool) "1 and 4 ordered" true (Reach.ordered r 1 4)

let test_reach_empty_graph () =
  let r = Reach.compute (Digraph.create 0) in
  let scc = Reach.scc r in
  Alcotest.(check int) "no components" 0 scc.Scc.n_components

let test_digraph_copy_independent () =
  let g = Digraph.of_edges 3 [ (0, 1) ] in
  let c = Digraph.copy g in
  Digraph.add_edge c 1 2;
  Alcotest.(check int) "copy grew" 2 (Digraph.n_edges c);
  Alcotest.(check int) "original untouched" 1 (Digraph.n_edges g)

let test_digraph_fold_edges () =
  let g = Digraph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let sum = Digraph.fold_edges g ~init:0 ~f:(fun acc u v -> acc + u + v) in
  Alcotest.(check int) "edge endpoint sum" 9 sum;
  Alcotest.(check int) "out degree" 1 (Digraph.out_degree g 1)

let test_pp_smoke () =
  let g = Digraph.of_edges 2 [ (0, 1) ] in
  let s = Format.asprintf "%a" Digraph.pp g in
  Alcotest.(check bool) "renders nodes and edge" true
    (Astring.String.is_infix ~affix:"0 -> 1" s);
  let b = Bitset.of_list 4 [ 1; 3 ] in
  Alcotest.(check string) "bitset rendering" "{1, 3}" (Format.asprintf "%a" Bitset.pp b)

let test_condensation_node_count () =
  let g = Digraph.of_edges 5 [ (0, 1); (1, 0); (1, 2); (3, 4); (4, 3) ] in
  let r = Reach.compute g in
  Alcotest.(check int) "condensation nodes = components"
    (Reach.scc r).Scc.n_components
    (Digraph.n_nodes (Reach.condensation r))

(* qcheck: Reach agrees with direct DFS on random graphs. *)

let arb_graph =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 20 in
      let* m = int_bound 40 in
      let* edges = list_size (return m) (pair (int_bound (n - 1)) (int_bound (n - 1))) in
      return (n, edges))
  in
  QCheck.make
    ~print:(fun (n, edges) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat ";" (List.map (fun (u, v) -> Printf.sprintf "%d->%d" u v) edges)))
    gen

let prop_reach_matches_dfs =
  QCheck.Test.make ~name:"Reach matches per-query DFS" ~count:100 arb_graph
    (fun (n, edges) ->
      let g = Digraph.of_edges n edges in
      let r = Reach.compute g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if Reach.reaches r u v <> Digraph.has_path g u v then ok := false
        done
      done;
      !ok)

let prop_scc_mutual_reachability =
  QCheck.Test.make ~name:"SCC iff mutually reachable" ~count:100 arb_graph
    (fun (n, edges) ->
      let g = Digraph.of_edges n edges in
      let scc = Scc.compute g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          let mutual = Digraph.has_path g u v && Digraph.has_path g v u in
          if Scc.same_component scc u v <> mutual then ok := false
        done
      done;
      !ok)

let prop_condensation_acyclic =
  QCheck.Test.make ~name:"condensation is acyclic" ~count:100 arb_graph
    (fun (n, edges) ->
      let g = Digraph.of_edges n edges in
      let r = Reach.compute g in
      Digraph.topological_order (Reach.condensation r) <> None)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "graphlib"
    [
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "add out of range" `Quick test_bitset_add_out_of_range;
          Alcotest.test_case "set operations" `Quick test_bitset_set_ops;
          Alcotest.test_case "capacity mismatch" `Quick test_bitset_capacity_mismatch;
          Alcotest.test_case "clear/copy independence" `Quick
            test_bitset_clear_copy_independent;
        ] );
      ("bitset-props", qsuite [ prop_union_commutes; prop_inter_subset; prop_elements_roundtrip ]);
      ( "digraph",
        [
          Alcotest.test_case "edges" `Quick test_digraph_edges;
          Alcotest.test_case "out of range" `Quick test_digraph_out_of_range;
          Alcotest.test_case "transpose" `Quick test_digraph_transpose;
          Alcotest.test_case "paths" `Quick test_digraph_paths;
          Alcotest.test_case "topological order" `Quick test_digraph_topo;
        ] );
      ( "digraph-extra",
        [
          Alcotest.test_case "copy independence" `Quick test_digraph_copy_independent;
          Alcotest.test_case "fold edges" `Quick test_digraph_fold_edges;
          Alcotest.test_case "pretty printing" `Quick test_pp_smoke;
          Alcotest.test_case "condensation node count" `Quick test_condensation_node_count;
        ] );
      ( "scc",
        [
          Alcotest.test_case "two cycles" `Quick test_scc_two_cycles;
          Alcotest.test_case "acyclic trivial" `Quick test_scc_acyclic_trivial;
          Alcotest.test_case "self loop" `Quick test_scc_self_loop;
        ] );
      ( "reach",
        [
          Alcotest.test_case "queries" `Quick test_reach_queries;
          Alcotest.test_case "empty graph" `Quick test_reach_empty_graph;
        ] );
      ( "graph-props",
        qsuite [ prop_reach_matches_dfs; prop_scc_mutual_reachability; prop_condensation_acyclic ] );
    ]
