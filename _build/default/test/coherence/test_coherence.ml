(* The cache-coherent machine: MSI protocol sanity, the delayed-
   invalidation weakness, and the mechanism-independence of the paper's
   results (the same detection stack, Condition 3.4 included, works on a
   completely different weak-hardware realization). *)

open Coherence

let run ?(model = Memsim.Model.WO) ?n_lines ?warm ~seed p =
  Cmachine.run_program ?n_lines ?warm ~model ~sched:(Memsim.Sched.adversarial ~seed ()) p

let value_of_label (e : Memsim.Exec.t) label =
  Array.to_list e.Memsim.Exec.ops
  |> List.find_map (fun (o : Memsim.Op.t) ->
         if o.Memsim.Op.label = Some label then Some o.Memsim.Op.value else None)

let seeds n = List.init n (fun s -> s)

(* the lazy-invalidation machine cannot implement TSO *)
let cache_models =
  List.filter (fun m -> not (Memsim.Model.fifo_buffer m)) Memsim.Model.all

(* ------------------------------------------------------------------ *)
(* Cache container                                                     *)
(* ------------------------------------------------------------------ *)

let test_cache_basics () =
  let c = Cache.create ~n_lines:4 in
  Alcotest.(check bool) "empty" true (Cache.lookup c 3 = None);
  ignore (Cache.insert c { Cache.loc = 3; state = Cache.Shared; value = 7; writer = 5 });
  (match Cache.lookup c 3 with
   | Some l ->
     Alcotest.(check int) "value" 7 l.Cache.value;
     Alcotest.(check int) "writer" 5 l.Cache.writer
   | None -> Alcotest.fail "line missing");
  (* 7 maps to the same set as 3 (mod 4): conflict eviction *)
  let victim =
    Cache.insert c { Cache.loc = 7; state = Cache.Modified; value = 9; writer = 6 }
  in
  Alcotest.(check bool) "victim returned" true
    (match victim with Some v -> v.Cache.loc = 3 | None -> false);
  Alcotest.(check bool) "3 gone" true (Cache.lookup c 3 = None);
  Cache.invalidate c 7;
  Alcotest.(check bool) "7 gone" true (Cache.lookup c 7 = None);
  Alcotest.(check int) "eviction counted" 1 (Cache.stats c).Cache.evictions

let test_cache_update_requires_presence () =
  let c = Cache.create ~n_lines:2 in
  Alcotest.(check bool) "update missing raises" true
    (try
       Cache.update c 0 ~value:1 ~writer:0 ~state:Cache.Shared;
       false
     with Invalid_argument _ -> true)

let test_cache_warm () =
  let c = Cache.create ~n_lines:8 in
  Cache.warm c ~n_locs:8 ~init:[ (2, 42) ];
  (match Cache.lookup c 2 with
   | Some l -> Alcotest.(check int) "warm init value" 42 l.Cache.value
   | None -> Alcotest.fail "warm line missing");
  (match Cache.lookup c 5 with
   | Some l -> Alcotest.(check int) "warm default 0" 0 l.Cache.value
   | None -> Alcotest.fail "warm line missing")

(* ------------------------------------------------------------------ *)
(* Figures on the coherent machine                                     *)
(* ------------------------------------------------------------------ *)

let fig1a_outcome e = (value_of_label e "P2:read-y", value_of_label e "P2:read-x")

let test_fig1a_weak_stale_reads () =
  List.iter
    (fun model ->
      let found =
        List.exists
          (fun seed -> fig1a_outcome (run ~model ~seed Minilang.Programs.fig1a) = (Some 1, Some 0))
          (seeds 300)
      in
      Alcotest.(check bool)
        (Memsim.Model.name model ^ " shows new-y-old-x via stale cache line")
        true found)
    Memsim.Model.weak

let test_fig1a_sc_never () =
  List.iter
    (fun seed ->
      let e =
        Cmachine.run_program ~model:Memsim.Model.SC
          ~sched:(Memsim.Sched.random ~seed) Minilang.Programs.fig1a
      in
      if fig1a_outcome e = (Some 1, Some 0) then Alcotest.fail "SC violated SC")
    (seeds 300)

let test_fig1b_drf_guarantee () =
  List.iter
    (fun model ->
      List.iter
        (fun seed ->
          let e = run ~model ~seed Minilang.Programs.fig1b in
          Alcotest.(check bool) "terminates" false e.Memsim.Exec.truncated;
          Alcotest.(check (option int)) "y" (Some 1) (value_of_label e "P2:read-y");
          Alcotest.(check (option int)) "x" (Some 1) (value_of_label e "P2:read-x"))
        (seeds 40))
    cache_models

let test_queue_bug_stale_dequeue () =
  let p = Minilang.Programs.queue_bug ~region:8 ~stale:3 () in
  let found =
    List.exists
      (fun seed ->
        let e = run ~model:Memsim.Model.WO ~seed p in
        value_of_label e "P2:read-qempty" = Some 0
        && value_of_label e "P2:dequeue" = Some 3)
      (seeds 2000)
  in
  Alcotest.(check bool) "stale dequeue reproduces on the coherent machine" true found

(* ------------------------------------------------------------------ *)
(* WO vs RCsc: who flushes at a release                                 *)
(* ------------------------------------------------------------------ *)

(* P1 writes x; P2 (holding a warm stale copy of x) releases a flag and
   then reads x.  WO flushes the invalidation queue at the release, so the
   read is fresh; RCsc does not, so the read can be stale. *)
let release_then_read =
  let open Minilang.Build in
  program ~name:"release_then_read" ~locs:[ "x"; "l" ]
    [
      [ store "x" (i 1) ~label:"P1:write-x" ];
      [ unset "l" ~label:"P2:release"; load "rx" "x" ~label:"P2:read-x" ];
    ]

let stale_after_release ~model =
  let commit_of (e : Memsim.Exec.t) label =
    Array.to_list e.Memsim.Exec.ops
    |> List.find_map (fun (o : Memsim.Op.t) ->
           if o.Memsim.Op.label = Some label then
             Some e.Memsim.Exec.commit.(o.Memsim.Op.id)
           else None)
  in
  List.exists
    (fun seed ->
      let e = run ~model ~seed release_then_read in
      (* a stale read is only forbidden (under WO) when P1's write reached
         the bus before the release that should have flushed it *)
      value_of_label e "P2:read-x" = Some 0
      &&
      match (commit_of e "P1:write-x", commit_of e "P2:release") with
      | Some w, Some rel -> w < rel
      | _ -> false)
    (seeds 500)

let test_release_flush_wo_vs_rcsc () =
  Alcotest.(check bool) "WO: release flushes, never stale" false
    (stale_after_release ~model:Memsim.Model.WO);
  Alcotest.(check bool) "RCsc: release does not flush, stale possible" true
    (stale_after_release ~model:Memsim.Model.RCsc)

(* ------------------------------------------------------------------ *)
(* Protocol invariants                                                 *)
(* ------------------------------------------------------------------ *)

let prop_sc_rf_latest_write =
  QCheck.Test.make ~name:"SC coherent machine: rf is the latest preceding write"
    ~count:60
    QCheck.(int_bound 10_000)
    (fun seed ->
      let p = Minilang.Gen.random_racy ~seed () in
      let e =
        Cmachine.run_program ~model:Memsim.Model.SC
          ~sched:(Memsim.Sched.random ~seed:(seed + 1)) p
      in
      Array.for_all
        (fun (o : Memsim.Op.t) ->
          o.Memsim.Op.kind <> Memsim.Op.Read
          ||
          let latest =
            Array.to_list e.Memsim.Exec.ops
            |> List.filter (fun (w : Memsim.Op.t) ->
                   w.Memsim.Op.kind = Memsim.Op.Write
                   && w.Memsim.Op.loc = o.Memsim.Op.loc
                   && e.Memsim.Exec.commit.(w.Memsim.Op.id)
                      < e.Memsim.Exec.commit.(o.Memsim.Op.id))
            |> List.fold_left
                 (fun acc (w : Memsim.Op.t) ->
                   match acc with
                   | None -> Some w
                   | Some b ->
                     if e.Memsim.Exec.commit.(w.Memsim.Op.id)
                        > e.Memsim.Exec.commit.(b.Memsim.Op.id)
                     then Some w
                     else acc)
                 None
          in
          match latest with
          | None -> e.Memsim.Exec.rf.(o.Memsim.Op.id) = -1
          | Some w -> e.Memsim.Exec.rf.(o.Memsim.Op.id) = w.Memsim.Op.id)
        e.Memsim.Exec.ops)

let prop_per_location_monotonicity =
  (* a processor's successive reads of one location never observe values
     older than ones it already saw (writes to each location are totally
     ordered by the bus) *)
  QCheck.Test.make ~name:"coherent reads never go backwards" ~count:80
    QCheck.(pair (int_bound 10_000) (int_bound 4))
    (fun (seed, mi) ->
      let model = List.nth cache_models (mi mod List.length cache_models) in
      let p = Minilang.Gen.random_racy ~seed () in
      let e = run ~model ~seed:(seed + 1) p in
      (* order writes per location by commit *)
      let write_rank = Hashtbl.create 16 in
      Array.to_list e.Memsim.Exec.ops
      |> List.filter (fun (o : Memsim.Op.t) -> o.Memsim.Op.kind = Memsim.Op.Write)
      |> List.sort (fun (a : Memsim.Op.t) b ->
             compare e.Memsim.Exec.commit.(a.Memsim.Op.id)
               e.Memsim.Exec.commit.(b.Memsim.Op.id))
      |> List.iteri (fun i (o : Memsim.Op.t) -> Hashtbl.replace write_rank o.Memsim.Op.id i);
      let rank (o : Memsim.Op.t) =
        let w = e.Memsim.Exec.rf.(o.Memsim.Op.id) in
        if w < 0 then -1 else Hashtbl.find write_rank w
      in
      Array.for_all
        (fun proc_ops ->
          let per_loc = Hashtbl.create 8 in
          Array.for_all
            (fun (o : Memsim.Op.t) ->
              if o.Memsim.Op.kind <> Memsim.Op.Read then true
              else begin
                let prev =
                  Option.value ~default:(-1) (Hashtbl.find_opt per_loc o.Memsim.Op.loc)
                in
                let cur = rank o in
                Hashtbl.replace per_loc o.Memsim.Op.loc (max prev cur);
                cur >= prev || prev = -1
              end)
            proc_ops)
        e.Memsim.Exec.by_proc)

(* ------------------------------------------------------------------ *)
(* Mechanism independence: the paper's results on the coherent machine  *)
(* ------------------------------------------------------------------ *)

let sc_pool p =
  let r = Memsim.Enumerate.explore ~limit:500_000 (fun () -> Minilang.Interp.source p) in
  if not r.Memsim.Enumerate.complete then Alcotest.fail "enumeration incomplete";
  r.Memsim.Enumerate.executions

let test_condition_34_on_coherent_machine () =
  let programs =
    [ Minilang.Programs.fig1a; Minilang.Programs.unguarded_handoff;
      Minilang.Programs.mp_data_flag; Minilang.Programs.guarded_handoff;
      Minilang.Gen.random_racy ~seed:3 (); Minilang.Gen.random_racefree ~seed:4 () ]
  in
  List.iter
    (fun p ->
      let pool = sc_pool p in
      List.iter
        (fun model ->
          List.iter
            (fun seed ->
              let e = run ~model ~seed p in
              let v = Racedetect.Condition.check ~sc:pool e in
              if not v.Racedetect.Condition.holds then
                Alcotest.failf "Condition 3.4 violated on coherent %s (%s seed %d)"
                  p.Minilang.Ast.name (Memsim.Model.name model) seed)
            (seeds 8))
        Memsim.Model.weak)
    programs

let test_detection_pipeline_on_coherent_machine () =
  (* race-free programs stay silent, racy ones report, on this machine too *)
  List.iter
    (fun (p, expect_race) ->
      let e = run ~model:Memsim.Model.WO ~seed:1 p in
      let a = Racedetect.Postmortem.analyze_execution e in
      Alcotest.(check bool)
        (p.Minilang.Ast.name ^ " detector verdict")
        expect_race
        (not (Racedetect.Postmortem.race_free a)))
    [
      (Minilang.Programs.fig1a, true);
      (Minilang.Programs.fig1b, false);
      (Minilang.Programs.counter_locked, false);
      (Minilang.Programs.counter_racy, true);
      (Minilang.Programs.mp_release_acquire, false);
    ]

let test_theorem_41_on_coherent_machine () =
  (* Thm 4.1 is a property of the analysis, so it must hold regardless of
     which hardware produced the execution *)
  List.iter
    (fun seed ->
      let p =
        if seed mod 2 = 0 then Minilang.Gen.random_racy ~seed ()
        else Minilang.Gen.random_racefree ~seed ()
      in
      List.iter
        (fun model ->
          let e = run ~model ~seed p in
          let a = Racedetect.Postmortem.analyze_execution e in
          Alcotest.(check bool) "first partitions iff data races"
            (Racedetect.Postmortem.data_races a <> [])
            (Racedetect.Postmortem.first_partitions a <> []))
        cache_models)
    (seeds 25)

let test_counter_locked_all_models () =
  List.iter
    (fun model ->
      List.iter
        (fun seed ->
          let e = run ~model ~seed Minilang.Programs.counter_locked in
          Alcotest.(check bool) "terminates" false e.Memsim.Exec.truncated;
          Alcotest.(check int) "counter = 2" 2 e.Memsim.Exec.final_mem.(0))
        (seeds 30))
    cache_models

let test_tso_rejected () =
  Alcotest.(check bool) "TSO raises" true
    (try
       ignore
         (Cmachine.create ~model:Memsim.Model.TSO
            (Minilang.Interp.source Minilang.Programs.fig1a));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Capacity and statistics                                              *)
(* ------------------------------------------------------------------ *)

let test_cold_caches_miss () =
  let p = Minilang.Programs.fig1a in
  let src = Minilang.Interp.source p in
  let m = Cmachine.create ~warm:false ~model:Memsim.Model.WO src in
  let rec drive () =
    match Cmachine.enabled m with
    | [] -> ()
    | d :: _ -> Cmachine.perform m d; drive ()
  in
  drive ();
  let stats = Cmachine.cache_stats m in
  let total f = Array.fold_left (fun acc (s : Cache.stats) -> acc + f s) 0 stats in
  Alcotest.(check bool) "misses happened" true (total (fun s -> s.Cache.misses) > 0);
  Alcotest.(check int) "no stale hits possible cold" 0
    (total (fun s -> s.Cache.invalidations_applied))

let test_tiny_cache_still_correct () =
  (* capacity conflicts evict stale lines early, but correctness and the
     DRF guarantee are unaffected *)
  List.iter
    (fun seed ->
      let e = run ~n_lines:1 ~model:Memsim.Model.WO ~seed Minilang.Programs.fig1b in
      Alcotest.(check (option int)) "y" (Some 1) (value_of_label e "P2:read-y");
      Alcotest.(check (option int)) "x" (Some 1) (value_of_label e "P2:read-x"))
    (seeds 25)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "coherence"
    [
      ( "cache",
        [
          Alcotest.test_case "basics" `Quick test_cache_basics;
          Alcotest.test_case "update requires presence" `Quick
            test_cache_update_requires_presence;
          Alcotest.test_case "warm" `Quick test_cache_warm;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fig1a weak stale reads" `Quick test_fig1a_weak_stale_reads;
          Alcotest.test_case "fig1a SC never" `Quick test_fig1a_sc_never;
          Alcotest.test_case "fig1b DRF guarantee" `Quick test_fig1b_drf_guarantee;
          Alcotest.test_case "queue bug stale dequeue" `Quick test_queue_bug_stale_dequeue;
        ] );
      ( "models",
        [ Alcotest.test_case "WO flushes at release, RCsc does not" `Quick
            test_release_flush_wo_vs_rcsc ] );
      ("invariants", qsuite [ prop_sc_rf_latest_write; prop_per_location_monotonicity ]);
      ( "mechanism-independence",
        [
          Alcotest.test_case "Condition 3.4 holds here too" `Slow
            test_condition_34_on_coherent_machine;
          Alcotest.test_case "detector verdicts unchanged" `Quick
            test_detection_pipeline_on_coherent_machine;
          Alcotest.test_case "locked counter on all models" `Quick
            test_counter_locked_all_models;
          Alcotest.test_case "TSO rejected" `Quick test_tso_rejected;
          Alcotest.test_case "Theorem 4.1 holds here too" `Quick
            test_theorem_41_on_coherent_machine;
        ] );
      ( "capacity",
        [
          Alcotest.test_case "cold caches miss" `Quick test_cold_caches_miss;
          Alcotest.test_case "single-line cache still correct" `Quick
            test_tiny_cache_still_correct;
        ] );
    ]
