(* Extended litmus programs (Peterson, double-checked locking, barrier),
   the lockset baseline, and the SCP-replay debugger. *)

open Racedetect

let run ?(model = Memsim.Model.WO) ~seed p =
  Minilang.Interp.run ~model ~sched:(Memsim.Sched.adversarial ~seed ()) p

let value_of_label (e : Memsim.Exec.t) label =
  Array.to_list e.Memsim.Exec.ops
  |> List.find_map (fun (o : Memsim.Op.t) ->
         if o.Memsim.Op.label = Some label then Some o.Memsim.Op.value else None)

let seeds n = List.init n (fun s -> s)

(* ------------------------------------------------------------------ *)
(* Peterson                                                            *)
(* ------------------------------------------------------------------ *)

let test_peterson_sc_mutual_exclusion () =
  List.iter
    (fun seed ->
      let e =
        Minilang.Interp.run ~model:Memsim.Model.SC ~sched:(Memsim.Sched.random ~seed)
          Minilang.Programs.peterson
      in
      Alcotest.(check bool) "terminates" false e.Memsim.Exec.truncated;
      Alcotest.(check int) "counter = 2 under SC" 2 e.Memsim.Exec.final_mem.(3))
    (seeds 150)

let test_peterson_weak_violates_mutual_exclusion () =
  (* the canonical failure: both processors' flag writes sit in their
     buffers, each reads the other's flag as 0, both enter *)
  List.iter
    (fun model ->
      let broken =
        List.exists
          (fun seed ->
            let e = run ~model ~seed Minilang.Programs.peterson in
            (not e.Memsim.Exec.truncated) && e.Memsim.Exec.final_mem.(3) <> 2)
          (seeds 200)
      in
      Alcotest.(check bool)
        (Memsim.Model.name model ^ " can break Peterson")
        true broken)
    Memsim.Model.weak

let test_peterson_races_detected () =
  let e = run ~seed:0 Minilang.Programs.peterson in
  let a = Postmortem.analyze_execution e in
  Alcotest.(check bool) "races reported" true (Postmortem.data_races a <> [])

(* ------------------------------------------------------------------ *)
(* Double-checked locking                                              *)
(* ------------------------------------------------------------------ *)

let test_lazy_init_sc_always_42 () =
  List.iter
    (fun seed ->
      let e =
        Minilang.Interp.run ~model:Memsim.Model.SC ~sched:(Memsim.Sched.random ~seed)
          Minilang.Programs.lazy_init
      in
      List.iter
        (fun lbl ->
          match value_of_label e lbl with
          | Some v -> Alcotest.(check int) (lbl ^ " reads 42") 42 v
          | None -> Alcotest.fail "missing use")
        [ "P0:use"; "P1:use" ])
    (seeds 150)

let test_lazy_init_weak_stale_payload () =
  let stale_seen =
    List.exists
      (fun seed ->
        let e = run ~model:Memsim.Model.RCsc ~seed Minilang.Programs.lazy_init in
        value_of_label e "P0:use" = Some 0 || value_of_label e "P1:use" = Some 0)
      (seeds 400)
  in
  Alcotest.(check bool) "a stale payload read exists" true stale_seen

let test_lazy_init_fast_path_race_detected () =
  (* any weak execution where both processors ran has the fast-check race *)
  let e = run ~seed:1 Minilang.Programs.lazy_init in
  let a = Postmortem.analyze_execution e in
  Alcotest.(check bool) "data race on init/payload" true
    (Postmortem.data_races a <> [])

(* ------------------------------------------------------------------ *)
(* Barrier                                                             *)
(* ------------------------------------------------------------------ *)

let test_barrier_correct_everywhere () =
  let p = Minilang.Programs.barrier_phases ~n_procs:3 () in
  List.iter
    (fun model ->
      List.iter
        (fun seed ->
          let e = Minilang.Interp.run ~model ~sched:(Memsim.Sched.adversarial ~seed ()) p in
          Alcotest.(check bool) "terminates" false e.Memsim.Exec.truncated;
          (* every phase-2 read sees the neighbour's phase-1 value *)
          for me = 0 to 2 do
            match value_of_label e (Printf.sprintf "P%d:phase2-read" me) with
            | Some v ->
              Alcotest.(check int) "phase-2 sees phase-1" (100 + ((me + 1) mod 3)) v
            | None -> Alcotest.fail "phase-2 read missing"
          done;
          let a = Postmortem.analyze_execution e in
          Alcotest.(check bool) "race-free" true (Postmortem.race_free a))
        (seeds 25))
    Memsim.Model.all

(* ------------------------------------------------------------------ *)
(* Lockset                                                             *)
(* ------------------------------------------------------------------ *)

let lockset_locs ~model ~seed p =
  Lockset.flagged_locations (Lockset.check (run ~model ~seed p))

let test_lockset_clean_on_locked_counter () =
  List.iter
    (fun seed ->
      Alcotest.(check (list int)) "no violations" []
        (lockset_locs ~model:Memsim.Model.WO ~seed Minilang.Programs.counter_locked))
    (seeds 25)

let test_lockset_flags_racy_counter () =
  Alcotest.(check (list int)) "counter flagged" [ 0 ]
    (lockset_locs ~model:Memsim.Model.WO ~seed:1 Minilang.Programs.counter_racy)

let test_lockset_clean_on_fig1b () =
  (* initialization pattern: P1 writes exclusively, P2 reads holding s *)
  List.iter
    (fun seed ->
      Alcotest.(check (list int)) "no violations" []
        (lockset_locs ~model:Memsim.Model.WO ~seed Minilang.Programs.fig1b))
    (seeds 25)

(* release/acquire hand-off where the consumer also writes the payload:
   perfectly ordered by hb1 (no data race), but no lock ever protects the
   payload, so the lockset discipline cries wolf *)
let release_acquire_pingpong =
  let open Minilang.Build in
  program ~name:"ra_pingpong" ~locs:[ "data"; "flag" ]
    [
      [ store "data" (i 1); release_store "flag" (i 1) ];
      [
        acquire_load "f" "flag";
        if_ (r "f" =: i 1) [ store "data" (i 2) ~label:"P2:write-data" ] [];
      ];
    ]

let test_lockset_false_alarm_on_release_acquire () =
  let alarms = ref 0 and hb1_races = ref 0 and both_wrote = ref 0 in
  List.iter
    (fun seed ->
      let e = run ~model:Memsim.Model.SC ~seed release_acquire_pingpong in
      let a = Postmortem.analyze_execution e in
      if Postmortem.data_races a <> [] then incr hb1_races;
      if value_of_label e "P2:write-data" <> None then begin
        incr both_wrote;
        if Lockset.flagged_locations (Lockset.check e) <> [] then incr alarms
      end)
    (seeds 50);
  Alcotest.(check int) "hb1 never fires" 0 !hb1_races;
  Alcotest.(check bool) "both wrote in some runs" true (!both_wrote > 0);
  Alcotest.(check int) "lockset cries wolf every time" !both_wrote !alarms

let test_lockset_flags_peterson_and_lazy_init () =
  Alcotest.(check bool) "peterson flagged" true
    (lockset_locs ~model:Memsim.Model.WO ~seed:0 Minilang.Programs.peterson <> []);
  Alcotest.(check bool) "lazy_init flagged" true
    (lockset_locs ~model:Memsim.Model.WO ~seed:1 Minilang.Programs.lazy_init <> [])

(* lockset agrees with hb1 on lock-disciplined random programs?  It need
   not in general; but it must never flag a location no data op touches
   from two processors. *)
let prop_lockset_flags_only_shared_locations =
  QCheck.Test.make ~name:"lockset flags only multi-processor data locations" ~count:120
    QCheck.(int_bound 100_000)
    (fun seed ->
      let p = Minilang.Gen.random_racy ~seed () in
      let e = run ~seed:(seed + 1) p in
      let shared l =
        let touchers =
          Array.to_list e.Memsim.Exec.ops
          |> List.filter_map (fun (o : Memsim.Op.t) ->
                 if o.Memsim.Op.loc = l && Memsim.Op.is_data o.Memsim.Op.cls then
                   Some o.Memsim.Op.proc
                 else None)
          |> List.sort_uniq compare
        in
        List.length touchers > 1
      in
      List.for_all shared (Lockset.flagged_locations (Lockset.check e)))

(* ------------------------------------------------------------------ *)
(* SCP replay                                                          *)
(* ------------------------------------------------------------------ *)

let sc_pool p =
  let r = Memsim.Enumerate.explore (fun () -> Minilang.Interp.source p) in
  if not r.Memsim.Enumerate.complete then Alcotest.fail "enumeration incomplete";
  r.Memsim.Enumerate.executions

let test_scpreplay_covers_prefix () =
  let p = Minilang.Programs.unguarded_handoff in
  let pool = sc_pool p in
  List.iter
    (fun seed ->
      let weak = run ~seed p in
      match
        Scpreplay.of_weak_execution ~sc:pool
          ~source:(fun () -> Minilang.Interp.source p)
          weak
      with
      | None -> Alcotest.fail "no session"
      | Some s ->
        Alcotest.(check bool) "SCP covered" true s.Scpreplay.covered;
        Alcotest.(check bool) "has steps" true (s.Scpreplay.steps <> []))
    (seeds 15)

let test_scpreplay_memory_snapshots () =
  let p = Minilang.Programs.guarded_handoff in
  let pool = sc_pool p in
  let weak = run ~seed:2 p in
  match
    Scpreplay.of_weak_execution ~sc:pool
      ~source:(fun () -> Minilang.Interp.source p)
      weak
  with
  | None -> Alcotest.fail "no session"
  | Some s ->
    (* the flag (location 1) starts at 1; the watchpoint sees any change
       monotonically through the session's snapshots *)
    let w = Scpreplay.watch s 1 in
    Alcotest.(check bool) "watch non-empty" true (w <> []);
    (match w with
     | (_, first) :: _ -> Alcotest.(check int) "initial flag value" 1 first
     | [] -> ());
    (* snapshots have the right arity *)
    List.iter
      (fun st ->
        Alcotest.(check int) "snapshot size" 2 (Array.length st.Scpreplay.memory))
      s.Scpreplay.steps

let test_scpreplay_replays_sc_witness_schedule () =
  (* replaying a race-free weak execution replays a complete SC execution *)
  let p = Minilang.Programs.guarded_handoff in
  let pool = sc_pool p in
  let weak = run ~seed:0 p in
  match
    Scpreplay.of_weak_execution ~sc:pool
      ~source:(fun () -> Minilang.Interp.source p)
      weak
  with
  | None -> Alcotest.fail "no session"
  | Some s ->
    Alcotest.(check bool) "covered" true s.Scpreplay.covered;
    Alcotest.(check bool) "rendering works" true
      (String.length (Format.asprintf "%a" (Scpreplay.pp_session ?loc_name:None) s) > 0)

(* ------------------------------------------------------------------ *)
(* Release/acquire race-free generator                                 *)
(* ------------------------------------------------------------------ *)

let test_ra_generator_is_racefree_and_sc () =
  List.iter
    (fun seed ->
      let p = Minilang.Gen.random_racefree_ra ~seed () in
      let pool =
        let r =
          Memsim.Enumerate.explore ~limit:500_000 (fun () -> Minilang.Interp.source p)
        in
        if not r.Memsim.Enumerate.complete then Alcotest.fail "incomplete";
        r.Memsim.Enumerate.executions
      in
      (* data-race-free by Def 2.4: no SC execution has a data race *)
      List.iter
        (fun e ->
          let a = Postmortem.analyze_execution e in
          Alcotest.(check bool) "no data race under SC" true
            (Postmortem.data_races a = []))
        pool;
      (* and the DRF guarantee follows on the weak models *)
      List.iter
        (fun model ->
          List.iter
            (fun wseed ->
              let e = Minilang.Interp.run ~model ~sched:(Memsim.Sched.adversarial ~seed:wseed ()) p in
              Alcotest.(check bool) "weak execution is SC" true
                (List.exists (Memsim.Exec.same_program_behaviour e) pool))
            (seeds 5))
        Memsim.Model.weak)
    (List.init 8 (fun s -> s + 1))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "extensions"
    [
      ( "peterson",
        [
          Alcotest.test_case "SC mutual exclusion" `Quick test_peterson_sc_mutual_exclusion;
          Alcotest.test_case "weak violation" `Quick
            test_peterson_weak_violates_mutual_exclusion;
          Alcotest.test_case "races detected" `Quick test_peterson_races_detected;
        ] );
      ( "lazy-init",
        [
          Alcotest.test_case "SC always 42" `Quick test_lazy_init_sc_always_42;
          Alcotest.test_case "weak stale payload" `Quick test_lazy_init_weak_stale_payload;
          Alcotest.test_case "fast path race detected" `Quick
            test_lazy_init_fast_path_race_detected;
        ] );
      ( "barrier",
        [ Alcotest.test_case "correct on every model" `Quick test_barrier_correct_everywhere ] );
      ( "lockset",
        [
          Alcotest.test_case "clean on locked counter" `Quick
            test_lockset_clean_on_locked_counter;
          Alcotest.test_case "flags racy counter" `Quick test_lockset_flags_racy_counter;
          Alcotest.test_case "clean on fig1b" `Quick test_lockset_clean_on_fig1b;
          Alcotest.test_case "false alarm on release/acquire" `Quick
            test_lockset_false_alarm_on_release_acquire;
          Alcotest.test_case "flags peterson and lazy_init" `Quick
            test_lockset_flags_peterson_and_lazy_init;
        ] );
      ("lockset-props", qsuite [ prop_lockset_flags_only_shared_locations ]);
      ( "ra-generator",
        [ Alcotest.test_case "race-free and SC everywhere" `Slow
            test_ra_generator_is_racefree_and_sc ] );
      ( "scp-replay",
        [
          Alcotest.test_case "covers the prefix" `Quick test_scpreplay_covers_prefix;
          Alcotest.test_case "memory snapshots" `Quick test_scpreplay_memory_snapshots;
          Alcotest.test_case "race-free replays fully" `Quick
            test_scpreplay_replays_sc_witness_schedule;
        ] );
    ]
