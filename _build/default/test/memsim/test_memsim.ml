(* Machine-level semantics: store buffering, model drain rules, schedules,
   replay, reads-from, and the SC enumerator. *)

open Memsim

let value_of_label (e : Exec.t) label =
  match
    Array.to_list e.ops |> List.find_opt (fun (o : Op.t) -> o.label = Some label)
  with
  | Some o -> Some o.Op.value
  | None -> None

let run_program ?max_steps ~model ~sched p = Minilang.Interp.run ?max_steps ~model ~sched p

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 13 in
    if v < 0 || v >= 13 then Alcotest.fail "out of bounds"
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_split_independent () =
  let parent = Rng.create 1 in
  let child = Rng.split parent in
  let xs = List.init 20 (fun _ -> Rng.int parent 100) in
  let ys = List.init 20 (fun _ -> Rng.int child 100) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

(* ------------------------------------------------------------------ *)
(* Model                                                               *)
(* ------------------------------------------------------------------ *)

let test_model_names () =
  List.iter
    (fun m ->
      match Model.of_name (Model.name m) with
      | Some m' -> Alcotest.(check string) "roundtrip" (Model.name m) (Model.name m')
      | None -> Alcotest.fail "name roundtrip failed")
    Model.all;
  Alcotest.(check bool) "unknown name" true (Model.of_name "pso" = None)

let test_model_drain_rules () =
  (* WO and DRF0 drain on every sync class; RCsc and DRF1 only on release *)
  List.iter
    (fun m ->
      Alcotest.(check bool) "data never drains" false (Model.drains_on m Op.Data))
    Model.all;
  List.iter
    (fun m ->
      Alcotest.(check bool) "acquire drains" true (Model.drains_on m Op.Acquire);
      Alcotest.(check bool) "plain sync drains" true (Model.drains_on m Op.Plain_sync))
    [ Model.TSO; Model.WO; Model.DRF0 ];
  Alcotest.(check bool) "only TSO is FIFO" true
    (List.for_all (fun m -> Model.fifo_buffer m = (m = Model.TSO)) Model.all);
  List.iter
    (fun m ->
      Alcotest.(check bool) "acquire does not drain" false (Model.drains_on m Op.Acquire);
      Alcotest.(check bool) "release drains" true (Model.drains_on m Op.Release))
    [ Model.RCsc; Model.DRF1 ]

(* ------------------------------------------------------------------ *)
(* Fig 1a / store-buffering behaviour                                   *)
(* ------------------------------------------------------------------ *)

let fig1a_outcome e = (value_of_label e "P2:read-y", value_of_label e "P2:read-x")

let test_fig1a_sc_never_reorders () =
  (* exhaustively: no SC execution shows new-y-old-x *)
  let r = Enumerate.explore (fun () -> Minilang.Interp.source Minilang.Programs.fig1a) in
  Alcotest.(check bool) "enumeration complete" true r.Enumerate.complete;
  List.iter
    (fun e ->
      match fig1a_outcome e with
      | Some 1, Some 0 -> Alcotest.fail "SC execution violated SC"
      | _ -> ())
    r.Enumerate.executions;
  (* the interleaving count of two 2-op straight-line threads is C(4,2)=6 *)
  Alcotest.(check int) "interleavings" 6 (List.length r.Enumerate.executions)

let exists_outcome ~model ~mk_sched ~seeds p want =
  List.exists
    (fun seed ->
      let e = run_program ~model ~sched:(mk_sched seed) p in
      fig1a_outcome e = want)
    seeds

let seeds = List.init 200 (fun s -> s)

let test_fig1a_weak_reorders () =
  (* every weak model can show the paper's violation: P2 reads the new y
     but the old x (Figure 1a's discussion in §2.2) *)
  List.iter
    (fun model ->
      Alcotest.(check bool)
        (Model.name model ^ " exhibits new-y-old-x")
        true
        (exists_outcome ~model
           ~mk_sched:(fun seed -> Sched.adversarial ~seed ())
           ~seeds Minilang.Programs.fig1a (Some 1, Some 0)))
    Model.weak

let test_fig1a_eager_is_sc_like () =
  (* retiring writes immediately re-serializes everything: the violation
     disappears even on weak models *)
  List.iter
    (fun model ->
      Alcotest.(check bool)
        (Model.name model ^ " eager never shows the violation")
        false
        (exists_outcome ~model
           ~mk_sched:(fun seed -> Sched.eager ~seed)
           ~seeds Minilang.Programs.fig1a (Some 1, Some 0)))
    Model.weak

(* ------------------------------------------------------------------ *)
(* Fig 1b: data-race-free -> SC on all models                           *)
(* ------------------------------------------------------------------ *)

let test_fig1b_always_sc () =
  List.iter
    (fun model ->
      List.iter
        (fun seed ->
          let e =
            run_program ~model ~sched:(Sched.adversarial ~seed ())
              Minilang.Programs.fig1b
          in
          Alcotest.(check bool) "not truncated" false e.Exec.truncated;
          Alcotest.(check (option int)) "read y = 1" (Some 1) (value_of_label e "P2:read-y");
          Alcotest.(check (option int)) "read x = 1" (Some 1) (value_of_label e "P2:read-x"))
        (List.init 60 (fun s -> s)))
    Model.all

let test_fig1b_so1_pairing () =
  let e =
    run_program ~model:Model.WO ~sched:(Sched.random ~seed:3) Minilang.Programs.fig1b
  in
  let pairs = Exec.so1_pairs e in
  Alcotest.(check bool) "at least one release/acquire pair" true (pairs <> []);
  List.iter
    (fun ((rel : Op.t), (acq : Op.t)) ->
      Alcotest.(check bool) "release is a write" true (rel.kind = Op.Write);
      Alcotest.(check bool) "acquire is a read" true (acq.kind = Op.Read);
      Alcotest.(check int) "same location" rel.loc acq.loc;
      Alcotest.(check int) "value communicated" rel.value acq.value)
    pairs

(* ------------------------------------------------------------------ *)
(* Dekker (store buffering litmus)                                      *)
(* ------------------------------------------------------------------ *)

let dekker_outcome e = (value_of_label e "P1:read-y", value_of_label e "P2:read-x")

let test_dekker_sc_excludes_00 () =
  let r = Enumerate.explore (fun () -> Minilang.Interp.source Minilang.Programs.dekker) in
  Alcotest.(check bool) "complete" true r.Enumerate.complete;
  List.iter
    (fun e ->
      if dekker_outcome e = (Some 0, Some 0) then
        Alcotest.fail "SC produced 0,0 for dekker")
    r.Enumerate.executions

let test_dekker_weak_allows_00 () =
  List.iter
    (fun model ->
      let found =
        List.exists
          (fun seed ->
            let e =
              run_program ~model ~sched:(Sched.adversarial ~seed ())
                Minilang.Programs.dekker
            in
            dekker_outcome e = (Some 0, Some 0))
          seeds
      in
      Alcotest.(check bool) (Model.name model ^ " allows 0,0") true found)
    Model.weak

(* ------------------------------------------------------------------ *)
(* WO vs RCsc envelope                                                  *)
(* ------------------------------------------------------------------ *)

(* P1: store x := 1 (data); Test&Set l.  P2: read l (data); if l = 1 then
   read x.  WO drains the buffer before the Test&Set, so l = 1 implies
   x = 1 is visible.  RCsc lets the Test&Set overtake the pending store:
   l = 1 with x = 0 is observable. *)
let wo_vs_rcsc_program =
  let open Minilang.Build in
  program ~name:"wo_vs_rcsc" ~locs:[ "x"; "l" ]
    [
      [ store "x" (i 1) ~label:"P1:write-x"; test_and_set "t" "l" ~label:"P1:tas" ];
      [
        load "rl" "l" ~label:"P2:read-l";
        if_ (r "rl" =: i 1) [ load "rx" "x" ~label:"P2:read-x" ] [];
      ];
    ]

let observes_tas_before_store ~model =
  List.exists
    (fun seed ->
      let e = run_program ~model ~sched:(Sched.adversarial ~seed ()) wo_vs_rcsc_program in
      value_of_label e "P2:read-l" = Some 1 && value_of_label e "P2:read-x" = Some 0)
    (List.init 400 (fun s -> s))

let test_wo_drains_before_sync () =
  List.iter
    (fun model ->
      Alcotest.(check bool)
        (Model.name model ^ " forbids tas-overtakes-store")
        false (observes_tas_before_store ~model))
    [ Model.WO; Model.DRF0 ]

let test_rcsc_allows_sync_overtaking () =
  List.iter
    (fun model ->
      Alcotest.(check bool)
        (Model.name model ^ " allows tas-overtakes-store")
        true (observes_tas_before_store ~model))
    [ Model.RCsc; Model.DRF1 ]

(* ------------------------------------------------------------------ *)
(* Determinism, replay, coherence                                       *)
(* ------------------------------------------------------------------ *)

let test_same_seed_same_execution () =
  let run () =
    run_program ~model:Model.WO ~sched:(Sched.adversarial ~seed:11 ())
      (Minilang.Programs.queue_bug ~region:5 ())
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical behaviour" true (Exec.same_program_behaviour a b);
  Alcotest.(check int) "identical length" (Exec.n_ops a) (Exec.n_ops b)

let test_replay_reproduces () =
  let p = Minilang.Programs.counter_racy in
  let orig = run_program ~model:Model.RCsc ~sched:(Sched.random ~seed:5) p in
  let replayed =
    run_program ~model:Model.RCsc ~sched:(Sched.replay orig.Exec.schedule) p
  in
  Alcotest.(check bool) "same behaviour" true (Exec.same_program_behaviour orig replayed);
  Alcotest.(check bool) "same final memory" true
    (orig.Exec.final_mem = replayed.Exec.final_mem)

let test_replay_rejects_bad_decision () =
  let p = Minilang.Programs.fig1a in
  Alcotest.(check bool) "raises" true
    (try
       ignore (run_program ~model:Model.SC ~sched:(Sched.replay [ Exec.Retire (0, 0) ]) p);
       false
     with Invalid_argument _ -> true)

(* Per-location coherence: the reads of one processor from one location
   never observe values "going backwards" relative to another processor's
   program-order writes to it. *)
let coherence_program =
  let open Minilang.Build in
  program ~name:"coherence" ~locs:[ "x" ]
    [
      [ store "x" (i 1); store "x" (i 2); store "x" (i 3) ];
      [ load "a" "x"; load "b" "x"; load "c" "x" ];
    ]

let test_per_location_coherence () =
  List.iter
    (fun model ->
      List.iter
        (fun seed ->
          let e = run_program ~model ~sched:(Sched.random ~seed) coherence_program in
          let reads =
            Array.to_list e.Exec.by_proc.(1) |> List.map (fun (o : Op.t) -> o.Op.value)
          in
          let rec monotone = function
            | a :: (b :: _ as rest) -> a <= b && monotone rest
            | _ -> true
          in
          Alcotest.(check bool) "reads monotone" true (monotone reads))
        (List.init 100 (fun s -> s)))
    Model.all

(* Forwarding: a processor always sees its own latest write. *)
let forwarding_program =
  let open Minilang.Build in
  program ~name:"forwarding" ~locs:[ "x" ]
    [ [ store "x" (i 1); load "a" "x"; store "x" (i 2); load "b" "x" ] ]

let test_own_writes_forwarded () =
  List.iter
    (fun model ->
      List.iter
        (fun seed ->
          let e = run_program ~model ~sched:(Sched.adversarial ~seed ()) forwarding_program in
          let vals =
            Array.to_list e.Exec.by_proc.(0)
            |> List.filter (fun (o : Op.t) -> o.Op.kind = Op.Read)
            |> List.map (fun (o : Op.t) -> o.Op.value)
          in
          Alcotest.(check (list int)) "forwarded" [ 1; 2 ] vals)
        (List.init 50 (fun s -> s)))
    Model.all

(* ------------------------------------------------------------------ *)
(* Machine statistics                                                   *)
(* ------------------------------------------------------------------ *)

let test_machine_stats () =
  let p = Minilang.Programs.queue_bug ~region:10 () in
  let run model =
    Machine.run_with_stats ~model ~sched:(Sched.adversarial ~seed:3 ())
      (Minilang.Interp.source p)
  in
  let _, sc_stats = run Model.SC in
  Alcotest.(check int) "SC buffers nothing" 0 sc_stats.Machine.buffered_writes;
  Alcotest.(check int) "SC retires nothing" 0 sc_stats.Machine.retires;
  let e, wo_stats = run Model.WO in
  Alcotest.(check bool) "not truncated" false e.Exec.truncated;
  Alcotest.(check bool) "WO buffers writes" true (wo_stats.Machine.buffered_writes > 0);
  Alcotest.(check int) "every buffered write retires"
    wo_stats.Machine.buffered_writes wo_stats.Machine.retires;
  Alcotest.(check bool) "peak occupancy positive" true (wo_stats.Machine.max_buffer >= 1);
  Alcotest.(check bool) "delays non-negative" true (wo_stats.Machine.delay_total >= 0)

let test_tso_retires_in_order () =
  (* under TSO a processor's writes reach memory in program order: their
     commit timestamps are increasing per processor *)
  List.iter
    (fun seed ->
      let e =
        run_program ~model:Model.TSO ~sched:(Sched.adversarial ~seed ())
          Minilang.Programs.fig1a
      in
      Array.iter
        (fun ops ->
          let commits =
            Array.to_list ops
            |> List.filter (fun (o : Op.t) -> o.Op.kind = Op.Write)
            |> List.map (fun (o : Op.t) -> e.Exec.commit.(o.Op.id))
          in
          let rec increasing = function
            | a :: (b :: _ as rest) -> a < b && increasing rest
            | _ -> true
          in
          Alcotest.(check bool) "write commits increase" true (increasing commits))
        e.Exec.by_proc)
    (List.init 50 (fun s -> s))

(* ------------------------------------------------------------------ *)
(* Enumeration                                                          *)
(* ------------------------------------------------------------------ *)

let test_enumerate_counts () =
  (* two independent threads of lengths 2 and 2: C(4,2) = 6 interleavings;
     guarded_handoff: P1 has 2 ops; P2 has 1-2 ops depending on branch *)
  let n, complete =
    Enumerate.count (fun () -> Minilang.Interp.source Minilang.Programs.disjoint)
  in
  Alcotest.(check bool) "complete" true complete;
  (* 3 ops each: C(6,3) = 20 *)
  Alcotest.(check int) "disjoint interleavings" 20 n

let test_enumerate_finds_all_counter_outcomes () =
  let r =
    Enumerate.explore (fun () -> Minilang.Interp.source Minilang.Programs.counter_racy)
  in
  Alcotest.(check bool) "complete" true r.Enumerate.complete;
  let finals =
    List.map (fun e -> e.Exec.final_mem.(0)) r.Enumerate.executions
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "lost update and correct outcomes" [ 1; 2 ] finals

let test_enumerate_truncates_infinite_loops () =
  let open Minilang.Build in
  let spin = program ~name:"spin" ~locs:[ "x" ] [ [ while_ (i 1) [ load "r" "x" ] ] ] in
  let r =
    Enumerate.explore ~max_steps:50 ~limit:10 (fun () -> Minilang.Interp.source spin)
  in
  Alcotest.(check bool) "incomplete" false r.Enumerate.complete;
  List.iter
    (fun e -> Alcotest.(check bool) "truncated" true e.Exec.truncated)
    r.Enumerate.executions

let test_sample_is_sc () =
  let es =
    Enumerate.sample ~seeds:(List.init 10 (fun i -> i))
      (fun () -> Minilang.Interp.source Minilang.Programs.fig1a)
  in
  List.iter
    (fun e ->
      match fig1a_outcome e with
      | Some 1, Some 0 -> Alcotest.fail "sampled SC execution violated SC"
      | _ -> ())
    es

(* ------------------------------------------------------------------ *)
(* Locked counter: mutual exclusion works on every model                *)
(* ------------------------------------------------------------------ *)

let test_counter_locked_all_models () =
  List.iter
    (fun model ->
      List.iter
        (fun seed ->
          let e =
            run_program ~model ~sched:(Sched.random ~seed) Minilang.Programs.counter_locked
          in
          Alcotest.(check bool) "terminates" false e.Exec.truncated;
          Alcotest.(check int) "counter = 2" 2 e.Exec.final_mem.(0))
        (List.init 40 (fun s -> s)))
    Model.all

(* qcheck: on SC, every read returns the value of the commit-order-latest
   write to its location that precedes it (reads-from correctness). *)
let prop_sc_rf_is_latest_write =
  QCheck.Test.make ~name:"SC reads-from is the latest preceding write" ~count:60
    QCheck.(int_bound 10_000)
    (fun seed ->
      let p = Minilang.Gen.random_racy ~seed () in
      let e =
        run_program ~model:Model.SC ~sched:(Sched.random ~seed:(seed + 1)) p
      in
      Array.for_all
        (fun (o : Op.t) ->
          o.Op.kind <> Op.Read
          ||
          let before_writes =
            Array.to_list e.Exec.ops
            |> List.filter (fun (w : Op.t) ->
                   w.Op.kind = Op.Write && w.Op.loc = o.Op.loc
                   && e.Exec.commit.(w.Op.id) < e.Exec.commit.(o.Op.id))
          in
          let latest =
            List.fold_left
              (fun acc (w : Op.t) ->
                match acc with
                | None -> Some w
                | Some best ->
                  if e.Exec.commit.(w.Op.id) > e.Exec.commit.(best.Op.id) then Some w
                  else acc)
              None before_writes
          in
          match latest with
          | None -> e.Exec.rf.(o.Op.id) = -1
          | Some w -> e.Exec.rf.(o.Op.id) = w.Op.id)
        e.Exec.ops)

let prop_weak_runs_terminate =
  QCheck.Test.make ~name:"loop-free random programs always terminate" ~count:60
    QCheck.(pair (int_bound 10_000) (int_bound 3))
    (fun (seed, m) ->
      let model = List.nth Model.all (m mod List.length Model.all) in
      let p = Minilang.Gen.random_racy ~seed () in
      let e = run_program ~model ~sched:(Sched.adversarial ~seed ()) p in
      not e.Exec.truncated)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "memsim"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        ] );
      ( "model",
        [
          Alcotest.test_case "names" `Quick test_model_names;
          Alcotest.test_case "drain rules" `Quick test_model_drain_rules;
        ] );
      ( "fig1a",
        [
          Alcotest.test_case "SC never reorders" `Quick test_fig1a_sc_never_reorders;
          Alcotest.test_case "weak models reorder" `Quick test_fig1a_weak_reorders;
          Alcotest.test_case "eager retirement hides weakness" `Quick
            test_fig1a_eager_is_sc_like;
        ] );
      ( "fig1b",
        [
          Alcotest.test_case "always SC" `Quick test_fig1b_always_sc;
          Alcotest.test_case "so1 pairing" `Quick test_fig1b_so1_pairing;
        ] );
      ( "dekker",
        [
          Alcotest.test_case "SC excludes 0,0" `Quick test_dekker_sc_excludes_00;
          Alcotest.test_case "weak allows 0,0" `Quick test_dekker_weak_allows_00;
        ] );
      ( "wo-vs-rcsc",
        [
          Alcotest.test_case "WO/DRF0 drain before sync" `Quick test_wo_drains_before_sync;
          Alcotest.test_case "RCsc/DRF1 let sync overtake" `Quick
            test_rcsc_allows_sync_overtaking;
        ] );
      ( "machine",
        [
          Alcotest.test_case "same seed, same execution" `Quick test_same_seed_same_execution;
          Alcotest.test_case "replay reproduces" `Quick test_replay_reproduces;
          Alcotest.test_case "replay rejects bad decision" `Quick
            test_replay_rejects_bad_decision;
          Alcotest.test_case "per-location coherence" `Quick test_per_location_coherence;
          Alcotest.test_case "own writes forwarded" `Quick test_own_writes_forwarded;
        ] );
      ( "stats",
        [
          Alcotest.test_case "machine statistics" `Quick test_machine_stats;
          Alcotest.test_case "TSO retires in order" `Quick test_tso_retires_in_order;
        ] );
      ( "enumerate",
        [
          Alcotest.test_case "counts interleavings" `Quick test_enumerate_counts;
          Alcotest.test_case "finds all counter outcomes" `Quick
            test_enumerate_finds_all_counter_outcomes;
          Alcotest.test_case "truncates infinite loops" `Quick
            test_enumerate_truncates_infinite_loops;
          Alcotest.test_case "samples are SC" `Quick test_sample_is_sc;
        ] );
      ( "locked-counter",
        [ Alcotest.test_case "mutual exclusion on all models" `Quick
            test_counter_locked_all_models ] );
      ("props", qsuite [ prop_sc_rf_is_latest_write; prop_weak_runs_terminate ]);
    ]
