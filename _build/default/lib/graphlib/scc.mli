(** Strongly connected components (Tarjan's algorithm, iterative).

    The happens-before-1 relation of a weak execution need not be a partial
    order (§3.1 of the paper): augmented race edges are doubly directed and
    synchronization on weak hardware may itself form cycles.  Partitioning
    races by SCC (§4.2) is the paper's device for recovering a partial
    order, so this module is the heart of the analysis. *)

type t = {
  n_components : int;
  component : int array;
      (** [component.(u)] is the component id of node [u].  Ids are
          numbered in a topological order of the condensation: every edge
          of the original graph goes from a component with a smaller-or-
          equal id to one with a larger-or-equal id. *)
  members : int list array;
      (** [members.(c)] lists the nodes of component [c] in increasing
          order. *)
}

val compute : Digraph.t -> t

val same_component : t -> int -> int -> bool

val component_sizes : t -> int array

val is_trivial : t -> bool
(** True when every component is a single node (i.e. the graph is acyclic),
    ignoring self loops. *)
