type t = {
  scc : Scc.t;
  dag : Digraph.t;
  closure : Bitset.t array;      (* per component: set of reachable components *)
}

let compute g =
  let scc = Scc.compute g in
  let nc = scc.Scc.n_components in
  let dag = Digraph.create nc in
  Digraph.iter_edges g (fun u v ->
      let cu = scc.Scc.component.(u) and cv = scc.Scc.component.(v) in
      if cu <> cv then Digraph.add_edge dag cu cv);
  let closure = Array.init nc (fun _ -> Bitset.create nc) in
  (* Components are topologically numbered, so a reverse sweep sees every
     successor's closure before it is needed. *)
  for c = nc - 1 downto 0 do
    Bitset.add closure.(c) c;
    Digraph.iter_succ dag c (fun d -> Bitset.union_into closure.(c) closure.(d))
  done;
  { scc; dag; closure }

let scc t = t.scc

let reaches t u v =
  let cu = t.scc.Scc.component.(u) and cv = t.scc.Scc.component.(v) in
  Bitset.mem t.closure.(cu) cv

let ordered t u v = reaches t u v || reaches t v u

let condensation t = t.dag

let component_reaches t cu cv = Bitset.mem t.closure.(cu) cv
