(** Mutable directed graphs over dense integer node identifiers
    [0 .. n_nodes-1].

    Parallel edges are collapsed: adding an edge twice is a no-op.  Self
    loops are permitted (a race between two events inside one strongly
    connected component of an augmented happens-before graph induces them
    indirectly, and the SCC algorithms must tolerate them). *)

type t

val create : int -> t
(** [create n] is the edgeless graph on [n] nodes.
    @raise Invalid_argument if [n < 0]. *)

val n_nodes : t -> int

val n_edges : t -> int

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] inserts the directed edge [u -> v]; duplicate
    insertions are ignored.  @raise Invalid_argument on out-of-range
    endpoints. *)

val mem_edge : t -> int -> int -> bool

val succ : t -> int -> int list
(** Successors of a node, in insertion order. *)

val out_degree : t -> int -> int

val iter_succ : t -> int -> (int -> unit) -> unit

val iter_edges : t -> (int -> int -> unit) -> unit

val fold_edges : t -> init:'a -> f:('a -> int -> int -> 'a) -> 'a

val transpose : t -> t
(** Graph with every edge reversed. *)

val copy : t -> t

val of_edges : int -> (int * int) list -> t

val has_path : t -> int -> int -> bool
(** [has_path g u v] is true iff a (possibly empty) directed path leads
    from [u] to [v]; every node reaches itself.  Linear-time DFS — for
    repeated queries build a {!Reach.t} instead. *)

val topological_order : t -> int list option
(** [Some order] lists the nodes such that every edge goes from an earlier
    node to a later one; [None] when the graph is cyclic. *)

val pp : Format.formatter -> t -> unit
