(** Fixed-capacity bit sets over the integers [0 .. capacity-1].

    Used for access sets (READ/WRITE sets of computation events) and for
    reachability closures over graph nodes.  All operations that combine two
    sets require them to have the same capacity. *)

type t

val create : int -> t
(** [create n] is the empty set over the universe [0 .. n-1].
    @raise Invalid_argument if [n < 0]. *)

val capacity : t -> int
(** Size of the universe the set ranges over. *)

val mem : t -> int -> bool
(** [mem s i] tests membership.  Out-of-range [i] is simply absent. *)

val add : t -> int -> unit
(** [add s i] inserts [i].  @raise Invalid_argument if [i] is out of range. *)

val remove : t -> int -> unit
(** [remove s i] deletes [i]; no-op when absent or out of range. *)

val cardinal : t -> int
(** Number of members. *)

val is_empty : t -> bool

val copy : t -> t

val clear : t -> unit

val union_into : t -> t -> unit
(** [union_into dst src] sets [dst := dst ∪ src].
    @raise Invalid_argument on capacity mismatch. *)

val inter : t -> t -> t
(** Fresh intersection. @raise Invalid_argument on capacity mismatch. *)

val union : t -> t -> t
(** Fresh union. @raise Invalid_argument on capacity mismatch. *)

val intersects : t -> t -> bool
(** [intersects a b] is [not (is_empty (inter a b))] without allocating.
    @raise Invalid_argument on capacity mismatch. *)

val subset : t -> t -> bool
(** [subset a b] tests [a ⊆ b]. @raise Invalid_argument on capacity
    mismatch. *)

val equal : t -> t -> bool

val iter : (int -> unit) -> t -> unit
(** Iterate members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over members in increasing order. *)

val elements : t -> int list
(** Members in increasing order. *)

val of_list : int -> int list -> t
(** [of_list n xs] builds a set of capacity [n] containing [xs]. *)

val pp : Format.formatter -> t -> unit
(** Renders as [{0, 3, 17}]. *)
