type t = {
  n : int;
  adj : int list array;          (* reversed insertion order; normalized in [succ] *)
  seen : (int * int, unit) Hashtbl.t;
  mutable edges : int;
}

let create n =
  if n < 0 then invalid_arg "Digraph.create: negative node count";
  { n; adj = Array.make n []; seen = Hashtbl.create (max 16 n); edges = 0 }

let n_nodes g = g.n
let n_edges g = g.edges

let check_node g u =
  if u < 0 || u >= g.n then invalid_arg "Digraph: node out of range"

let mem_edge g u v =
  check_node g u;
  check_node g v;
  Hashtbl.mem g.seen (u, v)

let add_edge g u v =
  check_node g u;
  check_node g v;
  if not (Hashtbl.mem g.seen (u, v)) then begin
    Hashtbl.add g.seen (u, v) ();
    g.adj.(u) <- v :: g.adj.(u);
    g.edges <- g.edges + 1
  end

let succ g u =
  check_node g u;
  List.rev g.adj.(u)

let out_degree g u =
  check_node g u;
  List.length g.adj.(u)

let iter_succ g u f =
  check_node g u;
  List.iter f (List.rev g.adj.(u))

let iter_edges g f =
  for u = 0 to g.n - 1 do
    iter_succ g u (fun v -> f u v)
  done

let fold_edges g ~init ~f =
  let acc = ref init in
  iter_edges g (fun u v -> acc := f !acc u v);
  !acc

let of_edges n edges =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) edges;
  g

let transpose g =
  let t = create g.n in
  iter_edges g (fun u v -> add_edge t v u);
  t

let copy g =
  let c = create g.n in
  iter_edges g (fun u v -> add_edge c u v);
  c

(* Iterative DFS: the happens-before graph of a long execution can have one
   po-chain per processor that is tens of thousands of edges deep, which
   would blow the OCaml stack with naive recursion. *)
let has_path g src dst =
  check_node g src;
  check_node g dst;
  if src = dst then true
  else begin
    let visited = Array.make g.n false in
    let stack = ref [ src ] in
    visited.(src) <- true;
    let found = ref false in
    while not !found && !stack <> [] do
      match !stack with
      | [] -> ()
      | u :: rest ->
        stack := rest;
        iter_succ g u (fun v ->
            if v = dst then found := true
            else if not visited.(v) then begin
              visited.(v) <- true;
              stack := v :: !stack
            end)
    done;
    !found
  end

let topological_order g =
  let indeg = Array.make g.n 0 in
  iter_edges g (fun _ v -> indeg.(v) <- indeg.(v) + 1);
  let queue = Queue.create () in
  Array.iteri (fun u d -> if d = 0 then Queue.add u queue) indeg;
  let order = ref [] in
  let emitted = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order := u :: !order;
    incr emitted;
    iter_succ g u (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
  done;
  if !emitted = g.n then Some (List.rev !order) else None

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph(%d nodes, %d edges)" g.n g.edges;
  iter_edges g (fun u v -> Format.fprintf ppf "@,  %d -> %d" u v);
  Format.fprintf ppf "@]"
