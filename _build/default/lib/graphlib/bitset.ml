type t = { mutable bits : Bytes.t; n : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { bits = Bytes.make ((n + 7) / 8) '\000'; n }

let capacity s = s.n

let in_range s i = i >= 0 && i < s.n

let mem s i =
  in_range s i
  && Char.code (Bytes.get s.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add s i =
  if not (in_range s i) then invalid_arg "Bitset.add: out of range";
  let byte = Char.code (Bytes.get s.bits (i lsr 3)) in
  Bytes.set s.bits (i lsr 3) (Char.chr (byte lor (1 lsl (i land 7))))

let remove s i =
  if in_range s i then begin
    let byte = Char.code (Bytes.get s.bits (i lsr 3)) in
    Bytes.set s.bits (i lsr 3) (Char.chr (byte land lnot (1 lsl (i land 7))))
  end

(* Popcount of one byte; a 256-entry table would be faster but this is not a
   hot path compared to the word-wise set operations below. *)
let popcount_byte b =
  let rec loop b acc = if b = 0 then acc else loop (b lsr 1) (acc + (b land 1)) in
  loop b 0

let cardinal s =
  let total = ref 0 in
  Bytes.iter (fun c -> total := !total + popcount_byte (Char.code c)) s.bits;
  !total

let is_empty s =
  let len = Bytes.length s.bits in
  let rec loop i = i >= len || (Bytes.get s.bits i = '\000' && loop (i + 1)) in
  loop 0

let copy s = { s with bits = Bytes.copy s.bits }

let clear s = Bytes.fill s.bits 0 (Bytes.length s.bits) '\000'

let check_same_capacity name a b =
  if a.n <> b.n then invalid_arg ("Bitset." ^ name ^ ": capacity mismatch")

let union_into dst src =
  check_same_capacity "union_into" dst src;
  for i = 0 to Bytes.length dst.bits - 1 do
    let b = Char.code (Bytes.get dst.bits i) lor Char.code (Bytes.get src.bits i) in
    Bytes.set dst.bits i (Char.chr b)
  done

let union a b =
  let r = copy a in
  union_into r b;
  r

let inter a b =
  check_same_capacity "inter" a b;
  let r = create a.n in
  for i = 0 to Bytes.length r.bits - 1 do
    let v = Char.code (Bytes.get a.bits i) land Char.code (Bytes.get b.bits i) in
    Bytes.set r.bits i (Char.chr v)
  done;
  r

let intersects a b =
  check_same_capacity "intersects" a b;
  let len = Bytes.length a.bits in
  let rec loop i =
    i < len
    && (Char.code (Bytes.get a.bits i) land Char.code (Bytes.get b.bits i) <> 0
        || loop (i + 1))
  in
  loop 0

let subset a b =
  check_same_capacity "subset" a b;
  let len = Bytes.length a.bits in
  let rec loop i =
    i >= len
    || (Char.code (Bytes.get a.bits i) land lnot (Char.code (Bytes.get b.bits i)) = 0
        && loop (i + 1))
  in
  loop 0

let equal a b = a.n = b.n && Bytes.equal a.bits b.bits

let iter f s =
  for i = 0 to s.n - 1 do
    if mem s i then f i
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list n xs =
  let s = create n in
  List.iter (add s) xs;
  s

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    (elements s)
