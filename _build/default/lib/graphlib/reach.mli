(** All-pairs reachability for directed graphs that may contain cycles.

    The graph is condensed to its SCC DAG and a reachability bit set is
    computed per component in reverse topological order, so queries cost a
    single bit test.  A node always reaches itself. *)

type t

val compute : Digraph.t -> t

val scc : t -> Scc.t
(** The SCC decomposition the closure was built over. *)

val reaches : t -> int -> int -> bool
(** [reaches r u v] is true iff a directed path (possibly empty) leads from
    node [u] to node [v]. *)

val ordered : t -> int -> int -> bool
(** [ordered r u v] is true iff [u] and [v] are comparable: [u] reaches [v]
    or [v] reaches [u].  Two *distinct* conflicting events form a race
    precisely when they are not ordered. *)

val condensation : t -> Digraph.t
(** The SCC DAG: one node per component, numbered as in {!Scc.t}. *)

val component_reaches : t -> int -> int -> bool
(** Reachability between component ids rather than node ids. *)
