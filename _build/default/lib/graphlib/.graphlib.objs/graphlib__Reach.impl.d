lib/graphlib/reach.ml: Array Bitset Digraph Scc
