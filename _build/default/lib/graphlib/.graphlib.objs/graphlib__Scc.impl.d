lib/graphlib/scc.ml: Array Digraph List
