lib/graphlib/bitset.mli: Format
