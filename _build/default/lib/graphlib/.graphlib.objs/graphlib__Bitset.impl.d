lib/graphlib/bitset.ml: Bytes Char Format List
