lib/graphlib/reach.mli: Digraph Scc
