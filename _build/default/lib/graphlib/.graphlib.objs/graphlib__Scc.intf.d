lib/graphlib/scc.mli: Digraph
