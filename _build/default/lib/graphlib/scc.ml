type t = {
  n_components : int;
  component : int array;
  members : int list array;
}

(* Iterative Tarjan.  Each stack frame is (node, remaining successors).
   Tarjan emits components in reverse topological order, so we flip the ids
   at the end to obtain the documented "edges go small -> large" invariant. *)
let compute g =
  let n = Digraph.n_nodes g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let visit root =
    let frames = ref [ (root, Digraph.succ g root) ] in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    stack := root :: !stack;
    on_stack.(root) <- true;
    while !frames <> [] do
      match !frames with
      | [] -> ()
      | (u, succs) :: rest -> (
        match succs with
        | v :: more ->
          frames := (u, more) :: rest;
          if index.(v) = -1 then begin
            index.(v) <- !next_index;
            lowlink.(v) <- !next_index;
            incr next_index;
            stack := v :: !stack;
            on_stack.(v) <- true;
            frames := (v, Digraph.succ g v) :: !frames
          end
          else if on_stack.(v) && index.(v) < lowlink.(u) then
            lowlink.(u) <- index.(v)
        | [] ->
          frames := rest;
          (match rest with
           | (parent, _) :: _ when lowlink.(u) < lowlink.(parent) ->
             lowlink.(parent) <- lowlink.(u)
           | _ -> ());
          if lowlink.(u) = index.(u) then begin
            let c = !next_comp in
            incr next_comp;
            let continue = ref true in
            while !continue do
              match !stack with
              | [] -> continue := false
              | w :: tail ->
                stack := tail;
                on_stack.(w) <- false;
                comp.(w) <- c;
                if w = u then continue := false
            done
          end)
    done
  in
  for u = 0 to n - 1 do
    if index.(u) = -1 then visit u
  done;
  let n_components = !next_comp in
  (* Reverse ids so the condensation is topologically numbered. *)
  Array.iteri (fun u c -> comp.(u) <- n_components - 1 - c) comp;
  let members = Array.make n_components [] in
  for u = n - 1 downto 0 do
    members.(comp.(u)) <- u :: members.(comp.(u))
  done;
  { n_components; component = comp; members }

let same_component t u v = t.component.(u) = t.component.(v)

let component_sizes t = Array.map List.length t.members

let is_trivial t = Array.for_all (fun m -> List.length m = 1) t.members
