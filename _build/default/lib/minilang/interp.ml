exception Runtime_error of string

type tstate = {
  regs : (string, int) Hashtbl.t;
  mutable frames : Ast.instr list list;  (* stack of pending sequences *)
  mutable current : Memsim.Thread_intf.request option;
  mutable halted : bool;
}

let truthy v = v <> 0

let rec eval regs (e : Ast.expr) =
  match e with
  | Ast.Int n -> n
  | Ast.Reg name -> ( match Hashtbl.find_opt regs name with Some v -> v | None -> 0)
  | Ast.Neg e -> -eval regs e
  | Ast.Not e -> if truthy (eval regs e) then 0 else 1
  | Ast.Bin (op, a, b) ->
    let x = eval regs a and y = eval regs b in
    (match op with
     | Ast.Add -> x + y
     | Ast.Sub -> x - y
     | Ast.Mul -> x * y
     | Ast.Div -> if y = 0 then 0 else x / y
     | Ast.Mod -> if y = 0 then 0 else x mod y
     | Ast.Eq -> if x = y then 1 else 0
     | Ast.Ne -> if x <> y then 1 else 0
     | Ast.Lt -> if x < y then 1 else 0
     | Ast.Le -> if x <= y then 1 else 0
     | Ast.Gt -> if x > y then 1 else 0
     | Ast.Ge -> if x >= y then 1 else 0
     | Ast.And -> if truthy x && truthy y then 1 else 0
     | Ast.Or -> if truthy x || truthy y then 1 else 0)

let pop st =
  let rec go = function
    | [] -> None
    | [] :: rest -> go rest
    | (instr :: tail) :: rest ->
      st.frames <- tail :: rest;
      Some instr
  in
  go st.frames

let push st instrs = st.frames <- instrs :: st.frames

let check_loc n_locs loc =
  if loc < 0 || loc >= n_locs then
    raise (Runtime_error (Printf.sprintf "address %d outside [0, %d)" loc n_locs));
  loc

(* Execute local instructions until a memory request or the end of the
   thread, pinning the request in [st.current]. *)
let rec advance n_locs st =
  match pop st with
  | None -> st.halted <- true
  | Some instr ->
    let ev e = eval st.regs e in
    let addr e = check_loc n_locs (ev e) in
    let done_ () = st.current <- None in
    (match instr with
     | Ast.Set (reg, e) ->
       Hashtbl.replace st.regs reg (ev e);
       advance n_locs st
     | Ast.If (c, t, f) ->
       push st (if truthy (ev c) then t else f);
       advance n_locs st
     | Ast.While (c, body) ->
       if truthy (ev c) then push st (body @ [ instr ]);
       advance n_locs st
     | Ast.Load { reg; addr = a; label } ->
       let loc = addr a in
       st.current <-
         Some
           (Memsim.Thread_intf.Read
              { loc; cls = Memsim.Op.Data; label;
                k = (fun v -> Hashtbl.replace st.regs reg v; done_ ()) })
     | Ast.Sync_load { reg; addr = a; label } ->
       let loc = addr a in
       st.current <-
         Some
           (Memsim.Thread_intf.Read
              { loc; cls = Memsim.Op.Acquire; label;
                k = (fun v -> Hashtbl.replace st.regs reg v; done_ ()) })
     | Ast.Store { addr = a; value; label } ->
       let loc = addr a in
       let v = ev value in
       st.current <-
         Some
           (Memsim.Thread_intf.Write
              { loc; value = v; cls = Memsim.Op.Data; label; k = done_ })
     | Ast.Sync_store { addr = a; value; label } ->
       let loc = addr a in
       let v = ev value in
       st.current <-
         Some
           (Memsim.Thread_intf.Write
              { loc; value = v; cls = Memsim.Op.Release; label; k = done_ })
     | Ast.Test_and_set { reg; addr = a; label } ->
       let loc = addr a in
       st.current <-
         Some
           (Memsim.Thread_intf.Rmw
              { loc; f = (fun _ -> 1);
                rcls = Memsim.Op.Acquire; wcls = Memsim.Op.Plain_sync; label;
                k = (fun old -> Hashtbl.replace st.regs reg old; done_ ()) })
     | Ast.Unset { addr = a; label } ->
       let loc = addr a in
       st.current <-
         Some
           (Memsim.Thread_intf.Write
              { loc; value = 0; cls = Memsim.Op.Release; label; k = done_ })
     | Ast.Fetch_and_add { reg; addr = a; amount; label } ->
       let loc = addr a in
       let amt = ev amount in
       st.current <-
         Some
           (Memsim.Thread_intf.Rmw
              { loc; f = (fun old -> old + amt);
                rcls = Memsim.Op.Acquire; wcls = Memsim.Op.Plain_sync; label;
                k = (fun old -> Hashtbl.replace st.regs reg old; done_ ()) })
     | Ast.Fence { label } ->
       st.current <- Some (Memsim.Thread_intf.Fence { label; k = done_ }))

let make_states (p : Ast.program) =
  Array.map
    (fun instrs ->
      { regs = Hashtbl.create 8; frames = [ instrs ]; current = None; halted = false })
    p.procs

let peek_state n_locs st =
  if st.halted then None
  else
    match st.current with
    | Some _ as r -> r
    | None ->
      advance n_locs st;
      st.current

let source (p : Ast.program) : Memsim.Thread_intf.source =
  (match Ast.validate p with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Interp.source: " ^ msg));
  let states = make_states p in
  {
    Memsim.Thread_intf.n_procs = Array.length p.procs;
    n_locs = p.n_locs;
    init = p.init;
    peek = (fun proc -> peek_state p.n_locs states.(proc));
  }

let run ?max_steps ~model ~sched p =
  Memsim.Machine.run ?max_steps ~model ~sched (source p)

let registers_after ?max_steps ~model ~sched (p : Ast.program) =
  (match Ast.validate p with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Interp.registers_after: " ^ msg));
  let states = make_states p in
  let src =
    {
      Memsim.Thread_intf.n_procs = Array.length p.procs;
      n_locs = p.n_locs;
      init = p.init;
      peek = (fun proc -> peek_state p.n_locs states.(proc));
    }
  in
  ignore (Memsim.Machine.run ?max_steps ~model ~sched src);
  Array.map
    (fun st ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.regs []
      |> List.filter (fun (k, _) ->
             not (String.length k > 0 && (k.[0] = '$' || k.[0] = '_')))
      |> List.sort compare)
    states
