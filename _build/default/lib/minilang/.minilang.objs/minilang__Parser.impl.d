lib/minilang/parser.ml: Array Ast Buffer In_channel Lexer List Printf Result String
