lib/minilang/gen.ml: Array Ast List Memsim Printf
