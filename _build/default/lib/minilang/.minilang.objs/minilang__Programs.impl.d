lib/minilang/programs.ml: Ast Build List Printf
