lib/minilang/interp.ml: Array Ast Hashtbl List Memsim Printf String
