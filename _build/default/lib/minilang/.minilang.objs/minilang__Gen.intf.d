lib/minilang/gen.mli: Ast
