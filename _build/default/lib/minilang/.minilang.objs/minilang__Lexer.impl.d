lib/minilang/lexer.ml: List Printf String
