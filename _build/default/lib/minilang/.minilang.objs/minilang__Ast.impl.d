lib/minilang/ast.ml: Array Format List
