lib/minilang/build.ml: Array Ast List Printf String
