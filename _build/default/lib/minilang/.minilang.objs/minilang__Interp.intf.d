lib/minilang/interp.mli: Ast Memsim
