lib/minilang/programs.mli: Ast
