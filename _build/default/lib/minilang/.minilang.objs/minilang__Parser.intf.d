lib/minilang/parser.mli: Ast Result
