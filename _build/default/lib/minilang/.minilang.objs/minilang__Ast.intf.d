lib/minilang/ast.mli: Format Result
