lib/minilang/lexer.mli:
