lib/minilang/build.mli: Ast
