(** Parser for the concrete program syntax.

    {v
    program queue_bug
    array 24                 # anonymous work locations 0..23
    loc Q = 3                # named locations follow the array
    loc QEmpty = 1
    loc S

    proc P1 {
      addr := 8
      Q := addr              # data store (Q is a location)
      QEmpty := 0
      unset S                # release
    }
    proc P2 {
      empty := QEmpty        # data load (empty is a register)
      if empty == 0 {
        addr := Q
        unset S
        i := addr
        while i < addr + 8 {
          tmp := mem[i]      # computed address
          mem[i] := tmp + 1
          i := i + 1
        }
      }
    }
    v}

    Identifiers declared with [loc] name memory; all others are private
    registers.  Memory may be referenced only as the entire right-hand
    side of an assignment (a load) or as an assignment target (a store) —
    [r := x + 1] with [x] a location is rejected; load first.  Other
    statements: [r := acquire x], [release x := e], [r := tas(x)],
    [r := faa(x, e)], [unset x], [fence], [if e { } else { }],
    [while e { }].  Statement labels for race reports are generated
    automatically from the processor and source line. *)

exception Error of string

val parse : string -> (Ast.program, string) Result.t

val parse_exn : string -> Ast.program
(** @raise Error *)

val parse_file : string -> (Ast.program, string) Result.t

val to_source : Ast.program -> string
(** Render a program back to concrete syntax; [parse (to_source p)] yields
    a program with the same memory behaviour (labels may differ). *)
