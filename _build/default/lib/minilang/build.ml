open Ast

let i n = Int n
let r name = Reg name
let ( +: ) a b = Bin (Add, a, b)
let ( -: ) a b = Bin (Sub, a, b)
let ( *: ) a b = Bin (Mul, a, b)
let ( =: ) a b = Bin (Eq, a, b)
let ( <>: ) a b = Bin (Ne, a, b)
let ( <: ) a b = Bin (Lt, a, b)
let ( <=: ) a b = Bin (Le, a, b)

let set reg e = Set (reg, e)

(* Named locations are carried through building as a [Reg] with a reserved
   prefix; [program] patches them to their assigned addresses once the
   symbol table is known. *)
let loc_marker name = Reg ("$loc:" ^ name)

let resolve syms name =
  match List.assoc_opt name syms with
  | Some l -> Int l
  | None -> invalid_arg (Printf.sprintf "Build: unknown location %S" name)

let load ?label reg name = Load { reg; addr = loc_marker name; label }
let store ?label name value = Store { addr = loc_marker name; value; label }
let load_at ?label reg addr = Load { reg; addr; label }
let store_at ?label addr value = Store { addr; value; label }
let acquire_load ?label reg name = Sync_load { reg; addr = loc_marker name; label }
let release_store ?label name value = Sync_store { addr = loc_marker name; value; label }
let test_and_set ?label reg name = Test_and_set { reg; addr = loc_marker name; label }
let unset ?label name = Unset { addr = loc_marker name; label }

let fetch_and_add ?label reg name amount =
  Fetch_and_add { reg; addr = loc_marker name; amount; label }

let fence ?label () = Fence { label }

let if_ c t f = If (c, t, f)
let while_ c body = While (c, body)

let spin_lock ?label name =
  [ Set ("_tas", Int 1);
    While
      ( Bin (Ne, Reg "_tas", Int 0),
        [ Test_and_set { reg = "_tas"; addr = loc_marker name; label } ] ) ]

let for_ reg ~from ~below body =
  [ Set (reg, from);
    While (Bin (Lt, Reg reg, below), body @ [ Set (reg, Bin (Add, Reg reg, Int 1)) ]) ]

let rec patch_expr syms = function
  | Reg name when String.length name > 5 && String.sub name 0 5 = "$loc:" ->
    resolve syms (String.sub name 5 (String.length name - 5))
  | (Int _ | Reg _) as e -> e
  | Neg e -> Neg (patch_expr syms e)
  | Not e -> Not (patch_expr syms e)
  | Bin (op, a, b) -> Bin (op, patch_expr syms a, patch_expr syms b)

let rec patch_instr syms instr =
  let pe = patch_expr syms in
  match instr with
  | Set (reg, e) -> Set (reg, pe e)
  | Load l -> Load { l with addr = pe l.addr }
  | Store s -> Store { s with addr = pe s.addr; value = pe s.value }
  | Sync_load l -> Sync_load { l with addr = pe l.addr }
  | Sync_store s -> Sync_store { s with addr = pe s.addr; value = pe s.value }
  | Test_and_set t -> Test_and_set { t with addr = pe t.addr }
  | Unset u -> Unset { u with addr = pe u.addr }
  | Fetch_and_add f ->
    Fetch_and_add { f with addr = pe f.addr; amount = pe f.amount }
  | Fence _ as f -> f
  | If (c, t, f) -> If (pe c, List.map (patch_instr syms) t, List.map (patch_instr syms) f)
  | While (c, body) -> While (pe c, List.map (patch_instr syms) body)

let program ~name ~locs ?(extra_locs = 0) ?(init = []) procs =
  let symbols = List.mapi (fun idx n -> (n, extra_locs + idx)) locs in
  let n_locs = extra_locs + List.length locs in
  let init =
    List.map
      (fun (n, v) ->
        match List.assoc_opt n symbols with
        | Some l -> (l, v)
        | None -> invalid_arg (Printf.sprintf "Build.program: unknown init location %S" n))
      init
  in
  let procs =
    Array.of_list (List.map (List.map (patch_instr symbols)) procs)
  in
  let p = { name; n_locs; init; procs; symbols } in
  match validate p with
  | Ok () -> p
  | Error msg -> invalid_arg ("Build.program: " ^ msg)
