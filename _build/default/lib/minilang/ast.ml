type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type expr =
  | Int of int
  | Reg of string
  | Neg of expr
  | Not of expr
  | Bin of binop * expr * expr

type instr =
  | Set of string * expr
  | Load of { reg : string; addr : expr; label : string option }
  | Store of { addr : expr; value : expr; label : string option }
  | Sync_load of { reg : string; addr : expr; label : string option }
  | Sync_store of { addr : expr; value : expr; label : string option }
  | Test_and_set of { reg : string; addr : expr; label : string option }
  | Unset of { addr : expr; label : string option }
  | Fetch_and_add of { reg : string; addr : expr; amount : expr; label : string option }
  | Fence of { label : string option }
  | If of expr * instr list * instr list
  | While of expr * instr list

type program = {
  name : string;
  n_locs : int;
  init : (int * int) list;
  procs : instr list array;
  symbols : (string * int) list;
}

let loc_name p l =
  match List.find_opt (fun (_, l') -> l' = l) p.symbols with
  | Some (n, _) -> n
  | None -> string_of_int l

let rec const_addrs_ok n_locs instrs =
  let addr_ok = function
    | Int a -> a >= 0 && a < n_locs
    | _ -> true (* computed addresses are checked at run time *)
  in
  List.for_all
    (function
      | Set _ | Fence _ -> true
      | Load { addr; _ } | Sync_load { addr; _ } | Test_and_set { addr; _ } ->
        addr_ok addr
      | Store { addr; _ } | Sync_store { addr; _ } | Unset { addr; _ }
      | Fetch_and_add { addr; _ } ->
        addr_ok addr
      | If (_, t, f) -> const_addrs_ok n_locs t && const_addrs_ok n_locs f
      | While (_, body) -> const_addrs_ok n_locs body)
    instrs

let validate p =
  if Array.length p.procs = 0 then Error "program has no processors"
  else if p.n_locs <= 0 then Error "program has no memory locations"
  else if List.exists (fun (l, _) -> l < 0 || l >= p.n_locs) p.init then
    Error "initialization outside the location space"
  else if not (Array.for_all (const_addrs_ok p.n_locs) p.procs) then
    Error "constant address outside the location space"
  else Ok ()

let binop_symbol = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "&&" | Or -> "||"

let rec pp_expr ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Reg r -> Format.pp_print_string ppf r
  | Neg e -> Format.fprintf ppf "-(%a)" pp_expr e
  | Not e -> Format.fprintf ppf "!(%a)" pp_expr e
  | Bin (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_symbol op) pp_expr b

let rec pp_instr ppf = function
  | Set (r, e) -> Format.fprintf ppf "%s := %a" r pp_expr e
  | Load { reg; addr; _ } -> Format.fprintf ppf "%s := mem[%a]" reg pp_expr addr
  | Store { addr; value; _ } ->
    Format.fprintf ppf "mem[%a] := %a" pp_expr addr pp_expr value
  | Sync_load { reg; addr; _ } ->
    Format.fprintf ppf "%s := acquire mem[%a]" reg pp_expr addr
  | Sync_store { addr; value; _ } ->
    Format.fprintf ppf "release mem[%a] := %a" pp_expr addr pp_expr value
  | Test_and_set { reg; addr; _ } ->
    Format.fprintf ppf "%s := test&set(mem[%a])" reg pp_expr addr
  | Unset { addr; _ } -> Format.fprintf ppf "unset(mem[%a])" pp_expr addr
  | Fetch_and_add { reg; addr; amount; _ } ->
    Format.fprintf ppf "%s := fetch&add(mem[%a], %a)" reg pp_expr addr pp_expr amount
  | Fence _ -> Format.pp_print_string ppf "fence"
  | If (c, t, f) ->
    Format.fprintf ppf "@[<v 2>if %a then%a%a@]" pp_expr c pp_block t
      (fun ppf -> function
        | [] -> ()
        | f -> Format.fprintf ppf "@;<1 -2>else%a" pp_block f)
      f
  | While (c, body) ->
    Format.fprintf ppf "@[<v 2>while %a do%a@]" pp_expr c pp_block body

and pp_block ppf instrs =
  List.iter (fun i -> Format.fprintf ppf "@,%a" pp_instr i) instrs

let pp_program ppf p =
  Format.fprintf ppf "@[<v>program %s (%d locations)" p.name p.n_locs;
  if p.symbols <> [] then begin
    Format.fprintf ppf "@,symbols:";
    List.iter (fun (n, l) -> Format.fprintf ppf " %s=%d" n l) p.symbols
  end;
  if p.init <> [] then begin
    Format.fprintf ppf "@,init:";
    List.iter (fun (l, v) -> Format.fprintf ppf " mem[%d]=%d" l v) p.init
  end;
  Array.iteri
    (fun i instrs ->
      Format.fprintf ppf "@,@[<v 2>P%d:%a@]" i pp_block instrs)
    p.procs;
  Format.fprintf ppf "@]"
