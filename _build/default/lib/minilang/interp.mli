(** Interpreter: turns a program into the thread source the machine
    drives.

    Each processor's local computation (register arithmetic, branches,
    loop control) runs silently inside [peek]; only memory accesses
    surface as requests.  A request stays pinned until the machine invokes
    its continuation, which advances the thread.  Division and modulus by
    zero evaluate to 0 so randomly generated programs cannot crash the
    simulator. *)

exception Runtime_error of string
(** Raised (from [peek]) on a computed address outside the program's
    location space. *)

val source : Ast.program -> Memsim.Thread_intf.source
(** A fresh, deterministic thread source.  Calling it again yields an
    independent restart of the program — which is what the SC enumerator
    needs. *)

val run :
  ?max_steps:int ->
  model:Memsim.Model.t ->
  sched:Memsim.Sched.t ->
  Ast.program ->
  Memsim.Exec.t
(** Convenience: [Machine.run] on a fresh source. *)

val registers_after :
  ?max_steps:int ->
  model:Memsim.Model.t ->
  sched:Memsim.Sched.t ->
  Ast.program ->
  (string * int) list array
(** Run and return each processor's final register file (sorted by name);
    useful for observational tests of program behaviour. *)
