type config = {
  n_procs : int;
  n_shared : int;
  n_locks : int;
  ops_per_proc : int;
  sync_freq : int;
}

let default_config =
  { n_procs = 2; n_shared = 3; n_locks = 2; ops_per_proc = 4; sync_freq = 3 }

(* Locations 0 .. n_shared-1 are data; n_shared .. n_shared+n_locks-1 are
   locks.  Lock locations are only touched by sync operations, data
   locations only by data operations, mirroring the paper's "special
   location known to the hardware" convention. *)

let data_loc cfg rng = Memsim.Rng.int rng cfg.n_shared
let lock_loc cfg rng = cfg.n_shared + Memsim.Rng.int rng (max 1 cfg.n_locks)

let reg p k = Printf.sprintf "r%d_%d" p k

let random_op cfg rng p k =
  if cfg.n_locks > 0 && Memsim.Rng.int rng cfg.sync_freq = 0 then
    (* synchronization op *)
    match Memsim.Rng.int rng 2 with
    | 0 -> Ast.Unset { addr = Ast.Int (lock_loc cfg rng); label = None }
    | _ ->
      Ast.Test_and_set { reg = reg p k; addr = Ast.Int (lock_loc cfg rng); label = None }
  else if Memsim.Rng.bool rng then
    Ast.Load { reg = reg p k; addr = Ast.Int (data_loc cfg rng); label = None }
  else
    Ast.Store
      { addr = Ast.Int (data_loc cfg rng);
        value = Ast.Int (1 + Memsim.Rng.int rng 9);
        label = None }

let finish_program cfg ~name ~seed procs =
  {
    Ast.name = Printf.sprintf "%s(seed=%d)" name seed;
    n_locs = cfg.n_shared + cfg.n_locks;
    init =
      (* locks start "set" so a Test&Set that precedes the matching Unset
         observes 1 and stays unpaired *)
      List.init cfg.n_locks (fun k -> (cfg.n_shared + k, 1));
    procs = Array.of_list procs;
    symbols =
      List.init cfg.n_shared (fun k -> (Printf.sprintf "x%d" k, k))
      @ List.init cfg.n_locks (fun k -> (Printf.sprintf "lock%d" k, cfg.n_shared + k));
  }

let random_racy ?(config = default_config) ~seed () =
  let rng = Memsim.Rng.create seed in
  let proc p = List.init config.ops_per_proc (fun k -> random_op config rng p k) in
  finish_program config ~name:"racy" ~seed (List.init config.n_procs proc)

(* Race-free construction.  Each shared location is either:
   - owned: all its accesses come from one processor; or
   - handed off: processor 0 writes it and Unsets a dedicated lock;
     exactly one consumer Test&Sets that lock and accesses the location
     only under [t = 0].
   Every pair of conflicting data accesses is thus either same-processor
   (po-ordered) or separated by a release/acquire pair (so1-ordered) in
   every SC execution where both occur. *)
(* Shared skeleton for the two race-free generators: [publish] and
   [consume] realize one hand-off of [loc] through flag location [lock]. *)
let racefree_skeleton cfg rng ~name ~seed ~lock_init ~publish ~consume =
  let owner = Array.init cfg.n_shared (fun _ -> Memsim.Rng.int rng cfg.n_procs) in
  let handoffs =
    if cfg.n_procs < 2 || cfg.n_locks = 0 || cfg.n_shared = 0 then []
    else
      List.init (min cfg.n_locks cfg.n_shared) (fun k ->
          let loc = k mod cfg.n_shared in
          let consumer = 1 + Memsim.Rng.int rng (cfg.n_procs - 1) in
          (loc, cfg.n_shared + k, consumer))
  in
  let handed_off = List.map (fun (l, _, _) -> l) handoffs in
  let owned_ops p k =
    let candidates =
      List.filter
        (fun l -> owner.(l) = p && not (List.mem l handed_off))
        (List.init cfg.n_shared (fun l -> l))
    in
    match candidates with
    | [] -> Ast.Set (reg p k, Ast.Int 0)
    | _ ->
      let loc = List.nth candidates (Memsim.Rng.int rng (List.length candidates)) in
      if Memsim.Rng.bool rng then
        Ast.Load { reg = reg p k; addr = Ast.Int loc; label = None }
      else
        Ast.Store { addr = Ast.Int loc; value = Ast.Int (1 + Memsim.Rng.int rng 9); label = None }
  in
  let proc p =
    let base = List.init cfg.ops_per_proc (fun k -> owned_ops p k) in
    let producer_extra =
      if p = 0 then List.concat_map (fun h -> publish h) handoffs else []
    in
    let consumer_extra =
      List.concat_map
        (fun ((_, _, consumer) as h) -> if consumer = p then consume p h else [])
        handoffs
    in
    producer_extra @ base @ consumer_extra
  in
  {
    Ast.name = Printf.sprintf "%s(seed=%d)" name seed;
    n_locs = cfg.n_shared + cfg.n_locks;
    init =
      (match lock_init with
       | 0 -> []
       | v -> List.init cfg.n_locks (fun k -> (cfg.n_shared + k, v)));
    procs = Array.of_list (List.init cfg.n_procs proc);
    symbols =
      List.init cfg.n_shared (fun k -> (Printf.sprintf "x%d" k, k))
      @ List.init cfg.n_locks (fun k -> (Printf.sprintf "lock%d" k, cfg.n_shared + k));
  }

let random_racefree_ra ?(config = default_config) ~seed () =
  let rng = Memsim.Rng.create seed in
  let publish (loc, flag, _) =
    [
      Ast.Store { addr = Ast.Int loc; value = Ast.Int 7; label = None };
      Ast.Sync_store { addr = Ast.Int flag; value = Ast.Int 9; label = None };
    ]
  in
  let consume p (loc, flag, _) =
    let f = Printf.sprintf "f%d_%d" p flag in
    [
      Ast.Sync_load { reg = f; addr = Ast.Int flag; label = None };
      Ast.If
        ( Ast.Bin (Ast.Eq, Ast.Reg f, Ast.Int 9),
          [ Ast.Load { reg = f ^ "v"; addr = Ast.Int loc; label = None } ],
          [] );
    ]
  in
  racefree_skeleton config rng ~name:"racefree_ra" ~seed ~lock_init:0 ~publish ~consume

let random_racefree ?(config = default_config) ~seed () =
  let rng = Memsim.Rng.create seed in
  let publish (loc, lock, _) =
    [
      Ast.Store { addr = Ast.Int loc; value = Ast.Int 7; label = None };
      Ast.Unset { addr = Ast.Int lock; label = None };
    ]
  in
  let consume p (loc, lock, _) =
    let t = Printf.sprintf "t%d_%d" p lock in
    [
      Ast.Test_and_set { reg = t; addr = Ast.Int lock; label = None };
      Ast.If
        ( Ast.Bin (Ast.Eq, Ast.Reg t, Ast.Int 0),
          [ Ast.Load { reg = t ^ "v"; addr = Ast.Int loc; label = None } ],
          [] );
    ]
  in
  racefree_skeleton config rng ~name:"racefree" ~seed ~lock_init:1 ~publish ~consume
