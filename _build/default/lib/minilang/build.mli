(** Combinators for writing programs compactly.

    [examples/quickstart.ml] shows the intended style:
    {[
      let open Minilang.Build in
      program ~name:"handoff" ~locs:[ "x"; "flag" ] ~init:[ ("flag", 1) ]
        [ [ store "x" (i 42); unset "flag" ];
          spin_lock "flag" @ [ load "r" "x" ] ]
    ]} *)

open Ast

val i : int -> expr
val r : string -> expr
val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( =: ) : expr -> expr -> expr
val ( <>: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( <=: ) : expr -> expr -> expr

val set : string -> expr -> instr

val load : ?label:string -> string -> string -> instr
(** [load reg loc_name]: data read of a named location. *)

val store : ?label:string -> string -> expr -> instr

val load_at : ?label:string -> string -> expr -> instr
(** Data read at a computed address. *)

val store_at : ?label:string -> expr -> expr -> instr

val acquire_load : ?label:string -> string -> string -> instr
val release_store : ?label:string -> string -> expr -> instr

val test_and_set : ?label:string -> string -> string -> instr
val unset : ?label:string -> string -> instr
val fetch_and_add : ?label:string -> string -> string -> expr -> instr
val fence : ?label:string -> unit -> instr

val if_ : expr -> instr list -> instr list -> instr
val while_ : expr -> instr list -> instr

val spin_lock : ?label:string -> string -> instr list
(** [while test&set(lock) <> 0 do done] — blocks until the lock, initially
    1 ("set") or freed by {!unset}, is acquired. *)

val for_ : string -> from:expr -> below:expr -> instr list -> instr list
(** Counted loop over a register. *)

val program :
  name:string ->
  locs:string list ->
  ?extra_locs:int ->
  ?init:(string * int) list ->
  instr list list ->
  program
(** [program ~name ~locs procs] assigns location numbers
    [extra_locs, extra_locs+1, ...] to the named locations in order; the
    first [extra_locs] (default 0) locations stay anonymous — Figure 2's
    work regions use them as a flat array.  Named initializations refer to
    the symbols.  @raise Invalid_argument when {!Ast.validate} fails. *)
