(** Random program generation for Monte-Carlo validation (experiments E5
    and E6).

    Two populations:
    - {!random_racy}: unconstrained straight-line mixes of data and
      synchronization operations over a small shared location space.
      These usually (not always) contain data races.
    - {!random_racefree}: data-race-free {e by construction}, combining
      two provably safe patterns — per-processor location ownership, and
      guarded hand-offs (a consumer touches a shared location only after a
      Test&Set that observed the producer's Unset, which orders the
      accesses by hb1 in every SC execution).

    Generated programs are loop-free, so every execution terminates and
    the SC interleaving space is finite — a requirement for exhaustive
    ground truth. *)

type config = {
  n_procs : int;        (** ≥ 2 *)
  n_shared : int;       (** shared data locations *)
  n_locks : int;        (** synchronization locations *)
  ops_per_proc : int;
  sync_freq : int;      (** a sync op roughly every [sync_freq] ops *)
}

val default_config : config
(** 2 processors, 3 shared locations, 2 locks, 4 ops each, sync every 3 —
    small enough to enumerate exhaustively. *)

val random_racy : ?config:config -> seed:int -> unit -> Ast.program

val random_racefree : ?config:config -> seed:int -> unit -> Ast.program

val random_racefree_ra : ?config:config -> seed:int -> unit -> Ast.program
(** Like {!random_racefree}, but the hand-offs use generic release/acquire
    flag accesses ([Sync_store]/[Sync_load]) instead of Test&Set/Unset —
    the synchronization style RCsc and DRF1 are designed around.  The
    consumer touches the handed-off location only after an acquire read
    returned the producer's published value, so every conflicting pair is
    so1-ordered in every SC execution. *)
