let magic = "weakrace-trace"
let version = 1

let encode_class = function
  | Memsim.Op.Data -> "data"
  | Memsim.Op.Acquire -> "acquire"
  | Memsim.Op.Release -> "release"
  | Memsim.Op.Plain_sync -> "sync"

let decode_class = function
  | "data" -> Some Memsim.Op.Data
  | "acquire" -> Some Memsim.Op.Acquire
  | "release" -> Some Memsim.Op.Release
  | "sync" -> Some Memsim.Op.Plain_sync
  | _ -> None

let encode_set s =
  match Graphlib.Bitset.elements s with
  | [] -> "-"
  | xs -> String.concat "," (List.map string_of_int xs)

let encode (t : Trace.t) =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "%s %d" magic version;
  line "model %s" t.Trace.model;
  line "truncated %d" (if t.Trace.truncated then 1 else 0);
  line "procs %d locs %d events %d" t.Trace.n_procs t.Trace.n_locs
    (Array.length t.Trace.events);
  Array.iter
    (fun (ev : Event.t) ->
      match ev.Event.body with
      | Event.Computation { reads; writes; _ } ->
        line "event %d proc %d seq %d comp reads %s writes %s" ev.Event.eid ev.Event.proc
          ev.Event.seq (encode_set reads) (encode_set writes)
      | Event.Sync { op; slot } ->
        line "event %d proc %d seq %d sync loc %d kind %s cls %s value %d slot %d label %s"
          ev.Event.eid ev.Event.proc ev.Event.seq op.Memsim.Op.loc
          (match op.Memsim.Op.kind with Memsim.Op.Read -> "R" | Memsim.Op.Write -> "W")
          (encode_class op.Memsim.Op.cls)
          op.Memsim.Op.value slot
          (match op.Memsim.Op.label with None -> "-" | Some l -> l))
    t.Trace.events;
  List.iter (fun (r, a) -> line "so1 %d %d" r a) t.Trace.so1;
  List.iter
    (fun (loc, eids) ->
      line "syncorder %d %s" loc
        (match eids with
         | [] -> "-"
         | _ -> String.concat "," (List.map string_of_int eids)))
    t.Trace.sync_order;
  Buffer.contents buf

let write_file path t =
  let oc = open_out path in
  (try output_string oc (encode t)
   with exn -> close_out_noerr oc; raise exn);
  close_out oc

(* -- decoding ------------------------------------------------------- *)

exception Parse of string

let fail lineno fmt =
  Printf.ksprintf (fun msg -> raise (Parse (Printf.sprintf "line %d: %s" lineno msg))) fmt

let parse_int lineno s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail lineno "expected an integer, got %S" s

let parse_set lineno n_locs s =
  let set = Graphlib.Bitset.create n_locs in
  if s <> "-" && s <> "" then
    String.split_on_char ',' s
    |> List.iter (fun tok ->
           let v = parse_int lineno tok in
           if v < 0 || v >= n_locs then fail lineno "location %d out of range" v;
           Graphlib.Bitset.add set v);
  set

let decode text =
  try
    let lines =
      String.split_on_char '\n' text
      |> List.mapi (fun i l -> (i + 1, String.trim l))
      |> List.filter (fun (_, l) -> l <> "")
    in
    let header, rest =
      match lines with
      | (n, h) :: rest -> ((n, h), rest)
      | [] -> raise (Parse "empty trace")
    in
    (match String.split_on_char ' ' (snd header) with
     | [ m; v ] when m = magic ->
       if parse_int (fst header) v <> version then
         fail (fst header) "unsupported version %s" v
     | _ -> fail (fst header) "bad magic");
    let model = ref "" in
    let truncated = ref false in
    let n_procs = ref 0 and n_locs = ref 0 and n_events = ref 0 in
    let events : Event.t option array ref = ref [||] in
    let so1 = ref [] in
    let sync_order = ref [] in
    let handle lineno l =
      match String.split_on_char ' ' l with
      | [ "model"; m ] -> model := m
      | [ "truncated"; v ] -> truncated := parse_int lineno v <> 0
      | [ "procs"; p; "locs"; lo; "events"; ev ] ->
        n_procs := parse_int lineno p;
        n_locs := parse_int lineno lo;
        n_events := parse_int lineno ev;
        if !n_procs < 0 || !n_locs < 0 || !n_events < 0 then
          fail lineno "negative size";
        events := Array.make !n_events None
      | "event" :: eid :: "proc" :: proc :: "seq" :: seq :: "comp" :: "reads" :: r
        :: "writes" :: w :: [] ->
        let eid = parse_int lineno eid in
        if eid < 0 || eid >= !n_events then fail lineno "event id %d out of range" eid;
        !events.(eid) <-
          Some
            {
              Event.eid;
              proc = parse_int lineno proc;
              seq = parse_int lineno seq;
              body =
                Event.Computation
                  {
                    reads = parse_set lineno !n_locs r;
                    writes = parse_set lineno !n_locs w;
                    ops = [];
                  };
            }
      | "event" :: eid :: "proc" :: proc :: "seq" :: seq :: "sync" :: "loc" :: loc
        :: "kind" :: kind :: "cls" :: cls :: "value" :: value :: "slot" :: slot
        :: "label" :: label ->
        let eid = parse_int lineno eid in
        if eid < 0 || eid >= !n_events then fail lineno "event id %d out of range" eid;
        let kind =
          match kind with
          | "R" -> Memsim.Op.Read
          | "W" -> Memsim.Op.Write
          | k -> fail lineno "bad kind %S" k
        in
        let cls =
          match decode_class cls with
          | Some c -> c
          | None -> fail lineno "bad class %S" cls
        in
        let label =
          match String.concat " " label with "-" -> None | l -> Some l
        in
        let proc = parse_int lineno proc in
        let loc = parse_int lineno loc in
        if loc < 0 || loc >= !n_locs then fail lineno "location %d out of range" loc;
        !events.(eid) <-
          Some
            {
              Event.eid;
              proc;
              seq = parse_int lineno seq;
              body =
                Event.Sync
                  {
                    op =
                      {
                        Memsim.Op.id = -1;
                        proc;
                        pindex = -1;
                        loc;
                        kind;
                        cls;
                        value = parse_int lineno value;
                        label;
                      };
                    slot = parse_int lineno slot;
                  };
            }
      | [ "so1"; r; a ] ->
        let r = parse_int lineno r and a = parse_int lineno a in
        if r < 0 || r >= !n_events || a < 0 || a >= !n_events then
          fail lineno "so1 pair out of range";
        so1 := (r, a) :: !so1
      | [ "syncorder"; loc; eids ] ->
        let loc = parse_int lineno loc in
        let eids =
          if eids = "-" || eids = "" then []
          else String.split_on_char ',' eids |> List.map (parse_int lineno)
        in
        List.iter
          (fun e -> if e < 0 || e >= !n_events then fail lineno "sync order id out of range")
          eids;
        sync_order := (loc, eids) :: !sync_order
      | _ -> fail lineno "unrecognized record %S" l
    in
    List.iter (fun (n, l) -> handle n l) rest;
    let events =
      Array.mapi
        (fun i ev ->
          match ev with
          | Some e -> e
          | None -> fail 0 "missing event %d" i)
        !events
    in
    if Array.exists (fun (e : Event.t) -> e.Event.proc < 0 || e.Event.proc >= !n_procs) events
    then raise (Parse "event with processor out of range");
    let by_proc = Array.make !n_procs [] in
    Array.iter (fun (e : Event.t) -> by_proc.(e.Event.proc) <- e :: by_proc.(e.Event.proc)) events;
    let by_proc =
      Array.map
        (fun evs ->
          let arr = Array.of_list (List.rev evs) in
          Array.sort (fun (a : Event.t) (b : Event.t) -> compare a.Event.seq b.Event.seq) arr;
          arr)
        by_proc
    in
    Ok
      {
        Trace.n_procs = !n_procs;
        n_locs = !n_locs;
        model = !model;
        truncated = !truncated;
        events;
        by_proc;
        so1 = List.rev !so1;
        sync_order = List.rev !sync_order;
      }
  with Parse msg -> Error msg

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> decode text
  | exception Sys_error msg -> Error msg

let equivalent a b =
  (* compare via the canonical encoding, which drops the ops payload *)
  String.equal (encode a) (encode b)

(* -- split (per-processor) trace files ------------------------------- *)

(* The single-file format is already line-oriented with self-describing
   records, so the split encoding reuses it: each processor file carries
   that processor's event lines under the same header, and the sync file
   carries everything else.  [read_dir] concatenates and decodes. *)

let proc_file dir p = Filename.concat dir (Printf.sprintf "proc%d.trace" p)
let sync_file dir = Filename.concat dir "sync.trace"

let write_dir dir (t : Trace.t) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let full = encode t in
  let lines = String.split_on_char '\n' full in
  let is_event_of p l =
    match String.split_on_char ' ' l with
    | "event" :: _ :: "proc" :: q :: _ -> int_of_string_opt q = Some p
    | _ -> false
  in
  let write path keep =
    let oc = open_out path in
    List.iter
      (fun l -> if keep l then (output_string oc l; output_char oc '\n'))
      lines;
    close_out oc
  in
  for p = 0 to t.Trace.n_procs - 1 do
    write (proc_file dir p) (is_event_of p)
  done;
  let is_any_event l =
    match String.split_on_char ' ' l with "event" :: _ -> true | _ -> false
  in
  write (sync_file dir) (fun l -> l <> "" && not (is_any_event l))

let read_dir dir =
  match In_channel.with_open_text (sync_file dir) In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | sync ->
    (* the header carries the processor count on its "procs" line *)
    let n_procs =
      String.split_on_char '\n' sync
      |> List.find_map (fun l ->
             match String.split_on_char ' ' l with
             | [ "procs"; p; "locs"; _; "events"; _ ] -> int_of_string_opt p
             | _ -> None)
    in
    (match n_procs with
     | None -> Error "sync.trace: missing procs header"
     | Some n -> (
       let buf = Buffer.create 4096 in
       (* the header must come first; event records may follow in any order *)
       Buffer.add_string buf sync;
       match
         List.init n (fun p ->
             In_channel.with_open_text (proc_file dir p) In_channel.input_all)
       with
       | parts ->
         List.iter (Buffer.add_string buf) parts;
         decode (Buffer.contents buf)
       | exception Sys_error msg -> Error msg))
