type body =
  | Computation of {
      reads : Graphlib.Bitset.t;
      writes : Graphlib.Bitset.t;
      ops : Memsim.Op.t list;
    }
  | Sync of { op : Memsim.Op.t; slot : int }

type t = { eid : int; proc : int; seq : int; body : body }

let is_sync e = match e.body with Sync _ -> true | Computation _ -> false
let is_computation e = not (is_sync e)

let reads e ~n_locs =
  match e.body with
  | Computation { reads; _ } -> reads
  | Sync { op; _ } ->
    let s = Graphlib.Bitset.create n_locs in
    if op.Memsim.Op.kind = Memsim.Op.Read then Graphlib.Bitset.add s op.Memsim.Op.loc;
    s

let writes e ~n_locs =
  match e.body with
  | Computation { writes; _ } -> writes
  | Sync { op; _ } ->
    let s = Graphlib.Bitset.create n_locs in
    if op.Memsim.Op.kind = Memsim.Op.Write then Graphlib.Bitset.add s op.Memsim.Op.loc;
    s

let touches e loc =
  match e.body with
  | Computation { reads; writes; _ } ->
    Graphlib.Bitset.mem reads loc || Graphlib.Bitset.mem writes loc
  | Sync { op; _ } -> op.Memsim.Op.loc = loc

let conflict a b =
  match (a.body, b.body) with
  | Computation ca, Computation cb ->
    Graphlib.Bitset.intersects ca.writes cb.writes
    || Graphlib.Bitset.intersects ca.writes cb.reads
    || Graphlib.Bitset.intersects ca.reads cb.writes
  | Computation c, Sync { op; _ } | Sync { op; _ }, Computation c ->
    let l = op.Memsim.Op.loc in
    if op.Memsim.Op.kind = Memsim.Op.Write then
      Graphlib.Bitset.mem c.reads l || Graphlib.Bitset.mem c.writes l
    else Graphlib.Bitset.mem c.writes l
  | Sync { op = oa; _ }, Sync { op = ob; _ } -> Memsim.Op.conflict oa ob

let conflict_locs a b ~n_locs =
  let wa = writes a ~n_locs and ra = reads a ~n_locs in
  let wb = writes b ~n_locs and rb = reads b ~n_locs in
  let open Graphlib.Bitset in
  let s = union (inter wa wb) (union (inter wa rb) (inter ra wb)) in
  elements s

let involves_data = is_computation

let pp ppf e =
  match e.body with
  | Computation { reads; writes; ops } ->
    Format.fprintf ppf "E%d[P%d.%d comp %d ops R=%a W=%a]" e.eid e.proc e.seq
      (List.length ops) Graphlib.Bitset.pp reads Graphlib.Bitset.pp writes
  | Sync { op; slot } ->
    Format.fprintf ppf "E%d[P%d.%d sync %a slot=%d]" e.eid e.proc e.seq Memsim.Op.pp
      op slot
