type t = {
  n_procs : int;
  n_locs : int;
  model : string;
  truncated : bool;
  events : Event.t array;
  by_proc : Event.t array array;
  so1 : (int * int) list;
  sync_order : (Memsim.Op.loc * int list) list;
}

let of_execution (e : Memsim.Exec.t) =
  let n_locs = e.Memsim.Exec.n_locs in
  let events = ref [] in
  let n_events = ref 0 in
  let op_event = Hashtbl.create 64 in  (* op id -> eid *)
  let by_proc =
    Array.map
      (fun ops ->
        let proc_events = ref [] in
        let seq = ref 0 in
        let pending_reads = ref (Graphlib.Bitset.create n_locs) in
        let pending_writes = ref (Graphlib.Bitset.create n_locs) in
        let pending_ops = ref [] in
        let emit body proc =
          let ev = { Event.eid = !n_events; proc; seq = !seq; body } in
          incr n_events;
          incr seq;
          events := ev :: !events;
          proc_events := ev :: !proc_events;
          ev
        in
        let flush proc =
          if !pending_ops <> [] then begin
            let ev =
              emit
                (Event.Computation
                   {
                     reads = !pending_reads;
                     writes = !pending_writes;
                     ops = List.rev !pending_ops;
                   })
                proc
            in
            List.iter
              (fun (o : Memsim.Op.t) -> Hashtbl.replace op_event o.Memsim.Op.id ev.Event.eid)
              !pending_ops;
            pending_reads := Graphlib.Bitset.create n_locs;
            pending_writes := Graphlib.Bitset.create n_locs;
            pending_ops := []
          end
        in
        Array.iter
          (fun (o : Memsim.Op.t) ->
            if Memsim.Op.is_data o.Memsim.Op.cls then begin
              (match o.Memsim.Op.kind with
               | Memsim.Op.Read -> Graphlib.Bitset.add !pending_reads o.Memsim.Op.loc
               | Memsim.Op.Write -> Graphlib.Bitset.add !pending_writes o.Memsim.Op.loc);
              pending_ops := o :: !pending_ops
            end
            else begin
              flush o.Memsim.Op.proc;
              let ev = emit (Event.Sync { op = o; slot = -1 }) o.Memsim.Op.proc in
              Hashtbl.replace op_event o.Memsim.Op.id ev.Event.eid
            end)
          ops;
        (match Array.length ops with
         | 0 -> ()
         | n -> flush ops.(n - 1).Memsim.Op.proc);
        Array.of_list (List.rev !proc_events))
      e.Memsim.Exec.by_proc
  in
  let events = Array.of_list (List.rev !events) in
  (* per-location synchronization order, by commit time *)
  let sync_events =
    Array.to_list events
    |> List.filter_map (fun (ev : Event.t) ->
           match ev.Event.body with
           | Event.Sync { op; _ } -> Some (ev, op)
           | Event.Computation _ -> None)
  in
  let locs =
    List.map (fun (_, (o : Memsim.Op.t)) -> o.Memsim.Op.loc) sync_events
    |> List.sort_uniq compare
  in
  let sync_order =
    List.map
      (fun loc ->
        let here =
          List.filter (fun (_, (o : Memsim.Op.t)) -> o.Memsim.Op.loc = loc) sync_events
          |> List.sort (fun (_, (a : Memsim.Op.t)) (_, (b : Memsim.Op.t)) ->
                 compare
                   e.Memsim.Exec.commit.(a.Memsim.Op.id)
                   e.Memsim.Exec.commit.(b.Memsim.Op.id))
        in
        (* record each event's slot *)
        List.iteri
          (fun slot ((ev : Event.t), (op : Memsim.Op.t)) ->
            events.(ev.Event.eid) <- { ev with Event.body = Event.Sync { op; slot } })
          here;
        (loc, List.map (fun ((ev : Event.t), _) -> ev.Event.eid) here))
      locs
  in
  (* refresh by_proc with the slot-patched events *)
  let by_proc = Array.map (Array.map (fun (ev : Event.t) -> events.(ev.Event.eid))) by_proc in
  let so1 =
    Memsim.Exec.so1_pairs e
    |> List.map (fun ((rel : Memsim.Op.t), (acq : Memsim.Op.t)) ->
           (Hashtbl.find op_event rel.Memsim.Op.id, Hashtbl.find op_event acq.Memsim.Op.id))
  in
  {
    n_procs = e.Memsim.Exec.n_procs;
    n_locs;
    model = Memsim.Model.name e.Memsim.Exec.model;
    truncated = e.Memsim.Exec.truncated;
    events;
    by_proc;
    so1;
    sync_order;
  }

let n_events t = Array.length t.events

let n_computation_events t =
  Array.to_list t.events |> List.filter Event.is_computation |> List.length

let n_sync_events t = n_events t - n_computation_events t

let so1_reconstruct t =
  List.concat_map
    (fun (_, eids) ->
      let evs = List.map (fun eid -> t.events.(eid)) eids in
      let rec walk last_release acc = function
        | [] -> List.rev acc
        | (ev : Event.t) :: rest -> (
          match ev.Event.body with
          | Event.Sync { op; _ } -> (
            match (op.Memsim.Op.kind, op.Memsim.Op.cls) with
            | Memsim.Op.Write, Memsim.Op.Release -> walk (Some (ev, op)) acc rest
            | Memsim.Op.Write, _ ->
              (* a non-release sync write destroys the pairing window *)
              walk None acc rest
            | Memsim.Op.Read, Memsim.Op.Acquire -> (
              match last_release with
              | Some ((rel : Event.t), (relop : Memsim.Op.t))
                when relop.Memsim.Op.value = op.Memsim.Op.value ->
                walk last_release ((rel.Event.eid, ev.Event.eid) :: acc) rest
              | Some _ | None -> walk last_release acc rest)
            | Memsim.Op.Read, _ -> walk last_release acc rest)
          | Event.Computation _ -> walk last_release acc rest)
      in
      walk None [] evs)
    t.sync_order

(* E7 size accounting: a computation-event record is two bit vectors plus a
   small header; an op-level record is ~16 bytes per memory operation. *)
let bitvector_bytes n_locs = (n_locs + 7) / 8

let stats_bytes_event_level t =
  Array.fold_left
    (fun acc (ev : Event.t) ->
      acc
      +
      match ev.Event.body with
      | Event.Computation _ -> 8 + (2 * bitvector_bytes t.n_locs)
      | Event.Sync _ -> 24)
    0 t.events

let stats_bytes_op_level t =
  Array.fold_left
    (fun acc (ev : Event.t) ->
      acc
      +
      match ev.Event.body with
      | Event.Computation { ops; _ } -> 16 * List.length ops
      | Event.Sync _ -> 24)
    0 t.events

let pp ppf t =
  Format.fprintf ppf "@[<v>trace (%s, %d procs, %d locs, %d events)" t.model t.n_procs
    t.n_locs (n_events t);
  Array.iteri
    (fun p evs ->
      Format.fprintf ppf "@,P%d:" p;
      Array.iter (fun ev -> Format.fprintf ppf "@,  %a" Event.pp ev) evs)
    t.by_proc;
  if t.so1 <> [] then begin
    Format.fprintf ppf "@,so1:";
    List.iter (fun (r, a) -> Format.fprintf ppf " E%d->E%d" r a) t.so1
  end;
  Format.fprintf ppf "@]"
