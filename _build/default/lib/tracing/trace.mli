(** Traces: what the instrumented program writes out during execution
    (§4.1).

    A trace records (1) the order of events issued by each processor,
    (2) the relative order of synchronization events on the same location
    (the [slot] of each sync event), and (3) the READ/WRITE sets of each
    computation event.  Tracers additionally log, for each acquire, which
    release's value it returned — [so1] — exactly the information a
    Test&Set instrumentation stub observes. *)

type t = {
  n_procs : int;
  n_locs : int;
  model : string;
  truncated : bool;
  events : Event.t array;          (** indexed by [eid] *)
  by_proc : Event.t array array;   (** per processor, in program order *)
  so1 : (int * int) list;
      (** Definition 2.2 at event level: (release eid, acquire eid) pairs
          where the acquire returned the release's value *)
  sync_order : (Memsim.Op.loc * int list) list;
      (** per location: sync event ids in the order they took effect *)
}

val of_execution : Memsim.Exec.t -> t
(** Segment each processor's operation stream into events — consecutive
    data operations form one computation event, every sync operation its
    own event — and derive so1 from the execution's reads-from. *)

val n_events : t -> int
val n_computation_events : t -> int
val n_sync_events : t -> int

val so1_reconstruct : t -> (int * int) list
(** so1 as a post-mortem analyzer would rebuild it from the per-location
    synchronization order alone: an acquire pairs with the latest release
    on the same location that precedes it in that order and whose written
    value it returned.  Under the discipline that synchronization
    locations are accessed only by synchronization operations this agrees
    with [so1]. *)

val stats_bytes_event_level : t -> int
(** Approximate trace-file size for event-level tracing: per computation
    event two bit vectors over the location space plus a fixed header;
    per sync event a fixed record.  Used by experiment E7. *)

val stats_bytes_op_level : t -> int
(** Approximate trace-file size had every memory operation been logged
    individually (the naive alternative the paper rejects). *)

val pp : Format.formatter -> t -> unit
