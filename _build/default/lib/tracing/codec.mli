(** Trace-file serialization: a line-oriented text format.

    The on-disk content is exactly the information the paper's
    instrumentation records — per-processor event order, per-location
    synchronization order, READ/WRITE sets, and the release observed by
    each acquire.  Individual data operations are {e not} written (that is
    the point of event-level tracing), so decoding a trace yields
    computation events with empty [ops] lists. *)

val encode : Trace.t -> string

val write_file : string -> Trace.t -> unit

val decode : string -> (Trace.t, string) Result.t
(** Strict parse; the error message names the offending line.  A decoded
    trace is semantically equivalent to the encoded one for every
    analysis: same events, sets, so1 and sync order. *)

val read_file : string -> (Trace.t, string) Result.t

val equivalent : Trace.t -> Trace.t -> bool
(** Equality on the serialized information content (ignores the in-memory
    [ops] debug payload). *)

val write_dir : string -> Trace.t -> unit
(** Per-processor trace files, as the paper's instrumentation would write
    them: [dir/procN.trace] holds processor N's event stream, and
    [dir/sync.trace] the shared header, per-location synchronization order
    and release/acquire pairing.  Creates [dir] if needed. *)

val read_dir : string -> (Trace.t, string) Result.t
(** Merge a {!write_dir} directory back into a trace; the result is
    {!equivalent} to the original. *)
