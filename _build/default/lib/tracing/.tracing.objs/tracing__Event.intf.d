lib/tracing/event.mli: Format Graphlib Memsim
