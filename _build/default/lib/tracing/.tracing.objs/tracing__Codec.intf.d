lib/tracing/codec.mli: Result Trace
