lib/tracing/corrupt.mli:
