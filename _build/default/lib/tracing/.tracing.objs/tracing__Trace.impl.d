lib/tracing/trace.ml: Array Event Format Graphlib Hashtbl List Memsim
