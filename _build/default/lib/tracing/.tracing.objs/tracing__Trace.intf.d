lib/tracing/trace.mli: Event Format Memsim
