lib/tracing/event.ml: Format Graphlib List Memsim
