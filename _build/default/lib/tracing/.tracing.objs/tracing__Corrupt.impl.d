lib/tracing/corrupt.ml: Array Bytes Char List Memsim Option String
