lib/tracing/codec.ml: Array Buffer Event Filename Graphlib In_channel List Memsim Printf String Sys Trace
