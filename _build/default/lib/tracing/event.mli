(** Trace events (§4.1 of the paper).

    "An event is either a single synchronization operation (a
    synchronization event), or a group of consecutively executed data
    operations (a computation event)."  Computation events carry only
    their READ and WRITE sets — bit vectors over the location space —
    because "recording the READ and WRITE sets is in general more
    efficient than tracing every memory operation".

    The [ops] field preserves the underlying operations for debugging and
    for the SCP analysis of the test suite; it is {e not} serialized by
    {!Codec}, so the information content of a trace file is exactly the
    paper's. *)

type body =
  | Computation of {
      reads : Graphlib.Bitset.t;
      writes : Graphlib.Bitset.t;
      ops : Memsim.Op.t list;  (** in program order; empty after decoding *)
    }
  | Sync of {
      op : Memsim.Op.t;
      slot : int;  (** position in the per-location synchronization order *)
    }

type t = {
  eid : int;   (** unique within a trace *)
  proc : int;
  seq : int;   (** index within the processor's event sequence *)
  body : body;
}

val is_sync : t -> bool
val is_computation : t -> bool

val reads : t -> n_locs:int -> Graphlib.Bitset.t
(** Locations read: the READ set of a computation event, the singleton
    location of a sync read, empty for a sync write. *)

val writes : t -> n_locs:int -> Graphlib.Bitset.t

val touches : t -> Memsim.Op.loc -> bool

val conflict : t -> t -> bool
(** Some location is accessed by both and written by at least one. *)

val conflict_locs : t -> t -> n_locs:int -> Memsim.Op.loc list
(** The locations witnessing a conflict. *)

val involves_data : t -> bool
(** True for computation events: a race with such an endpoint is a
    {e data} race (Def 2.4 lifted to events, §4.1). *)

val pp : Format.formatter -> t -> unit
