type latencies = { read : int; write : int; sync : int }

let default_latencies = { read = 20; write = 20; sync = 30 }

type estimate = { per_proc : int array; makespan : int; stall_cycles : int }

(* Per-processor timeline.  [busy_until] models the processor's single
   memory port: background write completions are pipelined behind each
   other. *)
let time_proc lat mode ops =
  let now = ref 0 in
  let stalled = ref 0 in
  let pending = ref [] in  (* completion times of buffered writes *)
  let last_completion = ref 0 in
  let stall_until t =
    if t > !now then begin
      stalled := !stalled + (t - !now);
      now := t
    end
  in
  let drain () =
    List.iter stall_until !pending;
    pending := []
  in
  Array.iter
    (fun (o : Op.t) ->
      match (o.Op.kind, Model.buffers_writes mode) with
      | Op.Read, _ ->
        if Model.drains_on mode o.Op.cls then drain ();
        let cost = lat.read + if Op.is_sync o.Op.cls then lat.sync else 0 in
        now := !now + cost
      | Op.Write, false ->
        (* SC: stall for the full write latency *)
        let cost = lat.write + if Op.is_sync o.Op.cls then lat.sync else 0 in
        now := !now + cost
      | Op.Write, true ->
        if Model.drains_on mode o.Op.cls then drain ();
        if Op.is_sync o.Op.cls then begin
          (* sync writes perform at memory: stall for them *)
          now := !now + lat.write + lat.sync
        end
        else begin
          (* buffered: one issue cycle; the write port is pipelined, so a
             completion lands [write] cycles after issue but at most one
             per cycle *)
          let c = max (!now + lat.write) (!last_completion + 1) in
          last_completion := c;
          pending := c :: !pending;
          now := !now + 1
        end)
    ops;
  drain ();
  (!now, !stalled)

let estimate ?(lat = default_latencies) ~mode (e : Exec.t) =
  let results = Array.map (time_proc lat mode) e.Exec.by_proc in
  let per_proc = Array.map fst results in
  {
    per_proc;
    makespan = Array.fold_left max 0 per_proc;
    stall_cycles = Array.fold_left (fun acc (_, s) -> acc + s) 0 results;
  }

let speedup_vs_sc ?lat (e : Exec.t) =
  let sc = estimate ?lat ~mode:Model.SC e in
  let own = estimate ?lat ~mode:e.Exec.model e in
  if own.makespan = 0 then 1.0 else float_of_int sc.makespan /. float_of_int own.makespan
