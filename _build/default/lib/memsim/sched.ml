type t = { choose : Exec.decision list -> Exec.decision }

let choose t enabled =
  if enabled = [] then invalid_arg "Sched.choose: no enabled decision";
  t.choose enabled

let nth_of rng xs = List.nth xs (Rng.int rng (List.length xs))

let random ~seed =
  let rng = Rng.create seed in
  { choose = (fun enabled -> nth_of rng enabled) }

let split_issues enabled =
  List.partition (function Exec.Issue _ -> true | Exec.Retire _ -> false) enabled

let adversarial ?(retire_bias = 4) ~seed () =
  let rng = Rng.create seed in
  let choose enabled =
    let issues, retires = split_issues enabled in
    match (issues, retires) with
    | [], _ -> nth_of rng retires
    | _, [] -> nth_of rng issues
    | _, _ -> if Rng.int rng retire_bias = 0 then nth_of rng retires else nth_of rng issues
  in
  { choose }

let eager ~seed =
  let rng = Rng.create seed in
  let choose enabled =
    let issues, retires = split_issues enabled in
    if retires <> [] then nth_of rng retires else nth_of rng issues
  in
  { choose }

let round_robin () =
  let last = ref (-1) in
  let choose enabled =
    let issues, retires = split_issues enabled in
    let proc_of = function Exec.Issue p -> p | Exec.Retire (p, _) -> p in
    match issues with
    | [] -> List.hd retires
    | _ ->
      (* smallest issuing proc strictly greater than the last one, wrapping *)
      let sorted = List.sort compare (List.map proc_of issues) in
      let next =
        match List.find_opt (fun p -> p > !last) sorted with
        | Some p -> p
        | None -> List.hd sorted
      in
      last := next;
      Exec.Issue next
  in
  { choose }

let replay decisions =
  let remaining = ref decisions in
  let choose enabled =
    match !remaining with
    | [] -> invalid_arg "Sched.replay: decision list exhausted"
    | d :: rest ->
      if not (List.mem d enabled) then
        invalid_arg
          (Format.asprintf "Sched.replay: decision %a not enabled" Exec.pp_decision d);
      remaining := rest;
      d
  in
  { choose }
