(** An analytic timing model for the performance claim that motivates weak
    models (§1) and the paper's conclusion that a slower sequentially
    consistent debug mode is unnecessary (§5).

    A conventional SC implementation "stalls on every memory operation
    until its completion"; a weak implementation retires data writes from
    a store buffer in the background and stalls only at the
    synchronization points its model requires.  Given an execution (which
    fixes each processor's operation sequence), [estimate] computes the
    completion time of every processor under a latency assignment and a
    stall policy, and the execution's makespan is the maximum.

    This deliberately models only processor stalls — not contention or
    coherence traffic — which is the first-order effect the weak-model
    papers target. *)

type latencies = {
  read : int;       (** cycles a read stalls the processor *)
  write : int;      (** cycles a memory write takes to complete *)
  sync : int;       (** additional cycles for a synchronization access *)
}

val default_latencies : latencies
(** read 20, write 20, sync 30 — a 1991-vintage bus-based multiprocessor. *)

type estimate = {
  per_proc : int array;  (** completion cycle of each processor *)
  makespan : int;
  stall_cycles : int;    (** total cycles processors spent stalled *)
}

val estimate : ?lat:latencies -> mode:Model.t -> Exec.t -> estimate
(** Timing of the execution's operation streams under [mode]'s stall
    policy.  [mode = SC] stalls [read]/[write] cycles on every operation;
    buffering models charge one cycle per data write at issue, complete it
    [write] cycles later in the background (one memory port per
    processor), and stall at a synchronization operation until the
    operations its drain rule covers have completed. *)

val speedup_vs_sc : ?lat:latencies -> Exec.t -> float
(** [makespan under SC timing / makespan under the execution's own model's
    timing] for the same operation streams — how much a "slow SC debugging
    mode" would cost. *)
