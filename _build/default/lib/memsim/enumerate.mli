(** Exhaustive and sampled exploration of sequentially consistent
    executions.

    Under SC the only scheduling freedom is which processor issues next,
    so the set of SC executions of a (terminating) program is the set of
    complete issue interleavings.  Exhaustive enumeration is the ground
    truth for every paper-level notion that quantifies over "all
    sequentially consistent executions": data-race-free programs
    (Def 2.4), races that "also occur in some SC execution" (Thm 4.2), and
    sequentially consistent prefixes (Def 3.2).

    Enumeration is exponential; it is intended for the small litmus
    programs of the test suite.  [explore] stops after [limit] executions
    and reports whether the space was covered completely. *)

type result = {
  executions : Exec.t list;
  complete : bool;  (** false when [limit] or [max_steps] cut exploration short *)
}

val explore :
  ?max_steps:int -> ?limit:int -> (unit -> Thread_intf.source) -> result
(** [explore mk] runs a depth-first search over all SC issue
    interleavings of the program [mk ()].  [mk] is called once per
    explored schedule, so it must build a fresh, deterministic source
    each time.  [limit] defaults to 100_000 executions; [max_steps]
    (default 2_000) bounds each schedule's length. *)

val sample :
  ?max_steps:int -> seeds:int list -> (unit -> Thread_intf.source) -> Exec.t list
(** Random SC executions, one per seed — the fallback when the program is
    too large to enumerate. *)

val count : ?max_steps:int -> ?limit:int -> (unit -> Thread_intf.source) -> int * bool
(** Number of complete SC interleavings (and whether counting finished). *)

val explore_weak :
  ?max_steps:int -> ?limit:int -> model:Model.t -> (unit -> Thread_intf.source) -> result
(** Exhaustive exploration of {e every} schedule of a weak model: the
    search branches over issue {e and} retirement decisions, so the result
    covers the model's entire behaviour envelope for the program (as
    realized by this simulator).  The tree is much larger than the SC
    one — reserve for litmus-sized, loop-free programs.  Used to verify
    Condition 3.4 over {e all} weak executions rather than a sample. *)

val behaviours : Exec.t list -> Exec.t list
(** Deduplicate executions by program behaviour
    ({!Exec.same_program_behaviour}): one representative per behaviour. *)
