type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the conversion to OCaml's 63-bit int stays positive *)
  let r = Int64.to_int (Int64.logand (next t) 0x3FFF_FFFF_FFFF_FFFFL) in
  r mod bound

let bool t = Int64.logand (next t) 1L = 1L

let split t = { state = mix (next t) }
