(** The interface between programs and the memory system.

    A program is presented to the machine as a set of processor-local
    threads, each exposing its current memory request.  The continuation
    carried by a request advances the thread's local state (registers,
    control flow); the machine invokes it exactly once, when it performs
    the request.  Peeking the same request twice before performing it must
    return the same value — schedulers inspect requests to decide
    enablement.

    This module contains only type definitions, so it has no interface
    file; it is the contract [lib/minilang]'s interpreter implements and
    [Machine] consumes. *)

type request =
  | Read of {
      loc : Op.loc;
      cls : Op.op_class;  (** [Data] or [Acquire] *)
      label : string option;
      k : Op.value -> unit;
    }
  | Write of {
      loc : Op.loc;
      value : Op.value;
      cls : Op.op_class;  (** [Data], [Release] or [Plain_sync] *)
      label : string option;
      k : unit -> unit;
    }
  | Rmw of {
      loc : Op.loc;
      f : Op.value -> Op.value;  (** new value from old *)
      rcls : Op.op_class;        (** class of the read half, e.g. [Acquire] *)
      wcls : Op.op_class;        (** class of the write half, e.g. [Plain_sync] *)
      label : string option;
      k : Op.value -> unit;      (** receives the value read *)
    }
  | Fence of { label : string option; k : unit -> unit }
      (** Drains the issuing processor's buffer; records no memory
          operation. *)

type source = {
  n_procs : int;
  n_locs : int;
  init : (Op.loc * Op.value) list;  (** initial memory contents; absent locations are 0 *)
  peek : Op.proc -> request option;  (** [None] once the thread has halted *)
}
