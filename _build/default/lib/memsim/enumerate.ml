type result = { executions : Exec.t list; complete : bool }

(* Replay [prefix] issue decisions on a fresh machine.  Returns the machine
   positioned at the frontier. *)
let replay_prefix mk prefix =
  let m = Machine.create ~model:Model.SC (mk ()) in
  List.iter (fun p -> Machine.perform m (Exec.Issue p)) prefix;
  m

let enabled_procs m =
  List.filter_map
    (function Exec.Issue p -> Some p | Exec.Retire _ -> None)
    (Machine.enabled m)

let explore ?(max_steps = 2_000) ?(limit = 100_000) mk =
  let found = ref [] in
  let n_found = ref 0 in
  let complete = ref true in
  (* DFS over issue prefixes, re-executing from scratch at every node: the
     interpreter state is not snapshotable (continuations), and litmus
     programs are tiny, so the quadratic replay cost is irrelevant. *)
  let rec dfs prefix depth =
    if !n_found >= limit then complete := false
    else begin
      let m = replay_prefix mk (List.rev prefix) in
      match enabled_procs m with
      | [] ->
        found := Machine.to_execution m :: !found;
        incr n_found
      | procs ->
        if depth >= max_steps then begin
          (* nonterminating under this schedule; record as truncated *)
          Machine.set_truncated m;
          found := Machine.to_execution m :: !found;
          incr n_found;
          complete := false
        end
        else List.iter (fun p -> dfs (p :: prefix) (depth + 1)) procs
    end
  in
  dfs [] 0;
  { executions = List.rev !found; complete = !complete }

(* Exhaustive DFS over the full decision space (issues and retires) of a
   weak model.  Same replay-from-scratch structure as [explore]. *)
let explore_weak ?(max_steps = 400) ?(limit = 500_000) ~model mk =
  let found = ref [] in
  let n_found = ref 0 in
  let complete = ref true in
  let replay prefix =
    let m = Machine.create ~model (mk ()) in
    List.iter (Machine.perform m) prefix;
    m
  in
  let rec dfs prefix depth =
    if !n_found >= limit then complete := false
    else begin
      let m = replay (List.rev prefix) in
      match Machine.enabled m with
      | [] ->
        found := Machine.to_execution m :: !found;
        incr n_found
      | decisions ->
        if depth >= max_steps then begin
          Machine.set_truncated m;
          Machine.force_drain m;
          found := Machine.to_execution m :: !found;
          incr n_found;
          complete := false
        end
        else List.iter (fun d -> dfs (d :: prefix) (depth + 1)) decisions
    end
  in
  dfs [] 0;
  { executions = List.rev !found; complete = !complete }

let behaviours execs =
  List.fold_left
    (fun acc e ->
      if List.exists (Exec.same_program_behaviour e) acc then acc else e :: acc)
    [] execs
  |> List.rev

let sample ?(max_steps = 20_000) ~seeds mk =
  List.map
    (fun seed -> Machine.run ~max_steps ~model:Model.SC ~sched:(Sched.random ~seed) (mk ()))
    seeds

let count ?max_steps ?limit mk =
  let r = explore ?max_steps ?limit mk in
  (List.length r.executions, r.complete)
