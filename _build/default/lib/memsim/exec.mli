(** Executions: the complete record of one run of a program on a memory
    system, sufficient to reconstruct every relation the paper uses
    (program order, reads-from, the synchronization order so1). *)

type decision =
  | Issue of Op.proc
      (** the processor issued (and, except for buffered writes, performed)
          its next request *)
  | Retire of Op.proc * Op.loc
      (** the oldest buffered write to [loc] by [proc] reached memory *)

type t = {
  model : Model.t;
  n_procs : int;
  n_locs : int;
  ops : Op.t array;            (** indexed by [Op.id]; issue order *)
  by_proc : Op.t array array;  (** [by_proc.(p)] in program order *)
  rf : int array;
      (** [rf.(id)] for a read: the id of the write it returned the value
          of, [-1] when it read the initial value.  [-2] for writes. *)
  commit : int array;
      (** [commit.(id)]: global timestamp at which the operation took
          effect at memory.  For buffered writes this is the retirement
          time; for everything else the issue time.  The two halves of an
          atomic read-modify-write share a timestamp. *)
  final_mem : Op.value array;
  truncated : bool;
      (** true when the run hit the step budget before all threads
          halted (e.g. a spin loop the schedule never satisfied) *)
  schedule : decision list;    (** the exact choice sequence, for replay *)
}

val n_ops : t -> int

val reads : t -> Op.t list
val writes : t -> Op.t list
val sync_ops : t -> Op.t list
val data_ops : t -> Op.t list

val reads_from : t -> Op.t -> Op.t option
(** The write a read returned the value of; [None] for the initial value.
    @raise Invalid_argument when applied to a write. *)

val so1_pairs : t -> (Op.t * Op.t) list
(** Definition 2.2: pairs [(s1, s2)] where [s1] is a release, [s2] an
    acquire, and [s2] returned the value written by [s1]. *)

val same_program_behaviour : t -> t -> bool
(** Both executions issued exactly the same operations per processor
    (operation identity excludes values — §2.1) {e and} every read
    returned the same value.  This is the sense in which a weak execution
    "is" a sequentially consistent execution in Condition 3.4(1). *)

val same_op_sequences : t -> t -> bool
(** Operation identity only: same per-processor operation sequences,
    values ignored. *)

val pp : Format.formatter -> t -> unit
(** Multi-line rendering in the style of the paper's figures: one column
    per processor, operations in program order. *)

val pp_decision : Format.formatter -> decision -> unit
