type t = SC | TSO | WO | RCsc | DRF0 | DRF1

let all = [ SC; TSO; WO; RCsc; DRF0; DRF1 ]
let weak = [ WO; RCsc; DRF0; DRF1 ]

let name = function
  | SC -> "SC"
  | TSO -> "TSO"
  | WO -> "WO"
  | RCsc -> "RCsc"
  | DRF0 -> "DRF0"
  | DRF1 -> "DRF1"

let of_name s =
  match String.lowercase_ascii s with
  | "sc" -> Some SC
  | "tso" -> Some TSO
  | "wo" -> Some WO
  | "rcsc" -> Some RCsc
  | "drf0" -> Some DRF0
  | "drf1" -> Some DRF1
  | _ -> None

let buffers_writes = function SC -> false | TSO | WO | RCsc | DRF0 | DRF1 -> true

let fifo_buffer = function TSO -> true | SC | WO | RCsc | DRF0 | DRF1 -> false

let distinguishes_release_acquire = function
  | SC | TSO | WO | DRF0 -> false
  | RCsc | DRF1 -> true

let drains_on m (cls : Op.op_class) =
  match cls with
  | Op.Data -> false
  | Op.Acquire | Op.Release | Op.Plain_sync -> (
    match m with
    | SC -> false (* nothing is ever buffered *)
    | TSO | WO | DRF0 -> true
    | RCsc | DRF1 -> cls = Op.Release)

let pp ppf m = Format.pp_print_string ppf (name m)
