(** Memory operations, following §2.1 of the paper.

    An operation reads or writes one location.  Operations are partitioned
    into {e data} operations and {e synchronization} operations — the latter
    being those "recognized by the hardware as meant for synchronization".
    Synchronization operations are further classified by the role they may
    play in ordering (Definition 2.1):

    - a {e release} is a sync write that communicates the completion of the
      issuing processor's previous operations (e.g. the write of [Unset]);
    - an {e acquire} is a sync read used to conclude such completion (e.g.
      the read of [Test&Set]);
    - a {e plain} sync operation is recognized by the hardware but carries
      no ordering semantics (e.g. the write of [Test&Set], which the paper
      explicitly rules out as a release). *)

type proc = int
type loc = int
type value = int

type kind = Read | Write

type op_class =
  | Data
  | Acquire     (** synchronization read usable for ordering *)
  | Release     (** synchronization write usable for ordering *)
  | Plain_sync  (** synchronization op with no ordering role *)

type t = {
  id : int;          (** unique within an execution; global issue order *)
  proc : proc;
  pindex : int;      (** index in the issuing processor's program order *)
  loc : loc;
  kind : kind;
  cls : op_class;
  value : value;     (** the value read, or the value written *)
  label : string option;  (** static program location, for reports *)
}

val is_sync : op_class -> bool
val is_data : op_class -> bool

val conflict : t -> t -> bool
(** Same location and at least one write (§2.1). *)

val identity : t -> proc * int * loc * kind * op_class
(** The paper identifies an operation by the location it accesses and the
    part of the program that issues it — "the value it reads or writes is
    not considered".  Two executions contain "the same" operation when
    these keys coincide. *)

val pp_kind : Format.formatter -> kind -> unit
val pp_class : Format.formatter -> op_class -> unit
val pp : Format.formatter -> t -> unit
