type decision = Issue of Op.proc | Retire of Op.proc * Op.loc

type t = {
  model : Model.t;
  n_procs : int;
  n_locs : int;
  ops : Op.t array;
  by_proc : Op.t array array;
  rf : int array;
  commit : int array;
  final_mem : Op.value array;
  truncated : bool;
  schedule : decision list;
}

let n_ops e = Array.length e.ops

let select p e = Array.to_list e.ops |> List.filter p

let reads e = select (fun (o : Op.t) -> o.kind = Op.Read) e
let writes e = select (fun (o : Op.t) -> o.kind = Op.Write) e
let sync_ops e = select (fun (o : Op.t) -> Op.is_sync o.cls) e
let data_ops e = select (fun (o : Op.t) -> Op.is_data o.cls) e

let reads_from e (o : Op.t) =
  if o.kind <> Op.Read then invalid_arg "Exec.reads_from: not a read";
  let w = e.rf.(o.id) in
  if w < 0 then None else Some e.ops.(w)

let so1_pairs e =
  List.filter_map
    (fun (acq : Op.t) ->
      if acq.cls <> Op.Acquire then None
      else
        match reads_from e acq with
        | Some rel when rel.cls = Op.Release -> Some (rel, acq)
        | Some _ | None -> None)
    (reads e)

let op_seq_key (o : Op.t) = Op.identity o

let same_op_sequences a b =
  a.n_procs = b.n_procs
  && Array.for_all2
       (fun pa pb ->
         Array.length pa = Array.length pb
         && Array.for_all2 (fun x y -> op_seq_key x = op_seq_key y) pa pb)
       a.by_proc b.by_proc

let same_program_behaviour a b =
  same_op_sequences a b
  && Array.for_all2
       (fun pa pb ->
         Array.for_all2
           (fun (x : Op.t) (y : Op.t) -> x.kind <> Op.Read || x.value = y.value)
           pa pb)
       a.by_proc b.by_proc

let pp ppf e =
  Format.fprintf ppf "@[<v>execution on %a%s (%d ops)" Model.pp e.model
    (if e.truncated then " [truncated]" else "")
    (n_ops e);
  Array.iteri
    (fun p ops ->
      Format.fprintf ppf "@,P%d:" p;
      Array.iter (fun o -> Format.fprintf ppf "@,  %a" Op.pp o) ops)
    e.by_proc;
  Format.fprintf ppf "@]"

let pp_decision ppf = function
  | Issue p -> Format.fprintf ppf "issue(P%d)" p
  | Retire (p, l) -> Format.fprintf ppf "retire(P%d,%d)" p l
