lib/memsim/exec.ml: Array Format List Model Op
