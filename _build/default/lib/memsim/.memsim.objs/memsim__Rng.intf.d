lib/memsim/rng.mli:
