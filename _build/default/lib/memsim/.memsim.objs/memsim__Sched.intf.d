lib/memsim/sched.mli: Exec
