lib/memsim/op.mli: Format
