lib/memsim/exec.mli: Format Model Op
