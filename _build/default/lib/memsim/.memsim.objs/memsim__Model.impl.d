lib/memsim/model.ml: Format Op String
