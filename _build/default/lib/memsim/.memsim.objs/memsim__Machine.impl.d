lib/memsim/machine.ml: Array Exec Hashtbl List Model Op Sched Thread_intf
