lib/memsim/op.ml: Format
