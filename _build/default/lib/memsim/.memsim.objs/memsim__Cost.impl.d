lib/memsim/cost.ml: Array Exec List Model Op
