lib/memsim/thread_intf.ml: Op
