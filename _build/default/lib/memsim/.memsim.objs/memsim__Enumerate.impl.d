lib/memsim/enumerate.ml: Exec List Machine Model Sched
