lib/memsim/machine.mli: Exec Model Op Sched Thread_intf
