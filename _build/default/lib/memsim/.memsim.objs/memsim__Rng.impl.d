lib/memsim/rng.ml: Int64
