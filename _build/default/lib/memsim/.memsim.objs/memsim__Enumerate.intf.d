lib/memsim/enumerate.mli: Exec Model Thread_intf
