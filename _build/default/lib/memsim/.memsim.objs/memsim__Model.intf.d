lib/memsim/model.mli: Format Op
