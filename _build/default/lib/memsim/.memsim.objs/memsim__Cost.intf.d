lib/memsim/cost.mli: Exec Model
