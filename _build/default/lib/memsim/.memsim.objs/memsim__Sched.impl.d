lib/memsim/sched.ml: Exec Format List Rng
