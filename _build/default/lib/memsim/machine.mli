(** The operation-level multiprocessor: shared memory, one store buffer per
    processor, and the per-model issue rules of {!Model}.

    Semantics in brief:
    - An {e issue} performs the processor's next request.  Reads take
      effect immediately, forwarding from the processor's own newest
      buffered write to the same location when one is pending.  Data
      writes enter the store buffer on buffering models (all but SC) and
      go straight to memory on SC.  Synchronization operations and
      read-modify-writes always take effect atomically at memory on issue
      (synchronization is sequentially consistent on every model), subject
      to the model's drain rule ({!Model.drains_on}) and to per-location
      coherence (a write may not bypass a pending same-location write of
      its own processor).
    - A {e retire} moves one buffered write to memory.  Retirement across
      different locations happens in any order the scheduler picks — this
      out-of-order completion is precisely what makes the weak executions
      of the paper's Figures 1a and 2b possible — while writes to the same
      location retire in program order.

    The step-wise API ([enabled]/[perform]) is what the SC-interleaving
    enumerator drives; [run] wraps it with a scheduler. *)

type t

val create : ?on_op:(Op.t -> unit) -> model:Model.t -> Thread_intf.source -> t
(** [on_op] is invoked synchronously for every memory operation the
    moment it is recorded — the hook an on-the-fly detector attaches to
    (§5).  It must not call back into the machine. *)

val enabled : t -> Exec.decision list
(** Decisions currently permitted; empty iff the run is complete. *)

val perform : t -> Exec.decision -> unit
(** @raise Invalid_argument if the decision is not enabled. *)

val finished : t -> bool

val steps : t -> int

val memory : t -> Op.value array
(** Snapshot of shared memory (buffered writes not yet included). *)

val n_recorded : t -> int
(** Operations recorded so far (issue order). *)

val force_drain : t -> unit
(** Retire every buffered write (used when a run hits its step budget, so
    the final memory state is well defined). *)

val set_truncated : t -> unit

val to_execution : t -> Exec.t
(** Snapshot of the run so far.  Buffered writes that never retired are
    given commit timestamps after all retired operations. *)

type stats = {
  retires : int;          (** buffered writes that reached memory *)
  max_buffer : int;       (** peak store-buffer occupancy over all processors *)
  buffered_writes : int;  (** data writes that went through a buffer *)
  delay_total : int;      (** sum over buffered writes of commit - issue time *)
}

val stats : t -> stats

val run :
  ?max_steps:int ->
  ?on_op:(Op.t -> unit) ->
  model:Model.t ->
  sched:Sched.t ->
  Thread_intf.source ->
  Exec.t
(** Drive the machine with [sched] until no decision is enabled or
    [max_steps] (default 20_000) decisions have been performed; in the
    latter case the execution is marked truncated and the buffers are
    drained. *)

val run_with_stats :
  ?max_steps:int ->
  model:Model.t ->
  sched:Sched.t ->
  Thread_intf.source ->
  Exec.t * stats
