(** Scheduling strategies: the source of all nondeterminism in a run.

    At every step the machine offers the set of enabled decisions (issue a
    processor's next request, or retire one buffered write) and the
    scheduler picks one.  Different strategies explore different corners of
    a model's behaviour envelope:

    - {!random} samples uniformly;
    - {!adversarial} delays write retirement as long as the bias allows,
      maximizing the window in which other processors observe stale values
      — this is the schedule that exhibits the paper's Figure 1a and
      Figure 2b anomalies most readily;
    - {!eager} retires writes as soon as possible, approximating SC even on
      weak models;
    - {!round_robin} interleaves issues deterministically;
    - {!replay} follows a recorded decision sequence exactly. *)

type t

val random : seed:int -> t

val adversarial : ?retire_bias:int -> seed:int -> unit -> t
(** [retire_bias] (default 4): a pending retirement is considered with
    probability 1/retire_bias when issues are also available, and always
    when nothing else is enabled.  Larger values mean staler reads. *)

val eager : seed:int -> t
(** Retire whenever possible; choose among issues at random otherwise. *)

val round_robin : unit -> t

val replay : Exec.decision list -> t
(** Follow the given decisions.  {!choose} raises [Invalid_argument] if a
    decision is not currently enabled or the list runs out. *)

val choose : t -> Exec.decision list -> Exec.decision
(** @raise Invalid_argument on an empty decision list. *)
