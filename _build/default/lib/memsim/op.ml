type proc = int
type loc = int
type value = int

type kind = Read | Write

type op_class = Data | Acquire | Release | Plain_sync

type t = {
  id : int;
  proc : proc;
  pindex : int;
  loc : loc;
  kind : kind;
  cls : op_class;
  value : value;
  label : string option;
}

let is_sync = function Data -> false | Acquire | Release | Plain_sync -> true
let is_data cls = not (is_sync cls)

let conflict a b = a.loc = b.loc && (a.kind = Write || b.kind = Write)

let identity o = (o.proc, o.pindex, o.loc, o.kind, o.cls)

let pp_kind ppf = function
  | Read -> Format.pp_print_string ppf "read"
  | Write -> Format.pp_print_string ppf "write"

let pp_class ppf = function
  | Data -> Format.pp_print_string ppf "data"
  | Acquire -> Format.pp_print_string ppf "acquire"
  | Release -> Format.pp_print_string ppf "release"
  | Plain_sync -> Format.pp_print_string ppf "sync"

let pp ppf o =
  Format.fprintf ppf "P%d#%d:%a[%a](%d,%d)%s" o.proc o.pindex pp_kind o.kind
    pp_class o.cls o.loc o.value
    (match o.label with None -> "" | Some l -> "@" ^ l)
