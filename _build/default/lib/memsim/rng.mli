(** Deterministic pseudo-random numbers (SplitMix64).

    Every source of nondeterminism in the simulator is driven by one of
    these generators, so an execution is a pure function of
    (program, model, seed) — a property the replay and enumeration tests
    rely on. *)

type t

val create : int -> t
(** [create seed] builds an independent generator. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0 .. bound-1].
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool

val split : t -> t
(** A statistically independent child generator. *)
