type step = {
  index : int;
  decision : Memsim.Exec.decision;
  ops : Memsim.Op.t list;
  in_scp : bool;
  memory : Memsim.Op.value array;
}

type session = { steps : step list; covered : bool }

module Idents = Set.Make (struct
  type t = Memsim.Op.proc * int * Memsim.Op.loc * Memsim.Op.kind * Memsim.Op.op_class

  let compare = compare
end)

let replay ~source ~(witness : Memsim.Exec.t) ~scp ~(weak : Memsim.Exec.t) =
  let scp_idents =
    Idents.of_list
      (List.map (fun id -> Memsim.Op.identity weak.Memsim.Exec.ops.(id)) scp)
  in
  let remaining = ref (Idents.cardinal scp_idents) in
  let m = Memsim.Machine.create ~model:Memsim.Model.SC (source ()) in
  let steps = ref [] in
  let index = ref 0 in
  let rec go schedule =
    if !remaining = 0 then true
    else
      match schedule with
      | [] -> false
      | decision :: rest ->
        let before = Memsim.Machine.n_recorded m in
        Memsim.Machine.perform m decision;
        let e = Memsim.Machine.to_execution m in
        let ops =
          Array.to_list e.Memsim.Exec.ops
          |> List.filter (fun (o : Memsim.Op.t) -> o.Memsim.Op.id >= before)
        in
        let in_scp =
          ops <> []
          && List.for_all
               (fun (o : Memsim.Op.t) -> Idents.mem (Memsim.Op.identity o) scp_idents)
               ops
        in
        if in_scp then remaining := !remaining - List.length ops;
        steps :=
          {
            index = !index;
            decision;
            ops;
            in_scp;
            memory = Memsim.Machine.memory m;
          }
          :: !steps;
        incr index;
        go rest
  in
  let covered = go witness.Memsim.Exec.schedule in
  { steps = List.rev !steps; covered }

let of_weak_execution ~sc ~source (weak : Memsim.Exec.t) =
  let ophb = Ophb.build weak in
  match Scp.best_scp ~sc:(List.map Ophb.build sc) ophb with
  | None -> None
  | Some (scp, witness_ophb) ->
    let witness = Ophb.exec witness_ophb in
    Some (replay ~source ~witness ~scp ~weak)

let watch session loc =
  let last = ref None in
  List.filter_map
    (fun st ->
      let v = st.memory.(loc) in
      if !last = Some v then None
      else begin
        last := Some v;
        Some (st.index, v)
      end)
    session.steps

let pp_session ?(loc_name = fun l -> Printf.sprintf "loc%d" l) ppf s =
  Format.fprintf ppf "@[<v>SC-prefix replay (%d steps, SCP %s):" (List.length s.steps)
    (if s.covered then "fully covered" else "NOT covered");
  List.iter
    (fun st ->
      Format.fprintf ppf "@,%3d %s %a" st.index
        (if st.in_scp then "scp " else "    ")
        Memsim.Exec.pp_decision st.decision;
      List.iter
        (fun (o : Memsim.Op.t) ->
          Format.fprintf ppf "  %a[%a] %s=%d" Memsim.Op.pp_kind o.Memsim.Op.kind
            Memsim.Op.pp_class o.Memsim.Op.cls
            (loc_name o.Memsim.Op.loc) o.Memsim.Op.value)
        st.ops)
    s.steps;
  Format.fprintf ppf "@]"
