(** On-the-fly data-race detection (the future-work direction of §5,
    realized with vector clocks in the style of Dinning–Schonberg and
    later FastTrack).

    The detector consumes the operation stream as the machine performs it
    — per-processor program order, with synchronization taking effect in
    its global order — and keeps, per location, the last writer and the
    last reader per processor.  A data access that is not ordered (by the
    release/acquire-derived clocks) after the last conflicting access is
    reported immediately.

    As the paper notes for on-the-fly methods generally, buffering only
    the {e last} access per location trades accuracy for space: every
    reported pair is a true hb1 data race, but races against
    overwritten earlier accesses can be missed.  The test suite checks
    soundness exactly and completeness in the weaker form "if the
    post-mortem analysis finds a data race, the on-the-fly detector
    reports at least one". *)

type report = {
  prev_op : int;  (** op id of the earlier access *)
  cur_op : int;   (** op id of the access that exposed the race *)
  loc : Memsim.Op.loc;
}

type t
(** Incremental detector state.  Attach {!observe} to
    {!Memsim.Machine.run}'s [on_op] hook to detect races genuinely
    {e during} the execution. *)

val create : n_procs:int -> n_locs:int -> t

val observe : t -> Memsim.Op.t -> report list
(** Feed one operation (in the order the machine performs them); returns
    the races this operation just exposed. *)

val reports : t -> report list
(** Everything reported so far, in detection order. *)

val detect : Memsim.Exec.t -> report list
(** Post-hoc convenience: feed a completed execution's operation stream
    through a fresh detector.  Reports in detection order, deduplicated
    by op pair. *)

val race_pairs : report list -> (int * int) list
(** Normalized (smaller id, larger id) pairs. *)
