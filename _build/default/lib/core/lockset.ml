type violation = { loc : Memsim.Op.loc; op : int; first_op : int }

module Lset = Set.Make (Int)

type state =
  | Virgin
  | Exclusive of { proc : int; first_op : int }
  | Shared of { candidates : Lset.t; first_op : int }          (* read-shared *)
  | Shared_modified of { candidates : Lset.t; first_op : int }
  | Reported

let check (e : Memsim.Exec.t) =
  let n_procs = e.Memsim.Exec.n_procs in
  let held = Array.make n_procs Lset.empty in
  let states = Array.make e.Memsim.Exec.n_locs Virgin in
  let violations = ref [] in
  (* a Test&Set is an Acquire read immediately followed in program order by
     a Plain_sync write to the same location; it takes the lock when the
     read returned 0 *)
  let ops = e.Memsim.Exec.ops in
  let is_tas_acquire (o : Memsim.Op.t) =
    o.Memsim.Op.kind = Memsim.Op.Read
    && o.Memsim.Op.cls = Memsim.Op.Acquire
    && o.Memsim.Op.value = 0
    && Array.exists
         (fun (w : Memsim.Op.t) ->
           w.Memsim.Op.proc = o.Memsim.Op.proc
           && w.Memsim.Op.pindex = o.Memsim.Op.pindex + 1
           && w.Memsim.Op.loc = o.Memsim.Op.loc
           && w.Memsim.Op.kind = Memsim.Op.Write
           && w.Memsim.Op.cls = Memsim.Op.Plain_sync)
         e.Memsim.Exec.by_proc.(o.Memsim.Op.proc)
  in
  let report loc op first_op =
    states.(loc) <- Reported;
    violations := { loc; op; first_op } :: !violations
  in
  Array.iter
    (fun (o : Memsim.Op.t) ->
      let p = o.Memsim.Op.proc in
      let l = o.Memsim.Op.loc in
      match o.Memsim.Op.cls with
      | Memsim.Op.Acquire ->
        if is_tas_acquire o then held.(p) <- Lset.add l held.(p)
      | Memsim.Op.Release ->
        (* Unset: release the lock if held; harmless otherwise *)
        held.(p) <- Lset.remove l held.(p)
      | Memsim.Op.Plain_sync -> ()
      | Memsim.Op.Data -> (
        let id = o.Memsim.Op.id in
        let write = o.Memsim.Op.kind = Memsim.Op.Write in
        match states.(l) with
        | Reported -> ()
        | Virgin -> states.(l) <- Exclusive { proc = p; first_op = id }
        | Exclusive { proc; _ } when proc = p -> ()
        | Exclusive { first_op; _ } ->
          (* second thread: start the candidate set from its locks *)
          let candidates = held.(p) in
          if write then
            if Lset.is_empty candidates then report l id first_op
            else states.(l) <- Shared_modified { candidates; first_op }
          else states.(l) <- Shared { candidates; first_op }
        | Shared { candidates; first_op } ->
          let candidates = Lset.inter candidates held.(p) in
          if write then
            if Lset.is_empty candidates then report l id first_op
            else states.(l) <- Shared_modified { candidates; first_op }
          else states.(l) <- Shared { candidates; first_op }
        | Shared_modified { candidates; first_op } ->
          let candidates = Lset.inter candidates held.(p) in
          if Lset.is_empty candidates then report l id first_op
          else states.(l) <- Shared_modified { candidates; first_op }))
    ops;
  List.rev !violations

let flagged_locations vs = List.map (fun v -> v.loc) vs |> List.sort_uniq compare
