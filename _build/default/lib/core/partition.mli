(** Race partitions and the first-partition report (§4.2).

    G′ may contain cycles, so instead of ordering individual races the
    paper partitions them by the strongly connected components of G′ —
    two races belong to the same partition iff their events share a
    component — and orders partitions by G′ reachability (Definition
    4.1).  A partition is {e first} when no other partition containing a
    data race is ordered before it.

    Theorem 4.1: there are no first partitions containing data races iff
    the execution exhibited no data races.
    Theorem 4.2: each first partition contains at least one data race
    that belongs to an SCP — i.e. a race that also occurs in some
    sequentially consistent execution of the program.  Only the first
    partitions are reported to the programmer. *)

type partition = {
  component : int;        (** SCC id in G′ *)
  races : Race.t list;    (** the data races of this partition *)
  events : int list;      (** member events, ascending eid *)
}

type t

val compute : Augment.t -> t

val partitions : t -> partition list
(** Every partition containing at least one data race. *)

val first_partitions : t -> partition list

val non_first_partitions : t -> partition list

val ordered_before : t -> partition -> partition -> bool
(** Definition 4.1: a G′ path leads from [p1] into [p2]. *)

val reported_races : t -> Race.t list
(** The data races of the first partitions — the detector's output. *)
