type clause = Holds | Fails of string | Not_applicable

type verdict = {
  n_data_races : int;
  cond1 : clause;
  cond2 : clause;
  holds : bool;
  scp_witness : int list option;
}

let check ~sc (e : Memsim.Exec.t) =
  let ophb = Ophb.build e in
  let data = Ophb.data_races ophb in
  match data with
  | [] ->
    let sc_witness =
      List.exists (fun eseq -> Memsim.Exec.same_program_behaviour e eseq) sc
    in
    let cond1 =
      if sc_witness then Holds
      else Fails "race-free execution matches no SC execution"
    in
    {
      n_data_races = 0;
      cond1;
      cond2 = Not_applicable;
      holds = cond1 = Holds;
      scp_witness = None;
    }
  | _ ->
    let sc_pool = List.map Ophb.build sc in
    let module Iset = Set.Make (Int) in
    let witness =
      List.find_map
        (fun sc_exec ->
          let s = Scp.common_prefix_scp ~weak:ophb ~sc_exec in
          let in_s =
            let set = Iset.of_list s in
            fun id -> Iset.mem id set
          in
          let occurs (a, b) = in_s a && in_s b in
          let discharged r =
            occurs r
            || List.exists (fun r' -> occurs r' && Ophb.affects ophb r' r) data
          in
          if List.for_all discharged data then Some s else None)
        sc_pool
    in
    let cond2 =
      match witness with
      | Some _ -> Holds
      | None -> Fails "no SCP covers or affects every data race"
    in
    {
      n_data_races = List.length data;
      cond1 = Not_applicable;
      cond2;
      holds = cond2 = Holds;
      scp_witness = witness;
    }

let pp_clause ppf = function
  | Holds -> Format.pp_print_string ppf "holds"
  | Fails msg -> Format.fprintf ppf "FAILS (%s)" msg
  | Not_applicable -> Format.pp_print_string ppf "n/a"

let pp_verdict ppf v =
  Format.fprintf ppf "@[<v>Condition 3.4: %s@,  data races: %d@,  (1): %a@,  (2): %a%a@]"
    (if v.holds then "obeyed" else "VIOLATED")
    v.n_data_races pp_clause v.cond1 pp_clause v.cond2
    (fun ppf -> function
      | None -> ()
      | Some s -> Format.fprintf ppf "@,  SCP witness: %d operations" (List.length s))
    v.scp_witness
