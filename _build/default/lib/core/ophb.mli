(** Happens-before-1 at the level of individual memory operations
    (Definitions 2.2–2.4 verbatim).

    Event-level analysis ({!Hb}, {!Race}) is what a practical detector
    runs; the operation-level relation is needed by the SCP and
    Condition 3.4 machinery, whose definitions quantify over operations.
    Node ids are operation ids of the execution. *)

type t

val build : Memsim.Exec.t -> t

val exec : t -> Memsim.Exec.t
val graph : t -> Graphlib.Digraph.t
val reach : t -> Graphlib.Reach.t

val happens_before : t -> int -> int -> bool
val ordered : t -> int -> int -> bool

val races : t -> (int * int) list
(** All races, as (smaller op id, larger op id), sorted. *)

val data_races : t -> (int * int) list

val augmented : t -> Graphlib.Reach.t
(** Reachability in the operation-level G′ (hb1 plus doubly-directed
    edges for {e all} races); computed lazily and cached. *)

val affects_op : t -> int * int -> int -> bool
(** Definition 3.3: race [(x, y)] affects operation [z]. *)

val affects : t -> int * int -> int * int -> bool
(** Race affects race (includes a race affecting itself). *)

val unaffected_data_races : t -> (int * int) list
(** Data races not affected by any other data race — the operation-level
    "first races" of Condition 3.4(2). *)
