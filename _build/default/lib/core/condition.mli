(** Condition 3.4 — the hardware condition for dynamic data race
    detection — checked empirically against an execution.

    (1) If the execution exhibits no data races it must be a sequentially
    consistent execution of the program.
    (2) Otherwise some SCP must exist such that every data race either
    occurs in it or is affected (Def 3.3) by a data race that occurs in
    it.

    Theorem 3.5 claims all weak implementations already obey this
    condition; experiment E5 runs this checker over random programs on
    every model of the simulator. *)

type clause = Holds | Fails of string | Not_applicable

type verdict = {
  n_data_races : int;     (** operation-level data races in the execution *)
  cond1 : clause;
  cond2 : clause;
  holds : bool;
  scp_witness : int list option;
      (** operation ids of the SCP that discharged clause (2) *)
}

val check : sc:Memsim.Exec.t list -> Memsim.Exec.t -> verdict
(** [sc] is the pool of sequentially consistent executions of the same
    program — exhaustive for small programs.  With an incomplete pool the
    checker can report spurious failures but never spurious passes. *)

val pp_verdict : Format.formatter -> verdict -> unit
