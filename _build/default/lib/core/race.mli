(** Races between events (Definition 2.4 lifted to events, §4.1).

    Two events race when they conflict — they access a common location and
    at least one writes it — and no hb1 path connects them in either
    direction.  The race is a {e data} race when at least one endpoint is
    a computation event.  A higher-level data race between computation
    events may stand for many lower-level data races between the
    operations inside them. *)

type t = {
  a : int;  (** smaller eid *)
  b : int;  (** larger eid *)
  locs : Memsim.Op.loc list;  (** conflicting locations, ascending *)
  is_data : bool;
}

val find_all : Hb.t -> t list
(** Every race of the execution, data and sync–sync alike, deduplicated
    and sorted by [(a, b)].  Events of the same processor never race
    (program order totally orders them). *)

val data_races : t list -> t list

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
