(** A lockset ("Eraser"-style) checker, included as a comparison baseline.

    Where the paper's detector decides each execution precisely from the
    hb1 relation, a lockset checker enforces a {e discipline}: every
    shared location must be consistently protected by at least one lock.
    It keeps, per location, the intersection of the lock sets held at its
    accesses, with the usual state machine (virgin → exclusive → shared →
    shared-modified) to tolerate initialization and read sharing.

    Locks are recognized dynamically from the instruction idiom: a
    [Test&Set] whose read returned 0 acquires its location; an [Unset] by
    the holder releases it.

    The comparison the benchmarks draw (ablation section):
    - on lock-disciplined programs it agrees with hb1 detection;
    - on programs synchronizing with release/acquire {e flags} it raises
      false alarms that hb1 detection does not — the flag ordering is
      invisible to a lock discipline;
    - it can also declare an execution clean while a particular
      interleaving still shows an hb1 race elsewhere (it checks the
      discipline, not the execution ordering). *)

type violation = {
  loc : Memsim.Op.loc;
  op : int;           (** the access that emptied the candidate set *)
  first_op : int;     (** the earliest access recorded for the location *)
}

val check : Memsim.Exec.t -> violation list
(** One violation at most per location, in detection order. *)

val flagged_locations : violation list -> Memsim.Op.loc list
