(** Replaying the sequentially consistent prefix of a weak execution —
    the paper's claim (§1, §5) that "other debugging tools for
    sequentially consistent systems can be used unchanged on weak
    systems", because "the part of the execution that contains the first
    bugs is sequentially consistent and can be debugged as on a
    sequentially consistent execution".

    Given a weak execution, its SCP witness (an SC execution of the same
    program, from {!Condition.check} or {!Scp.best_scp}), and the SCP's
    operation ids, [replay] re-executes the witness's schedule on a fresh
    sequentially consistent machine, stopping as soon as every SCP
    operation has been performed.  Each step carries a full shared-memory
    snapshot, so a debugger — watchpoints, invariant checks, state dumps —
    can inspect the exact SC history that leads up to the first data
    races. *)

type step = {
  index : int;
  decision : Memsim.Exec.decision;
  ops : Memsim.Op.t list;   (** operations performed by this step *)
  in_scp : bool;            (** every op of this step belongs to the SCP *)
  memory : Memsim.Op.value array;  (** shared memory after the step *)
}

type session = {
  steps : step list;
  covered : bool;  (** the whole SCP was replayed before the witness ended *)
}

val replay :
  source:(unit -> Memsim.Thread_intf.source) ->
  witness:Memsim.Exec.t ->
  scp:int list ->
  weak:Memsim.Exec.t ->
  session
(** [scp] lists operation ids {e of the weak execution}; they are matched
    into the witness by operation identity (§2.1). *)

val of_weak_execution :
  sc:Memsim.Exec.t list ->
  source:(unit -> Memsim.Thread_intf.source) ->
  Memsim.Exec.t ->
  session option
(** Convenience: find the largest SCP over the SC pool and replay it.
    [None] when the pool is empty. *)

val watch :
  session -> Memsim.Op.loc -> (int * Memsim.Op.value) list
(** Watchpoint: the values the location takes across the session, as
    (step index, value) pairs — one entry per change. *)

val pp_session :
  ?loc_name:(int -> string) -> Format.formatter -> session -> unit
