(** The happens-before-1 relation over trace events (Definition 2.3,
    lifted to events as in §4.1).

    [hb1 = (po ∪ so1)+]: program order within each processor, plus an edge
    from each release event to every acquire event it paired with.  On a
    weak execution hb1 {e need not be a partial order} (§3.1) — the
    reachability structure tolerates cycles by construction. *)

type t

val build : ?so1:[ `Recorded | `Reconstructed ] -> Tracing.Trace.t -> t
(** [`Recorded] (default) uses the pairing the tracer logged;
    [`Reconstructed] rebuilds so1 from the per-location synchronization
    order, as a purely post-mortem analyzer must
    ({!Tracing.Trace.so1_reconstruct}). *)

val trace : t -> Tracing.Trace.t

val graph : t -> Graphlib.Digraph.t
(** One node per event ([eid]); po and so1 edges. *)

val reach : t -> Graphlib.Reach.t

val happens_before : t -> int -> int -> bool
(** [happens_before t a b]: a path of po/so1 edges leads from event [a]
    to event [b].  Irreflexive on acyclic graphs; on a cyclic weak
    execution two events can "happen before" each other. *)

val ordered : t -> int -> int -> bool
(** Comparable in either direction.  Two distinct conflicting events race
    iff not ordered. *)
