(** Vector clocks over a fixed set of processors.

    Persistent (operations return fresh clocks); the on-the-fly detector
    snapshots clocks into its per-location state, so sharing mutable
    arrays would be a correctness trap. *)

type t

val make : int -> t
(** All components zero. *)

val n_procs : t -> int

val get : t -> int -> int

val tick : t -> int -> t
(** Increment one component. *)

val join : t -> t -> t
(** Componentwise maximum. *)

val leq : t -> t -> bool
(** Pointwise ≤ — "happened before or equal". *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
