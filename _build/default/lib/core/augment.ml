type t = {
  hb : Hb.t;
  races : Race.t list;
  graph : Graphlib.Digraph.t;
  reach : Graphlib.Reach.t;
}

let build hb races =
  let g = Graphlib.Digraph.copy (Hb.graph hb) in
  List.iter
    (fun (r : Race.t) ->
      Graphlib.Digraph.add_edge g r.Race.a r.Race.b;
      Graphlib.Digraph.add_edge g r.Race.b r.Race.a)
    races;
  { hb; races; graph = g; reach = Graphlib.Reach.compute g }

let hb t = t.hb
let races t = t.races
let graph t = t.graph
let reach t = t.reach

let affects_event t (r : Race.t) eid =
  Graphlib.Reach.reaches t.reach r.Race.a eid
  || Graphlib.Reach.reaches t.reach r.Race.b eid

let affects t r1 (r2 : Race.t) =
  affects_event t r1 r2.Race.a || affects_event t r1 r2.Race.b

let unaffected_data_races t =
  let data = Race.data_races t.races in
  List.filter
    (fun r ->
      not
        (List.exists (fun r' -> (not (Race.equal r r')) && affects t r' r) data))
    data
