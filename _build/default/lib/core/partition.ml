type partition = {
  component : int;
  races : Race.t list;
  events : int list;
}

type t = {
  augmented : Augment.t;
  scc : Graphlib.Scc.t;
  parts : partition list;  (** partitions containing data races *)
  first : partition list;
}

let compute aug =
  let reach = Augment.reach aug in
  let scc = Graphlib.Reach.scc reach in
  let data = Race.data_races (Augment.races aug) in
  (* a race's endpoints share a component (its doubly-directed edge closes
     a cycle), so the component of [a] identifies the partition *)
  let by_comp = Hashtbl.create 16 in
  List.iter
    (fun (r : Race.t) ->
      let c = scc.Graphlib.Scc.component.(r.Race.a) in
      Hashtbl.replace by_comp c (r :: (Option.value ~default:[] (Hashtbl.find_opt by_comp c))))
    data;
  let parts =
    Hashtbl.fold
      (fun c races acc ->
        {
          component = c;
          races = List.rev races;
          events = scc.Graphlib.Scc.members.(c);
        }
        :: acc)
      by_comp []
    |> List.sort (fun p1 p2 -> compare p1.component p2.component)
  in
  let before p1 p2 =
    p1.component <> p2.component
    && Graphlib.Reach.component_reaches reach p1.component p2.component
  in
  let first = List.filter (fun p -> not (List.exists (fun q -> before q p) parts)) parts in
  { augmented = aug; scc; parts; first }

let partitions t = t.parts
let first_partitions t = t.first

let non_first_partitions t =
  List.filter (fun p -> not (List.memq p t.first)) t.parts

let ordered_before t p1 p2 =
  p1.component <> p2.component
  && Graphlib.Reach.component_reaches (Augment.reach t.augmented) p1.component
       p2.component

let reported_races t = List.concat_map (fun p -> p.races) t.first
