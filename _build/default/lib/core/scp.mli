(** Sequentially consistent prefixes (Definitions 3.1 and 3.2).

    A {e prefix} of an execution E is a subset of its operations closed
    downward under hb1(E).  It is a {e sequentially consistent prefix}
    (SCP) when (1) it is also a prefix of some SC execution Eseq of the
    same program — operations matched by identity (§2.1: location and
    program position, values excluded) — and (2) a pair of its operations
    is a data race in E iff it is one in Eseq.

    Prefixes are represented as sorted lists of operation ids of the weak
    execution.  Because hb1 contains po, every prefix is per-processor
    prefix-shaped, which the search below exploits. *)

val is_prefix : Ophb.t -> int list -> bool
(** Definition 3.1. *)

val is_scp : sc:Ophb.t list -> Ophb.t -> int list -> bool
(** Definition 3.2, checked against a pool of SC executions (normally the
    exhaustive enumeration).  Implies {!is_prefix}. *)

val common_prefix_scp : weak:Ophb.t -> sc_exec:Ophb.t -> int list
(** The largest SCP of [weak] witnessed by this particular SC execution,
    computed by shrinking the per-processor longest common operation
    prefixes until they are hb1-downward closed in both executions and
    race-equivalent.  May be empty. *)

val best_scp : sc:Ophb.t list -> Ophb.t -> (int list * Ophb.t) option
(** The largest {!common_prefix_scp} over the pool, with its witness;
    [None] only when the pool is empty. *)
