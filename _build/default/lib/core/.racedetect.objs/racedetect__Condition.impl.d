lib/core/condition.ml: Format Int List Memsim Ophb Scp Set
