lib/core/race.mli: Format Hb Memsim
