lib/core/augment.ml: Graphlib Hb List Race
