lib/core/ophb.ml: Array Graphlib List Memsim
