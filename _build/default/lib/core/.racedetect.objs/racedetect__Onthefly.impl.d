lib/core/onthefly.ml: Array Hashtbl List Memsim Vclock
