lib/core/scp.ml: Array Hashtbl Int List Memsim Ophb Set
