lib/core/vclock.ml: Array Format String
