lib/core/vclock.mli: Format
