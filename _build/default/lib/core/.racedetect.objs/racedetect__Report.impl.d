lib/core/report.ml: Array Buffer Format Graphlib Hb List Memsim Partition Postmortem Printf Race String Tracing
