lib/core/hb.mli: Graphlib Tracing
