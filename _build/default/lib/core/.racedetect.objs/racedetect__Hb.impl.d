lib/core/hb.ml: Array Graphlib List Tracing
