lib/core/ophb.mli: Graphlib Memsim
