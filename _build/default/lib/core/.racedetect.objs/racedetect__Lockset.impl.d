lib/core/lockset.ml: Array Int List Memsim Set
