lib/core/onthefly.mli: Memsim
