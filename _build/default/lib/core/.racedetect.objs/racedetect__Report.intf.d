lib/core/report.mli: Format Partition Postmortem Tracing
