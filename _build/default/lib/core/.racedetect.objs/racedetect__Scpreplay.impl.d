lib/core/scpreplay.ml: Array Format List Memsim Ophb Printf Scp Set
