lib/core/condition.mli: Format Memsim
