lib/core/partition.ml: Array Augment Graphlib Hashtbl List Option Race
