lib/core/postmortem.ml: Augment Hb Partition Race Tracing
