lib/core/race.ml: Array Format Graphlib Hashtbl Hb List Memsim Tracing
