lib/core/partition.mli: Augment Race
