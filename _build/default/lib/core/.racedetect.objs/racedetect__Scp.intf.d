lib/core/scp.mli: Ophb
