lib/core/lockset.mli: Memsim
