lib/core/postmortem.mli: Augment Hb Memsim Partition Race Tracing
