lib/core/scpreplay.mli: Format Memsim
