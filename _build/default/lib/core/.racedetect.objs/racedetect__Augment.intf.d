lib/core/augment.mli: Graphlib Hb Race
