(** The augmented happens-before graph G′ (§4.2) and the affects relation
    (Definition 3.3).

    G′ is the hb1 graph plus, for each race, a doubly-directed edge
    between its two events.  These edges "capture the possible effect one
    data race may have on another": a path in G′ from an endpoint of race
    r₁ to an endpoint of race r₂ exists iff r₁ affects r₂. *)

type t

val build : Hb.t -> Race.t list -> t
(** [build hb races] — pass {e all} races ({!Race.find_all}); Definition
    3.3's transitivity clause ranges over every race, not only data
    races. *)

val hb : t -> Hb.t
val races : t -> Race.t list

val graph : t -> Graphlib.Digraph.t
val reach : t -> Graphlib.Reach.t

val affects_event : t -> Race.t -> int -> bool
(** [affects_event t r eid] — Definition 3.3: the race affects the event. *)

val affects : t -> Race.t -> Race.t -> bool
(** [affects t r1 r2] — [r1] affects [r2] (which includes [r1 = r2]). *)

val unaffected_data_races : t -> Race.t list
(** Data races not affected by any {e other} data race — "intuitively the
    first data races" that Condition 3.4(2) guarantees belong to an SCP.
    Data races inside a G′ cycle with another data race affect each other,
    so they are excluded here; {!Partition} recovers them. *)
