type t = {
  exec : Memsim.Exec.t;
  graph : Graphlib.Digraph.t;
  reach : Graphlib.Reach.t;
  mutable races_cache : (int * int) list option;
  mutable aug_cache : Graphlib.Reach.t option;
}

let build (e : Memsim.Exec.t) =
  let n = Memsim.Exec.n_ops e in
  let g = Graphlib.Digraph.create n in
  Array.iter
    (fun ops ->
      for i = 0 to Array.length ops - 2 do
        Graphlib.Digraph.add_edge g ops.(i).Memsim.Op.id ops.(i + 1).Memsim.Op.id
      done)
    e.Memsim.Exec.by_proc;
  List.iter
    (fun ((rel : Memsim.Op.t), (acq : Memsim.Op.t)) ->
      Graphlib.Digraph.add_edge g rel.Memsim.Op.id acq.Memsim.Op.id)
    (Memsim.Exec.so1_pairs e);
  { exec = e; graph = g; reach = Graphlib.Reach.compute g; races_cache = None;
    aug_cache = None }

let exec t = t.exec
let graph t = t.graph
let reach t = t.reach

let happens_before t a b = a <> b && Graphlib.Reach.reaches t.reach a b
let ordered t a b = happens_before t a b || happens_before t b a

let races t =
  match t.races_cache with
  | Some r -> r
  | None ->
    let ops = t.exec.Memsim.Exec.ops in
    let n = Array.length ops in
    let acc = ref [] in
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        let x = ops.(a) and y = ops.(b) in
        if
          x.Memsim.Op.proc <> y.Memsim.Op.proc
          && Memsim.Op.conflict x y
          && not (ordered t a b)
        then acc := (a, b) :: !acc
      done
    done;
    let r = List.rev !acc in
    t.races_cache <- Some r;
    r

let is_data_race t (a, b) =
  let ops = t.exec.Memsim.Exec.ops in
  Memsim.Op.is_data ops.(a).Memsim.Op.cls || Memsim.Op.is_data ops.(b).Memsim.Op.cls

let data_races t = List.filter (is_data_race t) (races t)

let augmented t =
  match t.aug_cache with
  | Some r -> r
  | None ->
    let g = Graphlib.Digraph.copy t.graph in
    List.iter
      (fun (a, b) ->
        Graphlib.Digraph.add_edge g a b;
        Graphlib.Digraph.add_edge g b a)
      (races t);
    let r = Graphlib.Reach.compute g in
    t.aug_cache <- Some r;
    r

let affects_op t (x, y) z =
  let r = augmented t in
  Graphlib.Reach.reaches r x z || Graphlib.Reach.reaches r y z

let affects t r1 (x2, y2) = affects_op t r1 x2 || affects_op t r1 y2

let unaffected_data_races t =
  let data = data_races t in
  List.filter
    (fun r -> not (List.exists (fun r' -> r' <> r && affects t r' r) data))
    data
