type t = {
  trace : Tracing.Trace.t;
  graph : Graphlib.Digraph.t;
  reach : Graphlib.Reach.t;
}

let build ?(so1 = `Recorded) (trace : Tracing.Trace.t) =
  let n = Array.length trace.Tracing.Trace.events in
  let g = Graphlib.Digraph.create n in
  (* program order: consecutive events of each processor *)
  Array.iter
    (fun evs ->
      for i = 0 to Array.length evs - 2 do
        Graphlib.Digraph.add_edge g evs.(i).Tracing.Event.eid evs.(i + 1).Tracing.Event.eid
      done)
    trace.Tracing.Trace.by_proc;
  let pairs =
    match so1 with
    | `Recorded -> trace.Tracing.Trace.so1
    | `Reconstructed -> Tracing.Trace.so1_reconstruct trace
  in
  List.iter (fun (rel, acq) -> Graphlib.Digraph.add_edge g rel acq) pairs;
  { trace; graph = g; reach = Graphlib.Reach.compute g }

let trace t = t.trace
let graph t = t.graph
let reach t = t.reach

let happens_before t a b = a <> b && Graphlib.Reach.reaches t.reach a b

let ordered t a b = happens_before t a b || happens_before t b a
