type t = int array

let make n = Array.make n 0

let n_procs = Array.length

let get t p = t.(p)

let tick t p =
  let c = Array.copy t in
  c.(p) <- c.(p) + 1;
  c

let join a b = Array.init (Array.length a) (fun i -> max a.(i) b.(i))

let leq a b =
  let rec go i = i >= Array.length a || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

let equal a b = a = b

let pp ppf t =
  Format.fprintf ppf "<%s>"
    (String.concat "," (Array.to_list (Array.map string_of_int t)))
