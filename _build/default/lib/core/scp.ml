module Iset = Set.Make (Int)

let is_prefix ophb ids =
  let s = Iset.of_list ids in
  let e = Ophb.exec ophb in
  Iset.for_all
    (fun y ->
      Array.for_all
        (fun (x : Memsim.Op.t) ->
          (not (Ophb.happens_before ophb x.Memsim.Op.id y)) || Iset.mem x.Memsim.Op.id s)
        e.Memsim.Exec.ops)
    s

(* -- identity matching ---------------------------------------------- *)

let proc_identities (e : Memsim.Exec.t) =
  Array.map (Array.map Memsim.Op.identity) e.Memsim.Exec.by_proc

(* longest common prefix lengths, per processor *)
let common_k (e : Memsim.Exec.t) (eseq : Memsim.Exec.t) =
  let ia = proc_identities e and ib = proc_identities eseq in
  Array.init (Array.length ia) (fun p ->
      let a = ia.(p) and b = if p < Array.length ib then ib.(p) else [||] in
      let n = min (Array.length a) (Array.length b) in
      let rec go j = if j < n && a.(j) = b.(j) then go (j + 1) else j in
      go 0)

(* Shrink [k] until the per-processor prefixes are downward closed under
   [ophb]'s happens-before.  Mutates [k]; terminates because every change
   strictly decreases some component. *)
let close_down ophb k =
  let e = Ophb.exec ophb in
  let in_prefix (o : Memsim.Op.t) =
    o.Memsim.Op.proc < Array.length k && o.Memsim.Op.pindex < k.(o.Memsim.Op.proc)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (y : Memsim.Op.t) ->
        if in_prefix y then
          Array.iter
            (fun (x : Memsim.Op.t) ->
              if
                (not (in_prefix x))
                && Ophb.happens_before ophb x.Memsim.Op.id y.Memsim.Op.id
                && y.Memsim.Op.pindex < k.(y.Memsim.Op.proc)
              then begin
                k.(y.Memsim.Op.proc) <- y.Memsim.Op.pindex;
                changed := true
              end)
            e.Memsim.Exec.ops)
      e.Memsim.Exec.ops
  done

(* data races keyed by ((proc, pindex), (proc, pindex)), normalized *)
let race_keys ophb =
  let e = Ophb.exec ophb in
  let key id =
    let o = e.Memsim.Exec.ops.(id) in
    (o.Memsim.Op.proc, o.Memsim.Op.pindex)
  in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      let ka = key a and kb = key b in
      Hashtbl.replace tbl (min ka kb, max ka kb) ())
    (Ophb.data_races ophb);
  tbl

let common_prefix_scp ~weak ~sc_exec =
  let e = Ophb.exec weak and eseq = Ophb.exec sc_exec in
  let k = common_k e eseq in
  let races_e = race_keys weak and races_seq = race_keys sc_exec in
  let in_prefix (p, j) = p < Array.length k && j < k.(p) in
  let rec settle () =
    close_down weak k;
    close_down sc_exec k;
    (* race equivalence within the prefix *)
    let mismatch = ref None in
    let consider tbl other =
      Hashtbl.iter
        (fun ((ka, kb) as pair) () ->
          if !mismatch = None && in_prefix ka && in_prefix kb
             && not (Hashtbl.mem other pair)
          then mismatch := Some pair)
        tbl
    in
    consider races_e races_seq;
    consider races_seq races_e;
    match !mismatch with
    | None -> ()
    | Some ((pa, ja), (pb, jb)) ->
      (* evict the later endpoint (larger per-processor index) *)
      let p, j = if (ja, pa) >= (jb, pb) then (pa, ja) else (pb, jb) in
      k.(p) <- min k.(p) j;
      settle ()
  in
  settle ();
  Array.to_list e.Memsim.Exec.ops
  |> List.filter (fun (o : Memsim.Op.t) -> o.Memsim.Op.pindex < k.(o.Memsim.Op.proc))
  |> List.map (fun (o : Memsim.Op.t) -> o.Memsim.Op.id)
  |> List.sort compare

let is_scp ~sc ophb ids =
  is_prefix ophb ids
  &&
  let e = Ophb.exec ophb in
  let races_e = race_keys ophb in
  let key id =
    let o = e.Memsim.Exec.ops.(id) in
    Memsim.Op.identity o
  in
  let pos id =
    let o = e.Memsim.Exec.ops.(id) in
    (o.Memsim.Op.proc, o.Memsim.Op.pindex)
  in
  let idents = List.map key ids in
  let positions = List.map pos ids in
  List.exists
    (fun sc_ophb ->
      let eseq = Ophb.exec sc_ophb in
      let seq_idents = Hashtbl.create 32 in
      Array.iter
        (fun (o : Memsim.Op.t) -> Hashtbl.replace seq_idents (Memsim.Op.identity o) o)
        eseq.Memsim.Exec.ops;
      (* every prefix operation exists in Eseq *)
      List.for_all (Hashtbl.mem seq_idents) idents
      && (* downward closed in Eseq *)
      (let imaged =
         Iset.of_list
           (List.map (fun i -> (Hashtbl.find seq_idents i).Memsim.Op.id) idents)
       in
       Iset.for_all
         (fun y ->
           Array.for_all
             (fun (x : Memsim.Op.t) ->
               (not (Ophb.happens_before sc_ophb x.Memsim.Op.id y))
               || Iset.mem x.Memsim.Op.id imaged)
             eseq.Memsim.Exec.ops)
         imaged)
      && (* race equivalence inside the prefix *)
      (let races_seq = race_keys sc_ophb in
       let pairs_agree =
         List.for_all
           (fun ka ->
             List.for_all
               (fun kb ->
                 ka >= kb
                 ||
                 let pair = (min ka kb, max ka kb) in
                 Hashtbl.mem races_e pair = Hashtbl.mem races_seq pair)
               positions)
           positions
       in
       pairs_agree))
    sc

let best_scp ~sc ophb =
  List.fold_left
    (fun acc sc_exec ->
      let s = common_prefix_scp ~weak:ophb ~sc_exec in
      match acc with
      | Some (best, _) when List.length best >= List.length s -> acc
      | _ -> Some (s, sc_exec))
    None sc
