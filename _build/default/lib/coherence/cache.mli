(** Per-processor direct-mapped caches with MSI states, one word per line.

    The cache is a passive container; the protocol lives in
    {!Cmachine}.  Each valid line remembers the operation id of the write
    that produced its value, so reads-from can be tracked through cache
    hits, flushes and interventions. *)

type state = Modified | Shared

type line = {
  loc : Memsim.Op.loc;
  state : state;
  value : Memsim.Op.value;
  writer : int;  (** op id of the producing write; -1 for initial values *)
}

type t

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations_applied : int;
  mutable evictions : int;
}

val create : n_lines:int -> t
(** @raise Invalid_argument when [n_lines <= 0]. *)

val n_lines : t -> int

val lookup : t -> Memsim.Op.loc -> line option
(** The line holding [loc], if cached (tag match). *)

val insert : t -> line -> line option
(** Install a line, returning the evicted valid occupant of its set, if
    any (the caller writes Modified victims back). *)

val update : t -> Memsim.Op.loc -> value:Memsim.Op.value -> writer:int -> state:state -> unit
(** In-place change of a cached line.  @raise Invalid_argument when the
    location is not cached. *)

val invalidate : t -> Memsim.Op.loc -> unit
(** Drop the line if present; no-op otherwise. *)

val iter_lines : t -> (line -> unit) -> unit

val stats : t -> stats

val warm : t -> n_locs:int -> init:(Memsim.Op.loc * Memsim.Op.value) list -> unit
(** Preload every location (later ones win set conflicts) in Shared state
    with its initial value — the "caches already hold old copies" setting
    of the paper's examples. *)
