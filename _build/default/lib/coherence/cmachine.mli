(** A cache-coherent multiprocessor whose weakness is {e delayed
    invalidations} — the reader-side mechanism of 1991-era weakly ordered
    cache designs, complementing {!Memsim.Machine}'s writer-side store
    buffers.

    Protocol sketch (MSI over an atomic bus, one word per line):
    - A data read hits a valid cached line — {e even one whose
      invalidation is still sitting in the processor's invalidation
      queue}, which is where stale values come from — or fetches the
      current global value over the bus on a miss.
    - A data write takes the line Modified over the bus; every other
      cached copy gets an invalidation {e enqueued} at its owner.  The
      scheduler decides when each queue entry is applied — the decision is
      encoded as [Exec.Retire (proc, loc)], so the standard
      {!Memsim.Sched} strategies work unchanged (adversarial scheduling =
      maximally delayed invalidations = maximally stale readers).
    - Synchronization operations and read-modify-writes go straight over
      the bus (sequentially consistent among themselves, as WO and RCsc
      prescribe) and flush the issuing processor's invalidation queue
      according to the model: WO and DRF0 flush at {e every} sync
      operation, RCsc and DRF1 only at {e acquires} (a release orders the
      issuer's previous writes, which the bus already made visible; it is
      the acquirer that must stop reading stale copies).
    - Under SC, invalidations apply instantly at the writing bus
      transaction, so every read is fresh.

    The produced {!Memsim.Exec.t} plugs into the entire detection stack;
    the test suite re-validates the paper's figures and Condition 3.4 on
    this machine, demonstrating that the results do not depend on which
    hardware mechanism provides the weakness. *)

type t

val create :
  ?n_lines:int ->
  ?warm:bool ->
  model:Memsim.Model.t ->
  Memsim.Thread_intf.source ->
  t
(** [n_lines] defaults to the location count (no capacity conflicts);
    [warm] (default true) preloads every cache with the initial memory
    image, the setting in which Figures 1a and 2b arise. *)

val enabled : t -> Memsim.Exec.decision list

val perform : t -> Memsim.Exec.decision -> unit

val finished : t -> bool

val to_execution : t -> Memsim.Exec.t

val cache_stats : t -> Cache.stats array

val pending_invalidations : t -> int

val run :
  ?max_steps:int ->
  ?n_lines:int ->
  ?warm:bool ->
  model:Memsim.Model.t ->
  sched:Memsim.Sched.t ->
  Memsim.Thread_intf.source ->
  Memsim.Exec.t

val run_program :
  ?max_steps:int ->
  ?n_lines:int ->
  ?warm:bool ->
  model:Memsim.Model.t ->
  sched:Memsim.Sched.t ->
  Minilang.Ast.program ->
  Memsim.Exec.t
(** Convenience wrapper over {!Minilang.Interp.source}. *)
