lib/coherence/cache.mli: Memsim
