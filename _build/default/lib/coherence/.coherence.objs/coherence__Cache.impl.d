lib/coherence/cache.ml: Array List Memsim
