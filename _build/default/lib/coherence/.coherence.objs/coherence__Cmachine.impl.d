lib/coherence/cmachine.ml: Array Cache Hashtbl List Memsim Minilang
