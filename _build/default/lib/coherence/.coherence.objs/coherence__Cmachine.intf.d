lib/coherence/cmachine.mli: Cache Memsim Minilang
