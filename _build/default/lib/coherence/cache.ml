type state = Modified | Shared

type line = {
  loc : Memsim.Op.loc;
  state : state;
  value : Memsim.Op.value;
  writer : int;
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations_applied : int;
  mutable evictions : int;
}

type t = { lines : line option array; stats : stats }

let create ~n_lines =
  if n_lines <= 0 then invalid_arg "Cache.create: need at least one line";
  {
    lines = Array.make n_lines None;
    stats = { hits = 0; misses = 0; invalidations_applied = 0; evictions = 0 };
  }

let n_lines t = Array.length t.lines

let set_of t loc = loc mod Array.length t.lines

let lookup t loc =
  match t.lines.(set_of t loc) with
  | Some l when l.loc = loc -> Some l
  | Some _ | None -> None

let insert t line =
  let s = set_of t line.loc in
  let victim =
    match t.lines.(s) with
    | Some old when old.loc <> line.loc ->
      t.stats.evictions <- t.stats.evictions + 1;
      Some old
    | Some _ | None -> None
  in
  t.lines.(s) <- Some line;
  victim

let update t loc ~value ~writer ~state =
  match lookup t loc with
  | Some _ -> t.lines.(set_of t loc) <- Some { loc; state; value; writer }
  | None -> invalid_arg "Cache.update: location not cached"

let invalidate t loc =
  match lookup t loc with
  | Some _ ->
    t.lines.(set_of t loc) <- None;
    t.stats.invalidations_applied <- t.stats.invalidations_applied + 1
  | None -> ()

let iter_lines t f = Array.iter (function Some l -> f l | None -> ()) t.lines

let stats t = t.stats

let warm t ~n_locs ~init =
  let value_of loc =
    match List.assoc_opt loc init with Some v -> v | None -> 0
  in
  for loc = 0 to n_locs - 1 do
    ignore (insert t { loc; state = Shared; value = value_of loc; writer = -1 })
  done;
  (* warming is not demand traffic *)
  t.stats.evictions <- 0
