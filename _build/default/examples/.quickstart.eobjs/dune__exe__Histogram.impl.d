examples/histogram.ml: Array Format List Memsim Minilang Printf Racedetect String
