examples/quickstart.mli:
