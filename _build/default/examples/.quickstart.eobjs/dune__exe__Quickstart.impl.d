examples/quickstart.ml: Format List Memsim Minilang Racedetect
