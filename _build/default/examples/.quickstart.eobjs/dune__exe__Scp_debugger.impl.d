examples/scp_debugger.ml: Format List Memsim Minilang Racedetect
