examples/locking.ml: Array Format List Memsim Minilang Printf Racedetect
