examples/queue_bug_walkthrough.mli:
