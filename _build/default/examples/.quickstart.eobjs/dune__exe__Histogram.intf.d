examples/histogram.mli:
