examples/queue_bug_walkthrough.ml: Array Format List Memsim Minilang Racedetect
