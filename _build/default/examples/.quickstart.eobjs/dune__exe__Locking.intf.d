examples/locking.mli:
