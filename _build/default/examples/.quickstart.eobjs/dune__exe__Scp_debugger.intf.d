examples/scp_debugger.mli:
