examples/producer_consumer.ml: Array Format List Memsim Minilang Printf Racedetect String
