(* A bounded single-producer/single-consumer pipeline using
   release/acquire flags (the DRF1/RCsc style of synchronization), plus
   its subtly broken sibling.

     dune exec examples/producer_consumer.exe

   The correct version publishes each slot with a release store and the
   consumer claims it with an acquire spin — data-race-free, so every
   model delivers every item intact.  The broken version publishes with a
   plain store; the detector pinpoints the failure as a first-partition
   race on the slot's flag and payload. *)

module Ast = Minilang.Ast
open Minilang.Build

let n_items = 4

(* slots: payload i at location i, flag i at location n_items + i *)
let payload k = i k
let flag k = i (n_items + k)

let producer ~release =
  List.concat
    (List.init n_items (fun k ->
         let tag = Printf.sprintf "prod:%d" k in
         [ store_at (payload k) (i (100 + k)) ~label:(tag ^ ":payload") ]
         @
         if release then
           [ Ast.Sync_store { addr = flag k; value = i 1; label = Some (tag ^ ":publish") } ]
         else [ store_at (flag k) (i 1) ~label:(tag ^ ":publish-UNSYNC") ]))

let consumer ~acquire =
  List.concat
    (List.init n_items (fun k ->
         let tag = Printf.sprintf "cons:%d" k in
         let f = Printf.sprintf "f%d" k in
         let wait =
           if acquire then
             [ set f (i 0);
               while_ (r f =: i 0)
                 [ Ast.Sync_load { reg = f; addr = flag k; label = Some (tag ^ ":wait") } ] ]
           else
             [ set f (i 0);
               while_ (r f =: i 0) [ load_at f (flag k) ~label:(tag ^ ":wait-UNSYNC") ] ]
         in
         wait
         @ [
             load_at ("v" ^ string_of_int k) (payload k) ~label:(tag ^ ":consume");
             store_at (payload k) (i 0) ~label:(tag ^ ":clear");
           ]))

let pipeline ~synced =
  {
    Ast.name = (if synced then "spsc" else "spsc_broken");
    n_locs = 2 * n_items;
    init = [];
    procs = [| producer ~release:synced; consumer ~acquire:synced |];
    symbols =
      List.init n_items (fun k -> (Printf.sprintf "item%d" k, k))
      @ List.init n_items (fun k -> (Printf.sprintf "flag%d" k, n_items + k));
  }

let consumed_values e =
  Array.to_list e.Memsim.Exec.ops
  |> List.filter_map (fun (o : Memsim.Op.t) ->
         match o.Memsim.Op.label with
         | Some l when String.length l >= 7 && String.sub l (String.length l - 7) 7 = "consume"
           ->
           Some o.Memsim.Op.value
         | _ -> None)

let () =
  let seeds = List.init 40 (fun s -> s) in
  let good = pipeline ~synced:true in
  Format.printf "--- release/acquire pipeline, %d items ---@." n_items;
  List.iter
    (fun model ->
      let intact =
        List.for_all
          (fun seed ->
            let e =
              Minilang.Interp.run ~model ~sched:(Memsim.Sched.adversarial ~seed ()) good
            in
            consumed_values e = List.init n_items (fun k -> 100 + k)
            && Racedetect.Postmortem.race_free
                 (Racedetect.Postmortem.analyze_execution e))
          seeds
      in
      Format.printf "%-5s: all items intact, no races: %b@." (Memsim.Model.name model)
        intact)
    Memsim.Model.all;

  let bad = pipeline ~synced:false in
  Format.printf "@.--- same pipeline with plain flag accesses ---@.";
  let corrupted =
    List.filter_map
      (fun seed ->
        let e =
          Minilang.Interp.run ~model:Memsim.Model.RCsc
            ~sched:(Memsim.Sched.adversarial ~seed ())
            bad
        in
        let vs = consumed_values e in
        if vs <> List.init n_items (fun k -> 100 + k) then Some (seed, vs, e) else None)
      seeds
  in
  (match corrupted with
   | [] -> Format.printf "no corruption in %d schedules (try more seeds)@." (List.length seeds)
   | (seed, vs, e) :: _ ->
     Format.printf "seed %d: consumer read %s instead of %s@.@." seed
       (String.concat "," (List.map string_of_int vs))
       (String.concat "," (List.init n_items (fun k -> string_of_int (100 + k))));
     let a = Racedetect.Postmortem.analyze_execution e in
     Format.printf "%a@."
       (Racedetect.Report.pp_analysis ~loc_name:(Minilang.Ast.loc_name bad))
       a)
