(* The paper's Figure 2/3 scenario, end to end.

     dune exec examples/queue_bug_walkthrough.exe

   P1 enqueues the address of a work region and clears QEmpty; P2 dequeues
   and works on its region; P3 independently works on region 0.  The
   Test&Set operations that should protect the queue were "omitted due to
   an oversight" (Fig 2a).  On weak hardware the two queue writes can
   reach memory out of order, so P2 observes QEmpty = 0 but dequeues the
   stale address 37 and tramples P3's region (Fig 2b).  A naive dynamic
   detector reports every resulting race; the paper's method reports only
   the first partition — the real bug — and suppresses the rest (Fig 3). *)

let region = 100
let stale = 37

let program = Minilang.Programs.queue_bug ~region ~stale ()

(* Search the seed space for an execution showing the paper's anomaly:
   QEmpty read as 0 but Q read as the stale address. *)
let find_stale_execution () =
  let rec go seed =
    if seed > 20_000 then failwith "no stale execution found"
    else
      let e =
        Minilang.Interp.run ~model:Memsim.Model.WO
          ~sched:(Memsim.Sched.adversarial ~seed ())
          program
      in
      let value label =
        Array.to_list e.Memsim.Exec.ops
        |> List.find_map (fun (o : Memsim.Op.t) ->
               if o.Memsim.Op.label = Some label then Some o.Memsim.Op.value else None)
      in
      if value "P2:read-qempty" = Some 0 && value "P2:dequeue" = Some stale then
        (seed, e)
      else go (seed + 1)
  in
  go 0

let () =
  let seed, e = find_stale_execution () in
  Format.printf
    "found the Figure 2b anomaly at seed %d: P2 saw QEmpty = 0 yet dequeued the@.\
     stale address %d, so it works on [%d, %d) — overlapping P3's [0, %d).@.@."
    seed stale stale (stale + region) region;

  let a = Racedetect.Postmortem.analyze_execution e in
  let all_races = Racedetect.Postmortem.data_races a in
  let reported = Racedetect.Postmortem.reported_races a in
  Format.printf "a naive detector would report %d data races;@." (List.length all_races);
  Format.printf "the paper's method reports the %d race(s) of the first partition:@.@."
    (List.length reported);
  Format.printf "%a@.@."
    (Racedetect.Report.pp_analysis ~loc_name:(Minilang.Ast.loc_name program))
    a;

  (* The affects relation explains the suppression: the queue race affects
     every work-region race (Definition 3.3). *)
  let aug = a.Racedetect.Postmortem.augmented in
  let is_control (r : Racedetect.Race.t) =
    List.exists (fun l -> l >= 3 * region) r.Racedetect.Race.locs
  in
  let control, work = List.partition is_control all_races in
  let all_affected =
    List.for_all
      (fun w -> List.exists (fun c -> Racedetect.Augment.affects aug c w) control)
      work
  in
  Format.printf
    "every one of the %d work-region races is affected (Def 3.3) by the queue race: %b@."
    (List.length work) all_affected;
  Format.printf
    "-> a programmer fixing the reported race (insert the missing Test&Set)@.\
    \   eliminates all of them.@."
