(* A correctly locked shared bank on every weak model.

     dune exec examples/locking.exe

   Two tellers move money between accounts inside Test&Set/Unset critical
   sections.  The program is data-race-free, so WO, RCsc, DRF0 and DRF1
   all guarantee sequential consistency (the paper's starting point), the
   invariant (conserved total) holds under every adversarial schedule, and
   the detector never fires.  The cost model then shows what the locking
   buys: the weak models still run far faster than a sequentially
   consistent debug mode would. *)

open Minilang.Build

let n_transfers = 5

let teller ~who ~from_ ~to_ ~amount =
  List.concat
    (List.init n_transfers (fun k ->
         let tag = Printf.sprintf "%s:t%d" who k in
         spin_lock "lock" ~label:(tag ^ ":lock")
         @ [
             load "a" from_ ~label:(tag ^ ":read-from");
             store from_ (r "a" -: i amount);
             load "b" to_ ~label:(tag ^ ":read-to");
             store to_ (r "b" +: i amount);
             unset "lock" ~label:(tag ^ ":unlock");
           ]))

let bank =
  program ~name:"bank" ~locs:[ "checking"; "savings"; "lock" ]
    ~init:[ ("checking", 1000); ("savings", 500) ]
    [
      teller ~who:"teller1" ~from_:"checking" ~to_:"savings" ~amount:10;
      teller ~who:"teller2" ~from_:"savings" ~to_:"checking" ~amount:25;
    ]

let () =
  let seeds = List.init 30 (fun s -> s) in
  Format.printf "%d transfers per teller, %d schedules per model@.@." n_transfers
    (List.length seeds);
  List.iter
    (fun model ->
      let ok =
        List.for_all
          (fun seed ->
            let e =
              Minilang.Interp.run ~model ~sched:(Memsim.Sched.adversarial ~seed ()) bank
            in
            let total = e.Memsim.Exec.final_mem.(0) + e.Memsim.Exec.final_mem.(1) in
            let a = Racedetect.Postmortem.analyze_execution e in
            (not e.Memsim.Exec.truncated)
            && total = 1500
            && Racedetect.Postmortem.race_free a)
          seeds
      in
      Format.printf "%-5s: money conserved and race-free on all schedules: %b@."
        (Memsim.Model.name model) ok)
    Memsim.Model.all;

  (* what would an SC debug mode cost? *)
  let e =
    Minilang.Interp.run ~model:Memsim.Model.RCsc
      ~sched:(Memsim.Sched.adversarial ~seed:0 ())
      bank
  in
  Format.printf "@.timing of the same instruction streams:@.";
  List.iter
    (fun mode ->
      let est = Memsim.Cost.estimate ~mode e in
      Format.printf "  %-5s %6d cycles (%d stalled)@." (Memsim.Model.name mode)
        est.Memsim.Cost.makespan est.Memsim.Cost.stall_cycles)
    [ Memsim.Model.SC; Memsim.Model.WO; Memsim.Model.RCsc ];
  Format.printf
    "@.the paper's point: you never need the SC row — races are detectable@.\
     directly on the weak execution (Condition 3.4 comes for free).@."
