(* Quickstart: write a small parallel program, run it on weak hardware,
   and detect its data races.

     dune exec examples/quickstart.exe

   The program is the classic "message passing through a data flag" bug:
   the flag is read and written with ordinary loads and stores, so nothing
   orders the payload accesses, and on weak hardware the consumer can see
   the flag set but the payload stale. *)

open Minilang.Build

(* 1. Write the program with the builder combinators. *)
let buggy =
  program ~name:"my_first_bug" ~locs:[ "payload"; "flag" ]
    [
      (* producer *)
      [
        store "payload" (i 99) ~label:"producer:write-payload";
        store "flag" (i 1) ~label:"producer:set-flag";
      ];
      (* consumer *)
      [
        load "f" "flag" ~label:"consumer:read-flag";
        if_ (r "f" =: i 1) [ load "p" "payload" ~label:"consumer:read-payload" ] [];
      ];
    ]

(* 4. The fix: release/acquire accesses to the flag order the payload. *)
let fixed =
  program ~name:"fixed" ~locs:[ "payload"; "flag" ]
    [
      [ store "payload" (i 99); release_store "flag" (i 1) ];
      [ acquire_load "f" "flag"; if_ (r "f" =: i 1) [ load "p" "payload" ] [] ];
    ]

let () =
  Format.printf "--- the program ---@.%s@." (Minilang.Parser.to_source buggy);

  (* 2. Run it on a weakly ordered machine with an adversarial schedule. *)
  let execution =
    Minilang.Interp.run ~model:Memsim.Model.WO
      ~sched:(Memsim.Sched.adversarial ~seed:1 ())
      buggy
  in
  Format.printf "--- one weak execution ---@.%a@.@." Memsim.Exec.pp execution;

  (* 3. Post-mortem analysis: trace, happens-before-1, races, partitions. *)
  let analysis = Racedetect.Postmortem.analyze_execution execution in
  Format.printf "--- race report ---@.%a@.@."
    (Racedetect.Report.pp_analysis ~loc_name:(Minilang.Ast.loc_name buggy))
    analysis;

  let all_clean =
    List.for_all
      (fun seed ->
        let e =
          Minilang.Interp.run ~model:Memsim.Model.WO
            ~sched:(Memsim.Sched.adversarial ~seed ())
            fixed
        in
        Racedetect.Postmortem.race_free (Racedetect.Postmortem.analyze_execution e))
      (List.init 50 (fun s -> s))
  in
  Format.printf "--- after adding release/acquire ---@.";
  Format.printf "50 adversarial weak executions, race free: %b@." all_clean;
  Format.printf
    "(data-race-free programs get sequential consistency on every weak model)@."
