(* Debugging the sequentially consistent prefix of a weak execution.

     dune exec examples/scp_debugger.exe

   §5 of the paper argues that once the first data races are located,
   "other debugging tools for sequentially consistent systems can be
   effectively applied on weak systems as well", because the part of the
   execution containing the first bugs is sequentially consistent.  This
   example makes that concrete: it takes a weak execution of the queue
   bug, computes its SCP against exhaustive SC enumeration, replays the
   SCP on an SC machine, and sets a watchpoint on the queue cell — a
   plain SC debugging technique, applied unchanged. *)

let region = 4
let stale = 1

let program = Minilang.Programs.queue_bug ~region ~stale ()

let () =
  (* one racy weak execution *)
  let weak =
    Minilang.Interp.run ~model:Memsim.Model.WO
      ~sched:(Memsim.Sched.adversarial ~seed:3 ())
      program
  in
  let analysis = Racedetect.Postmortem.analyze_execution weak in
  Format.printf "weak execution: %d data race(s), %d reported from first partitions@.@."
    (List.length (Racedetect.Postmortem.data_races analysis))
    (List.length (Racedetect.Postmortem.reported_races analysis));

  (* SC ground truth for this (small) instance *)
  let pool =
    (Memsim.Enumerate.explore ~limit:2_000_000 (fun () -> Minilang.Interp.source program))
      .Memsim.Enumerate.executions
  in
  Format.printf "SC executions enumerated: %d@.@." (List.length pool);

  match
    Racedetect.Scpreplay.of_weak_execution ~sc:pool
      ~source:(fun () -> Minilang.Interp.source program)
      weak
  with
  | None -> Format.printf "no SC pool — cannot replay@."
  | Some session ->
    let loc_name = Minilang.Ast.loc_name program in
    Format.printf "%a@.@."
      (Racedetect.Scpreplay.pp_session ~loc_name)
      session;
    (* a watchpoint on Q and QEmpty, exactly as an SC debugger would set *)
    let q = 3 * region and qempty = (3 * region) + 1 in
    let show name loc =
      Format.printf "watch %s:" name;
      List.iter
        (fun (step, v) -> Format.printf " [step %d] %d" step v)
        (Racedetect.Scpreplay.watch session loc);
      Format.printf "@."
    in
    show "Q" q;
    show "QEmpty" qempty;
    Format.printf
      "@.the replayed history is sequentially consistent, so everything the@.\
       watchpoints show is explainable with interleaving intuition — up to@.\
       and including the racing accesses the detector reported.@."
