(* A data-parallel histogram — a realistic workload on the simulated
   multiprocessor.

     dune exec examples/histogram.exe

   Three processors each scan a slice of the input and count values into
   *private* bins; a barrier separates the counting phase from the
   reduction, which processor 0 performs.  This is data-race-free, so the
   result is exact on every memory model and schedule.

   The "optimized" variant skips the private bins and increments shared
   counters directly — the classic racy histogram.  Lost updates corrupt
   the result (already under SC, more so with weak staleness), and the
   detector traces the corruption to first-partition races on the bins. *)

module Ast = Minilang.Ast
open Minilang.Build

let n_procs = 3
let n_bins = 4
let chunk = 6
let input_size = n_procs * chunk

(* memory layout: [0, input_size) input; then per-proc private bins;
   then the output bins; named control locations at the end *)
let priv p b = Ast.Int (input_size + (p * n_bins) + b)
let priv_dyn p = r "v" +: i (input_size + (p * n_bins))
let out_base = input_size + (n_procs * n_bins)
let out b = Ast.Int (out_base + b)
let out_dyn = r "v" +: i out_base
let n_anon = out_base + n_bins

let input_values =
  (* deterministic pseudo-input: value of cell i is (i * 7 + 3) mod n_bins *)
  List.init input_size (fun idx -> (idx, ((idx * 7) + 3) mod n_bins))

let expected =
  let h = Array.make n_bins 0 in
  List.iter (fun (_, v) -> h.(v) <- h.(v) + 1) input_values;
  h

let barrier ~me =
  spin_lock "lock" ~label:(Printf.sprintf "P%d:lock" me)
  @ [
      load "c" "count";
      store "count" (r "c" +: i 1);
      if_ (r "c" +: i 1 =: i n_procs) [ unset "gate" ] [];
      unset "lock";
      set "g" (i 1);
      while_ (r "g" <>: i 0) [ acquire_load "g" "gate" ];
    ]

let count_slice ~me ~into =
  for_ "idx" ~from:(i (me * chunk)) ~below:(i ((me + 1) * chunk))
    [
      load_at "v" (r "idx") ~label:(Printf.sprintf "P%d:read-input" me);
      load_at "b" (into me) ~label:(Printf.sprintf "P%d:read-bin" me);
      store_at (into me) (r "b" +: i 1) ~label:(Printf.sprintf "P%d:write-bin" me);
    ]

let build ~shared_bins =
  let worker me =
    count_slice ~me
      ~into:(fun p -> if shared_bins then out_dyn else priv_dyn p)
    @ barrier ~me
    @
    if me <> 0 || shared_bins then []
    else
      List.concat
        (List.init n_bins (fun b ->
             [ set "acc" (i 0) ]
             @ List.concat
                 (List.init n_procs (fun p ->
                      [ Ast.Load { reg = "t"; addr = priv p b; label = None };
                        set "acc" (r "acc" +: r "t") ]))
             @ [ Ast.Store { addr = out b; value = r "acc"; label = Some "P0:reduce" } ]))
  in
  program
    ~name:(if shared_bins then "histogram_racy" else "histogram")
    ~extra_locs:n_anon
    ~locs:[ "count"; "lock"; "gate" ]
    ~init:[ ("gate", 1) ]
    (List.init n_procs worker)
  |> fun p -> { p with Ast.init = p.Ast.init @ input_values }

let histogram_of (e : Memsim.Exec.t) =
  Array.init n_bins (fun b -> e.Memsim.Exec.final_mem.(out_base + b))

let () =
  let correct = build ~shared_bins:false in
  Format.printf "input: %d cells, %d bins, expected histogram: %s@.@." input_size n_bins
    (String.concat " " (Array.to_list (Array.map string_of_int expected)));
  Format.printf "--- private bins + barrier + reduce (data-race-free) ---@.";
  List.iter
    (fun model ->
      let ok = ref true and races = ref false in
      for seed = 0 to 19 do
        let e =
          Minilang.Interp.run ~model ~sched:(Memsim.Sched.adversarial ~seed ()) correct
        in
        if histogram_of e <> expected then ok := false;
        if
          not
            (Racedetect.Postmortem.race_free (Racedetect.Postmortem.analyze_execution e))
        then races := true
      done;
      Format.printf "%-5s exact on 20 adversarial schedules: %b; races: %b@."
        (Memsim.Model.name model) !ok !races)
    Memsim.Model.all;

  let racy = build ~shared_bins:true in
  Format.printf "@.--- 'optimized': shared bins, no private copies (racy) ---@.";
  let corrupt = ref 0 and first_bad = ref None in
  for seed = 0 to 19 do
    let e =
      Minilang.Interp.run ~model:Memsim.Model.WO
        ~sched:(Memsim.Sched.adversarial ~seed ())
        racy
    in
    if histogram_of e <> expected then begin
      incr corrupt;
      if !first_bad = None then first_bad := Some e
    end
  done;
  Format.printf "WO: corrupted on %d / 20 schedules@." !corrupt;
  (match !first_bad with
   | None -> ()
   | Some e ->
     Format.printf "one corrupted run produced: %s@.@."
       (String.concat " " (Array.to_list (Array.map string_of_int (histogram_of e))));
     let a = Racedetect.Postmortem.analyze_execution e in
     Format.printf "%a@."
       (Racedetect.Report.pp_analysis ~loc_name:(Minilang.Ast.loc_name racy))
       a)
