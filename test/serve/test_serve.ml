(* The serve daemon's contract, exercised against in-process servers on
   Unix sockets: every session's verdict and report are byte-identical
   to the local salvage pipeline, faults stay confined to their session,
   budgets shed with explicit verdicts, and a checkpointed server can be
   stopped and restarted without changing a single report byte. *)

let fixtures =
  lazy
    (let config =
       { Minilang.Gen.n_procs = 3; n_shared = 4; n_locks = 2; ops_per_proc = 60;
         sync_freq = 4 }
     in
     let programs =
       [ ("fig1b", Option.get (Minilang.Programs.find "fig1b"));
         ("counter_racy", Option.get (Minilang.Programs.find "counter_racy"));
         ("gen_racy", Minilang.Gen.random_racy ~config ~seed:3 ());
         ("gen_racefree", Minilang.Gen.random_racefree ~config ~seed:5 ()) ]
     in
     match Serve.Harness.fixtures ~seeds_per_program:2 programs with
     | Ok fx -> fx
     | Error e -> Alcotest.failf "fixtures: %s" e)

(* Every server gets its own short-lived temp dir — unix socket paths
   must stay under the ~100-byte sockaddr limit, so keep them in /tmp. *)
let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "rdserve-%d-%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

type srv = {
  addr : Serve.Server.addr;
  stop : bool Atomic.t;
  dom : (unit, string) result Domain.t;
}

let start ?(shards = 2) ?(max_sessions = 64) ?(idle_timeout = 30.)
    ?(session_timeout = 0.) ?checkpoint_dir ?(resume = false)
    ?(checkpoint_every = 16) ?sock () =
  let sock =
    match sock with
    | Some s -> s
    | None -> Filename.concat (fresh_dir ()) "s.sock"
  in
  let addr = Serve.Server.Unix_sock sock in
  let stop = Atomic.make false in
  let ready = Atomic.make false in
  let cfg =
    { (Serve.Server.default_config addr) with
      shards;
      max_sessions;
      idle_timeout;
      session_timeout;
      checkpoint_dir;
      checkpoint_every;
      resume;
      ready = (fun _ -> Atomic.set ready true) }
  in
  let dom = Domain.spawn (fun () -> Serve.Server.run ~stop cfg) in
  let deadline = Unix.gettimeofday () +. 5. in
  while (not (Atomic.get ready)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  if not (Atomic.get ready) then begin
    Atomic.set stop true;
    (match Domain.join dom with
     | Ok () -> Alcotest.fail "server never became ready"
     | Error e -> Alcotest.failf "server failed to start: %s" e)
  end;
  { addr; stop; dom }

let shutdown s =
  Atomic.set s.stop true;
  match Domain.join s.dom with
  | Ok () -> ()
  | Error e -> Alcotest.failf "server exited with: %s" e

let run_session ?id s (f : Serve.Harness.fixture) =
  let id = Option.value id ~default:(String.map (fun c -> if c = '/' then '.' else c) f.Serve.Harness.f_name) in
  match Serve.Client.session s.addr ~id ~trace:f.Serve.Harness.f_trace with
  | Ok o -> o
  | Error e -> Alcotest.failf "session %s: %s" id e

let check_exact what (f : Serve.Harness.fixture) (o : Serve.Client.outcome) =
  if o.Serve.Client.cls <> f.Serve.Harness.f_cls then
    Alcotest.failf "%s: verdict class mismatch (exit %d, want %d)" what
      (Serve.Protocol.exit_code o.Serve.Client.cls)
      (Serve.Protocol.exit_code f.Serve.Harness.f_cls);
  Alcotest.(check string) (what ^ ": report bytes") f.Serve.Harness.f_report
    o.Serve.Client.report;
  Alcotest.(check (option int)) (what ^ ": events") (Some f.Serve.Harness.f_events)
    o.Serve.Client.events

(* -- verdict parity ---------------------------------------------------- *)

let test_verdict_parity () =
  let fx = Lazy.force fixtures in
  let s = start () in
  Array.iter (fun f -> check_exact "parity" f (run_session s f)) fx;
  shutdown s

(* -- concurrent sessions: no cross-talk -------------------------------- *)

let test_no_crosstalk () =
  let fx = Lazy.force fixtures in
  let s = start ~shards:2 () in
  (* several concurrent copies of every fixture: any state leakage
     between per-session engines changes some report's bytes *)
  let n = Array.length fx * 3 in
  let res =
    Engine.Parbatch.map ~jobs:6
      (fun i ->
        let f = fx.(i mod Array.length fx) in
        (f, Serve.Client.session s.addr ~id:(Printf.sprintf "x-%d" i)
              ~trace:f.Serve.Harness.f_trace))
      (Array.init n Fun.id)
  in
  Array.iter
    (fun (f, r) ->
      match r with
      | Error e -> Alcotest.failf "concurrent session: %s" e
      | Ok o -> check_exact "concurrent" f o)
    res;
  shutdown s

(* -- fault isolation: corrupt input degrades only its session ---------- *)

let test_corrupt_isolated () =
  let fx = Lazy.force fixtures in
  let s = start () in
  let f = fx.(0) in
  let damaged =
    Tracing.Corrupt.apply ~seed:1 (Tracing.Corrupt.Garble_bytes 4)
      f.Serve.Harness.f_trace
  in
  (match Racedetect.Stream.analyze_salvage_string damaged with
   | Ok (v, st) ->
     (* local salvage accepts it: the server must agree byte-for-byte *)
     (match Serve.Client.session s.addr ~id:"corrupt" ~trace:damaged with
      | Error e -> Alcotest.failf "corrupt session: %s" e
      | Ok o ->
        Alcotest.(check string) "corrupt report"
          (Serve.Protocol.render_verdict_report v)
          o.Serve.Client.report;
        Alcotest.(check (option int)) "corrupt events"
          (Some st.Racedetect.Stream.total_events) o.Serve.Client.events;
        (match v, o.Serve.Client.cls with
         | Racedetect.Postmortem.Degraded _, Serve.Protocol.Degraded _ -> ()
         | Racedetect.Postmortem.Degraded _, _ ->
           Alcotest.fail "lossy session not reported degraded"
         | _ -> ()))
   | Error _ ->
     (* local salvage refuses it: the server must refuse too, not crash *)
     (match Serve.Client.session s.addr ~id:"corrupt" ~trace:damaged with
      | Ok o when o.Serve.Client.cls = Serve.Protocol.Error_c -> ()
      | Ok _ -> Alcotest.fail "server accepted what salvage refuses"
      | Error _ -> ()));
  (* the fault stayed in its session: a clean one still verifies *)
  check_exact "post-corrupt" f (run_session ~id:"clean-after" s f);
  shutdown s

(* -- client crash mid-stream ------------------------------------------- *)

let test_disconnect_never_race_free () =
  let fx = Lazy.force fixtures in
  let s = start ~idle_timeout:0.5 () in
  let f = fx.(Array.length fx - 1) in
  (match
     Serve.Client.session s.addr ~id:"crash"
       ~abort_after:(String.length f.Serve.Harness.f_trace / 2)
       ~trace:f.Serve.Harness.f_trace
   with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "aborted client received a verdict");
  (* the dropped connection reads as EOF server-side: the half trace is
     salvage-finished, and the cut makes it lossy — degraded, never
     race-free (an abort can also surface as a decode error) *)
  let deadline = Unix.gettimeofday () +. 5. in
  let settled () =
    match Serve.Client.metrics s.addr with
    | Error _ -> false
    | Ok snap ->
      let v n = Option.value ~default:0 (Serve.Client.metric_value snap n) in
      v "degraded" + v "errors" + v "aborted" >= 1
  in
  while (not (settled ())) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.05
  done;
  Alcotest.(check bool) "half-fed session settled as degraded/error" true
    (settled ());
  (match Serve.Client.metrics s.addr with
   | Error e -> Alcotest.failf "metrics after crash: %s" e
   | Ok snap ->
     Alcotest.(check (option int)) "nothing certified race-free" (Some 0)
       (Serve.Client.metric_value snap "race_free"));
  check_exact "post-crash" f (run_session ~id:"after-crash" s f);
  shutdown s

(* -- duplicate session ids --------------------------------------------- *)

let test_duplicate_id_refused () =
  let fx = Lazy.force fixtures in
  let s = start () in
  let f = fx.(0) in
  (match Serve.Client.raw_open s.addr ~id:"dup" with
   | Error e -> Alcotest.failf "raw_open: %s" e
   | Ok (fd, _) ->
     (match
        Serve.Client.session s.addr ~id:"dup" ~trace:f.Serve.Harness.f_trace
      with
      | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "refusal mentions duplicate (%s)" e)
          true
          (String.length e >= 9 && String.sub e 0 9 = "duplicate")
      | Ok _ -> Alcotest.fail "second claimant of a held id was accepted");
     Unix.close fd);
  (* released: the id must work again, with no leaked state *)
  let deadline = Unix.gettimeofday () +. 5. in
  let rec retry () =
    match
      Serve.Client.session s.addr ~id:"dup" ~trace:f.Serve.Harness.f_trace
    with
    | Ok o -> check_exact "dup reuse" f o
    | Error _ when Unix.gettimeofday () < deadline ->
      Unix.sleepf 0.05;
      retry ()
    | Error e -> Alcotest.failf "id never released: %s" e
  in
  retry ();
  shutdown s

(* -- load shedding ------------------------------------------------------ *)

let test_shed_over_budget () =
  let fx = Lazy.force fixtures in
  let s = start ~shards:1 ~max_sessions:1 () in
  let f = fx.(0) in
  match Serve.Client.raw_open s.addr ~id:"victim" with
  | Error e -> Alcotest.failf "raw_open: %s" e
  | Ok (fd, _) ->
    (* keep some bytes in flight so the victim is a streaming session *)
    (match Serve.Client.raw_send fd (String.sub f.Serve.Harness.f_trace 0 16) with
     | Ok () -> ()
     | Error e -> Alcotest.failf "prefix send: %s" e);
    (* a second session pushes the shard over max_sessions = 1; the
       least-recently-active session (the victim) must be shed, while
       the newcomer completes exactly *)
    check_exact "newcomer during shed" f (run_session ~id:"newcomer" s f);
    let buf = Bytes.create 4096 in
    let b = Buffer.create 256 in
    (try
       let rec drain () =
         match Unix.read fd buf 0 (Bytes.length buf) with
         | 0 -> ()
         | n ->
           Buffer.add_subbytes b buf 0 n;
           drain ()
       in
       drain ()
     with Unix.Unix_error _ -> ());
    Unix.close fd;
    let reply = Buffer.contents b in
    Alcotest.(check bool)
      (Printf.sprintf "victim got an explicit shed verdict (%s)"
         (String.escaped (String.sub reply 0 (min 60 (String.length reply)))))
      true
      (String.length reply >= 12 && String.sub reply 0 12 = "verdict shed");
    (match Serve.Client.metrics s.addr with
     | Error e -> Alcotest.failf "metrics: %s" e
     | Ok snap ->
       Alcotest.(check bool) "shed counter advanced" true
         (Option.value ~default:0 (Serve.Client.metric_value snap "shed") >= 1));
    shutdown s

(* -- stop, restart with --resume, byte-identical ------------------------ *)

let test_checkpoint_stop_resume () =
  let fx = Lazy.force fixtures in
  let f =
    (* need a fixture with an epoch mark well before the end *)
    match
      Array.to_list fx
      |> List.find_opt (fun f ->
             String.length f.Serve.Harness.f_trace > 2048)
    with
    | Some f -> f
    | None -> Alcotest.fail "no fixture large enough for a resume test"
  in
  let dir = fresh_dir () in
  let ckdir = Filename.concat dir "ckpt" in
  let sock = Filename.concat dir "s.sock" in
  let s = start ~shards:1 ~checkpoint_dir:ckdir ~checkpoint_every:16 ~sock () in
  let id = "resume-me" in
  (match Serve.Client.raw_open s.addr ~id with
   | Error e -> Alcotest.failf "raw_open: %s" e
   | Ok (fd, off) ->
     Alcotest.(check int) "fresh session starts at 0" 0 off;
     let cut = String.length f.Serve.Harness.f_trace * 3 / 4 in
     (match Serve.Client.raw_send fd (String.sub f.Serve.Harness.f_trace 0 cut) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "prefix send: %s" e);
     (* wait until a checkpoint of this session hits the disk *)
     let deadline = Unix.gettimeofday () +. 5. in
     let ckpt () =
       match Serve.Client.metrics s.addr with
       | Error _ -> false
       | Ok snap ->
         (match Serve.Client.session_row snap id with
          | Some kv -> Option.value ~default:0 (List.assoc_opt "ckpt_consumed" kv) > 0
          | None -> false)
     in
     while (not (ckpt ())) && Unix.gettimeofday () < deadline do
       Unix.sleepf 0.05
     done;
     Alcotest.(check bool) "a checkpoint landed before the stop" true (ckpt ());
     (* graceful stop parks the in-flight session on disk *)
     shutdown s;
     Unix.close fd;
     Alcotest.(check bool) "checkpoint file exists" true
       (Sys.file_exists (Filename.concat ckdir (id ^ ".ckpt")));
     (* second life: adopt the checkpoint, finish the session *)
     let s2 =
       start ~shards:1 ~checkpoint_dir:ckdir ~checkpoint_every:16 ~resume:true
         ~sock ()
     in
     (match Serve.Client.session s2.addr ~id ~trace:f.Serve.Harness.f_trace with
      | Error e -> Alcotest.failf "resumed session: %s" e
      | Ok o ->
        Alcotest.(check bool) "resumed from a non-zero offset" true
          (o.Serve.Client.resumed_from > 0);
        Alcotest.(check bool) "resume offset within what was sent" true
          (o.Serve.Client.resumed_from <= cut);
        check_exact "resumed verdict" f o);
     Alcotest.(check bool) "checkpoint removed after completion" false
       (Sys.file_exists (Filename.concat ckdir (id ^ ".ckpt")));
     shutdown s2)

let () =
  Alcotest.run "serve"
    [
      ( "serve",
        [
          Alcotest.test_case "verdict parity" `Quick test_verdict_parity;
          Alcotest.test_case "no cross-talk" `Quick test_no_crosstalk;
          Alcotest.test_case "corrupt input isolated" `Quick test_corrupt_isolated;
          Alcotest.test_case "disconnect never race-free" `Quick
            test_disconnect_never_race_free;
          Alcotest.test_case "duplicate id refused" `Quick
            test_duplicate_id_refused;
          Alcotest.test_case "shed over budget" `Quick test_shed_over_budget;
          Alcotest.test_case "checkpoint stop resume" `Quick
            test_checkpoint_stop_resume;
        ] );
    ]
