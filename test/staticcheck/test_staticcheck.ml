(* Tests for the static analyzer (lib/staticcheck).

   The load-bearing property is SOUNDNESS: the static candidate set may
   over-approximate but must never miss — every race the dynamic hb1
   detector finds in any execution of any model must be covered by a
   static candidate pair of the same processors and location.  The
   qcheck differential below enforces this over the three Gen
   populations and all six models; a unit test repeats it over the
   stock programs (which, unlike Gen's, contain loops). *)

module Ast = Minilang.Ast
module Gen = Minilang.Gen
module Interp = Minilang.Interp
module Programs = Minilang.Programs
module Model = Memsim.Model
module A = Staticcheck.Absdom
module Lint = Staticcheck.Lint
module Candidates = Staticcheck.Candidates
module Postmortem = Racedetect.Postmortem

let lint p = Lint.analyze p

(* -- coverage: dynamic race -> static candidate ----------------------- *)

let covered (r : Lint.report) trace (race : Racedetect.Race.t) =
  let ev eid = trace.Tracing.Trace.events.(eid) in
  let pa = (ev race.Racedetect.Race.a).Tracing.Event.proc in
  let pb = (ev race.Racedetect.Race.b).Tracing.Event.proc in
  let pa, pb = (min pa pb, max pa pb) in
  let candidates = r.Lint.data_candidates @ r.Lint.sync_candidates in
  List.for_all
    (fun l ->
      List.exists
        (fun (c : Candidates.pair) ->
          c.Candidates.a.Staticcheck.Absint.proc = pa
          && c.Candidates.b.Staticcheck.Absint.proc = pb
          && A.contains c.Candidates.locs l)
        candidates)
    race.Racedetect.Race.locs

let check_execution ?(max_steps = 50_000) r p model seed =
  let e =
    Interp.run ~max_steps ~model
      ~sched:(Memsim.Sched.adversarial ~seed ())
      p
  in
  let a = Postmortem.analyze_execution e in
  List.iter
    (fun race ->
      if not (covered r a.Postmortem.trace race) then
        Alcotest.failf
          "%s, %s, seed %d: dynamic race %a not covered by any static \
           candidate"
          p.Ast.name (Model.name model) seed Racedetect.Race.pp race)
    a.Postmortem.races

(* -- qcheck differential over generated programs --------------------- *)

let generated_program seed =
  let config =
    {
      Gen.default_config with
      Gen.n_procs = 2 + (seed mod 2);
      ops_per_proc = 4 + (seed mod 3);
    }
  in
  match seed mod 3 with
  | 0 -> Gen.random_racy ~config ~seed ()
  | 1 -> Gen.random_racefree ~config ~seed ()
  | _ -> Gen.random_racefree_ra ~config ~seed ()

let differential_generated =
  QCheck.Test.make ~count:500 ~name:"static candidates cover dynamic races"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let p = generated_program seed in
      let r = lint p in
      List.iter (fun model -> check_execution r p model seed) Model.all;
      true)

(* race-free generated programs must also come out clean statically: the
   generator's two safe patterns are exactly what the ordering arguments
   recognize, so this guards the analysis' precision, not its soundness *)
let precision_generated =
  QCheck.Test.make ~count:200 ~name:"generated race-free programs lint clean"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let p =
        if seed mod 2 = 0 then Gen.random_racefree ~seed ()
        else Gen.random_racefree_ra ~seed ()
      in
      (lint p).Lint.data_candidates = [])

(* -- differential over the stock programs (loops included) ------------ *)

let test_stock_differential () =
  List.iter
    (fun (_, p) ->
      let r = lint p in
      List.iter
        (fun model ->
          List.iter
            (fun seed -> check_execution ~max_steps:200_000 r p model seed)
            [ 0; 1; 2 ])
        [ Model.SC; Model.WO; Model.RCsc ])
    Programs.all

(* -- expected verdicts on the stock programs -------------------------- *)

let statically_clean =
  [
    "fig1b";
    "mp_release_acquire";
    "handoff_update";
    "guarded_handoff";
    "read_own_write";
    "counter_locked";
    "disjoint";
  ]

let statically_flagged =
  [
    "fig1a";
    "dekker";
    (* fences constrain the hardware, not the happens-before analysis:
       the x/y accesses remain unsynchronized data races *)
    "dekker_fenced";
    "mp_data_flag";
    "unguarded_handoff";
    "counter_racy";
    "queue_bug";
    "lazy_init";
    "peterson";
    (* over-approximation: dynamically race-free, but the barrier counts
       releases, which is beyond the static ordering arguments *)
    "barrier_phases";
  ]

let test_stock_verdicts () =
  List.iter
    (fun name ->
      let p = Option.get (Programs.find name) in
      match (lint p).Lint.data_candidates with
      | [] -> ()
      | c :: _ ->
        Alcotest.failf "%s: expected clean, got %d candidates (first on P%d/P%d)"
          name
          (List.length (lint p).Lint.data_candidates)
          c.Candidates.a.Staticcheck.Absint.proc
          c.Candidates.b.Staticcheck.Absint.proc)
    statically_clean;
  List.iter
    (fun name ->
      let p = Option.get (Programs.find name) in
      if (lint p).Lint.data_candidates = [] then
        Alcotest.failf "%s: expected data candidates, got none" name)
    statically_flagged;
  (* every stock program is one or the other *)
  List.iter
    (fun (name, _) ->
      if not (List.mem name (statically_clean @ statically_flagged)) then
        Alcotest.failf "%s: not classified in the verdict lists" name)
    Programs.all

(* queue_bug: the candidate must expose Figure 2's region overlap — the
   consumer works on [Q .. Q+100) with Q in {37 (stale), 100}, the third
   processor initializes [0 .. 100), so mem[50] lies in the overlap *)
let test_queue_bug_overlap () =
  let p = Option.get (Programs.find "queue_bug") in
  let r = lint p in
  let overlap =
    List.exists
      (fun (c : Candidates.pair) ->
        c.Candidates.a.Staticcheck.Absint.proc = 1
        && c.Candidates.b.Staticcheck.Absint.proc = 2
        && A.contains c.Candidates.locs 50)
      r.Lint.data_candidates
  in
  Alcotest.(check bool) "P2/P3 candidate covering mem[50]" true overlap

(* -- sync-discipline findings ----------------------------------------- *)

let build ?(locs = [ "x"; "l" ]) ?init procs =
  Minilang.Build.program ~name:"t" ~locs ?init procs

let msgs p =
  List.map (fun f -> f.Staticcheck.Syncdisc.w_msg) (lint p).Lint.findings

let has_msg p fragment =
  List.exists
    (fun m ->
      let fl = String.length fragment and ml = String.length m in
      let rec go i = i + fl <= ml && (String.sub m i fl = fragment || go (i + 1)) in
      go 0)
    (msgs p)

let test_discipline_findings () =
  let open Minilang.Build in
  (* release with no acquire anywhere else *)
  let p = build [ [ release_store "l" (i 1) ]; [ load "r" "x" ] ] in
  Alcotest.(check bool) "unpaired release" true (has_msg p "orders nothing");
  (* acquire with no sync write at all *)
  let p = build [ [ acquire_load "r" "l" ]; [ load "r" "x" ] ] in
  Alcotest.(check bool) "unpaired acquire" true (has_msg p "can never pair");
  (* acquire that can only observe a Test&Set write: DRF1-specific *)
  let p = build [ [ test_and_set "t" "l" ]; [ acquire_load "r" "l" ] ] in
  Alcotest.(check bool) "plain-sync-only pairing" true
    (has_msg p "no so1 pairing under DRF1");
  (match
     List.find_opt
       (fun (f : Staticcheck.Syncdisc.finding) ->
         f.Staticcheck.Syncdisc.w_models = [ Model.DRF1 ])
       (lint p).Lint.findings
   with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a DRF1-tagged finding");
  (* fence with nothing before it *)
  let p = build [ [ fence (); store "x" (i 1) ]; [ load "r" "x" ] ] in
  Alcotest.(check bool) "fence drains nothing" true
    (has_msg p "fence drains nothing");
  (* unreachable sync *)
  let p = build [ [ if_ (i 0) [ unset "l" ] [] ]; [ load "r" "x" ] ] in
  Alcotest.(check bool) "unreachable sync" true
    (has_msg p "unreachable synchronization");
  (* Test&Set whose result never guards anything *)
  let p = build [ [ test_and_set "t" "l"; store "x" (i 1) ]; [ load "r" "x" ] ] in
  Alcotest.(check bool) "unchecked test&set" true
    (has_msg p "never guards anything");
  (* mixed data/sync use of one location *)
  let p = build [ [ unset "l"; load "r" "l" ]; [ acquire_load "s" "l" ] ] in
  Alcotest.(check bool) "mixed labeling" true (has_msg p "not well-labeled")

(* -- lockset baseline vs lint (satellite: where each one is wrong) ---- *)

let executions p =
  List.map
    (fun seed ->
      Interp.run ~max_steps:50_000 ~model:Model.SC
        ~sched:(Memsim.Sched.random ~seed)
        p)
    (List.init 40 Fun.id)

let test_lockset_vs_lint () =
  (* handoff_update: release/acquire handoff where the consumer writes.
     hb1 proves every execution race-free; lint proves the program
     race-free; the lockset baseline false-alarms whenever the handoff
     happens (no lock ever protects "data").  This is the
     flag-synchronization blind spot the paper's §5 accuracy discussion
     attributes to discipline checkers. *)
  let p = Option.get (Programs.find "handoff_update") in
  let es = executions p in
  Alcotest.(check bool) "lockset false-alarms on handoff_update" true
    (List.exists (fun e -> Racedetect.Lockset.check e <> []) es);
  List.iter
    (fun e ->
      let a = Postmortem.analyze_execution e in
      Alcotest.(check bool) "hb1 finds no data race" true
        (Postmortem.data_races a = []))
    es;
  Alcotest.(check bool) "lint proves it race-free" true
    ((lint p).Lint.data_candidates = []);
  Alcotest.(check bool) "lint's sync-pairing check stays quiet" true
    ((lint p).Lint.findings = []);
  (* mp_release_acquire: same story with a read-only consumer *)
  let p = Option.get (Programs.find "mp_release_acquire") in
  Alcotest.(check bool) "lint clean on mp_release_acquire" true
    ((lint p).Lint.data_candidates = [] && (lint p).Lint.findings = []);
  (* unguarded_handoff: the complementary failure — when the writer goes
     first, the consumer's unguarded load looks like harmless read
     sharing, so the lockset discipline declares the execution clean even
     though hb1 exhibits the race in that very execution; lint flags the
     program statically *)
  let p = Option.get (Programs.find "unguarded_handoff") in
  Alcotest.(check bool) "lockset blesses a racy unguarded_handoff run" true
    (List.exists
       (fun e ->
         Racedetect.Lockset.check e = []
         && Postmortem.data_races (Postmortem.analyze_execution e) <> [])
       (executions p));
  Alcotest.(check bool) "lint flags unguarded_handoff" true
    ((lint p).Lint.data_candidates <> [])

(* -- interval domain soundness ---------------------------------------- *)

(* concrete expression evaluation, mirroring Interp.eval *)
let rec ceval env (e : Ast.expr) =
  let truthy v = v <> 0 in
  match e with
  | Ast.Int n -> n
  | Ast.Reg r -> List.assoc r env
  | Ast.Neg e -> -ceval env e
  | Ast.Not e -> if truthy (ceval env e) then 0 else 1
  | Ast.Bin (op, a, b) -> (
    let x = ceval env a and y = ceval env b in
    match op with
    | Ast.Add -> x + y
    | Ast.Sub -> x - y
    | Ast.Mul -> x * y
    | Ast.Div -> if y = 0 then 0 else x / y
    | Ast.Mod -> if y = 0 then 0 else x mod y
    | Ast.Eq -> if x = y then 1 else 0
    | Ast.Ne -> if x <> y then 1 else 0
    | Ast.Lt -> if x < y then 1 else 0
    | Ast.Le -> if x <= y then 1 else 0
    | Ast.Gt -> if x > y then 1 else 0
    | Ast.Ge -> if x >= y then 1 else 0
    | Ast.And -> if truthy x && truthy y then 1 else 0
    | Ast.Or -> if truthy x || truthy y then 1 else 0)

let rec aeval env (e : Ast.expr) =
  match e with
  | Ast.Int n -> A.of_int n
  | Ast.Reg r -> List.assoc r env
  | Ast.Neg e -> A.neg (aeval env e)
  | Ast.Not e -> A.lognot (aeval env e)
  | Ast.Bin (op, a, b) -> (
    let x = aeval env a and y = aeval env b in
    match op with
    | Ast.Add -> A.add x y
    | Ast.Sub -> A.sub x y
    | Ast.Mul -> A.mul x y
    | Ast.Div -> A.div x y
    | Ast.Mod -> A.md x y
    | _ -> A.cmp op x y)

let arb_expr =
  let open QCheck.Gen in
  let regs = [ "a"; "b"; "c" ] in
  let ops =
    [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Eq; Ast.Ne; Ast.Lt;
      Ast.Le; Ast.Gt; Ast.Ge; Ast.And; Ast.Or ]
  in
  let rec expr depth =
    if depth = 0 then
      oneof [ map (fun n -> Ast.Int n) (int_range (-20) 20);
              map (fun r -> Ast.Reg r) (oneofl regs) ]
    else
      frequency
        [ (1, map (fun n -> Ast.Int n) (int_range (-20) 20));
          (2, map (fun r -> Ast.Reg r) (oneofl regs));
          (1, map (fun e -> Ast.Neg e) (expr (depth - 1)));
          (1, map (fun e -> Ast.Not e) (expr (depth - 1)));
          (4,
           map3 (fun op a b -> Ast.Bin (op, a, b)) (oneofl ops)
             (expr (depth - 1)) (expr (depth - 1))) ]
  in
  QCheck.make
    (QCheck.Gen.pair (expr 4)
       (flatten_l
          (List.map
             (fun r ->
               map
                 (fun (v, lo, hi) -> (r, v, v - lo, v + hi))
                 (triple (int_range (-50) 50) (int_range 0 10) (int_range 0 10)))
             regs)))

let absdom_soundness =
  QCheck.Test.make ~count:2000 ~name:"abstract eval contains concrete eval"
    arb_expr
    (fun (e, regs) ->
      let cenv = List.map (fun (r, v, _, _) -> (r, v)) regs in
      let aenv = List.map (fun (r, _, lo, hi) -> (r, A.interval lo hi)) regs in
      A.contains (aeval aenv e) (ceval cenv e))

(* -- delay-set analysis and repair ------------------------------------ *)

module Delayset = Staticcheck.Delayset
module Repair = Staticcheck.Repair

let delays_of p =
  let r = lint p in
  Delayset.analyze p r.Lint.results

(* the four classic litmus shapes, built inline so the test does not
   depend on the example files' location *)
let litmus_sb =
  let open Minilang.Build in
  program ~name:"sb_t" ~locs:[ "x"; "y" ]
    [ [ store "x" (i 1); load "r" "y" ]; [ store "y" (i 1); load "r" "x" ] ]

let litmus_mp =
  let open Minilang.Build in
  program ~name:"mp_t" ~locs:[ "data"; "flag" ]
    [
      [ store "data" (i 42); store "flag" (i 1) ];
      [ load "f" "flag"; if_ (r "f" =: i 1) [ load "d" "data" ] [] ];
    ]

let litmus_mp_partial =
  let open Minilang.Build in
  program ~name:"mp_partial_t" ~locs:[ "data"; "flag" ]
    [
      [ store "data" (i 42); release_store "flag" (i 1) ];
      [ load "f" "flag"; if_ (r "f" =: i 1) [ load "d" "data" ] [] ];
    ]

let litmus_lb =
  let open Minilang.Build in
  program ~name:"lb_t" ~locs:[ "x"; "y" ]
    [ [ load "r" "y"; store "x" (i 1) ]; [ load "r" "x"; store "y" (i 1) ] ]

let test_delayset_litmus () =
  let check name p exp_cycles exp_delays =
    let ds = delays_of p in
    Alcotest.(check int)
      (name ^ " cycles") exp_cycles
      (List.length ds.Delayset.cycles);
    Alcotest.(check int)
      (name ^ " delays") exp_delays
      (List.length ds.Delayset.delays)
  in
  (* each classic litmus test has exactly one critical cycle through all
     four accesses, giving one delay pair per processor *)
  check "sb" litmus_sb 1 2;
  check "mp" litmus_mp 1 2;
  check "lb" litmus_lb 1 2;
  (* mp_partial's release already splits P0, but the consumer side still
     cycles through the plain flag load *)
  let ds = delays_of litmus_mp_partial in
  Alcotest.(check bool) "mp_partial has a cycle" true (ds.Delayset.cycles <> []);
  (* classic delay-set analysis sees only po and conflicts, so even the
     properly synchronized mp_release_acquire keeps its cycle — the
     repair layer, not the cycle enumeration, credits the sync ordering *)
  let p = Option.get (Programs.find "mp_release_acquire") in
  Alcotest.(check bool) "mp_release_acquire keeps its cycle" true
    ((delays_of p).Delayset.cycles <> []);
  (* but a program whose processors share nothing has no conflict edge,
     hence no cycle *)
  let p = Option.get (Programs.find "disjoint") in
  let ds = delays_of p in
  Alcotest.(check int) "disjoint conflicts" 0 (List.length ds.Delayset.conflicts);
  Alcotest.(check int) "disjoint cycles" 0 (List.length ds.Delayset.cycles)

(* cycles identical up to rotation/reversal must be reported once: the
   loop-carried work region of queue_bug used to enumerate each mirror
   orientation as its own "cycle" *)
let test_delayset_dedup () =
  let check name p exp_cycles exp_delays =
    let ds = delays_of p in
    Alcotest.(check int)
      (name ^ " cycles") exp_cycles
      (List.length ds.Delayset.cycles);
    Alcotest.(check int)
      (name ^ " delays") exp_delays
      (List.length ds.Delayset.delays)
  in
  check "sb" litmus_sb 1 2;
  let qb = Option.get (Programs.find "queue_bug") in
  check "queue_bug" qb 2 4;
  (* no two reported cycles are the same up to rotation+reversal *)
  List.iter
    (fun (pname, p) ->
      let ds = delays_of p in
      let canon (c : Delayset.cycle) =
        let nodes = Array.to_list c in
        let best_rot arr =
          let n = Array.length arr in
          let rot k = List.init n (fun i -> arr.((i + k) mod n)) in
          List.fold_left min (rot 0) (List.init n rot)
        in
        min
          (best_rot (Array.of_list nodes))
          (best_rot (Array.of_list (List.rev nodes)))
      in
      let keys = List.map canon ds.Delayset.cycles in
      Alcotest.(check int)
        (pname ^ " unique cycles")
        (List.length keys)
        (List.length (List.sort_uniq compare keys)))
    Programs.all

let test_repair_shapes () =
  (* sb: both pairs promote — four promotions, or two fences if one only
     wants SC without DRF *)
  let plan = Repair.plan ~model:Model.WO litmus_sb in
  Alcotest.(check int) "sb promotions" 4 (List.length plan.Repair.promotions);
  Alcotest.(check int) "sb residual fences" 0 (List.length plan.Repair.fences);
  (match plan.Repair.fence_only with
  | Some sites -> Alcotest.(check int) "sb fence-only sites" 2 (List.length sites)
  | None -> Alcotest.fail "sb: expected a fence-only alternative");
  Alcotest.(check bool) "sb repaired statically DRF" true
    (Repair.statically_drf plan);
  (* mp: the greedy step finds the flag handoff — exactly one pair
     promoted, reproducing mp's hand-fixed variant *)
  let plan = Repair.plan ~model:Model.WO litmus_mp in
  Alcotest.(check int) "mp promotions" 2 (List.length plan.Repair.promotions);
  Alcotest.(check bool) "mp repaired statically DRF" true
    (Repair.statically_drf plan);
  (* mp_partial: only the consumer's flag load is missing — one promotion *)
  let plan = Repair.plan ~model:Model.WO litmus_mp_partial in
  Alcotest.(check int) "mp_partial promotions" 1
    (List.length plan.Repair.promotions);
  Alcotest.(check bool) "mp_partial repaired statically DRF" true
    (Repair.statically_drf plan);
  (* lb: all four accesses promote, no fences *)
  let plan = Repair.plan ~model:Model.WO litmus_lb in
  Alcotest.(check int) "lb promotions" 4 (List.length plan.Repair.promotions);
  Alcotest.(check int) "lb residual fences" 0 (List.length plan.Repair.fences);
  (* an already-DRF program needs nothing *)
  let p = Option.get (Programs.find "mp_release_acquire") in
  let plan = Repair.plan ~model:Model.WO p in
  Alcotest.(check int) "clean program promotions" 0
    (List.length plan.Repair.promotions);
  Alcotest.(check int) "clean program fences" 0 (List.length plan.Repair.fences)

(* every stock program must reach a statically data-race-free repair: the
   forced-promotion fallback guarantees the fixpoint terminates with a
   conforming program, whatever the discipline violations were *)
let test_repair_stock_converges () =
  List.iter
    (fun (name, p) ->
      let plan = Repair.plan ~model:Model.WO p in
      if not (Repair.statically_drf plan) then
        Alcotest.failf "%s: repair did not converge to statically DRF" name)
    Programs.all

(* the dynamic closing of the loop, in-process: the repaired sb must
   REFUTE both former candidates under every canonical buffering model
   and pass Condition 3.4 *)
let test_repaircheck_sb () =
  let plan = Repair.plan ~model:Model.WO litmus_sb in
  let c = Explore.Repaircheck.run ~seeds:8 ~jobs:1 plan in
  Alcotest.(check int) "exit code" 0 (Explore.Repaircheck.exit_code c);
  Alcotest.(check bool) "verified" true (Explore.Repaircheck.verified c)

(* -- qcheck: the repair property over random programs ----------------- *)

(* Over random racy programs and every canonical buffering model:

   1. the repair converges to a statically data-race-free program, so
      (by the soundness differential above) no execution of any model
      exhibits a dynamic hb1 race;
   2. spot-check 1 dynamically: adversarial runs of the repaired program
      under the repairing model are hb1-race-free;
   3. the repair never invents behaviour: promotions keep every value
      and branch, so each SC final memory of the repaired program is an
      SC final memory of the original. *)

let final_mems ?(limit = 4_000) p =
  let r = Memsim.Enumerate.explore ~limit (fun () -> Interp.source p) in
  if not r.Memsim.Enumerate.complete then None
  else
    Some
      (List.map
         (fun e -> Array.to_list e.Memsim.Exec.final_mem)
         r.Memsim.Enumerate.executions)

let repair_property =
  QCheck.Test.make ~count:300
    ~name:"repair: statically DRF, dynamically race-free, SC-preserving"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let config =
        {
          Gen.default_config with
          Gen.n_procs = 2 + (seed mod 2);
          ops_per_proc = 3 + (seed mod 3);
        }
      in
      let p = Gen.random_racy ~config ~seed () in
      let originals = final_mems p in
      List.for_all
        (fun model ->
          let plan = Repair.plan ~model p in
          if not (Repair.statically_drf plan) then
            QCheck.Test.fail_reportf "seed %d, %s: repair not statically DRF"
              seed (Model.name model);
          let q = plan.Repair.repaired in
          (* dynamic spot check: no hb1 race materializes *)
          List.iter
            (fun s ->
              let e =
                Interp.run ~max_steps:20_000 ~model
                  ~sched:(Memsim.Sched.adversarial ~seed:s ())
                  q
              in
              if Postmortem.data_races (Postmortem.analyze_execution e) <> []
              then
                QCheck.Test.fail_reportf
                  "seed %d, %s: repaired program races dynamically" seed
                  (Model.name model))
            [ 0; 1; 2 ];
          (* SC preservation: promotions add ordering, never outcomes *)
          (match (originals, final_mems plan.Repair.repaired) with
          | Some orig, Some rep ->
            List.iter
              (fun m ->
                if not (List.mem m orig) then
                  QCheck.Test.fail_reportf
                    "seed %d, %s: repaired SC final memory not reachable by \
                     the original"
                    seed (Model.name model))
              rep
          | _ -> ());
          true)
        [ Model.TSO; Model.WO; Model.RCsc ])

(* -- driver ------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "staticcheck"
    [
      ("absdom", qsuite [ absdom_soundness ]);
      ( "differential",
        qsuite [ differential_generated; precision_generated ]
        @ [ Alcotest.test_case "stock programs, all loops" `Slow
              test_stock_differential ] );
      ( "verdicts",
        [
          Alcotest.test_case "stock clean/flagged split" `Quick
            test_stock_verdicts;
          Alcotest.test_case "queue_bug region overlap" `Quick
            test_queue_bug_overlap;
        ] );
      ("discipline", [ Alcotest.test_case "findings" `Quick test_discipline_findings ]);
      ( "delayset",
        [
          Alcotest.test_case "litmus cycle counts" `Quick test_delayset_litmus;
          Alcotest.test_case "rotation+reversal dedup" `Quick
            test_delayset_dedup;
          Alcotest.test_case "repair shapes" `Quick test_repair_shapes;
          Alcotest.test_case "stock repairs converge" `Quick
            test_repair_stock_converges;
          Alcotest.test_case "sb repair verifies dynamically" `Quick
            test_repaircheck_sb;
        ]
        @ qsuite [ repair_property ] );
      ( "lockset-vs-lint",
        [ Alcotest.test_case "complementary failures" `Quick test_lockset_vs_lint ]
      );
    ]
