(* The language layer: AST validation, builder combinators, concrete
   syntax (lexer/parser/printer), program generators, and the timing
   model. *)

open Minilang

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let test_validate_rejects () =
  let base = Programs.fig1a in
  let cases =
    [
      ("no processors", { base with Ast.procs = [||] });
      ("no locations", { base with Ast.n_locs = 0 });
      ("bad init", { base with Ast.init = [ (99, 1) ] });
      ( "bad constant address",
        { base with
          Ast.procs = [| [ Ast.Load { reg = "r"; addr = Ast.Int 99; label = None } ] |]
        } );
      ( "constant division by zero",
        { base with
          Ast.procs = [| [ Ast.Set ("r", Ast.Bin (Ast.Div, Ast.Int 1, Ast.Int 0)) ] |]
        } );
      ( "constant modulo by zero",
        { base with
          Ast.procs = [| [ Ast.Set ("r", Ast.Bin (Ast.Mod, Ast.Int 1, Ast.Int 0)) ] |]
        } );
    ]
  in
  List.iter
    (fun (name, p) ->
      match Ast.validate p with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "%s: expected a validation error" name)
    cases;
  (* errors name the processor and the instruction path *)
  let contains msg needle =
    let nl = String.length needle and ml = String.length msg in
    let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
    go 0
  in
  (match
     Ast.validate
       { base with
         Ast.procs =
           [| [];
              [ Ast.If
                  ( Ast.Int 1,
                    [ Ast.Store { addr = Ast.Int 99; value = Ast.Int 0; label = None } ],
                    [] ) ] |]
       }
   with
  | Error msg ->
    if not (contains msg "P1 at 0.then.0") then
      Alcotest.failf "error does not name the path: %s" msg
  | Ok () -> Alcotest.fail "expected a path error");
  List.iter
    (fun (_, p) ->
      match Ast.validate p with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "stock program invalid: %s" msg)
    Programs.all

let test_loc_name () =
  let p = Programs.fig1b in
  Alcotest.(check string) "named" "x" (Ast.loc_name p 0);
  Alcotest.(check string) "anonymous" "17" (Ast.loc_name p 17)

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

let test_build_unknown_loc () =
  Alcotest.(check bool) "unknown location raises" true
    (try
       ignore (Build.program ~name:"bad" ~locs:[ "x" ] [ [ Build.store "y" (Build.i 1) ] ]);
       false
     with Invalid_argument _ -> true)

let test_build_unknown_init () =
  Alcotest.(check bool) "unknown init raises" true
    (try
       ignore (Build.program ~name:"bad" ~locs:[ "x" ] ~init:[ ("y", 1) ] [ [] ]);
       false
     with Invalid_argument _ -> true)

let test_spin_lock_reusable () =
  (* two critical sections in the same processor: the helper register is
     reset each time, so the second acquisition also spins *)
  let open Build in
  let p =
    program ~name:"two_cs" ~locs:[ "c"; "lock" ]
      [
        spin_lock "lock"
        @ [ load "r" "c"; store "c" (r "r" +: i 1); unset "lock" ]
        @ spin_lock "lock"
        @ [ load "r" "c"; store "c" (r "r" +: i 1); unset "lock" ];
        spin_lock "lock" @ [ load "r" "c"; store "c" (r "r" +: i 10); unset "lock" ];
      ]
  in
  List.iter
    (fun seed ->
      let e =
        Interp.run ~model:Memsim.Model.WO ~sched:(Memsim.Sched.random ~seed) p
      in
      Alcotest.(check bool) "terminates" false e.Memsim.Exec.truncated;
      (* three atomic increments: +1, +1, +10 in some order *)
      Alcotest.(check int) "both criticals ran" 12 e.Memsim.Exec.final_mem.(0))
    (List.init 25 (fun s -> s))

let test_for_loop () =
  let open Build in
  let p =
    program ~name:"sum" ~locs:[ "acc" ]
      [
        for_ "i" ~from:(i 0) ~below:(i 5)
          [ load "a" "acc"; store "acc" (r "a" +: r "i") ];
      ]
  in
  let e = Interp.run ~model:Memsim.Model.SC ~sched:(Memsim.Sched.round_robin ()) p in
  Alcotest.(check int) "0+1+2+3+4" 10 e.Memsim.Exec.final_mem.(0)

(* ------------------------------------------------------------------ *)
(* Interpreter corner cases                                            *)
(* ------------------------------------------------------------------ *)

let test_division_by_zero_is_zero () =
  let open Build in
  (* a constant zero divisor is now a validation error (see
     test_validate_rejects); the runtime rule applies when the divisor
     only happens to be zero *)
  let p =
    program ~name:"div0" ~locs:[ "out" ]
      [ [ set "z" (i 0);
          set "a" (Ast.Bin (Ast.Div, i 7, r "z"));
          set "b" (Ast.Bin (Ast.Mod, i 7, r "z"));
          store "out" (r "a" +: r "b") ] ]
  in
  let e = Interp.run ~model:Memsim.Model.SC ~sched:(Memsim.Sched.round_robin ()) p in
  Alcotest.(check int) "7/0 + 7%0 = 0" 0 e.Memsim.Exec.final_mem.(0)

let test_computed_address_out_of_range () =
  let open Build in
  let p =
    program ~name:"oob" ~locs:[ "x" ]
      [ [ set "a" (i 40); load_at "r" (r "a") ] ]
  in
  Alcotest.(check bool) "raises Runtime_error" true
    (try
       ignore (Interp.run ~model:Memsim.Model.SC ~sched:(Memsim.Sched.round_robin ()) p);
       false
     with Interp.Runtime_error _ -> true)

let test_registers_after () =
  let regs =
    Interp.registers_after ~model:Memsim.Model.SC ~sched:(Memsim.Sched.round_robin ())
      Programs.fig1b
  in
  Alcotest.(check (list (pair string int))) "P2 saw both writes"
    [ ("r1", 1); ("r2", 1) ]
    (regs.(1) |> List.filter (fun (k, _) -> k = "r1" || k = "r2"))

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let test_lexer_basics () =
  let toks = Lexer.tokenize "x := y + 41 # comment\n!= == <=" in
  let kinds = List.map (fun (t : Lexer.located) -> t.Lexer.token) toks in
  Alcotest.(check bool) "token stream" true
    (kinds
     = [ Lexer.IDENT "x"; Lexer.ASSIGN; Lexer.IDENT "y"; Lexer.PLUS; Lexer.INT 41;
         Lexer.NEQ; Lexer.EQEQ; Lexer.LE; Lexer.EOF ])

let test_lexer_line_numbers () =
  let toks = Lexer.tokenize "a\nb\n\nc" in
  let lines =
    List.filter_map
      (fun (t : Lexer.located) ->
        match t.Lexer.token with Lexer.IDENT _ -> Some t.Lexer.line | _ -> None)
      toks
  in
  Alcotest.(check (list int)) "lines" [ 1; 2; 4 ] lines

let test_lexer_rejects () =
  Alcotest.(check bool) "bad char" true
    (try ignore (Lexer.tokenize "a ~ b"); false with Lexer.Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let queue_source =
  {|
program queue_bug
array 24
loc Q = 3
loc QEmpty = 1
loc S

proc P1 {
  addr := 8
  Q := addr
  QEmpty := 0
  unset S
}
proc P2 {
  empty := QEmpty
  if empty == 0 {
    addr := Q
    unset S
    i := addr
    while i < addr + 8 {
      tmp := mem[i]
      mem[i] := tmp + 1
      i := i + 1
    }
  }
}
|}

let test_parse_queue () =
  match Parser.parse queue_source with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok p ->
    Alcotest.(check string) "name" "queue_bug" p.Ast.name;
    Alcotest.(check int) "locations" 27 p.Ast.n_locs;
    Alcotest.(check int) "procs" 2 (Array.length p.Ast.procs);
    Alcotest.(check (list (pair string int))) "symbols"
      [ ("Q", 24); ("QEmpty", 25); ("S", 26) ]
      p.Ast.symbols;
    Alcotest.(check (list (pair int int))) "init" [ (24, 3); (25, 1) ] p.Ast.init;
    (* the program runs and puts 8 in Q under SC *)
    let e = Interp.run ~model:Memsim.Model.SC ~sched:(Memsim.Sched.round_robin ()) p in
    Alcotest.(check int) "Q = 8" 8 e.Memsim.Exec.final_mem.(24)

let test_parse_sync_forms () =
  let src =
    {|
program sync_forms
loc x
loc flag = 1
proc {
  t := tas(flag)
  v := faa(x, 2)
  r := acquire flag
  release flag := 0
  unset flag
  fence
}
|}
  in
  match Parser.parse src with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok p ->
    let shapes =
      List.map
        (function
          | Ast.Test_and_set _ -> "tas"
          | Ast.Fetch_and_add _ -> "faa"
          | Ast.Sync_load _ -> "acq"
          | Ast.Sync_store _ -> "rel"
          | Ast.Unset _ -> "unset"
          | Ast.Fence _ -> "fence"
          | _ -> "?")
        p.Ast.procs.(0)
    in
    Alcotest.(check (list string)) "statement kinds"
      [ "tas"; "faa"; "acq"; "rel"; "unset"; "fence" ] shapes

let test_parse_errors () =
  List.iter
    (fun (name, src, needle) ->
      match Parser.parse src with
      | Ok _ -> Alcotest.failf "%s: expected parse error" name
      | Error msg ->
        if not (Astring.String.is_infix ~affix:needle msg) then
          Alcotest.failf "%s: error %S does not mention %S" name msg needle)
    [
      ("missing program", "loc x", "'program'");
      ("loc in expression", "program p\nloc x\nproc { r := x + 1 }", "register");
      ("duplicate loc", "program p\nloc x\nloc x\nproc { }", "twice");
      ("garbage after procs", "program p\nloc x\nproc { } 42", "unexpected");
      ("unterminated block", "program p\nloc x\nproc { r := 1", "statement");
    ]

let test_parse_precedence () =
  let src = "program p\nloc out\nproc { out := 1 + 2 * 3 == 7 }" in
  match Parser.parse src with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok p ->
    let e = Interp.run ~model:Memsim.Model.SC ~sched:(Memsim.Sched.round_robin ()) p in
    Alcotest.(check int) "1+2*3 == 7" 1 e.Memsim.Exec.final_mem.(0)

(* roundtrip: printing and reparsing preserves memory behaviour *)
let same_behaviour p q =
  let run prog seed =
    Interp.run ~model:Memsim.Model.SC ~sched:(Memsim.Sched.random ~seed) prog
  in
  List.for_all
    (fun seed -> Memsim.Exec.same_program_behaviour (run p seed) (run q seed))
    (List.init 10 (fun s -> s))

let test_roundtrip_stock () =
  List.iter
    (fun (name, p) ->
      match Parser.parse (Parser.to_source p) with
      | Error msg -> Alcotest.failf "%s: reparse failed: %s" name msg
      | Ok q ->
        Alcotest.(check bool) (name ^ " behaviour preserved") true (same_behaviour p q))
    Programs.all

let prop_roundtrip_generated =
  QCheck.Test.make ~name:"parse/print roundtrip on generated programs" ~count:80
    QCheck.(int_bound 100_000)
    (fun seed ->
      let p =
        if seed mod 2 = 0 then Gen.random_racy ~seed ()
        else Gen.random_racefree ~seed ()
      in
      (* generated names contain parens; sanitize for the concrete syntax *)
      let p = { p with Ast.name = "generated" } in
      match Parser.parse (Parser.to_source p) with
      | Error _ -> false
      | Ok q -> same_behaviour p q)

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

let test_cost_sc_slower_than_weak () =
  let e =
    Interp.run ~model:Memsim.Model.WO ~sched:(Memsim.Sched.random ~seed:1)
      (Programs.queue_bug ~region:20 ())
  in
  let sc = Memsim.Cost.estimate ~mode:Memsim.Model.SC e in
  let wo = Memsim.Cost.estimate ~mode:Memsim.Model.WO e in
  Alcotest.(check bool)
    (Printf.sprintf "SC %d > WO %d cycles" sc.Memsim.Cost.makespan wo.Memsim.Cost.makespan)
    true
    (sc.Memsim.Cost.makespan > wo.Memsim.Cost.makespan);
  Alcotest.(check bool) "speedup > 1" true (Memsim.Cost.speedup_vs_sc e > 1.0)

let test_cost_rcsc_at_most_wo () =
  (* RCsc drains less often, so its estimate never exceeds WO's *)
  List.iter
    (fun seed ->
      let e =
        Interp.run ~model:Memsim.Model.RCsc ~sched:(Memsim.Sched.random ~seed)
          Programs.counter_locked
      in
      let wo = Memsim.Cost.estimate ~mode:Memsim.Model.WO e in
      let rc = Memsim.Cost.estimate ~mode:Memsim.Model.RCsc e in
      Alcotest.(check bool) "RCsc <= WO" true
        (rc.Memsim.Cost.makespan <= wo.Memsim.Cost.makespan))
    (List.init 10 (fun s -> s))

let test_cost_empty_execution () =
  let open Build in
  let p = program ~name:"empty" ~locs:[ "x" ] [ [] ] in
  let e = Interp.run ~model:Memsim.Model.WO ~sched:(Memsim.Sched.round_robin ()) p in
  let est = Memsim.Cost.estimate ~mode:Memsim.Model.WO e in
  Alcotest.(check int) "zero makespan" 0 est.Memsim.Cost.makespan;
  Alcotest.(check (float 0.001)) "speedup 1" 1.0 (Memsim.Cost.speedup_vs_sc e)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "minilang"
    [
      ( "ast",
        [
          Alcotest.test_case "validate rejects" `Quick test_validate_rejects;
          Alcotest.test_case "loc_name" `Quick test_loc_name;
        ] );
      ( "build",
        [
          Alcotest.test_case "unknown loc" `Quick test_build_unknown_loc;
          Alcotest.test_case "unknown init" `Quick test_build_unknown_init;
          Alcotest.test_case "spin lock reusable" `Quick test_spin_lock_reusable;
          Alcotest.test_case "for loop" `Quick test_for_loop;
        ] );
      ( "interp",
        [
          Alcotest.test_case "division by zero" `Quick test_division_by_zero_is_zero;
          Alcotest.test_case "address out of range" `Quick
            test_computed_address_out_of_range;
          Alcotest.test_case "registers_after" `Quick test_registers_after;
        ] );
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "line numbers" `Quick test_lexer_line_numbers;
          Alcotest.test_case "rejects" `Quick test_lexer_rejects;
        ] );
      ( "parser",
        [
          Alcotest.test_case "queue program" `Quick test_parse_queue;
          Alcotest.test_case "sync forms" `Quick test_parse_sync_forms;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "roundtrip stock" `Quick test_roundtrip_stock;
        ] );
      ("parser-props", qsuite [ prop_roundtrip_generated ]);
      ( "cost",
        [
          Alcotest.test_case "SC slower than weak" `Quick test_cost_sc_slower_than_weak;
          Alcotest.test_case "RCsc at most WO" `Quick test_cost_rcsc_at_most_wo;
          Alcotest.test_case "empty execution" `Quick test_cost_empty_execution;
        ] );
    ]
