The serve daemon analyzes many concurrent trace sessions; a client's
report is byte-identical to racedet analyze on the same file.  Unix
socket paths have a ~100-byte limit, so the sockets live under /tmp.

  $ D=$(mktemp -d /tmp/rdserve.XXXXXX)
  $ racedet gen --kind racy --procs 4 --ops 80 -s 7 > prog.race
  $ racedet trace prog.race --stream --v2 -o t.trace
  wrote 247 events (79 computation, 168 sync) to t.trace

Start a daemon with checkpointing on; the ready line carries the bound
address:

  $ racedet serve --listen unix:$D/s.sock --checkpoint-dir $D/ck \
  >   --checkpoint-every 8 -q > ready.txt 2> serve.log &
  $ for i in $(seq 50); do test -s ready.txt && break; sleep 0.1; done
  $ grep -c '^serving on unix:' ready.txt
  1
  $ S=$(sed 's/serving on //' ready.txt)

A session's verdict and report match the local analysis, exit code
included (2 = races):

  $ racedet client -c "$S" t.trace > c.out
  [2]
  $ racedet analyze --stream --salvage t.trace > a.out
  [2]
  $ cmp c.out a.out && echo same-report
  same-report

The plaintext metrics stream counts it:

  $ racedet client -c "$S" --metrics | grep -E '^serve_(sessions_total|completed|races) '
  serve_sessions_total 1
  serve_completed 1
  serve_races 1

Kill/resume: stop the daemon gracefully while a slow client is
mid-stream — the in-flight session is checkpointed and parked:

  $ racedet client -c "$S" --chunk 512 --delay 0.1 --session slow t.trace \
  >   > /dev/null 2>&1 &
  $ sleep 0.7
  $ racedet client -c "$S" --stop
  $ wait
  $ ls $D/ck
  slow.ckpt

A restart with --resume adopts the parked session; the reconnecting
client resends only the tail, and the final report is byte-identical
to the uninterrupted analysis.  The checkpoint is gone once the
session completes:

  $ racedet serve --listen unix:$D/s.sock --checkpoint-dir $D/ck \
  >   --resume -q > ready2.txt 2>> serve.log &
  $ for i in $(seq 50); do test -s ready2.txt && break; sleep 0.1; done
  $ S=$(sed 's/serving on //' ready2.txt)
  $ racedet client -c "$S" --session slow t.trace > r.out
  [2]
  $ cmp r.out a.out && echo resumed-identical
  resumed-identical
  $ ls $D/ck | wc -l
  0
  $ racedet client -c "$S" --stop
  $ wait

A bounded chaos campaign against freshly spawned daemons: corrupted
frames, connection kills, slowloris, duplicate ids, SIGKILL + resume —
no invariant violations:

  $ racedet chaos -q --seeds 2 prog.race
  chaos: 14 case(s) — baseline 2, corrupt 4 (4 degraded, 0 refused), kill-conn 2, slowloris 1, dup-id 1, kill-resume 4, 0 invariant violation(s)

  $ rm -rf $D
