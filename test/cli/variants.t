The variant campaign sweeps every lattice point over the stock programs
and a deterministic seed range; with -j 0 the output is reproducible.
The six canonical models pass both checks, the deliberately broken knobs
are flagged exactly as the lattice theory predicts, and each violation
carries a minimized, replay-verified witness:

  $ racedet variants -j 0
  variant campaign: 12 lattice points x 11 programs x 16 seeds
  variant              spec                   cond-3.4   fence     
  sc                   sb:depth=0             pass       pass         176+20 runs
  tso                  sb:retire=fifo         pass       pass         176+70 runs
  wo                   sb                     pass       pass         176+70 runs
  rcsc                 sb:acquire=nop,sync=nop pass       pass         176+70 runs
  drf0                 sb                     pass       pass         176+70 runs
  drf1                 sb:acquire=nop,sync=nop pass       pass         176+70 runs
  sb-fence-nop         sb:fence=nop           pass       VIOLATED*    176+630 runs
    fence witness: dekker_fenced, 6-step schedule (envelope), replay + round-trip verified
  sb-release-nop       sb:release=nop         VIOLATED*  pass         176+70 runs
    cond-3.4 witness: mp_release_acquire, 4-step schedule (seed 14), replay + round-trip verified
  sb-release-partial   sb:release=partial     VIOLATED*  pass         176+70 runs
    cond-3.4 witness: mp_release_acquire, 4-step schedule (seed 14), replay + round-trip verified
  sb-bypass            sb:read=bypass         VIOLATED*  pass         176+70 runs
    cond-3.4 witness: read_own_write, 2-step schedule (seed 2), replay + round-trip verified
  sb-stall             sb:read=stall          pass       pass         176+70 runs
  sb-bounded-2         sb:depth=2             pass       pass         176+70 runs
  (VIOLATED* = violation predicted by the lattice theory)
  verdicts match predictions

A violating variant's witness can be written out as a replayable v2
trace and fed back through the analyzer:

  $ racedet variants -j 0 --witness-dir witnesses > /dev/null
  $ ls witnesses
  sb-bypass-cond34.trace
  sb-fence-nop-fence.trace
  sb-release-nop-cond34.trace
  sb-release-partial-cond34.trace
  $ racedet analyze witnesses/sb-bypass-cond34.trace | head -n 2
  No data races detected.
  By Condition 3.4(1) the execution was sequentially consistent.

Custom variant specs are accepted everywhere --model is:

  $ racedet run dekker --model sb:fence=nop --seed 3 | head -n 1
  execution on sb-fence-nop (4 ops)

Unknown models list the valid names and the variant-spec grammar:

  $ racedet run dekker --model bogus
  racedet: option '--model': unknown model "bogus" (unknown base model
           "bogus")
           named models: SC, TSO, WO, RCsc, DRF0, DRF1
           named variants: sb-fence-nop, sb-release-nop, sb-release-partial,
           sb-bypass, sb-stall, sb-bounded-2
           variant spec: <base>[:<knob>,...] with <base> one of
           sb|sc|tso|wo|rcsc|drf0|drf1 and <knob> one of depth=<n>|unbounded,
           read=forward|stall|bypass, retire=fifo|ooo,
           {acquire|release|sync|fence}=drain|nop|partial
  Usage: racedet run [OPTION]… PROGRAM
  Try 'racedet run --help' or 'racedet --help' for more information.
  [124]
