The stock program list:

  $ racedet list
  fig1a                2 procs, 2 locations
  fig1b                2 procs, 3 locations
  queue_bug            3 procs, 303 locations
  dekker               2 procs, 2 locations
  dekker_fenced        2 procs, 2 locations
  read_own_write       1 procs, 1 locations
  mp_data_flag         2 procs, 2 locations
  mp_release_acquire   2 procs, 2 locations
  handoff_update       2 procs, 2 locations
  guarded_handoff      2 procs, 2 locations
  unguarded_handoff    2 procs, 2 locations
  counter_locked       2 procs, 2 locations
  counter_racy         2 procs, 1 locations
  disjoint             2 procs, 4 locations
  peterson             2 procs, 4 locations
  lazy_init            2 procs, 3 locations
  barrier_phases       3 procs, 6 locations

Showing a program prints its concrete syntax (reparseable):

  $ racedet show fig1a
  program fig1a
  loc x
  loc y
  proc P0 {
    x := 1
    y := 1
  }
  proc P1 {
    r1 := y
    r2 := x
  }

Unknown programs are reported helpfully:

  $ racedet show no_such_program
  racedet: "no_such_program" is neither a stock program nor a readable file (try `racedet list`)
  [1]
