Delay-set analysis with verified repair.  On the store-buffering litmus
test `racedet fence` reports the single critical cycle, offers the
two-fence SC-only repair, and synthesizes the four release/acquire
promotions that make the program data-race-free:

  $ cat > sb.race <<'EOF'
  > program sb
  > loc x
  > loc y
  > proc P0 {
  >   x := 1
  >   r0 := y
  > }
  > proc P1 {
  >   y := 1
  >   r1 := x
  > }
  > EOF

  $ racedet fence sb.race
  program sb: 2 processors, 2 locations
  
  delay-set analysis (model WO):
    4 access(es), 2 cross-processor conflict edge(s), 1 critical cycle(s), 2 delay pair(s)
    cycle 1: P0 store x @0 -po-> P0 load y @1 -cf-> P1 store y @0 -po-> P1 load x @1 -cf-> P0 store x @0
    delay pairs:
      P0: store x @0  ->>  load y @1
      P1: store y @0  ->>  load x @1
  
  repair (model WO):
    fence-only: 2 fence(s) make every execution SC, but leave the races in place:
      P0: fence after @0  [enforces 1 delay pair(s)]
      P1: fence after @0  [enforces 1 delay pair(s)]
    promotions (4):
      P0 @0 (P0:L5): store x -> release write
      P1 @1 (P1:L10): load x -> acquire read
      P0 @1 (P0:L6): load y -> acquire read
      P1 @0 (P1:L9): store y -> release write
    residual fences: none — promoted synchronization enforces every remaining delay pair
    repaired program is statically data-race-free under every model

Closing the loop: --verify re-triages both former candidates on the
repaired program under every canonical buffering model and checks
Condition 3.4 — everything REFUTED, exit 0:

  $ racedet fence sb.race --verify --repair sb_repaired.race
  program sb: 2 processors, 2 locations
  
  delay-set analysis (model WO):
    4 access(es), 2 cross-processor conflict edge(s), 1 critical cycle(s), 2 delay pair(s)
    cycle 1: P0 store x @0 -po-> P0 load y @1 -cf-> P1 store y @0 -po-> P1 load x @1 -cf-> P0 store x @0
    delay pairs:
      P0: store x @0  ->>  load y @1
      P1: store y @0  ->>  load x @1
  
  repair (model WO):
    fence-only: 2 fence(s) make every execution SC, but leave the races in place:
      P0: fence after @0  [enforces 1 delay pair(s)]
      P1: fence after @0  [enforces 1 delay pair(s)]
    promotions (4):
      P0 @0 (P0:L5): store x -> release write
      P1 @1 (P1:L10): load x -> acquire read
      P0 @1 (P0:L6): load y -> acquire read
      P1 @0 (P1:L9): store y -> release write
    residual fences: none — promoted synchronization enforces every remaining delay pair
    repaired program is statically data-race-free under every model
  
  repaired program written to sb_repaired.race
  
  verify (repaired program, models TSO, WO, RCsc):
    candidate 0 [CONFIRMED on the original under SC]: P0 at 0 (P0:L5): store x  <->  P1 at 1 (P1:L10): load x  on x
      TSO   -> REFUTED (3 schedule(s))
      WO    -> REFUTED (3 schedule(s))
      RCsc  -> REFUTED (3 schedule(s))
    candidate 1 [CONFIRMED on the original under SC]: P0 at 1 (P0:L6): load y  <->  P1 at 0 (P1:L9): store y  on y
      TSO   -> REFUTED (3 schedule(s))
      WO    -> REFUTED (3 schedule(s))
      RCsc  -> REFUTED (3 schedule(s))
    Condition 3.4 under WO: pass (16 weak run(s) against a 6-execution SC pool)
  repair verified

The repaired program is concrete syntax, ready for the rest of the
pipeline — lint proves it race-free:

  $ cat sb_repaired.race
  program sb
  loc x
  loc y
  proc P0 {
    release x := 1
    r0 := acquire y
  }
  proc P1 {
    release y := 1
    r1 := acquire x
  }

  $ racedet lint sb_repaired.race
  program sb: 2 processors, 2 locations
  
  sync discipline:
    no findings
  
  data race candidates:
    none: the program is statically data-race-free under every model
  
  unordered sync-sync pairs (informational): 2

The half-fixed message-passing program needs exactly one promotion (the
consumer's flag load becomes the missing acquire), and no fence at all:

  $ cat > mp_partial.race <<'EOF'
  > program mp_partial
  > loc data
  > loc flag
  > proc Producer {
  >   data := 42
  >   release flag := 1
  > }
  > proc Consumer {
  >   f := flag
  >   if f == 1 {
  >     d := data
  >   }
  > }
  > EOF

  $ racedet fence mp_partial.race --verify
  program mp_partial: 2 processors, 2 locations
  
  delay-set analysis (model WO):
    4 access(es), 2 cross-processor conflict edge(s), 1 critical cycle(s), 2 delay pair(s)
    cycle 1: P0 store data @0 -po-> P0 release flag @1 -cf-> P1 load flag @0 -po-> P1 load data @1.then.0 -cf-> P0 store data @0
    delay pairs:
      P0: store data @0  ->>  release flag @1
      P1: load flag @0  ->>  load data @1.then.0
  
  repair (model WO):
    fence-only: no fence needed under this model
    promotions (1):
      P1 @0 (Consumer:L9): load flag -> acquire read
    residual fences: none — promoted synchronization enforces every remaining delay pair
    repaired program is statically data-race-free under every model
  
  verify (repaired program, models TSO, WO, RCsc):
    candidate 0 [CONFIRMED on the original under SC]: P0 at 0 (Producer:L5): store data  <->  P1 at 1.then.0 (Consumer:L11): load data  on data
      TSO   -> REFUTED (2 schedule(s))
      WO    -> REFUTED (2 schedule(s))
      RCsc  -> REFUTED (2 schedule(s))
    candidate 1 [CONFIRMED on the original under SC]: P0 at 1 (Producer:L6): release flag  <->  P1 at 0 (Consumer:L9): load flag  on flag
      TSO   -> REFUTED (2 schedule(s))
      WO    -> REFUTED (2 schedule(s))
      RCsc  -> REFUTED (2 schedule(s))
    Condition 3.4 under WO: pass (16 weak run(s) against a 3-execution SC pool)
  repair verified

--explain attaches to every data candidate the critical cycle that
witnesses it:

  $ racedet fence mp_partial.race --explain
  program mp_partial: 2 processors, 2 locations
  
  delay-set analysis (model WO):
    4 access(es), 2 cross-processor conflict edge(s), 1 critical cycle(s), 2 delay pair(s)
    cycle 1: P0 store data @0 -po-> P0 release flag @1 -cf-> P1 load flag @0 -po-> P1 load data @1.then.0 -cf-> P0 store data @0
    delay pairs:
      P0: store data @0  ->>  release flag @1
      P1: load flag @0  ->>  load data @1.then.0
  
  candidate explanations:
    P0 at 0 (Producer:L5): store data  <->  P1 at 1.then.0 (Consumer:L11): load data  on data
      cycle: P0 store data @0 -po-> P0 release flag @1 -cf-> P1 load flag @0 -po-> P1 load data @1.then.0 -cf-> P0 store data @0
    P0 at 1 (Producer:L6): release flag  <->  P1 at 0 (Consumer:L9): load flag  on flag
      cycle: P0 store data @0 -po-> P0 release flag @1 -cf-> P1 load flag @0 -po-> P1 load data @1.then.0 -cf-> P0 store data @0
  
  repair (model WO):
    fence-only: no fence needed under this model
    promotions (1):
      P1 @0 (Consumer:L9): load flag -> acquire read
    residual fences: none — promoted synchronization enforces every remaining delay pair
    repaired program is statically data-race-free under every model

An already data-race-free program needs nothing, under any model:

  $ racedet fence fig1b -m TSO
  program fig1b: 2 processors, 3 locations
  
  delay-set analysis (model TSO):
    7 access(es), 4 cross-processor conflict edge(s), 6 critical cycle(s), 10 delay pair(s)
    cycle 1: P0 unset s @2 -cf-> P1 test&set (read) s @1.body.0 -po-> P1 test&set (write) s @1.body.0 -cf-> P0 unset s @2
    cycle 2: P0 store x @0 -po-> P0 store y @1 -cf-> P1 load y @2 -po-> P1 load x @3 -cf-> P0 store x @0
    cycle 3: P0 store x @0 -po-> P0 unset s @2 -cf-> P1 test&set (read) s @1.body.0 -po-> P1 load x @3 -cf-> P0 store x @0
    cycle 4: P0 store x @0 -po-> P0 unset s @2 -cf-> P1 test&set (write) s @1.body.0 -po-> P1 load x @3 -cf-> P0 store x @0
    cycle 5: P0 store y @1 -po-> P0 unset s @2 -cf-> P1 test&set (read) s @1.body.0 -po-> P1 load y @2 -cf-> P0 store y @1
    cycle 6: P0 store y @1 -po-> P0 unset s @2 -cf-> P1 test&set (write) s @1.body.0 -po-> P1 load y @2 -cf-> P0 store y @1
    delay pairs:
      P0: store x @0  ->>  store y @1
      P0: store x @0  ->>  unset s @2
      P0: store y @1  ->>  unset s @2
      P1: test&set (write) s @1.body.0  ->>  test&set (read) s @1.body.0
      P1: test&set (read) s @1.body.0  ->>  test&set (write) s @1.body.0
      P1: test&set (read) s @1.body.0  ->>  load y @2
      P1: test&set (write) s @1.body.0  ->>  load y @2
      P1: test&set (write) s @1.body.0  ->>  load x @3
      P1: test&set (read) s @1.body.0  ->>  load x @3
      P1: load y @2  ->>  load x @3
  
  repair (model TSO):
    fence-only: no fence needed under this model
    promotions: none needed
    repaired program is statically data-race-free under every model

Unknown models still fail with the grammar of valid specs:

  $ racedet fence sb.race -m bogus
  racedet: option '-m': unknown model "bogus" (unknown base model "bogus")
           named models: SC, TSO, WO, RCsc, DRF0, DRF1
           named variants: sb-fence-nop, sb-release-nop, sb-release-partial,
           sb-bypass, sb-stall, sb-bounded-2
           variant spec: <base>[:<knob>,...] with <base> one of
           sb|sc|tso|wo|rcsc|drf0|drf1 and <knob> one of depth=<n>|unbounded,
           read=forward|stall|bypass, retire=fifo|ooo,
           {acquire|release|sync|fence}=drain|nop|partial
  Usage: racedet fence [OPTION]… PROGRAM
  Try 'racedet fence --help' or 'racedet --help' for more information.
  [124]
