Candidate-directed triage closes the static/dynamic loop: every lint
candidate is CONFIRMED with a replayable witness, REFUTED by a complete
DPOR exploration, or left UNKNOWN when a bound is hit.

  $ cat > mp.race <<'EOF'
  > program mp
  > loc data
  > loc flag
  > proc Producer {
  >   data := 42
  >   flag := 1
  > }
  > proc Consumer {
  >   f := flag
  >   if f == 1 {
  >     d := data
  >   }
  > }
  > EOF
  $ racedet triage mp.race --witness-dir w
  triage of mp under SC: 2 data candidate(s), 0 sync-sync candidate(s)
  [CONFIRMED] P0 at 0 (Producer:L5): store data  <->  P1 at 1.then.0 (Consumer:L11): load data  on data
    witness: 4-step schedule, found after 1 schedule(s)
  [CONFIRMED] P0 at 1 (Producer:L6): store flag  <->  P1 at 0 (Consumer:L9): load flag  on flag
    witness: 3-step schedule, found after 1 schedule(s)
  summary: 2 confirmed, 0 refuted, 0 unknown
  witness for candidate 0 written to w/cand0.trace (verified by re-analysis)
  witness for candidate 1 written to w/cand1.trace (verified by re-analysis)
  [2]

Each witness is an ordinary v2 trace file: `racedet analyze` replays it
to a report exhibiting the confirmed race.

  $ racedet analyze w/cand0.trace
  1 data race(s) in 1 first partition(s) — each contains at least
  one race that also occurs in a sequentially consistent execution:
  
  partition #0 (2 events, 1 data races)
    E0(P0 comp) <-> E1(P1 comp) on loc0, loc1
  [2]

On the paper's Figure 2 queue bug, triage splits the four static
candidates: the missing synchronization really races (CONFIRMED), while
the stale-address region pairs the abstract interpreter could not rule
out are false positives, proven so by a complete exploration (REFUTED).

  $ racedet triage queue_bug
  triage of queue_bug under SC: 4 data candidate(s), 1 sync-sync candidate(s)
  [CONFIRMED] P0 at 1 (P1:enqueue): store Q  <->  P1 at 1.then.0 (P2:dequeue): load Q  on Q
    witness: 5-step schedule, found after 1 schedule(s)
  [CONFIRMED] P0 at 2 (P1:clear-qempty): store QEmpty  <->  P1 at 0 (P2:read-qempty): load QEmpty  on QEmpty
    witness: 4-step schedule, found after 1 schedule(s)
  [REFUTED] P1 at 1.then.3.body.0 (P2:work-read): load mem[37..199]  <->  P2 at 1.body.0 (P3:work-write): store mem[0..99]  on mem[37..99]
    complete exploration: 3 schedule(s), no race on this pair
  [REFUTED] P1 at 1.then.3.body.1 (P2:work-write): store mem[37..199]  <->  P2 at 1.body.0 (P3:work-write): store mem[0..99]  on mem[37..99]
    complete exploration: 3 schedule(s), no race on this pair
  summary: 2 confirmed, 2 refuted, 0 unknown
  [2]

A program with no data candidates has nothing to triage (exit 0);
`--sync` additionally triages the informational sync-sync pairs, which
never affect the verdict.

  $ cat > sb_sync.race <<'EOF'
  > program sb_sync
  > loc x
  > loc y
  > proc P0 {
  >   release x := 1
  >   r0 := acquire y
  > }
  > proc P1 {
  >   release y := 1
  >   r1 := acquire x
  > }
  > EOF
  $ racedet triage sb_sync.race --sync
  triage of sb_sync under SC: 0 data candidate(s), 2 sync-sync candidate(s)
  sync-sync pairs (informational):
  [CONFIRMED] P0 at 0 (P0:L5): release x  <->  P1 at 1 (P1:L10): acquire x  on x
    witness: 3-step schedule, found after 3 schedule(s)
  [CONFIRMED] P0 at 1 (P0:L6): acquire y  <->  P1 at 0 (P1:L9): release y  on y
    witness: 3-step schedule, found after 1 schedule(s)
  summary: 0 confirmed, 0 refuted, 0 unknown

Tight bounds on a spinning program leave candidates UNKNOWN (exit 3):
truncated schedules can neither confirm nor refute.

  $ racedet triage barrier_phases --max-steps 60 --limit 200
  triage of barrier_phases under SC: 3 data candidate(s), 27 sync-sync candidate(s)
  [UNKNOWN] P0 at 0 (P0:phase1-write): store 0  <->  P2 at 9 (P2:phase2-read): load 0  on 0
    bounds hit after 1 schedule(s); inconclusive
  [UNKNOWN] P0 at 9 (P0:phase2-read): load 1  <->  P1 at 0 (P1:phase1-write): store 1  on 1
    bounds hit after 1 schedule(s); inconclusive
  [UNKNOWN] P1 at 9 (P1:phase2-read): load 2  <->  P2 at 0 (P2:phase1-write): store 2  on 2
    bounds hit after 1 schedule(s); inconclusive
  summary: 0 confirmed, 0 refuted, 3 unknown
  [3]

`racedet lint --triage` chains both phases in one command: the static
report first, then the dynamic verdict on its candidates.

  $ racedet lint mp.race --triage
  program mp: 2 processors, 2 locations
  
  sync discipline:
    no findings
  
  data race candidates:
    P0 at 0 (Producer:L5): store data  <->  P1 at 1.then.0 (Consumer:L11): load data  on data
      cycle: P0 store data @0 -po-> P0 store flag @1 -cf-> P1 load flag @0 -po-> P1 load data @1.then.0 -cf-> P0 store data @0
    P0 at 1 (Producer:L6): store flag  <->  P1 at 0 (Consumer:L9): load flag  on flag
      cycle: P0 store data @0 -po-> P0 store flag @1 -cf-> P1 load flag @0 -po-> P1 load data @1.then.0 -cf-> P0 store data @0
    2 candidate pair(s): any data race an execution exhibits is among these
  
  triage of mp under SC: 2 data candidate(s), 0 sync-sync candidate(s)
  [CONFIRMED] P0 at 0 (Producer:L5): store data  <->  P1 at 1.then.0 (Consumer:L11): load data  on data
    witness: 4-step schedule, found after 1 schedule(s)
  [CONFIRMED] P0 at 1 (Producer:L6): store flag  <->  P1 at 0 (Consumer:L9): load flag  on flag
    witness: 3-step schedule, found after 1 schedule(s)
  summary: 2 confirmed, 0 refuted, 0 unknown
  [2]

`racedet enumerate` reports its verdict in the exit code too: 0 for
data-race-free, 2 for racy, 1 when the exploration was cut short with
no races seen.

  $ racedet enumerate fig1a
  3 sequentially consistent execution(s) (DPOR-reduced)
  3 exhibit data races
  the program is NOT data-race-free (Def 2.4)
  [2]
  $ racedet enumerate handoff_update --limit 1
  1 sequentially consistent execution(s) (DPOR-reduced) (incomplete)
  0 exhibit data races
  exploration incomplete: no verdict
  [1]
