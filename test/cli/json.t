The machine-readable reports.  Both `lint --json` and `fence --json`
emit a stable schema (version 1) that this test locks byte for byte:
keys in fixed order, two-space indent, accesses rendered with the same
proc/path/label triple as the text report.

  $ cat > sb.race <<'EOF'
  > program sb
  > loc x
  > loc y
  > proc P0 {
  >   x := 1
  >   r0 := y
  > }
  > proc P1 {
  >   y := 1
  >   r1 := x
  > }
  > EOF

  $ racedet lint sb.race --json
  {
    "schema": 1,
    "program": "sb",
    "n_procs": 2,
    "n_locs": 2,
    "truncated": false,
    "findings": [],
    "data_candidates": [
      {
        "a": {
          "proc": 0,
          "path": "0",
          "label": "P0:L5",
          "op": "store",
          "kind": "write",
          "class": "data",
          "locs": "x"
        },
        "b": {
          "proc": 1,
          "path": "1",
          "label": "P1:L10",
          "op": "load",
          "kind": "read",
          "class": "data",
          "locs": "x"
        },
        "locs": "x",
        "data": true,
        "cycle": [
          {
            "proc": 0,
            "path": "0",
            "label": "P0:L5",
            "op": "store",
            "kind": "write",
            "class": "data",
            "locs": "x",
            "edge_to_next": "po"
          },
          {
            "proc": 0,
            "path": "1",
            "label": "P0:L6",
            "op": "load",
            "kind": "read",
            "class": "data",
            "locs": "y",
            "edge_to_next": "cf"
          },
          {
            "proc": 1,
            "path": "0",
            "label": "P1:L9",
            "op": "store",
            "kind": "write",
            "class": "data",
            "locs": "y",
            "edge_to_next": "po"
          },
          {
            "proc": 1,
            "path": "1",
            "label": "P1:L10",
            "op": "load",
            "kind": "read",
            "class": "data",
            "locs": "x",
            "edge_to_next": "cf"
          }
        ],
        "delay_ordered": false
      },
      {
        "a": {
          "proc": 0,
          "path": "1",
          "label": "P0:L6",
          "op": "load",
          "kind": "read",
          "class": "data",
          "locs": "y"
        },
        "b": {
          "proc": 1,
          "path": "0",
          "label": "P1:L9",
          "op": "store",
          "kind": "write",
          "class": "data",
          "locs": "y"
        },
        "locs": "y",
        "data": true,
        "cycle": [
          {
            "proc": 0,
            "path": "0",
            "label": "P0:L5",
            "op": "store",
            "kind": "write",
            "class": "data",
            "locs": "x",
            "edge_to_next": "po"
          },
          {
            "proc": 0,
            "path": "1",
            "label": "P0:L6",
            "op": "load",
            "kind": "read",
            "class": "data",
            "locs": "y",
            "edge_to_next": "cf"
          },
          {
            "proc": 1,
            "path": "0",
            "label": "P1:L9",
            "op": "store",
            "kind": "write",
            "class": "data",
            "locs": "y",
            "edge_to_next": "po"
          },
          {
            "proc": 1,
            "path": "1",
            "label": "P1:L10",
            "op": "load",
            "kind": "read",
            "class": "data",
            "locs": "x",
            "edge_to_next": "cf"
          }
        ],
        "delay_ordered": false
      }
    ],
    "sync_candidates": [],
    "statically_drf": false
  }
  [2]

  $ cat > mp_partial.race <<'EOF'
  > program mp_partial
  > loc data
  > loc flag
  > proc Producer {
  >   data := 42
  >   release flag := 1
  > }
  > proc Consumer {
  >   f := flag
  >   if f == 1 {
  >     d := data
  >   }
  > }
  > EOF

  $ racedet fence mp_partial.race --json
  {
    "schema": 1,
    "program": "mp_partial",
    "model": "WO",
    "delayset": {
      "accesses": 4,
      "conflicts": 2,
      "truncated": false,
      "cycles": [
        [
          {
            "proc": 0,
            "path": "0",
            "label": "Producer:L5",
            "op": "store",
            "kind": "write",
            "class": "data",
            "locs": "data",
            "edge_to_next": "po"
          },
          {
            "proc": 0,
            "path": "1",
            "label": "Producer:L6",
            "op": "release",
            "kind": "write",
            "class": "release",
            "locs": "flag",
            "edge_to_next": "cf"
          },
          {
            "proc": 1,
            "path": "0",
            "label": "Consumer:L9",
            "op": "load",
            "kind": "read",
            "class": "data",
            "locs": "flag",
            "edge_to_next": "po"
          },
          {
            "proc": 1,
            "path": "1.then.0",
            "label": "Consumer:L11",
            "op": "load",
            "kind": "read",
            "class": "data",
            "locs": "data",
            "edge_to_next": "cf"
          }
        ]
      ],
      "delays": [
        {
          "from": {
            "proc": 0,
            "path": "0",
            "label": "Producer:L5",
            "op": "store",
            "kind": "write",
            "class": "data",
            "locs": "data"
          },
          "to": {
            "proc": 0,
            "path": "1",
            "label": "Producer:L6",
            "op": "release",
            "kind": "write",
            "class": "release",
            "locs": "flag"
          }
        },
        {
          "from": {
            "proc": 1,
            "path": "0",
            "label": "Consumer:L9",
            "op": "load",
            "kind": "read",
            "class": "data",
            "locs": "flag"
          },
          "to": {
            "proc": 1,
            "path": "1.then.0",
            "label": "Consumer:L11",
            "op": "load",
            "kind": "read",
            "class": "data",
            "locs": "data"
          }
        }
      ]
    },
    "repair": {
      "fence_only": [],
      "promotions": [
        {
          "proc": 1,
          "path": "0",
          "label": "Consumer:L9",
          "from": "load",
          "to": "acquire",
          "forced": false
        }
      ],
      "fences": [],
      "rounds": 1,
      "statically_drf": true
    },
    "verify": null
  }

A statically clean program keeps the same shape with empty candidate
lists, so consumers need no special case:

  $ racedet lint fig1b --json
  {
    "schema": 1,
    "program": "fig1b",
    "n_procs": 2,
    "n_locs": 3,
    "truncated": false,
    "findings": [],
    "data_candidates": [],
    "sync_candidates": [
      {
        "a": {
          "proc": 0,
          "path": "2",
          "label": "P1:unset-s",
          "op": "unset",
          "kind": "write",
          "class": "release",
          "locs": "s"
        },
        "b": {
          "proc": 1,
          "path": "1.body.0",
          "label": "P2:test&set-s",
          "op": "test&set",
          "kind": "read",
          "class": "acquire",
          "locs": "s"
        },
        "locs": "s",
        "data": false
      },
      {
        "a": {
          "proc": 0,
          "path": "2",
          "label": "P1:unset-s",
          "op": "unset",
          "kind": "write",
          "class": "release",
          "locs": "s"
        },
        "b": {
          "proc": 1,
          "path": "1.body.0",
          "label": "P2:test&set-s",
          "op": "test&set",
          "kind": "write",
          "class": "sync",
          "locs": "s"
        },
        "locs": "s",
        "data": false
      }
    ],
    "statically_drf": true
  }

--json and --triage are mutually exclusive (triage output is a
streaming report):

  $ racedet lint sb.race --json --triage
  racedet: --json and --triage are mutually exclusive
  [1]

`robust --json` locks the robustness report the same way: the static
per-cycle edge verdicts, the dynamic closure with its witness, and the
lattice frontier:

  $ racedet robust sb.race -m tso --json
  {
    "schema": 1,
    "program": "sb",
    "model": "TSO",
    "verdict": "NOT ROBUST",
    "exit": 2,
    "static": {
      "robust": false,
      "truncated": false,
      "breakable": 2,
      "cycles": [
        {
          "feasible": true,
          "cycle": [
            {
              "proc": 0,
              "path": "0",
              "label": "P0:L5",
              "op": "store",
              "kind": "write",
              "class": "data",
              "locs": "x",
              "edge_to_next": "po"
            },
            {
              "proc": 0,
              "path": "1",
              "label": "P0:L6",
              "op": "load",
              "kind": "read",
              "class": "data",
              "locs": "y",
              "edge_to_next": "cf"
            },
            {
              "proc": 1,
              "path": "0",
              "label": "P1:L9",
              "op": "store",
              "kind": "write",
              "class": "data",
              "locs": "y",
              "edge_to_next": "po"
            },
            {
              "proc": 1,
              "path": "1",
              "label": "P1:L10",
              "op": "load",
              "kind": "read",
              "class": "data",
              "locs": "x",
              "edge_to_next": "cf"
            }
          ],
          "edges": [
            {
              "from": {
                "proc": 0,
                "path": "0",
                "label": "P0:L5",
                "op": "store",
                "kind": "write",
                "class": "data",
                "locs": "x"
              },
              "to": {
                "proc": 0,
                "path": "1",
                "label": "P0:L6",
                "op": "load",
                "kind": "read",
                "class": "data",
                "locs": "y"
              },
              "breakable": true,
              "kind": "wr",
              "reason": "the read performs while the older write is still buffered"
            },
            {
              "from": {
                "proc": 1,
                "path": "0",
                "label": "P1:L9",
                "op": "store",
                "kind": "write",
                "class": "data",
                "locs": "y"
              },
              "to": {
                "proc": 1,
                "path": "1",
                "label": "P1:L10",
                "op": "load",
                "kind": "read",
                "class": "data",
                "locs": "x"
              },
              "breakable": true,
              "kind": "wr",
              "reason": "the read performs while the older write is still buffered"
            }
          ]
        }
      ],
      "hazards": []
    },
    "closure": {
      "sc_behaviours": 3,
      "schedules": 1,
      "complete": false,
      "witness": {
        "schedule_steps": 4,
        "operations": 4,
        "verified": true,
        "path": null
      }
    },
    "frontier": [
      {
        "point": "sc",
        "robust": true
      },
      {
        "point": "tso",
        "robust": false
      },
      {
        "point": "wo",
        "robust": false
      },
      {
        "point": "rcsc",
        "robust": false
      },
      {
        "point": "drf0",
        "robust": false
      },
      {
        "point": "drf1",
        "robust": false
      },
      {
        "point": "sb-fence-nop",
        "robust": false
      },
      {
        "point": "sb-release-nop",
        "robust": false
      },
      {
        "point": "sb-release-partial",
        "robust": false
      },
      {
        "point": "sb-bypass",
        "robust": false
      },
      {
        "point": "sb-stall",
        "robust": false
      },
      {
        "point": "sb-bounded-2",
        "robust": false
      }
    ]
  }
  [2]
