Trace files round-trip through the post-mortem analyzer:

  $ racedet trace unguarded_handoff --model WO --seed 2 -o u.trace
  wrote 5 events (2 computation, 3 sync) to u.trace

  $ racedet analyze u.trace
  1 data race(s) in 1 first partition(s) — each contains at least
  one race that also occurs in a sequentially consistent execution:
  
  partition #0 (5 events, 1 data races)
    E0(P0 comp) <-> E4(P1 comp) on loc0
  [2]


The analyzer can ignore the recorded pairing and rebuild so1 from the
per-location synchronization order — same verdict under lock discipline:

  $ racedet analyze u.trace --reconstruct-so1
  1 data race(s) in 1 first partition(s) — each contains at least
  one race that also occurs in a sequentially consistent execution:
  
  partition #0 (5 events, 1 data races)
    E0(P0 comp) <-> E4(P1 comp) on loc0
  [2]


A corrupted trace fails loudly instead of inventing an answer:

  $ head -c 120 u.trace > cut.trace
  $ racedet analyze cut.trace
  racedet: cut.trace: line 6: unrecognized record "event 1 proc 0"
  [1]

Condition 3.4 verification against exhaustive SC enumeration:

  $ racedet check unguarded_handoff -n 4
  Condition 3.4 obeyed on all 16 weak executions

Exhaustive mode checks every schedule of every weak model:

  $ racedet check unguarded_handoff --exhaustive
  Condition 3.4 obeyed on all 12 weak executions (exhaustive behaviour coverage)
