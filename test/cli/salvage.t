Format v2 adds a CRC-32 suffix to every line and periodic epoch marks;
v1 files stay byte-identical to the old format and both decode:

  $ racedet trace fig1b --model SC --seed 7 --stream -o v1.trace
  wrote 9 events (2 computation, 7 sync) to v1.trace
  $ racedet trace fig1b --model SC --seed 7 --stream --v2 -o v2.trace
  wrote 9 events (2 computation, 7 sync) to v2.trace
  $ head -1 v1.trace; head -1 v2.trace
  weakrace-trace 1
  weakrace-trace 2
  $ tail -1 v2.trace | grep -c '^mark '
  1
  $ racedet analyze v1.trace > r1.out; racedet analyze v2.trace > r2.out
  $ cmp r1.out r2.out && echo same-report
  same-report

--v2 is meaningless for split directories:

  $ racedet trace fig1b --split --v2 -o split.d
  racedet: --v2 is not available for split-trace directories
  [1]

A damaged v2 file fails the strict decode loudly, naming the file:

  $ sed '12s/event/evnet/' v2.trace > bad.trace
  $ racedet analyze bad.trace 2>&1 | head -1
  racedet: bad.trace: line 12: line checksum mismatch

--salvage resynchronizes past the damage and analyzes the survivors.
Race-freedom is never certified for a lossy trace: the verdict is
degraded and the exit status is 3:

  $ racedet analyze --salvage bad.trace
  No data races detected among the surviving events.
  
  trace is lossy; analysis is degraded:
    decode: lines 12-12 (bytes 561-654): 1 line discarded, ~1 event lost — line 12: line checksum mismatch
    1 event never decoded
    gap: proc 1: 1 event missing between seq 2 and seq 4
    1 malformed or conflicting record dropped
  race-freedom cannot be certified; races reported are among surviving events only
  [3]


An undamaged trace salvages to the exact batch report and exit status:

  $ racedet analyze --salvage v2.trace > salv.out; echo $?
  0
  $ cmp r2.out salv.out && echo same-report
  same-report

--checkpoint persists the analysis state; after a successful report the
checkpoint is removed:

  $ racedet analyze --checkpoint v2.ckpt --checkpoint-every 5 v2.trace > ckpt.out
  $ cmp r2.out ckpt.out && echo same-report
  same-report
  $ test -f v2.ckpt || echo checkpoint-removed
  checkpoint-removed

A corrupt checkpoint is rejected, not trusted:

  $ echo "weakrace-ckpt 2 stream 4 00000000" > broken.ckpt
  $ echo junk >> broken.ckpt
  $ racedet analyze --checkpoint broken.ckpt v2.trace 2>&1 | head -1
  racedet: broken.ckpt: checkpoint payload is 5 bytes but the header announces 4

So is a checkpoint from an older format version or another producer:

  $ echo "weakrace-ckpt 1 4 00000000" > old.ckpt
  $ racedet analyze --checkpoint old.ckpt v2.trace 2>&1 | head -1
  racedet: old.ckpt: unsupported checkpoint format version 1 (this build writes 2)
  $ echo "weakrace-ckpt 2 serve 4 00000000" > alien.ckpt
  $ racedet analyze --checkpoint alien.ckpt v2.trace 2>&1 | head -1
  racedet: alien.ckpt: checkpoint kind is "serve", expected "stream"

The fault-injection campaign asserts the whole contract — no escaping
exceptions, lossy traces never race-free, clean salvages byte-identical
to strict, kill+resume byte-identical to batch:

  $ racedet faultfuzz --seeds 5 --program fig1b
  faultfuzz: 1 program(s) x 5 seed(s): 65 case(s) — 17 clean, 47 degraded, 1 refused, 0 invariant violation(s)
