Static robustness certification with a dynamic closure.  A program is
robust against a weak model when every behaviour the model admits is
SC-explainable — orthogonal to racy/race-free.  On the store-buffering
litmus test `racedet robust` classifies the critical cycle as feasible,
hunts down a minimal non-SC execution and reports the static verdict at
every lattice point:

  $ cat > sb.race <<'EOF'
  > program sb
  > loc x
  > loc y
  > proc P0 {
  >   x := 1
  >   r0 := y
  > }
  > proc P1 {
  >   y := 1
  >   r1 := x
  > }
  > EOF

  $ racedet robust sb.race
  robustness of sb under WO: NOT ROBUST
    static robustness under sb: NOT PROVEN — 1 critical cycle(s), 1 feasible, 2 delay pair(s) breakable, 0 coherence hazard(s)
    dynamic closure: 1 schedule(s) explored
    non-SC witness: 4-step schedule, 4 operation(s) performed, replay + round-trip verified
  lattice frontier:
    sc                   ROBUST
    tso                  not proven
    wo                   not proven
    rcsc                 not proven
    drf0                 not proven
    drf1                 not proven
    sb-fence-nop         not proven
    sb-release-nop       not proven
    sb-release-partial   not proven
    sb-bypass            not proven
    sb-stall             not proven
    sb-bounded-2         not proven
  [2]

Under SC the same program is proved robust without running anything:

  $ racedet robust sb.race -m sc | head -n 2
  robustness of sb under SC: ROBUST (static)
    static robustness under sb:depth=0: ROBUST — 1 critical cycle(s), 0 feasible, 0 delay pair(s) breakable, 0 coherence hazard(s)

IRIW is the classic racy-yet-robust litmus: four race candidates, but
each reader's load->load pair starts at a read, so no store-buffer
delay kind can break its cycles — ROBUST at every lattice point:

  $ cat > iriw.race <<'EOF'
  > program iriw
  > loc x
  > loc y
  > proc P0 {
  >   x := 1
  > }
  > proc P1 {
  >   y := 1
  > }
  > proc P2 {
  >   r0 := x
  >   r1 := y
  > }
  > proc P3 {
  >   r2 := y
  >   r3 := x
  > }
  > EOF

  $ racedet robust iriw.race | head -n 2
  robustness of iriw under WO: ROBUST (static)
    static robustness under sb: ROBUST — 1 critical cycle(s), 0 feasible, 0 delay pair(s) breakable, 0 coherence hazard(s)

--explain attaches the per-edge verdicts: which program-order edge the
hardware can break (and with which delay kind), and which knob enforces
the rest.  Message passing through an RMW consumer is broken only by a
release that does not drain the data write:

  $ cat > mp_rmw.race <<'EOF'
  > program mp_rmw
  > loc d
  > loc f
  > proc P0 {
  >   d := 1
  >   release f := 1
  > }
  > proc P1 {
  >   rf := acquire f
  >   old := faa(d, 0)
  > }
  > EOF

  $ racedet robust mp_rmw.race -m sb-release-nop --explain
  robustness of mp_rmw under sb-release-nop: NOT ROBUST
  static robustness under sb-release-nop: NOT PROVEN — 3 critical cycle(s), 2 feasible, 1 delay pair(s) breakable, 0 coherence hazard(s)
  cycle 1: infeasible
    P0 store d @0 -cf-> P1 fetch&add (read) d @1 -po-> P1 fetch&add (write) d @1 -cf-> P0 store d @0
      P1: fetch&add (read) d @1  ->>  fetch&add (write) d @1  [enforced: reads perform at issue: nothing to delay]
  cycle 2: FEASIBLE
    P0 store d @0 -po-> P0 release f @1 -cf-> P1 acquire f @0 -po-> P1 fetch&add (read) d @1 -cf-> P0 store d @0
      P0: store d @0  ->>  release f @1  [breakable W->R: the sync write performs at issue while the data write is buffered]
      P1: acquire f @0  ->>  fetch&add (read) d @1  [enforced: reads perform at issue: nothing to delay]
  cycle 3: FEASIBLE
    P0 store d @0 -po-> P0 release f @1 -cf-> P1 acquire f @0 -po-> P1 fetch&add (write) d @1 -cf-> P0 store d @0
      P0: store d @0  ->>  release f @1  [breakable W->R: the sync write performs at issue while the data write is buffered]
      P1: acquire f @0  ->>  fetch&add (write) d @1  [enforced: reads perform at issue: nothing to delay]
    dynamic closure: 1 schedule(s) explored
    non-SC witness: 4-step schedule, 5 operation(s) performed, replay + round-trip verified
  lattice frontier:
    sc                   ROBUST
    tso                  ROBUST
    wo                   ROBUST
    rcsc                 ROBUST
    drf0                 ROBUST
    drf1                 ROBUST
    sb-fence-nop         ROBUST
    sb-release-nop       not proven
    sb-release-partial   not proven
    sb-bypass            ROBUST
    sb-stall             ROBUST
    sb-bounded-2         ROBUST
  [2]

--witness-dir writes the minimized witness as a checksummed v2 trace;
it replays through the ordinary analysis pipeline:

  $ racedet robust sb.race --witness-dir wd >/dev/null; echo "exit $?"
  exit 2
  $ racedet analyze wd/sb.robust.trace
  1 data race(s) in 1 first partition(s) — each contains at least
  one race that also occurs in a sequentially consistent execution:
  
  partition #0 (2 events, 1 data races)
    E0(P0 comp) <-> E1(P1 comp) on loc0, loc1
  [2]


`analyze --robust PROGRAM` asks the question of an *observed* trace:
does some SC interleaving of the program produce this trace's exact
event structure and synchronization values?  An SC run is explainable;
the mp_rmw violation (acquire saw f=1 but the fetch&add read stale 0,
both sync-valued operations the trace records) is not:

  $ racedet trace mp_rmw.race -m sc -o sc.trace --v2
  wrote 5 events (1 computation, 4 sync) to sc.trace
  $ racedet analyze sc.trace --robust mp_rmw.race
  trace sc.trace: 5 event(s) across 2 processor(s)
  SC explainability against mp_rmw (3 SC behaviour(s)): explainable — some SC interleaving produces this trace

  $ racedet trace mp_rmw.race -m sb-release-nop -s 14 --v2 -o weak.trace
  wrote 5 events (1 computation, 4 sync) to weak.trace
  $ racedet analyze weak.trace --robust mp_rmw.race
  trace weak.trace: 5 event(s) across 2 processor(s)
  SC explainability against mp_rmw (3 SC behaviour(s)): NOT explainable — no SC interleaving produces this trace
  [2]

The check needs the whole trace at once — streaming mode refuses it:

  $ racedet analyze weak.trace --robust mp_rmw.race --stream
  racedet: --robust needs the whole trace at once and is not available with --stream
  [1]
