Streaming analysis produces byte-identical reports to batch mode, for
every stock program, in both trace layouts:

  $ for p in $(racedet list | awk '{print $1}'); do
  >   racedet trace $p --model SC --seed 7 -o $p.trace > /dev/null
  >   racedet trace $p --model SC --seed 7 --stream -o $p.stream.trace > /dev/null
  >   racedet analyze $p.trace > batch.out 2>&1; be=$?
  >   racedet analyze --stream $p.trace > s1.out 2>&1; s1=$?
  >   racedet analyze --stream $p.stream.trace > s2.out 2>&1; s2=$?
  >   if cmp -s batch.out s1.out && cmp -s batch.out s2.out \
  >      && [ $be -eq $s1 ] && [ $be -eq $s2 ]
  >   then echo "$p: identical (exit $be)"
  >   else echo "$p: MISMATCH (exit $be/$s1/$s2)"; fi
  > done
  fig1a: identical (exit 2)
  fig1b: identical (exit 0)
  queue_bug: identical (exit 2)
  dekker: identical (exit 2)
  dekker_fenced: identical (exit 2)
  read_own_write: identical (exit 0)
  mp_data_flag: identical (exit 2)
  mp_release_acquire: identical (exit 0)
  handoff_update: identical (exit 0)
  guarded_handoff: identical (exit 0)
  unguarded_handoff: identical (exit 2)
  counter_locked: identical (exit 0)
  counter_racy: identical (exit 2)
  disjoint: identical (exit 0)
  peterson: identical (exit 2)
  lazy_init: identical (exit 2)
  barrier_phases: identical (exit 0)

Exit status 2 signals races in streaming mode, exactly as in batch mode:

  $ racedet trace unguarded_handoff --model WO --seed 1 --stream -o races.trace
  wrote 5 events (2 computation, 3 sync) to races.trace
  $ racedet analyze --stream races.trace > /dev/null
  [2]

--stats reports the live-set accounting on stderr without disturbing the
stdout report.  On the stream-ordered layout of a synchronized program
events retire while reading, so the peak live set stays below the total:

  $ racedet trace barrier_phases --model SC --seed 7 --stream -o barrier.trace
  wrote 50 events (9 computation, 41 sync) to barrier.trace
  $ racedet analyze --stream --stats barrier.trace > report.out
  stream: events 50, peak live 41, retired 31 (forced 0), surviving 35, races 92
  $ racedet analyze barrier.trace | cmp - report.out && echo identical
  identical

A corrupt trace is a clean error in both modes; the streaming decoder
additionally reports the byte offset of the offending line:

  $ sed '5s/comp/cmop/' barrier.trace > bad.trace
  $ racedet analyze bad.trace
  racedet: bad.trace: line 5: unrecognized record "event 0 proc 0 seq 0 cmop reads - writes 0"
  [1]
  $ racedet analyze --stream bad.trace
  racedet: bad.trace: byte 63: line 5: unrecognized record "event 0 proc 0 seq 0 cmop reads - writes 0"
  [1]

Truncating the stream-ordered layout mid-way loses events, which the end
marker (or its absence) exposes:

  $ head -n 20 barrier.trace > cut.trace
  $ racedet analyze --stream cut.trace > /dev/null
  racedet: cut.trace: missing event 5 (saw 12 of 50)
  [1]

--max-live caps the resident candidate set.  hb1 ordering stays exact,
so reports degrade only by missing long-range races, never by inventing
them; forced evictions are visible in the stats:

  $ racedet analyze --max-live 4 --stats barrier.trace > capped.out
  stream: events 50, peak live 5, retired 2 (forced 44), surviving 11, races 13
  $ cmp report.out capped.out && echo identical
  identical

--max-live must be positive:

  $ racedet analyze --max-live 0 barrier.trace 2> /dev/null
  [1]

--follow tails a trace that is still being written: here the second half
of the file arrives only after analysis has started, and the end marker
in the stream-ordered layout terminates the wait promptly:

  $ head -n 8 barrier.trace > growing.trace
  $ (sleep 0.2; tail -n +9 barrier.trace >> growing.trace) &
  $ racedet analyze --follow growing.trace > follow.out
  $ wait
  $ cmp report.out follow.out && echo identical
  identical

Streaming consumes the recorded so1 pairing and reads a single file, so
the incompatible options are rejected up front:

  $ racedet analyze --stream --reconstruct-so1 barrier.trace
  racedet: --reconstruct-so1 is not available with --stream (streaming consumes the recorded pairing)
  [1]
  $ racedet trace --split --stream barrier_phases --model SC --seed 7 -o split.d
  racedet: --split and --stream are mutually exclusive
  [1]
  $ racedet trace --split barrier_phases --model SC --seed 7 -o split.d
  wrote 50 events (9 computation, 41 sync) to split.d
  $ racedet analyze --stream split.d
  racedet: --stream reads a single trace file, not a split directory
  [1]
