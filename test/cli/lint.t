Static checking runs before any execution: `racedet lint` proves stock
race-free programs clean (exit 0)...

  $ racedet lint fig1b
  program fig1b: 2 processors, 3 locations
  
  sync discipline:
    no findings
  
  data race candidates:
    none: the program is statically data-race-free under every model
  
  unordered sync-sync pairs (informational): 2

  $ racedet lint handoff.race
  program handoff: 2 processors, 2 locations
  
  sync discipline:
    no findings
  
  data race candidates:
    none: the program is statically data-race-free under every model
  
  unordered sync-sync pairs (informational): 2

...and finds the paper's Figure 2 queue bug without running it: the
missing Test&Sets leave the queue unprotected, and the abstract work
regions overlap exactly where the stale dequeue tramples P3 (exit 2):

  $ racedet lint queue_bug
  program queue_bug: 3 processors, 303 locations
  
  sync discipline:
    P0 at 3 (P1:unset-S): release of S orders nothing: no acquire of S in any other processor
    P1 at 1.then.1 (P2:unset-S): release of S orders nothing: no acquire of S in any other processor
  
  data race candidates:
    P0 at 1 (P1:enqueue): store Q  <->  P1 at 1.then.0 (P2:dequeue): load Q  on Q
      cycle: P0 store Q @1 -po-> P0 store QEmpty @2 -cf-> P1 load QEmpty @0 -po-> P1 load Q @1.then.0 -cf-> P0 store Q @1
    P0 at 2 (P1:clear-qempty): store QEmpty  <->  P1 at 0 (P2:read-qempty): load QEmpty  on QEmpty
      cycle: P0 store Q @1 -po-> P0 store QEmpty @2 -cf-> P1 load QEmpty @0 -po-> P1 load Q @1.then.0 -cf-> P0 store Q @1
    P1 at 1.then.3.body.0 (P2:work-read): load mem[37..199]  <->  P2 at 1.body.0 (P3:work-write): store mem[0..99]  on mem[37..99]
      cycle: P1 load mem[37..199] @1.then.3.body.0 -po-> P1 store mem[37..199] @1.then.3.body.1 -cf-> P2 store mem[0..99] @1.body.0 -cf-> P1 load mem[37..199] @1.then.3.body.0
    P1 at 1.then.3.body.1 (P2:work-write): store mem[37..199]  <->  P2 at 1.body.0 (P3:work-write): store mem[0..99]  on mem[37..99]
      cycle: P1 load mem[37..199] @1.then.3.body.0 -po-> P1 store mem[37..199] @1.then.3.body.1 -cf-> P2 store mem[0..99] @1.body.0 -cf-> P1 load mem[37..199] @1.then.3.body.0
    4 candidate pair(s): any data race an execution exhibits is among these
  
  unordered sync-sync pairs (informational): 1
  [2]

The sync-discipline checker explains how synchronization fails to pair,
with model-specific findings tagged:

  $ racedet lint undisciplined.race
  program undisciplined: 2 processors, 3 locations
  
  sync discipline:
    P0 at 0 (P0:L8): fence drains nothing: no data store can be buffered here
    P0 at 1 (P0:L9): acquires of m can only observe Test&Set/Fetch&Add writes, which are not releases: no so1 pairing under DRF1 (DRF0's symmetric synchronization still orders them) [DRF1]
    P0 at 1 (P0:L9): the result of test&set(m) never guards anything: no later instruction is conditional on it having read 0
    P0 at 3 (P0:L11): release of l orders nothing: no acquire of l in any other processor
  
  data race candidates:
    P0 at 2 (P0:L10): store x  <->  P1 at 0 (P1:L14): load x  on x
      no critical cycle: already SC-ordered — weak buffering adds no outcomes for this pair
    1 candidate pair(s): any data race an execution exhibits is among these
  [2]

Restricting to one model drops findings tagged for other models:

  $ racedet lint undisciplined.race -m DRF0
  program undisciplined: 2 processors, 3 locations
  
  sync discipline:
    P0 at 0 (P0:L8): fence drains nothing: no data store can be buffered here
    P0 at 1 (P0:L9): the result of test&set(m) never guards anything: no later instruction is conditional on it having read 0
    P0 at 3 (P0:L11): release of l orders nothing: no acquire of l in any other processor
  
  data race candidates:
    P0 at 2 (P0:L10): store x  <->  P1 at 0 (P1:L14): load x  on x
      no critical cycle: already SC-ordered — weak buffering adds no outcomes for this pair
    1 candidate pair(s): any data race an execution exhibits is among these
  [2]

Validation errors point at the offending instruction by processor and
structural path (exit 1):

  $ cat > divzero.race <<'EOF'
  > program divzero
  > loc x
  > proc P0 {
  >   x := 1
  > }
  > proc P1 {
  >   if 1 {
  >     r := x
  >     s := r / 0
  >   }
  > }
  > EOF
  $ racedet lint divzero.race
  racedet: P1 at 0.then.1: division by constant zero
  [1]
