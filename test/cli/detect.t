A data-race-free program on a weak model: clean bill of health, exit 0.

  $ racedet detect fig1b --model WO --seed 3
  No data races detected.
  By Condition 3.4(1) the execution was sequentially consistent.

A racy program: the first partition is reported and the exit status is 2.

  $ racedet detect fig1a --model RCsc --seed 1
  1 data race(s) in 1 first partition(s) — each contains at least
  one race that also occurs in a sequentially consistent execution:
  
  partition #0 (2 events, 1 data races)
    E0(P0 comp P1:write-x) <-> E1(P1 comp P2:read-y) on x, y
  [2]


Program files in the concrete syntax work everywhere a stock name does:

  $ racedet detect handoff.race --model DRF1 --seed 5
  No data races detected.
  By Condition 3.4(1) the execution was sequentially consistent.

  $ racedet enumerate handoff.race
  2 sequentially consistent execution(s) (DPOR-reduced)
  0 exhibit data races
  the program is data-race-free: every weak execution is SC

Parse errors carry line and column numbers:

  $ cat > broken.race <<'EOF'
  > program broken
  > loc x
  > proc {
  >   r := x + 1
  > }
  > EOF
  $ racedet detect broken.race
  racedet: line 4, column 10: memory cannot appear inside an expression; load it into a register first
  [1]

An unknown --order value fails with the grammar of valid names, the
same shape as an unknown --model:

  $ racedet detect fig1a --order bogus
  racedet: option '--order': unknown order "bogus"
           named orders: hb1, shb
           order spec: hb1 (the paper's happens-before-1 with first-partition
           suppression) | shb (hb1 plus the observed reads-from edges)
  Usage: racedet detect [OPTION]… PROGRAM
  Try 'racedet detect --help' or 'racedet --help' for more information.
  [124]
