module Exec = Memsim.Exec
module Model = Memsim.Model
module Enumerate = Memsim.Enumerate
module Gen = Minilang.Gen
module Interp = Minilang.Interp
module Programs = Minilang.Programs
module Dpor = Explore.Dpor
module Triage = Explore.Triage
module Postmortem = Racedetect.Postmortem
module Race = Racedetect.Race

let mk p () = Interp.source p

let behaviours_equal a b =
  Dpor.behaviours_covered a b && Dpor.behaviours_covered b a

(* -- qcheck differential: DPOR = naive enumeration, SC ---------------- *)

(* Program sizes are capped so the *naive* enumeration stays tractable:
   its schedule count is multinomial in the per-processor op counts, and
   the race-free generators append hand-off code on top of [ops_per_proc]. *)
let generated_program seed =
  let n_procs = 2 + (seed mod 2) in
  let config =
    {
      Gen.default_config with
      Gen.n_procs;
      n_locks = 1;
      ops_per_proc = (if n_procs = 3 then 2 else 3 + (seed mod 3));
    }
  in
  match seed mod 3 with
  | 0 -> Gen.random_racy ~config ~seed ()
  | 1 -> Gen.random_racefree ~config ~seed ()
  | _ -> Gen.random_racefree_ra ~config ~seed ()

let differential_sc =
  QCheck.Test.make ~count:500 ~name:"DPOR behaviours = naive behaviours (SC)"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let p = generated_program seed in
      let naive = Enumerate.explore ~limit:2_000_000 (mk p) in
      let dpor = Dpor.explore ~limit:2_000_000 ~model:Model.SC (mk p) in
      if not (naive.Enumerate.complete && dpor.Dpor.complete) then
        QCheck.Test.fail_reportf "%s (seed %d): incomplete exploration"
          p.Minilang.Ast.name seed;
      if dpor.Dpor.schedules > List.length naive.Enumerate.executions then
        QCheck.Test.fail_reportf
          "%s (seed %d): DPOR explored %d schedules, naive only %d"
          p.Minilang.Ast.name seed dpor.Dpor.schedules
          (List.length naive.Enumerate.executions);
      if
        not
          (behaviours_equal
             (Enumerate.behaviours naive.Enumerate.executions)
             (Enumerate.behaviours dpor.Dpor.executions))
      then
        QCheck.Test.fail_reportf "%s (seed %d): behaviour sets differ"
          p.Minilang.Ast.name seed;
      true)

(* -- qcheck differential under a weak model --------------------------- *)

let differential_weak =
  QCheck.Test.make ~count:300 ~name:"DPOR behaviours = naive behaviours (WO)"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let config =
        {
          Gen.default_config with
          Gen.n_procs = 2;
          n_locks = 1;
          ops_per_proc = 2;
        }
      in
      let p =
        match seed mod 3 with
        | 0 -> Gen.random_racy ~config ~seed ()
        | 1 -> Gen.random_racefree ~config ~seed ()
        | _ -> Gen.random_racefree_ra ~config ~seed ()
      in
      let naive =
        Enumerate.explore_weak ~limit:4_000_000 ~model:Model.WO (mk p)
      in
      let dpor =
        Dpor.explore ~max_steps:400 ~limit:4_000_000 ~model:Model.WO (mk p)
      in
      if not (naive.Enumerate.complete && dpor.Dpor.complete) then
        QCheck.Test.fail_reportf "%s (seed %d): incomplete exploration"
          p.Minilang.Ast.name seed;
      if
        not
          (behaviours_equal
             (Enumerate.behaviours naive.Enumerate.executions)
             (Enumerate.behaviours dpor.Dpor.executions))
      then
        QCheck.Test.fail_reportf "%s (seed %d): weak behaviour sets differ"
          p.Minilang.Ast.name seed;
      true)

(* -- stock programs, every model -------------------------------------- *)

(* Spinning programs never enumerate to completion (every unsatisfied
   spin schedule truncates), so the exhaustive differential covers the
   loop-free stock programs; triage tests exercise the spinning ones. *)
let rec has_loop instrs =
  List.exists
    (function
      | Minilang.Ast.While _ -> true
      | Minilang.Ast.If (_, a, b) -> has_loop a || has_loop b
      | _ -> false)
    instrs

let loop_free =
  List.filter
    (fun (_, p) ->
      not (Array.exists has_loop p.Minilang.Ast.procs))
    Programs.all

let test_stock_differential () =
  List.iter
    (fun (name, p) ->
      let naive = Enumerate.explore ~limit:500_000 (mk p) in
      let dpor = Dpor.explore ~limit:500_000 ~model:Model.SC (mk p) in
      if not (naive.Enumerate.complete && dpor.Dpor.complete) then
        Alcotest.failf "%s: incomplete enumeration" name;
      if
        not
          (behaviours_equal
             (Enumerate.behaviours naive.Enumerate.executions)
             (Enumerate.behaviours dpor.Dpor.executions))
      then Alcotest.failf "%s: SC behaviour sets differ" name;
      if dpor.Dpor.schedules > List.length naive.Enumerate.executions then
        Alcotest.failf "%s: DPOR explored more schedules than naive" name)
    loop_free

let test_stock_weak () =
  List.iter
    (fun (name, p) ->
      List.iter
        (fun model ->
          let naive =
            Enumerate.explore_weak ~limit:500_000 ~model (mk p)
          in
          let dpor = Dpor.explore ~max_steps:400 ~limit:500_000 ~model (mk p) in
          if not (naive.Enumerate.complete && dpor.Dpor.complete) then
            Alcotest.failf "%s under %s: incomplete enumeration" name
              (Model.name model);
          if
            not
              (behaviours_equal
                 (Enumerate.behaviours naive.Enumerate.executions)
                 (Enumerate.behaviours dpor.Dpor.executions))
          then
            Alcotest.failf "%s under %s: behaviour sets differ" name
              (Model.name model))
        [ Model.TSO; Model.WO ])
    [
      ("fig1a", Programs.fig1a);
      ("mp_data_flag", Programs.mp_data_flag);
      ("unguarded_handoff", Programs.unguarded_handoff);
      ("disjoint", Programs.disjoint);
    ]

(* DPOR must be a strict improvement somewhere: on the disjoint program
   the processors touch disjoint locations, so DPOR should explore
   exponentially fewer schedules than the naive enumerator. *)
let test_reduction () =
  let p = Programs.disjoint in
  let naive = Enumerate.explore ~limit:500_000 (mk p) in
  let dpor = Dpor.explore ~limit:500_000 ~model:Model.SC (mk p) in
  Alcotest.(check bool) "naive complete" true naive.Enumerate.complete;
  Alcotest.(check bool) "dpor complete" true dpor.Dpor.complete;
  let n = List.length naive.Enumerate.executions in
  if dpor.Dpor.schedules * 2 > n then
    Alcotest.failf "expected >=2x reduction: naive %d, dpor %d" n
      dpor.Dpor.schedules

(* -- candidate triage --------------------------------------------------- *)

(* [dune runtest] runs the binary in the stanza directory; [dune exec]
   runs it wherever the user stands — try both roots. *)
let parse_example file =
  let candidates =
    [
      Filename.concat "../../examples/programs" file;
      Filename.concat "examples/programs" file;
    ]
  in
  let path =
    match List.find_opt Sys.file_exists candidates with
    | Some p -> p
    | None -> Alcotest.failf "example %s not found" file
  in
  match Minilang.Parser.parse_file path with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse %s: %s" path e

(* mp.race: plain message passing, both static candidates are real races.
   Every verdict must be CONFIRMED, the witness race must match its
   candidate, and every witness must survive the on-disk round trip
   (write as a v2 trace, decode, re-analyze, same race endpoints). *)
let test_triage_confirmed () =
  let p = parse_example "mp.race" in
  let r = Triage.run ~jobs:1 p in
  Alcotest.(check int) "exit code" 2 (Triage.exit_code r);
  Alcotest.(check bool) "has data candidates" true (r.Triage.data <> []);
  List.iter
    (fun v ->
      if v.Triage.status <> Triage.Confirmed then
        Alcotest.failf "mp.race candidate not confirmed";
      let w = Option.get v.Triage.witness in
      Alcotest.(check bool)
        "witness race matches the candidate" true
        (Triage.match_race v.Triage.pair w.Triage.analysis <> None);
      let path = Filename.temp_file "witness" ".trace" in
      (match Triage.write_witness path w with
      | Ok () -> ()
      | Error e -> Alcotest.failf "witness round trip: %s" e);
      Sys.remove path)
    r.Triage.data

(* Witness minimality: no proper prefix of the schedule still exhibits
   the race when replayed (with buffers drained). *)
let test_witness_minimal () =
  let p = parse_example "sb.race" in
  let r = Triage.run ~jobs:1 p in
  List.iter
    (fun v ->
      let w = Option.get v.Triage.witness in
      let sched = w.Triage.schedule in
      let n = List.length sched in
      for k = 0 to n - 1 do
        let prefix = List.filteri (fun i _ -> i < k) sched in
        let m = Memsim.Machine.create ~model:Model.SC (mk p ()) in
        List.iter (Memsim.Machine.perform m) prefix;
        if not (Memsim.Machine.finished m) then
          Memsim.Machine.set_truncated m;
        Memsim.Machine.force_drain m;
        let a =
          Postmortem.analyze_execution (Memsim.Machine.to_execution m)
        in
        if Triage.match_race v.Triage.pair a <> None then
          Alcotest.failf "a %d-step prefix of the %d-step witness confirms"
            k n
      done)
    r.Triage.data

(* mp_fixed.race: lint proves it race-free, so triage has nothing to do
   and the exit code is 0. *)
let test_triage_nothing () =
  let p = parse_example "mp_fixed.race" in
  let r = Triage.run ~jobs:1 p in
  Alcotest.(check int) "no data candidates" 0 (List.length r.Triage.data);
  Alcotest.(check int) "exit code" 0 (Triage.exit_code r)

(* queue_bug carries the paper's real bug (CONFIRMED pairs) and two
   stale-address candidates the abstract interpreter cannot rule out;
   the exploration is complete within the default bounds, so those come
   back REFUTED. *)
let test_triage_refuted () =
  let r = Triage.run ~jobs:1 (Programs.queue_bug ()) in
  let statuses = List.map (fun v -> v.Triage.status) r.Triage.data in
  Alcotest.(check bool) "some confirmed" true
    (List.mem Triage.Confirmed statuses);
  Alcotest.(check bool) "some refuted" true
    (List.mem Triage.Refuted statuses);
  List.iter
    (fun v ->
      if v.Triage.status = Triage.Refuted && not v.Triage.complete then
        Alcotest.failf "REFUTED verdict from an incomplete exploration")
    r.Triage.data;
  Alcotest.(check int) "exit code" 2 (Triage.exit_code r)

(* Differential: triage verdicts against exhaustive naive ground truth.
   On loop-free generated programs the exploration always completes, so
   triage must exit 2 exactly on the dynamically racy programs and 0 on
   the race-free ones, and every REFUTED pair must indeed race in no
   execution at all. *)
let triage_differential =
  QCheck.Test.make ~count:100
    ~name:"triage agrees with exhaustive ground truth"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let p = generated_program seed in
      let naive = Enumerate.explore ~limit:2_000_000 (mk p) in
      if not naive.Enumerate.complete then
        QCheck.Test.fail_reportf "%s (seed %d): naive incomplete"
          p.Minilang.Ast.name seed;
      let analyses =
        List.map Postmortem.analyze_execution naive.Enumerate.executions
      in
      let racy =
        List.exists
          (fun a ->
            List.exists (fun r -> r.Race.is_data) a.Postmortem.races)
          analyses
      in
      let rep = Triage.run ~jobs:1 ~max_steps:2_000 ~limit:200_000 p in
      let code = Triage.exit_code rep in
      if racy && code <> 2 then
        QCheck.Test.fail_reportf "%s (seed %d): racy but triage exit %d"
          p.Minilang.Ast.name seed code;
      if (not racy) && code <> 0 then
        QCheck.Test.fail_reportf
          "%s (seed %d): race-free but triage exit %d" p.Minilang.Ast.name
          seed code;
      List.iter
        (fun v ->
          if v.Triage.status = Triage.Refuted then
            List.iter
              (fun a ->
                if Triage.match_race v.Triage.pair a <> None then
                  QCheck.Test.fail_reportf
                    "%s (seed %d): REFUTED pair races in some execution"
                    p.Minilang.Ast.name seed)
              analyses)
        rep.Triage.data;
      true)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "explore"
    [
      ( "differential",
        qsuite [ differential_sc; differential_weak ]
        @ [
            Alcotest.test_case "stock SC" `Quick test_stock_differential;
            Alcotest.test_case "stock weak" `Quick test_stock_weak;
            Alcotest.test_case "reduction" `Quick test_reduction;
          ] );
      ( "triage",
        qsuite [ triage_differential ]
        @ [
            Alcotest.test_case "mp confirmed" `Quick test_triage_confirmed;
            Alcotest.test_case "witness minimal" `Quick test_witness_minimal;
            Alcotest.test_case "mp_fixed nothing to triage" `Quick
              test_triage_nothing;
            Alcotest.test_case "queue_bug refuted" `Quick test_triage_refuted;
          ] );
    ]
