module Model = Memsim.Model
module Variant = Memsim.Variant
module Exec = Memsim.Exec
module Op = Memsim.Op
module Sched = Memsim.Sched
module Robust = Staticcheck.Robust
module Scpool = Explore.Scpool
module Robustcheck = Explore.Robustcheck
module Trace = Tracing.Trace
module Codec = Tracing.Codec

let parse_example file =
  let candidates =
    [
      Filename.concat "../../examples/programs" file;
      Filename.concat "examples/programs" file;
    ]
  in
  let path =
    match List.find_opt Sys.file_exists candidates with
    | Some p -> p
    | None -> Alcotest.failf "example %s not found" file
  in
  match Minilang.Parser.parse_file path with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse %s: %s" path e

let stock name = Option.get (Minilang.Programs.find name)

(* The twelve lattice points the frontier reports, in roster order. *)
let roster = Explore.Vcampaign.roster
let n_roster = List.length roster

(* ------------------------------------------------------------------ *)
(* 1. Exhaustive litmus matrix: exact verdict per lattice point        *)
(* ------------------------------------------------------------------ *)

(* 0 = ROBUST, 2 = NOT-ROBUST (with a verified witness).  [only] names
   the lattice points expected non-robust; everything else must prove
   robust. *)
let matrix =
  [
    (`Example "sb.race",
     [ "tso"; "wo"; "rcsc"; "drf0"; "drf1"; "sb-fence-nop"; "sb-release-nop";
       "sb-release-partial"; "sb-bypass"; "sb-stall"; "sb-bounded-2" ]);
    (`Example "lb.race", []);
    (`Example "iriw.race", []);
    (`Example "coRR.race", []);
    (`Example "sb_sync.race", []);
    (`Example "mp.race",
     [ "wo"; "rcsc"; "drf0"; "drf1"; "sb-fence-nop"; "sb-release-nop";
       "sb-release-partial"; "sb-bypass"; "sb-stall"; "sb-bounded-2" ]);
    (`Example "mp_partial.race", [ "sb-release-nop"; "sb-release-partial" ]);
    (`Example "mp_fixed.race", [ "sb-release-nop"; "sb-release-partial" ]);
    (`Example "mp_rmw.race", [ "sb-release-nop"; "sb-release-partial" ]);
    (`Stock "dekker",
     [ "tso"; "wo"; "rcsc"; "drf0"; "drf1"; "sb-fence-nop"; "sb-release-nop";
       "sb-release-partial"; "sb-bypass"; "sb-stall"; "sb-bounded-2" ]);
    (`Stock "dekker_fenced", [ "sb-fence-nop" ]);
    (`Stock "read_own_write", [ "sb-bypass" ]);
  ]

let load = function
  | `Example f -> parse_example f
  | `Stock n -> stock n

let name_of = function `Example f -> f | `Stock n -> n

let test_litmus_matrix () =
  List.iter
    (fun (which, non_robust) ->
      let p = load which in
      List.iter
        (fun (vname, model) ->
          let r = Robustcheck.run ~model p in
          let expected = if List.mem vname non_robust then 2 else 0 in
          let got = Robustcheck.exit_code r in
          if got <> expected then
            Alcotest.failf "%s under %s: expected exit %d, got %d (%s)"
              (name_of which) vname expected got
              (Robustcheck.verdict_str r);
          match r.Robustcheck.verdict with
          | Robustcheck.Not_robust w ->
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s witness verified" (name_of which) vname)
              true
              (w.Robustcheck.w_verified = Ok ())
          | _ -> ())
        roster)
    matrix

(* sb's classic non-SC outcome: both loads return 0 — assert the
   minimized witness actually exhibits it under the canonical buffering
   models *)
let test_sb_witness_00 () =
  let p = parse_example "sb.race" in
  List.iter
    (fun vname ->
      let model = List.assoc vname roster in
      let r = Robustcheck.run ~model p in
      match r.Robustcheck.verdict with
      | Robustcheck.Not_robust w ->
        let reads = Exec.reads w.Robustcheck.w_exec in
        Alcotest.(check bool)
          (vname ^ " witness loads saw 0") true
          (reads <> [] && List.for_all (fun (o : Op.t) -> o.Op.value = 0) reads)
      | v ->
        Alcotest.failf "sb under %s: expected NOT-ROBUST, got %s" vname
          (match v with
          | Robustcheck.Robust_verdict _ -> "ROBUST"
          | Robustcheck.Unknown m -> "UNKNOWN: " ^ m
          | Robustcheck.Not_robust _ -> assert false))
    [ "tso"; "wo" ]

(* static pass alone: canonical expectations that need no exploration *)
let test_static_verdicts () =
  let check name p vname expected =
    let model = List.assoc vname roster in
    let s = Robust.analyze (Model.variant model) p in
    Alcotest.(check bool)
      (Printf.sprintf "%s statically robust under %s" name vname)
      expected s.Robust.robust
  in
  let sb = parse_example "sb.race" in
  check "sb" sb "sc" true;
  check "sb" sb "tso" false;
  let mp = parse_example "mp.race" in
  (* FIFO retirement orders the data/flag stores: mp is robust on TSO *)
  check "mp" mp "tso" true;
  check "mp" mp "wo" false;
  let lb = parse_example "lb.race" in
  (* load->store pairs start at a read; reads perform at issue *)
  List.iter (fun (vn, _) -> check "lb" lb vn true) roster;
  let fenced = stock "dekker_fenced" in
  check "dekker_fenced" fenced "wo" true;
  check "dekker_fenced" fenced "sb-fence-nop" false

(* the frontier is consistent with per-point checks *)
let test_frontier () =
  let p = parse_example "sb.race" in
  let s = Robust.analyze Variant.wo p in
  let fr = Robust.frontier s.Robust.results s.Robust.ds in
  Alcotest.(check int) "frontier size" n_roster (List.length fr);
  List.iter
    (fun (f : Robust.frontier_entry) ->
      Alcotest.(check bool)
        ("frontier " ^ f.Robust.f_name)
        (f.Robust.f_name = "sc")
        f.Robust.f_robust)
    fr

(* ------------------------------------------------------------------ *)
(* 2. qcheck: statically-ROBUST programs yield no non-SC witness       *)
(* ------------------------------------------------------------------ *)

let program_of i =
  match i mod 3 with
  | 0 -> Minilang.Gen.random_racy ~seed:i ()
  | 1 -> Minilang.Gen.random_racefree ~seed:i ()
  | _ -> Minilang.Gen.random_racefree_ra ~seed:i ()

(* Soundness of the static prover, the property the whole feature rests
   on: whenever the static pass claims ROBUST, neither random weak
   scheduling nor a bounded DPOR hunt may find an SC-inexplicable
   execution.  500 programs, rotating through the lattice roster. *)
let sweep_programs = 500

let sweep_one i =
  let p = program_of i in
  let vname, model = List.nth roster (i mod n_roster) in
  let s = Robust.analyze (Model.variant model) p in
  if not s.Robust.robust then true
  else
    match Scpool.build ~limit:50_000 p with
    | Error _ -> true (* spinning SC pool: nothing to check against *)
    | Ok pool ->
      (* random weak runs *)
      for seed = 0 to 3 do
        let sched =
          if seed mod 2 = 0 then Sched.adversarial ~seed ()
          else Sched.random ~seed
        in
        let e = Minilang.Interp.run ~model ~sched p in
        if not (Scpool.explainable pool e) then
          QCheck.Test.fail_reportf
            "program %d under %s: statically ROBUST but seed %d run is not \
             SC-explainable"
            i vname seed
      done;
      (* bounded directed search *)
      let r =
        Explore.Dpor.explore ~max_steps:400 ~limit:2_000
          ~stop:(fun e -> not (Scpool.explainable pool e))
          ~model
          (fun () -> Minilang.Interp.source p)
      in
      if r.Explore.Dpor.stopped then
        QCheck.Test.fail_reportf
          "program %d under %s: statically ROBUST but DPOR found a non-SC \
           execution"
          i vname;
      true

let static_robust_sound =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "statically-ROBUST programs have no non-SC witness (%d)"
         sweep_programs)
    ~count:sweep_programs
    (QCheck.int_bound 1_000_000)
    sweep_one

(* the random sweep must not be vacuous: a healthy share of the
   deterministic 0..99 prefix is statically ROBUST with an enumerable
   SC pool *)
let test_sweep_coverage () =
  let robust_static = ref 0 and pooled = ref 0 in
  for i = 0 to 99 do
    let p = program_of i in
    let _, model = List.nth roster (i mod n_roster) in
    let s = Robust.analyze (Model.variant model) p in
    if s.Robust.robust then begin
      incr robust_static;
      match Scpool.build ~limit:50_000 p with
      | Ok _ -> incr pooled
      | Error _ -> ()
    end
  done;
  if !robust_static = 0 then
    Alcotest.fail "sweep degenerate: no statically-ROBUST program generated";
  if !pooled = 0 then
    Alcotest.fail "sweep degenerate: no SC pool enumerated"

(* ------------------------------------------------------------------ *)
(* 3. Scpool: indexed explainability == reference scan                 *)
(* ------------------------------------------------------------------ *)

let scpool_differential =
  QCheck.Test.make ~name:"Scpool.explainable == reference prefix scan"
    ~count:150 (QCheck.int_bound 1_000_000) (fun seed ->
      let p = program_of seed in
      match Scpool.build ~limit:50_000 p with
      | Error _ -> true
      | Ok pool ->
        let sc = Scpool.executions pool in
        let model = snd (List.nth roster (seed mod n_roster)) in
        let e =
          Minilang.Interp.run ~model ~sched:(Sched.adversarial ~seed ()) p
        in
        (* complete run, plus a truncated replay of half its schedule *)
        let half =
          List.filteri
            (fun i _ -> i * 2 < List.length e.Exec.schedule)
            e.Exec.schedule
        in
        let t =
          Explore.Vcampaign.replay ~model
            (fun () -> Minilang.Interp.source p)
            half
        in
        List.for_all
          (fun x ->
            Scpool.explainable pool x = Scpool.prefix_explainable ~sc x)
          [ e; t ])

(* ------------------------------------------------------------------ *)
(* 4. trace-granularity explainability                                 *)
(* ------------------------------------------------------------------ *)

let test_trace_explainable () =
  let p = stock "mp_release_acquire" in
  let pool = Scpool.build_exn p in
  (* every SC trace is explainable, also after a codec round trip *)
  let sc_exec = List.hd (Scpool.executions pool) in
  let tr = Trace.of_execution sc_exec in
  Alcotest.(check bool) "SC trace explainable" true
    (Scpool.trace_explainable pool tr);
  let decoded =
    match Codec.decode (Codec.encode ~version:Codec.version_checksummed tr) with
    | Ok t -> t
    | Error e -> Alcotest.failf "decode: %s" e
  in
  Alcotest.(check bool) "decoded SC trace explainable" true
    (Scpool.trace_explainable pool decoded);
  let model = List.assoc "sb-release-nop" roster in
  let find_violation pool p =
    let bad = ref None in
    for seed = 0 to 63 do
      if !bad = None then begin
        let e =
          Minilang.Interp.run ~model ~sched:(Sched.adversarial ~seed ()) p
        in
        if not (Scpool.explainable pool e) then bad := Some e
      end
    done;
    match !bad with
    | None -> Alcotest.fail "no release=nop violation found in 64 seeds"
    | Some e -> e
  in
  (* under release=nop the acquire can read flag=1 while data is still
     buffered — but that divergence lives entirely in a *data* read's
     value, which Computation events do not record, so the trace stays
     explainable: traces carry exactly the paper's information content *)
  let e = find_violation pool p in
  Alcotest.(check bool) "op-level violation found" false
    (Scpool.explainable pool e);
  Alcotest.(check bool) "value-only divergence is trace-invisible" true
    (Scpool.trace_explainable pool (Trace.of_execution e));
  (* a violation through *sync-valued* ops IS trace-visible: an RMW's
     read value is recorded in its Sync event.  Under SC, acquiring
     f=1 forces the fetch&add on d to read 1; with release=nop the
     data write to d may still be buffered when f publishes *)
  let q =
    let open Minilang.Build in
    program ~name:"mp_rmw" ~locs:[ "d"; "f" ]
      [
        [ store "d" (i 1); release_store "f" (i 1) ];
        [ acquire_load "rf" "f"; fetch_and_add "old" "d" (i 0) ];
      ]
  in
  let qpool = Scpool.build_exn q in
  let e = find_violation qpool q in
  let tr = Trace.of_execution e in
  Alcotest.(check bool) "sync-value divergence not trace-explainable" false
    (Scpool.trace_explainable qpool tr);
  let decoded =
    match Codec.decode (Codec.encode ~version:Codec.version_checksummed tr) with
    | Ok t -> t
    | Error err -> Alcotest.failf "decode: %s" err
  in
  Alcotest.(check bool) "decoded violating trace not explainable" false
    (Scpool.trace_explainable qpool decoded)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "robust"
    [
      ( "static",
        [
          Alcotest.test_case "canonical static verdicts" `Quick
            test_static_verdicts;
          Alcotest.test_case "lattice frontier" `Quick test_frontier;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "litmus x lattice verdicts" `Slow
            test_litmus_matrix;
          Alcotest.test_case "sb witness is the (0,0) outcome" `Quick
            test_sb_witness_00;
        ] );
      ( "sweep",
        Alcotest.test_case "sweep coverage" `Quick test_sweep_coverage
        :: [ QCheck_alcotest.to_alcotest static_robust_sound ] );
      ( "scpool",
        QCheck_alcotest.to_alcotest scpool_differential
        :: [ Alcotest.test_case "trace explainability" `Quick
               test_trace_explainable ] );
    ]
