(* The paper's core machinery: hb1, races, augmented graph, partitions,
   first-partition reporting (Figures 2/3), SCPs, Condition 3.4
   (Theorem 3.5) and Theorems 4.1/4.2, plus the on-the-fly detector. *)

open Racedetect

let run ?(model = Memsim.Model.WO) ~seed p =
  Minilang.Interp.run ~model ~sched:(Memsim.Sched.adversarial ~seed ()) p

let analyze ?model ~seed p = Postmortem.analyze_execution (run ?model ~seed p)

let sc_pool ?limit p =
  let r = Memsim.Enumerate.explore ?limit (fun () -> Minilang.Interp.source p) in
  if not r.Memsim.Enumerate.complete then Alcotest.fail "SC enumeration incomplete";
  r.Memsim.Enumerate.executions

(* ------------------------------------------------------------------ *)
(* Figure 1: races present / absent                                     *)
(* ------------------------------------------------------------------ *)

let test_fig1a_has_data_races () =
  List.iter
    (fun model ->
      let a = analyze ~model ~seed:1 Minilang.Programs.fig1a in
      let races = Postmortem.data_races a in
      Alcotest.(check bool) "data races found" true (races <> []);
      (* both conflicting pairs (x and y) are unordered: one race between
         P1's computation event and P2's, on both locations *)
      match races with
      | [ r ] -> Alcotest.(check (list int)) "locations x,y" [ 0; 1 ] r.Race.locs
      | _ -> Alcotest.failf "expected exactly one event-level race, got %d"
               (List.length races))
    Memsim.Model.all

let test_fig1b_race_free_all_models_and_seeds () =
  List.iter
    (fun model ->
      List.iter
        (fun seed ->
          let a = analyze ~model ~seed Minilang.Programs.fig1b in
          Alcotest.(check bool) "no races" true (Postmortem.data_races a = []);
          Alcotest.(check bool) "race_free verdict" true (Postmortem.race_free a))
        (List.init 40 (fun s -> s)))
    Memsim.Model.all

let test_sync_sync_race_is_not_data_race () =
  (* mp_release_acquire: the release/acquire pair on flag can be unordered
     (acquire reads the initial value) — a race, but not a data race *)
  let pool = sc_pool Minilang.Programs.mp_release_acquire in
  List.iter
    (fun e ->
      let a = Postmortem.analyze_execution e in
      Alcotest.(check bool) "no data races" true (Postmortem.data_races a = []);
      Alcotest.(check bool) "race_free" true (Postmortem.race_free a))
    pool;
  (* and at least one SC execution has the sync-sync race *)
  let some_sync_race =
    List.exists
      (fun e ->
        let a = Postmortem.analyze_execution e in
        List.exists (fun (r : Race.t) -> not r.Race.is_data) a.Postmortem.races)
      pool
  in
  Alcotest.(check bool) "sync-sync race exists somewhere" true some_sync_race

(* ------------------------------------------------------------------ *)
(* hb1 structure                                                        *)
(* ------------------------------------------------------------------ *)

let test_hb_po_ordering () =
  let e = run ~model:Memsim.Model.SC ~seed:0 Minilang.Programs.fig1a in
  let t = Tracing.Trace.of_execution e in
  let hb = Hb.build t in
  Array.iter
    (fun evs ->
      let n = Array.length evs in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          Alcotest.(check bool) "po implies hb" true
            (Hb.happens_before hb evs.(i).Tracing.Event.eid evs.(j).Tracing.Event.eid)
        done
      done)
    t.Tracing.Trace.by_proc

let test_hb_so1_cross_processor () =
  let e = run ~model:Memsim.Model.WO ~seed:2 Minilang.Programs.fig1b in
  let t = Tracing.Trace.of_execution e in
  let hb = Hb.build t in
  (* P1's computation event must happen before P2's final computation *)
  let p1_comp = t.Tracing.Trace.by_proc.(0).(0) in
  let p2_events = t.Tracing.Trace.by_proc.(1) in
  let p2_last = p2_events.(Array.length p2_events - 1) in
  Alcotest.(check bool) "write-xy hb read-xy" true
    (Hb.happens_before hb p1_comp.Tracing.Event.eid p2_last.Tracing.Event.eid);
  Alcotest.(check bool) "not symmetric" false
    (Hb.happens_before hb p2_last.Tracing.Event.eid p1_comp.Tracing.Event.eid)

let test_hb_reconstructed_equals_recorded_under_discipline () =
  let e = run ~model:Memsim.Model.RCsc ~seed:5 Minilang.Programs.counter_locked in
  let t = Tracing.Trace.of_execution e in
  let hb_rec = Hb.build ~so1:`Recorded t in
  let hb_rcn = Hb.build ~so1:`Reconstructed t in
  let n = Array.length t.Tracing.Trace.events in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      Alcotest.(check bool) "same ordering" (Hb.happens_before hb_rec a b)
        (Hb.happens_before hb_rcn a b)
    done
  done

(* ------------------------------------------------------------------ *)
(* Figure 2 / Figure 3: the queue bug end to end                        *)
(* ------------------------------------------------------------------ *)

let region = 8

let find_stale_execution () =
  let p = Minilang.Programs.queue_bug ~region () in
  let stale = max 1 (37 * region / 100) in
  let rec go seed =
    if seed > 3000 then Alcotest.fail "no stale-dequeue execution found"
    else
      let e = run ~model:Memsim.Model.WO ~seed p in
      let dequeued =
        Array.to_list e.Memsim.Exec.ops
        |> List.find_opt (fun (o : Memsim.Op.t) -> o.Memsim.Op.label = Some "P2:dequeue")
      in
      match dequeued with
      | Some o when o.Memsim.Op.value = stale -> e
      | _ -> go (seed + 1)
  in
  go 0

let test_queue_bug_stale_dequeue_exists () =
  let e = find_stale_execution () in
  Alcotest.(check bool) "execution exists" true (Memsim.Exec.n_ops e > 0)

let test_queue_bug_partitions_match_figure3 () =
  let e = find_stale_execution () in
  let a = Postmortem.analyze_execution e in
  let first = Postmortem.first_partitions a in
  let non_first = Partition.non_first_partitions a.Postmortem.partitions in
  Alcotest.(check int) "one first partition" 1 (List.length first);
  Alcotest.(check bool) "non-first partitions exist" true (non_first <> []);
  (* the first partition is the Q/QEmpty race between P1 and P2 (the paper's
     "first data races"); the work-region races (P2 vs P3) are non-first *)
  let q = 3 * region and qempty = (3 * region) + 1 in
  let first_locs =
    List.concat_map (fun (p : Partition.partition) ->
        List.concat_map (fun (r : Race.t) -> r.Race.locs) p.Partition.races)
      first
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "first races are on Q and QEmpty" [ q; qempty ] first_locs;
  let non_first_locs =
    List.concat_map (fun (p : Partition.partition) ->
        List.concat_map (fun (r : Race.t) -> r.Race.locs) p.Partition.races)
      non_first
  in
  Alcotest.(check bool) "work-region races are non-first" true
    (List.for_all (fun l -> l < 3 * region) non_first_locs && non_first_locs <> [])

let test_queue_bug_unaffected_races_are_first () =
  let e = find_stale_execution () in
  let a = Postmortem.analyze_execution e in
  let unaffected = Augment.unaffected_data_races a.Postmortem.augmented in
  Alcotest.(check bool) "unaffected races exist" true (unaffected <> []);
  let reported = Postmortem.reported_races a in
  List.iter
    (fun r ->
      Alcotest.(check bool) "unaffected race is reported" true
        (List.exists (Race.equal r) reported))
    unaffected

(* ------------------------------------------------------------------ *)
(* Affects relation (Def 3.3)                                           *)
(* ------------------------------------------------------------------ *)

let test_affects_reflexive_like_and_downstream () =
  let e = find_stale_execution () in
  let a = Postmortem.analyze_execution e in
  let aug = a.Postmortem.augmented in
  let data = Race.data_races a.Postmortem.races in
  List.iter
    (fun r ->
      Alcotest.(check bool) "a race affects itself (clause 1)" true
        (Augment.affects aug r r);
      Alcotest.(check bool) "a race affects its own endpoints" true
        (Augment.affects_event aug r r.Race.a && Augment.affects_event aug r r.Race.b))
    data;
  (* the Q/QEmpty race affects the downstream region races but not
     conversely *)
  let q = 3 * region in
  let is_queue_race (r : Race.t) = List.exists (fun l -> l >= q) r.Race.locs in
  let queue_races, region_races = List.partition is_queue_race data in
  Alcotest.(check bool) "both kinds present" true (queue_races <> [] && region_races <> []);
  List.iter
    (fun qr ->
      List.iter
        (fun rr ->
          Alcotest.(check bool) "queue race affects region race" true
            (Augment.affects aug qr rr);
          Alcotest.(check bool) "region race does not affect queue race" false
            (Augment.affects aug rr qr))
        region_races)
    queue_races

(* ------------------------------------------------------------------ *)
(* Theorem 4.1                                                          *)
(* ------------------------------------------------------------------ *)

let prop_theorem_4_1 =
  QCheck.Test.make ~name:"Thm 4.1: first partitions iff data races" ~count:150
    QCheck.(pair (int_bound 100_000) (int_bound 4))
    (fun (seed, mi) ->
      let model = List.nth Memsim.Model.all (mi mod List.length Memsim.Model.all) in
      let p =
        if seed mod 2 = 0 then Minilang.Gen.random_racy ~seed ()
        else Minilang.Gen.random_racefree ~seed ()
      in
      let a = analyze ~model ~seed:(seed + 13) p in
      let has_races = Postmortem.data_races a <> [] in
      let has_first = Postmortem.first_partitions a <> [] in
      has_races = has_first)

(* ------------------------------------------------------------------ *)
(* Partition order properties                                           *)
(* ------------------------------------------------------------------ *)

let prop_partition_order_is_strict =
  QCheck.Test.make ~name:"partition order is a strict partial order" ~count:80
    QCheck.(int_bound 100_000)
    (fun seed ->
      let p = Minilang.Gen.random_racy ~seed () in
      let a = analyze ~seed:(seed + 7) p in
      let parts = Partition.partitions a.Postmortem.partitions in
      let t = a.Postmortem.partitions in
      List.for_all
        (fun p1 ->
          (not (Partition.ordered_before t p1 p1))
          && List.for_all
               (fun p2 ->
                 not (Partition.ordered_before t p1 p2 && Partition.ordered_before t p2 p1))
               parts)
        parts)

let prop_first_partitions_are_minimal =
  QCheck.Test.make ~name:"first partitions have no data-race predecessor" ~count:80
    QCheck.(int_bound 100_000)
    (fun seed ->
      let p = Minilang.Gen.random_racy ~seed () in
      let a = analyze ~seed:(seed + 3) p in
      let t = a.Postmortem.partitions in
      let parts = Partition.partitions t in
      List.for_all
        (fun f -> not (List.exists (fun q -> Partition.ordered_before t q f) parts))
        (Partition.first_partitions t))

let prop_unaffected_races_live_in_first_partitions =
  QCheck.Test.make ~name:"unaffected data races are reported" ~count:80
    QCheck.(int_bound 100_000)
    (fun seed ->
      let p = Minilang.Gen.random_racy ~seed () in
      let a = analyze ~seed:(seed + 29) p in
      let reported = Postmortem.reported_races a in
      List.for_all
        (fun r -> List.exists (Race.equal r) reported)
        (Augment.unaffected_data_races a.Postmortem.augmented))

(* ------------------------------------------------------------------ *)
(* SCP machinery                                                        *)
(* ------------------------------------------------------------------ *)

let test_prefix_definition () =
  let e = run ~model:Memsim.Model.SC ~seed:0 Minilang.Programs.fig1b in
  let ophb = Ophb.build e in
  let all_ids = List.init (Memsim.Exec.n_ops e) (fun i -> i) in
  Alcotest.(check bool) "whole execution is a prefix" true (Scp.is_prefix ophb all_ids);
  Alcotest.(check bool) "empty set is a prefix" true (Scp.is_prefix ophb []);
  (* P2's reads depend (hb1) on P1's unset; excluding the unset while
     keeping the reads is not a prefix *)
  let unset_id =
    Array.to_list e.Memsim.Exec.ops
    |> List.find (fun (o : Memsim.Op.t) -> o.Memsim.Op.label = Some "P1:unset-s")
  in
  let bad = List.filter (fun i -> i <> unset_id.Memsim.Op.id) all_ids in
  Alcotest.(check bool) "dropping a cause is not a prefix" false (Scp.is_prefix ophb bad)

let test_scp_of_sc_execution_is_everything () =
  (* an SC execution is its own SCP in full *)
  let pool = sc_pool Minilang.Programs.unguarded_handoff in
  List.iter
    (fun e ->
      let ophb = Ophb.build e in
      let sc = List.map Ophb.build pool in
      let all_ids = List.init (Memsim.Exec.n_ops e) (fun i -> i) in
      Alcotest.(check bool) "full prefix is an SCP" true (Scp.is_scp ~sc ophb all_ids))
    pool

let test_common_prefix_scp_is_scp () =
  let p = Minilang.Programs.fig1a in
  let pool = sc_pool p in
  let sc = List.map Ophb.build pool in
  List.iter
    (fun seed ->
      let e = run ~model:Memsim.Model.WO ~seed p in
      let ophb = Ophb.build e in
      List.iter
        (fun sc_exec ->
          let s = Scp.common_prefix_scp ~weak:ophb ~sc_exec in
          Alcotest.(check bool) "candidate is a prefix" true (Scp.is_prefix ophb s);
          Alcotest.(check bool) "candidate is an SCP" true (Scp.is_scp ~sc ophb s))
        sc)
    (List.init 15 (fun s -> s))

(* ------------------------------------------------------------------ *)
(* Condition 3.4 (Theorem 3.5) Monte-Carlo                              *)
(* ------------------------------------------------------------------ *)

let check_condition ~seeds ~programs () =
  List.iter
    (fun p ->
      let pool = sc_pool ~limit:200_000 p in
      List.iter
        (fun model ->
          List.iter
            (fun seed ->
              let e = Minilang.Interp.run ~model ~sched:(Memsim.Sched.adversarial ~seed ()) p in
              let v = Condition.check ~sc:pool e in
              if not v.Condition.holds then
                Alcotest.failf "Condition 3.4 violated: %s %s seed=%d: %s"
                  p.Minilang.Ast.name (Memsim.Model.name model) seed
                  (Format.asprintf "%a" Condition.pp_verdict v))
            seeds)
        Memsim.Model.weak)
    programs

let test_condition_34_stock_programs () =
  check_condition
    ~seeds:(List.init 12 (fun s -> s))
    ~programs:
      [
        Minilang.Programs.fig1a;
        Minilang.Programs.dekker;
        Minilang.Programs.mp_data_flag;
        Minilang.Programs.unguarded_handoff;
        Minilang.Programs.guarded_handoff;
        Minilang.Programs.mp_release_acquire;
        Minilang.Programs.disjoint;
      ]
    ()

let test_condition_34_random_racefree () =
  List.iter
    (fun seed ->
      let p = Minilang.Gen.random_racefree ~seed () in
      let pool = sc_pool ~limit:200_000 p in
      List.iter
        (fun model ->
          let e =
            Minilang.Interp.run ~model ~sched:(Memsim.Sched.adversarial ~seed ()) p
          in
          let v = Condition.check ~sc:pool e in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d %s holds" seed (Memsim.Model.name model))
            true v.Condition.holds;
          (* race-free programs: clause (1) must be the one that applies *)
          if v.Condition.n_data_races = 0 then
            Alcotest.(check bool) "clause 1 applies" true (v.Condition.cond1 = Condition.Holds))
        Memsim.Model.weak)
    (List.init 10 (fun s -> s))

let test_condition_34_random_racy () =
  List.iter
    (fun seed ->
      let p = Minilang.Gen.random_racy ~seed () in
      let pool = sc_pool ~limit:200_000 p in
      List.iter
        (fun model ->
          let e =
            Minilang.Interp.run ~model ~sched:(Memsim.Sched.adversarial ~seed ()) p
          in
          let v = Condition.check ~sc:pool e in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d %s holds" seed (Memsim.Model.name model))
            true v.Condition.holds)
        Memsim.Model.weak)
    (List.init 10 (fun s -> s))

(* race-free programs are sequentially consistent on weak hardware:
   Condition 3.4(1) in behavioural terms *)
let test_racefree_executions_behaviourally_sc () =
  List.iter
    (fun seed ->
      let p = Minilang.Gen.random_racefree ~seed () in
      let pool = sc_pool ~limit:200_000 p in
      List.iter
        (fun model ->
          let e =
            Minilang.Interp.run ~model ~sched:(Memsim.Sched.adversarial ~seed ()) p
          in
          Alcotest.(check bool) "matches some SC execution" true
            (List.exists (Memsim.Exec.same_program_behaviour e) pool))
        Memsim.Model.weak)
    (List.init 15 (fun s -> s))

(* ------------------------------------------------------------------ *)
(* Theorem 4.2                                                          *)
(* ------------------------------------------------------------------ *)

(* In each first partition at least one data race belongs to an SCP: some
   lower-level op race of some event race of the partition lies inside the
   Condition 3.4 witness prefix. *)
let event_race_has_op_race_in ~(trace : Tracing.Trace.t) ~ophb ~scp (r : Race.t) =
  let module Iset = Set.Make (Int) in
  let s = Iset.of_list scp in
  let ops_of eid =
    match trace.Tracing.Trace.events.(eid).Tracing.Event.body with
    | Tracing.Event.Computation { ops; _ } -> ops
    | Tracing.Event.Sync { op; _ } -> [ op ]
  in
  List.exists
    (fun (x : Memsim.Op.t) ->
      List.exists
        (fun (y : Memsim.Op.t) ->
          Memsim.Op.conflict x y
          && (Memsim.Op.is_data x.Memsim.Op.cls || Memsim.Op.is_data y.Memsim.Op.cls)
          && (not (Ophb.ordered ophb x.Memsim.Op.id y.Memsim.Op.id))
          && Iset.mem x.Memsim.Op.id s
          && Iset.mem y.Memsim.Op.id s)
        (ops_of r.Race.b))
    (ops_of r.Race.a)

let test_theorem_4_2 () =
  List.iter
    (fun seed ->
      let p = Minilang.Gen.random_racy ~seed () in
      let pool = sc_pool ~limit:200_000 p in
      List.iter
        (fun model ->
          let e =
            Minilang.Interp.run ~model ~sched:(Memsim.Sched.adversarial ~seed ()) p
          in
          let a = Postmortem.analyze_execution e in
          match Postmortem.first_partitions a with
          | [] -> ()
          | first ->
            let v = Condition.check ~sc:pool e in
            (match v.Condition.scp_witness with
             | None -> Alcotest.fail "races exist but no SCP witness"
             | Some scp ->
               let ophb = Ophb.build e in
               List.iter
                 (fun (part : Partition.partition) ->
                   Alcotest.(check bool)
                     (Printf.sprintf "seed %d %s: first partition has an SCP race" seed
                        (Memsim.Model.name model))
                     true
                     (List.exists
                        (event_race_has_op_race_in ~trace:a.Postmortem.trace ~ophb ~scp)
                        part.Partition.races))
                 first))
        Memsim.Model.weak)
    (List.init 8 (fun s -> s))

(* ------------------------------------------------------------------ *)
(* On-the-fly detector                                                  *)
(* ------------------------------------------------------------------ *)

let prop_onthefly_sound =
  QCheck.Test.make ~name:"on-the-fly reports only true hb1 data races" ~count:120
    QCheck.(pair (int_bound 100_000) (int_bound 4))
    (fun (seed, mi) ->
      let model = List.nth Memsim.Model.all (mi mod List.length Memsim.Model.all) in
      let p = Minilang.Gen.random_racy ~seed () in
      let e = Minilang.Interp.run ~model ~sched:(Memsim.Sched.random ~seed:(seed + 1)) p in
      let ophb = Ophb.build e in
      let truth = Ophb.data_races ophb in
      List.for_all (fun pr -> List.mem pr truth) (Onthefly.race_pairs (Onthefly.detect e)))

let prop_onthefly_finds_something_when_races_exist =
  QCheck.Test.make ~name:"on-the-fly finds a race when post-mortem does" ~count:120
    QCheck.(pair (int_bound 100_000) (int_bound 4))
    (fun (seed, mi) ->
      let model = List.nth Memsim.Model.all (mi mod List.length Memsim.Model.all) in
      let p = Minilang.Gen.random_racy ~seed () in
      let e = Minilang.Interp.run ~model ~sched:(Memsim.Sched.random ~seed:(seed + 1)) p in
      let truth = Ophb.data_races (Ophb.build e) in
      truth = [] || Onthefly.detect e <> [])

let test_onthefly_live_hook_matches_posthoc () =
  (* attaching the incremental detector to the machine's on_op hook
     produces exactly the post-hoc reports: detection truly happens
     during execution *)
  List.iter
    (fun seed ->
      let p = Minilang.Gen.random_racy ~seed () in
      let src = Minilang.Interp.source p in
      let det = Onthefly.create ~n_procs:2 ~n_locs:src.Memsim.Thread_intf.n_locs in
      let e =
        Memsim.Machine.run
          ~on_op:(fun o -> ignore (Onthefly.observe det o))
          ~model:Memsim.Model.WO
          ~sched:(Memsim.Sched.random ~seed)
          src
      in
      Alcotest.(check (list (pair int int))) "live = post-hoc"
        (Onthefly.race_pairs (Onthefly.detect e))
        (Onthefly.race_pairs (Onthefly.reports det)))
    (List.init 40 (fun s -> s + 1))

let test_onthefly_racefree_silent () =
  List.iter
    (fun (p, seed) ->
      List.iter
        (fun model ->
          let e =
            Minilang.Interp.run ~model ~sched:(Memsim.Sched.adversarial ~seed ()) p
          in
          Alcotest.(check (list (pair int int))) "no reports" []
            (Onthefly.race_pairs (Onthefly.detect e)))
        Memsim.Model.all)
    [
      (Minilang.Programs.fig1b, 1);
      (Minilang.Programs.counter_locked, 2);
      (Minilang.Programs.guarded_handoff, 3);
      (Minilang.Programs.mp_release_acquire, 4);
      (Minilang.Programs.disjoint, 5);
    ]

(* ------------------------------------------------------------------ *)
(* Report rendering                                                     *)
(* ------------------------------------------------------------------ *)

let test_report_race_free () =
  let a = analyze ~model:Memsim.Model.WO ~seed:1 Minilang.Programs.fig1b in
  let s = Report.to_string a in
  Alcotest.(check bool) "mentions sequential consistency" true
    (Astring.String.is_infix ~affix:"sequentially consistent" s)

let test_report_racy () =
  let e = find_stale_execution () in
  let a = Postmortem.analyze_execution e in
  let p = Minilang.Programs.queue_bug ~region () in
  let s = Report.to_string ~loc_name:(Minilang.Ast.loc_name p) a in
  Alcotest.(check bool) "names Q" true (Astring.String.is_infix ~affix:"Q" s);
  Alcotest.(check bool) "mentions non-first suppression" true
    (Astring.String.is_infix ~affix:"non-first" s)

(* ------------------------------------------------------------------ *)
(* Epoch engine fallback transitions                                    *)
(* ------------------------------------------------------------------ *)

let mk_prog name procs =
  { Minilang.Ast.name; n_locs = 1; init = []; procs; symbols = [] }

let check_epoch_matches_vector ~expect_races e =
  let t = Tracing.Trace.of_execution e in
  let hb = Hb.build t in
  Alcotest.(check bool) "vclock hb1 index in use" true (Hb.uses_clocks hb);
  let ve = Race.find_all_vector hb in
  let ep = Race.find_all hb in
  Alcotest.(check int) "race count" expect_races (List.length ve);
  Alcotest.(check (list (pair int int))) "same pairs"
    (List.map (fun (r : Race.t) -> (r.Race.a, r.Race.b)) ve)
    (List.map (fun (r : Race.t) -> (r.Race.a, r.Race.b)) ep);
  List.iter2
    (fun (x : Race.t) (y : Race.t) ->
      Alcotest.(check (list int)) "same locs" x.Race.locs y.Race.locs;
      Alcotest.(check bool) "same data flag" x.Race.is_data y.Race.is_data)
    ve ep

let test_epoch_fallback_write_write () =
  (* two unsynchronized writers: the second write processed fails its
     last-write epoch check, demoting the location to the exact scan *)
  let p =
    mk_prog "ww"
      [|
        [ Minilang.Ast.Store { addr = Int 0; value = Int 1; label = None } ];
        [ Minilang.Ast.Store { addr = Int 0; value = Int 2; label = None } ];
      |]
  in
  check_epoch_matches_vector ~expect_races:1 (run ~model:Memsim.Model.SC ~seed:0 p)

let test_epoch_fallback_read_share () =
  (* two concurrent readers promote the read window from a single epoch
     to a per-processor vector; the unsynchronized writer then fails the
     window-coverage check and must scan both reads *)
  let p =
    mk_prog "rshare"
      [|
        [ Minilang.Ast.Load { reg = "a"; addr = Int 0; label = None } ];
        [ Minilang.Ast.Load { reg = "b"; addr = Int 0; label = None } ];
        [ Minilang.Ast.Store { addr = Int 0; value = Int 1; label = None } ];
      |]
  in
  check_epoch_matches_vector ~expect_races:2 (run ~model:Memsim.Model.SC ~seed:0 p)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "detect"
    [
      ( "figure1",
        [
          Alcotest.test_case "fig1a has data races" `Quick test_fig1a_has_data_races;
          Alcotest.test_case "fig1b race free" `Quick test_fig1b_race_free_all_models_and_seeds;
          Alcotest.test_case "sync-sync race is not data" `Quick
            test_sync_sync_race_is_not_data_race;
        ] );
      ( "hb1",
        [
          Alcotest.test_case "po ordering" `Quick test_hb_po_ordering;
          Alcotest.test_case "so1 crosses processors" `Quick test_hb_so1_cross_processor;
          Alcotest.test_case "reconstructed so1" `Quick
            test_hb_reconstructed_equals_recorded_under_discipline;
        ] );
      ( "figure2-3",
        [
          Alcotest.test_case "stale dequeue exists" `Quick test_queue_bug_stale_dequeue_exists;
          Alcotest.test_case "partitions match figure 3" `Quick
            test_queue_bug_partitions_match_figure3;
          Alcotest.test_case "unaffected races are first" `Quick
            test_queue_bug_unaffected_races_are_first;
        ] );
      ( "affects",
        [ Alcotest.test_case "Def 3.3 on the queue bug" `Quick
            test_affects_reflexive_like_and_downstream ] );
      ( "partition-props",
        qsuite
          [
            prop_theorem_4_1;
            prop_partition_order_is_strict;
            prop_first_partitions_are_minimal;
            prop_unaffected_races_live_in_first_partitions;
          ] );
      ( "scp",
        [
          Alcotest.test_case "prefix definition" `Quick test_prefix_definition;
          Alcotest.test_case "SC execution is its own SCP" `Quick
            test_scp_of_sc_execution_is_everything;
          Alcotest.test_case "common prefix is an SCP" `Quick test_common_prefix_scp_is_scp;
        ] );
      ( "condition-3.4",
        [
          Alcotest.test_case "stock programs" `Slow test_condition_34_stock_programs;
          Alcotest.test_case "random race-free" `Slow test_condition_34_random_racefree;
          Alcotest.test_case "random racy" `Slow test_condition_34_random_racy;
          Alcotest.test_case "race-free is behaviourally SC" `Slow
            test_racefree_executions_behaviourally_sc;
        ] );
      ("theorem-4.2", [ Alcotest.test_case "first partitions contain SCP races" `Slow test_theorem_4_2 ]);
      ( "onthefly",
        qsuite [ prop_onthefly_sound; prop_onthefly_finds_something_when_races_exist ]
        @ [ Alcotest.test_case "silent on race-free programs" `Quick
              test_onthefly_racefree_silent;
            Alcotest.test_case "live hook matches post-hoc" `Quick
              test_onthefly_live_hook_matches_posthoc ] );
      ( "report",
        [
          Alcotest.test_case "race free" `Quick test_report_race_free;
          Alcotest.test_case "racy with names" `Quick test_report_racy;
        ] );
      (* the epoch engine's two demotion points: a concurrent second
         write, and a write meeting a promoted (shared) read window *)
      ( "epoch-fallback",
        [
          Alcotest.test_case "write-write transition" `Quick
            test_epoch_fallback_write_write;
          Alcotest.test_case "read-share transition" `Quick
            test_epoch_fallback_read_share;
        ] );
    ]
