(* The hardware-variant lattice test campaign:

   1. differential — each named model's canonical lattice encoding
      ([Model.Custom (Model.variant m)]) behaves identically to the
      legacy enum path on 500+ random programs: same operation
      sequences, same reads-from, same final memories, same race
      reports, decision for decision;
   2. exhaustive litmus matrix — the full behaviour envelopes of the
      sb, lb and mp_partial litmus tests (and fenced sb) under every
      campaign variant, with exact expected outcome sets derived from
      the knobs (Dekker (0,0) iff the variant buffers writes; the
      stale-data mp outcome iff releases do not drain; (1,1) in lb
      never; (0,0) in fenced sb iff fence=nop);
   3. Condition 3.4 property — on random programs every conservative
      variant (per [Variant.preserves_condition]) yields an
      SC-explainable execution up to the first race, and every witness
      the campaign emits replays byte-identically from its v2 trace. *)

module Model = Memsim.Model
module Variant = Memsim.Variant
module Machine = Memsim.Machine
module Exec = Memsim.Exec
module Op = Memsim.Op
module Sched = Memsim.Sched
module Enumerate = Memsim.Enumerate
module Ophb = Racedetect.Ophb
module Condition = Racedetect.Condition
module Trace = Tracing.Trace
module Codec = Tracing.Codec
module Vcampaign = Explore.Vcampaign

(* ------------------------------------------------------------------ *)
(* 1. qcheck differential: legacy enum path vs lattice encoding        *)
(* ------------------------------------------------------------------ *)

let races e = Ophb.data_races (Ophb.build e)

let exec_fingerprint (e : Exec.t) =
  ( Array.map (fun (o : Op.t) -> (Op.identity o, o.Op.value)) e.Exec.ops,
    e.Exec.rf,
    e.Exec.final_mem,
    e.Exec.schedule )

let identical_behaviour legacy custom =
  exec_fingerprint legacy = exec_fingerprint custom
  && races legacy = races custom

let program_of i =
  match i mod 3 with
  | 0 -> Minilang.Gen.random_racy ~seed:i ()
  | 1 -> Minilang.Gen.random_racefree ~seed:i ()
  | _ -> Minilang.Gen.random_racefree_ra ~seed:i ()

let test_differential () =
  let n_programs = 510 in
  for i = 0 to n_programs - 1 do
    let p = program_of i in
    let named = List.nth Model.all (i mod List.length Model.all) in
    let custom = Model.Custom (Model.variant named) in
    for seed = 0 to 1 do
      let sched () =
        if seed = 0 then Sched.adversarial ~seed:i () else Sched.random ~seed:i
      in
      let legacy = Minilang.Interp.run ~model:named ~sched:(sched ()) p in
      let latt = Minilang.Interp.run ~model:custom ~sched:(sched ()) p in
      if not (identical_behaviour legacy latt) then
        Alcotest.failf
          "lattice encoding of %s diverges from the enum path on program %d \
           (sched %d)"
          (Model.name named) i seed
    done
  done

let test_differential_qcheck =
  (* the same law, property-style, over uniformly drawn cases *)
  QCheck.Test.make ~name:"lattice encoding = enum path" ~count:200
    QCheck.(pair (int_bound 1_000_000) (int_bound 5))
    (fun (seed, mi) ->
      let p = program_of seed in
      let named = List.nth Model.all (mi mod List.length Model.all) in
      let custom = Model.Custom (Model.variant named) in
      let legacy =
        Minilang.Interp.run ~model:named ~sched:(Sched.random ~seed) p
      in
      let latt =
        Minilang.Interp.run ~model:custom ~sched:(Sched.random ~seed) p
      in
      identical_behaviour legacy latt)

(* ------------------------------------------------------------------ *)
(* 2. exhaustive litmus matrix                                         *)
(* ------------------------------------------------------------------ *)

let lb_litmus =
  let open Minilang.Build in
  program ~name:"lb" ~locs:[ "x"; "y" ]
    [
      [ load "r0" "x" ~label:"P0:read-x"; store "y" (i 1) ~label:"P0:write-y" ];
      [ load "r1" "y" ~label:"P1:read-y"; store "x" (i 1) ~label:"P1:write-x" ];
    ]

let mp_partial_litmus =
  let open Minilang.Build in
  program ~name:"mp_partial" ~locs:[ "data"; "flag" ]
    [
      [
        store "data" (i 42) ~label:"P:write-data";
        release_store "flag" (i 1) ~label:"P:release-flag";
      ];
      [
        load "f" "flag" ~label:"C:read-flag";
        if_ (r "f" =: i 1) [ load "d" "data" ~label:"C:read-data" ] [];
      ];
    ]

let envelope ~model p =
  let r =
    Enumerate.explore_weak ~limit:2_000_000 ~model (fun () ->
        Minilang.Interp.source p)
  in
  if not r.Enumerate.complete then
    Alcotest.failf "envelope of %s incomplete under %s" p.Minilang.Ast.name
      (Model.name model);
  r.Enumerate.executions

let read_values (e : Exec.t) =
  Array.to_list e.Exec.by_proc
  |> List.concat_map (fun ops ->
         Array.to_list ops
         |> List.filter_map (fun (o : Op.t) ->
                if o.Op.kind = Op.Read then Some o.Op.value else None))

let outcomes ~model p =
  List.map read_values (envelope ~model p) |> List.sort_uniq compare

(* every lattice point the campaign sweeps, plus the legacy enum models *)
let matrix_models =
  List.map (fun (n, m) -> (n, m)) Vcampaign.roster
  @ List.map (fun m -> (Model.name m, m)) Model.all

let check_outcomes name expected got =
  Alcotest.(check (list (list int))) name expected got

let test_litmus_matrix () =
  List.iter
    (fun (name, model) ->
      let v = Model.variant model in
      let buffers = Model.buffers_writes model in
      (* sb (Dekker): (0,0) iff the variant buffers writes *)
      let sb_expected =
        List.sort compare
          (([ [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ]
           @ if buffers then [ [ 0; 0 ] ] else [])
          : int list list)
      in
      check_outcomes (name ^ ": sb outcomes") sb_expected
        (outcomes ~model Minilang.Programs.dekker);
      (* lb: loads are never delayed past later stores, so (1,1) is
         impossible on every variant *)
      check_outcomes (name ^ ": lb outcomes")
        [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ] ]
        (outcomes ~model lb_litmus);
      (* mp_partial: the stale read (f=1, d=0) iff releases do not drain *)
      let stale_possible =
        buffers && v.Variant.on_release <> Variant.Drain
      in
      let mp_expected =
        List.sort compare
          ([ [ 0 ]; [ 1; 42 ] ] @ if stale_possible then [ [ 1; 0 ] ] else [])
      in
      check_outcomes (name ^ ": mp_partial outcomes") mp_expected
        (outcomes ~model mp_partial_litmus);
      (* fenced sb: the non-SC outcome survives the fences iff fence=nop *)
      let fence_broken = buffers && v.Variant.on_fence = Variant.Nop in
      let fenced_expected =
        List.sort compare
          (([ [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ]
           @ if fence_broken then [ [ 0; 0 ] ] else [])
          : int list list)
      in
      check_outcomes (name ^ ": fenced sb outcomes") fenced_expected
        (outcomes ~model Minilang.Programs.dekker_fenced))
    matrix_models

(* ------------------------------------------------------------------ *)
(* 3. Condition 3.4 property + witness replay                          *)
(* ------------------------------------------------------------------ *)

let tiny_cfg =
  { Minilang.Gen.n_procs = 2; n_shared = 2; n_locks = 1; ops_per_proc = 3;
    sync_freq = 3 }

let conservative_points =
  List.filter
    (fun (_, m) -> Variant.preserves_condition (Model.variant m))
    Vcampaign.roster

let test_condition_34_conservative =
  QCheck.Test.make ~name:"conservative variants obey Condition 3.4" ~count:60
    (QCheck.int_bound 1_000_000)
    (fun seed ->
      let p =
        match seed mod 2 with
        | 0 -> Minilang.Gen.random_racy ~config:tiny_cfg ~seed ()
        | _ -> Minilang.Gen.random_racefree_ra ~config:tiny_cfg ~seed ()
      in
      let r =
        Enumerate.explore ~limit:100_000 (fun () -> Minilang.Interp.source p)
      in
      (not r.Enumerate.complete)
      ||
      let pool = r.Enumerate.executions in
      List.for_all
        (fun (_, model) ->
          let e =
            Minilang.Interp.run ~model ~sched:(Sched.adversarial ~seed ()) p
          in
          (Condition.check ~sc:pool e).Condition.holds)
        conservative_points)

let encode_exec e =
  Codec.encode ~version:Codec.version_checksummed (Trace.of_execution e)

let replay_schedule ~model p sched =
  let m = Machine.create ~model (Minilang.Interp.source p) in
  List.iter (Machine.perform m) sched;
  if not (Machine.finished m) then Machine.set_truncated m;
  Machine.force_drain m;
  Machine.to_execution m

let test_campaign_witnesses () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "vcampaign-test" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let r = Vcampaign.run ~seeds:16 ~jobs:2 ~witness_dir:dir () in
  Alcotest.(check bool) "verdicts match lattice predictions" true r.Vcampaign.as_predicted;
  let violators =
    List.filter
      (fun v ->
        v.Vcampaign.cond34_witness <> None || v.Vcampaign.fence_witness <> None)
      r.Vcampaign.verdicts
  in
  Alcotest.(check (list string))
    "exactly the broken knobs violate"
    [ "sb-fence-nop"; "sb-release-nop"; "sb-release-partial"; "sb-bypass" ]
    (List.map (fun v -> v.Vcampaign.v_name) violators);
  (* all six canonical named-model encodings pass both checks *)
  List.iter
    (fun m ->
      let name = String.lowercase_ascii (Model.name m) in
      let v =
        List.find (fun v -> v.Vcampaign.v_name = name) r.Vcampaign.verdicts
      in
      Alcotest.(check bool) (name ^ " passes cond-3.4") true v.Vcampaign.cond34_ok;
      Alcotest.(check bool) (name ^ " passes fence") true v.Vcampaign.fence_ok)
    Model.all;
  (* every emitted witness replays byte-identically from its v2 trace *)
  let check_witness (v : Vcampaign.verdict) (w : Vcampaign.witness) =
    Alcotest.(check bool)
      (v.Vcampaign.v_name ^ " witness verified")
      true
      (w.Vcampaign.w_verified = Ok ());
    let path = Option.get w.Vcampaign.w_path in
    let file_bytes =
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    Alcotest.(check bool)
      (v.Vcampaign.v_name ^ " witness file = encoded trace")
      true
      (file_bytes = encode_exec w.Vcampaign.w_exec);
    let p = Option.get (Minilang.Programs.find w.Vcampaign.w_program) in
    let replayed =
      replay_schedule ~model:v.Vcampaign.v_model p w.Vcampaign.w_schedule
    in
    Alcotest.(check bool)
      (v.Vcampaign.v_name ^ " schedule replays byte-identically")
      true
      (encode_exec replayed = file_bytes);
    (* decode + re-analysis: the decoded trace reports the same races *)
    let decoded =
      match Codec.read_file path with
      | Ok t -> t
      | Error e -> Alcotest.failf "witness decode failed: %s" e
    in
    let race_count t =
      List.length (Racedetect.Postmortem.analyze t).Racedetect.Postmortem.races
    in
    Alcotest.(check int)
      (v.Vcampaign.v_name ^ " decoded re-analysis agrees")
      (race_count (Trace.of_execution w.Vcampaign.w_exec))
      (race_count decoded)
  in
  List.iter
    (fun v ->
      Option.iter (check_witness v) v.Vcampaign.cond34_witness;
      Option.iter (check_witness v) v.Vcampaign.fence_witness)
    violators

(* a Condition 3.4 witness demonstrates a race-free yet SC-inexplicable
   (clause 1) partial execution — spot-check the two semantic claims *)
let test_witness_semantics () =
  let r = Vcampaign.run ~seeds:16 ~jobs:2 () in
  let v =
    List.find (fun v -> v.Vcampaign.v_name = "sb-release-nop") r.Vcampaign.verdicts
  in
  match v.Vcampaign.cond34_witness with
  | None -> Alcotest.fail "sb-release-nop produced no witness"
  | Some w ->
    Alcotest.(check bool) "witness execution is race-free" true
      (races w.Vcampaign.w_exec = []);
    let p = Option.get (Minilang.Programs.find w.Vcampaign.w_program) in
    let pool =
      (Enumerate.explore ~limit:100_000 (fun () -> Minilang.Interp.source p))
        .Enumerate.executions
    in
    Alcotest.(check bool) "witness is SC-inexplicable" false
      (Vcampaign.prefix_explainable ~sc:pool w.Vcampaign.w_exec)

let () =
  Alcotest.run "variants"
    [
      ( "differential",
        [
          Alcotest.test_case "510 random programs, all named models" `Slow
            test_differential;
          QCheck_alcotest.to_alcotest test_differential_qcheck;
        ] );
      ( "litmus-matrix",
        [ Alcotest.test_case "exact envelopes on every lattice point" `Slow
            test_litmus_matrix ] );
      ( "condition-3.4",
        [
          QCheck_alcotest.to_alcotest test_condition_34_conservative;
          Alcotest.test_case "campaign witnesses replay byte-identically" `Slow
            test_campaign_witnesses;
          Alcotest.test_case "witness semantics (race-free, inexplicable)" `Quick
            test_witness_semantics;
        ] );
    ]
