(* Cross-cutting invariants, property-checked over random programs on
   random models and schedules.  These are the "laws" the rest of the
   system is entitled to assume. *)

open Racedetect

let arb_seed = QCheck.int_bound 1_000_000

let model_of i = List.nth Memsim.Model.all (i mod List.length Memsim.Model.all)

let random_exec ?(machine = `Buffer) (seed, mi) =
  let model = model_of mi in
  let model =
    (* the coherent machine cannot implement TSO *)
    if machine = `Cache && Memsim.Model.fifo_buffer model then Memsim.Model.WO
    else model
  in
  let p =
    match seed mod 3 with
    | 0 -> Minilang.Gen.random_racy ~seed ()
    | 1 -> Minilang.Gen.random_racefree ~seed ()
    | _ -> Minilang.Gen.random_racefree_ra ~seed ()
  in
  match machine with
  | `Buffer -> Minilang.Interp.run ~model ~sched:(Memsim.Sched.random ~seed:(seed + 1)) p
  | `Cache ->
    Coherence.Cmachine.run_program ~model ~sched:(Memsim.Sched.random ~seed:(seed + 1)) p

let arb_case =
  QCheck.pair arb_seed (QCheck.int_bound 4)

(* ------------------------------------------------------------------ *)
(* Execution well-formedness                                           *)
(* ------------------------------------------------------------------ *)

let exec_well_formed (e : Memsim.Exec.t) =
  let ok = ref true in
  (* ids are dense and index the ops array *)
  Array.iteri (fun idx (o : Memsim.Op.t) -> if o.Memsim.Op.id <> idx then ok := false) e.Memsim.Exec.ops;
  (* per-processor pindex is contiguous from zero *)
  Array.iter
    (fun ops ->
      Array.iteri
        (fun j (o : Memsim.Op.t) -> if o.Memsim.Op.pindex <> j then ok := false)
        ops)
    e.Memsim.Exec.by_proc;
  (* reads have rf in [-1, n); writes have -2; everything committed *)
  Array.iter
    (fun (o : Memsim.Op.t) ->
      let id = o.Memsim.Op.id in
      (match o.Memsim.Op.kind with
       | Memsim.Op.Read ->
         if e.Memsim.Exec.rf.(id) < -1 || e.Memsim.Exec.rf.(id) >= Memsim.Exec.n_ops e
         then ok := false
       | Memsim.Op.Write -> if e.Memsim.Exec.rf.(id) <> -2 then ok := false);
      if e.Memsim.Exec.commit.(id) = max_int then ok := false)
    e.Memsim.Exec.ops;
  (* rf points to a write of the same location, and its value matches *)
  Array.iter
    (fun (o : Memsim.Op.t) ->
      if o.Memsim.Op.kind = Memsim.Op.Read then begin
        let w = e.Memsim.Exec.rf.(o.Memsim.Op.id) in
        if w >= 0 then begin
          let src = e.Memsim.Exec.ops.(w) in
          if src.Memsim.Op.kind <> Memsim.Op.Write then ok := false;
          if src.Memsim.Op.loc <> o.Memsim.Op.loc then ok := false;
          if src.Memsim.Op.value <> o.Memsim.Op.value then ok := false
        end
      end)
    e.Memsim.Exec.ops;
  !ok

let prop_exec_well_formed machine name =
  QCheck.Test.make ~name ~count:150 arb_case (fun case ->
      exec_well_formed (random_exec ~machine case))

(* ------------------------------------------------------------------ *)
(* hb1 structure                                                       *)
(* ------------------------------------------------------------------ *)

let prop_hb1_acyclic_on_sc =
  QCheck.Test.make ~name:"hb1 of an SC execution is acyclic" ~count:100 arb_seed
    (fun seed ->
      let p = Minilang.Gen.random_racy ~seed () in
      let e =
        Minilang.Interp.run ~model:Memsim.Model.SC
          ~sched:(Memsim.Sched.random ~seed:(seed + 1)) p
      in
      let ophb = Ophb.build e in
      Graphlib.Digraph.topological_order (Ophb.graph ophb) <> None)

let prop_event_vs_op_races =
  (* a pair of events races iff some pair of their operations races *)
  QCheck.Test.make ~name:"event races and operation races coincide" ~count:100 arb_case
    (fun case ->
      let e = random_exec case in
      let trace = Tracing.Trace.of_execution e in
      let hb = Hb.build trace in
      let ophb = Ophb.build e in
      let event_races =
        Race.find_all hb |> Race.data_races
        |> List.map (fun (r : Race.t) -> (r.Race.a, r.Race.b))
      in
      let ops_of eid =
        match trace.Tracing.Trace.events.(eid).Tracing.Event.body with
        | Tracing.Event.Computation { ops; _ } -> ops
        | Tracing.Event.Sync { op; _ } -> [ op ]
      in
      let op_event = Hashtbl.create 32 in
      Array.iter
        (fun (ev : Tracing.Event.t) ->
          List.iter
            (fun (o : Memsim.Op.t) -> Hashtbl.replace op_event o.Memsim.Op.id ev.Tracing.Event.eid)
            (ops_of ev.Tracing.Event.eid))
        trace.Tracing.Trace.events;
      let op_races_as_events =
        Ophb.data_races ophb
        |> List.map (fun (a, b) ->
               let ea = Hashtbl.find op_event a and eb = Hashtbl.find op_event b in
               (min ea eb, max ea eb))
        |> List.sort_uniq compare
      in
      List.sort_uniq compare event_races = op_races_as_events)

(* ------------------------------------------------------------------ *)
(* Reporting laws                                                      *)
(* ------------------------------------------------------------------ *)

let prop_every_race_affected_by_a_reported_race =
  (* the report is complete in the paper's sense: every data race either
     is reported or is affected by a reported one — fixing the first
     partitions fixes everything downstream *)
  QCheck.Test.make ~name:"every data race is affected by a reported race" ~count:100
    arb_case
    (fun case ->
      let e = random_exec case in
      let a = Postmortem.analyze_execution e in
      let reported = Postmortem.reported_races a in
      List.for_all
        (fun r ->
          List.exists (fun r' -> Augment.affects a.Postmortem.augmented r' r) reported)
        (Postmortem.data_races a))

let prop_first_partitions_unordered =
  QCheck.Test.make ~name:"first partitions are pairwise unordered" ~count:100 arb_case
    (fun case ->
      let e = random_exec case in
      let a = Postmortem.analyze_execution e in
      let t = a.Postmortem.partitions in
      let first = Partition.first_partitions t in
      List.for_all
        (fun p1 ->
          List.for_all
            (fun p2 ->
              p1 == p2
              || not (Partition.ordered_before t p1 p2 || Partition.ordered_before t p2 p1))
            first)
        first)

let prop_analysis_survives_codec =
  QCheck.Test.make ~name:"verdicts identical after encode/decode" ~count:100 arb_case
    (fun case ->
      let e = random_exec case in
      let t = Tracing.Trace.of_execution e in
      match Tracing.Codec.decode (Tracing.Codec.encode t) with
      | Error _ -> false
      | Ok t' ->
        let races tr =
          Postmortem.reported_races (Postmortem.analyze tr)
          |> List.map (fun (r : Race.t) -> (r.Race.a, r.Race.b))
        in
        races t = races t')

(* ------------------------------------------------------------------ *)
(* Cost model laws                                                     *)
(* ------------------------------------------------------------------ *)

let prop_cost_weak_never_slower =
  QCheck.Test.make ~name:"buffered timing never exceeds SC timing" ~count:100 arb_case
    (fun case ->
      let e = random_exec case in
      let sc = (Memsim.Cost.estimate ~mode:Memsim.Model.SC e).Memsim.Cost.makespan in
      let wo = (Memsim.Cost.estimate ~mode:Memsim.Model.WO e).Memsim.Cost.makespan in
      let rc = (Memsim.Cost.estimate ~mode:Memsim.Model.RCsc e).Memsim.Cost.makespan in
      rc <= wo && wo <= sc)

(* ------------------------------------------------------------------ *)
(* Vector clock laws                                                   *)
(* ------------------------------------------------------------------ *)

let arb_vc =
  QCheck.make
    ~print:(fun xs -> String.concat "," (List.map string_of_int xs))
    QCheck.Gen.(list_size (return 4) (int_bound 20))

let vc_of xs =
  List.fold_left
    (fun (vc, idx) x ->
      let rec tick v n = if n = 0 then v else tick (Vclock.tick v idx) (n - 1) in
      (tick vc x, idx + 1))
    (Vclock.make 4, 0)
    xs
  |> fst

let prop_vclock_join_laws =
  QCheck.Test.make ~name:"vector clock join is a semilattice" ~count:200
    (QCheck.pair arb_vc arb_vc)
    (fun (xs, ys) ->
      let a = vc_of xs and b = vc_of ys in
      Vclock.equal (Vclock.join a b) (Vclock.join b a)
      && Vclock.equal (Vclock.join a a) a
      && Vclock.leq a (Vclock.join a b)
      && Vclock.leq b (Vclock.join a b))

let prop_vclock_leq_partial_order =
  QCheck.Test.make ~name:"vector clock leq is a partial order" ~count:200
    (QCheck.pair arb_vc arb_vc)
    (fun (xs, ys) ->
      let a = vc_of xs and b = vc_of ys in
      Vclock.leq a a
      && ((not (Vclock.leq a b && Vclock.leq b a)) || Vclock.equal a b))

(* ------------------------------------------------------------------ *)
(* hb1 index equivalence: vclock fast path vs closure reference        *)
(* ------------------------------------------------------------------ *)

let prop_vclock_index_matches_closure =
  (* random programs × models × seeds: the O(n·P) vector-clock index must
     answer exactly as the bitset transitive closure, on every event pair *)
  QCheck.Test.make ~name:"vclock hb1 index agrees with closure on all pairs" ~count:150
    arb_case
    (fun case ->
      let e = random_exec case in
      let t = Tracing.Trace.of_execution e in
      let hv = Hb.build t in
      let hc = Hb.build ~index:`Closure t in
      let n = Tracing.Trace.n_events t in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if Hb.happens_before hv a b <> Hb.happens_before hc a b then ok := false
        done
      done;
      !ok)

let prop_postmortem_same_races_both_indexes =
  QCheck.Test.make ~name:"postmortem race sets identical through both hb1 indexes"
    ~count:120 arb_case
    (fun case ->
      let e = random_exec case in
      let t = Tracing.Trace.of_execution e in
      let races index =
        let a = Postmortem.analyze ~index t in
        ( Postmortem.data_races a |> List.map (fun (r : Race.t) -> (r.Race.a, r.Race.b)),
          Postmortem.reported_races a
          |> List.map (fun (r : Race.t) -> (r.Race.a, r.Race.b)) )
      in
      races `Auto = races `Closure)

(* ------------------------------------------------------------------ *)
(* Epoch / SHB differentials                                           *)
(* ------------------------------------------------------------------ *)

(* The epoch-compressed engine is an optimization, not a new analysis:
   on every input it must reproduce the reference vector engine's
   report exactly — same pairs, same conflict locations, same data
   flags, same order, same rendering. *)
let prop_epoch_matches_vector =
  QCheck.Test.make ~name:"epoch engine report identical to vector engine" ~count:500
    arb_case (fun case ->
      let e = random_exec case in
      let t = Tracing.Trace.of_execution e in
      let hb = Hb.build t in
      let ve = Race.find_all_vector hb in
      let ep = Race.find_all hb in
      let render rs =
        Format.asprintf "%a"
          (Format.pp_print_list ~pp_sep:Format.pp_print_cut Race.pp)
          rs
      in
      List.length ve = List.length ep
      && List.for_all2
           (fun (x : Race.t) (y : Race.t) ->
             x.Race.a = y.Race.a && x.Race.b = y.Race.b
             && x.Race.locs = y.Race.locs
             && x.Race.is_data = y.Race.is_data)
           ve ep
      && render ve = render ep)

(* SHB only ever adds predictions: every hb1-reported race stays
   reported, and the extras are data races from suppressed partitions
   that hb1 left unordered. *)
let prop_shb_superset_of_hb1 =
  QCheck.Test.make ~name:"shb predictions are a superset of hb1 reports" ~count:500
    arb_case (fun case ->
      let e = random_exec case in
      let a1 = Postmortem.analyze_execution ~order:`Hb1 e in
      let a2 = Postmortem.analyze_execution ~order:`Shb e in
      let key (r : Race.t) = (r.Race.a, r.Race.b) in
      let rep1 = List.map key (Postmortem.reported_races a1) in
      let rep2 = List.map key (Postmortem.reported_races a2) in
      let pred = List.map key (Postmortem.predicted_races a2) in
      rep1 = rep2
      && List.for_all (fun k -> List.mem k pred) rep1
      && List.for_all
           (fun (r : Race.t) ->
             r.Race.is_data
             && (not (Hb.ordered a2.Postmortem.hb r.Race.a r.Race.b))
             && not (List.mem (key r) rep1))
           a2.Postmortem.shb_extra)

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

let prop_analysis_deterministic =
  QCheck.Test.make ~name:"analysis is deterministic" ~count:60 arb_case (fun case ->
      let e = random_exec case in
      let races a =
        Postmortem.reported_races a |> List.map (fun (r : Race.t) -> (r.Race.a, r.Race.b))
      in
      races (Postmortem.analyze_execution e) = races (Postmortem.analyze_execution e))

let prop_onthefly_deterministic =
  QCheck.Test.make ~name:"on-the-fly detection is deterministic" ~count:60 arb_case
    (fun case ->
      let e = random_exec case in
      Onthefly.race_pairs (Onthefly.detect e) = Onthefly.race_pairs (Onthefly.detect e))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "properties"
    [
      ( "executions",
        qsuite
          [
            prop_exec_well_formed `Buffer "store-buffer executions well formed";
            prop_exec_well_formed `Cache "coherent executions well formed";
            prop_hb1_acyclic_on_sc;
          ] );
      ("granularity", qsuite [ prop_event_vs_op_races ]);
      ( "reporting",
        qsuite
          [
            prop_every_race_affected_by_a_reported_race;
            prop_first_partitions_unordered;
            prop_analysis_survives_codec;
          ] );
      ("cost", qsuite [ prop_cost_weak_never_slower ]);
      ("vclock", qsuite [ prop_vclock_join_laws; prop_vclock_leq_partial_order ]);
      ( "hb1-index",
        qsuite
          [ prop_vclock_index_matches_closure; prop_postmortem_same_races_both_indexes ]
      );
      ( "differential",
        qsuite [ prop_epoch_matches_vector; prop_shb_superset_of_hb1 ] );
      ("determinism", qsuite [ prop_analysis_deterministic; prop_onthefly_deterministic ]);
    ]
