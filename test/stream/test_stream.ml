(* The streaming engine's contract: on any trace file, at any chunk
   size, in either record layout, [Racedetect.Stream] reports exactly
   what the batch pipeline reports — while retiring events the §5 GC
   proves dead.  Checked differentially against [Postmortem] over random
   programs on all five models, plus robustness against corrupted input
   and the documented --max-live degradation. *)

open Racedetect

let arb_seed = QCheck.int_bound 1_000_000

let model_of i = List.nth Memsim.Model.all (i mod List.length Memsim.Model.all)

let random_exec (seed, mi) =
  let model = model_of mi in
  let p =
    match seed mod 3 with
    | 0 -> Minilang.Gen.random_racy ~seed ()
    | 1 -> Minilang.Gen.random_racefree ~seed ()
    | _ -> Minilang.Gen.random_racefree_ra ~seed ()
  in
  Minilang.Interp.run ~model ~sched:(Memsim.Sched.random ~seed:(seed + 1)) p

let arb_case = QCheck.pair arb_seed (QCheck.int_bound 4)

let batch_of_text text =
  match Tracing.Codec.decode text with
  | Ok tr -> Postmortem.analyze ~so1:`Recorded tr
  | Error e -> Alcotest.failf "batch decode failed: %s" e

let stream_of_text ?chunk_size ?max_live text =
  match Stream.analyze_string ?chunk_size ?max_live text with
  | Ok r -> r
  | Error e -> Alcotest.failf "stream analysis failed: %s" e

let race_pairs (a : Postmortem.analysis) =
  List.map (fun (r : Race.t) -> (r.Race.a, r.Race.b)) a.Postmortem.races

let first_parts (a : Postmortem.analysis) =
  List.map
    (fun (p : Partition.partition) ->
      (p.Partition.component, p.Partition.events,
       List.map (fun (r : Race.t) -> (r.Race.a, r.Race.b, r.Race.locs)) p.Partition.races))
    (Postmortem.first_partitions a)

(* ------------------------------------------------------------------ *)
(* Differential: stream == batch, any layout, any chunk size           *)
(* ------------------------------------------------------------------ *)

let chunk_sizes = [ 1; 113; 65536 ]

let prop_differential =
  QCheck.Test.make ~name:"stream report byte-identical to batch at all chunk sizes"
    ~count:300 arb_case (fun case ->
      let t = Tracing.Trace.of_execution (random_exec case) in
      List.for_all
        (fun text ->
          let batch = batch_of_text text in
          let expected = Report.to_string batch in
          List.for_all
            (fun chunk_size ->
              let a, _ = stream_of_text ~chunk_size text in
              String.equal (Report.to_string a) expected
              && race_pairs a = race_pairs batch
              && first_parts a = first_parts batch
              && Postmortem.race_free a = Postmortem.race_free batch)
            chunk_sizes)
        [ Tracing.Codec.encode t; Tracing.Codec.encode_stream t ])

(* The ISSUE's phrasing: agreement with [Postmortem.analyze_execution]
   itself (not just with a batch decode of the same bytes).  Race pairs
   and first-partition structure must coincide; the rendered report may
   differ only in op labels, which serialization drops. *)
let prop_vs_analyze_execution =
  QCheck.Test.make ~name:"stream agrees with analyze_execution"
    ~count:200 arb_case (fun case ->
      let exec = random_exec case in
      let direct = Postmortem.analyze_execution ~so1:`Recorded exec in
      let text = Tracing.Codec.encode_stream (Tracing.Trace.of_execution exec) in
      let a, _ = stream_of_text ~chunk_size:64 text in
      race_pairs a = race_pairs direct
      && first_parts a = first_parts direct
      && Postmortem.race_free a = Postmortem.race_free direct)

(* ------------------------------------------------------------------ *)
(* §5 event GC                                                         *)
(* ------------------------------------------------------------------ *)

(* A long fully-synchronized trace in stream-ordered layout: P
   processors pass a release/acquire token around a ring, each round
   contributing an acquire, an owned computation and a release.  Every
   event is hb1-ordered behind the token, so the live set must track
   the synchronization lag (O(P) events), not the trace length. *)
let token_ring_trace ~procs ~rounds =
  let buf = Buffer.create 4096 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt
  in
  let n_events = 3 * rounds in
  line "weakrace-trace 1";
  line "model SC";
  line "truncated 0";
  line "procs %d locs %d events %d" procs (1 + procs) n_events;
  let seq = Array.make procs 0 in
  let eid = ref 0 and slot = ref 0 in
  let prev_release = ref (-1) in
  let sync_eids = ref [] in
  for r = 0 to rounds - 1 do
    let h = r mod procs in
    let next () = let e = !eid in incr eid; e in
    let nseq () = let s = seq.(h) in seq.(h) <- s + 1; s in
    let a = next () in
    if !prev_release < 0 then line "so1 - %d" a else line "so1 %d %d" !prev_release a;
    line "event %d proc %d seq %d sync loc 0 kind R cls acquire value 1 slot %d label -"
      a h (nseq ()) !slot;
    incr slot;
    sync_eids := a :: !sync_eids;
    line "event %d proc %d seq %d comp reads - writes %d" (next ()) h (nseq ()) (1 + h);
    let rl = next () in
    line "event %d proc %d seq %d sync loc 0 kind W cls release value 1 slot %d label -"
      rl h (nseq ()) !slot;
    incr slot;
    sync_eids := rl :: !sync_eids;
    prev_release := rl
  done;
  line "syncorder 0 %s" (String.concat "," (List.rev_map string_of_int !sync_eids));
  line "end %d" n_events;
  Buffer.contents buf

let test_gc_bounded_live_set () =
  let procs = 4 and rounds = 200 in
  let text = token_ring_trace ~procs ~rounds in
  let batch = batch_of_text text in
  let a, stats = stream_of_text ~chunk_size:97 text in
  Alcotest.(check string) "report matches batch" (Report.to_string batch)
    (Report.to_string a);
  Alcotest.(check bool) "race free" true (Postmortem.race_free a);
  Alcotest.(check int) "all events seen" (3 * rounds) stats.Stream.total_events;
  Alcotest.(check bool)
    (Printf.sprintf "peak live %d is O(P), not O(n)=%d" stats.Stream.peak_live
       stats.Stream.total_events)
    true
    (stats.Stream.peak_live <= 10 * procs);
  Alcotest.(check bool)
    (Printf.sprintf "most events retired (%d)" stats.Stream.retired)
    true
    (stats.Stream.retired >= stats.Stream.total_events - (10 * procs))

(* GC never retires a live race candidate: on racy traces with GC
   actually exercised, the stream race set still equals batch's. *)
let test_gc_keeps_candidates () =
  let config =
    { Minilang.Gen.n_procs = 3; n_shared = 4; n_locks = 2; ops_per_proc = 60;
      sync_freq = 3 }
  in
  let exercised = ref 0 in
  List.iter
    (fun seed ->
      let p = Minilang.Gen.random_racy ~config ~seed () in
      let exec =
        Minilang.Interp.run ~model:(model_of seed)
          ~sched:(Memsim.Sched.random ~seed:(seed + 1)) p
      in
      let t = Tracing.Trace.of_execution exec in
      let text = Tracing.Codec.encode_stream t in
      let batch = batch_of_text text in
      let a, stats = stream_of_text text in
      if stats.Stream.retired > 0 then incr exercised;
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "seed %d race pairs" seed)
        (race_pairs batch) (race_pairs a))
    (List.init 20 (fun i -> i * 7 + 1));
  Alcotest.(check bool) "GC was exercised on some racy trace" true (!exercised > 0)

(* ------------------------------------------------------------------ *)
(* Corrupt traces: clean errors, never exceptions                      *)
(* ------------------------------------------------------------------ *)

let damages =
  [ ("garble", Tracing.Corrupt.Garble_bytes 8);
    ("drop", Tracing.Corrupt.Drop_lines 2);
    ("swap", Tracing.Corrupt.Swap_events);
    ("truncate", Tracing.Corrupt.Truncate_tail 25) ]

let test_corrupt_robustness () =
  List.iter
    (fun (dname, damage) ->
      List.iter
        (fun seed ->
          let t =
            Tracing.Trace.of_execution
              (random_exec (seed * 13 + 5, seed))
          in
          List.iter
            (fun text ->
              let damaged = Tracing.Corrupt.apply ~seed damage text in
              let batch =
                try Ok (Tracing.Codec.decode damaged)
                with exn -> Error exn
              in
              let stream =
                try Ok (Stream.analyze_string ~chunk_size:31 damaged)
                with exn -> Error exn
              in
              (match batch with
               | Ok _ -> ()
               | Error exn ->
                 Alcotest.failf "%s seed %d: batch decode raised %s" dname seed
                   (Printexc.to_string exn));
              match stream with
              | Error exn ->
                Alcotest.failf "%s seed %d: stream raised %s" dname seed
                  (Printexc.to_string exn)
              | Ok (Ok (a, _)) -> (
                (* the stream accepted it: batch must agree byte-for-byte *)
                match batch with
                | Ok (Ok tr) ->
                  let b = Postmortem.analyze ~so1:`Recorded tr in
                  Alcotest.(check string)
                    (Printf.sprintf "%s seed %d report" dname seed)
                    (Report.to_string b) (Report.to_string a)
                | Ok (Error e) ->
                  Alcotest.failf "%s seed %d: stream accepted what batch rejects (%s)"
                    dname seed e
                | Error _ -> ())
              | Ok (Error _) -> ())
            [ Tracing.Codec.encode t; Tracing.Codec.encode_stream t ])
        (List.init 15 (fun i -> i)))
    damages

let test_corrupt_headers () =
  let t = Tracing.Trace.of_execution (random_exec (7, 1)) in
  let text = Tracing.Codec.encode t in
  let expect_error name s =
    (match Tracing.Codec.decode s with
     | Ok _ -> Alcotest.failf "%s: batch accepted" name
     | Error _ -> ());
    match Stream.analyze_string s with
    | Ok _ -> Alcotest.failf "%s: stream accepted" name
    | Error _ -> ()
  in
  expect_error "empty" "";
  expect_error "bad magic" ("not-a-trace 1\n" ^ text);
  (* bad version *)
  (match String.index_opt text '\n' with
   | None -> Alcotest.fail "no newline in encoding"
   | Some i ->
     expect_error "bad version"
       ("weakrace-trace 99" ^ String.sub text i (String.length text - i)));
  (* a garbled header must not crash the array allocator *)
  expect_error "huge header"
    "weakrace-trace 1\nmodel SC\ntruncated 0\nprocs 2 locs 3 events 99999999999\n";
  (* a sizes-less header is a degenerate but accepted empty trace; the
     two modes must agree on it *)
  let header_only = "weakrace-trace 1\nmodel SC\ntruncated 0\n" in
  let b = batch_of_text header_only in
  let a, _ = stream_of_text header_only in
  Alcotest.(check string) "header-only reports agree" (Report.to_string b)
    (Report.to_string a)

let test_error_offsets () =
  let t = Tracing.Trace.of_execution (random_exec (11, 2)) in
  let text = Tracing.Codec.encode_stream t in
  (* splice a junk line after the header *)
  let lines = String.split_on_char '\n' text in
  let spliced =
    match lines with
    | magic :: rest -> String.concat "\n" (magic :: "utter garbage" :: rest)
    | [] -> assert false
  in
  (match Stream.analyze_string ~chunk_size:7 spliced with
   | Ok _ -> Alcotest.fail "junk line accepted"
   | Error e ->
     let has needle =
       let len = String.length needle in
       let n = String.length e in
       let rec go i = i + len <= n && (String.sub e i len = needle || go (i + 1)) in
       go 0
     in
     Alcotest.(check bool) (Printf.sprintf "offset in %S" e) true
       (has "byte" && has "line 2"))

(* ------------------------------------------------------------------ *)
(* --max-live degradation                                              *)
(* ------------------------------------------------------------------ *)

let test_max_live_degrades_cleanly () =
  let missed = ref 0 and exercised = ref 0 in
  List.iter
    (fun seed ->
      let t = Tracing.Trace.of_execution (random_exec (seed, seed)) in
      let text = Tracing.Codec.encode_stream t in
      let batch = batch_of_text text in
      let a, stats = stream_of_text ~max_live:2 text in
      if stats.Stream.forced_retired > 0 then incr exercised;
      let sub = race_pairs a and full = race_pairs batch in
      (* never invents races; may only miss them *)
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: stream races subset of batch" seed)
        true
        (List.for_all (fun r -> List.mem r full) sub);
      if List.length sub < List.length full then incr missed)
    (List.init 30 (fun i -> (i * 11) + 3));
  Alcotest.(check bool) "the cap was actually hit" true (!exercised > 0)

(* ------------------------------------------------------------------ *)
(* Engine-level input validation                                       *)
(* ------------------------------------------------------------------ *)

let test_stream_input_validation () =
  let t = Tracing.Trace.of_execution (random_exec (23, 0)) in
  let text = Tracing.Codec.encode_stream t in
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "") in
  let rejoin ls = String.concat "\n" ls ^ "\n" in
  let expect_error name s =
    match Stream.analyze_string s with
    | Ok _ -> Alcotest.failf "%s: accepted" name
    | Error _ -> ()
  in
  let is_event l = String.length l > 6 && String.sub l 0 6 = "event " in
  (* duplicate an event record *)
  let dup =
    List.concat_map (fun l -> if is_event l then [ l; l ] else [ l ]) lines
  in
  expect_error "duplicate event" (rejoin dup);
  (* drop one event but keep the end marker *)
  let dropped = ref false in
  let missing =
    List.filter
      (fun l -> if is_event l && not !dropped then (dropped := true; false) else true)
      lines
  in
  expect_error "missing event" (rejoin missing);
  (* records after the end marker *)
  expect_error "after end" (rejoin (lines @ [ "model SC" ]));
  (* end marker with the wrong count *)
  let wrong_end =
    List.map
      (fun l ->
        if String.length l > 4 && String.sub l 0 4 = "end " then "end 1" else l)
      lines
  in
  expect_error "end mismatch" (rejoin wrong_end)

(* ------------------------------------------------------------------ *)
(* Salvage: corruption differential                                    *)
(* ------------------------------------------------------------------ *)

let report_of a = Format.asprintf "%a" (Report.pp_analysis ?loc_name:None) a

let salvage_damage_of seed =
  let open Tracing.Corrupt in
  match seed mod 6 with
  | 0 -> Garble_bytes (1 + (seed mod 9))
  | 1 -> Drop_lines (1 + (seed mod 3))
  | 2 -> Swap_events
  | 3 -> Truncate_tail (1 + (seed * 17 mod 150))
  | 4 -> Flip_bits (1 + (seed mod 5))
  | _ -> Duplicate_lines (1 + (seed mod 3))

(* the faultfuzz contract, as a property: salvage never raises; a clean
   claim on damaged bytes must agree byte-for-byte with the strict
   pipeline on those same bytes; undamaged input is never degraded *)
let prop_salvage_differential =
  QCheck.Test.make ~name:"salvage never raises, clean claims match strict"
    ~count:150
    QCheck.(pair arb_case (int_bound 1_000_000))
    (fun (case, dseed) ->
      let t = Tracing.Trace.of_execution (random_exec case) in
      let version =
        if dseed mod 2 = 0 then Tracing.Codec.version
        else Tracing.Codec.version_checksummed
      in
      let text = Tracing.Codec.encode_stream ~version t in
      let damaged = Tracing.Corrupt.apply ~seed:dseed (salvage_damage_of dseed) text in
      match Stream.analyze_salvage_string damaged with
      | exception e ->
        QCheck.Test.fail_reportf "salvage raised %s" (Printexc.to_string e)
      | Error _ -> true (* clean refusal (e.g. damaged header) *)
      | Ok (Postmortem.Degraded _, _) ->
        (* never degraded on undamaged bytes *)
        not (String.equal damaged text)
      | Ok (v, _) -> (
        let rep = report_of (Postmortem.verdict_analysis v) in
        match Stream.analyze_string damaged with
        | exception e ->
          QCheck.Test.fail_reportf "strict raised %s on a clean salvage"
            (Printexc.to_string e)
        | Error e ->
          QCheck.Test.fail_reportf "salvage clean but strict failed: %s" e
        | Ok (a, _) -> String.equal (report_of a) rep))

let test_salvage_lossy_never_race_free () =
  (* drop one event line from a race-free v2 trace: the survivors are
     still race-free, but the verdict must be Degraded *)
  let t =
    Tracing.Trace.of_execution
      (Minilang.Interp.run ~model:Memsim.Model.WO
         ~sched:(Memsim.Sched.random ~seed:3) Minilang.Programs.fig1b)
  in
  let text =
    Tracing.Codec.encode_stream ~version:Tracing.Codec.version_checksummed t
  in
  let lines = String.split_on_char '\n' text in
  let dropped = ref false in
  let damaged =
    lines
    |> List.filter (fun l ->
           if (not !dropped) && String.length l > 6 && String.sub l 0 6 = "event "
           then (dropped := true; false)
           else true)
    |> String.concat "\n"
  in
  Alcotest.(check bool) "an event line was dropped" true !dropped;
  match Stream.analyze_salvage_string damaged with
  | Ok (Postmortem.Degraded { analysis; loss }, _) ->
    Alcotest.(check bool) "loss is recorded" true (Postmortem.lossy loss);
    Alcotest.(check bool) "survivors are race-free" true
      (Postmortem.race_free analysis)
  | Ok (Postmortem.Race_free _, _) ->
    Alcotest.fail "lossy trace reported race-free"
  | Ok (Postmortem.Races _, _) -> Alcotest.fail "expected a degraded verdict"
  | Error e -> Alcotest.failf "salvage refused: %s" e

(* ------------------------------------------------------------------ *)
(* Checkpoint / restore                                                *)
(* ------------------------------------------------------------------ *)

let with_ckpt f =
  let path = Filename.temp_file "weakrace" ".ckpt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_checkpoint_resume_byte_identical () =
  let t = Tracing.Trace.of_execution (random_exec (41, 2)) in
  let text =
    Tracing.Codec.encode_stream ~version:Tracing.Codec.version_checksummed t
  in
  let oneshot =
    match Stream.analyze_string text with
    | Ok (a, _) -> report_of a
    | Error e -> Alcotest.failf "one-shot analysis failed: %s" e
  in
  (* cut at every ~third byte: partial lines must marshal through *)
  let len = String.length text in
  List.iter
    (fun cut ->
      let cut = min cut len in
      with_ckpt (fun path ->
          let engine = Stream.create () in
          let d = Tracing.Codec.decoder () in
          let push () r = Stream.push engine r in
          (match Tracing.Codec.feed d (String.sub text 0 cut) ~f:push () with
           | Ok () -> ()
           | Error e -> Alcotest.failf "cut %d: prefix feed failed: %s" cut e);
          Stream.checkpoint path engine ~extra:(d, cut);
          (* the first engine dies here; restore and finish *)
          match (Stream.restore path : (Stream.t * (Tracing.Codec.decoder * int), string) result) with
          | Error e -> Alcotest.failf "cut %d: restore failed: %s" cut e
          | Ok (engine2, (d2, pos)) ->
            Alcotest.(check int) "offset restored" cut pos;
            let push2 () r = Stream.push engine2 r in
            (match Tracing.Codec.feed d2 (String.sub text pos (len - pos)) ~f:push2 () with
             | Ok () -> ()
             | Error e -> Alcotest.failf "cut %d: resumed feed failed: %s" cut e);
            (match Tracing.Codec.finish_feed d2 ~f:push2 () with
             | Ok () -> ()
             | Error e -> Alcotest.failf "cut %d: resumed finish_feed failed: %s" cut e);
            match Stream.finish engine2 with
            | Ok (a, _) ->
              Alcotest.(check string)
                (Printf.sprintf "cut %d: resumed report" cut)
                oneshot (report_of a)
            | Error e -> Alcotest.failf "cut %d: resumed finish failed: %s" cut e))
    [ 0; 17; len / 3; len / 2; len - 1; len ]

let test_checkpoint_rejects_corruption () =
  let t = Tracing.Trace.of_execution (random_exec (7, 1)) in
  let text = Tracing.Codec.encode_stream t in
  with_ckpt (fun path ->
      let engine = Stream.create () in
      let d = Tracing.Codec.decoder () in
      let push () r = Stream.push engine r in
      (match Tracing.Codec.feed d text ~f:push () with
       | Ok () -> ()
       | Error e -> Alcotest.failf "feed failed: %s" e);
      Stream.checkpoint path engine ~extra:(d, String.length text);
      let read_all p =
        let ic = open_in_bin p in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      let write_all p s =
        let oc = open_out_bin p in
        output_string oc s;
        close_out oc
      in
      let blob = read_all path in
      let expect_reject name s =
        write_all path s;
        match (Stream.restore path : (Stream.t * (Tracing.Codec.decoder * int), string) result) with
        | Error _ -> ()
        | Ok _ -> Alcotest.failf "%s: corrupt checkpoint accepted" name
      in
      (* flip a byte deep in the marshalled payload *)
      let flipped = Bytes.of_string blob in
      let mid = String.length blob - 20 in
      Bytes.set flipped mid (Char.chr (Char.code blob.[mid] lxor 0x41));
      expect_reject "bit flip" (Bytes.to_string flipped);
      expect_reject "truncation" (String.sub blob 0 (String.length blob / 2));
      expect_reject "garbage" "not a checkpoint at all\n";
      expect_reject "empty" "";
      let expect_substring name needle s =
        write_all path s;
        match (Stream.restore path : (Stream.t * (Tracing.Codec.decoder * int), string) result) with
        | Ok _ -> Alcotest.failf "%s: checkpoint accepted" name
        | Error msg ->
          let has =
            let nl = String.length needle and ml = String.length msg in
            let rec at i = i + nl <= ml && (String.sub msg i nl = needle || at (i + 1)) in
            at 0
          in
          if not has then Alcotest.failf "%s: error %S lacks %S" name msg needle;
          if not (has && String.length msg > 0 && String.sub msg 0 (String.length path) = path)
          then Alcotest.failf "%s: error %S does not name the file" name msg
      in
      (* a version-1 header (older builds) is refused with a structured
         message, never unmarshalled *)
      let payload = String.sub blob (String.index blob '\n' + 1) (String.length blob - String.index blob '\n' - 1) in
      expect_substring "old version" "unsupported checkpoint format version 1"
        (Printf.sprintf "weakrace-ckpt 1 %d %08x\n%s" (String.length payload)
           (Tracing.Crc32.string payload) payload);
      (* a checkpoint written by a different producer kind is refused *)
      expect_substring "wrong kind" "checkpoint kind is \"serve\""
        (Printf.sprintf "weakrace-ckpt 2 serve %d %08x\n%s" (String.length payload)
           (Tracing.Crc32.string payload) payload);
      (* and the pristine blob still restores *)
      write_all path blob;
      match (Stream.restore path : (Stream.t * (Tracing.Codec.decoder * int), string) result) with
      | Ok (engine2, (_, pos)) ->
        Alcotest.(check int) "offset" (String.length text) pos;
        (match Stream.finish engine2 with
         | Ok _ -> ()
         | Error e -> Alcotest.failf "restored engine cannot finish: %s" e)
      | Error e -> Alcotest.failf "pristine checkpoint rejected: %s" e)

let () =
  Alcotest.run "stream"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_differential;
          QCheck_alcotest.to_alcotest prop_vs_analyze_execution;
        ] );
      ( "event-gc",
        [
          Alcotest.test_case "bounded live set" `Quick test_gc_bounded_live_set;
          Alcotest.test_case "no live candidate retired" `Quick test_gc_keeps_candidates;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "damage never raises" `Quick test_corrupt_robustness;
          Alcotest.test_case "broken headers" `Quick test_corrupt_headers;
          Alcotest.test_case "error names the offset" `Quick test_error_offsets;
        ] );
      ( "max-live",
        [
          Alcotest.test_case "clean degradation" `Quick test_max_live_degrades_cleanly;
        ] );
      ( "validation",
        [
          Alcotest.test_case "stream input checks" `Quick test_stream_input_validation;
        ] );
      ( "salvage",
        [
          QCheck_alcotest.to_alcotest prop_salvage_differential;
          Alcotest.test_case "lossy never race-free" `Quick
            test_salvage_lossy_never_race_free;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "kill+resume byte-identical" `Quick
            test_checkpoint_resume_byte_identical;
          Alcotest.test_case "rejects corruption" `Quick
            test_checkpoint_rejects_corruption;
        ] );
    ]
