(* Event segmentation, access sets, so1 recording/reconstruction, the
   trace codec, and corruption behaviour. *)

open Tracing

let exec_of ?(model = Memsim.Model.WO) ?(seed = 1) p =
  Minilang.Interp.run ~model ~sched:(Memsim.Sched.random ~seed) p

let trace_of ?model ?seed p = Trace.of_execution (exec_of ?model ?seed p)

(* ------------------------------------------------------------------ *)
(* Segmentation                                                        *)
(* ------------------------------------------------------------------ *)

let test_segment_fig1b () =
  let t = trace_of ~model:Memsim.Model.SC Minilang.Programs.fig1b in
  (* P1: one computation event (two writes) then the Unset sync event *)
  let p1 = t.Trace.by_proc.(0) in
  Alcotest.(check int) "P1 has 2 events" 2 (Array.length p1);
  (match p1.(0).Event.body with
   | Event.Computation { reads; writes; ops } ->
     Alcotest.(check int) "no reads" 0 (Graphlib.Bitset.cardinal reads);
     Alcotest.(check (list int)) "writes x and y" [ 0; 1 ] (Graphlib.Bitset.elements writes);
     Alcotest.(check int) "two ops" 2 (List.length ops)
   | Event.Sync _ -> Alcotest.fail "expected computation event");
  (match p1.(1).Event.body with
   | Event.Sync { op; _ } ->
     Alcotest.(check bool) "unset is a release write" true
       (op.Memsim.Op.cls = Memsim.Op.Release && op.Memsim.Op.kind = Memsim.Op.Write)
   | Event.Computation _ -> Alcotest.fail "expected sync event")

let test_segment_alternation () =
  (* data, sync, data, data, sync -> comp, sync, comp, sync *)
  let open Minilang.Build in
  let p =
    program ~name:"alt" ~locs:[ "a"; "l" ]
      [ [ store "a" (i 1); unset "l"; store "a" (i 2); store "a" (i 3); unset "l" ] ]
  in
  let t = trace_of ~model:Memsim.Model.SC p in
  let shapes =
    Array.to_list t.Trace.by_proc.(0)
    |> List.map (fun (e : Event.t) -> if Event.is_sync e then "S" else "C")
  in
  Alcotest.(check (list string)) "segmentation" [ "C"; "S"; "C"; "S" ] shapes

let test_event_seq_and_eids () =
  let t = trace_of Minilang.Programs.counter_racy in
  Array.iteri
    (fun eid (e : Event.t) -> Alcotest.(check int) "eid is index" eid e.Event.eid)
    t.Trace.events;
  Array.iter
    (fun evs ->
      Array.iteri
        (fun i (e : Event.t) -> Alcotest.(check int) "seq within proc" i e.Event.seq)
        evs)
    t.Trace.by_proc

let test_conflict_predicates () =
  let t = trace_of ~model:Memsim.Model.SC Minilang.Programs.fig1a in
  let p1c = t.Trace.by_proc.(0).(0) and p2c = t.Trace.by_proc.(1).(0) in
  Alcotest.(check bool) "writer vs reader conflict" true (Event.conflict p1c p2c);
  Alcotest.(check (list int)) "conflict locations" [ 0; 1 ]
    (Event.conflict_locs p1c p2c ~n_locs:t.Trace.n_locs);
  Alcotest.(check bool) "computation involves data" true (Event.involves_data p1c)

let test_sync_order_slots () =
  let t = trace_of ~model:Memsim.Model.SC Minilang.Programs.counter_locked in
  List.iter
    (fun (_, eids) ->
      List.iteri
        (fun slot eid ->
          match t.Trace.events.(eid).Event.body with
          | Event.Sync { slot = s; _ } -> Alcotest.(check int) "slot" slot s
          | Event.Computation _ -> Alcotest.fail "sync order lists a computation event")
        eids)
    t.Trace.sync_order

(* ------------------------------------------------------------------ *)
(* so1                                                                 *)
(* ------------------------------------------------------------------ *)

let test_so1_recorded_vs_reconstructed () =
  (* under lock discipline the post-mortem reconstruction from the
     per-location sync order equals the recorded pairing *)
  List.iter
    (fun (p, model, seed) ->
      let t = trace_of ~model ~seed p in
      let recorded = List.sort compare t.Trace.so1 in
      let rebuilt = List.sort compare (Trace.so1_reconstruct t) in
      Alcotest.(check (list (pair int int))) "so1 agrees" recorded rebuilt)
    [
      (Minilang.Programs.fig1b, Memsim.Model.WO, 1);
      (Minilang.Programs.counter_locked, Memsim.Model.RCsc, 2);
      (Minilang.Programs.guarded_handoff, Memsim.Model.DRF0, 3);
      (Minilang.Programs.queue_bug ~region:5 (), Memsim.Model.DRF1, 4);
    ]

let test_so1_endpoints_are_sync () =
  let t = trace_of ~model:Memsim.Model.WO ~seed:7 Minilang.Programs.counter_locked in
  List.iter
    (fun (rel, acq) ->
      Alcotest.(check bool) "endpoints are sync events" true
        (Event.is_sync t.Trace.events.(rel) && Event.is_sync t.Trace.events.(acq)))
    t.Trace.so1

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let roundtrip t =
  match Codec.decode (Codec.encode t) with
  | Ok t' -> t'
  | Error msg -> Alcotest.failf "decode failed: %s" msg

let test_codec_roundtrip_stock () =
  List.iter
    (fun (name, p) ->
      let t = trace_of p in
      let t' = roundtrip t in
      Alcotest.(check bool) (name ^ " roundtrips") true (Codec.equivalent t t');
      Alcotest.(check int) "same events" (Trace.n_events t) (Trace.n_events t');
      Alcotest.(check (list (pair int int))) "same so1" t.Trace.so1 t'.Trace.so1)
    Minilang.Programs.all

let test_codec_rejects_garbage () =
  List.iter
    (fun text ->
      match Codec.decode text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted garbage %S" text)
    [ ""; "not a trace"; "weakrace-trace 999"; "weakrace-trace 1\nbogus line" ]

let test_codec_file_io () =
  let t = trace_of Minilang.Programs.fig1a in
  let path = Filename.temp_file "weakrace" ".trace" in
  Codec.write_file path t;
  (match Codec.read_file path with
   | Ok t' -> Alcotest.(check bool) "file roundtrip" true (Codec.equivalent t t')
   | Error msg -> Alcotest.failf "read_file: %s" msg);
  Sys.remove path;
  (match Codec.read_file path with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "read of missing file succeeded")

let prop_codec_roundtrip_random =
  QCheck.Test.make ~name:"codec roundtrip on random executions" ~count:80
    QCheck.(pair (int_bound 10_000) (int_bound 3))
    (fun (seed, mi) ->
      let model = List.nth Memsim.Model.weak (mi mod List.length Memsim.Model.weak) in
      let p = Minilang.Gen.random_racy ~seed () in
      let t = trace_of ~model ~seed:(seed + 1) p in
      match Codec.decode (Codec.encode t) with
      | Ok t' -> Codec.equivalent t t'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Corruption (§5 pathology)                                           *)
(* ------------------------------------------------------------------ *)

let test_corruption_is_detected_or_changes_content () =
  let t = trace_of ~seed:3 (Minilang.Programs.queue_bug ~region:4 ()) in
  let text = Codec.encode t in
  List.iter
    (fun (name, damage) ->
      let damaged = Corrupt.apply ~seed:42 damage text in
      if String.equal damaged text then ()
      else
        match Codec.decode damaged with
        | Error _ -> ()  (* loud failure: good *)
        | Ok t' ->
          Alcotest.(check bool)
            (name ^ ": silently decoded trace must differ")
            false (Codec.equivalent t t'))
    [
      ("garble", Corrupt.Garble_bytes 20);
      ("drop", Corrupt.Drop_lines 3);
      ("swap", Corrupt.Swap_events);
      ("truncate", Corrupt.Truncate_tail 40);
    ]

let test_corruption_deterministic () =
  let text = Codec.encode (trace_of Minilang.Programs.fig1b) in
  let a = Corrupt.apply ~seed:9 (Corrupt.Garble_bytes 10) text in
  let b = Corrupt.apply ~seed:9 (Corrupt.Garble_bytes 10) text in
  Alcotest.(check string) "same damage" a b

(* ------------------------------------------------------------------ *)
(* Format v2: checksummed framing                                      *)
(* ------------------------------------------------------------------ *)

let v2 = Codec.version_checksummed

let test_v2_roundtrip_stock () =
  List.iter
    (fun (name, p) ->
      let t = trace_of p in
      (match Codec.decode (Codec.encode ~version:v2 t) with
       | Ok t' ->
         Alcotest.(check bool) (name ^ " v2 batch roundtrips") true
           (Codec.equivalent t t')
       | Error msg -> Alcotest.failf "%s v2 decode failed: %s" name msg);
      match Codec.decode (Codec.encode_stream ~version:v2 t) with
      | Ok t' ->
        Alcotest.(check bool) (name ^ " v2 stream roundtrips") true
          (Codec.equivalent t t')
      | Error msg -> Alcotest.failf "%s v2 stream decode failed: %s" name msg)
    Minilang.Programs.all

let test_v1_bytes_unframed () =
  (* the default encoding is byte-for-byte the pre-v2 format: no line
     checksums, no epoch marks *)
  let t = trace_of Minilang.Programs.counter_locked in
  Alcotest.(check string) "default version is v1" (Codec.encode t)
    (Codec.encode ~version:Codec.version t);
  List.iter
    (fun text ->
      String.split_on_char '\n' text
      |> List.iter (fun line ->
             Alcotest.(check bool) ("no mark line: " ^ line) false
               (String.length line >= 5 && String.sub line 0 5 = "mark ");
             let suffixed =
               String.length line >= 10
               && line.[String.length line - 9] = '~'
               && line.[String.length line - 10] = ' '
             in
             Alcotest.(check bool) ("no checksum suffix: " ^ line) false suffixed))
    [ Codec.encode t; Codec.encode_stream t ]

let test_v2_has_periodic_marks () =
  let t = trace_of ~seed:5 (Minilang.Programs.queue_bug ~region:40 ()) in
  let text = Codec.encode ~version:v2 t in
  let marks =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.length l >= 5 && String.sub l 0 5 = "mark ")
    |> List.length
  in
  let expected_at_least = Trace.n_events t / Codec.mark_period in
  Alcotest.(check bool)
    (Printf.sprintf "%d marks for %d events" marks (Trace.n_events t))
    true
    (marks >= max 1 expected_at_least)

let damage_kinds seed =
  [
    ("garble", Corrupt.Garble_bytes (3 + (seed mod 8)));
    ("drop", Corrupt.Drop_lines (1 + (seed mod 3)));
    ("swap", Corrupt.Swap_events);
    ("truncate", Corrupt.Truncate_tail (5 + (seed mod 60)));
    ("flip", Corrupt.Flip_bits (1 + (seed mod 6)));
    ("dup", Corrupt.Duplicate_lines (1 + (seed mod 3)));
  ]

let test_v2_strict_detects_every_damage () =
  (* in v2 every textual change is either caught by the strict decoder
     or provably harmless (the decode is equivalent to the original —
     e.g. a duplicated epoch mark) *)
  let t = trace_of ~seed:3 (Minilang.Programs.queue_bug ~region:6 ()) in
  List.iter
    (fun text ->
      for seed = 0 to 39 do
        List.iter
          (fun (name, damage) ->
            let damaged = Corrupt.apply ~seed damage text in
            if not (String.equal damaged text) then
              match Codec.decode damaged with
              | Error _ -> ()
              | Ok t' ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s seed %d: silent decode must be equivalent"
                     name seed)
                  true (Codec.equivalent t t'))
          (damage_kinds seed)
      done)
    [ Codec.encode ~version:v2 t; Codec.encode_stream ~version:v2 t ]

(* ------------------------------------------------------------------ *)
(* Salvage decoding                                                     *)
(* ------------------------------------------------------------------ *)

let count_records text =
  match Codec.fold_salvage_string text ~f:(fun n _ -> Ok (n + 1)) ~init:0 with
  | Ok (n, losses) -> (n, losses)
  | Error e -> Alcotest.failf "salvage failed: %s" e

let test_salvage_clean_on_undamaged () =
  let t = trace_of ~seed:2 Minilang.Programs.peterson in
  List.iter
    (fun text ->
      let n, losses = count_records text in
      Alcotest.(check bool) "records decoded" true (n > 0);
      Alcotest.(check int) "no losses" 0 (List.length losses))
    [
      Codec.encode t;
      Codec.encode ~version:v2 t;
      Codec.encode_stream t;
      Codec.encode_stream ~version:v2 t;
    ]

let test_salvage_recovers_and_reports_loss () =
  let t = trace_of ~seed:3 (Minilang.Programs.queue_bug ~region:6 ()) in
  let text = Codec.encode_stream ~version:v2 t in
  let clean, _ = count_records text in
  let magic_len = String.index text '\n' in
  for seed = 0 to 19 do
    let damaged = Corrupt.apply ~seed (Corrupt.Garble_bytes 12) text in
    let magic_intact =
      String.length damaged > magic_len
      && String.equal (String.sub damaged 0 magic_len) (String.sub text 0 magic_len)
    in
    if (not (String.equal damaged text)) && magic_intact then begin
      let n, losses = count_records damaged in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: damage is visible as a loss" seed)
        true (losses <> []);
      (* 12 garbled bytes can destroy at most a couple dozen lines *)
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: most records survive (%d of %d)" seed n clean)
        true
        (n >= clean - 40)
    end
  done

let test_salvage_quantifies_single_dropped_event () =
  (* deleting exactly one event line between two marks is quantified as
     exactly one lost event by the next epoch mark *)
  let t = trace_of ~seed:4 (Minilang.Programs.queue_bug ~region:8 ()) in
  let text = Codec.encode ~version:v2 t in
  let lines = String.split_on_char '\n' text in
  let victim =
    match
      List.find_opt
        (fun l -> String.length l >= 6 && String.sub l 0 6 = "event ")
        lines
    with
    | Some l -> l
    | None -> Alcotest.fail "no event line"
  in
  let dropped =
    lines
    |> List.filter (fun l -> not (String.equal l victim))
    |> String.concat "\n"
  in
  let _, losses = count_records dropped in
  match losses with
  | [ l ] ->
    Alcotest.(check (option int)) "one event lost" (Some 1)
      l.Codec.Salvage.events_lost
  | ls -> Alcotest.failf "expected one loss interval, got %d" (List.length ls)

let test_salvage_flags_truncation () =
  let t = trace_of ~seed:5 Minilang.Programs.peterson in
  let text = Codec.encode_stream ~version:v2 t in
  let cut = String.sub text 0 (String.length text - 40) in
  let _, losses = count_records cut in
  Alcotest.(check bool) "truncation is reported" true (losses <> [])

(* ------------------------------------------------------------------ *)
(* Errors carry the offending file name                                *)
(* ------------------------------------------------------------------ *)

let test_read_file_error_names_file () =
  let path = Filename.temp_file "weakrace" ".trace" in
  let oc = open_out path in
  output_string oc "weakrace-trace 1\nbogus line\n";
  close_out oc;
  (match Codec.read_file path with
   | Ok _ -> Alcotest.fail "accepted a bogus trace"
   | Error msg ->
     Alcotest.(check bool)
       (Printf.sprintf "error %S names %s" msg path)
       true
       (String.length msg >= String.length path
        && String.sub msg 0 (String.length path) = path));
  Sys.remove path

let test_read_dir_error_names_file () =
  let t = trace_of Minilang.Programs.fig1b in
  let dir = Filename.temp_file "weakrace" ".d" in
  Sys.remove dir;
  Codec.write_dir dir t;
  let victim = Filename.concat dir "proc0.trace" in
  let oc = open_out victim in
  output_string oc "weakrace-trace 1\nbroken record\n";
  close_out oc;
  (match Codec.read_dir dir with
   | Ok _ -> Alcotest.fail "accepted a broken split dir"
   | Error msg ->
     Alcotest.(check bool)
       (Printf.sprintf "error %S names %s" msg victim)
       true
       (String.length msg >= String.length victim
        && String.sub msg 0 (String.length victim) = victim));
  Sys.readdir dir |> Array.iter (fun f -> Sys.remove (Filename.concat dir f));
  Sys.rmdir dir

(* ------------------------------------------------------------------ *)
(* New damage kinds                                                     *)
(* ------------------------------------------------------------------ *)

let test_flip_bits_behaviour () =
  let text = Codec.encode (trace_of Minilang.Programs.fig1b) in
  let damaged = Corrupt.apply ~seed:11 (Corrupt.Flip_bits 4) text in
  Alcotest.(check int) "length preserved" (String.length text)
    (String.length damaged);
  Alcotest.(check bool) "text changed" false (String.equal text damaged);
  let bits_differing =
    let n = ref 0 in
    String.iteri
      (fun i c ->
        let x = Char.code c lxor Char.code damaged.[i] in
        for b = 0 to 7 do
          if x land (1 lsl b) <> 0 then incr n
        done)
      text;
    !n
  in
  Alcotest.(check bool)
    (Printf.sprintf "at most 4 bits flipped (%d)" bits_differing)
    true
    (bits_differing >= 1 && bits_differing <= 4)

let test_duplicate_lines_behaviour () =
  let text = Codec.encode (trace_of Minilang.Programs.fig1b) in
  let damaged = Corrupt.apply ~seed:11 (Corrupt.Duplicate_lines 2) text in
  Alcotest.(check bool) "text changed" false (String.equal text damaged);
  let lines s = String.split_on_char '\n' s in
  let orig = lines text and dup = lines damaged in
  Alcotest.(check bool) "line count grew" true (List.length dup > List.length orig);
  List.iter
    (fun l ->
      Alcotest.(check bool) ("every line comes from the original: " ^ l) true
        (List.mem l orig))
    dup

(* ------------------------------------------------------------------ *)
(* E7 size accounting                                                   *)
(* ------------------------------------------------------------------ *)

let test_event_level_smaller_for_dense_computation () =
  (* queue_bug touches ~3 locations per loop iteration; event-level traces
     amortize them into two bit vectors per computation event *)
  let t = trace_of ~seed:5 (Minilang.Programs.queue_bug ~region:50 ()) in
  let ev = Trace.stats_bytes_event_level t in
  let op = Trace.stats_bytes_op_level t in
  Alcotest.(check bool)
    (Printf.sprintf "event-level (%d) < op-level (%d)" ev op)
    true (ev < op)

let test_split_dir_roundtrip () =
  let dir = Filename.temp_file "weakrace" ".d" in
  Sys.remove dir;
  List.iter
    (fun (name, p) ->
      let t = trace_of ~seed:9 p in
      Codec.write_dir dir t;
      match Codec.read_dir dir with
      | Ok t' ->
        Alcotest.(check bool) (name ^ " split roundtrip") true (Codec.equivalent t t')
      | Error msg -> Alcotest.failf "%s: read_dir failed: %s" name msg)
    [ ("fig1b", Minilang.Programs.fig1b);
      ("queue", Minilang.Programs.queue_bug ~region:5 ());
      ("barrier", Minilang.Programs.barrier_phases ()) ];
  (* the per-processor files really are per-processor *)
  let t = trace_of ~seed:9 Minilang.Programs.fig1b in
  Codec.write_dir dir t;
  let proc0 = In_channel.with_open_text (Filename.concat dir "proc0.trace") In_channel.input_all in
  Alcotest.(check bool) "proc0 file has only proc 0 events" true
    (String.split_on_char '\n' proc0
     |> List.for_all (fun l ->
            l = ""
            ||
            match String.split_on_char ' ' l with
            | "event" :: _ :: "proc" :: q :: _ -> q = "0"
            | _ -> false))

let test_split_dir_missing () =
  match Codec.read_dir "/nonexistent-weakrace-dir" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "read_dir of missing directory succeeded"

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "tracing"
    [
      ( "segmentation",
        [
          Alcotest.test_case "fig1b events" `Quick test_segment_fig1b;
          Alcotest.test_case "alternation" `Quick test_segment_alternation;
          Alcotest.test_case "eids and seqs" `Quick test_event_seq_and_eids;
          Alcotest.test_case "conflicts" `Quick test_conflict_predicates;
          Alcotest.test_case "sync order slots" `Quick test_sync_order_slots;
        ] );
      ( "so1",
        [
          Alcotest.test_case "recorded vs reconstructed" `Quick
            test_so1_recorded_vs_reconstructed;
          Alcotest.test_case "endpoints are sync" `Quick test_so1_endpoints_are_sync;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip stock programs" `Quick test_codec_roundtrip_stock;
          Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
          Alcotest.test_case "file io" `Quick test_codec_file_io;
        ] );
      ("codec-props", qsuite [ prop_codec_roundtrip_random ]);
      ( "split-files",
        [
          Alcotest.test_case "roundtrip" `Quick test_split_dir_roundtrip;
          Alcotest.test_case "missing directory" `Quick test_split_dir_missing;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "detected or content changes" `Quick
            test_corruption_is_detected_or_changes_content;
          Alcotest.test_case "deterministic" `Quick test_corruption_deterministic;
        ] );
      ( "v2-framing",
        [
          Alcotest.test_case "roundtrip stock programs" `Quick test_v2_roundtrip_stock;
          Alcotest.test_case "v1 bytes unchanged" `Quick test_v1_bytes_unframed;
          Alcotest.test_case "periodic marks" `Quick test_v2_has_periodic_marks;
          Alcotest.test_case "strict decode detects damage" `Quick
            test_v2_strict_detects_every_damage;
        ] );
      ( "salvage",
        [
          Alcotest.test_case "clean on undamaged input" `Quick
            test_salvage_clean_on_undamaged;
          Alcotest.test_case "recovers and reports loss" `Quick
            test_salvage_recovers_and_reports_loss;
          Alcotest.test_case "quantifies a dropped event" `Quick
            test_salvage_quantifies_single_dropped_event;
          Alcotest.test_case "flags truncation" `Quick test_salvage_flags_truncation;
        ] );
      ( "error-context",
        [
          Alcotest.test_case "read_file names the file" `Quick
            test_read_file_error_names_file;
          Alcotest.test_case "read_dir names the file" `Quick
            test_read_dir_error_names_file;
        ] );
      ( "new-damage-kinds",
        [
          Alcotest.test_case "flip-bits" `Quick test_flip_bits_behaviour;
          Alcotest.test_case "duplicate-lines" `Quick test_duplicate_lines_behaviour;
        ] );
      ( "sizes",
        [
          Alcotest.test_case "event-level beats op-level" `Quick
            test_event_level_smaller_for_dense_computation;
        ] );
    ]
