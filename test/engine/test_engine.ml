(* The domain pool: determinism across job counts, serial fallback,
   exception propagation, and domain-safety of the full
   simulate-and-analyze pipeline. *)

open Engine

exception Boom of int

let test_map_basic () =
  Alcotest.(check (array int))
    "identity-ish map" [| 0; 2; 4; 6; 8 |]
    (Parbatch.map ~jobs:2 (fun x -> 2 * x) [| 0; 1; 2; 3; 4 |]);
  Alcotest.(check (array int)) "empty array" [||] (Parbatch.map ~jobs:4 (fun x -> x) [||]);
  Alcotest.(check (list string))
    "map_list" [ "a!"; "b!" ]
    (Parbatch.map_list ~jobs:3 (fun s -> s ^ "!") [ "a"; "b" ])

let test_jobs_one_is_serial_in_order () =
  (* jobs=1 runs in the calling domain in index order: observable effects
     happen sequentially, which parallel execution cannot guarantee *)
  let log = ref [] in
  let r =
    Parbatch.map ~jobs:1
      (fun i ->
        log := i :: !log;
        i * i)
      (Array.init 20 (fun i -> i))
  in
  Alcotest.(check (list int)) "index order" (List.init 20 (fun i -> i)) (List.rev !log);
  Alcotest.(check (array int)) "results" (Array.init 20 (fun i -> i * i)) r

let test_determinism_across_job_counts () =
  (* a non-trivial deterministic function: hash-mix each seed a few
     thousand times so chunks finish at staggered times *)
  let f seed =
    let h = ref seed in
    for i = 1 to 5_000 do
      h := (!h * 1_000_003) + i
    done;
    !h
  in
  let reference = Parbatch.map_seeds ~jobs:1 64 f in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d equals serial" jobs)
        reference
        (Parbatch.map_seeds ~jobs 64 f))
    [ 2; 3; 4; 7; 16; 64 ]

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "raises through jobs=%d" jobs)
        (Boom 3)
        (fun () ->
          ignore
            (Parbatch.map_seeds ~jobs 32 (fun i -> if i = 3 then raise (Boom i) else i))))
    [ 1; 2; 8 ]

let test_first_failing_index_wins () =
  (* several items fail on different workers: the propagated exception is
     the smallest index's, independent of scheduling *)
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "smallest index wins at jobs=%d" jobs)
        (Boom 5)
        (fun () ->
          ignore
            (Parbatch.map_seeds ~jobs 32 (fun i ->
                 if i >= 5 && i mod 5 = 0 then raise (Boom i) else i))))
    [ 1; 2; 8 ]

let test_bad_jobs_rejected () =
  Alcotest.check_raises "jobs=0 rejected" (Invalid_argument "Parbatch.map: jobs must be >= 1")
    (fun () -> ignore (Parbatch.map ~jobs:0 (fun x -> x) [| 1 |]))

(* A deliberately wedged task: spins until the [stop] flag flips.  The
   flag lets the test release the abandoned domain afterwards so the
   suite does not exit with a runaway spinner still burning a core. *)
let spin stop () =
  while not (Atomic.get stop) do
    Domain.cpu_relax ()
  done;
  -1

let test_run_timeout () =
  Alcotest.(check (result int reject))
    "fast task completes" (Ok 42)
    (Parbatch.run_timeout ~timeout:10. (fun () -> 42));
  Alcotest.(check (result int reject))
    "timeout <= 0 runs inline" (Ok 7)
    (Parbatch.run_timeout ~timeout:0. (fun () -> 7));
  Alcotest.check_raises "exception re-raised" (Boom 9) (fun () ->
      ignore (Parbatch.run_timeout ~timeout:10. (fun () -> raise (Boom 9))));
  let stop = Atomic.make false in
  (match Parbatch.run_timeout ~timeout:0.1 (spin stop) with
  | Error `Timeout -> ()
  | Ok _ -> Alcotest.fail "spinning task should have timed out");
  Atomic.set stop true

let test_map_timeout () =
  let stop = Atomic.make false in
  (* item 2 wedges; everything else must still complete with its value *)
  let r =
    Parbatch.map_timeout ~jobs:4 ~timeout:0.5
      (fun i -> if i = 2 then spin stop () else i * 10)
      [| 0; 1; 2; 3; 4; 5 |]
  in
  Atomic.set stop true;
  Array.iteri
    (fun i v ->
      if i = 2 then
        Alcotest.(check bool) "wedged item timed out" true (v = Error `Timeout)
      else
        Alcotest.(check (result int reject)) (Printf.sprintf "item %d" i) (Ok (i * 10)) v)
    r;
  Alcotest.(check (array (result int reject)))
    "empty" [||]
    (Parbatch.map_timeout ~timeout:1. (fun x -> x) [||]);
  Alcotest.(check (array (result int reject)))
    "timeout <= 0 maps inline"
    [| Ok 2; Ok 4 |]
    (Parbatch.map_timeout ~timeout:0. (fun x -> 2 * x) [| 1; 2 |])

let test_map_timeout_exception () =
  (* exceptions still propagate, smallest index first, as in [map] *)
  Alcotest.check_raises "smallest failing index wins" (Boom 1) (fun () ->
      ignore
        (Parbatch.map_timeout ~jobs:2 ~timeout:5.
           (fun i -> if i mod 2 = 1 then raise (Boom i) else i)
           [| 0; 1; 2; 3 |]));
  Alcotest.check_raises "jobs=0 rejected"
    (Invalid_argument "Parbatch.map_timeout: jobs must be >= 1") (fun () ->
      ignore (Parbatch.map_timeout ~jobs:0 ~timeout:1. (fun x -> x) [| 1 |]))

let test_pipeline_domain_safe () =
  (* the real workload: simulate + trace + analyze random racy programs on
     several domains and compare against the serial run — exercises
     Memsim, Minilang.Gen, Tracing and the whole Racedetect stack for
     shared mutable state *)
  let f seed =
    let p = Minilang.Gen.random_racy ~seed () in
    let e =
      Minilang.Interp.run ~model:Memsim.Model.WO
        ~sched:(Memsim.Sched.adversarial ~seed ()) p
    in
    let a = Racedetect.Postmortem.analyze_execution e in
    Racedetect.Postmortem.reported_races a
    |> List.map (fun (r : Racedetect.Race.t) -> (r.Racedetect.Race.a, r.Racedetect.Race.b))
  in
  let serial = Parbatch.map_seeds ~jobs:1 24 f in
  let parallel = Parbatch.map_seeds ~jobs:4 24 f in
  Alcotest.(check (array (list (pair int int)))) "same race sets" serial parallel

let () =
  Alcotest.run "engine"
    [
      ( "parbatch",
        [
          Alcotest.test_case "map basics" `Quick test_map_basic;
          Alcotest.test_case "jobs=1 serial fallback" `Quick test_jobs_one_is_serial_in_order;
          Alcotest.test_case "deterministic across job counts" `Quick
            test_determinism_across_job_counts;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
          Alcotest.test_case "first failing index wins" `Quick test_first_failing_index_wins;
          Alcotest.test_case "invalid jobs rejected" `Quick test_bad_jobs_rejected;
          Alcotest.test_case "run_timeout bounds a wedged task" `Quick test_run_timeout;
          Alcotest.test_case "map_timeout isolates a wedged item" `Quick test_map_timeout;
          Alcotest.test_case "map_timeout exception discipline" `Quick
            test_map_timeout_exception;
          Alcotest.test_case "analysis pipeline is domain-safe" `Quick
            test_pipeline_domain_safe;
        ] );
    ]
