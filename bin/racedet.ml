(* racedet — dynamic data-race detection on simulated weak memory systems.

   Subcommands: list, show, run, detect, trace, analyze, enumerate, check,
   cost.  A <program> argument is either the name of a stock program
   (racedet list) or the path of a program file in the concrete syntax
   (see lib/minilang/parser.mli). *)

open Cmdliner

let load_program arg =
  match Minilang.Programs.find arg with
  | Some p -> Ok p
  | None ->
    if Sys.file_exists arg then Minilang.Parser.parse_file arg
    else
      Error
        (Printf.sprintf
           "%S is neither a stock program nor a readable file (try `racedet list`)" arg)

(* -- common arguments ------------------------------------------------ *)

let program_arg =
  let doc = "Stock program name or path to a program file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let model_arg =
  let parse s =
    match Memsim.Model.of_name s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "unknown model %S (SC|WO|RCsc|DRF0|DRF1)" s))
  in
  let print ppf m = Format.pp_print_string ppf (Memsim.Model.name m) in
  let model_conv = Arg.conv (parse, print) in
  let doc = "Memory model: SC, WO, RCsc, DRF0 or DRF1." in
  Arg.(value & opt model_conv Memsim.Model.WO & info [ "m"; "model" ] ~docv:"MODEL" ~doc)

let seed_arg =
  let doc = "Scheduler seed (runs are deterministic in the seed)." in
  Arg.(value & opt int 0 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let sched_arg =
  let doc =
    "Scheduling strategy: $(b,adversarial) delays write retirement (most \
     reordering), $(b,random) is uniform, $(b,eager) retires immediately \
     (SC-like), $(b,round-robin) is deterministic."
  in
  Arg.(
    value
    & opt (enum [ ("adversarial", `Adversarial); ("random", `Random); ("eager", `Eager);
                  ("round-robin", `Round_robin) ])
        `Adversarial
    & info [ "sched" ] ~docv:"STRATEGY" ~doc)

let make_sched sched seed =
  match sched with
  | `Adversarial -> Memsim.Sched.adversarial ~seed ()
  | `Random -> Memsim.Sched.random ~seed
  | `Eager -> Memsim.Sched.eager ~seed
  | `Round_robin -> Memsim.Sched.round_robin ()

let machine_arg =
  let doc =
    "Hardware realization: $(b,buffer) (store buffers, out-of-order write \
     retirement) or $(b,cache) (MSI caches with delayed invalidations)."
  in
  Arg.(
    value
    & opt (enum [ ("buffer", `Buffer); ("cache", `Cache) ]) `Buffer
    & info [ "machine" ] ~docv:"MACHINE" ~doc)

let max_steps_arg =
  let doc = "Abort (and drain) after this many machine steps." in
  Arg.(value & opt int 20_000 & info [ "max-steps" ] ~doc)

let jobs_arg =
  let doc =
    "Evaluate batch seeds on $(docv) parallel domains (1 = serial; 0 = one \
     per core).  Output is identical for every value."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

let batch_arg =
  let doc =
    "Batch mode: run $(docv) consecutive seeds starting at --seed and print a \
     per-seed summary instead of the single-run report."
  in
  Arg.(value & opt int 1 & info [ "batch" ] ~docv:"N" ~doc)

let resolve_jobs jobs =
  if jobs < 0 then begin
    Format.eprintf "racedet: --jobs must be >= 0@.";
    exit 1
  end
  else if jobs = 0 then Engine.Parbatch.default_jobs ()
  else jobs

let or_fail = function
  | Ok v -> v
  | Error msg ->
    Format.eprintf "racedet: %s@." msg;
    exit 1

let exec_of p machine model sched max_steps seed =
  match machine with
  | `Buffer -> Minilang.Interp.run ~max_steps ~model ~sched:(make_sched sched seed) p
  | `Cache ->
    Coherence.Cmachine.run_program ~max_steps ~model ~sched:(make_sched sched seed) p

let run_exec program machine model sched seed max_steps =
  let p = or_fail (load_program program) in
  (p, exec_of p machine model sched max_steps seed)

(* batch mode: seeds [seed .. seed+batch-1] fanned out over the domain pool;
   [f] must be pure — results are printed in seed order by the caller *)
let run_batch program machine model sched seed max_steps ~batch ~jobs f =
  let p = or_fail (load_program program) in
  let rs =
    Engine.Parbatch.map_seeds ~jobs batch (fun i ->
        let s = seed + i in
        (s, f p (exec_of p machine model sched max_steps s)))
  in
  (p, rs)

(* -- list ------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (name, (p : Minilang.Ast.program)) ->
        Format.printf "%-20s %d procs, %d locations@." name (Array.length p.procs)
          p.n_locs)
      Minilang.Programs.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the stock programs.") Term.(const run $ const ())

(* -- show ------------------------------------------------------------- *)

let show_cmd =
  let run program =
    let p = or_fail (load_program program) in
    print_string (Minilang.Parser.to_source p)
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a program in concrete syntax.")
    Term.(const run $ program_arg)

(* -- run --------------------------------------------------------------- *)

let run_cmd =
  let run program machine model sched seed max_steps batch jobs =
    if batch <= 1 then begin
      let p, e = run_exec program machine model sched seed max_steps in
      Format.printf "%a@." Memsim.Exec.pp e;
      Format.printf "@.final memory (non-zero):@.";
      Array.iteri
        (fun l v ->
          if v <> 0 then Format.printf "  %s = %d@." (Minilang.Ast.loc_name p l) v)
        e.Memsim.Exec.final_mem
    end
    else begin
      let jobs = resolve_jobs jobs in
      let p, rs =
        run_batch program machine model sched seed max_steps ~batch ~jobs
          (fun _p e ->
            let mem =
              Array.to_seq e.Memsim.Exec.final_mem
              |> Seq.mapi (fun l v -> (l, v))
              |> Seq.filter (fun (_, v) -> v <> 0)
              |> List.of_seq
            in
            (Memsim.Exec.n_ops e, e.Memsim.Exec.truncated, mem))
      in
      Array.iter
        (fun (s, (n_ops, truncated, mem)) ->
          Format.printf "seed %-6d %5d ops%s  %s@." s n_ops
            (if truncated then " (truncated)" else "")
            (String.concat " "
               (List.map
                  (fun (l, v) -> Printf.sprintf "%s=%d" (Minilang.Ast.loc_name p l) v)
                  mem)))
        rs
    end
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Execute a program on a memory model and print the execution.  With \
          $(b,--batch) N, run N consecutive seeds (in parallel with $(b,--jobs)) \
          and print one summary line per seed.")
    Term.(
      const run $ program_arg $ machine_arg $ model_arg $ sched_arg $ seed_arg
      $ max_steps_arg $ batch_arg $ jobs_arg)

(* -- detect ------------------------------------------------------------ *)

let detect_cmd =
  let all_arg =
    let doc = "Also show the suppressed non-first partitions in full." in
    Arg.(value & flag & info [ "a"; "all" ] ~doc)
  in
  let run program machine model sched seed max_steps show_all batch jobs =
    if batch <= 1 then begin
      let p, e = run_exec program machine model sched seed max_steps in
      let a = Racedetect.Postmortem.analyze_execution e in
      let loc_name = Minilang.Ast.loc_name p in
      Format.printf "%a@." (Racedetect.Report.pp_analysis ~loc_name) a;
      if show_all then begin
        let trace = a.Racedetect.Postmortem.trace in
        List.iter
          (fun part ->
            Format.printf "@.%a@."
              (Racedetect.Report.pp_partition ~loc_name ~trace)
              part)
          (Racedetect.Partition.non_first_partitions a.Racedetect.Postmortem.partitions)
      end;
      if not (Racedetect.Postmortem.race_free a) then exit 2
    end
    else begin
      let jobs = resolve_jobs jobs in
      let _, rs =
        run_batch program machine model sched seed max_steps ~batch ~jobs
          (fun _p e ->
            let a = Racedetect.Postmortem.analyze_execution e in
            ( List.length (Racedetect.Postmortem.data_races a),
              List.length (Racedetect.Postmortem.reported_races a) ))
      in
      let racy = ref 0 in
      Array.iter
        (fun (s, (all, reported)) ->
          if reported > 0 then incr racy;
          if reported = 0 then Format.printf "seed %-6d race-free@." s
          else
            Format.printf "seed %-6d %d data race(s), %d reported after partitioning@."
              s all reported)
        rs;
      Format.printf "%d / %d seeds racy@." !racy batch;
      if !racy > 0 then exit 2
    end
  in
  Cmd.v
    (Cmd.info "detect"
       ~doc:
         "Run a program, trace it, and report the first partitions of data races \
          (exit status 2 when races are found).  With $(b,--batch) N, analyze N \
          consecutive seeds (in parallel with $(b,--jobs)) and print one line per \
          seed.")
    Term.(
      const run $ program_arg $ machine_arg $ model_arg $ sched_arg $ seed_arg
      $ max_steps_arg $ all_arg $ batch_arg $ jobs_arg)

(* -- trace / analyze --------------------------------------------------- *)

let trace_cmd =
  let out_arg =
    let doc = "Trace file to write." in
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let split_arg =
    let doc = "Write a split-trace directory (one file per processor) instead." in
    Arg.(value & flag & info [ "split" ] ~doc)
  in
  let stream_arg =
    let doc =
      "Write the stream-ordered layout: events interleaved in hb1-topological \
       order with each acquire's so1 record ahead of it and a trailing end \
       marker, so $(b,analyze --stream) retires events as it reads."
    in
    Arg.(value & flag & info [ "stream" ] ~doc)
  in
  let run program machine model sched seed max_steps out split stream =
    if split && stream then begin
      Format.eprintf "racedet: --split and --stream are mutually exclusive@.";
      exit 1
    end;
    let _, e = run_exec program machine model sched seed max_steps in
    let t = Tracing.Trace.of_execution e in
    if split then Tracing.Codec.write_dir out t
    else if stream then Tracing.Codec.write_stream_file out t
    else Tracing.Codec.write_file out t;
    Format.printf "wrote %d events (%d computation, %d sync) to %s@."
      (Tracing.Trace.n_events t)
      (Tracing.Trace.n_computation_events t)
      (Tracing.Trace.n_sync_events t)
      out
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Run a program and write its trace file.")
    Term.(
      const run $ program_arg $ machine_arg $ model_arg $ sched_arg $ seed_arg
      $ max_steps_arg $ out_arg $ split_arg $ stream_arg)

(* --follow: tail a trace file that is still being written, feeding each
   appended chunk to the streaming engine.  Stops at the end marker, or
   after [idle] seconds without growth. *)
let follow_analyze ?max_live ~idle file =
  match open_in_bin file with
  | exception Sys_error msg -> Error msg
  | ic ->
    let t = Racedetect.Stream.create ?max_live () in
    let d = Tracing.Codec.decoder () in
    let buf = Bytes.create 65536 in
    let push () r = Racedetect.Stream.push t r in
    let rec loop idle_for =
      if Racedetect.Stream.saw_end t then Ok ()
      else
        match input ic buf 0 (Bytes.length buf) with
        | 0 ->
          if idle_for >= idle then Ok ()
          else begin
            Unix.sleepf 0.05;
            loop (idle_for +. 0.05)
          end
        | n ->
          (match Tracing.Codec.feed d (Bytes.sub_string buf 0 n) ~f:push () with
           | Ok () -> loop 0.
           | Error _ as e -> e)
        | exception Sys_error msg -> Error msg
    in
    let r =
      match loop 0. with
      | Error _ as e -> e
      | Ok () -> Tracing.Codec.finish_feed d ~f:push ()
    in
    close_in_noerr ic;
    (match r with Error _ as e -> e | Ok () -> Racedetect.Stream.finish t)

let analyze_cmd =
  let file_arg =
    let doc =
      "Trace file produced by $(b,racedet trace), or a split-trace directory \
       (one file per processor plus sync.trace)."
    in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc)
  in
  let reconstruct_arg =
    let doc =
      "Ignore the recorded release/acquire pairing and reconstruct so1 from the \
       per-location synchronization order."
    in
    Arg.(value & flag & info [ "reconstruct-so1" ] ~doc)
  in
  let stream_flag =
    let doc =
      "Streaming analysis: decode the file in chunks and retire events as soon \
       as every processor's clock has passed them (§5 event GC), so memory \
       tracks the live set instead of the trace.  The report is byte-identical \
       to the batch mode's.  Retirement progresses while reading only on \
       stream-ordered files ($(b,racedet trace --stream)); batch-layout files \
       are analyzed correctly but resolve their acquires at end of input."
    in
    Arg.(value & flag & info [ "stream" ] ~doc)
  in
  let follow_arg =
    let doc =
      "Tail a trace that is still being written (implies $(b,--stream)): keep \
       reading as the file grows, stop at the end marker or after \
       $(b,--idle-timeout) seconds without growth."
    in
    Arg.(value & flag & info [ "follow" ] ~doc)
  in
  let max_live_arg =
    let doc =
      "Cap the number of resident race candidates (implies $(b,--stream)).  \
       Beyond the cap the oldest candidates are evicted: hb1 ordering stays \
       exact, but a race whose endpoints are further apart in the stream than \
       the window may be missed (the count is reported with $(b,--stats))."
    in
    Arg.(value & opt (some int) None & info [ "max-live" ] ~docv:"N" ~doc)
  in
  let stats_arg =
    let doc =
      "After the report, print streaming statistics (total events, peak live \
       set, retirements, forced evictions) to standard error (implies \
       $(b,--stream))."
    in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let idle_arg =
    let doc =
      "With $(b,--follow): give up waiting for more input after this many \
       seconds without the file growing."
    in
    Arg.(value & opt float 5.0 & info [ "idle-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let run file reconstruct stream follow max_live stats idle =
    let stream_mode = stream || follow || max_live <> None || stats in
    if not stream_mode then begin
      let result =
        if Sys.file_exists file && Sys.is_directory file then Tracing.Codec.read_dir file
        else Tracing.Codec.read_file file
      in
      match result with
      | Error msg ->
        Format.eprintf "racedet: %s@." msg;
        exit 1
      | Ok t ->
        let so1 = if reconstruct then `Reconstructed else `Recorded in
        let a = Racedetect.Postmortem.analyze ~so1 t in
        Format.printf "%a@." (Racedetect.Report.pp_analysis ?loc_name:None) a;
        if not (Racedetect.Postmortem.race_free a) then exit 2
    end
    else begin
      (match max_live with
       | Some k when k < 1 ->
         Format.eprintf "racedet: --max-live must be at least 1@.";
         exit 1
       | _ -> ());
      if reconstruct then begin
        Format.eprintf
          "racedet: --reconstruct-so1 is not available with --stream (streaming \
           consumes the recorded pairing)@.";
        exit 1
      end;
      if Sys.file_exists file && Sys.is_directory file then begin
        Format.eprintf
          "racedet: --stream reads a single trace file, not a split directory@.";
        exit 1
      end;
      let result =
        if follow then follow_analyze ?max_live ~idle file
        else Racedetect.Stream.analyze_file ?max_live file
      in
      match result with
      | Error msg ->
        Format.eprintf "racedet: %s@." msg;
        exit 1
      | Ok (a, st) ->
        Format.printf "%a@." (Racedetect.Report.pp_analysis ?loc_name:None) a;
        if stats then
          Format.eprintf "stream: %a@." Racedetect.Stream.pp_stats st;
        if not (Racedetect.Postmortem.race_free a) then exit 2
    end
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Post-mortem analysis of an existing trace file, batch or streaming \
          ($(b,--stream)); both modes print the same report.")
    Term.(
      const run $ file_arg $ reconstruct_arg $ stream_flag $ follow_arg
      $ max_live_arg $ stats_arg $ idle_arg)

(* -- enumerate ---------------------------------------------------------- *)

let enumerate_cmd =
  let limit_arg =
    let doc = "Stop after this many SC executions." in
    Arg.(value & opt int 100_000 & info [ "limit" ] ~doc)
  in
  let run program limit =
    let p = or_fail (load_program program) in
    let r =
      Memsim.Enumerate.explore ~limit (fun () -> Minilang.Interp.source p)
    in
    let execs = r.Memsim.Enumerate.executions in
    let racy =
      List.filter
        (fun e ->
          Racedetect.Postmortem.data_races (Racedetect.Postmortem.analyze_execution e)
          <> [])
        execs
    in
    Format.printf "%d sequentially consistent execution(s)%s@." (List.length execs)
      (if r.Memsim.Enumerate.complete then "" else " (incomplete)");
    Format.printf "%d exhibit data races@." (List.length racy);
    if racy <> [] then
      Format.printf "the program is NOT data-race-free (Def 2.4)@."
    else if r.Memsim.Enumerate.complete then
      Format.printf "the program is data-race-free: every weak execution is SC@."
  in
  Cmd.v
    (Cmd.info "enumerate"
       ~doc:
         "Enumerate all SC executions and decide whether the program is \
          data-race-free.")
    Term.(const run $ program_arg $ limit_arg)

(* -- check (Condition 3.4) ---------------------------------------------- *)

let check_cmd =
  let seeds_arg =
    let doc = "Number of weak executions to check per model." in
    Arg.(value & opt int 10 & info [ "n"; "seeds" ] ~doc)
  in
  let limit_arg =
    let doc = "SC enumeration bound." in
    Arg.(value & opt int 200_000 & info [ "limit" ] ~doc)
  in
  let exhaustive_arg =
    let doc =
      "Check every schedule of every weak model (store-buffer machine only; \
       litmus-sized, loop-free programs)."
    in
    Arg.(value & flag & info [ "exhaustive" ] ~doc)
  in
  let run program machine n limit exhaustive jobs =
    let jobs = resolve_jobs jobs in
    let p = or_fail (load_program program) in
    let r = Memsim.Enumerate.explore ~limit (fun () -> Minilang.Interp.source p) in
    if not r.Memsim.Enumerate.complete then begin
      Format.eprintf
        "racedet: SC enumeration incomplete; Condition 3.4 cannot be decided@.";
      exit 1
    end;
    let pool = r.Memsim.Enumerate.executions in
    let failures = ref 0 in
    let total = ref 0 in
    let report model tag v =
      incr total;
      if not v.Racedetect.Condition.holds then begin
        incr failures;
        Format.printf "%s %s: %a@." (Memsim.Model.name model) tag
          Racedetect.Condition.pp_verdict v
      end
    in
    List.iter
      (fun model ->
        if exhaustive then begin
          let w =
            Memsim.Enumerate.explore_weak ~limit ~model (fun () ->
                Minilang.Interp.source p)
          in
          if not w.Memsim.Enumerate.complete then begin
            Format.eprintf "racedet: weak exploration incomplete for %s@."
              (Memsim.Model.name model);
            exit 1
          end;
          let behaviours = Memsim.Enumerate.behaviours w.Memsim.Enumerate.executions in
          Engine.Parbatch.map_list ~jobs
            (fun e -> Racedetect.Condition.check ~sc:pool e)
            behaviours
          |> List.iteri (fun i v -> report model (Printf.sprintf "schedule %d" i) v)
        end
        else
          (* verdicts computed in parallel; reported in seed order *)
          Engine.Parbatch.map_seeds ~jobs n (fun seed ->
              let e =
                match machine with
                | `Buffer ->
                  Minilang.Interp.run ~model
                    ~sched:(Memsim.Sched.adversarial ~seed ())
                    p
                | `Cache ->
                  Coherence.Cmachine.run_program ~model
                    ~sched:(Memsim.Sched.adversarial ~seed ())
                    p
              in
              Racedetect.Condition.check ~sc:pool e)
          |> Array.iteri (fun seed v -> report model (Printf.sprintf "seed=%d" seed) v))
      Memsim.Model.weak;
    if !failures = 0 then
      Format.printf "Condition 3.4 obeyed on all %d weak executions%s@." !total
        (if exhaustive then " (exhaustive behaviour coverage)" else "")
    else begin
      Format.printf "%d violation(s)@." !failures;
      exit 2
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Verify Condition 3.4 (Theorem 3.5) on weak executions of a program, \
          against exhaustive SC enumeration.")
    Term.(
      const run $ program_arg $ machine_arg $ seeds_arg $ limit_arg $ exhaustive_arg
      $ jobs_arg)

(* -- sweep ----------------------------------------------------------------- *)

let sweep_cmd =
  let seeds_arg =
    let doc = "Schedules per model." in
    Arg.(value & opt int 100 & info [ "n"; "seeds" ] ~doc)
  in
  let run program machine n max_steps =
    let p = or_fail (load_program program) in
    Format.printf "%-6s %8s %10s %12s %12s@." "model" "runs" "racy-runs"
      "races(max)" "truncated";
    List.iter
      (fun model ->
        if not (machine = `Cache && Memsim.Model.fifo_buffer model) then begin
          let racy = ref 0 and max_races = ref 0 and truncated = ref 0 in
          for seed = 0 to n - 1 do
            let e =
              match machine with
              | `Buffer ->
                Minilang.Interp.run ~max_steps ~model
                  ~sched:(Memsim.Sched.adversarial ~seed ()) p
              | `Cache ->
                Coherence.Cmachine.run_program ~max_steps ~model
                  ~sched:(Memsim.Sched.adversarial ~seed ()) p
            in
            if e.Memsim.Exec.truncated then incr truncated;
            let races =
              List.length
                (Racedetect.Postmortem.data_races
                   (Racedetect.Postmortem.analyze_execution e))
            in
            if races > 0 then incr racy;
            if races > !max_races then max_races := races
          done;
          Format.printf "%-6s %8d %10d %12d %12d@." (Memsim.Model.name model) n !racy
            !max_races !truncated
        end)
      Memsim.Model.all
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Fuzz a program: run many adversarial schedules on every model and \
          summarize how often data races actually materialize.")
    Term.(const run $ program_arg $ machine_arg $ seeds_arg $ max_steps_arg)

(* -- graph (DOT export) --------------------------------------------------- *)

let graph_cmd =
  let out_arg =
    let doc = "Write the DOT graph here instead of standard output." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run program machine model sched seed max_steps out =
    let p, e = run_exec program machine model sched seed max_steps in
    let a = Racedetect.Postmortem.analyze_execution e in
    let dot = Racedetect.Report.to_dot ~loc_name:(Minilang.Ast.loc_name p) a in
    match out with
    | None -> print_string dot
    | Some path ->
      Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc dot);
      Format.printf "wrote %s@." path
  in
  Cmd.v
    (Cmd.info "graph"
       ~doc:
         "Emit the augmented happens-before-1 graph (Figure 3 style) as Graphviz \
          DOT: po edges solid, so1 dashed, races red and doubly directed, first \
          partitions highlighted.")
    Term.(
      const run $ program_arg $ machine_arg $ model_arg $ sched_arg $ seed_arg
      $ max_steps_arg $ out_arg)

(* -- gen (random programs) ------------------------------------------------ *)

let gen_cmd =
  let kind_arg =
    let doc = "Population: $(b,racy), $(b,racefree) (Test&Set/Unset) or $(b,racefree-ra) (release/acquire)." in
    Arg.(
      value
      & opt (enum [ ("racy", `Racy); ("racefree", `Racefree); ("racefree-ra", `Ra) ]) `Racy
      & info [ "k"; "kind" ] ~docv:"KIND" ~doc)
  in
  let gen_seed_arg =
    let doc = "Generator seed." in
    Arg.(value & opt int 0 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)
  in
  let procs_arg =
    let doc = "Processors." in
    Arg.(value & opt int 2 & info [ "procs" ] ~doc)
  in
  let ops_arg =
    let doc = "Operations per processor." in
    Arg.(value & opt int 4 & info [ "ops" ] ~doc)
  in
  let run kind seed procs ops =
    let config =
      { Minilang.Gen.default_config with Minilang.Gen.n_procs = procs; ops_per_proc = ops }
    in
    let p =
      match kind with
      | `Racy -> Minilang.Gen.random_racy ~config ~seed ()
      | `Racefree -> Minilang.Gen.random_racefree ~config ~seed ()
      | `Ra -> Minilang.Gen.random_racefree_ra ~config ~seed ()
    in
    let p = { p with Minilang.Ast.name = "generated" } in
    print_string (Minilang.Parser.to_source p)
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "Emit a random program (in the concrete syntax) from the Monte-Carlo \
          populations used to validate Condition 3.4.")
    Term.(const run $ kind_arg $ gen_seed_arg $ procs_arg $ ops_arg)

(* -- replay (SCP debugger) ----------------------------------------------- *)

let replay_cmd =
  let limit_arg =
    let doc = "SC enumeration bound for the ground-truth pool." in
    Arg.(value & opt int 500_000 & info [ "limit" ] ~doc)
  in
  let watch_arg =
    let doc = "Named location to put a watchpoint on (repeatable)." in
    Arg.(value & opt_all string [] & info [ "w"; "watch" ] ~docv:"LOC" ~doc)
  in
  let run program model sched seed max_steps limit watches =
    let p = or_fail (load_program program) in
    let weak =
      Minilang.Interp.run ~max_steps ~model ~sched:(make_sched sched seed) p
    in
    let r = Memsim.Enumerate.explore ~limit (fun () -> Minilang.Interp.source p) in
    if not r.Memsim.Enumerate.complete then begin
      Format.eprintf "racedet: SC enumeration incomplete; prefix replay needs ground truth@.";
      exit 1
    end;
    match
      Racedetect.Scpreplay.of_weak_execution ~sc:r.Memsim.Enumerate.executions
        ~source:(fun () -> Minilang.Interp.source p)
        weak
    with
    | None -> Format.eprintf "racedet: empty SC pool@."; exit 1
    | Some session ->
      let loc_name = Minilang.Ast.loc_name p in
      Format.printf "%a@." (Racedetect.Scpreplay.pp_session ~loc_name) session;
      List.iter
        (fun name ->
          match List.assoc_opt name p.Minilang.Ast.symbols with
          | None -> Format.eprintf "racedet: unknown location %S@." name
          | Some loc ->
            Format.printf "@.watch %s:" name;
            List.iter
              (fun (step, v) -> Format.printf " [step %d] %d" step v)
              (Racedetect.Scpreplay.watch session loc);
            Format.printf "@.")
        watches
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Replay the sequentially consistent prefix of a weak execution on an SC           machine, with optional watchpoints — §5's \"debug the SC part with SC           tools\".")
    Term.(
      const run $ program_arg $ model_arg $ sched_arg $ seed_arg $ max_steps_arg
      $ limit_arg $ watch_arg)

(* -- cost ---------------------------------------------------------------- *)

let cost_cmd =
  let run program seed =
    let p = or_fail (load_program program) in
    Format.printf "%-6s %10s %12s@." "model" "cycles" "stalls";
    List.iter
      (fun model ->
        let e =
          Minilang.Interp.run ~model ~sched:(Memsim.Sched.adversarial ~seed ()) p
        in
        let est = Memsim.Cost.estimate ~mode:model e in
        Format.printf "%-6s %10d %12d@." (Memsim.Model.name model)
          est.Memsim.Cost.makespan est.Memsim.Cost.stall_cycles)
      Memsim.Model.all
  in
  Cmd.v
    (Cmd.info "cost"
       ~doc:
         "Estimate execution time under each model's stall policy (the price of a \
          sequentially consistent debug mode).")
    Term.(const run $ program_arg $ seed_arg)

(* -- lint -------------------------------------------------------------- *)

let lint_cmd =
  let run program sync model =
    let p = or_fail (load_program program) in
    or_fail (Minilang.Ast.validate p);
    let r = Staticcheck.Lint.analyze p in
    Format.printf "%a@." (Staticcheck.Lint.pp ?model ~show_sync:sync) r;
    if r.Staticcheck.Lint.data_candidates <> [] then exit 2
  in
  let sync_arg =
    let doc = "Itemize the unordered sync-sync pairs instead of counting them." in
    Arg.(value & flag & info [ "sync" ] ~doc)
  in
  let model_opt_arg =
    let parse s =
      match Memsim.Model.of_name s with
      | Some m -> Ok m
      | None ->
        Error (`Msg (Printf.sprintf "unknown model %S (SC|WO|RCsc|DRF0|DRF1)" s))
    in
    let print ppf m = Format.pp_print_string ppf (Memsim.Model.name m) in
    let doc =
      "Keep only the discipline findings relevant to this model (default: all)."
    in
    Arg.(
      value
      & opt (some (conv (parse, print))) None
      & info [ "m"; "model" ] ~docv:"MODEL" ~doc)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically check synchronization discipline and list candidate race \
          pairs (a sound over-approximation: exits 2 when data candidates \
          exist, 0 when the program is statically race-free).")
    Term.(const run $ program_arg $ sync_arg $ model_opt_arg)

let () =
  let doc = "dynamic data-race detection on weak memory systems (ISCA 1991)" in
  let info = Cmd.info "racedet" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; show_cmd; run_cmd; detect_cmd; trace_cmd; analyze_cmd;
            enumerate_cmd; check_cmd; cost_cmd; replay_cmd; graph_cmd; gen_cmd;
            sweep_cmd; lint_cmd ]))
