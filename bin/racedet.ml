(* racedet — dynamic data-race detection on simulated weak memory systems.

   Subcommands: list, show, run, detect, trace, analyze, enumerate, check,
   cost.  A <program> argument is either the name of a stock program
   (racedet list) or the path of a program file in the concrete syntax
   (see lib/minilang/parser.mli). *)

open Cmdliner

let load_program arg =
  match Minilang.Programs.find arg with
  | Some p -> Ok p
  | None ->
    if Sys.file_exists arg then Minilang.Parser.parse_file arg
    else
      Error
        (Printf.sprintf
           "%S is neither a stock program nor a readable file (try `racedet list`)" arg)

(* -- common arguments ------------------------------------------------ *)

let program_arg =
  let doc = "Stock program name or path to a program file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let parse_model s =
  match Memsim.Model.of_spec s with
  | Ok m -> Ok m
  | Error e -> Error (`Msg e)

let print_model ppf m = Format.pp_print_string ppf (Memsim.Model.name m)
let model_conv = Arg.conv (parse_model, print_model)

let model_arg =
  let doc =
    "Memory model: a named model (SC, TSO, WO, RCsc, DRF0, DRF1), a named \
     hardware variant (e.g. sb-fence-nop), or a variant spec such as \
     $(b,sb:depth=2,fence=nop) — see $(b,racedet variants)."
  in
  Arg.(value & opt model_conv Memsim.Model.WO & info [ "m"; "model" ] ~docv:"MODEL" ~doc)

let seed_arg =
  let doc = "Scheduler seed (runs are deterministic in the seed)." in
  Arg.(value & opt int 0 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let sched_arg =
  let doc =
    "Scheduling strategy: $(b,adversarial) delays write retirement (most \
     reordering), $(b,random) is uniform, $(b,eager) retires immediately \
     (SC-like), $(b,round-robin) is deterministic."
  in
  Arg.(
    value
    & opt (enum [ ("adversarial", `Adversarial); ("random", `Random); ("eager", `Eager);
                  ("round-robin", `Round_robin) ])
        `Adversarial
    & info [ "sched" ] ~docv:"STRATEGY" ~doc)

let make_sched sched seed =
  match sched with
  | `Adversarial -> Memsim.Sched.adversarial ~seed ()
  | `Random -> Memsim.Sched.random ~seed
  | `Eager -> Memsim.Sched.eager ~seed
  | `Round_robin -> Memsim.Sched.round_robin ()

let machine_arg =
  let doc =
    "Hardware realization: $(b,buffer) (store buffers, out-of-order write \
     retirement) or $(b,cache) (MSI caches with delayed invalidations)."
  in
  Arg.(
    value
    & opt (enum [ ("buffer", `Buffer); ("cache", `Cache) ]) `Buffer
    & info [ "machine" ] ~docv:"MACHINE" ~doc)

let max_steps_arg =
  let doc = "Abort (and drain) after this many machine steps." in
  Arg.(value & opt int 20_000 & info [ "max-steps" ] ~doc)

let jobs_arg =
  let doc =
    "Evaluate batch seeds on $(docv) parallel domains (1 = serial; 0 = one \
     per core).  Output is identical for every value."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

let batch_arg =
  let doc =
    "Batch mode: run $(docv) consecutive seeds starting at --seed and print a \
     per-seed summary instead of the single-run report."
  in
  Arg.(value & opt int 1 & info [ "batch" ] ~docv:"N" ~doc)

let resolve_jobs jobs =
  if jobs < 0 then begin
    Format.eprintf "racedet: --jobs must be >= 0@.";
    exit 1
  end
  else if jobs = 0 then Engine.Parbatch.default_jobs ()
  else jobs

let or_fail = function
  | Ok v -> v
  | Error msg ->
    Format.eprintf "racedet: %s@." msg;
    exit 1

let exec_of p machine model sched max_steps seed =
  match machine with
  | `Buffer -> Minilang.Interp.run ~max_steps ~model ~sched:(make_sched sched seed) p
  | `Cache ->
    Coherence.Cmachine.run_program ~max_steps ~model ~sched:(make_sched sched seed) p

let run_exec program machine model sched seed max_steps =
  let p = or_fail (load_program program) in
  (p, exec_of p machine model sched max_steps seed)

(* batch mode: seeds [seed .. seed+batch-1] fanned out over the domain pool;
   [f] must be pure — results are printed in seed order by the caller *)
let run_batch program machine model sched seed max_steps ~batch ~jobs f =
  let p = or_fail (load_program program) in
  let rs =
    Engine.Parbatch.map_seeds ~jobs batch (fun i ->
        let s = seed + i in
        (s, f p (exec_of p machine model sched max_steps s)))
  in
  (p, rs)

(* -- list ------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (name, (p : Minilang.Ast.program)) ->
        Format.printf "%-20s %d procs, %d locations@." name (Array.length p.procs)
          p.n_locs)
      Minilang.Programs.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the stock programs.") Term.(const run $ const ())

(* -- show ------------------------------------------------------------- *)

let show_cmd =
  let run program =
    let p = or_fail (load_program program) in
    print_string (Minilang.Parser.to_source p)
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a program in concrete syntax.")
    Term.(const run $ program_arg)

(* -- run --------------------------------------------------------------- *)

let run_cmd =
  let run program machine model sched seed max_steps batch jobs =
    if batch <= 1 then begin
      let p, e = run_exec program machine model sched seed max_steps in
      Format.printf "%a@." Memsim.Exec.pp e;
      Format.printf "@.final memory (non-zero):@.";
      Array.iteri
        (fun l v ->
          if v <> 0 then Format.printf "  %s = %d@." (Minilang.Ast.loc_name p l) v)
        e.Memsim.Exec.final_mem
    end
    else begin
      let jobs = resolve_jobs jobs in
      let p, rs =
        run_batch program machine model sched seed max_steps ~batch ~jobs
          (fun _p e ->
            let mem =
              Array.to_seq e.Memsim.Exec.final_mem
              |> Seq.mapi (fun l v -> (l, v))
              |> Seq.filter (fun (_, v) -> v <> 0)
              |> List.of_seq
            in
            (Memsim.Exec.n_ops e, e.Memsim.Exec.truncated, mem))
      in
      Array.iter
        (fun (s, (n_ops, truncated, mem)) ->
          Format.printf "seed %-6d %5d ops%s  %s@." s n_ops
            (if truncated then " (truncated)" else "")
            (String.concat " "
               (List.map
                  (fun (l, v) -> Printf.sprintf "%s=%d" (Minilang.Ast.loc_name p l) v)
                  mem)))
        rs
    end
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Execute a program on a memory model and print the execution.  With \
          $(b,--batch) N, run N consecutive seeds (in parallel with $(b,--jobs)) \
          and print one summary line per seed.")
    Term.(
      const run $ program_arg $ machine_arg $ model_arg $ sched_arg $ seed_arg
      $ max_steps_arg $ batch_arg $ jobs_arg)

(* -- detect ------------------------------------------------------------ *)

let order_arg =
  let doc =
    "Reporting partial order: $(b,hb1) (the paper's happens-before-1 with \
     first-partition suppression, the default) or $(b,shb) (hb1 plus the \
     observed reads-from edges).  $(b,shb) appends the suppressed races that \
     stay unordered even with every communication edge added — sound \
     predictions beyond the first partitions.  It only ever adds races: the \
     first-partition report, the verdict, and the exit code are identical \
     under both orders."
  in
  let parse_order = function
    | "hb1" -> Ok `Hb1
    | "shb" -> Ok `Shb
    | s ->
      Error
        (`Msg
          (Printf.sprintf
             "unknown order %S\n\
              named orders: hb1, shb\n\
              order spec: hb1 (the paper's happens-before-1 with \
              first-partition suppression) | shb (hb1 plus the observed \
              reads-from edges)"
             s))
  in
  let print_order ppf o =
    Format.pp_print_string ppf (match o with `Hb1 -> "hb1" | `Shb -> "shb")
  in
  Arg.(
    value
    & opt (conv (parse_order, print_order)) `Hb1
    & info [ "order" ] ~docv:"ORDER" ~doc)

let detect_cmd =
  let all_arg =
    let doc = "Also show the suppressed non-first partitions in full." in
    Arg.(value & flag & info [ "a"; "all" ] ~doc)
  in
  let run program machine model sched seed max_steps show_all batch jobs order =
    if batch <= 1 then begin
      let p, e = run_exec program machine model sched seed max_steps in
      let a = Racedetect.Postmortem.analyze_execution ~order e in
      let loc_name = Minilang.Ast.loc_name p in
      Format.printf "%a@." (Racedetect.Report.pp_analysis ~loc_name) a;
      if show_all then begin
        let trace = a.Racedetect.Postmortem.trace in
        List.iter
          (fun part ->
            Format.printf "@.%a@."
              (Racedetect.Report.pp_partition ~loc_name ~trace)
              part)
          (Racedetect.Partition.non_first_partitions a.Racedetect.Postmortem.partitions)
      end;
      if not (Racedetect.Postmortem.race_free a) then exit 2
    end
    else begin
      let jobs = resolve_jobs jobs in
      let _, rs =
        run_batch program machine model sched seed max_steps ~batch ~jobs
          (fun _p e ->
            let a = Racedetect.Postmortem.analyze_execution ~order e in
            ( List.length (Racedetect.Postmortem.data_races a),
              List.length (Racedetect.Postmortem.reported_races a),
              List.length a.Racedetect.Postmortem.shb_extra ))
      in
      let racy = ref 0 in
      Array.iter
        (fun (s, (all, reported, extra)) ->
          if reported > 0 then incr racy;
          if reported = 0 then Format.printf "seed %-6d race-free@." s
          else
            Format.printf
              "seed %-6d %d data race(s), %d reported after partitioning%s@." s all
              reported
              (if order = `Shb then Printf.sprintf ", %d shb-predicted" extra
               else ""))
        rs;
      Format.printf "%d / %d seeds racy@." !racy batch;
      if !racy > 0 then exit 2
    end
  in
  let exits =
    Cmd.Exit.info 0 ~doc:"no data races were reported."
    :: Cmd.Exit.info 1 ~doc:"usage or I/O error."
    :: Cmd.Exit.info 2 ~doc:"data races were reported."
    :: List.filter (fun i -> Cmd.Exit.info_code i > 2) Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "detect"
       ~doc:
         "Run a program, trace it, and report the first partitions of data races \
          (exit status 2 when races are found).  With $(b,--batch) N, analyze N \
          consecutive seeds (in parallel with $(b,--jobs)) and print one line per \
          seed.  $(b,--order shb) additionally predicts suppressed races via the \
          SHB order; exit codes are unaffected."
       ~exits)
    Term.(
      const run $ program_arg $ machine_arg $ model_arg $ sched_arg $ seed_arg
      $ max_steps_arg $ all_arg $ batch_arg $ jobs_arg $ order_arg)

(* -- trace / analyze --------------------------------------------------- *)

let trace_cmd =
  let out_arg =
    let doc = "Trace file to write." in
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let split_arg =
    let doc = "Write a split-trace directory (one file per processor) instead." in
    Arg.(value & flag & info [ "split" ] ~doc)
  in
  let stream_arg =
    let doc =
      "Write the stream-ordered layout: events interleaved in hb1-topological \
       order with each acquire's so1 record ahead of it and a trailing end \
       marker, so $(b,analyze --stream) retires events as it reads."
    in
    Arg.(value & flag & info [ "stream" ] ~doc)
  in
  let v2_arg =
    let doc =
      "Write format v2: every line carries a CRC-32 checksum suffix and an \
       epoch mark summarizing the event count and cumulative checksum is \
       emitted periodically, so $(b,analyze --salvage) can localize damage \
       and quantify losses.  v1 readers reject v2 files; this tool reads \
       both."
    in
    Arg.(value & flag & info [ "v2"; "checksummed" ] ~doc)
  in
  let run program machine model sched seed max_steps out split stream v2 =
    if split && stream then begin
      Format.eprintf "racedet: --split and --stream are mutually exclusive@.";
      exit 1
    end;
    if split && v2 then begin
      Format.eprintf "racedet: --v2 is not available for split-trace directories@.";
      exit 1
    end;
    let version =
      if v2 then Tracing.Codec.version_checksummed else Tracing.Codec.version
    in
    let _, e = run_exec program machine model sched seed max_steps in
    let t = Tracing.Trace.of_execution e in
    if split then Tracing.Codec.write_dir out t
    else if stream then Tracing.Codec.write_stream_file ~version out t
    else Tracing.Codec.write_file ~version out t;
    Format.printf "wrote %d events (%d computation, %d sync) to %s@."
      (Tracing.Trace.n_events t)
      (Tracing.Trace.n_computation_events t)
      (Tracing.Trace.n_sync_events t)
      out
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Run a program and write its trace file.")
    Term.(
      const run $ program_arg $ machine_arg $ model_arg $ sched_arg $ seed_arg
      $ max_steps_arg $ out_arg $ split_arg $ stream_arg $ v2_arg)

(* -- the streaming driver --------------------------------------------

   One loop serves --stream, --follow, --salvage and --checkpoint: read
   the file in chunks (tailing it while it grows under --follow), feed a
   strict or salvage codec into a strict or tolerant engine, and — when
   a checkpoint path is given — atomically persist (engine, codec
   position) every [checkpoint_every] events plus once more before the
   finish, so a kill at any point resumes to a byte-identical report.
   The checkpoint is deleted after a successful finish. *)

type codec_state =
  | Cs_strict of Tracing.Codec.decoder
  | Cs_salvage of Tracing.Codec.Salvage.t

let stream_drive ?max_live ~salvage ~follow ~idle ~ckpt ~ckpt_every file =
  let fresh () =
    let engine = Racedetect.Stream.create ?max_live ~tolerant:salvage () in
    let codec =
      if salvage then Cs_salvage (Tracing.Codec.Salvage.create ())
      else Cs_strict (Tracing.Codec.decoder ())
    in
    Ok (engine, codec, 0)
  in
  let restored =
    match ckpt with
    | Some cp when Sys.file_exists cp ->
      (match
         (Racedetect.Stream.restore cp
           : (Racedetect.Stream.t * (bool * codec_state * int), string) result)
       with
       | Ok (engine, (was_salvage, codec, pos)) ->
         if was_salvage <> salvage then
           Error
             (Printf.sprintf "%s: checkpoint was taken %s --salvage" cp
                (if was_salvage then "with" else "without"))
         else begin
           Format.eprintf "racedet: resuming %s from byte %d (%d events)@." file
             pos
             (Racedetect.Stream.seen_events engine);
           Ok (engine, codec, pos)
         end
       | Error _ as e -> e)
    | _ -> fresh ()
  in
  match restored with
  | Error _ as e -> e
  | Ok (engine, codec, start_pos) ->
    (match open_in_bin file with
     | exception Sys_error msg -> Error msg
     | ic ->
       let r =
         try
           if in_channel_length ic < start_pos then
             Error
               (Printf.sprintf "%s: file is shorter than the checkpoint position %d"
                  file start_pos)
           else begin
             seek_in ic start_pos;
             let buf = Bytes.create 65536 in
             let pos = ref start_pos in
             let events_at_ckpt = ref (Racedetect.Stream.seen_events engine) in
             let push () r = Racedetect.Stream.push engine r in
             let feed chunk =
               match codec with
               | Cs_strict d -> Tracing.Codec.feed d chunk ~f:push ()
               | Cs_salvage s -> Tracing.Codec.Salvage.feed s chunk ~f:push ()
             in
             let save_ckpt () =
               match ckpt with
               | None -> ()
               | Some cp ->
                 Racedetect.Stream.checkpoint cp engine ~extra:(salvage, codec, !pos);
                 events_at_ckpt := Racedetect.Stream.seen_events engine
             in
             let maybe_ckpt () =
               if ckpt <> None
                  && Racedetect.Stream.seen_events engine - !events_at_ckpt
                     >= ckpt_every
               then save_ckpt ()
             in
             (* codec and engine errors carry byte/line positions but not
                the file name; checkpoint errors already name their file *)
             let in_file = function
               | Ok _ as ok -> ok
               | Error m -> Error (file ^ ": " ^ m)
             in
             let rec loop idle_for =
               match input ic buf 0 (Bytes.length buf) with
               | 0 ->
                 if Racedetect.Stream.saw_end engine then Ok ()
                 else if (not follow) || idle_for >= idle then Ok ()
                 else begin
                   Unix.sleepf 0.05;
                   loop (idle_for +. 0.05)
                 end
               | n ->
                 (match in_file (feed (Bytes.sub_string buf 0 n)) with
                  | Ok () ->
                    pos := !pos + n;
                    maybe_ckpt ();
                    loop 0.
                  | Error _ as e -> e)
               | exception Sys_error msg -> Error msg
             in
             match loop 0. with
             | Error _ as e -> e
             | Ok () ->
               (* persist once more before the finish: finishing mutates
                  the engine, so a kill inside it must resume from here *)
               save_ckpt ();
               (match codec with
                | Cs_strict d ->
                  (match in_file (Tracing.Codec.finish_feed d ~f:push ()) with
                   | Error _ as e -> e
                   | Ok () ->
                     (match in_file (Racedetect.Stream.finish engine) with
                      | Ok (a, st) -> Ok (Racedetect.Postmortem.verdict a, st)
                      | Error _ as e -> e))
                | Cs_salvage s ->
                  (match in_file (Tracing.Codec.Salvage.finish_feed s ~f:push ()) with
                   | Error _ as e -> e
                   | Ok () ->
                     in_file
                       (Racedetect.Stream.finish_salvaged engine
                          ~decode_losses:(Tracing.Codec.Salvage.losses s))))
           end
         with Sys_error msg -> Error msg
       in
       close_in_noerr ic;
       (match r, ckpt with
        | Ok _, Some cp -> (try Sys.remove cp with Sys_error _ -> ())
        | _ -> ());
       r)

(* The rendering lives in Serve.Protocol so the daemon's reports are
   byte-identical to this command's stdout. *)
let print_verdict v =
  print_string (Serve.Protocol.render_verdict_report v);
  Racedetect.Postmortem.verdict_exit_code v

let analysis_exits =
  Cmd.Exit.info 0 ~doc:"the trace was analyzed and is race-free."
  :: Cmd.Exit.info 1 ~doc:"usage error, I/O error, or undecodable trace."
  :: Cmd.Exit.info 2 ~doc:"data races were reported."
  :: Cmd.Exit.info 3
       ~doc:
         "the trace was lossy (salvaged decode discarded damaged regions): the \
          analysis is degraded and race-freedom cannot be certified."
  :: List.filter (fun i -> Cmd.Exit.info_code i > 3) Cmd.Exit.defaults

let analyze_cmd =
  let file_arg =
    let doc =
      "Trace file produced by $(b,racedet trace), or a split-trace directory \
       (one file per processor plus sync.trace)."
    in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc)
  in
  let reconstruct_arg =
    let doc =
      "Ignore the recorded release/acquire pairing and reconstruct so1 from the \
       per-location synchronization order."
    in
    Arg.(value & flag & info [ "reconstruct-so1" ] ~doc)
  in
  let stream_flag =
    let doc =
      "Streaming analysis: decode the file in chunks and retire events as soon \
       as every processor's clock has passed them (§5 event GC), so memory \
       tracks the live set instead of the trace.  The report is byte-identical \
       to the batch mode's.  Retirement progresses while reading only on \
       stream-ordered files ($(b,racedet trace --stream)); batch-layout files \
       are analyzed correctly but resolve their acquires at end of input."
    in
    Arg.(value & flag & info [ "stream" ] ~doc)
  in
  let follow_arg =
    let doc =
      "Tail a trace that is still being written (implies $(b,--stream)): keep \
       reading as the file grows, stop at the end marker or after \
       $(b,--idle-timeout) seconds without growth."
    in
    Arg.(value & flag & info [ "follow" ] ~doc)
  in
  let max_live_arg =
    let doc =
      "Cap the number of resident race candidates (implies $(b,--stream)).  \
       Beyond the cap the oldest candidates are evicted: hb1 ordering stays \
       exact, but a race whose endpoints are further apart in the stream than \
       the window may be missed (the count is reported with $(b,--stats))."
    in
    Arg.(value & opt (some int) None & info [ "max-live" ] ~docv:"N" ~doc)
  in
  let stats_arg =
    let doc =
      "After the report, print streaming statistics (total events, peak live \
       set, retirements, forced evictions) to standard error (implies \
       $(b,--stream))."
    in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let idle_arg =
    let doc =
      "With $(b,--follow): give up waiting for more input after this many \
       seconds without the file growing."
    in
    Arg.(value & opt float 5.0 & info [ "idle-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let salvage_arg =
    let doc =
      "Salvage a damaged trace (implies $(b,--stream)): on a checksum or parse \
       failure, discard lines until the decode resynchronizes and analyze the \
       surviving events.  If anything was lost the verdict is degraded (exit \
       3): races are reported among survivors, but race-freedom is never \
       claimed.  An undamaged trace produces the exact batch report."
    in
    Arg.(value & flag & info [ "salvage" ] ~doc)
  in
  let checkpoint_arg =
    let doc =
      "Persist the analysis state to $(docv) every $(b,--checkpoint-every) \
       events (implies $(b,--stream)).  If $(docv) already exists, resume \
       from it instead of re-reading the prefix; the file is removed after a \
       successful report.  A resumed run prints the same report, byte for \
       byte, as an uninterrupted one."
    in
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)
  in
  let checkpoint_every_arg =
    let doc = "With $(b,--checkpoint): events between checkpoint writes." in
    Arg.(value & opt int 1000 & info [ "checkpoint-every" ] ~docv:"N" ~doc)
  in
  let robust_arg =
    let doc =
      "Check the observed trace for SC-explainability against $(docv) (a \
       stock program name or file): enumerate the program's SC executions \
       and decide whether some SC interleaving produces this trace's exact \
       event structure and synchronization values.  Exit 0 when explainable, \
       2 when the trace is a non-SC observation, 3 when the SC pool does \
       not enumerate.  Replaces the race report; batch layout only."
    in
    Arg.(value & opt (some string) None & info [ "robust" ] ~docv:"PROGRAM" ~doc)
  in
  let run file reconstruct stream follow max_live stats idle salvage ckpt
      ckpt_every order robust =
    let stream_mode =
      stream || follow || max_live <> None || stats || salvage || ckpt <> None
    in
    (match robust with
    | Some _ when stream_mode ->
      Format.eprintf
        "racedet: --robust needs the whole trace at once and is not \
         available with --stream@.";
      exit 1
    | _ -> ());
    if not stream_mode then begin
      let result =
        if Sys.file_exists file && Sys.is_directory file then Tracing.Codec.read_dir file
        else Tracing.Codec.read_file file
      in
      match result with
      | Error msg ->
        Format.eprintf "racedet: %s@." msg;
        exit 1
      | Ok t ->
        (match robust with
        | Some prog ->
          let p = or_fail (load_program prog) in
          or_fail (Minilang.Ast.validate p);
          (match Explore.Scpool.build p with
          | Error msg ->
            Format.eprintf "racedet: %s@." msg;
            exit 3
          | Ok pool ->
            let n_events =
              Array.fold_left
                (fun acc evs -> acc + Array.length evs)
                0 t.Tracing.Trace.by_proc
            in
            let ok = Explore.Scpool.trace_explainable pool t in
            Format.printf
              "trace %s: %d event(s) across %d processor(s)@.SC \
               explainability against %s (%d SC behaviour(s)): %s@."
              file n_events
              (Array.length t.Tracing.Trace.by_proc)
              p.Minilang.Ast.name (Explore.Scpool.size pool)
              (if ok then "explainable — some SC interleaving produces this trace"
               else "NOT explainable — no SC interleaving produces this trace");
            if not ok then exit 2)
        | None ->
          let so1 = if reconstruct then `Reconstructed else `Recorded in
          let a = Racedetect.Postmortem.analyze ~so1 ~order t in
          Format.printf "%a@." (Racedetect.Report.pp_analysis ?loc_name:None) a;
          if not (Racedetect.Postmortem.race_free a) then exit 2)
    end
    else begin
      (match max_live with
       | Some k when k < 1 ->
         Format.eprintf "racedet: --max-live must be at least 1@.";
         exit 1
       | _ -> ());
      if ckpt_every < 1 then begin
        Format.eprintf "racedet: --checkpoint-every must be at least 1@.";
        exit 1
      end;
      if reconstruct then begin
        Format.eprintf
          "racedet: --reconstruct-so1 is not available with --stream (streaming \
           consumes the recorded pairing)@.";
        exit 1
      end;
      if Sys.file_exists file && Sys.is_directory file then begin
        Format.eprintf
          "racedet: --stream reads a single trace file, not a split directory@.";
        exit 1
      end;
      match
        stream_drive ?max_live ~salvage ~follow ~idle ~ckpt ~ckpt_every file
      with
      | Error msg ->
        Format.eprintf "racedet: %s@." msg;
        exit 1
      | Ok (v, st) ->
        (* the streaming driver analyzes under hb1; the SHB extras are a
           pure post-pass over the verdict it hands back *)
        let v =
          Racedetect.Postmortem.verdict_map
            (Racedetect.Postmortem.with_order order)
            v
        in
        let code = print_verdict v in
        if stats then Format.eprintf "stream: %a@." Racedetect.Stream.pp_stats st;
        if code <> 0 then exit code
    end
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Post-mortem analysis of an existing trace file, batch or streaming \
          ($(b,--stream)); both modes print the same report.  $(b,--salvage) \
          analyzes damaged traces (degraded verdict, exit 3); \
          $(b,--checkpoint) makes a long analysis survive a kill.  \
          $(b,--order shb) additionally predicts suppressed races via the SHB \
          order; exit codes are unaffected by the order."
       ~exits:analysis_exits)
    Term.(
      const run $ file_arg $ reconstruct_arg $ stream_flag $ follow_arg
      $ max_live_arg $ stats_arg $ idle_arg $ salvage_arg $ checkpoint_arg
      $ checkpoint_every_arg $ order_arg $ robust_arg)

(* -- faultfuzz --------------------------------------------------------- *)

(* The fault-injection campaign: §5 warns that a racy program can
   overwrite its own trace buffers, so the decoder must fail loudly and
   the salvage path must stay sound however the bytes are damaged.  The
   campaign damages encoded traces with every injector Corrupt knows and
   asserts the robustness contract:

     1. no exception ever escapes the salvage pipeline — damaged input
        yields a verdict or a clean refusal, never a crash;
     2. an undamaged trace salvages to the exact batch report, and is
        never reported degraded;
     3. when salvage claims a clean decode, the strict pipeline accepts
        the same bytes and prints the identical report (so "clean" is
        never a euphemism for "lost something");
     4. anything else is a degraded verdict or a refusal — a lossy trace
        is never reported race-free;
     5. checkpointing at a random byte, abandoning the engine (the
        "kill"), restoring, and finishing reproduces the uninterrupted
        batch report byte-for-byte. *)

let faultfuzz_cmd =
  let seeds_arg =
    let doc = "Damage seeds per program, trace version and damage kind." in
    Arg.(value & opt int 200 & info [ "seeds" ] ~docv:"N" ~doc)
  in
  let program_arg =
    let doc = "Fuzz only this stock program (default: all of them)." in
    Arg.(value & opt (some string) None & info [ "program" ] ~docv:"NAME" ~doc)
  in
  let run seeds jobs program_filter =
    let jobs = resolve_jobs jobs in
    if seeds < 1 then begin
      Format.eprintf "racedet: --seeds must be at least 1@.";
      exit 1
    end;
    let report_of a =
      Format.asprintf "%a" (Racedetect.Report.pp_analysis ?loc_name:None) a
    in
    let programs =
      match program_filter with
      | None -> Minilang.Programs.all
      | Some n ->
        (match Minilang.Programs.find n with
         | Some p -> [ (n, p) ]
         | None ->
           or_fail (Error (Printf.sprintf "unknown stock program %S" n)))
    in
    (* one execution per program; every damage case reuses its encodings *)
    let fixtures =
      Array.of_list
        (List.map
           (fun (name, p) ->
             let e = exec_of p `Buffer Memsim.Model.WO `Adversarial 4_000 0 in
             let t = Tracing.Trace.of_execution e in
             let v1 = Tracing.Codec.encode_stream t in
             let v2 =
               Tracing.Codec.encode_stream
                 ~version:Tracing.Codec.version_checksummed t
             in
             (* the reference report is the batch analysis of the decoded
                file (op labels are not serialized, so analyzing the
                in-memory trace would print differently) *)
             let batch =
               match Tracing.Codec.decode v1 with
               | Ok t' -> report_of (Racedetect.Postmortem.analyze t')
               | Error e ->
                 or_fail
                   (Error (Printf.sprintf "%s: fixture decode failed: %s" name e))
             in
             (name, t, batch, v1, v2))
           programs)
    in
    let preflight = ref [] in
    let pre_fail name fmt =
      Printf.ksprintf (fun m -> preflight := (name ^ ": " ^ m) :: !preflight) fmt
    in
    Array.iter
      (fun (name, t, batch, v1, v2) ->
        List.iter
          (fun (vn, text) ->
            (match Tracing.Codec.decode text with
             | Ok t' when Tracing.Codec.equivalent t t' -> ()
             | Ok _ -> pre_fail name "v%d round-trip decoded a different trace" vn
             | Error e -> pre_fail name "v%d round-trip failed: %s" vn e);
            match Racedetect.Stream.analyze_salvage_string text with
            | exception ex ->
              pre_fail name "undamaged v%d salvage raised %s" vn
                (Printexc.to_string ex)
            | Error e -> pre_fail name "undamaged v%d salvage refused: %s" vn e
            | Ok (v, _) ->
              (match v with
               | Racedetect.Postmortem.Degraded _ ->
                 pre_fail name "undamaged v%d trace reported degraded" vn
               | v ->
                 if report_of (Racedetect.Postmortem.verdict_analysis v) <> batch
                 then
                   pre_fail name "undamaged v%d salvage report differs from batch"
                     vn))
          [ (1, v1); (2, v2) ];
        let batch_enc =
          [ (1, Tracing.Codec.encode t);
            (2, Tracing.Codec.encode ~version:Tracing.Codec.version_checksummed t)
          ]
        in
        List.iter
          (fun (vn, text) ->
            match Tracing.Codec.decode text with
            | Ok t' when Tracing.Codec.equivalent t t' -> ()
            | Ok _ ->
              pre_fail name "batch-layout v%d round-trip decoded a different trace"
                vn
            | Error e -> pre_fail name "batch-layout v%d round-trip failed: %s" vn e)
          batch_enc)
      fixtures;
    let damage_name =
      let open Tracing.Corrupt in
      function
      | Garble_bytes n -> Printf.sprintf "garble:%d" n
      | Drop_lines n -> Printf.sprintf "drop-lines:%d" n
      | Swap_events -> "swap-events"
      | Truncate_tail n -> Printf.sprintf "truncate:%d" n
      | Flip_bits n -> Printf.sprintf "flip-bits:%d" n
      | Duplicate_lines n -> Printf.sprintf "dup-lines:%d" n
    in
    let kinds seed =
      let open Tracing.Corrupt in
      [ Garble_bytes (1 + (seed mod 7));
        Drop_lines (1 + (seed mod 3));
        Swap_events;
        Truncate_tail (1 + (seed * 13 mod 160));
        Flip_bits (1 + (seed mod 5));
        Duplicate_lines (1 + (seed mod 3))
      ]
    in
    let run_case label ~batch ~orig damaged =
      match Racedetect.Stream.analyze_salvage_string damaged with
      | exception ex ->
        `Fail (Printf.sprintf "%s: salvage raised %s" label (Printexc.to_string ex))
      | Error _ -> `Refused
      | Ok (v, _) ->
        let rep = report_of (Racedetect.Postmortem.verdict_analysis v) in
        (match v with
         | Racedetect.Postmortem.Degraded _ ->
           if damaged = orig then
             `Fail (label ^ ": undamaged trace reported degraded")
           else `Degraded
         | Racedetect.Postmortem.Race_free _ | Racedetect.Postmortem.Races _ ->
           if damaged = orig then
             if rep = batch then `Clean
             else `Fail (label ^ ": no-op damage changed the report")
           else (
             (* clean claim on altered bytes: the strict pipeline must
                agree on those bytes, or information was silently lost *)
             match Racedetect.Stream.analyze_string damaged with
             | exception ex ->
               `Fail
                 (Printf.sprintf "%s: strict raised %s where salvage was clean"
                    label (Printexc.to_string ex))
             | Error e ->
               `Fail
                 (Printf.sprintf
                    "%s: salvage claims a clean decode but strict analysis \
                     fails (%s)"
                    label e)
             | Ok (a, _) ->
               if report_of a = rep then `Clean
               else `Fail (label ^ ": clean salvage report differs from strict")))
    in
    let resume_check label ~batch text seed =
      let ckpt = Filename.temp_file "racedet-fuzz" ".ckpt" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove ckpt with Sys_error _ -> ())
        (fun () ->
          let cut = seed * 7919 mod (String.length text + 1) in
          let engine = Racedetect.Stream.create () in
          let d = Tracing.Codec.decoder () in
          let push () r = Racedetect.Stream.push engine r in
          match Tracing.Codec.feed d (String.sub text 0 cut) ~f:push () with
          | Error e -> `Fail (Printf.sprintf "%s: prefix feed failed: %s" label e)
          | Ok () ->
            Racedetect.Stream.checkpoint ckpt engine
              ~extra:(false, Cs_strict d, cut);
            (* the engine above is abandoned here — the simulated kill *)
            (match
               (Racedetect.Stream.restore ckpt
                 : (Racedetect.Stream.t * (bool * codec_state * int), string)
                   result)
             with
             | Error e -> `Fail (Printf.sprintf "%s: restore failed: %s" label e)
             | Ok (_, (_, Cs_salvage _, _)) ->
               `Fail (label ^ ": restore changed the codec kind")
             | Ok (engine2, (_, Cs_strict d2, pos)) ->
               let push2 () r = Racedetect.Stream.push engine2 r in
               let rest = String.sub text pos (String.length text - pos) in
               (match Tracing.Codec.feed d2 rest ~f:push2 () with
                | Error e ->
                  `Fail (Printf.sprintf "%s: resumed feed failed: %s" label e)
                | Ok () ->
                  (match Tracing.Codec.finish_feed d2 ~f:push2 () with
                   | Error e ->
                     `Fail (Printf.sprintf "%s: resumed finish failed: %s" label e)
                   | Ok () ->
                     (match Racedetect.Stream.finish engine2 with
                      | Error e ->
                        `Fail
                          (Printf.sprintf "%s: resumed analysis failed: %s" label
                             e)
                      | Ok (a, _) ->
                        if report_of a = batch then `Clean
                        else `Fail (label ^ ": resumed report differs from batch"))))))
    in
    let results =
      Engine.Parbatch.map_seeds ~jobs seeds (fun seed ->
          let cases = ref 0
          and degraded = ref 0
          and refused = ref 0
          and clean = ref 0
          and fails = ref [] in
          let record = function
            | `Fail m ->
              incr cases;
              fails := m :: !fails
            | `Degraded -> incr cases; incr degraded
            | `Refused -> incr cases; incr refused
            | `Clean -> incr cases; incr clean
          in
          Array.iter
            (fun (name, _t, batch, v1, v2) ->
              List.iter
                (fun damage ->
                  List.iter
                    (fun (vn, text) ->
                      let damaged = Tracing.Corrupt.apply ~seed damage text in
                      let label =
                        Printf.sprintf "%s v%d seed %d %s" name vn seed
                          (damage_name damage)
                      in
                      record (run_case label ~batch ~orig:text damaged))
                    [ (1, v1); (2, v2) ])
                (kinds seed);
              record
                (resume_check
                   (Printf.sprintf "%s seed %d kill+resume" name seed)
                   ~batch v2 seed))
            fixtures;
          (!cases, !degraded, !refused, !clean, List.rev !fails))
    in
    let cases = ref 0
    and degraded = ref 0
    and refused = ref 0
    and clean = ref 0
    and failures = ref (List.rev !preflight) in
    Array.iter
      (fun (c, d, r, cl, fs) ->
        cases := !cases + c;
        degraded := !degraded + d;
        refused := !refused + r;
        clean := !clean + cl;
        failures := !failures @ fs)
      results;
    let failures = !failures in
    Format.printf
      "faultfuzz: %d program(s) x %d seed(s): %d case(s) — %d clean, %d \
       degraded, %d refused, %d invariant violation(s)@."
      (Array.length fixtures) seeds !cases !clean !degraded !refused
      (List.length failures);
    List.iteri
      (fun i m -> if i < 20 then Format.printf "  FAIL %s@." m)
      failures;
    (match List.length failures with
     | n when n > 20 -> Format.printf "  ... and %d more@." (n - 20)
     | _ -> ());
    if failures <> [] then exit 1
  in
  let exits =
    Cmd.Exit.info 0 ~doc:"every robustness invariant held."
    :: Cmd.Exit.info 1 ~doc:"usage error, or at least one invariant violation."
    :: List.filter (fun i -> Cmd.Exit.info_code i > 1) Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "faultfuzz"
       ~doc:
         "Fault-injection campaign over the trace pipeline: damage encoded \
          traces (garbled bytes, flipped bits, dropped / duplicated / swapped \
          / truncated lines), salvage-analyze the wreckage, and assert that \
          no exception escapes, that lossy traces are never reported \
          race-free, that clean salvages match the strict report byte for \
          byte, and that checkpoint / kill / restore reproduces the batch \
          report exactly."
       ~exits)
    Term.(const run $ seeds_arg $ jobs_arg $ program_arg)

(* -- enumerate ---------------------------------------------------------- *)

let enumerate_cmd =
  let limit_arg =
    let doc = "Stop after this many explored SC schedules." in
    Arg.(value & opt int 100_000 & info [ "limit" ] ~doc)
  in
  let naive_arg =
    let doc =
      "Visit every schedule instead of the DPOR-reduced set (same behaviours, \
       exponentially more schedules; kept for differential testing)."
    in
    Arg.(value & flag & info [ "naive" ] ~doc)
  in
  let run program limit naive =
    let p = or_fail (load_program program) in
    let mk () = Minilang.Interp.source p in
    let execs, complete =
      if naive then
        let r = Memsim.Enumerate.explore ~limit mk in
        (r.Memsim.Enumerate.executions, r.Memsim.Enumerate.complete)
      else
        let r = Explore.Dpor.explore ~limit ~model:Memsim.Model.SC mk in
        (r.Explore.Dpor.executions, r.Explore.Dpor.complete)
    in
    let racy =
      List.filter
        (fun e ->
          Racedetect.Postmortem.data_races (Racedetect.Postmortem.analyze_execution e)
          <> [])
        execs
    in
    Format.printf "%d sequentially consistent execution(s)%s%s@."
      (List.length execs)
      (if naive then "" else " (DPOR-reduced)")
      (if complete then "" else " (incomplete)");
    Format.printf "%d exhibit data races@." (List.length racy);
    if racy <> [] then begin
      Format.printf "the program is NOT data-race-free (Def 2.4)@.";
      exit 2
    end
    else if complete then
      Format.printf "the program is data-race-free: every weak execution is SC@."
    else begin
      Format.printf "exploration incomplete: no verdict@.";
      exit 1
    end
  in
  let exits =
    Cmd.Exit.info 0 ~doc:"every SC execution was covered and none races."
    :: Cmd.Exit.info 1
         ~doc:
           "usage error, or the exploration hit a bound before covering every \
            execution (no verdict)."
    :: Cmd.Exit.info 2 ~doc:"a racy SC execution was found (Def 2.4)."
    :: List.filter (fun i -> Cmd.Exit.info_code i > 2) Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "enumerate"
       ~doc:
         "Enumerate the SC executions (one representative per Mazurkiewicz \
          trace, via dynamic partial-order reduction) and decide whether the \
          program is data-race-free."
       ~exits)
    Term.(const run $ program_arg $ limit_arg $ naive_arg)

(* -- check (Condition 3.4) ---------------------------------------------- *)

let check_cmd =
  let seeds_arg =
    let doc = "Number of weak executions to check per model." in
    Arg.(value & opt int 10 & info [ "n"; "seeds" ] ~doc)
  in
  let limit_arg =
    let doc = "SC enumeration bound." in
    Arg.(value & opt int 200_000 & info [ "limit" ] ~doc)
  in
  let exhaustive_arg =
    let doc =
      "Check every schedule of every weak model (store-buffer machine only; \
       litmus-sized, loop-free programs)."
    in
    Arg.(value & flag & info [ "exhaustive" ] ~doc)
  in
  let run program machine n limit exhaustive jobs =
    let jobs = resolve_jobs jobs in
    let p = or_fail (load_program program) in
    let r = Memsim.Enumerate.explore ~limit (fun () -> Minilang.Interp.source p) in
    if not r.Memsim.Enumerate.complete then begin
      Format.eprintf
        "racedet: SC enumeration incomplete; Condition 3.4 cannot be decided@.";
      exit 1
    end;
    let pool = r.Memsim.Enumerate.executions in
    let failures = ref 0 in
    let total = ref 0 in
    let report model tag v =
      incr total;
      if not v.Racedetect.Condition.holds then begin
        incr failures;
        Format.printf "%s %s: %a@." (Memsim.Model.name model) tag
          Racedetect.Condition.pp_verdict v
      end
    in
    List.iter
      (fun model ->
        if exhaustive then begin
          (* DPOR covers every behaviour class of the weak decision space
             with exponentially fewer schedules than [explore_weak]; the
             SC pool above stays naive because Condition needs the full
             execution pool for its SCP witness search *)
          let w =
            Explore.Dpor.explore ~limit ~model (fun () ->
                Minilang.Interp.source p)
          in
          if not w.Explore.Dpor.complete then begin
            Format.eprintf "racedet: weak exploration incomplete for %s@."
              (Memsim.Model.name model);
            exit 1
          end;
          let behaviours = Memsim.Enumerate.behaviours w.Explore.Dpor.executions in
          Engine.Parbatch.map_list ~jobs
            (fun e -> Racedetect.Condition.check ~sc:pool e)
            behaviours
          |> List.iteri (fun i v -> report model (Printf.sprintf "schedule %d" i) v)
        end
        else
          (* verdicts computed in parallel; reported in seed order *)
          Engine.Parbatch.map_seeds ~jobs n (fun seed ->
              let e =
                match machine with
                | `Buffer ->
                  Minilang.Interp.run ~model
                    ~sched:(Memsim.Sched.adversarial ~seed ())
                    p
                | `Cache ->
                  Coherence.Cmachine.run_program ~model
                    ~sched:(Memsim.Sched.adversarial ~seed ())
                    p
              in
              Racedetect.Condition.check ~sc:pool e)
          |> Array.iteri (fun seed v -> report model (Printf.sprintf "seed=%d" seed) v))
      Memsim.Model.weak;
    if !failures = 0 then
      Format.printf "Condition 3.4 obeyed on all %d weak executions%s@." !total
        (if exhaustive then " (exhaustive behaviour coverage)" else "")
    else begin
      Format.printf "%d violation(s)@." !failures;
      exit 2
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Verify Condition 3.4 (Theorem 3.5) on weak executions of a program, \
          against exhaustive SC enumeration.")
    Term.(
      const run $ program_arg $ machine_arg $ seeds_arg $ limit_arg $ exhaustive_arg
      $ jobs_arg)

(* -- sweep ----------------------------------------------------------------- *)

let sweep_cmd =
  let seeds_arg =
    let doc = "Schedules per model." in
    Arg.(value & opt int 100 & info [ "n"; "seeds" ] ~doc)
  in
  let run program machine n max_steps =
    let p = or_fail (load_program program) in
    Format.printf "%-6s %8s %10s %12s %12s@." "model" "runs" "racy-runs"
      "races(max)" "truncated";
    List.iter
      (fun model ->
        if not (machine = `Cache && Memsim.Model.fifo_buffer model) then begin
          let racy = ref 0 and max_races = ref 0 and truncated = ref 0 in
          for seed = 0 to n - 1 do
            let e =
              match machine with
              | `Buffer ->
                Minilang.Interp.run ~max_steps ~model
                  ~sched:(Memsim.Sched.adversarial ~seed ()) p
              | `Cache ->
                Coherence.Cmachine.run_program ~max_steps ~model
                  ~sched:(Memsim.Sched.adversarial ~seed ()) p
            in
            if e.Memsim.Exec.truncated then incr truncated;
            let races =
              List.length
                (Racedetect.Postmortem.data_races
                   (Racedetect.Postmortem.analyze_execution e))
            in
            if races > 0 then incr racy;
            if races > !max_races then max_races := races
          done;
          Format.printf "%-6s %8d %10d %12d %12d@." (Memsim.Model.name model) n !racy
            !max_races !truncated
        end)
      Memsim.Model.all
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Fuzz a program: run many adversarial schedules on every model and \
          summarize how often data races actually materialize.")
    Term.(const run $ program_arg $ machine_arg $ seeds_arg $ max_steps_arg)

(* -- graph (DOT export) --------------------------------------------------- *)

let graph_cmd =
  let out_arg =
    let doc = "Write the DOT graph here instead of standard output." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run program machine model sched seed max_steps out =
    let p, e = run_exec program machine model sched seed max_steps in
    let a = Racedetect.Postmortem.analyze_execution e in
    let dot = Racedetect.Report.to_dot ~loc_name:(Minilang.Ast.loc_name p) a in
    match out with
    | None -> print_string dot
    | Some path ->
      Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc dot);
      Format.printf "wrote %s@." path
  in
  Cmd.v
    (Cmd.info "graph"
       ~doc:
         "Emit the augmented happens-before-1 graph (Figure 3 style) as Graphviz \
          DOT: po edges solid, so1 dashed, races red and doubly directed, first \
          partitions highlighted.")
    Term.(
      const run $ program_arg $ machine_arg $ model_arg $ sched_arg $ seed_arg
      $ max_steps_arg $ out_arg)

(* -- gen (random programs) ------------------------------------------------ *)

let gen_cmd =
  let kind_arg =
    let doc = "Population: $(b,racy), $(b,racefree) (Test&Set/Unset) or $(b,racefree-ra) (release/acquire)." in
    Arg.(
      value
      & opt (enum [ ("racy", `Racy); ("racefree", `Racefree); ("racefree-ra", `Ra) ]) `Racy
      & info [ "k"; "kind" ] ~docv:"KIND" ~doc)
  in
  let gen_seed_arg =
    let doc = "Generator seed." in
    Arg.(value & opt int 0 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)
  in
  let procs_arg =
    let doc = "Processors." in
    Arg.(value & opt int 2 & info [ "procs" ] ~doc)
  in
  let ops_arg =
    let doc = "Operations per processor." in
    Arg.(value & opt int 4 & info [ "ops" ] ~doc)
  in
  let run kind seed procs ops =
    let config =
      { Minilang.Gen.default_config with Minilang.Gen.n_procs = procs; ops_per_proc = ops }
    in
    let p =
      match kind with
      | `Racy -> Minilang.Gen.random_racy ~config ~seed ()
      | `Racefree -> Minilang.Gen.random_racefree ~config ~seed ()
      | `Ra -> Minilang.Gen.random_racefree_ra ~config ~seed ()
    in
    let p = { p with Minilang.Ast.name = "generated" } in
    print_string (Minilang.Parser.to_source p)
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "Emit a random program (in the concrete syntax) from the Monte-Carlo \
          populations used to validate Condition 3.4.")
    Term.(const run $ kind_arg $ gen_seed_arg $ procs_arg $ ops_arg)

(* -- replay (SCP debugger) ----------------------------------------------- *)

let replay_cmd =
  let limit_arg =
    let doc = "SC enumeration bound for the ground-truth pool." in
    Arg.(value & opt int 500_000 & info [ "limit" ] ~doc)
  in
  let watch_arg =
    let doc = "Named location to put a watchpoint on (repeatable)." in
    Arg.(value & opt_all string [] & info [ "w"; "watch" ] ~docv:"LOC" ~doc)
  in
  let run program model sched seed max_steps limit watches =
    let p = or_fail (load_program program) in
    let weak =
      Minilang.Interp.run ~max_steps ~model ~sched:(make_sched sched seed) p
    in
    let r = Memsim.Enumerate.explore ~limit (fun () -> Minilang.Interp.source p) in
    if not r.Memsim.Enumerate.complete then begin
      Format.eprintf "racedet: SC enumeration incomplete; prefix replay needs ground truth@.";
      exit 1
    end;
    match
      Racedetect.Scpreplay.of_weak_execution ~sc:r.Memsim.Enumerate.executions
        ~source:(fun () -> Minilang.Interp.source p)
        weak
    with
    | None -> Format.eprintf "racedet: empty SC pool@."; exit 1
    | Some session ->
      let loc_name = Minilang.Ast.loc_name p in
      Format.printf "%a@." (Racedetect.Scpreplay.pp_session ~loc_name) session;
      List.iter
        (fun name ->
          match List.assoc_opt name p.Minilang.Ast.symbols with
          | None -> Format.eprintf "racedet: unknown location %S@." name
          | Some loc ->
            Format.printf "@.watch %s:" name;
            List.iter
              (fun (step, v) -> Format.printf " [step %d] %d" step v)
              (Racedetect.Scpreplay.watch session loc);
            Format.printf "@.")
        watches
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Replay the sequentially consistent prefix of a weak execution on an SC           machine, with optional watchpoints — §5's \"debug the SC part with SC           tools\".")
    Term.(
      const run $ program_arg $ model_arg $ sched_arg $ seed_arg $ max_steps_arg
      $ limit_arg $ watch_arg)

(* -- cost ---------------------------------------------------------------- *)

let cost_cmd =
  let run program seed =
    let p = or_fail (load_program program) in
    Format.printf "%-6s %10s %12s@." "model" "cycles" "stalls";
    List.iter
      (fun model ->
        let e =
          Minilang.Interp.run ~model ~sched:(Memsim.Sched.adversarial ~seed ()) p
        in
        let est = Memsim.Cost.estimate ~mode:model e in
        Format.printf "%-6s %10d %12d@." (Memsim.Model.name model)
          est.Memsim.Cost.makespan est.Memsim.Cost.stall_cycles)
      Memsim.Model.all
  in
  Cmd.v
    (Cmd.info "cost"
       ~doc:
         "Estimate execution time under each model's stall policy (the price of a \
          sequentially consistent debug mode).")
    Term.(const run $ program_arg $ seed_arg)

(* -- triage ------------------------------------------------------------ *)

let triage_exits =
  Cmd.Exit.info 0
    ~doc:
      "every data candidate was REFUTED (or none existed): within the \
       exploration bounds the program is data-race-free."
  :: Cmd.Exit.info 1 ~doc:"usage or I/O error."
  :: Cmd.Exit.info 2 ~doc:"at least one data candidate was CONFIRMED by a witness execution."
  :: Cmd.Exit.info 3
       ~doc:
         "no candidate was confirmed but at least one is UNKNOWN (an \
          exploration bound was hit before the candidate could be refuted)."
  :: List.filter (fun i -> Cmd.Exit.info_code i > 3) Cmd.Exit.defaults

let triage_steps_arg =
  let doc =
    "Truncate explored schedules after this many machine steps (truncation \
     downgrades refutations to UNKNOWN)."
  in
  Arg.(value & opt int 400 & info [ "max-steps" ] ~docv:"N" ~doc)

let triage_limit_arg =
  let doc = "Explore at most this many schedules per candidate." in
  Arg.(value & opt int 2_000 & info [ "limit" ] ~docv:"N" ~doc)

let write_witnesses dir (r : Explore.Triage.report) =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  List.iteri
    (fun i (v : Explore.Triage.verdict) ->
      match v.Explore.Triage.witness with
      | None -> ()
      | Some w ->
        let path = Filename.concat dir (Printf.sprintf "cand%d.trace" i) in
        or_fail (Explore.Triage.write_witness path w);
        Format.printf "witness for candidate %d written to %s (verified by re-analysis)@."
          i path)
    r.Explore.Triage.data

let run_triage p ~max_steps ~limit ~sync ~jobs ~model ~witness_dir =
  or_fail (Minilang.Ast.validate p);
  let r = Explore.Triage.run ~max_steps ~limit ~sync ~jobs ~model p in
  Format.printf "%a@." Explore.Triage.pp r;
  Option.iter (fun dir -> write_witnesses dir r) witness_dir;
  Explore.Triage.exit_code r

let sc_model_arg =
  let doc =
    "Memory model whose decision space is explored.  The default SC is the \
     canonical choice: Definition 2.4 defines data-race-freedom through the \
     sequentially consistent executions."
  in
  Arg.(
    value
    & opt model_conv Memsim.Model.SC
    & info [ "m"; "model" ] ~docv:"MODEL" ~doc)

let witness_dir_arg =
  let doc =
    "Write each CONFIRMED candidate's minimal witness to $(docv)/candN.trace \
     (checksummed v2 format); each file is verified by decoding it back and \
     re-running the analysis, and replays through $(b,racedet analyze) to a \
     report containing the race."
  in
  Arg.(value & opt (some string) None & info [ "witness-dir" ] ~docv:"DIR" ~doc)

let triage_cmd =
  let sync_flag =
    let doc = "Also triage the unordered sync-sync pairs (informational)." in
    Arg.(value & flag & info [ "sync" ] ~doc)
  in
  let run program max_steps limit sync jobs model witness_dir =
    let jobs = resolve_jobs jobs in
    let p = or_fail (load_program program) in
    exit (run_triage p ~max_steps ~limit ~sync ~jobs ~model ~witness_dir)
  in
  Cmd.v
    (Cmd.info "triage"
       ~doc:
         "Classify every static race candidate ($(b,racedet lint)) by \
          candidate-directed bounded exploration: CONFIRMED with a minimal \
          replayable witness trace, REFUTED by complete DPOR coverage within \
          the bounds, or UNKNOWN when a bound was hit."
       ~exits:triage_exits)
    Term.(
      const run $ program_arg $ triage_steps_arg $ triage_limit_arg $ sync_flag
      $ jobs_arg $ sc_model_arg $ witness_dir_arg)

(* -- variants ---------------------------------------------------------- *)

let variants_cmd =
  let seeds_arg =
    let doc =
      "Seeds per variant x program cell (even seeds use the adversarial \
       scheduler, odd seeds the uniform one)."
    in
    Arg.(value & opt int 16 & info [ "n"; "seeds" ] ~doc)
  in
  let witness_arg =
    let doc =
      "Write each violating variant's minimized breaking schedule to \
       $(docv)/<variant>-<check>.trace (checksummed v2 format); every file is \
       verified by replaying the schedule to a byte-identical trace and by \
       decoding + re-analyzing it."
    in
    Arg.(value & opt (some string) None & info [ "witness-dir" ] ~docv:"DIR" ~doc)
  in
  let run seeds jobs witness_dir =
    let jobs = resolve_jobs jobs in
    let r = Explore.Vcampaign.run ~seeds ~jobs ?witness_dir () in
    Format.printf "%a@." Explore.Vcampaign.pp r;
    exit (Explore.Vcampaign.exit_code r)
  in
  let exits =
    Cmd.Exit.info 0 ~doc:"every verdict matches the lattice prediction"
    :: Cmd.Exit.info 1
         ~doc:
           "a verdict diverged from its prediction, or a witness failed \
            verification"
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "variants"
       ~doc:
         "Sweep the hardware-variant lattice (canonical models, bounded \
          buffers, stalling/bypassing reads, weakened drains) over the stock \
          litmus programs and seeds, asserting per variant whether Condition \
          3.4 is preserved and whether fences really order buffered writes; \
          violating variants get minimized, replayable v2 witness traces."
       ~exits)
    Term.(const run $ seeds_arg $ jobs_arg $ witness_arg)

(* -- lint -------------------------------------------------------------- *)

let json_flag =
  let doc =
    "Emit a machine-readable JSON report instead of the text one (stable \
     schema, locked by the test suite); exit status is unchanged."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let lint_cmd =
  let run program sync model triage json max_steps limit jobs witness_dir =
    let p = or_fail (load_program program) in
    or_fail (Minilang.Ast.validate p);
    if json && triage then begin
      Format.eprintf "racedet: --json and --triage are mutually exclusive@.";
      exit 1
    end;
    let r = Staticcheck.Lint.analyze p in
    let delays = Staticcheck.Delayset.analyze p r.Staticcheck.Lint.results in
    if json then
      print_endline
        (Staticcheck.Jsonout.to_string (Staticcheck.Jsonout.lint ~delays r))
    else
      Format.printf "%a@."
        (Staticcheck.Lint.pp ?model ~show_sync:sync ~delays)
        r;
    if triage then begin
      let jobs = resolve_jobs jobs in
      Format.printf "@.";
      exit
        (run_triage p ~max_steps ~limit ~sync ~jobs ~model:Memsim.Model.SC
           ~witness_dir)
    end
    else if r.Staticcheck.Lint.data_candidates <> [] then exit 2
  in
  let sync_arg =
    let doc = "Itemize the unordered sync-sync pairs instead of counting them." in
    Arg.(value & flag & info [ "sync" ] ~doc)
  in
  let triage_arg =
    let doc =
      "Follow the static report with a dynamic triage of every candidate \
       (see $(b,racedet triage)); the exit status becomes the triage one."
    in
    Arg.(value & flag & info [ "triage" ] ~doc)
  in
  let model_opt_arg =
    let doc =
      "Keep only the discipline findings relevant to this model (default: all)."
    in
    Arg.(
      value
      & opt (some model_conv) None
      & info [ "m"; "model" ] ~docv:"MODEL" ~doc)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically check synchronization discipline and list candidate race \
          pairs (a sound over-approximation: exits 2 when data candidates \
          exist, 0 when the program is statically race-free).  Every data \
          candidate carries its delay-set explanation: the critical cycle \
          witnessing how weak hardware could order it, or a note that no \
          cycle exists.  With $(b,--triage), follow up with the dynamic \
          classification of every candidate; with $(b,--json), emit the \
          machine-readable report.")
    Term.(
      const run $ program_arg $ sync_arg $ model_opt_arg $ triage_arg
      $ json_flag $ triage_steps_arg $ triage_limit_arg $ jobs_arg
      $ witness_dir_arg)

(* -- fence ------------------------------------------------------------- *)

let status_str = function
  | Explore.Triage.Confirmed -> "CONFIRMED"
  | Explore.Triage.Refuted -> "REFUTED"
  | Explore.Triage.Unknown -> "UNKNOWN"

let fence_json (plan : Staticcheck.Repair.t)
    (check : Explore.Repaircheck.t option) =
  let open Staticcheck.Jsonout in
  let module R = Staticcheck.Repair in
  let module D = Staticcheck.Delayset in
  let p = plan.R.original in
  let ds = plan.R.delays0 in
  let access_json i = of_access p (D.access ds i) in
  let fence_site (f : R.fence_site) =
    Obj
      [
        ("proc", Int f.R.fn_proc);
        ("after", Str (Minilang.Ast.path_to_string f.R.fn_after));
        ("covers", Int f.R.fn_covers);
      ]
  in
  let promotion (pr : R.promotion) =
    Obj
      [
        ("proc", Int pr.R.pr_proc);
        ("path", Str (Minilang.Ast.path_to_string pr.R.pr_path));
        ("label", match pr.R.pr_label with Some l -> Str l | None -> Null);
        ("from", Str (if pr.R.pr_store then "store" else "load"));
        ("to", Str (if pr.R.pr_store then "release" else "acquire"));
        ("forced", Bool pr.R.pr_forced);
      ]
  in
  let verify_json (c : Explore.Repaircheck.t) =
    let module RC = Explore.Repaircheck in
    Obj
      [
        ( "models",
          List (List.map (fun m -> Str (Memsim.Model.name m)) c.RC.models) );
        ( "candidates",
          List
            (List.map
               (fun (cc : RC.cand_check) ->
                 Obj
                   [
                     ("index", Int cc.RC.cc_index);
                     ("before", Str (status_str cc.RC.cc_before));
                     ( "after",
                       List
                         (List.map
                            (fun (mv : RC.model_verdict) ->
                              Obj
                                [
                                  ("model", Str (Memsim.Model.name mv.RC.mv_model));
                                  ("status", Str (status_str mv.RC.mv_status));
                                  ("schedules", Int mv.RC.mv_schedules);
                                ])
                            cc.RC.cc_after) );
                   ])
               c.RC.checks) );
        ( "cond34",
          match c.RC.cond34 with
          | RC.Cond_pass { weak_runs; sc_pool } ->
            Obj
              [
                ("status", Str "pass");
                ("weak_runs", Int weak_runs);
                ("sc_pool", Int sc_pool);
              ]
          | RC.Cond_fail m -> Obj [ ("status", Str "fail"); ("detail", Str m) ]
          | RC.Cond_skipped m ->
            Obj [ ("status", Str "skipped"); ("detail", Str m) ] );
        ("verified", Bool (RC.verified c));
      ]
  in
  Obj
    [
      ("schema", Int 1);
      ("program", Str p.Minilang.Ast.name);
      ("model", Str (Memsim.Model.name plan.R.model));
      ( "delayset",
        Obj
          [
            ("accesses", Int (Array.length ds.D.accesses));
            ("conflicts", Int (List.length ds.D.conflicts));
            ("truncated", Bool ds.D.truncated);
            ("cycles", List (List.map (of_cycle ds) ds.D.cycles));
            ( "delays",
              List
                (List.map
                   (fun (u, v) ->
                     Obj [ ("from", access_json u); ("to", access_json v) ])
                   ds.D.delays) );
          ] );
      ( "repair",
        Obj
          [
            ( "fence_only",
              match plan.R.fence_only with
              | None -> Null
              | Some sites -> List (List.map fence_site sites) );
            ("promotions", List (List.map promotion plan.R.promotions));
            ("fences", List (List.map fence_site plan.R.fences));
            ("rounds", Int plan.R.rounds);
            ("statically_drf", Bool (R.statically_drf plan));
          ] );
      ( "verify",
        match check with Some c -> verify_json c | None -> Null );
    ]

let fence_cmd =
  let repair_arg =
    let doc = "Write the repaired program (concrete syntax) to $(docv)." in
    Arg.(value & opt (some string) None & info [ "repair" ] ~docv:"FILE" ~doc)
  in
  let explain_arg =
    let doc =
      "List every critical cycle and attach to each data candidate the cycle \
       that witnesses it (default: the first eight cycles, summary only)."
    in
    Arg.(value & flag & info [ "explain" ] ~doc)
  in
  let verify_arg =
    let doc =
      "Close the loop dynamically: re-triage every former data candidate on \
       the repaired program under every canonical buffering model (expecting \
       REFUTED everywhere) and check Condition 3.4 on the chosen model."
    in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let seeds_arg =
    let doc = "Weak runs for the Condition 3.4 check (with --verify)." in
    Arg.(value & opt int 16 & info [ "seeds" ] ~docv:"N" ~doc)
  in
  let sc_limit_arg =
    let doc =
      "SC enumeration budget for the Condition 3.4 check (with --verify); \
       spinning programs that exceed it skip the check (exit 3)."
    in
    Arg.(value & opt int 20_000 & info [ "sc-limit" ] ~docv:"N" ~doc)
  in
  let run program model repair_out explain verify json max_steps limit seeds
      sc_limit jobs =
    let p = or_fail (load_program program) in
    or_fail (Minilang.Ast.validate p);
    let plan = Staticcheck.Repair.plan ~model p in
    let check =
      if verify then
        let jobs = resolve_jobs jobs in
        Some
          (Explore.Repaircheck.run ~max_steps ~limit ~seeds ~sc_limit ~jobs
             plan)
      else None
    in
    (match repair_out with
    | Some path ->
      let oc = open_out path in
      output_string oc (Staticcheck.Repair.source plan);
      close_out oc
    | None -> ());
    let module R = Staticcheck.Repair in
    let module D = Staticcheck.Delayset in
    if json then print_endline (Staticcheck.Jsonout.to_string (fence_json plan check))
    else begin
      let ds = plan.R.delays0 in
      Format.printf "program %s: %d processors, %d locations@."
        p.Minilang.Ast.name
        (Array.length p.Minilang.Ast.procs)
        p.Minilang.Ast.n_locs;
      Format.printf "@.delay-set analysis (model %s):@."
        (Memsim.Model.name model);
      Format.printf "  %a@." D.pp ds;
      let n_cycles = List.length ds.D.cycles in
      let shown = if explain then n_cycles else min 8 n_cycles in
      List.iteri
        (fun i c ->
          if i < shown then
            Format.printf "  cycle %d: %a@." (i + 1) (D.pp_cycle ds) c)
        ds.D.cycles;
      if shown < n_cycles then
        Format.printf "  ... %d more cycle(s) (use --explain to list all)@."
          (n_cycles - shown);
      (match ds.D.delays with
      | [] -> ()
      | delays ->
        Format.printf "  delay pairs:@.";
        List.iter
          (fun d -> Format.printf "    %a@." (D.pp_delay ds) d)
          delays);
      if explain then begin
        match plan.R.lint0.Staticcheck.Lint.data_candidates with
        | [] -> ()
        | cands ->
          Format.printf "@.candidate explanations:@.";
          List.iter
            (fun c ->
              Format.printf "  %a@." (Staticcheck.Lint.pp_pair p) c;
              match D.cycle_for ds c with
              | Some cy -> Format.printf "    cycle: %a@." (D.pp_cycle ds) cy
              | None -> Format.printf "    %s@." (D.no_cycle_note ds))
            cands
      end;
      Format.printf "@.@[<v>%a@]@." R.pp plan;
      (match repair_out with
      | Some path -> Format.printf "@.repaired program written to %s@." path
      | None -> ());
      match check with
      | Some c -> Format.printf "@.%a@." Explore.Repaircheck.pp c
      | None -> ()
    end;
    match check with
    | Some c -> exit (Explore.Repaircheck.exit_code c)
    | None -> if not (R.statically_drf plan) then exit 2
  in
  let exits =
    Cmd.Exit.info 0
      ~doc:
        "a repair was synthesized (and, with $(b,--verify), every former \
         candidate was REFUTED on it and Condition 3.4 held)."
    :: Cmd.Exit.info 1 ~doc:"usage or I/O error."
    :: Cmd.Exit.info 2
         ~doc:
           "the repair left data candidates, a candidate survived on the \
            repaired program, or Condition 3.4 failed."
    :: Cmd.Exit.info 3
         ~doc:
           "inconclusive: an exploration bound was hit or the Condition 3.4 \
            check was skipped."
    :: List.filter (fun i -> Cmd.Exit.info_code i > 3) Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "fence"
       ~doc:
         "Shasha-Snir delay-set analysis and verified repair: enumerate the \
          critical cycles of the static conflict graph, compute the delay \
          pairs, and synthesize the minimal variant-aware repair — fence \
          insertions where the model's fence class drains, release/acquire \
          promotions for the verified data-race-free program.  With \
          $(b,--repair) write the repaired program; with $(b,--verify) prove \
          it dynamically (triage REFUTES every former candidate; Condition \
          3.4 holds)."
       ~exits)
    Term.(
      const run $ program_arg $ model_arg $ repair_arg $ explain_arg
      $ verify_arg $ json_flag $ triage_steps_arg $ triage_limit_arg
      $ seeds_arg $ sc_limit_arg $ jobs_arg)

(* -- robust ------------------------------------------------------------ *)

let robust_json (t : Explore.Robustcheck.t) =
  let open Staticcheck.Jsonout in
  let module RB = Staticcheck.Robust in
  let module RC = Explore.Robustcheck in
  let module D = Staticcheck.Delayset in
  let s = t.RC.static_ in
  let ds = s.RB.ds in
  let p = t.RC.program in
  let access_json i = of_access p (D.access ds i) in
  let kind_str = function
    | Memsim.Variant.Delay_wr -> "wr"
    | Memsim.Variant.Delay_ww -> "ww"
    | Memsim.Variant.Delay_own_read -> "own-read"
  in
  let edge_json (e : RB.edge) =
    Obj
      [
        ("from", access_json e.RB.e_u);
        ("to", access_json e.RB.e_v);
        ("breakable", Bool e.RB.e_breakable);
        ( "kind",
          match e.RB.e_kind with Some k -> Str (kind_str k) | None -> Null );
        ("reason", Str e.RB.e_reason);
      ]
  in
  let cycle_json (cv : RB.cycle_verdict) =
    Obj
      [
        ("feasible", Bool cv.RB.c_feasible);
        ("cycle", of_cycle ds cv.RB.c_cycle);
        ("edges", List (List.map edge_json cv.RB.c_edges));
      ]
  in
  let hazard_json (h : RB.hazard) =
    Obj
      [ ("write", access_json h.RB.h_write); ("read", access_json h.RB.h_read) ]
  in
  let witness_json (w : RC.witness) =
    Obj
      [
        ("schedule_steps", Int (List.length w.RC.w_schedule));
        ("operations", Int (Memsim.Exec.n_ops w.RC.w_exec));
        ("verified", Bool (w.RC.w_verified = Ok ()));
        ("path", match w.RC.w_path with Some p -> Str p | None -> Null);
      ]
  in
  Obj
    [
      ("schema", Int 1);
      ("program", Str p.Minilang.Ast.name);
      ("model", Str (Memsim.Model.name t.RC.model));
      ("verdict", Str (RC.verdict_str t));
      ("exit", Int (RC.exit_code t));
      ( "static",
        Obj
          [
            ("robust", Bool s.RB.robust);
            ("truncated", Bool s.RB.truncated);
            ( "breakable",
              Int
                (List.length
                   (List.filter (fun e -> e.RB.e_breakable) s.RB.edges)) );
            ("cycles", List (List.map cycle_json s.RB.cycles));
            ("hazards", List (List.map hazard_json s.RB.hazards));
          ] );
      ( "closure",
        match t.RC.verdict with
        | RC.Robust_verdict `Static -> Null
        | RC.Robust_verdict `Dynamic ->
          Obj
            [
              ("sc_behaviours", Int t.RC.sc_behaviours);
              ("schedules", Int t.RC.schedules);
              ("complete", Bool true);
              ("witness", Null);
            ]
        | RC.Not_robust w ->
          Obj
            [
              ("sc_behaviours", Int t.RC.sc_behaviours);
              ("schedules", Int t.RC.schedules);
              ("complete", Bool false);
              ("witness", witness_json w);
            ]
        | RC.Unknown msg ->
          Obj
            [
              ("sc_behaviours", Int t.RC.sc_behaviours);
              ("schedules", Int t.RC.schedules);
              ("complete", Bool false);
              ("detail", Str msg);
            ] );
      ( "frontier",
        List
          (List.map
             (fun (f : RB.frontier_entry) ->
               Obj
                 [
                   ("point", Str f.RB.f_name);
                   ("robust", Bool f.RB.f_robust);
                 ])
             t.RC.frontier) );
    ]

let robust_cmd =
  let explain_arg =
    let doc =
      "Attach the full static explanation: every critical cycle's po edges \
       with the delay kind that breaks them or the knob that enforces them, \
       and every bypass coherence hazard."
    in
    Arg.(value & flag & info [ "explain" ] ~doc)
  in
  let sc_limit_arg =
    let doc =
      "SC enumeration budget for the dynamic closure; spinning programs that \
       exceed it are UNKNOWN (exit 3)."
    in
    Arg.(value & opt int 100_000 & info [ "sc-limit" ] ~docv:"N" ~doc)
  in
  let max_steps_arg =
    let doc = "Machine steps per explored weak schedule." in
    Arg.(value & opt int 2_000 & info [ "max-steps" ] ~docv:"N" ~doc)
  in
  let limit_arg =
    let doc = "Weak schedules the dynamic closure may explore." in
    Arg.(value & opt int 100_000 & info [ "limit" ] ~docv:"N" ~doc)
  in
  let witness_dir_arg =
    let doc =
      "Write the minimized non-SC witness to $(docv)/<program>.robust.trace \
       (checksummed v2 format, replay + round-trip verified)."
    in
    Arg.(value & opt (some string) None & info [ "witness-dir" ] ~docv:"DIR" ~doc)
  in
  let run program model explain json witness_dir max_steps limit sc_limit =
    let p = or_fail (load_program program) in
    or_fail (Minilang.Ast.validate p);
    let witness_path =
      match witness_dir with
      | None -> None
      | Some dir ->
        if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
        Some (Filename.concat dir (p.Minilang.Ast.name ^ ".robust.trace"))
    in
    let t =
      Explore.Robustcheck.run ~max_steps ~limit ~sc_limit ?witness_path ~model
        p
    in
    if json then print_endline (Staticcheck.Jsonout.to_string (robust_json t))
    else Format.printf "%a@." (Explore.Robustcheck.pp ~explain) t;
    match Explore.Robustcheck.exit_code t with 0 -> () | c -> exit c
  in
  let exits =
    Cmd.Exit.info 0
      ~doc:
        "ROBUST: proved statically (no feasible critical cycle, no coherence \
         hazard) or dynamically (exhaustive closure, every behaviour \
         SC-explainable)."
    :: Cmd.Exit.info 1 ~doc:"usage or I/O error, or a witness failed verification."
    :: Cmd.Exit.info 2
         ~doc:"NOT ROBUST: a replay-verified non-SC witness was found."
    :: Cmd.Exit.info 3
         ~doc:
           "UNKNOWN: the exploration budget was hit or the SC pool did not \
            enumerate."
    :: List.filter (fun i -> Cmd.Exit.info_code i > 3) Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "robust"
       ~doc:
         "Static robustness certification with a dynamic closure: classify \
          every Shasha-Snir critical cycle as feasible or infeasible under \
          the model's hardware variant (mapping each program-order edge to \
          the store-buffer delay kind that would break it), prove ROBUST \
          when none is feasible, and otherwise hunt for a minimal non-SC \
          execution with candidate-directed DPOR, emitted as a \
          replay-verified v2 witness.  Reports the static verdict at every \
          lattice point ($(b,racedet variants)).  Robustness is orthogonal \
          to race-freedom: sb is racy and non-robust, iriw is racy yet \
          robust everywhere."
       ~exits)
    Term.(
      const run $ program_arg $ model_arg $ explain_arg $ json_flag
      $ witness_dir_arg $ max_steps_arg $ limit_arg $ sc_limit_arg)

(* -- serve / client / loadgen / chaos --------------------------------- *)

let addr_conv =
  let parse s =
    match Serve.Server.parse_addr s with Ok a -> Ok a | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, Serve.Server.pp_addr)

let connect_arg =
  let doc = "Daemon address: $(b,unix:PATH), $(b,tcp:HOST:PORT), or $(b,tcp:PORT)." in
  Arg.(
    required
    & opt (some addr_conv) None
    & info [ "c"; "connect" ] ~docv:"ADDR" ~doc)

let harness_programs_arg =
  let doc =
    "Programs to build traces from (stock names or files); repeatable.  \
     Defaults to a mixed racy/race-free stock set."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"PROGRAM" ~doc)

(* Default fixture set: stock programs of both verdicts plus two larger
   generated ones, so the corpus spans several v2 epoch marks (the
   checkpoint/resume scenarios need cut points well before the end). *)
let default_harness_programs () =
  let stock =
    List.map
      (fun n -> (n, or_fail (load_program n)))
      [ "fig1b"; "barrier_phases"; "lazy_init"; "counter_racy" ]
  in
  let config =
    { Minilang.Gen.n_procs = 4; n_shared = 6; n_locks = 2; ops_per_proc = 80;
      sync_freq = 4 }
  in
  stock
  @ [ ("gen_racy", Minilang.Gen.random_racy ~config ~seed:7 ());
      ("gen_racefree", Minilang.Gen.random_racefree ~config ~seed:11 ()) ]

let harness_fixtures ?seeds_per_program programs =
  let progs =
    if programs = [] then default_harness_programs ()
    else
      List.map (fun n -> (Filename.basename n, or_fail (load_program n))) programs
  in
  or_fail (Serve.Harness.fixtures ?seeds_per_program progs)

let serve_cmd =
  let listen_arg =
    let doc =
      "Address to listen on: $(b,unix:PATH), $(b,tcp:HOST:PORT), or \
       $(b,tcp:PORT) (port 0 binds an ephemeral port, printed on stdout)."
    in
    Arg.(value & opt addr_conv (Serve.Server.Tcp ("", 0)) & info [ "listen" ] ~docv:"ADDR" ~doc)
  in
  let shards_arg =
    let doc = "Worker domains; sessions are sharded round-robin (0 = one per core)." in
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let max_sessions_arg =
    let doc =
      "Streaming-session budget: beyond it, the least-recently-active session \
       is shed with $(b,verdict shed reason max-sessions)."
    in
    Arg.(value & opt int 64 & info [ "max-sessions" ] ~docv:"N" ~doc)
  in
  let global_live_arg =
    let doc = "Global resident-event budget across all sessions (sheds when over)." in
    Arg.(value & opt (some int) None & info [ "global-live" ] ~docv:"EVENTS" ~doc)
  in
  let max_live_arg =
    let doc = "Per-session live-set cap (forced retirement above it, as in analyze)." in
    Arg.(value & opt (some int) None & info [ "max-live" ] ~docv:"EVENTS" ~doc)
  in
  let idle_timeout_arg =
    let doc = "Disconnect sessions silent for $(docv) seconds (0 disables)." in
    Arg.(value & opt float 30. & info [ "idle-timeout" ] ~docv:"SEC" ~doc)
  in
  let session_timeout_arg =
    let doc =
      "Abort sessions older than $(docv) seconds regardless of activity — the \
       slowloris guard (0 disables)."
    in
    Arg.(value & opt float 0. & info [ "session-timeout" ] ~docv:"SEC" ~doc)
  in
  let finish_timeout_arg =
    let doc =
      "Run each session's final analysis under a $(docv)-second wall-clock \
       budget; a wedged analysis yields $(b,verdict aborted reason \
       analysis-timeout) instead of stalling its shard (0 runs inline)."
    in
    Arg.(value & opt float 30. & info [ "finish-timeout" ] ~docv:"SEC" ~doc)
  in
  let checkpoint_dir_arg =
    let doc =
      "Checkpoint sessions into $(docv) at v2 epoch marks, making them \
       SIGKILL-safe; see $(b,--resume)."
    in
    Arg.(value & opt (some string) None & info [ "checkpoint-dir" ] ~docv:"DIR" ~doc)
  in
  let checkpoint_every_arg =
    let doc = "Minimum events between two checkpoints of one session." in
    Arg.(value & opt int 64 & info [ "checkpoint-every" ] ~docv:"EVENTS" ~doc)
  in
  let resume_arg =
    let doc =
      "Adopt the checkpoints already in $(b,--checkpoint-dir): reconnecting \
       clients are told the byte offset to resend from and final verdicts are \
       byte-identical to an uninterrupted session."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let quiet_arg =
    let doc = "Suppress the per-event log lines on stderr." in
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc)
  in
  let run listen shards max_sessions global_live max_live idle_timeout
      session_timeout finish_timeout checkpoint_dir checkpoint_every resume
      quiet =
    let stop = Atomic.make false in
    let request_stop _ = Atomic.set stop true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
    let cfg =
      {
        (Serve.Server.default_config listen) with
        shards = resolve_jobs shards;
        max_sessions;
        global_live;
        session_max_live = max_live;
        idle_timeout;
        session_timeout;
        finish_timeout;
        checkpoint_dir;
        checkpoint_every;
        resume;
        log =
          (if quiet then ignore
           else fun line -> Printf.eprintf "racedet-serve: %s\n%!" line);
        ready =
          (fun bound ->
            Printf.printf "serving on %s\n%!" bound);
      }
    in
    match Serve.Server.run ~stop cfg with
    | Ok () -> ()
    | Error msg ->
      Format.eprintf "racedet: %s@." msg;
      exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the analysis daemon: many concurrent trace sessions over \
          Unix/TCP sockets, one streaming engine per connection, sharded \
          across a domain pool — with per-session fault isolation, load \
          shedding, idle/slowloris timeouts, and SIGKILL-safe checkpoints \
          ($(b,--checkpoint-dir) + $(b,--resume))."
       ~exits:
         (Cmd.Exit.info 0 ~doc:"the daemon stopped gracefully."
          :: Cmd.Exit.info 1 ~doc:"startup failed (bad address, bind error)."
          :: List.filter (fun i -> Cmd.Exit.info_code i > 3) Cmd.Exit.defaults))
    Term.(
      const run $ listen_arg $ shards_arg $ max_sessions_arg $ global_live_arg
      $ max_live_arg $ idle_timeout_arg $ session_timeout_arg
      $ finish_timeout_arg $ checkpoint_dir_arg $ checkpoint_every_arg
      $ resume_arg $ quiet_arg)

let client_cmd =
  let trace_arg =
    let doc = "Trace file to stream (required unless --metrics or --stop)." in
    Arg.(value & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc)
  in
  let session_arg =
    let doc = "Session id (default: the trace's basename, sanitized)." in
    Arg.(value & opt (some string) None & info [ "session" ] ~docv:"ID" ~doc)
  in
  let chunk_arg =
    let doc = "Bytes per socket write." in
    Arg.(value & opt int 65536 & info [ "chunk" ] ~docv:"BYTES" ~doc)
  in
  let delay_arg =
    let doc = "Seconds to sleep between chunks (a deliberately slow writer)." in
    Arg.(value & opt float 0. & info [ "delay" ] ~docv:"SEC" ~doc)
  in
  let abort_after_arg =
    let doc =
      "Drop the connection after sending $(docv) bytes — a simulated client \
       crash (exits 1)."
    in
    Arg.(value & opt (some int) None & info [ "abort-after" ] ~docv:"BYTES" ~doc)
  in
  let metrics_flag =
    let doc = "Print the daemon's plaintext metrics snapshot and exit." in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let stop_flag =
    let doc = "Ask the daemon to shut down gracefully and exit." in
    Arg.(value & flag & info [ "stop" ] ~doc)
  in
  let sanitize_id s =
    let s =
      String.map
        (fun c ->
          if
            (c >= 'a' && c <= 'z')
            || (c >= 'A' && c <= 'Z')
            || (c >= '0' && c <= '9')
            || c = '.' || c = '_' || c = '-'
          then c
          else '-')
        s
    in
    let s = if s = "" then "cli" else s in
    String.sub s 0 (min 64 (String.length s))
  in
  let run addr trace session chunk delay abort_after metrics stop =
    if metrics then print_string (or_fail (Serve.Client.metrics addr))
    else if stop then or_fail (Serve.Client.stop addr)
    else
      match trace with
      | None ->
        Format.eprintf "racedet: a TRACE argument is required (or --metrics/--stop)@.";
        exit 1
      | Some file ->
        let text =
          try In_channel.with_open_bin file In_channel.input_all
          with Sys_error msg -> or_fail (Error msg)
        in
        let id =
          match session with Some s -> s | None -> sanitize_id (Filename.basename file)
        in
        let o =
          or_fail
            (Serve.Client.session ~chunk ~delay ?abort_after addr ~id ~trace:text)
        in
        print_string o.Serve.Client.report;
        let code = Serve.Protocol.exit_code o.Serve.Client.cls in
        if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Stream a trace to a $(b,racedet serve) daemon and print the verdict \
          report — byte-identical to $(b,racedet analyze) on the same trace.  \
          If the server offers a resume offset (it holds a checkpoint for this \
          session id), only the tail is resent."
       ~exits:
         (Cmd.Exit.info 0 ~doc:"the session was analyzed and is race-free."
          :: Cmd.Exit.info 1 ~doc:"transport/usage error, or the server refused the session."
          :: Cmd.Exit.info 2 ~doc:"data races were reported."
          :: Cmd.Exit.info 3 ~doc:"the session was lossy: the analysis is degraded."
          :: Cmd.Exit.info 4 ~doc:"the session was shed by the server (over budget)."
          :: Cmd.Exit.info 5 ~doc:"the session was aborted by the server (timeout/shutdown)."
          :: List.filter (fun i -> Cmd.Exit.info_code i > 5) Cmd.Exit.defaults))
    Term.(
      const run $ connect_arg $ trace_arg $ session_arg $ chunk_arg $ delay_arg
      $ abort_after_arg $ metrics_flag $ stop_flag)

let loadgen_cmd =
  let sessions_arg =
    let doc = "Total sessions to replay." in
    Arg.(value & opt int 200 & info [ "n"; "sessions" ] ~docv:"N" ~doc)
  in
  let concurrency_arg =
    let doc = "Concurrent client connections." in
    Arg.(value & opt int 8 & info [ "concurrency" ] ~docv:"N" ~doc)
  in
  let chunk_arg =
    let doc = "Bytes per socket write." in
    Arg.(value & opt int 65536 & info [ "chunk" ] ~docv:"BYTES" ~doc)
  in
  let seeds_arg =
    let doc = "Distinct executions (seeds) per program." in
    Arg.(value & opt int 2 & info [ "seeds" ] ~docv:"N" ~doc)
  in
  let min_throughput_arg =
    let doc = "Fail (exit 1) below $(docv) aggregate events/sec." in
    Arg.(value & opt float 0. & info [ "min-throughput" ] ~docv:"EPS" ~doc)
  in
  let run addr programs sessions concurrency chunk seeds min_throughput =
    let fx = harness_fixtures ~seeds_per_program:seeds programs in
    let r = Serve.Harness.load ~concurrency ~chunk ~sessions ~fixtures:fx addr in
    List.iter (fun m -> Format.eprintf "racedet-loadgen: %s@." m)
      r.Serve.Harness.l_failures;
    Format.printf "%a@." Serve.Harness.pp_load r;
    if r.Serve.Harness.l_failures <> [] then exit 1;
    if min_throughput > 0. && r.Serve.Harness.l_events_per_sec < min_throughput
    then begin
      Format.eprintf
        "racedet-loadgen: throughput %.0f events/sec below the %.0f floor@."
        r.Serve.Harness.l_events_per_sec min_throughput;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive a running daemon with many interleaved trace sessions and \
          assert every verdict and report byte-identical to a local reference \
          analysis; prints aggregate throughput."
       ~exits:
         (Cmd.Exit.info 0 ~doc:"every session matched its reference."
          :: Cmd.Exit.info 1
               ~doc:"a verdict mismatched, a session failed, or throughput was below the floor."
          :: List.filter (fun i -> Cmd.Exit.info_code i > 3) Cmd.Exit.defaults))
    Term.(
      const run $ connect_arg $ harness_programs_arg $ sessions_arg
      $ concurrency_arg $ chunk_arg $ seeds_arg $ min_throughput_arg)

let chaos_cmd =
  let seeds_arg =
    let doc = "Fault seeds per scenario (scales the corrupt and kill sweeps)." in
    Arg.(value & opt int 5 & info [ "seeds" ] ~docv:"N" ~doc)
  in
  let log_dir_arg =
    let doc = "On violations, copy server logs and offending traces into $(docv)." in
    Arg.(value & opt (some string) None & info [ "log-dir" ] ~docv:"DIR" ~doc)
  in
  let quiet_arg =
    let doc = "Suppress scenario progress lines on stderr." in
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc)
  in
  let run programs seeds log_dir quiet =
    let fx = harness_fixtures programs in
    let log =
      if quiet then ignore else fun m -> Printf.eprintf "racedet-chaos: %s\n%!" m
    in
    let r =
      or_fail
        (Serve.Harness.chaos ~exe:Sys.executable_name ~seeds ~log_dir ~log
           ~fixtures:fx ())
    in
    List.iter
      (fun v -> Format.eprintf "racedet-chaos: violation: %s@." v)
      r.Serve.Harness.c_violations;
    Format.printf "%a@." Serve.Harness.pp_chaos r;
    let code = Serve.Harness.chaos_exit_code r in
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Fault-injection campaign against real $(b,racedet serve) daemons: \
          concurrent baseline sessions (cross-talk check), corrupted frames, \
          mid-stream connection kills, slowloris writers, duplicate session \
          ids, and SIGKILL-then-$(b,--resume) — asserting lossy sessions are \
          never certified race-free, resumed verdicts are byte-identical, and \
          the server stays live throughout."
       ~exits:
         (Cmd.Exit.info 0 ~doc:"every invariant held."
          :: Cmd.Exit.info 1 ~doc:"an invariant was violated (or the campaign could not run)."
          :: List.filter (fun i -> Cmd.Exit.info_code i > 3) Cmd.Exit.defaults))
    Term.(const run $ harness_programs_arg $ seeds_arg $ log_dir_arg $ quiet_arg)

let () =
  let doc = "dynamic data-race detection on weak memory systems (ISCA 1991)" in
  let info = Cmd.info "racedet" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; show_cmd; run_cmd; detect_cmd; trace_cmd; analyze_cmd;
            faultfuzz_cmd; enumerate_cmd; check_cmd; cost_cmd; replay_cmd;
            graph_cmd; gen_cmd; sweep_cmd; lint_cmd; fence_cmd; robust_cmd;
            triage_cmd;
            variants_cmd; serve_cmd; client_cmd; loadgen_cmd; chaos_cmd ]))
