(* Benchmark & figure-reproduction harness.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe fig2 perf  -- selected sections

   One section per paper artifact (DESIGN.md's experiment index):
     fig1a    E1  Figure 1a — data races let weak hardware violate SC
     fig1b    E2  Figure 1b — data-race-free executions are SC everywhere
     fig2     E3  Figure 2  — the queue bug's non-SC data races
     fig3     E4  Figure 3  — first / non-first race partitions
     cond34   E5  Condition 3.4 & Theorem 3.5 Monte-Carlo
     thm41-42 E6  Theorems 4.1 and 4.2 Monte-Carlo
     overhead E7  §5 overhead claims (traces, buffers, SC-mode cost, accuracy)
     envelope     exhaustive schedule/behaviour spaces per model (incl. TSO)
     ablation     schedulers, detector baselines, so1 reconstruction
     coherence    everything again on the delayed-invalidation machine
     perf         bechamel microbenchmarks of the analysis pipeline

   The paper has no quantitative tables; the tables printed here are the
   mechanical counterparts of its worked figures and theorem statements.
   EXPERIMENTS.md records paper-vs-measured for each. *)

let section_header title =
  Format.printf "@.==================================================================@.";
  Format.printf "%s@." title;
  Format.printf "==================================================================@."

(* Monte-Carlo sections fan their seed ranges out over this many domains
   (-j/--jobs; 1 = serial).  Workers only compute — all aggregation and
   printing stays in the main domain — so the output is identical for
   every job count. *)
let jobs = ref 1

(* --quick: CI smoke mode — shorter bechamel quotas, and the perf section
   fails (exit 1) if the epoch race engine regresses below the vector
   baseline instead of merely recording the ratio *)
let quick = ref false

let run_weak ?(sched = `Adversarial) ~model ~seed p =
  let sched =
    match sched with
    | `Adversarial -> Memsim.Sched.adversarial ~seed ()
    | `Random -> Memsim.Sched.random ~seed
  in
  Minilang.Interp.run ~model ~sched p

let value_of_label (e : Memsim.Exec.t) label =
  Array.to_list e.Memsim.Exec.ops
  |> List.find_map (fun (o : Memsim.Op.t) ->
         if o.Memsim.Op.label = Some label then Some o.Memsim.Op.value else None)

(* ================================================================== *)
(* E1: Figure 1a                                                       *)
(* ================================================================== *)

let fig1a () =
  section_header
    "E1 (Figure 1a): P1 writes x then y; P2 reads y then x; no synchronization";
  Format.printf
    "paper: the execution has data races; on a weak system the new y can@.\
     propagate before the new x, so P2 may read (y=1, x=0) — impossible under SC.@.@.";
  let p = Minilang.Programs.fig1a in
  let outcome e = (value_of_label e "P2:read-y", value_of_label e "P2:read-x") in
  (* SC: enumerate everything *)
  let sc = Memsim.Enumerate.explore (fun () -> Minilang.Interp.source p) in
  let sc_outcomes =
    List.map outcome sc.Memsim.Enumerate.executions |> List.sort_uniq compare
  in
  Format.printf "%-6s %-28s %s@." "model" "outcomes (y,x) over schedules" "(1,0) seen?";
  let show_outcomes os =
    String.concat " "
      (List.map
         (function
           | Some a, Some b -> Printf.sprintf "(%d,%d)" a b
           | _ -> "(?)")
         os)
  in
  Format.printf "%-6s %-28s %b   [%d interleavings, exhaustive]@." "SC"
    (show_outcomes sc_outcomes)
    (List.mem (Some 1, Some 0) sc_outcomes)
    (List.length sc.Memsim.Enumerate.executions);
  List.iter
    (fun model ->
      let outcomes =
        List.init 300 (fun seed -> outcome (run_weak ~model ~seed p))
        |> List.sort_uniq compare
      in
      Format.printf "%-6s %-28s %b%s@." (Memsim.Model.name model) (show_outcomes outcomes)
        (List.mem (Some 1, Some 0) outcomes)
        (if model = Memsim.Model.TSO then "   [comparator: FIFO buffer forbids it]"
         else ""))
    (Memsim.Model.TSO :: Memsim.Model.weak);
  (* and the detector flags the race on every model *)
  let detected =
    List.for_all
      (fun model ->
        not
          (Racedetect.Postmortem.race_free
             (Racedetect.Postmortem.analyze_execution (run_weak ~model ~seed:1 p))))
      Memsim.Model.all
  in
  Format.printf "@.data race reported on every model: %b@." detected

(* ================================================================== *)
(* E2: Figure 1b                                                       *)
(* ================================================================== *)

let fig1b () =
  section_header
    "E2 (Figure 1b): the same writes published with Unset / spinning Test&Set";
  Format.printf
    "paper: the execution is data-race-free, so every weak model must appear@.\
     sequentially consistent: P2 always reads (y=1, x=1) after acquiring s.@.@.";
  let p = Minilang.Programs.fig1b in
  Format.printf "%-6s %-22s %-12s %s@." "model" "outcomes (600 runs)" "race-free?"
    "always SC?";
  List.iter
    (fun model ->
      let runs =
        Engine.Parbatch.map_seeds ~jobs:!jobs 600 (fun seed ->
            let e = run_weak ~model ~seed p in
            ( (value_of_label e "P2:read-y", value_of_label e "P2:read-x"),
              Racedetect.Postmortem.race_free (Racedetect.Postmortem.analyze_execution e) ))
      in
      let os = Array.to_list runs |> List.map fst |> List.sort_uniq compare in
      let race_free = Array.for_all snd runs in
      Format.printf "%-6s %-22s %-12b %b@." (Memsim.Model.name model)
        (String.concat " "
           (List.map
              (function
                | Some a, Some b -> Printf.sprintf "(%d,%d)" a b
                | _ -> "(?)")
              os))
        race_free
        (os = [ (Some 1, Some 1) ]))
    Memsim.Model.all

(* ================================================================== *)
(* E3: Figure 2                                                        *)
(* ================================================================== *)

let region = 100
let stale = 37

let find_stale_execution ~model =
  let p = Minilang.Programs.queue_bug ~region ~stale () in
  let rec go seed =
    if seed > 50_000 then None
    else
      let e = run_weak ~model ~seed p in
      if
        value_of_label e "P2:read-qempty" = Some 0
        && value_of_label e "P2:dequeue" = Some stale
      then Some (seed, e)
      else go (seed + 1)
  in
  go 0

let fig2 () =
  section_header "E3 (Figure 2): the queue program with the missing Test&Set";
  Format.printf
    "paper: on a weak system P2 can find QEmpty reset yet dequeue the stale@.\
     address 37 instead of 100, so its work region overlaps P3's and many@.\
     non-sequentially-consistent data races appear.@.@.";
  List.iter
    (fun model ->
      match find_stale_execution ~model with
      | None -> Format.printf "%-6s anomaly not found in 50k schedules@." (Memsim.Model.name model)
      | Some (seed, e) ->
        let a = Racedetect.Postmortem.analyze_execution e in
        let all = Racedetect.Postmortem.data_races a in
        let reported = Racedetect.Postmortem.reported_races a in
        let op_level =
          List.length (Racedetect.Ophb.data_races (Racedetect.Ophb.build e))
        in
        Format.printf
          "%-6s seed %-6d dequeued %d; naive: %d event / %d op-level data races; reported: %d first-partition race(s)@."
          (Memsim.Model.name model) seed
          (Option.value ~default:(-1) (value_of_label e "P2:dequeue"))
          (List.length all) op_level (List.length reported))
    Memsim.Model.weak;
  (* the paper's point of comparison: under SC the stale dequeue can never
     happen (QEmpty=0 implies Q=100) *)
  let p = Minilang.Programs.queue_bug ~region:3 ~stale:1 () in
  let sc = Memsim.Enumerate.explore ~limit:5_000_000 (fun () -> Minilang.Interp.source p) in
  let stale_seen =
    List.exists
      (fun e ->
        value_of_label e "P2:read-qempty" = Some 0
        && value_of_label e "P2:dequeue" = Some 1)
      sc.Memsim.Enumerate.executions
  in
  Format.printf
    "@.SC check (region=3, exhaustive %d interleavings%s): stale dequeue possible: %b@."
    (List.length sc.Memsim.Enumerate.executions)
    (if sc.Memsim.Enumerate.complete then "" else ", truncated")
    stale_seen

(* ================================================================== *)
(* E4: Figure 3                                                        *)
(* ================================================================== *)

let fig3 () =
  section_header "E4 (Figure 3): augmented hb1 graph, first and non-first partitions";
  match find_stale_execution ~model:Memsim.Model.WO with
  | None -> Format.printf "anomaly not found@."
  | Some (_, e) ->
    let a = Racedetect.Postmortem.analyze_execution e in
    let p = Minilang.Programs.queue_bug ~region ~stale () in
    Format.printf "%a@."
      (Racedetect.Report.pp_analysis ~loc_name:(Minilang.Ast.loc_name p))
      a;
    let parts = Racedetect.Partition.partitions a.Racedetect.Postmortem.partitions in
    let first = Racedetect.Partition.first_partitions a.Racedetect.Postmortem.partitions in
    Format.printf
      "@.partitions with data races: %d; first: %d; ordering edges (Def 4.1):@."
      (List.length parts) (List.length first);
    List.iter
      (fun p1 ->
        List.iter
          (fun p2 ->
            if
              Racedetect.Partition.ordered_before a.Racedetect.Postmortem.partitions p1 p2
            then
              Format.printf "  partition #%d  P  partition #%d@."
                p1.Racedetect.Partition.component p2.Racedetect.Partition.component)
          parts)
      parts;
    Format.printf
      "@.paper: the Q/QEmpty races form the first partition; the work-region@.\
       races of P2 x P3 are ordered after it and suppressed.  Reproduced.@."

(* ================================================================== *)
(* E5: Condition 3.4 / Theorem 3.5                                     *)
(* ================================================================== *)

let cond34 () =
  section_header "E5 (Condition 3.4 / Theorem 3.5): weak hardware obeys it for free";
  Format.printf
    "paper: every weak implementation provides an SCP covering the first data@.\
     races, and race-free executions are sequentially consistent.  We verify@.\
     both clauses against exhaustive SC enumeration.@.@.";
  let programs =
    List.map (fun s -> ("racefree", Minilang.Gen.random_racefree ~seed:s ())) [ 1; 2; 3; 4; 5 ]
    @ List.map (fun s -> ("rfree-ra", Minilang.Gen.random_racefree_ra ~seed:s ())) [ 1; 2; 3 ]
    @ List.map (fun s -> ("racy", Minilang.Gen.random_racy ~seed:s ())) [ 1; 2; 3; 4; 5 ]
    @ [ ("stock", Minilang.Programs.fig1a); ("stock", Minilang.Programs.dekker);
        ("stock", Minilang.Programs.unguarded_handoff);
        ("stock", Minilang.Programs.guarded_handoff);
        ("stock", Minilang.Programs.mp_data_flag) ]
  in
  let seeds = List.init 6 (fun s -> s) in
  Format.printf "%-9s %-12s %8s %8s %8s %8s@." "kind" "program" "checks" "holds"
    "clause1" "clause2";
  let grand_total = ref 0 and grand_holds = ref 0 in
  List.iter
    (fun (kind, p) ->
      let pool =
        (Memsim.Enumerate.explore ~limit:500_000 (fun () -> Minilang.Interp.source p))
          .Memsim.Enumerate.executions
      in
      let cases =
        Array.of_list
          (List.concat_map
             (fun model -> List.map (fun seed -> (model, seed)) seeds)
             Memsim.Model.weak)
      in
      let verdicts =
        Engine.Parbatch.map ~jobs:!jobs
          (fun (model, seed) -> Racedetect.Condition.check ~sc:pool (run_weak ~model ~seed p))
          cases
      in
      let count f = Array.fold_left (fun acc v -> if f v then acc + 1 else acc) 0 verdicts in
      let total = Array.length verdicts in
      let holds = count (fun v -> v.Racedetect.Condition.holds) in
      let c1 = count (fun v -> v.Racedetect.Condition.cond1 = Racedetect.Condition.Holds) in
      let c2 = count (fun v -> v.Racedetect.Condition.cond2 = Racedetect.Condition.Holds) in
      grand_total := !grand_total + total;
      grand_holds := !grand_holds + holds;
      let short n = if String.length n > 12 then String.sub n 0 12 else n in
      Format.printf "%-9s %-12s %8d %8d %8d %8d@." kind (short p.Minilang.Ast.name)
        total holds c1 c2)
    programs;
  Format.printf "@.Condition 3.4 held on %d / %d weak executions@." !grand_holds
    !grand_total

(* ================================================================== *)
(* E6: Theorems 4.1 and 4.2                                            *)
(* ================================================================== *)

let thm41_42 () =
  section_header "E6 (Theorems 4.1 / 4.2): first partitions";
  Format.printf
    "4.1: no first partitions with data races iff no data races occurred.@.\
     4.2: every first partition contains a data race belonging to an SCP.@.@.";
  let module Iset = Set.Make (Int) in
  (* stage 1: SC ground-truth pools, one per random program, in parallel *)
  let pools =
    Engine.Parbatch.map_list ~jobs:!jobs
      (fun pseed ->
        let p =
          if pseed mod 2 = 0 then Minilang.Gen.random_racy ~seed:pseed ()
          else Minilang.Gen.random_racefree ~seed:pseed ()
        in
        let pool =
          (Memsim.Enumerate.explore ~limit:500_000 (fun () -> Minilang.Interp.source p))
            .Memsim.Enumerate.executions
        in
        (p, pool))
      (List.init 8 (fun s -> s + 1))
  in
  (* stage 2: every (program, model, seed) check is independent *)
  let cases =
    Array.of_list
      (List.concat_map
         (fun (p, pool) ->
           List.concat_map
             (fun model ->
               List.map (fun seed -> (p, pool, model, seed)) (List.init 5 (fun s -> s)))
             Memsim.Model.weak)
         pools)
  in
  let tallies =
    Engine.Parbatch.map ~jobs:!jobs
      (fun (p, pool, model, seed) ->
        let e = run_weak ~model ~seed p in
        let a = Racedetect.Postmortem.analyze_execution e in
        let races = Racedetect.Postmortem.data_races a <> [] in
        let first = Racedetect.Postmortem.first_partitions a in
        let t41 = if races = (first <> []) then 1 else 0 in
        if first = [] then (t41, 0, 0)
        else
          let v = Racedetect.Condition.check ~sc:pool e in
          match v.Racedetect.Condition.scp_witness with
          | None -> (t41, List.length first, 0)
          | Some scp ->
            let s = Iset.of_list scp in
            let ophb = Racedetect.Ophb.build e in
            let trace = a.Racedetect.Postmortem.trace in
            let ops_of eid =
              match trace.Tracing.Trace.events.(eid).Tracing.Event.body with
              | Tracing.Event.Computation { ops; _ } -> ops
              | Tracing.Event.Sync { op; _ } -> [ op ]
            in
            let ok =
              List.fold_left
                (fun acc (part : Racedetect.Partition.partition) ->
                  let has_scp_race =
                    List.exists
                      (fun (race : Racedetect.Race.t) ->
                        List.exists
                          (fun (x : Memsim.Op.t) ->
                            List.exists
                              (fun (y : Memsim.Op.t) ->
                                Memsim.Op.conflict x y
                                && (Memsim.Op.is_data x.Memsim.Op.cls
                                    || Memsim.Op.is_data y.Memsim.Op.cls)
                                && (not
                                      (Racedetect.Ophb.ordered ophb x.Memsim.Op.id
                                         y.Memsim.Op.id))
                                && Iset.mem x.Memsim.Op.id s
                                && Iset.mem y.Memsim.Op.id s)
                              (ops_of race.Racedetect.Race.b))
                          (ops_of race.Racedetect.Race.a))
                      part.Racedetect.Partition.races
                  in
                  if has_scp_race then acc + 1 else acc)
                0 first
            in
            (t41, List.length first, ok))
      cases
  in
  let checks = ref 0 and t41 = ref 0 and t42_parts = ref 0 and t42_ok = ref 0 in
  Array.iter
    (fun (a, parts, ok) ->
      incr checks;
      t41 := !t41 + a;
      t42_parts := !t42_parts + parts;
      t42_ok := !t42_ok + ok)
    tallies;
  Format.printf "Theorem 4.1: held on %d / %d executions@." !t41 !checks;
  Format.printf "Theorem 4.2: %d / %d first partitions contained an SCP race@." !t42_ok
    !t42_parts

(* ================================================================== *)
(* E7: overheads (§5)                                                  *)
(* ================================================================== *)

let overhead () =
  section_header "E7 (§5): overheads — tracing, analysis, and the cost of an SC mode";
  (* 1. trace size: event-level vs op-level *)
  Format.printf "trace size: event-level (bit-vector READ/WRITE sets) vs op-level@.@.";
  Format.printf "%-10s %10s %12s %12s %8s@." "region" "ops" "event-bytes" "op-bytes"
    "ratio";
  List.iter
    (fun region ->
      let p = Minilang.Programs.queue_bug ~region () in
      let e = run_weak ~model:Memsim.Model.WO ~seed:3 p in
      let t = Tracing.Trace.of_execution e in
      let ev = Tracing.Trace.stats_bytes_event_level t in
      let op = Tracing.Trace.stats_bytes_op_level t in
      Format.printf "%-10d %10d %12d %12d %7.1fx@." region (Memsim.Exec.n_ops e) ev op
        (float_of_int op /. float_of_int ev))
    [ 25; 50; 100; 200; 400 ];
  (* 2. the cost of a slow SC debug mode *)
  Format.printf
    "@.simulated cycles for the same instruction streams (write latency 20):@.@.";
  Format.printf "%-18s %10s %10s %10s %10s@." "workload" "SC-mode" "WO" "RCsc"
    "SC/WO";
  List.iter
    (fun (name, p, model, seed) ->
      let e = run_weak ~model ~seed p in
      let sc = (Memsim.Cost.estimate ~mode:Memsim.Model.SC e).Memsim.Cost.makespan in
      let wo = (Memsim.Cost.estimate ~mode:Memsim.Model.WO e).Memsim.Cost.makespan in
      let rc = (Memsim.Cost.estimate ~mode:Memsim.Model.RCsc e).Memsim.Cost.makespan in
      Format.printf "%-18s %10d %10d %10d %9.1fx@." name sc wo rc
        (float_of_int sc /. float_of_int wo))
    [
      ("queue_bug(100)", Minilang.Programs.queue_bug ~region:100 (), Memsim.Model.WO, 3);
      ("queue_bug(400)", Minilang.Programs.queue_bug ~region:400 (), Memsim.Model.WO, 3);
      ("counter_locked", Minilang.Programs.counter_locked, Memsim.Model.RCsc, 1);
      ("fig1b", Minilang.Programs.fig1b, Memsim.Model.WO, 1);
    ];
  (* 3. store-buffer behaviour under increasingly adversarial schedules *)
  Format.printf
    "@.store-buffer statistics on queue_bug(100), WO, by retirement bias:@.@.";
  Format.printf "%-22s %10s %12s %12s@." "scheduler" "peak-buf" "avg-delay" "retires";
  List.iter
    (fun (name, mk) ->
      let peak = ref 0 and delay = ref 0 and retires = ref 0 and buffered = ref 0 in
      for seed = 0 to 39 do
        let _, st =
          Memsim.Machine.run_with_stats ~model:Memsim.Model.WO ~sched:(mk seed)
            (Minilang.Interp.source (Minilang.Programs.queue_bug ~region:100 ()))
        in
        peak := max !peak st.Memsim.Machine.max_buffer;
        delay := !delay + st.Memsim.Machine.delay_total;
        retires := !retires + st.Memsim.Machine.retires;
        buffered := !buffered + st.Memsim.Machine.buffered_writes
      done;
      Format.printf "%-22s %10d %12.1f %12d@." name !peak
        (float_of_int !delay /. float_of_int (max 1 !buffered))
        !retires)
    [
      ("eager", fun seed -> Memsim.Sched.eager ~seed);
      ("random", fun seed -> Memsim.Sched.random ~seed);
      ("adversarial bias=4", fun seed -> Memsim.Sched.adversarial ~retire_bias:4 ~seed ());
      ("adversarial bias=16", fun seed -> Memsim.Sched.adversarial ~retire_bias:16 ~seed ());
    ];

  (* 4. post-mortem vs on-the-fly accuracy *)
  Format.printf
    "@.accuracy: op-level hb1 races vs on-the-fly (last-access buffering):@.@.";
  Format.printf "%-8s %10s %12s %10s %8s@." "config" "execs" "hb1-races" "otf-found"
    "missed";
  List.iter
    (fun (tag, cfg) ->
      let execs = ref 0 and truth = ref 0 and found = ref 0 in
      for seed = 1 to 60 do
        let p = Minilang.Gen.random_racy ~config:cfg ~seed () in
        let e = run_weak ~sched:`Random ~model:Memsim.Model.WO ~seed p in
        let t = Racedetect.Ophb.data_races (Racedetect.Ophb.build e) in
        let o = Racedetect.Onthefly.race_pairs (Racedetect.Onthefly.detect e) in
        incr execs;
        truth := !truth + List.length t;
        found := !found + List.length (List.filter (fun pr -> List.mem pr t) o)
      done;
      Format.printf "%-8s %10d %12d %10d %8d@." tag !execs !truth !found
        (!truth - !found))
    [
      ("small", Minilang.Gen.default_config);
      ( "medium",
        { Minilang.Gen.n_procs = 3; n_shared = 4; n_locks = 2; ops_per_proc = 8;
          sync_freq = 4 } );
      ( "large",
        { Minilang.Gen.n_procs = 4; n_shared = 6; n_locks = 3; ops_per_proc = 16;
          sync_freq = 5 } );
    ];
  Format.printf
    "@.(every on-the-fly report is a true race — soundness is checked by the@.\
    \ test suite; the missed ones are overwritten accesses, the accuracy loss@.\
    \ the paper attributes to on-the-fly buffering)@."

(* ================================================================== *)
(* envelope: exhaustive behaviour spaces                               *)
(* ================================================================== *)

let envelope () =
  section_header
    "envelope: exhaustive schedule/behaviour counts per model (litmus programs)";
  Format.printf
    "every schedule of every model is enumerated; 'behaviours' dedups by@.per-processor operation sequences and read values.@.@.";
  Format.printf "%-18s %-6s %10s %12s %10s@." "program" "model" "schedules"
    "behaviours" "racy-bhv";
  List.iter
    (fun p ->
      let rows model =
        let r =
          match model with
          | Memsim.Model.SC ->
            Memsim.Enumerate.explore ~limit:2_000_000 (fun () -> Minilang.Interp.source p)
          | m ->
            Memsim.Enumerate.explore_weak ~limit:2_000_000 ~model:m (fun () ->
                Minilang.Interp.source p)
        in
        let behaviours = Memsim.Enumerate.behaviours r.Memsim.Enumerate.executions in
        let racy =
          List.filter
            (fun e ->
              Racedetect.Postmortem.data_races (Racedetect.Postmortem.analyze_execution e)
              <> [])
            behaviours
        in
        Format.printf "%-18s %-6s %9d%s %12d %10d@." p.Minilang.Ast.name
          (Memsim.Model.name model)
          (List.length r.Memsim.Enumerate.executions)
          (if r.Memsim.Enumerate.complete then "" else "+")
          (List.length behaviours) (List.length racy)
      in
      List.iter rows [ Memsim.Model.SC; Memsim.Model.TSO; Memsim.Model.WO; Memsim.Model.RCsc ])
    [
      Minilang.Programs.fig1a;
      Minilang.Programs.dekker;
      Minilang.Programs.unguarded_handoff;
      Minilang.Programs.guarded_handoff;
      Minilang.Programs.mp_data_flag;
      Minilang.Programs.mp_release_acquire;
      Minilang.Programs.disjoint;
    ];
  Format.printf
    "@.(WO and RCsc admit more behaviours than SC exactly on the racy programs;@.the data-race-free ones collapse to their SC behaviour sets — the DRF@.guarantee, verified over the entire envelope)@."

(* ================================================================== *)
(* ablation: design-choice studies                                     *)
(* ================================================================== *)

let ablation () =
  section_header "ablation: schedulers, detectors, and so1 reconstruction";

  (* 1. how schedule adversarialness drives anomaly discovery *)
  Format.printf
    "anomaly discovery rate on WO vs scheduling strategy (400 seeds each):@.@.";
  Format.printf "%-22s %16s %18s@." "scheduler" "fig1a (1,0)" "queue stale-deq";
  let queue_p = Minilang.Programs.queue_bug ~region:20 ~stale:7 () in
  let fig1a_hit e =
    (value_of_label e "P2:read-y", value_of_label e "P2:read-x") = (Some 1, Some 0)
  in
  let queue_hit e =
    value_of_label e "P2:read-qempty" = Some 0 && value_of_label e "P2:dequeue" = Some 7
  in
  List.iter
    (fun (name, mk) ->
      let count p hit =
        List.length
          (List.filter
             (fun seed ->
               hit
                 (Minilang.Interp.run ~model:Memsim.Model.WO ~sched:(mk seed) p))
             (List.init 400 (fun s -> s)))
      in
      Format.printf "%-22s %12d/400 %14d/400@." name
        (count Minilang.Programs.fig1a fig1a_hit)
        (count queue_p queue_hit))
    [
      ("eager", fun seed -> Memsim.Sched.eager ~seed);
      ("random", fun seed -> Memsim.Sched.random ~seed);
      ("adversarial bias=16", fun seed -> Memsim.Sched.adversarial ~retire_bias:16 ~seed ());
      ("adversarial bias=4", fun seed -> Memsim.Sched.adversarial ~retire_bias:4 ~seed ());
      ("adversarial bias=2", fun seed -> Memsim.Sched.adversarial ~retire_bias:2 ~seed ());
    ];

  (* 2. detector comparison: exact hb1 vs on-the-fly vs lockset *)
  Format.printf
    "@.detector comparison (executions flagged, 60 WO schedules each):@.@.";
  let ra_pingpong =
    let open Minilang.Build in
    program ~name:"ra_pingpong" ~locs:[ "data"; "flag" ]
      [
        [ store "data" (i 1); release_store "flag" (i 1) ];
        [
          acquire_load "f" "flag";
          if_ (r "f" =: i 1) [ store "data" (i 2) ] [];
        ];
      ]
  in
  Format.printf "%-18s %12s %12s %12s   %s@." "program" "hb1" "on-the-fly" "lockset"
    "ground truth";
  List.iter
    (fun (p, truth) ->
      let hb = ref 0 and otf = ref 0 and ls = ref 0 in
      for seed = 0 to 59 do
        let e = run_weak ~model:Memsim.Model.WO ~seed p in
        let a = Racedetect.Postmortem.analyze_execution e in
        if Racedetect.Postmortem.data_races a <> [] then incr hb;
        if Racedetect.Onthefly.detect e <> [] then incr otf;
        if Racedetect.Lockset.check e <> [] then incr ls
      done;
      Format.printf "%-18s %9d/60 %9d/60 %9d/60   %s@." p.Minilang.Ast.name !hb !otf
        !ls truth)
    [
      (Minilang.Programs.counter_locked, "race-free");
      (Minilang.Programs.barrier_phases (), "race-free");
      (ra_pingpong, "race-free (flag sync; lockset false alarms)");
      (Minilang.Programs.counter_racy, "racy");
      (Minilang.Programs.peterson, "racy");
      (Minilang.Programs.lazy_init, "racy");
      (Minilang.Programs.mp_data_flag, "racy (only when branch taken)");
    ];

  (* 3. so1: recorded pairing vs post-mortem reconstruction *)
  Format.printf "@.so1 reconstruction from the per-location sync order alone:@.@.";
  let agree = ref 0 and total = ref 0 in
  for seed = 1 to 200 do
    let p = Minilang.Gen.random_racy ~seed () in
    let e = run_weak ~model:Memsim.Model.WO ~seed p in
    let t = Tracing.Trace.of_execution e in
    let races so1 =
      Racedetect.Race.find_all (Racedetect.Hb.build ~so1 t)
      |> List.map (fun (r : Racedetect.Race.t) -> (r.Racedetect.Race.a, r.Racedetect.Race.b))
    in
    incr total;
    if races `Recorded = races `Reconstructed then incr agree
  done;
  Format.printf
    "lock-disciplined random programs: identical race sets on %d / %d executions@."
    !agree !total;
  (* the counterexample requiring the recorded pairing: a data write to a
     synchronization location can alias the release's value *)
  let mixed =
    let open Minilang.Build in
    program ~name:"mixed" ~locs:[ "x"; "f" ] ~init:[ ("f", 1) ]
      [
        [ store "x" (i 1); unset "f" ];
        [ store "f" (i 0) ];  (* data write of the same value! *)
        [ test_and_set "t" "f"; load "rx" "x" ];
      ]
  in
  let diverged = ref 0 in
  for seed = 0 to 199 do
    let e = run_weak ~model:Memsim.Model.WO ~seed mixed in
    let t = Tracing.Trace.of_execution e in
    if
      List.sort compare t.Tracing.Trace.so1
      <> List.sort compare (Tracing.Trace.so1_reconstruct t)
    then incr diverged
  done;
  Format.printf
    "mixed data/sync writes to one location: reconstruction diverged on %d / 200@.(why real tracers record which release each acquire observed)@."
    !diverged

(* ================================================================== *)
(* coherence: the delayed-invalidation machine                         *)
(* ================================================================== *)

let coherence () =
  section_header
    "coherence: the same results on a cache-coherent machine (delayed invalidations)";
  Format.printf
    "weakness here is reader-side: invalidations queue at sharers and apply@.when the scheduler says so — a different 1991 hardware mechanism than@.store buffers.  The paper's results must not care.@.@.";
  let run_c ?n_lines ?warm ~model ~seed p =
    Coherence.Cmachine.run_program ?n_lines ?warm ~model
      ~sched:(Memsim.Sched.adversarial ~seed ()) p
  in
  (* 1. figure 1a outcome envelope *)
  Format.printf "%-6s %-30s %s@." "model" "fig1a outcomes (300 seeds)" "(1,0) seen?";
  List.iter
    (fun model ->
      let outcomes =
        Engine.Parbatch.map_seeds ~jobs:!jobs 300 (fun seed ->
            let e = run_c ~model ~seed Minilang.Programs.fig1a in
            (value_of_label e "P2:read-y", value_of_label e "P2:read-x"))
        |> Array.to_list |> List.sort_uniq compare
      in
      Format.printf "%-6s %-30s %b@." (Memsim.Model.name model)
        (String.concat " "
           (List.map
              (function Some a, Some b -> Printf.sprintf "(%d,%d)" a b | _ -> "(?)")
              outcomes))
        (List.mem (Some 1, Some 0) outcomes))
    (List.filter (fun m -> not (Memsim.Model.fifo_buffer m)) Memsim.Model.all);
  (* 2. queue bug *)
  let p = Minilang.Programs.queue_bug ~region:8 ~stale:3 () in
  let hits =
    Engine.Parbatch.map_seeds ~jobs:!jobs 2000 (fun seed ->
        let e = run_c ~model:Memsim.Model.WO ~seed p in
        value_of_label e "P2:read-qempty" = Some 0
        && value_of_label e "P2:dequeue" = Some 3)
    |> Array.fold_left (fun acc hit -> if hit then acc + 1 else acc) 0
  in
  Format.printf "@.queue_bug stale dequeue: %d / 2000 adversarial schedules@." hits;
  (* 3. Condition 3.4 spot check *)
  let programs =
    [ Minilang.Programs.fig1a; Minilang.Programs.unguarded_handoff;
      Minilang.Gen.random_racy ~seed:9 () ]
  in
  let total = ref 0 and holds = ref 0 in
  List.iter
    (fun p ->
      let pool =
        (Memsim.Enumerate.explore ~limit:500_000 (fun () -> Minilang.Interp.source p))
          .Memsim.Enumerate.executions
      in
      let cases =
        Array.of_list
          (List.concat_map
             (fun model -> List.map (fun seed -> (model, seed)) (List.init 6 (fun s -> s)))
             Memsim.Model.weak)
      in
      let oks =
        Engine.Parbatch.map ~jobs:!jobs
          (fun (model, seed) ->
            (Racedetect.Condition.check ~sc:pool (run_c ~model ~seed p))
              .Racedetect.Condition.holds)
          cases
      in
      total := !total + Array.length oks;
      Array.iter (fun ok -> if ok then incr holds) oks)
    programs;
  Format.printf "Condition 3.4 on the coherent machine: %d / %d weak executions@."
    !holds !total;
  (* 4. capacity sweep: small caches evict stale lines, hiding the bug *)
  Format.printf
    "@.capacity sweep (fig1a anomaly rate over 400 seeds; smaller caches@.evict stale copies sooner, masking the weakness):@.@.";
  Format.printf "%-14s %12s %12s@." "cache lines" "(1,0) rate" "hit rate";
  List.iter
    (fun n_lines ->
      let runs =
        Engine.Parbatch.map_seeds ~jobs:!jobs 400 (fun seed ->
            let src = Minilang.Interp.source Minilang.Programs.fig1a in
            let m = Coherence.Cmachine.create ~n_lines ~model:Memsim.Model.WO src in
            let sched = Memsim.Sched.adversarial ~seed () in
            let rec loop () =
              match Coherence.Cmachine.enabled m with
              | [] -> ()
              | ds -> Coherence.Cmachine.perform m (Memsim.Sched.choose sched ds); loop ()
            in
            loop ();
            let e = Coherence.Cmachine.to_execution m in
            let hit =
              (value_of_label e "P2:read-y", value_of_label e "P2:read-x")
              = (Some 1, Some 0)
            in
            let ch = ref 0 and cm = ref 0 in
            Array.iter
              (fun (st : Coherence.Cache.stats) ->
                ch := !ch + st.Coherence.Cache.hits;
                cm := !cm + st.Coherence.Cache.misses)
              (Coherence.Cmachine.cache_stats m);
            (hit, !ch, !cm))
      in
      let hits = ref 0 and ch = ref 0 and cm = ref 0 in
      Array.iter
        (fun (hit, h, m) ->
          if hit then incr hits;
          ch := !ch + h;
          cm := !cm + m)
        runs;
      Format.printf "%-14d %9d/400 %11.2f@." n_lines !hits
        (float_of_int !ch /. float_of_int (max 1 (!ch + !cm))))
    [ 2; 1 ]

(* ================================================================== *)
(* perf: bechamel microbenchmarks                                      *)
(* ================================================================== *)

(* machine-readable perf trajectory: BENCH_perf.json, diffable across PRs *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float v = if Float.is_finite v then Printf.sprintf "%.4f" v else "null"

let write_bench_json ~micro ~speedups ~streaming ~parallel ~exploration ~triage
    ~serve ~robust path =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"schema\": 5,\n  \"microbench_ns_per_run\": [\n";
  List.iteri
    (fun i (name, ns, r2) ->
      out "    {\"name\": \"%s\", \"ns_per_run\": %s, \"r_square\": %s}%s\n"
        (json_escape name) (json_float ns) (json_float r2)
        (if i = List.length micro - 1 then "" else ","))
    micro;
  out "  ],\n  \"speedups\": {\n";
  List.iteri
    (fun i (name, v) ->
      out "    \"%s\": %s%s\n" (json_escape name) (json_float v)
        (if i = List.length speedups - 1 then "" else ","))
    speedups;
  out "  },\n";
  let rows, vm_hwm_kb = streaming in
  out "  \"streaming\": {\n    \"vm_hwm_kb\": %s,\n    \"workloads\": [\n"
    (match vm_hwm_kb with Some kb -> string_of_int kb | None -> "null");
  List.iteri
    (fun i (name, events, batch_ns_ev, stream_ns_ev, peak, retired, forced) ->
      out
        "      {\"name\": \"%s\", \"events\": %d, \"batch_ns_per_event\": %s, \
         \"stream_ns_per_event\": %s, \"peak_live\": %d, \"retired\": %d, \
         \"forced\": %d}%s\n"
        (json_escape name) events (json_float batch_ns_ev) (json_float stream_ns_ev)
        peak retired forced
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "    ]\n  },\n";
  out "  \"exploration\": [\n";
  List.iteri
    (fun i (name, naive_n, naive_s, dpor_n, dpor_s) ->
      out
        "    {\"name\": \"enumerate-naive/%s\", \"schedules\": %d, \"wall_s\": %s},\n"
        (json_escape name) naive_n (json_float naive_s);
      out
        "    {\"name\": \"enumerate-dpor/%s\", \"schedules\": %d, \"wall_s\": %s, \"reduction\": %s}%s\n"
        (json_escape name) dpor_n (json_float dpor_s)
        (json_float (float_of_int naive_n /. float_of_int (max 1 dpor_n)))
        (if i = List.length exploration - 1 then "" else ","))
    exploration;
  out "  ],\n  \"triage\": [\n";
  List.iteri
    (fun i (name, data, confirmed, refuted, unknown, wall_s) ->
      out
        "    {\"name\": \"triage/%s\", \"data_candidates\": %d, \"confirmed\": %d, \
         \"refuted\": %d, \"unknown\": %d, \"wall_s\": %s}%s\n"
        (json_escape name) data confirmed refuted unknown (json_float wall_s)
        (if i = List.length triage - 1 then "" else ","))
    triage;
  out "  ],\n  \"serve\": [\n";
  let agg, lag, resume = serve in
  let sessions, events, wall_s, eps = agg in
  out
    "    {\"name\": \"serve/agg-throughput\", \"sessions\": %d, \"events\": %d, \
     \"wall_s\": %s, \"events_per_sec\": %s},\n"
    sessions events (json_float wall_s) (json_float eps);
  out "    {\"name\": \"serve/checkpoint-lag\", \"events_hwm\": %d},\n" lag;
  let resumed_from, resume_s = resume in
  out
    "    {\"name\": \"serve/resume-cost\", \"resumed_from_bytes\": %d, \"wall_s\": %s}\n"
    resumed_from (json_float resume_s);
  out "  ],\n  \"robust\": [\n";
  List.iteri
    (fun i (name, verdict, wall_s, schedules, witness_steps) ->
      out
        "    {\"name\": \"robust/%s\", \"verdict\": \"%s\", \"wall_s\": %s, \
         \"schedules\": %d, \"witness_steps\": %s}%s\n"
        (json_escape name) (json_escape verdict) (json_float wall_s) schedules
        (match witness_steps with Some n -> string_of_int n | None -> "null")
        (if i = List.length robust - 1 then "" else ","))
    robust;
  out "  ],\n";
  let batch, njobs, serial_s, parallel_s = parallel in
  out "  \"parallel_montecarlo\": {\"batch\": %d, \"jobs\": %d, \"serial_s\": %s, \"parallel_s\": %s, \"speedup\": %s}\n}\n"
    batch njobs (json_float serial_s) (json_float parallel_s)
    (json_float (serial_s /. parallel_s));
  close_out oc

(* peak resident set of this process, from the kernel's high-water mark *)
let vm_hwm_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> None
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
          String.sub line 6 (String.length line - 6)
          |> String.split_on_char '\t'
          |> List.concat_map (String.split_on_char ' ')
          |> List.filter (fun s -> s <> "")
          |> (function n :: _ -> int_of_string_opt n | [] -> None)
        else scan ()
    in
    let r = (try scan () with Failure _ -> None) in
    close_in_noerr ic;
    r

(* a long, fully synchronized workload in the stream-ordered layout: a
   token ring where each round acquires the token, does owned work, and
   releases it.  hb1 totally orders the rounds, so §5 retirement keeps
   the live set O(procs) while the trace grows without bound. *)
let token_ring_stream ~procs ~rounds =
  let buf = Buffer.create (rounds * 96) in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt
  in
  let n_events = 3 * rounds in
  line "weakrace-trace 1";
  line "model SC";
  line "truncated 0";
  line "procs %d locs %d events %d" procs (1 + procs) n_events;
  let seq = Array.make procs 0 in
  let eid = ref 0 and slot = ref 0 in
  let prev_release = ref (-1) in
  let sync_eids = ref [] in
  for r = 0 to rounds - 1 do
    let h = r mod procs in
    let next () = let e = !eid in incr eid; e in
    let nseq () = let s = seq.(h) in seq.(h) <- s + 1; s in
    let a = next () in
    if !prev_release < 0 then line "so1 - %d" a else line "so1 %d %d" !prev_release a;
    line "event %d proc %d seq %d sync loc 0 kind R cls acquire value 1 slot %d label -"
      a h (nseq ()) !slot;
    incr slot;
    sync_eids := a :: !sync_eids;
    line "event %d proc %d seq %d comp reads - writes %d" (next ()) h (nseq ()) (1 + h);
    let rl = next () in
    line "event %d proc %d seq %d sync loc 0 kind W cls release value 1 slot %d label -"
      rl h (nseq ()) !slot;
    incr slot;
    sync_eids := rl :: !sync_eids;
    prev_release := rl
  done;
  line "syncorder 0 %s" (String.concat "," (List.rev_map string_of_int !sync_eids));
  line "end %d" n_events;
  Buffer.contents buf

let perf () =
  section_header "perf: analysis pipeline microbenchmarks (bechamel, OLS ns/run)";
  let open Bechamel in
  let mk_exec region =
    run_weak ~model:Memsim.Model.WO ~seed:3 (Minilang.Programs.queue_bug ~region ())
  in
  let exec_of_config cfg seed =
    run_weak ~sched:`Random ~model:Memsim.Model.WO ~seed
      (Minilang.Gen.random_racy ~config:cfg ~seed ())
  in
  let big_cfg =
    { Minilang.Gen.n_procs = 4; n_shared = 6; n_locks = 3; ops_per_proc = 24; sync_freq = 5 }
  in
  let huge_cfg =
    { Minilang.Gen.n_procs = 8; n_shared = 12; n_locks = 4; ops_per_proc = 100;
      sync_freq = 6 }
  in
  let xl_cfg =
    { Minilang.Gen.n_procs = 8; n_shared = 16; n_locks = 4; ops_per_proc = 400;
      sync_freq = 8 }
  in
  let e100 = mk_exec 100 and e400 = mk_exec 400 in
  let t100 = Tracing.Trace.of_execution e100 in
  let t400 = Tracing.Trace.of_execution e400 in
  let text400 = Tracing.Codec.encode t400 in
  let text400v2 =
    Tracing.Codec.encode ~version:Tracing.Codec.version_checksummed t400
  in
  let ebig = exec_of_config big_cfg 5 in
  let ehuge = exec_of_config huge_cfg 7 in
  let thuge = Tracing.Trace.of_execution ehuge in
  let txl = Tracing.Trace.of_execution (exec_of_config xl_cfg 11) in
  let hb400v = Racedetect.Hb.build t400 in
  let hb400c = Racedetect.Hb.build ~index:`Closure t400 in
  let hbhugev = Racedetect.Hb.build thuge in
  let hbhugec = Racedetect.Hb.build ~index:`Closure thuge in
  let hbxlv = Racedetect.Hb.build txl in
  (* fence pipeline inputs: the delay-set rows reuse a precomputed lint
     report so they time the critical-cycle enumeration alone; the plan
     rows run the whole synthesis (lint fixpoint + delay set + greedy
     promotion rounds, each of which re-lints) *)
  let qb = Minilang.Programs.queue_bug () in
  let qb_lint = Staticcheck.Lint.analyze qb in
  let pet = Minilang.Programs.peterson in
  let pet_lint = Staticcheck.Lint.analyze pet in
  Format.printf
    "hb1 index in use: %s (queue400), %s (random-8x100, %d events); xl trace: %d events@."
    (if Racedetect.Hb.uses_clocks hb400v then "vclock" else "closure")
    (if Racedetect.Hb.uses_clocks hbhugev then "vclock" else "closure")
    (Tracing.Trace.n_events thuge) (Tracing.Trace.n_events txl);
  let tests =
    [
      Test.make ~name:"simulate/queue100" (Staged.stage (fun () -> ignore (mk_exec 100)));
      Test.make ~name:"segment/queue400"
        (Staged.stage (fun () -> ignore (Tracing.Trace.of_execution e400)));
      Test.make ~name:"hb1-vclock/queue400"
        (Staged.stage (fun () -> ignore (Racedetect.Hb.build t400)));
      Test.make ~name:"hb1-closure/queue400"
        (Staged.stage (fun () -> ignore (Racedetect.Hb.build ~index:`Closure t400)));
      Test.make ~name:"hb1-vclock/rand-8x100"
        (Staged.stage (fun () -> ignore (Racedetect.Hb.build thuge)));
      Test.make ~name:"hb1-closure/rand-8x100"
        (Staged.stage (fun () -> ignore (Racedetect.Hb.build ~index:`Closure thuge)));
      Test.make ~name:"hb1-vclock/rand-8x400"
        (Staged.stage (fun () -> ignore (Racedetect.Hb.build txl)));
      Test.make ~name:"hb1-closure/rand-8x400"
        (Staged.stage (fun () -> ignore (Racedetect.Hb.build ~index:`Closure txl)));
      (* races-vclock = the reference pair-scan engine over the vclock
         index; races-epoch = the epoch-compressed engine (what
         Race.find_all now dispatches to on acyclic hb1) *)
      Test.make ~name:"races-vclock/queue400"
        (Staged.stage (fun () -> ignore (Racedetect.Race.find_all_vector hb400v)));
      Test.make ~name:"races-epoch/queue400"
        (Staged.stage (fun () -> ignore (Racedetect.Race.find_all hb400v)));
      Test.make ~name:"races-closure/queue400"
        (Staged.stage (fun () -> ignore (Racedetect.Race.find_all hb400c)));
      Test.make ~name:"races-vclock/rand-8x100"
        (Staged.stage (fun () -> ignore (Racedetect.Race.find_all_vector hbhugev)));
      Test.make ~name:"races-epoch/rand-8x100"
        (Staged.stage (fun () -> ignore (Racedetect.Race.find_all hbhugev)));
      Test.make ~name:"races-closure/rand-8x100"
        (Staged.stage (fun () -> ignore (Racedetect.Race.find_all hbhugec)));
      Test.make ~name:"races-vclock/rand-8x400"
        (Staged.stage (fun () -> ignore (Racedetect.Race.find_all_vector hbxlv)));
      Test.make ~name:"races-epoch/rand-8x400"
        (Staged.stage (fun () -> ignore (Racedetect.Race.find_all hbxlv)));
      Test.make ~name:"analyze/queue100"
        (Staged.stage (fun () -> ignore (Racedetect.Postmortem.analyze t100)));
      Test.make ~name:"analyze/queue400"
        (Staged.stage (fun () -> ignore (Racedetect.Postmortem.analyze t400)));
      Test.make ~name:"analyze/rand-8x100"
        (Staged.stage (fun () -> ignore (Racedetect.Postmortem.analyze thuge)));
      Test.make ~name:"analyze-closure/rand-8x100"
        (Staged.stage (fun () ->
             ignore (Racedetect.Postmortem.analyze ~index:`Closure thuge)));
      (* full pipeline under the SHB reporting order: hb1 analysis plus rf
         reconstruction and the staged-clock extras pass *)
      Test.make ~name:"shb/queue400"
        (Staged.stage (fun () ->
             ignore (Racedetect.Postmortem.analyze ~order:`Shb t400)));
      Test.make ~name:"shb/rand-8x100"
        (Staged.stage (fun () ->
             ignore (Racedetect.Postmortem.analyze ~order:`Shb thuge)));
      Test.make ~name:"onthefly/queue400"
        (Staged.stage (fun () -> ignore (Racedetect.Onthefly.detect e400)));
      Test.make ~name:"onthefly/random-big"
        (Staged.stage (fun () -> ignore (Racedetect.Onthefly.detect ebig)));
      Test.make ~name:"codec-encode/queue400"
        (Staged.stage (fun () -> ignore (Tracing.Codec.encode t400)));
      Test.make ~name:"codec-decode/queue400"
        (Staged.stage (fun () -> ignore (Tracing.Codec.decode text400)));
      (* v2 framing: CRC per line + epoch marks, strict vs salvage decode
         (both on undamaged input, so the costs are the framing itself) *)
      Test.make ~name:"codec-decode-v2/queue400"
        (Staged.stage (fun () -> ignore (Tracing.Codec.decode text400v2)));
      Test.make ~name:"salvage-decode/queue400"
        (Staged.stage (fun () ->
             ignore
               (Tracing.Codec.fold_salvage_string text400v2 ~init:()
                  ~f:(fun () _ -> Ok ()))));
      Test.make ~name:"ophb-races/random-big"
        (Staged.stage (fun () ->
             ignore (Racedetect.Ophb.data_races (Racedetect.Ophb.build ebig))));
      (* the static analyzer never executes anything: whole-program memory
         fixpoint + per-proc abstract interpretation + candidate pairing *)
      Test.make ~name:"lint/queue_bug"
        (Staged.stage (fun () ->
             ignore (Staticcheck.Lint.analyze (Minilang.Programs.queue_bug ()))));
      Test.make ~name:"lint/peterson"
        (Staged.stage (fun () ->
             ignore (Staticcheck.Lint.analyze Minilang.Programs.peterson)));
      Test.make ~name:"lint/barrier_phases"
        (Staged.stage (fun () ->
             ignore
               (Staticcheck.Lint.analyze (Minilang.Programs.barrier_phases ()))));
      Test.make ~name:"fence/delayset/queue_bug"
        (Staged.stage (fun () ->
             ignore (Staticcheck.Delayset.analyze qb qb_lint.Staticcheck.Lint.results)));
      Test.make ~name:"fence/delayset/peterson"
        (Staged.stage (fun () ->
             ignore
               (Staticcheck.Delayset.analyze pet pet_lint.Staticcheck.Lint.results)));
      Test.make ~name:"fence/plan/queue_bug"
        (Staged.stage (fun () -> ignore (Staticcheck.Repair.plan qb)));
      Test.make ~name:"fence/plan/peterson"
        (Staged.stage (fun () -> ignore (Staticcheck.Repair.plan pet)));
      (* the knob-driven variant machine against the legacy enum path:
         variants/simulate-wo is the same lattice point as
         simulate/queue100 (WO), dispatched through the per-knob issue
         rules instead of the hand-written model cases — the pair bounds
         the refactor's overhead.  The other rows exercise knobs with no
         enum equivalent (bounded buffers, stall-on-conflict reads) *)
      Test.make ~name:"variants/simulate-wo/queue100"
        (Staged.stage (fun () ->
             ignore
               (run_weak ~model:(Memsim.Model.Custom Memsim.Variant.wo) ~seed:3
                  (Minilang.Programs.queue_bug ~region:100 ()))));
      Test.make ~name:"variants/simulate-bounded2/queue100"
        (Staged.stage (fun () ->
             ignore
               (run_weak
                  ~model:
                    (Memsim.Model.Custom
                       { Memsim.Variant.wo with depth = Memsim.Variant.Bounded 2 })
                  ~seed:3
                  (Minilang.Programs.queue_bug ~region:100 ()))));
      Test.make ~name:"variants/simulate-stall/queue100"
        (Staged.stage (fun () ->
             ignore
               (run_weak
                  ~model:
                    (Memsim.Model.Custom
                       { Memsim.Variant.wo with read = Memsim.Variant.Stall })
                  ~seed:3
                  (Minilang.Programs.queue_bug ~region:100 ()))));
      Test.make ~name:"variants/spec-parse"
        (Staged.stage (fun () ->
             ignore
               (Memsim.Model.of_spec "sb:depth=2,read=stall,retire=fifo,fence=nop")));
    ]
  in
  (* full mode runs long enough that the noisy rows (segment/queue400,
     hb1-vclock/queue400 historically fit at r² ≈ 0.85) reach r² ≥ 0.95;
     --quick trades fit quality for CI wall-clock *)
  let cfg =
    if !quick then Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None ()
    else Benchmark.cfg ~limit:10000 ~quota:(Time.second 2.0) ~kde:None ()
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  Format.printf "%-24s %14s %10s@." "benchmark" "ns/run" "r^2";
  let micro =
    List.concat_map
      (fun test ->
        List.map
          (fun elt ->
            let m = Benchmark.run cfg Toolkit.Instance.[ monotonic_clock ] elt in
            let est = Analyze.one ols Toolkit.Instance.monotonic_clock m in
            let ns =
              match Analyze.OLS.estimates est with
              | Some (v :: _) -> v
              | _ -> nan
            in
            let r2 = Option.value ~default:nan (Analyze.OLS.r_square est) in
            Format.printf "%-24s %14.0f %10.4f@." (Test.Elt.name elt) ns r2;
            (Test.Elt.name elt, ns, r2))
          (Test.elements test))
      tests
  in
  let ns_of name =
    match List.find_opt (fun (n, _, _) -> n = name) micro with
    | Some (_, ns, _) -> ns
    | None -> nan
  in
  let speedups =
    [
      ("hb1_closure_over_vclock/queue400",
       ns_of "hb1-closure/queue400" /. ns_of "hb1-vclock/queue400");
      ("hb1_closure_over_vclock/rand-8x100",
       ns_of "hb1-closure/rand-8x100" /. ns_of "hb1-vclock/rand-8x100");
      ("hb1_closure_over_vclock/rand-8x400",
       ns_of "hb1-closure/rand-8x400" /. ns_of "hb1-vclock/rand-8x400");
      ("races_closure_over_vclock/rand-8x100",
       ns_of "races-closure/rand-8x100" /. ns_of "races-vclock/rand-8x100");
      ("analyze_closure_over_vclock/rand-8x100",
       ns_of "analyze-closure/rand-8x100" /. ns_of "analyze/rand-8x100");
      ("races_vclock_over_epoch/queue400",
       ns_of "races-vclock/queue400" /. ns_of "races-epoch/queue400");
      ("races_vclock_over_epoch/rand-8x100",
       ns_of "races-vclock/rand-8x100" /. ns_of "races-epoch/rand-8x100");
      ("races_vclock_over_epoch/rand-8x400",
       ns_of "races-vclock/rand-8x400" /. ns_of "races-epoch/rand-8x400");
      (* >1 means the knob-driven dispatch costs more than the enum path *)
      ("variant_knobs_over_enum/queue100",
       ns_of "variants/simulate-wo/queue100" /. ns_of "simulate/queue100");
    ]
  in
  Format.printf "@.closure-vs-vclock (hb1 index; >1 means the vclock path wins):@.";
  List.iter (fun (n, v) -> Format.printf "  %-40s %8.2fx@." n v) speedups;
  (* epoch-vs-vector regression gate: the epoch engine must not be slower
     than the reference pair scan it replaced; --quick turns a regression
     into a CI failure.  The short --quick quota leaves the µs-scale
     queue400 rows with poor OLS fits (r² can drop below 0.3), so allow
     10% measurement slack before declaring a regression — a real
     regression from losing the O(1) fast path is 2x+, far outside it *)
  let epoch_rows = [ "queue400"; "rand-8x100"; "rand-8x400" ] in
  let regressed =
    List.filter
      (fun row ->
        let ratio =
          ns_of ("races-vclock/" ^ row) /. ns_of ("races-epoch/" ^ row)
        in
        Float.is_finite ratio && ratio < 0.9)
      epoch_rows
  in
  if regressed <> [] then begin
    Format.eprintf "bench: races-epoch regressed below races-vclock on: %s@."
      (String.concat ", " regressed);
    if !quick then exit 1
  end;
  (* serial vs domain-parallel Monte-Carlo: the fig1b-style loop that every
     bench section now runs through Engine.Parbatch *)
  let batch = 48 in
  let montecarlo j =
    Engine.Parbatch.map_seeds ~jobs:j batch (fun seed ->
        let e = exec_of_config big_cfg seed in
        List.length
          (Racedetect.Postmortem.data_races (Racedetect.Postmortem.analyze_execution e)))
  in
  ignore (montecarlo 1 : int array) (* warm up *);
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* at least two domains so the parallel path is exercised even on a
     single-core box (where the speedup will honestly be ~1x) *)
  let njobs = max 2 (Engine.Parbatch.default_jobs ()) in
  let serial_r, serial_s = wall (fun () -> montecarlo 1) in
  let par_r, par_s = wall (fun () -> montecarlo njobs) in
  Format.printf
    "@.Monte-Carlo batch (%d simulate+analyze runs): serial %.3fs, %d domains %.3fs — %.2fx; identical results: %b@."
    batch serial_s njobs par_s (serial_s /. par_s) (serial_r = par_r);
  (* streaming vs batch analysis: same report, §5 event GC bounds memory.
     ns/event compares full pipelines (parse + hb1 + races + partitions);
     peak-live vs events is the paper's bounded-trace-buffer claim. *)
  let stream_cases =
    [
      ("queue400", Tracing.Codec.encode_stream t400);
      ("rand-8x400", Tracing.Codec.encode_stream txl);
      ("token-ring-8x2000", token_ring_stream ~procs:8 ~rounds:2000);
    ]
  in
  Format.printf
    "@.streaming vs batch (identical reports; peak-live << events on@.synchronized stream-ordered traces):@.@.";
  Format.printf "%-20s %8s %12s %12s %10s %8s@." "workload" "events" "batch-ns/ev"
    "stream-ns/ev" "peak-live" "retired";
  let reps = 3 in
  let stream_rows =
    List.map
      (fun (name, text) ->
        let st =
          match Racedetect.Stream.analyze_string text with
          | Ok (_, st) -> st
          | Error msg -> failwith ("stream bench: " ^ msg)
        in
        let events = st.Racedetect.Stream.total_events in
        let (), batch_s =
          wall (fun () ->
              for _ = 1 to reps do
                match Tracing.Codec.decode text with
                | Ok t -> ignore (Racedetect.Postmortem.analyze t)
                | Error msg -> failwith ("batch bench: " ^ msg)
              done)
        in
        let (), stream_s =
          wall (fun () ->
              for _ = 1 to reps do
                ignore (Racedetect.Stream.analyze_string text)
              done)
        in
        let per_ev s = s *. 1e9 /. float_of_int (reps * max 1 events) in
        let peak = st.Racedetect.Stream.peak_live in
        let retired = st.Racedetect.Stream.retired in
        let forced = st.Racedetect.Stream.forced_retired in
        Format.printf "%-20s %8d %12.0f %12.0f %10d %8d@." name events
          (per_ev batch_s) (per_ev stream_s) peak retired;
        (name, events, per_ev batch_s, per_ev stream_s, peak, retired, forced))
      stream_cases
  in
  let hwm = vm_hwm_kb () in
  (match hwm with
   | Some kb -> Format.printf "@.process peak RSS (VmHWM): %d kB@." kb
   | None -> ());
  (* checkpoint overhead: the same streaming drive, persisting the whole
     engine (Marshal + CRC + atomic rename) every N events vs never *)
  let ckpt_text = token_ring_stream ~procs:8 ~rounds:2000 in
  let ckpt_drive every =
    let engine = Racedetect.Stream.create () in
    let d = Tracing.Codec.decoder () in
    let file = Filename.temp_file "weakrace-bench" ".ckpt" in
    let push () r = Racedetect.Stream.push engine r in
    let last = ref 0 in
    let len = String.length ckpt_text in
    let chunk = 65536 in
    let pos = ref 0 in
    while !pos < len do
      let n = min chunk (len - !pos) in
      (match Tracing.Codec.feed d (String.sub ckpt_text !pos n) ~f:push () with
       | Ok () -> ()
       | Error msg -> failwith ("checkpoint bench: " ^ msg));
      pos := !pos + n;
      match every with
      | Some k when Racedetect.Stream.seen_events engine - !last >= k ->
        Racedetect.Stream.checkpoint file engine ~extra:!pos;
        last := Racedetect.Stream.seen_events engine
      | _ -> ()
    done;
    (match Tracing.Codec.finish_feed d ~f:push () with
     | Ok () -> ()
     | Error msg -> failwith ("checkpoint bench: " ^ msg));
    (match Racedetect.Stream.finish engine with
     | Ok _ -> ()
     | Error msg -> failwith ("checkpoint bench: " ^ msg));
    (try Sys.remove file with Sys_error _ -> ());
    Racedetect.Stream.seen_events engine
  in
  let ckpt_events = ckpt_drive None (* warm *) in
  let ckpt_per_ev s = s *. 1e9 /. float_of_int (max 1 ckpt_events) in
  let _, ckpt_none_s = wall (fun () -> ignore (ckpt_drive None : int)) in
  let _, ckpt_1k_s = wall (fun () -> ignore (ckpt_drive (Some 1000) : int)) in
  Format.printf
    "@.checkpoint overhead (token-ring-8x2000, %d events): none %.0f ns/ev, \
     every-1000 %.0f ns/ev (+%.1f%%)@."
    ckpt_events (ckpt_per_ev ckpt_none_s) (ckpt_per_ev ckpt_1k_s)
    ((ckpt_1k_s /. ckpt_none_s -. 1.) *. 100.);
  let micro =
    micro
    @ [
        ("checkpoint-overhead/none", ckpt_per_ev ckpt_none_s, nan);
        ("checkpoint-overhead/every-1000", ckpt_per_ev ckpt_1k_s, nan);
      ]
  in
  (* DPOR vs naive enumeration: same behaviour coverage, exponentially
     fewer schedules on programs with independent work *)
  Format.printf "@.exhaustive SC exploration, naive vs DPOR (same behaviours):@.@.";
  Format.printf "%-18s %12s %12s %10s@." "program" "naive" "dpor" "reduction";
  let explore_rows =
    List.map
      (fun (name, p) ->
        let mk () = Minilang.Interp.source p in
        let naive, naive_s =
          wall (fun () -> Memsim.Enumerate.explore ~limit:2_000_000 mk)
        in
        let dpor, dpor_s =
          wall (fun () ->
              Explore.Dpor.explore ~limit:2_000_000 ~model:Memsim.Model.SC mk)
        in
        let nn = List.length naive.Memsim.Enumerate.executions in
        let dn = dpor.Explore.Dpor.schedules in
        Format.printf "%-18s %12d %12d %9.1fx@." name nn dn
          (float_of_int nn /. float_of_int (max 1 dn));
        (name, nn, naive_s, dn, dpor_s))
      [
        ("fig1a", Minilang.Programs.fig1a);
        ("disjoint", Minilang.Programs.disjoint);
        ("queue_bug-r3", Minilang.Programs.queue_bug ~region:3 ~stale:1 ());
      ]
  in
  (* candidate triage: lint + DPOR-directed verification, end to end *)
  Format.printf "@.candidate triage (static candidates -> dynamic verdicts):@.@.";
  Format.printf "%-18s %6s %10s %8s %8s %9s@." "program" "data" "confirmed"
    "refuted" "unknown" "wall";
  let triage_rows =
    List.map
      (fun (name, p) ->
        let r, s = wall (fun () -> Explore.Triage.run ~jobs:!jobs p) in
        let count st =
          List.length
            (List.filter (fun v -> v.Explore.Triage.status = st) r.Explore.Triage.data)
        in
        let data = List.length r.Explore.Triage.data in
        let c = count Explore.Triage.Confirmed in
        let rf = count Explore.Triage.Refuted in
        let u = count Explore.Triage.Unknown in
        Format.printf "%-18s %6d %10d %8d %8d %8.2fs@." name data c rf u s;
        (name, data, c, rf, u, s))
      [
        ("queue_bug", Minilang.Programs.queue_bug ());
        ("peterson", Minilang.Programs.peterson);
        ("counter_racy", Minilang.Programs.counter_racy);
      ]
  in
  (* the serve daemon end to end, in process: aggregate session
     throughput, the worst events-behind-checkpoint window (what a
     SIGKILL could cost), and the cost of resuming a parked session *)
  Format.printf "@.serve daemon (in-process, unix socket, checkpointing on):@.";
  let serve_dir =
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "weakrace-bench-serve-%d" (Unix.getpid ()))
    in
    (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  let serve_fixtures =
    let config =
      { Minilang.Gen.n_procs = 4; n_shared = 6; n_locks = 2; ops_per_proc = 80;
        sync_freq = 4 }
    in
    match
      Serve.Harness.fixtures ~seeds_per_program:2
        [ ("gen_racy", Minilang.Gen.random_racy ~config ~seed:7 ());
          ("gen_racefree", Minilang.Gen.random_racefree ~config ~seed:11 ()) ]
    with
    | Ok fx -> fx
    | Error msg -> failwith ("serve bench fixtures: " ^ msg)
  in
  let ckdir = Filename.concat serve_dir "ck" in
  let start_server () =
    let addr = Serve.Server.Unix_sock (Filename.concat serve_dir "s.sock") in
    let stop = Atomic.make false in
    let ready = Atomic.make false in
    let cfg =
      { (Serve.Server.default_config addr) with
        Serve.Server.shards = max 2 !jobs;
        checkpoint_dir = Some ckdir;
        checkpoint_every = 64;
        resume = true;
        ready = (fun _ -> Atomic.set ready true) }
    in
    let dom = Domain.spawn (fun () -> Serve.Server.run ~stop cfg) in
    while not (Atomic.get ready) do Unix.sleepf 0.005 done;
    (addr, stop, dom)
  in
  let stop_server (stop, dom) =
    Atomic.set stop true;
    match Domain.join dom with
    | Ok () -> ()
    | Error msg -> failwith ("serve bench: " ^ msg)
  in
  let addr, stop, dom = start_server () in
  let serve_sessions = if !quick then 50 else 400 in
  let lr =
    Serve.Harness.load ~concurrency:8 ~sessions:serve_sessions
      ~fixtures:serve_fixtures addr
  in
  if lr.Serve.Harness.l_failures <> [] then
    failwith
      ("serve bench: " ^ String.concat "; " lr.Serve.Harness.l_failures);
  Format.printf "  %a@." Serve.Harness.pp_load lr;
  let ckpt_lag =
    match Serve.Client.metrics addr with
    | Error msg -> failwith ("serve bench metrics: " ^ msg)
    | Ok snap ->
      Option.value ~default:0
        (Serve.Client.metric_value snap "checkpoint_lag_hwm")
  in
  Format.printf "  checkpoint lag high-water mark: %d events@." ckpt_lag;
  (* park a session three quarters in, stop, restart, and time the
     resumed completion (restore + tail feed + final analysis) *)
  let rf = serve_fixtures.(0) in
  let resume_row =
    match Serve.Client.raw_open addr ~id:"bench-resume" with
    | Error msg -> failwith ("serve bench resume: " ^ msg)
    | Ok (fd, _) ->
      let cut = String.length rf.Serve.Harness.f_trace * 3 / 4 in
      (match
         Serve.Client.raw_send fd (String.sub rf.Serve.Harness.f_trace 0 cut)
       with
       | Ok () -> ()
       | Error msg -> failwith ("serve bench resume: " ^ msg));
      Unix.sleepf 0.3 (* let the bytes land before the graceful stop parks *);
      stop_server (stop, dom);
      (try Unix.close fd with Unix.Unix_error _ -> ());
      let addr2, stop2, dom2 = start_server () in
      let t0 = Unix.gettimeofday () in
      let o =
        match
          Serve.Client.session addr2 ~id:"bench-resume"
            ~trace:rf.Serve.Harness.f_trace
        with
        | Ok o -> o
        | Error msg -> failwith ("serve bench resume: " ^ msg)
      in
      let resume_s = Unix.gettimeofday () -. t0 in
      if o.Serve.Client.report <> rf.Serve.Harness.f_report then
        failwith "serve bench: resumed report differs from reference";
      Format.printf
        "  resume cost: %.1f ms (resumed from byte %d of %d, report identical)@."
        (resume_s *. 1e3) o.Serve.Client.resumed_from
        (String.length rf.Serve.Harness.f_trace);
      stop_server (stop2, dom2);
      (o.Serve.Client.resumed_from, resume_s)
  in
  let serve_agg =
    ( lr.Serve.Harness.l_sessions, lr.Serve.Harness.l_events,
      lr.Serve.Harness.l_wall, lr.Serve.Harness.l_events_per_sec )
  in
  (* robustness certification: the static pass on the paper's queue bug
     (cycle classification only, delay-set analysis precomputed) and the
     full static+closure pipeline on the litmus programs whose verdicts
     the matrix test pins.  In --quick mode a wrong verdict — or an
     unverified witness — is a CI failure, like the epoch gate above. *)
  Format.printf "@.robustness certification:@.";
  let wo = Memsim.Model.WO in
  let robust_rows, robust_bad =
    let qb = Minilang.Programs.queue_bug ~region:100 () in
    let lint = Staticcheck.Lint.analyze qb in
    let ds = Staticcheck.Delayset.analyze qb lint.Staticcheck.Lint.results in
    let (sres, static_s) =
      wall (fun () ->
          Staticcheck.Robust.check (Memsim.Model.variant wo)
            lint.Staticcheck.Lint.results ds)
    in
    let static_row =
      ( "static/queue_bug100", Staticcheck.Robust.verdict_str sres, static_s,
        0, None )
    in
    let closure_cases =
      (* program, model, expected verdict head *)
      [
        ("dekker", Minilang.Programs.dekker, wo, `Not_robust);
        ("dekker_fenced", Minilang.Programs.dekker_fenced, wo, `Robust);
        ( "read_own_write/sb-bypass", Minilang.Programs.read_own_write,
          (match Memsim.Model.of_spec "sb-bypass" with
          | Ok m -> m
          | Error e -> failwith e),
          `Not_robust );
      ]
    in
    let bad = ref [] in
    let rows =
      List.map
        (fun (name, p, model, expect) ->
          let (r, s) = wall (fun () -> Explore.Robustcheck.run ~model p) in
          let module RC = Explore.Robustcheck in
          let witness_steps, ok =
            match (r.RC.verdict, expect) with
            | RC.Not_robust w, `Not_robust ->
              (Some (List.length w.RC.w_schedule), w.RC.w_verified = Ok ())
            | RC.Robust_verdict _, `Robust -> (None, true)
            | _ -> (None, false)
          in
          if not ok then bad := name :: !bad;
          ( "closure/" ^ name, RC.verdict_str r, s, r.RC.schedules,
            witness_steps ))
        closure_cases
    in
    (static_row :: rows, List.rev !bad)
  in
  List.iter
    (fun (name, verdict, s, scheds, wsteps) ->
      Format.printf "  %-32s %-18s %8.1f ms  %d schedule(s)%s@." name verdict
        (s *. 1e3) scheds
        (match wsteps with
        | Some n -> Printf.sprintf ", %d-step witness" n
        | None -> ""))
    robust_rows;
  if robust_bad <> [] then begin
    Format.eprintf "bench: robust verdict/witness gate failed on: %s@."
      (String.concat ", " robust_bad);
    if !quick then exit 1
  end;
  let path = "BENCH_perf.json" in
  write_bench_json ~micro ~speedups ~streaming:(stream_rows, hwm)
    ~parallel:(batch, njobs, serial_s, par_s) ~exploration:explore_rows
    ~triage:triage_rows ~serve:(serve_agg, ckpt_lag, resume_row)
    ~robust:robust_rows path;
  Format.printf "wrote %s@." path

(* ================================================================== *)

let sections =
  [
    ("fig1a", fig1a); ("fig1b", fig1b); ("fig2", fig2); ("fig3", fig3);
    ("cond34", cond34); ("thm41-42", thm41_42); ("overhead", overhead);
    ("envelope", envelope); ("ablation", ablation); ("coherence", coherence);
    ("perf", perf);
  ]

let () =
  (* strip -j/--jobs[=]N; whatever remains selects sections *)
  let rec parse_args acc = function
    | [] -> List.rev acc
    | ("-j" | "--jobs") :: n :: rest -> jobs := int_of_string n; parse_args acc rest
    | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" ->
      jobs := int_of_string (String.sub arg 7 (String.length arg - 7));
      parse_args acc rest
    | "--quick" :: rest -> quick := true; parse_args acc rest
    | arg :: rest -> parse_args (arg :: acc) rest
  in
  let names = parse_args [] (List.tl (Array.to_list Sys.argv)) in
  if !jobs < 1 then begin
    Format.eprintf "bench: --jobs must be >= 1@.";
    exit 1
  end;
  let requested =
    match names with
    (* bare --quick is the CI smoke entry point: just the perf section,
       with the epoch-vs-vector regression gate armed *)
    | [] when !quick -> [ "perf" ]
    | [] | [ "all" ] -> List.map fst sections
    | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
        Format.eprintf "unknown section %S (have: %s)@." name
          (String.concat ", " (List.map fst sections));
        exit 1)
    requested
