(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320), the checksum
   used by the v2 trace framing.  Values are plain non-negative [int]s
   below 2^32, so they print with %08x and marshal without boxing. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s =
  let t = Lazy.force table in
  let c = ref (crc lxor 0xffffffff) in
  for i = 0 to String.length s - 1 do
    c := t.((!c lxor Char.code (String.unsafe_get s i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

let string s = update 0 s
