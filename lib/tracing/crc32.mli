(** CRC-32 (IEEE 802.3) over strings, for the v2 trace framing and the
    checkpoint files.  A checksum is a non-negative [int] below 2^32. *)

val string : string -> int
(** CRC-32 of a whole string. *)

val update : int -> string -> int
(** Incremental form: [update (update 0 a) b = string (a ^ b)]. *)
