(** Trace corruption, for the §5 "pathological programs" discussion.

    A program whose data is left inconsistent by a data race can, in the
    worst case, "randomly overwrite the program's own address space" —
    including the trace buffers.  These injectors simulate such damage on
    an encoded trace so the test suite can confirm the decoder fails
    loudly rather than inventing races (or their absence). *)

type damage =
  | Garble_bytes of int   (** overwrite N random bytes with random junk *)
  | Drop_lines of int     (** delete N random lines *)
  | Swap_events           (** exchange the ids of two random event lines *)
  | Truncate_tail of int  (** cut the final N bytes *)
  | Flip_bits of int      (** flip N random single bits *)
  | Duplicate_lines of int (** replay N random lines after themselves *)

val apply : seed:int -> damage -> string -> string
(** Deterministically damage an encoded trace. *)
