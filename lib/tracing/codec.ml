let magic = "weakrace-trace"
let version = 1
let version_checksummed = 2

(* Dimension cap applied to the procs/locs/events header.  A corrupted
   header must not drive [Array.make] into [Invalid_argument] or an
   out-of-memory abort; anything past this bound is rejected as a parse
   error instead.  4M events is far beyond any trace this repo emits. *)
let max_dim = 1 lsl 22

(* Epoch marker cadence for the checksummed (v2) framing: one
   [mark <events> <crc>] line per this many event lines, plus a final
   mark as the very last line of the file. *)
let mark_period = 32

let encode_class = function
  | Memsim.Op.Data -> "data"
  | Memsim.Op.Acquire -> "acquire"
  | Memsim.Op.Release -> "release"
  | Memsim.Op.Plain_sync -> "sync"

let decode_class = function
  | "data" -> Some Memsim.Op.Data
  | "acquire" -> Some Memsim.Op.Acquire
  | "release" -> Some Memsim.Op.Release
  | "sync" -> Some Memsim.Op.Plain_sync
  | _ -> None

let encode_set s =
  match Graphlib.Bitset.elements s with
  | [] -> "-"
  | xs -> String.concat "," (List.map string_of_int xs)

let event_line (ev : Event.t) =
  match ev.Event.body with
  | Event.Computation { reads; writes; _ } ->
    Printf.sprintf "event %d proc %d seq %d comp reads %s writes %s" ev.Event.eid
      ev.Event.proc ev.Event.seq (encode_set reads) (encode_set writes)
  | Event.Sync { op; slot } ->
    Printf.sprintf "event %d proc %d seq %d sync loc %d kind %s cls %s value %d slot %d label %s"
      ev.Event.eid ev.Event.proc ev.Event.seq op.Memsim.Op.loc
      (match op.Memsim.Op.kind with Memsim.Op.Read -> "R" | Memsim.Op.Write -> "W")
      (encode_class op.Memsim.Op.cls)
      op.Memsim.Op.value slot
      (match op.Memsim.Op.label with None -> "-" | Some l -> l)

(* -- emitter ---------------------------------------------------------- *)

(* All encoders funnel through an [emitter] so the two on-disk framings
   share one code path.  At [version] (v1) it appends plain lines and the
   output is byte-identical to the historical format.  At
   [version_checksummed] (v2) every line after the magic carries a
   [ ~%08x] CRC-32 suffix over its own body, a cumulative CRC + event
   count runs over every non-mark body line (body text plus the newline,
   suffix excluded), and a [mark <events> <crc>] line is emitted every
   [mark_period] event lines and once more as the final line.  Marks are
   excluded from the cumulative CRC so a lost mark is benign. *)
type emitter = {
  ebuf : Buffer.t;
  ever : int;
  mutable ecum : int;
  mutable eevents : int;
  mutable esince : int; (* event lines since the last mark *)
}

let emitter v =
  if v <> version && v <> version_checksummed then
    invalid_arg (Printf.sprintf "Codec: unsupported format version %d" v);
  { ebuf = Buffer.create 4096; ever = v; ecum = 0; eevents = 0; esince = 0 }

let checksummed e = e.ever >= version_checksummed

let emit_line e body =
  Buffer.add_string e.ebuf body;
  if checksummed e then
    Printf.bprintf e.ebuf " ~%08x" (Crc32.string body);
  Buffer.add_char e.ebuf '\n';
  if checksummed e then e.ecum <- Crc32.update e.ecum (body ^ "\n")

let emit_mark e =
  if checksummed e then begin
    let body = Printf.sprintf "mark %d %08x" e.eevents e.ecum in
    Buffer.add_string e.ebuf body;
    Printf.bprintf e.ebuf " ~%08x" (Crc32.string body);
    Buffer.add_char e.ebuf '\n';
    e.esince <- 0
  end

let emit_event_line e body =
  emit_line e body;
  if checksummed e then begin
    e.eevents <- e.eevents + 1;
    e.esince <- e.esince + 1;
    if e.esince >= mark_period then emit_mark e
  end

let eline e fmt = Printf.ksprintf (emit_line e) fmt

let emit_header e (t : Trace.t) =
  (* the magic line is neither suffixed nor counted: its checksum regime
     cannot be known before the version it announces has been read *)
  Buffer.add_string e.ebuf (Printf.sprintf "%s %d\n" magic e.ever);
  eline e "model %s" t.Trace.model;
  eline e "truncated %d" (if t.Trace.truncated then 1 else 0);
  eline e "procs %d locs %d events %d" t.Trace.n_procs t.Trace.n_locs
    (Array.length t.Trace.events)

let emit_sync_order e (t : Trace.t) =
  List.iter
    (fun (loc, eids) ->
      eline e "syncorder %d %s" loc
        (match eids with
         | [] -> "-"
         | _ -> String.concat "," (List.map string_of_int eids)))
    t.Trace.sync_order

let encode_into e (t : Trace.t) =
  emit_header e t;
  Array.iter (fun ev -> emit_event_line e (event_line ev)) t.Trace.events;
  List.iter (fun (r, a) -> eline e "so1 %d %d" r a) t.Trace.so1;
  emit_sync_order e t

let encode ?version:(v = version) (t : Trace.t) =
  let e = emitter v in
  encode_into e t;
  emit_mark e;
  Buffer.contents e.ebuf

let write_file ?version:(v = version) path t =
  let oc = open_out path in
  (try output_string oc (encode ~version:v t)
   with exn -> close_out_noerr oc; raise exn);
  close_out oc

(* -- stream-ordered encoding ----------------------------------------- *)

exception Stuck

let is_acquire (ev : Event.t) =
  match ev.Event.body with
  | Event.Sync { op; _ } -> op.Memsim.Op.cls = Memsim.Op.Acquire
  | _ -> false

(* Emit events in an hb1-topological interleaving (Kahn's algorithm over
   po + so1, breaking ties toward the smallest (seq, proc)), with each
   acquire's so1 record immediately before it and unpaired acquires
   marked "so1 -" so a streaming consumer never stalls an event whose
   predecessors it has already seen.  Raises [Stuck] on a cyclic hb1. *)
let add_stream_body e (t : Trace.t) =
  let n = Array.length t.Trace.events in
  let rels = Array.make n [] in
  List.iter (fun (r, a) -> rels.(a) <- r :: rels.(a)) t.Trace.so1;
  Array.iteri (fun i l -> rels.(i) <- List.rev l) rels;
  let emitted = Array.make n false in
  let idx = Array.make t.Trace.n_procs 0 in
  let remaining = ref n in
  while !remaining > 0 do
    let best = ref None in
    for p = 0 to t.Trace.n_procs - 1 do
      if idx.(p) < Array.length t.Trace.by_proc.(p) then begin
        let ev = t.Trace.by_proc.(p).(idx.(p)) in
        if List.for_all (fun r -> emitted.(r)) rels.(ev.Event.eid) then begin
          let key = (ev.Event.seq, p) in
          match !best with
          | Some (k, _, _) when compare k key <= 0 -> ()
          | _ -> best := Some (key, p, ev)
        end
      end
    done;
    match !best with
    | None -> raise Stuck
    | Some (_, p, ev) ->
      let eid = ev.Event.eid in
      (match rels.(eid) with
       | [] -> if is_acquire ev then eline e "so1 - %d" eid
       | rs -> List.iter (fun r -> eline e "so1 %d %d" r eid) rs);
      emit_event_line e (event_line ev);
      emitted.(eid) <- true;
      idx.(p) <- idx.(p) + 1;
      decr remaining
  done

let encode_stream ?version:(v = version) (t : Trace.t) =
  let n = Array.length t.Trace.events in
  let e = emitter v in
  emit_header e t;
  match add_stream_body e t with
  | () ->
    emit_sync_order e t;
    eline e "end %d" n;
    emit_mark e;
    Buffer.contents e.ebuf
  | exception Stuck ->
    (* hb1 has a cycle, so no topological interleaving exists; fall back
       to the batch layout (so1 records trailing), still terminated. *)
    let e = emitter v in
    encode_into e t;
    eline e "end %d" n;
    emit_mark e;
    Buffer.contents e.ebuf

let write_stream_file ?version:(v = version) path t =
  let oc = open_out path in
  (try output_string oc (encode_stream ~version:v t)
   with exn -> close_out_noerr oc; raise exn);
  close_out oc

(* -- decoding ------------------------------------------------------- *)

exception Parse of string

let fail lineno fmt =
  Printf.ksprintf (fun msg -> raise (Parse (Printf.sprintf "line %d: %s" lineno msg))) fmt

let parse_int lineno s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail lineno "expected an integer, got %S" s

let parse_set lineno n_locs s =
  let set = Graphlib.Bitset.create n_locs in
  if s <> "-" && s <> "" then
    String.split_on_char ',' s
    |> List.iter (fun tok ->
           let v = parse_int lineno tok in
           if v < 0 || v >= n_locs then fail lineno "location %d out of range" v;
           Graphlib.Bitset.add set v);
  set

type sizes = { n_procs : int; n_locs : int; n_events : int }

type record =
  | Magic of int
  | Model of string
  | Truncated of bool
  | Sizes of sizes
  | Event of Event.t
  | So1 of { release : int; acquire : int }
  | So1_unpaired of int
  | Sync_order of int * int list
  | End of int
  | Mark of { events : int; crc : int }

type decoder = {
  mutable seen_magic : bool;
  mutable fversion : int;
  verify_epochs : bool;
  mutable dsizes : sizes option;
  partial : Buffer.t;
  mutable lineno : int;
  mutable offset : int; (* byte offset of the start of the current line *)
  mutable cum_crc : int;
  mutable cum_events : int;
  mutable last_mark : bool;
  mutable failed : string option;
}

let make_decoder ~verify_epochs =
  { seen_magic = false; fversion = version; verify_epochs; dsizes = None;
    partial = Buffer.create 256; lineno = 0; offset = 0;
    cum_crc = 0; cum_events = 0; last_mark = false; failed = None }

let decoder () = make_decoder ~verify_epochs:true

let decoder_sizes d = d.dsizes
let decoder_version d = d.fversion

(* A v2 line ends in " ~XXXXXXXX": one space, a tilde, eight hex digits
   of CRC-32 over everything before the space. *)
let strip_suffix l =
  match String.rindex_opt l ' ' with
  | Some i when String.length l - i = 10 && l.[i + 1] = '~' ->
    (match int_of_string_opt ("0x" ^ String.sub l (i + 2) 8) with
     | Some crc -> Some (String.sub l 0 i, crc)
     | None -> None)
  | _ -> None

(* The record grammar proper, over a body line with any checksum suffix
   already stripped.  Raises [Parse] on malformed input. *)
let decode_body d ~lineno body =
  let ns =
    match d.dsizes with
    | Some s -> s
    | None -> { n_procs = 0; n_locs = 0; n_events = 0 }
  in
  let check_eid what e =
    if e < 0 || e >= ns.n_events then fail lineno "%s %d out of range" what e
  in
  match String.split_on_char ' ' body with
  | [ "model"; m ] -> Model m
  | [ "truncated"; v ] -> Truncated (parse_int lineno v <> 0)
  | [ "procs"; p; "locs"; lo; "events"; ev ] ->
    let p = parse_int lineno p
    and lo = parse_int lineno lo
    and ev = parse_int lineno ev in
    if p < 0 || lo < 0 || ev < 0 then fail lineno "negative size";
    if p > max_dim || lo > max_dim || ev > max_dim then
      fail lineno "size exceeds limit %d (corrupt header?)" max_dim;
    let s = { n_procs = p; n_locs = lo; n_events = ev } in
    d.dsizes <- Some s;
    Sizes s
  | "event" :: eid :: "proc" :: proc :: "seq" :: seq :: "comp" :: "reads" :: r
    :: "writes" :: w :: [] ->
    let eid = parse_int lineno eid in
    check_eid "event id" eid;
    let proc = parse_int lineno proc in
    if proc < 0 || proc >= ns.n_procs then
      fail lineno "processor %d out of range" proc;
    Event
      {
        Event.eid;
        proc;
        seq = parse_int lineno seq;
        body =
          Event.Computation
            {
              reads = parse_set lineno ns.n_locs r;
              writes = parse_set lineno ns.n_locs w;
              ops = [];
            };
      }
  | "event" :: eid :: "proc" :: proc :: "seq" :: seq :: "sync" :: "loc" :: loc
    :: "kind" :: kind :: "cls" :: cls :: "value" :: value :: "slot" :: slot
    :: "label" :: label ->
    let eid = parse_int lineno eid in
    check_eid "event id" eid;
    let kind =
      match kind with
      | "R" -> Memsim.Op.Read
      | "W" -> Memsim.Op.Write
      | k -> fail lineno "bad kind %S" k
    in
    let cls =
      match decode_class cls with
      | Some c -> c
      | None -> fail lineno "bad class %S" cls
    in
    let label =
      match String.concat " " label with "-" -> None | l -> Some l
    in
    let proc = parse_int lineno proc in
    if proc < 0 || proc >= ns.n_procs then
      fail lineno "processor %d out of range" proc;
    let loc = parse_int lineno loc in
    if loc < 0 || loc >= ns.n_locs then fail lineno "location %d out of range" loc;
    Event
      {
        Event.eid;
        proc;
        seq = parse_int lineno seq;
        body =
          Event.Sync
            {
              op =
                {
                  Memsim.Op.id = -1;
                  proc;
                  pindex = -1;
                  loc;
                  kind;
                  cls;
                  value = parse_int lineno value;
                  label;
                };
              slot = parse_int lineno slot;
            };
      }
  | [ "so1"; "-"; a ] ->
    let a = parse_int lineno a in
    check_eid "so1 acquire" a;
    So1_unpaired a
  | [ "so1"; r; a ] ->
    let r = parse_int lineno r and a = parse_int lineno a in
    if r < 0 || r >= ns.n_events || a < 0 || a >= ns.n_events then
      fail lineno "so1 pair out of range";
    So1 { release = r; acquire = a }
  | [ "syncorder"; loc; eids ] ->
    let loc = parse_int lineno loc in
    let eids =
      if eids = "-" || eids = "" then []
      else String.split_on_char ',' eids |> List.map (parse_int lineno)
    in
    List.iter (fun e -> check_eid "sync order id" e) eids;
    Sync_order (loc, eids)
  | [ "end"; n ] ->
    let n = parse_int lineno n in
    (match d.dsizes with
     | Some s when n <> s.n_events ->
       fail lineno "end record announces %d events, header says %d" n s.n_events
     | _ -> ());
    End n
  | [ "mark"; ev; crc ] ->
    let events = parse_int lineno ev in
    let crc =
      match int_of_string_opt ("0x" ^ crc) with
      | Some c when String.length crc = 8 -> c
      | _ -> fail lineno "bad mark checksum %S" crc
    in
    if events < 0 then fail lineno "negative mark event count";
    Mark { events; crc }
  | _ -> fail lineno "unrecognized record %S" body

(* Parse one (possibly padded) line into a record; [None] for blanks.
   Verifies the v2 per-line checksum and — unless the decoder was built
   for salvage — the cumulative epoch state announced by mark records.
   Raises [Parse], without positional prefix beyond the line number, so
   callers can add their own byte-offset context. *)
let decode_record d ~lineno raw =
  let l = String.trim raw in
  if l = "" then None
  else if not d.seen_magic then begin
    (match String.split_on_char ' ' l with
     | [ m; v ] when m = magic ->
       let v = parse_int lineno v in
       if v <> version && v <> version_checksummed then
         fail lineno "unsupported version %d" v;
       d.fversion <- v
     | _ -> fail lineno "bad magic");
    d.seen_magic <- true;
    Some (Magic d.fversion)
  end
  else begin
    let body =
      if d.fversion >= version_checksummed then
        match strip_suffix l with
        | Some (body, crc) ->
          if Crc32.string body <> crc then fail lineno "line checksum mismatch";
          body
        | None -> fail lineno "missing line checksum"
      else l
    in
    let r = decode_body d ~lineno body in
    (match r with
     | Mark { events; crc } ->
       if d.verify_epochs && d.fversion >= version_checksummed
          && (events <> d.cum_events || crc <> d.cum_crc) then
         fail lineno
           "epoch mark mismatch: mark announces %d events (crc %08x), decoded %d (crc %08x)"
           events crc d.cum_events d.cum_crc;
       d.last_mark <- true
     | _ ->
       if d.fversion >= version_checksummed then begin
         d.cum_crc <- Crc32.update d.cum_crc (body ^ "\n");
         match r with
         | Event _ -> d.cum_events <- d.cum_events + 1
         | _ -> ()
       end;
       d.last_mark <- false);
    Some r
  end

(* -- incremental (chunked) decoding ---------------------------------- *)

let run_line d line ~f acc =
  d.lineno <- d.lineno + 1;
  let start = d.offset in
  d.offset <- d.offset + String.length line + 1;
  match decode_record d ~lineno:d.lineno line with
  | None -> Ok acc
  | Some r ->
    (match f acc r with
     | Ok _ as ok -> ok
     | Error e -> Error (Printf.sprintf "line %d (byte %d): %s" d.lineno start e))
  | exception Parse msg -> Error (Printf.sprintf "byte %d: %s" start msg)

let feed d chunk ~f acc =
  match d.failed with
  | Some e -> Error e
  | None ->
    let n = String.length chunk in
    let rec go pos acc =
      if pos >= n then Ok acc
      else
        match String.index_from_opt chunk pos '\n' with
        | None ->
          Buffer.add_substring d.partial chunk pos (n - pos);
          Ok acc
        | Some j ->
          Buffer.add_substring d.partial chunk pos (j - pos);
          let line = Buffer.contents d.partial in
          Buffer.clear d.partial;
          (match run_line d line ~f acc with
           | Ok acc -> go (j + 1) acc
           | Error e -> d.failed <- Some e; Error e)
    in
    go 0 acc

let finish_feed d ~f acc =
  match d.failed with
  | Some e -> Error e
  | None ->
    let flushed =
      if Buffer.length d.partial = 0 then Ok acc
      else begin
        let line = Buffer.contents d.partial in
        Buffer.clear d.partial;
        run_line d line ~f acc
      end
    in
    (match flushed with
     | Error e -> d.failed <- Some e; Error e
     | Ok acc ->
       (* a well-formed v2 trace ends with an epoch mark: its absence
          means the tail of the file was cleanly cut off *)
       if d.verify_epochs && d.fversion >= version_checksummed
          && not d.last_mark && d.seen_magic then begin
         let e = "missing final epoch mark (truncated trace?)" in
         d.failed <- Some e;
         Error e
       end
       else Ok acc)

let default_chunk = 65536

let fold_string ?(chunk_size = default_chunk) text ~init ~f =
  if chunk_size <= 0 then invalid_arg "Codec.fold_string: chunk_size";
  let d = decoder () in
  let n = String.length text in
  let rec go pos acc =
    if pos >= n then finish_feed d ~f acc
    else
      let len = min chunk_size (n - pos) in
      match feed d (String.sub text pos len) ~f acc with
      | Ok acc -> go (pos + len) acc
      | Error _ as e -> e
  in
  go 0 init

let fold_file ?(chunk_size = default_chunk) path ~init ~f =
  if chunk_size <= 0 then invalid_arg "Codec.fold_file: chunk_size";
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let d = decoder () in
    let buf = Bytes.create chunk_size in
    let rec go acc =
      match input ic buf 0 chunk_size with
      | 0 -> finish_feed d ~f acc
      | n ->
        (match feed d (Bytes.sub_string buf 0 n) ~f acc with
         | Ok acc -> go acc
         | Error _ as e -> e)
      | exception Sys_error msg -> Error msg
    in
    let r = go init in
    close_in_noerr ic;
    r

(* -- salvage decoding ------------------------------------------------ *)

module Salvage = struct
  type loss = {
    start_line : int;
    start_byte : int;
    end_line : int;
    end_byte : int;
    lines_lost : int;
    events_lost : int option;
    reason : string;
  }

  let pp_loss ppf l =
    Format.fprintf ppf "lines %d-%d (bytes %d-%d): %d line%s discarded%s — %s"
      l.start_line l.end_line l.start_byte l.end_byte l.lines_lost
      (if l.lines_lost = 1 then "" else "s")
      (match l.events_lost with
       | None -> ", events lost unknown"
       | Some 0 -> ", no events lost"
       | Some n -> Printf.sprintf ", ~%d event%s lost" n (if n = 1 then "" else "s"))
      l.reason

  (* A damaged region we are still extending, or have closed but cannot
     yet quantify (the next epoch mark tells us how many events the
     writer had emitted by then). *)
  type pending = {
    pl_start_line : int;
    pl_start_byte : int;
    pl_reason : string;
    mutable pl_end_line : int;
    mutable pl_end_byte : int;
    mutable pl_lines : int;
  }

  type t = {
    sd : decoder; (* verify_epochs = false: marks are adopted, not enforced *)
    spartial : Buffer.t;
    mutable slineno : int;
    mutable soffset : int;
    mutable skipping : pending option;
    mutable unquant : pending list; (* closed since the last mark, newest first *)
    mutable sclosed : loss list; (* newest first *)
    mutable sdirty : bool; (* resynced without a mark since the last mark *)
    mutable smark_line : int; (* line just after the last adopted mark *)
    mutable smark_byte : int;
    mutable sfailed : string option;
  }

  let create () =
    { sd = make_decoder ~verify_epochs:false; spartial = Buffer.create 256;
      slineno = 0; soffset = 0; skipping = None; unquant = []; sclosed = [];
      sdirty = false; smark_line = 1; smark_byte = 0; sfailed = None }

  let mk_loss p ~events_lost =
    { start_line = p.pl_start_line; start_byte = p.pl_start_byte;
      end_line = p.pl_end_line; end_byte = p.pl_end_byte;
      lines_lost = p.pl_lines; events_lost; reason = p.pl_reason }

  (* Close the open skip region, if any, into the unquantified list. *)
  let close_skipping t =
    match t.skipping with
    | None -> ()
    | Some p ->
      t.skipping <- None;
      t.unquant <- p :: t.unquant

  (* At an adopted mark, [lost] = writer's event count minus ours.  With
     exactly one damaged region since the previous mark the delta is
     attributable; with several we only know the aggregate, so each loss
     keeps [events_lost = None]. *)
  let settle t ~lost =
    (match t.unquant with
     | [ p ] -> t.sclosed <- mk_loss p ~events_lost:(Some (max 0 lost)) :: t.sclosed
     | ps ->
       List.iter
         (fun p -> t.sclosed <- mk_loss p ~events_lost:None :: t.sclosed)
         (List.rev ps));
    t.unquant <- []

  let close_unquant_unknown t =
    List.iter
      (fun p -> t.sclosed <- mk_loss p ~events_lost:None :: t.sclosed)
      (List.rev t.unquant);
    t.unquant <- []

  let run_salvage_line t line ~f acc =
    t.slineno <- t.slineno + 1;
    let lineno = t.slineno in
    let start = t.soffset in
    t.soffset <- t.soffset + String.length line + 1;
    match decode_record t.sd ~lineno line with
    | None -> Ok acc
    | exception Parse msg ->
      (match t.skipping with
       | Some p ->
         p.pl_end_line <- lineno;
         p.pl_end_byte <- t.soffset;
         p.pl_lines <- p.pl_lines + 1
       | None ->
         t.skipping <-
           Some { pl_start_line = lineno; pl_start_byte = start; pl_reason = msg;
                  pl_end_line = lineno; pl_end_byte = t.soffset; pl_lines = 1 });
      Ok acc
    | Some r ->
      (* a cleanly decoding line: if we were skipping, this is a resync.
         It is optimistic — nothing proves our epoch state matches the
         writer's again — so flag the epoch dirty; the next mark adopts
         the writer's announced state and settles the damage. *)
      (match t.skipping with
       | Some _ ->
         close_skipping t;
         t.sdirty <- true
       | None -> ());
      (match r with
       | Mark { events; crc } when t.sd.fversion >= version_checksummed ->
         let lost = events - t.sd.cum_events in
         let crc_ok = crc = t.sd.cum_crc in
         if t.unquant <> [] then settle t ~lost
         else if lost <> 0 || ((not crc_ok) && not t.sdirty) then begin
           (* every line since the previous mark parsed cleanly, yet the
              epoch disagrees: whole lines were dropped or duplicated *)
           let reason =
             if lost > 0 then "epoch event count short (dropped lines?)"
             else if lost < 0 then "epoch event count excess (duplicated lines?)"
             else "epoch checksum mismatch (dropped or duplicated non-event lines?)"
           in
           t.sclosed <-
             { start_line = t.smark_line; start_byte = t.smark_byte;
               end_line = lineno - 1; end_byte = start; lines_lost = 0;
               events_lost = Some (max 0 lost); reason }
             :: t.sclosed
         end;
         t.sd.cum_events <- events;
         t.sd.cum_crc <- crc;
         t.sdirty <- false;
         t.smark_line <- lineno + 1;
         t.smark_byte <- t.soffset;
         (match f acc r with
          | Ok _ as ok -> ok
          | Error e ->
            Error (Printf.sprintf "line %d (byte %d): %s" lineno start e))
       | _ ->
         (match f acc r with
          | Ok _ as ok -> ok
          | Error e ->
            Error (Printf.sprintf "line %d (byte %d): %s" lineno start e)))

  let feed t chunk ~f acc =
    match t.sfailed with
    | Some e -> Error e
    | None ->
      let n = String.length chunk in
      let rec go pos acc =
        if pos >= n then Ok acc
        else
          match String.index_from_opt chunk pos '\n' with
          | None ->
            Buffer.add_substring t.spartial chunk pos (n - pos);
            Ok acc
          | Some j ->
            Buffer.add_substring t.spartial chunk pos (j - pos);
            let line = Buffer.contents t.spartial in
            Buffer.clear t.spartial;
            (match run_salvage_line t line ~f acc with
             | Ok acc -> go (j + 1) acc
             | Error e -> t.sfailed <- Some e; Error e)
      in
      go 0 acc

  let finish_feed t ~f acc =
    match t.sfailed with
    | Some e -> Error e
    | None ->
      let flushed =
        if Buffer.length t.spartial = 0 then Ok acc
        else begin
          let line = Buffer.contents t.spartial in
          Buffer.clear t.spartial;
          run_salvage_line t line ~f acc
        end
      in
      (match flushed with
       | Error e -> t.sfailed <- Some e; Error e
       | Ok acc ->
         close_skipping t;
         close_unquant_unknown t;
         if t.sd.seen_magic && t.sd.fversion >= version_checksummed
            && not t.sd.last_mark then
           t.sclosed <-
             { start_line = t.smark_line; start_byte = t.smark_byte;
               end_line = t.slineno; end_byte = t.soffset; lines_lost = 0;
               events_lost = None;
               reason = "missing final epoch mark (truncated trace?)" }
             :: t.sclosed;
         Ok acc)

  let losses t = List.rev t.sclosed
  let clean t = t.sclosed = [] && t.unquant = [] && t.skipping = None
  let decoder t = t.sd
end

let fold_salvage_string ?(chunk_size = default_chunk) text ~init ~f =
  if chunk_size <= 0 then invalid_arg "Codec.fold_salvage_string: chunk_size";
  let s = Salvage.create () in
  let n = String.length text in
  let rec go pos acc =
    if pos >= n then Salvage.finish_feed s ~f acc
    else
      let len = min chunk_size (n - pos) in
      match Salvage.feed s (String.sub text pos len) ~f acc with
      | Ok acc -> go (pos + len) acc
      | Error _ as e -> e
  in
  (match go 0 init with
   | Ok acc -> Ok (acc, Salvage.losses s)
   | Error _ as e -> e)

let fold_salvage_file ?(chunk_size = default_chunk) path ~init ~f =
  if chunk_size <= 0 then invalid_arg "Codec.fold_salvage_file: chunk_size";
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let s = Salvage.create () in
    let buf = Bytes.create chunk_size in
    let rec go acc =
      match input ic buf 0 chunk_size with
      | 0 -> Salvage.finish_feed s ~f acc
      | n ->
        (match Salvage.feed s (Bytes.sub_string buf 0 n) ~f acc with
         | Ok acc -> go acc
         | Error _ as e -> e)
      | exception Sys_error msg -> Error msg
    in
    let r = go init in
    close_in_noerr ic;
    (match r with
     | Ok acc -> Ok (acc, Salvage.losses s)
     | Error _ as e -> e)

(* -- batch decoding -------------------------------------------------- *)

(* Shared accumulator for the batch entry points ([decode], [read_dir]):
   folds records into the trace components and validates completeness. *)
type builder = {
  mutable bmodel : string;
  mutable btrunc : bool;
  mutable bsizes : sizes;
  mutable bevents : Event.t option array;
  mutable bso1 : (int * int) list; (* newest first *)
  mutable bsync : (int * int list) list; (* newest first *)
  mutable bsaw : bool;
}

let builder () =
  { bmodel = ""; btrunc = false;
    bsizes = { n_procs = 0; n_locs = 0; n_events = 0 };
    bevents = [||]; bso1 = []; bsync = []; bsaw = false }

let builder_add b r =
  b.bsaw <- true;
  match r with
  | Magic _ | So1_unpaired _ | End _ | Mark _ -> ()
  | Model m -> b.bmodel <- m
  | Truncated v -> b.btrunc <- v
  | Sizes s ->
    b.bsizes <- s;
    b.bevents <- Array.make s.n_events None
  | Event e -> b.bevents.(e.Event.eid) <- Some e
  | So1 { release; acquire } -> b.bso1 <- (release, acquire) :: b.bso1
  | Sync_order (loc, eids) -> b.bsync <- (loc, eids) :: b.bsync

(* Raises [Parse] on an incomplete trace. *)
let builder_finish b =
  if not b.bsaw then raise (Parse "empty trace");
  let events =
    Array.mapi
      (fun i ev ->
        match ev with
        | Some e -> e
        | None -> fail 0 "missing event %d" i)
      b.bevents
  in
  let by_proc = Array.make b.bsizes.n_procs [] in
  Array.iter
    (fun (e : Event.t) -> by_proc.(e.Event.proc) <- e :: by_proc.(e.Event.proc))
    events;
  let by_proc =
    Array.map
      (fun evs ->
        let arr = Array.of_list (List.rev evs) in
        Array.sort (fun (a : Event.t) (b : Event.t) -> compare a.Event.seq b.Event.seq) arr;
        arr)
      by_proc
  in
  {
    Trace.n_procs = b.bsizes.n_procs;
    n_locs = b.bsizes.n_locs;
    model = b.bmodel;
    truncated = b.btrunc;
    events;
    by_proc;
    so1 = List.rev b.bso1;
    sync_order = List.rev b.bsync;
  }

let decode text =
  let d = decoder () in
  let b = builder () in
  try
    List.iteri
      (fun i line ->
        match decode_record d ~lineno:(i + 1) line with
        | None -> ()
        | Some r -> builder_add b r)
      (String.split_on_char '\n' text);
    if d.fversion >= version_checksummed && not d.last_mark then
      raise (Parse "missing final epoch mark (truncated trace?)");
    Ok (builder_finish b)
  with Parse msg -> Error msg

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text ->
    (match decode text with
     | Ok _ as ok -> ok
     | Error e -> Error (Printf.sprintf "%s: %s" path e))

let equivalent a b =
  (* compare via the canonical encoding, which drops the ops payload;
     so1 is a set of edges whose list order is a layout artifact (the
     stream layout interleaves so1 records in topological order), so it
     is sorted on both sides *)
  let canonical (t : Trace.t) =
    encode { t with Trace.so1 = List.sort compare t.Trace.so1 }
  in
  String.equal (canonical a) (canonical b)

(* -- split (per-processor) trace files ------------------------------- *)

(* The single-file format is already line-oriented with self-describing
   records, so the split encoding reuses it: each processor file carries
   that processor's event lines under the same header, and the sync file
   carries everything else.  [read_dir] decodes the sync file (header
   first) and then each processor file through one decoder, so errors
   name the file they came from.  Split directories are always written
   at format v1: the v2 cumulative epoch runs over a single byte stream,
   which a per-processor split has no meaningful order for. *)

let proc_file dir p = Filename.concat dir (Printf.sprintf "proc%d.trace" p)
let sync_file dir = Filename.concat dir "sync.trace"

let write_dir dir (t : Trace.t) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let full = encode t in
  let lines = String.split_on_char '\n' full in
  let is_event_of p l =
    match String.split_on_char ' ' l with
    | "event" :: _ :: "proc" :: q :: _ -> int_of_string_opt q = Some p
    | _ -> false
  in
  let write path keep =
    let oc = open_out path in
    List.iter
      (fun l -> if keep l then (output_string oc l; output_char oc '\n'))
      lines;
    close_out oc
  in
  for p = 0 to t.Trace.n_procs - 1 do
    write (proc_file dir p) (is_event_of p)
  done;
  let is_any_event l =
    match String.split_on_char ' ' l with "event" :: _ -> true | _ -> false
  in
  write (sync_file dir) (fun l -> l <> "" && not (is_any_event l))

let read_dir dir =
  let d = decoder () in
  let b = builder () in
  let read_into path =
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error msg -> Error msg
    | text ->
      (try
         List.iteri
           (fun i line ->
             match decode_record d ~lineno:(i + 1) line with
             | None -> ()
             | Some r -> builder_add b r)
           (String.split_on_char '\n' text);
         Ok ()
       with Parse msg -> Error (Printf.sprintf "%s: %s" path msg))
  in
  (* the header must come first; event records may follow in any order *)
  match read_into (sync_file dir) with
  | Error _ as e -> e
  | Ok () ->
    (match d.dsizes with
     | None -> Error (Printf.sprintf "%s: missing procs header" (sync_file dir))
     | Some s ->
       let rec procs p =
         if p >= s.n_procs then
           (try Ok (builder_finish b)
            with Parse msg -> Error (Printf.sprintf "%s: %s" dir msg))
         else
           match read_into (proc_file dir p) with
           | Error _ as e -> e
           | Ok () -> procs (p + 1)
       in
       procs 0)
