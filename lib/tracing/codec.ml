let magic = "weakrace-trace"
let version = 1

(* Dimension cap applied to the procs/locs/events header.  A corrupted
   header must not drive [Array.make] into [Invalid_argument] or an
   out-of-memory abort; anything past this bound is rejected as a parse
   error instead.  4M events is far beyond any trace this repo emits. *)
let max_dim = 1 lsl 22

let encode_class = function
  | Memsim.Op.Data -> "data"
  | Memsim.Op.Acquire -> "acquire"
  | Memsim.Op.Release -> "release"
  | Memsim.Op.Plain_sync -> "sync"

let decode_class = function
  | "data" -> Some Memsim.Op.Data
  | "acquire" -> Some Memsim.Op.Acquire
  | "release" -> Some Memsim.Op.Release
  | "sync" -> Some Memsim.Op.Plain_sync
  | _ -> None

let encode_set s =
  match Graphlib.Bitset.elements s with
  | [] -> "-"
  | xs -> String.concat "," (List.map string_of_int xs)

let event_line (ev : Event.t) =
  match ev.Event.body with
  | Event.Computation { reads; writes; _ } ->
    Printf.sprintf "event %d proc %d seq %d comp reads %s writes %s" ev.Event.eid
      ev.Event.proc ev.Event.seq (encode_set reads) (encode_set writes)
  | Event.Sync { op; slot } ->
    Printf.sprintf "event %d proc %d seq %d sync loc %d kind %s cls %s value %d slot %d label %s"
      ev.Event.eid ev.Event.proc ev.Event.seq op.Memsim.Op.loc
      (match op.Memsim.Op.kind with Memsim.Op.Read -> "R" | Memsim.Op.Write -> "W")
      (encode_class op.Memsim.Op.cls)
      op.Memsim.Op.value slot
      (match op.Memsim.Op.label with None -> "-" | Some l -> l)

let add_header buf (t : Trace.t) =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "%s %d" magic version;
  line "model %s" t.Trace.model;
  line "truncated %d" (if t.Trace.truncated then 1 else 0);
  line "procs %d locs %d events %d" t.Trace.n_procs t.Trace.n_locs
    (Array.length t.Trace.events)

let add_sync_order buf (t : Trace.t) =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun (loc, eids) ->
      line "syncorder %d %s" loc
        (match eids with
         | [] -> "-"
         | _ -> String.concat "," (List.map string_of_int eids)))
    t.Trace.sync_order

let encode (t : Trace.t) =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  add_header buf t;
  Array.iter (fun ev -> line "%s" (event_line ev)) t.Trace.events;
  List.iter (fun (r, a) -> line "so1 %d %d" r a) t.Trace.so1;
  add_sync_order buf t;
  Buffer.contents buf

let write_file path t =
  let oc = open_out path in
  (try output_string oc (encode t)
   with exn -> close_out_noerr oc; raise exn);
  close_out oc

(* -- stream-ordered encoding ----------------------------------------- *)

exception Stuck

let is_acquire (ev : Event.t) =
  match ev.Event.body with
  | Event.Sync { op; _ } -> op.Memsim.Op.cls = Memsim.Op.Acquire
  | _ -> false

(* Emit events in an hb1-topological interleaving (Kahn's algorithm over
   po + so1, breaking ties toward the smallest (seq, proc)), with each
   acquire's so1 record immediately before it and unpaired acquires
   marked "so1 -" so a streaming consumer never stalls an event whose
   predecessors it has already seen.  Raises [Stuck] on a cyclic hb1. *)
let add_stream_body buf (t : Trace.t) =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  let n = Array.length t.Trace.events in
  let rels = Array.make n [] in
  List.iter (fun (r, a) -> rels.(a) <- r :: rels.(a)) t.Trace.so1;
  Array.iteri (fun i l -> rels.(i) <- List.rev l) rels;
  let emitted = Array.make n false in
  let idx = Array.make t.Trace.n_procs 0 in
  let remaining = ref n in
  while !remaining > 0 do
    let best = ref None in
    for p = 0 to t.Trace.n_procs - 1 do
      if idx.(p) < Array.length t.Trace.by_proc.(p) then begin
        let ev = t.Trace.by_proc.(p).(idx.(p)) in
        if List.for_all (fun r -> emitted.(r)) rels.(ev.Event.eid) then begin
          let key = (ev.Event.seq, p) in
          match !best with
          | Some (k, _, _) when compare k key <= 0 -> ()
          | _ -> best := Some (key, p, ev)
        end
      end
    done;
    match !best with
    | None -> raise Stuck
    | Some (_, p, ev) ->
      let eid = ev.Event.eid in
      (match rels.(eid) with
       | [] -> if is_acquire ev then line "so1 - %d" eid
       | rs -> List.iter (fun r -> line "so1 %d %d" r eid) rs);
      line "%s" (event_line ev);
      emitted.(eid) <- true;
      idx.(p) <- idx.(p) + 1;
      decr remaining
  done

let encode_stream (t : Trace.t) =
  let n = Array.length t.Trace.events in
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  add_header buf t;
  match add_stream_body buf t with
  | () ->
    add_sync_order buf t;
    line "end %d" n;
    Buffer.contents buf
  | exception Stuck ->
    (* hb1 has a cycle, so no topological interleaving exists; fall back
       to the batch layout (so1 records trailing), still terminated. *)
    encode t ^ Printf.sprintf "end %d\n" n

let write_stream_file path t =
  let oc = open_out path in
  (try output_string oc (encode_stream t)
   with exn -> close_out_noerr oc; raise exn);
  close_out oc

(* -- decoding ------------------------------------------------------- *)

exception Parse of string

let fail lineno fmt =
  Printf.ksprintf (fun msg -> raise (Parse (Printf.sprintf "line %d: %s" lineno msg))) fmt

let parse_int lineno s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail lineno "expected an integer, got %S" s

let parse_set lineno n_locs s =
  let set = Graphlib.Bitset.create n_locs in
  if s <> "-" && s <> "" then
    String.split_on_char ',' s
    |> List.iter (fun tok ->
           let v = parse_int lineno tok in
           if v < 0 || v >= n_locs then fail lineno "location %d out of range" v;
           Graphlib.Bitset.add set v);
  set

type sizes = { n_procs : int; n_locs : int; n_events : int }

type record =
  | Magic of int
  | Model of string
  | Truncated of bool
  | Sizes of sizes
  | Event of Event.t
  | So1 of { release : int; acquire : int }
  | So1_unpaired of int
  | Sync_order of int * int list
  | End of int

type decoder = {
  mutable seen_magic : bool;
  mutable dsizes : sizes option;
  partial : Buffer.t;
  mutable lineno : int;
  mutable offset : int; (* byte offset of the start of the current line *)
  mutable failed : string option;
}

let decoder () =
  { seen_magic = false; dsizes = None; partial = Buffer.create 256;
    lineno = 0; offset = 0; failed = None }

let decoder_sizes d = d.dsizes

(* Parse one (possibly padded) line into a record; [None] for blanks.
   Raises [Parse] — without positional prefix beyond the line number —
   so callers can add their own byte-offset context. *)
let decode_record d ~lineno raw =
  let l = String.trim raw in
  if l = "" then None
  else if not d.seen_magic then begin
    (match String.split_on_char ' ' l with
     | [ m; v ] when m = magic ->
       if parse_int lineno v <> version then
         fail lineno "unsupported version %s" v
     | _ -> fail lineno "bad magic");
    d.seen_magic <- true;
    Some (Magic version)
  end
  else begin
    let ns =
      match d.dsizes with
      | Some s -> s
      | None -> { n_procs = 0; n_locs = 0; n_events = 0 }
    in
    let check_eid what e =
      if e < 0 || e >= ns.n_events then fail lineno "%s %d out of range" what e
    in
    match String.split_on_char ' ' l with
    | [ "model"; m ] -> Some (Model m)
    | [ "truncated"; v ] -> Some (Truncated (parse_int lineno v <> 0))
    | [ "procs"; p; "locs"; lo; "events"; ev ] ->
      let p = parse_int lineno p
      and lo = parse_int lineno lo
      and ev = parse_int lineno ev in
      if p < 0 || lo < 0 || ev < 0 then fail lineno "negative size";
      if p > max_dim || lo > max_dim || ev > max_dim then
        fail lineno "size exceeds limit %d (corrupt header?)" max_dim;
      let s = { n_procs = p; n_locs = lo; n_events = ev } in
      d.dsizes <- Some s;
      Some (Sizes s)
    | "event" :: eid :: "proc" :: proc :: "seq" :: seq :: "comp" :: "reads" :: r
      :: "writes" :: w :: [] ->
      let eid = parse_int lineno eid in
      check_eid "event id" eid;
      let proc = parse_int lineno proc in
      if proc < 0 || proc >= ns.n_procs then
        fail lineno "processor %d out of range" proc;
      Some
        (Event
           {
             Event.eid;
             proc;
             seq = parse_int lineno seq;
             body =
               Event.Computation
                 {
                   reads = parse_set lineno ns.n_locs r;
                   writes = parse_set lineno ns.n_locs w;
                   ops = [];
                 };
           })
    | "event" :: eid :: "proc" :: proc :: "seq" :: seq :: "sync" :: "loc" :: loc
      :: "kind" :: kind :: "cls" :: cls :: "value" :: value :: "slot" :: slot
      :: "label" :: label ->
      let eid = parse_int lineno eid in
      check_eid "event id" eid;
      let kind =
        match kind with
        | "R" -> Memsim.Op.Read
        | "W" -> Memsim.Op.Write
        | k -> fail lineno "bad kind %S" k
      in
      let cls =
        match decode_class cls with
        | Some c -> c
        | None -> fail lineno "bad class %S" cls
      in
      let label =
        match String.concat " " label with "-" -> None | l -> Some l
      in
      let proc = parse_int lineno proc in
      if proc < 0 || proc >= ns.n_procs then
        fail lineno "processor %d out of range" proc;
      let loc = parse_int lineno loc in
      if loc < 0 || loc >= ns.n_locs then fail lineno "location %d out of range" loc;
      Some
        (Event
           {
             Event.eid;
             proc;
             seq = parse_int lineno seq;
             body =
               Event.Sync
                 {
                   op =
                     {
                       Memsim.Op.id = -1;
                       proc;
                       pindex = -1;
                       loc;
                       kind;
                       cls;
                       value = parse_int lineno value;
                       label;
                     };
                   slot = parse_int lineno slot;
                 };
           })
    | [ "so1"; "-"; a ] ->
      let a = parse_int lineno a in
      check_eid "so1 acquire" a;
      Some (So1_unpaired a)
    | [ "so1"; r; a ] ->
      let r = parse_int lineno r and a = parse_int lineno a in
      if r < 0 || r >= ns.n_events || a < 0 || a >= ns.n_events then
        fail lineno "so1 pair out of range";
      Some (So1 { release = r; acquire = a })
    | [ "syncorder"; loc; eids ] ->
      let loc = parse_int lineno loc in
      let eids =
        if eids = "-" || eids = "" then []
        else String.split_on_char ',' eids |> List.map (parse_int lineno)
      in
      List.iter (fun e -> check_eid "sync order id" e) eids;
      Some (Sync_order (loc, eids))
    | [ "end"; n ] ->
      let n = parse_int lineno n in
      (match d.dsizes with
       | Some s when n <> s.n_events ->
         fail lineno "end record announces %d events, header says %d" n s.n_events
       | _ -> ());
      Some (End n)
    | _ -> fail lineno "unrecognized record %S" l
  end

(* -- incremental (chunked) decoding ---------------------------------- *)

let run_line d line ~f acc =
  d.lineno <- d.lineno + 1;
  let start = d.offset in
  d.offset <- d.offset + String.length line + 1;
  match decode_record d ~lineno:d.lineno line with
  | None -> Ok acc
  | Some r ->
    (match f acc r with
     | Ok _ as ok -> ok
     | Error e -> Error (Printf.sprintf "line %d (byte %d): %s" d.lineno start e))
  | exception Parse msg -> Error (Printf.sprintf "byte %d: %s" start msg)

let feed d chunk ~f acc =
  match d.failed with
  | Some e -> Error e
  | None ->
    let n = String.length chunk in
    let rec go pos acc =
      if pos >= n then Ok acc
      else
        match String.index_from_opt chunk pos '\n' with
        | None ->
          Buffer.add_substring d.partial chunk pos (n - pos);
          Ok acc
        | Some j ->
          Buffer.add_substring d.partial chunk pos (j - pos);
          let line = Buffer.contents d.partial in
          Buffer.clear d.partial;
          (match run_line d line ~f acc with
           | Ok acc -> go (j + 1) acc
           | Error e -> d.failed <- Some e; Error e)
    in
    go 0 acc

let finish_feed d ~f acc =
  match d.failed with
  | Some e -> Error e
  | None ->
    if Buffer.length d.partial = 0 then Ok acc
    else begin
      let line = Buffer.contents d.partial in
      Buffer.clear d.partial;
      match run_line d line ~f acc with
      | Ok _ as ok -> ok
      | Error e -> d.failed <- Some e; Error e
    end

let default_chunk = 65536

let fold_string ?(chunk_size = default_chunk) text ~init ~f =
  if chunk_size <= 0 then invalid_arg "Codec.fold_string: chunk_size";
  let d = decoder () in
  let n = String.length text in
  let rec go pos acc =
    if pos >= n then finish_feed d ~f acc
    else
      let len = min chunk_size (n - pos) in
      match feed d (String.sub text pos len) ~f acc with
      | Ok acc -> go (pos + len) acc
      | Error _ as e -> e
  in
  go 0 init

let fold_file ?(chunk_size = default_chunk) path ~init ~f =
  if chunk_size <= 0 then invalid_arg "Codec.fold_file: chunk_size";
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let d = decoder () in
    let buf = Bytes.create chunk_size in
    let rec go acc =
      match input ic buf 0 chunk_size with
      | 0 -> finish_feed d ~f acc
      | n ->
        (match feed d (Bytes.sub_string buf 0 n) ~f acc with
         | Ok acc -> go acc
         | Error _ as e -> e)
      | exception Sys_error msg -> Error msg
    in
    let r = go init in
    close_in_noerr ic;
    r

(* -- batch decoding -------------------------------------------------- *)

let decode text =
  let d = decoder () in
  try
    let model = ref "" in
    let truncated = ref false in
    let sizes = ref { n_procs = 0; n_locs = 0; n_events = 0 } in
    let events : Event.t option array ref = ref [||] in
    let so1 = ref [] in
    let sync_order = ref [] in
    let saw = ref false in
    List.iteri
      (fun i line ->
        match decode_record d ~lineno:(i + 1) line with
        | None -> ()
        | Some r ->
          saw := true;
          (match r with
           | Magic _ | So1_unpaired _ | End _ -> ()
           | Model m -> model := m
           | Truncated b -> truncated := b
           | Sizes s ->
             sizes := s;
             events := Array.make s.n_events None
           | Event e -> !events.(e.Event.eid) <- Some e
           | So1 { release; acquire } -> so1 := (release, acquire) :: !so1
           | Sync_order (loc, eids) -> sync_order := (loc, eids) :: !sync_order))
      (String.split_on_char '\n' text);
    if not !saw then raise (Parse "empty trace");
    let events =
      Array.mapi
        (fun i ev ->
          match ev with
          | Some e -> e
          | None -> fail 0 "missing event %d" i)
        !events
    in
    let by_proc = Array.make !sizes.n_procs [] in
    Array.iter (fun (e : Event.t) -> by_proc.(e.Event.proc) <- e :: by_proc.(e.Event.proc)) events;
    let by_proc =
      Array.map
        (fun evs ->
          let arr = Array.of_list (List.rev evs) in
          Array.sort (fun (a : Event.t) (b : Event.t) -> compare a.Event.seq b.Event.seq) arr;
          arr)
        by_proc
    in
    Ok
      {
        Trace.n_procs = !sizes.n_procs;
        n_locs = !sizes.n_locs;
        model = !model;
        truncated = !truncated;
        events;
        by_proc;
        so1 = List.rev !so1;
        sync_order = List.rev !sync_order;
      }
  with Parse msg -> Error msg

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> decode text
  | exception Sys_error msg -> Error msg

let equivalent a b =
  (* compare via the canonical encoding, which drops the ops payload *)
  String.equal (encode a) (encode b)

(* -- split (per-processor) trace files ------------------------------- *)

(* The single-file format is already line-oriented with self-describing
   records, so the split encoding reuses it: each processor file carries
   that processor's event lines under the same header, and the sync file
   carries everything else.  [read_dir] concatenates and decodes. *)

let proc_file dir p = Filename.concat dir (Printf.sprintf "proc%d.trace" p)
let sync_file dir = Filename.concat dir "sync.trace"

let write_dir dir (t : Trace.t) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let full = encode t in
  let lines = String.split_on_char '\n' full in
  let is_event_of p l =
    match String.split_on_char ' ' l with
    | "event" :: _ :: "proc" :: q :: _ -> int_of_string_opt q = Some p
    | _ -> false
  in
  let write path keep =
    let oc = open_out path in
    List.iter
      (fun l -> if keep l then (output_string oc l; output_char oc '\n'))
      lines;
    close_out oc
  in
  for p = 0 to t.Trace.n_procs - 1 do
    write (proc_file dir p) (is_event_of p)
  done;
  let is_any_event l =
    match String.split_on_char ' ' l with "event" :: _ -> true | _ -> false
  in
  write (sync_file dir) (fun l -> l <> "" && not (is_any_event l))

let read_dir dir =
  match In_channel.with_open_text (sync_file dir) In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | sync ->
    (* the header carries the processor count on its "procs" line *)
    let n_procs =
      String.split_on_char '\n' sync
      |> List.find_map (fun l ->
             match String.split_on_char ' ' l with
             | [ "procs"; p; "locs"; _; "events"; _ ] -> int_of_string_opt p
             | _ -> None)
    in
    (match n_procs with
     | None -> Error "sync.trace: missing procs header"
     | Some n -> (
       let buf = Buffer.create 4096 in
       (* the header must come first; event records may follow in any order *)
       Buffer.add_string buf sync;
       match
         List.init n (fun p ->
             In_channel.with_open_text (proc_file dir p) In_channel.input_all)
       with
       | parts ->
         List.iter (Buffer.add_string buf) parts;
         decode (Buffer.contents buf)
       | exception Sys_error msg -> Error msg))
