type damage =
  | Garble_bytes of int
  | Drop_lines of int
  | Swap_events
  | Truncate_tail of int
  | Flip_bits of int
  | Duplicate_lines of int

let apply ~seed damage text =
  let rng = Memsim.Rng.create seed in
  match damage with
  | Garble_bytes n ->
    let b = Bytes.of_string text in
    if Bytes.length b > 0 then
      for _ = 1 to n do
        Bytes.set b
          (Memsim.Rng.int rng (Bytes.length b))
          (Char.chr (33 + Memsim.Rng.int rng 90))
      done;
    Bytes.to_string b
  | Drop_lines n ->
    let lines = String.split_on_char '\n' text in
    let len = List.length lines in
    let victims =
      List.init n (fun _ -> if len > 0 then Memsim.Rng.int rng len else 0)
    in
    lines
    |> List.mapi (fun i l -> (i, l))
    |> List.filter (fun (i, _) -> not (List.mem i victims))
    |> List.map snd
    |> String.concat "\n"
  | Swap_events ->
    (* exchange the event ids of two records whose bodies differ — the
       decoder cannot tell, but every downstream analysis sees a different
       execution *)
    let lines = String.split_on_char '\n' text in
    let split_event l =
      match String.split_on_char ' ' l with
      | "event" :: eid :: rest -> Some (eid, rest)
      | _ -> None
    in
    let events =
      List.mapi (fun i l -> (i, split_event l)) lines
      |> List.filter_map (function i, Some e -> Some (i, e) | _, None -> None)
    in
    let pair =
      List.find_map
        (fun (i, (_, ra)) ->
          List.find_map
            (fun (j, (_, rb)) -> if i < j && ra <> rb then Some (i, j) else None)
            events)
        events
    in
    (match pair with
     | Some (i, j) ->
       let arr = Array.of_list lines in
       let ei, ri = Option.get (split_event arr.(i)) in
       let ej, rj = Option.get (split_event arr.(j)) in
       arr.(i) <- String.concat " " ("event" :: ej :: ri);
       arr.(j) <- String.concat " " ("event" :: ei :: rj);
       String.concat "\n" (Array.to_list arr)
     | None -> text)
  | Truncate_tail n ->
    let keep = max 0 (String.length text - n) in
    String.sub text 0 keep
  | Flip_bits n ->
    (* single-bit flips: the subtlest damage a checksum must catch — a
       flipped digit can still parse as a different, valid number *)
    let b = Bytes.of_string text in
    if Bytes.length b > 0 then
      for _ = 1 to n do
        let i = Memsim.Rng.int rng (Bytes.length b) in
        let bit = 1 lsl Memsim.Rng.int rng 7 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bit))
      done;
    Bytes.to_string b
  | Duplicate_lines n ->
    (* replay N random lines immediately after themselves: every copy
       still parses, so only the cumulative epoch state can object *)
    let lines = String.split_on_char '\n' text in
    let len = List.length lines in
    let victims =
      List.init n (fun _ -> if len > 0 then Memsim.Rng.int rng len else 0)
    in
    lines
    |> List.mapi (fun i l -> if List.mem i victims then [ l; l ] else [ l ])
    |> List.concat
    |> String.concat "\n"
