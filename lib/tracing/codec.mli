(** Trace-file serialization: a line-oriented text format.

    The on-disk content is exactly the information the paper's
    instrumentation records — per-processor event order, per-location
    synchronization order, READ/WRITE sets, and the release observed by
    each acquire.  Individual data operations are {e not} written (that is
    the point of event-level tracing), so decoding a trace yields
    computation events with empty [ops] lists. *)

val encode : Trace.t -> string

val write_file : string -> Trace.t -> unit

val decode : string -> (Trace.t, string) Result.t
(** Strict parse; the error message names the offending line.  A decoded
    trace is semantically equivalent to the encoded one for every
    analysis: same events, sets, so1 and sync order. *)

val read_file : string -> (Trace.t, string) Result.t

val equivalent : Trace.t -> Trace.t -> bool
(** Equality on the serialized information content (ignores the in-memory
    [ops] debug payload). *)

val write_dir : string -> Trace.t -> unit
(** Per-processor trace files, as the paper's instrumentation would write
    them: [dir/procN.trace] holds processor N's event stream, and
    [dir/sync.trace] the shared header, per-location synchronization order
    and release/acquire pairing.  Creates [dir] if needed. *)

val read_dir : string -> (Trace.t, string) Result.t
(** Merge a {!write_dir} directory back into a trace; the result is
    {!equivalent} to the original. *)

(** {1 Streaming}

    The same record grammar, consumed incrementally: a {!decoder} turns
    arbitrarily-chunked byte input into a sequence of {!record}s without
    ever materializing the whole file, so a multi-gigabyte or growing
    trace costs O(longest line) decoder memory.  Two extra record forms
    support stream-ordered files (written by {!encode_stream}): ["so1 -
    A"] marks acquire [A] as having no incoming so1 edge, and ["end N"]
    terminates a complete trace of [N] events — the batch {!decode}
    accepts and ignores both. *)

type sizes = { n_procs : int; n_locs : int; n_events : int }

type record =
  | Magic of int  (** header line; carries the format version *)
  | Model of string
  | Truncated of bool
  | Sizes of sizes
  | Event of Event.t
  | So1 of { release : int; acquire : int }
  | So1_unpaired of int
      (** stream-ordered traces only: the named acquire has no incoming
          so1 edge, so a streaming consumer need not wait for one *)
  | Sync_order of int * int list
  | End of int
      (** terminator carrying the event count; lets a follower know the
          trace is complete *)

type decoder
(** Incremental decoder state: format validation (magic line first,
    header sanity bounds), record parsing, and position tracking for
    error messages.  Input may be split at arbitrary byte boundaries. *)

val decoder : unit -> decoder

val decoder_sizes : decoder -> sizes option
(** The procs/locs/events header, once it has been decoded. *)

val feed :
  decoder -> string -> f:('a -> record -> ('a, string) result) -> 'a ->
  ('a, string) result
(** Append a chunk of bytes and fold [f] over every record completed by
    it.  Errors — from the parser or from [f] — name the line number and
    byte offset of the offending record, and poison the decoder: every
    later call returns the same error. *)

val finish_feed :
  decoder -> f:('a -> record -> ('a, string) result) -> 'a ->
  ('a, string) result
(** Flush a trailing line that has no final newline.  Call once at end
    of input. *)

val fold_string :
  ?chunk_size:int -> string -> init:'a ->
  f:('a -> record -> ('a, string) result) -> ('a, string) result
(** [feed]/[finish_feed] over a string, split into [chunk_size] pieces
    (any size >= 1; useful for exercising chunk-boundary handling). *)

val fold_file :
  ?chunk_size:int -> string -> init:'a ->
  f:('a -> record -> ('a, string) result) -> ('a, string) result
(** Stream a trace file through [f] one record at a time, reading
    [chunk_size] bytes (default 64 KiB) per syscall; the file is never
    fully resident.  I/O failures are returned as [Error]. *)

val encode_stream : Trace.t -> string
(** Stream-ordered layout: events interleaved in an hb1-topological
    order (Kahn over po + so1, smallest [(seq, proc)] first) with each
    acquire's so1 record immediately before it, unpaired acquires marked
    ["so1 -"], and a trailing ["end N"].  A streaming analyzer reading
    this layout retires events as it goes (bounded live set); {!decode}
    reads it identically to the batch layout.  If hb1 is cyclic no such
    order exists and the batch layout (plus terminator) is emitted. *)

val write_stream_file : string -> Trace.t -> unit
