(** Trace-file serialization: a line-oriented text format.

    The on-disk content is exactly the information the paper's
    instrumentation records — per-processor event order, per-location
    synchronization order, READ/WRITE sets, and the release observed by
    each acquire.  Individual data operations are {e not} written (that is
    the point of event-level tracing), so decoding a trace yields
    computation events with empty [ops] lists.

    Two framings share the record grammar.  {b v1} is the historical
    plain-text layout.  {b v2} adds crash-consistent integrity framing,
    in the spirit of §5's warning that a racy program can overwrite its
    own trace buffers: every line after the magic carries a [ ~XXXXXXXX]
    CRC-32 suffix over its body, and periodic epoch markers
    [mark <events> <crc>] record the cumulative event count and CRC so a
    reader can both verify whole-line drops/duplicates (per-line
    checksums cannot see those) and resynchronize after damage.  A final
    mark terminates every v2 file.  Decoding auto-detects the version
    from the magic line; v1 traces decode unchanged. *)

val version : int
(** The plain v1 format (default for all encoders). *)

val version_checksummed : int
(** The checksummed v2 format. *)

val mark_period : int
(** Event lines between consecutive epoch marks in v2 output. *)

val encode : ?version:int -> Trace.t -> string
(** [?version] defaults to {!version} (v1, byte-identical to the
    historical encoder); pass {!version_checksummed} for v2 framing.
    Raises [Invalid_argument] on any other version. *)

val write_file : ?version:int -> string -> Trace.t -> unit

val decode : string -> (Trace.t, string) Result.t
(** Strict parse; the error message names the offending line.  A decoded
    trace is semantically equivalent to the encoded one for every
    analysis: same events, sets, so1 and sync order.  For v2 input every
    per-line checksum and epoch mark is verified, and a missing final
    mark (clean truncation) is an error. *)

val read_file : string -> (Trace.t, string) Result.t
(** Like {!decode} on the file's contents; decode errors are prefixed
    with the file name. *)

val equivalent : Trace.t -> Trace.t -> bool
(** Equality on the serialized information content (ignores the in-memory
    [ops] debug payload, and the order of the so1 edge list — a layout
    artifact: the stream layout interleaves so1 records topologically). *)

val write_dir : string -> Trace.t -> unit
(** Per-processor trace files, as the paper's instrumentation would write
    them: [dir/procN.trace] holds processor N's event stream, and
    [dir/sync.trace] the shared header, per-location synchronization order
    and release/acquire pairing.  Creates [dir] if needed.  Always v1:
    the v2 epoch stream has no meaningful order across split files. *)

val read_dir : string -> (Trace.t, string) Result.t
(** Merge a {!write_dir} directory back into a trace; the result is
    {!equivalent} to the original.  Decode errors are prefixed with the
    offending file's path. *)

(** {1 Streaming}

    The same record grammar, consumed incrementally: a {!decoder} turns
    arbitrarily-chunked byte input into a sequence of {!record}s without
    ever materializing the whole file, so a multi-gigabyte or growing
    trace costs O(longest line) decoder memory.  Two extra record forms
    support stream-ordered files (written by {!encode_stream}): ["so1 -
    A"] marks acquire [A] as having no incoming so1 edge, and ["end N"]
    terminates a complete trace of [N] events — the batch {!decode}
    accepts and ignores both. *)

type sizes = { n_procs : int; n_locs : int; n_events : int }

type record =
  | Magic of int  (** header line; carries the format version *)
  | Model of string
  | Truncated of bool
  | Sizes of sizes
  | Event of Event.t
  | So1 of { release : int; acquire : int }
  | So1_unpaired of int
      (** stream-ordered traces only: the named acquire has no incoming
          so1 edge, so a streaming consumer need not wait for one *)
  | Sync_order of int * int list
  | End of int
      (** terminator carrying the event count; lets a follower know the
          trace is complete *)
  | Mark of { events : int; crc : int }
      (** v2 epoch marker: cumulative event count and CRC-32 at this
          point in the stream; verified by strict decoders, used as a
          resynchronization point by the salvage decoder *)

type decoder
(** Incremental decoder state: format validation (magic line first,
    header sanity bounds, v2 checksums), record parsing, and position
    tracking for error messages.  Input may be split at arbitrary byte
    boundaries. *)

val decoder : unit -> decoder

val decoder_sizes : decoder -> sizes option
(** The procs/locs/events header, once it has been decoded. *)

val decoder_version : decoder -> int
(** Format version from the magic line ({!version} until it is read). *)

val feed :
  decoder -> string -> f:('a -> record -> ('a, string) result) -> 'a ->
  ('a, string) result
(** Append a chunk of bytes and fold [f] over every record completed by
    it.  Errors — from the parser or from [f] — name the line number and
    byte offset of the offending record, and poison the decoder: every
    later call returns the same error. *)

val finish_feed :
  decoder -> f:('a -> record -> ('a, string) result) -> 'a ->
  ('a, string) result
(** Flush a trailing line that has no final newline.  Call once at end
    of input.  For v2 input, errors if the last record was not an epoch
    mark (the file was cleanly truncated). *)

val fold_string :
  ?chunk_size:int -> string -> init:'a ->
  f:('a -> record -> ('a, string) result) -> ('a, string) result
(** [feed]/[finish_feed] over a string, split into [chunk_size] pieces
    (any size >= 1; useful for exercising chunk-boundary handling). *)

val fold_file :
  ?chunk_size:int -> string -> init:'a ->
  f:('a -> record -> ('a, string) result) -> ('a, string) result
(** Stream a trace file through [f] one record at a time, reading
    [chunk_size] bytes (default 64 KiB) per syscall; the file is never
    fully resident.  I/O failures are returned as [Error]. *)

val encode_stream : ?version:int -> Trace.t -> string
(** Stream-ordered layout: events interleaved in an hb1-topological
    order (Kahn over po + so1, smallest [(seq, proc)] first) with each
    acquire's so1 record immediately before it, unpaired acquires marked
    ["so1 -"], and a trailing ["end N"].  A streaming analyzer reading
    this layout retires events as it goes (bounded live set); {!decode}
    reads it identically to the batch layout.  If hb1 is cyclic no such
    order exists and the batch layout (plus terminator) is emitted. *)

val write_stream_file : ?version:int -> string -> Trace.t -> unit

(** {1 Salvage decoding}

    Fault-tolerant decoding for damaged traces: instead of dying on the
    first checksum or parse failure, the salvage decoder discards the
    damaged region, resynchronizes — optimistically at the next cleanly
    decoding line, authoritatively at the next epoch mark, whose
    announced event count and CRC it {e adopts} — and reports each
    discarded region as an explicit {!Salvage.loss} interval.  Consumers
    (see [Stream.finish_salvaged]) must treat any loss conservatively:
    no happens-before edges through a gap, and never a race-free verdict
    over a lossy trace. *)

module Salvage : sig
  type loss = {
    start_line : int;  (** first damaged line (1-based) *)
    start_byte : int;  (** byte offset of its start *)
    end_line : int;    (** last line of the damaged region *)
    end_byte : int;    (** byte offset just past the region *)
    lines_lost : int;  (** lines discarded by the salvage decoder *)
    events_lost : int option;
        (** writer-side events missing across the region, when the
            surrounding epoch marks pin it down exactly; [None] when
            unknowable (v1 input, or several regions in one epoch) *)
    reason : string;   (** the first decode error in the region *)
  }

  val pp_loss : Format.formatter -> loss -> unit

  type t
  (** Incremental salvage state; the damaged-input analogue of
      {!decoder}. *)

  val create : unit -> t

  val feed :
    t -> string -> f:('a -> record -> ('a, string) result) -> 'a ->
    ('a, string) result
  (** Like {!val-feed}, but decode failures become loss intervals instead
      of errors; only [f]'s own errors (and I/O) are fatal. *)

  val finish_feed :
    t -> f:('a -> record -> ('a, string) result) -> 'a ->
    ('a, string) result
  (** Flush trailing input and close any open loss region.  For v2
      input a missing final epoch mark is recorded as a tail loss. *)

  val losses : t -> loss list
  (** All loss intervals so far, in input order. *)

  val clean : t -> bool
  (** [true] iff no damage has been seen. *)

  val decoder : t -> decoder
  (** The underlying decoder (for {!decoder_sizes} / {!decoder_version}). *)
end

val fold_salvage_string :
  ?chunk_size:int -> string -> init:'a ->
  f:('a -> record -> ('a, string) result) ->
  ('a * Salvage.loss list, string) result
(** {!fold_string} through a {!Salvage.t}: never fails on damaged input,
    returning the surviving records' fold and the loss intervals. *)

val fold_salvage_file :
  ?chunk_size:int -> string -> init:'a ->
  f:('a -> record -> ('a, string) result) ->
  ('a * Salvage.loss list, string) result
