module Ast = Minilang.Ast
module Op = Memsim.Op

type cycle = int array

type t = {
  program : Ast.program;
  accesses : Absint.access array;
  conflicts : (int * int) list;
  cycles : cycle list;
  delays : (int * int) list;
  truncated : bool;
}

let max_cycles = 512
let step_budget = 200_000

let access t i = t.accesses.(i)

(* two accesses under a common enclosing loop recur: each iteration's
   instance of one precedes the next iteration's instance of the other,
   so program order connects them in both directions.  This is the
   two-iteration unrolling classic delay-set analysis applies to loops —
   without it, loop-carried critical cycles are silently missed *)
let loop_carried (a : Absint.access) (b : Absint.access) =
  let rec common xs ys =
    match (xs, ys) with
    | x :: xs', y :: ys' when x = y -> x :: common xs' ys'
    | _ -> []
  in
  List.mem Ast.Body (common a.Absint.path b.Absint.path)

(* program order between two accesses of one processor; accesses sharing
   a path come from one read-modify-write, whose read precedes its write *)
let po_within body (a : Absint.access) (b : Absint.access) =
  let rmw_order =
    a.Absint.path = b.Absint.path
    && a.Absint.kind = Op.Read
    && b.Absint.kind = Op.Write
  in
  let structural =
    a.Absint.path <> b.Absint.path
    && Cfg.always_before body a.Absint.path b.Absint.path
    && not (Cfg.always_before body b.Absint.path a.Absint.path)
  in
  rmw_order || structural || loop_carried a b

let conflicting (a : Absint.access) (b : Absint.access) =
  a.Absint.proc <> b.Absint.proc
  && (a.Absint.kind = Op.Write || b.Absint.kind = Op.Write)
  && not (Absdom.is_bot (Absdom.meet a.Absint.addr b.Absint.addr))

(* canonical form of a cyclic node sequence: the lexicographically
   smallest rotation of the sequence or of its reversal, so every
   enumeration order of one cycle dedups.  Reversal matters because
   loop-carried program order runs in both directions: a loop-carried
   cycle and its mirror are the same set of orderings, yet the segment
   enumeration discovers both *)
let canonical (nodes : int list) =
  let best_rot arr =
    let n = Array.length arr in
    let rot k = List.init n (fun i -> arr.((i + k) mod n)) in
    let best = ref (rot 0) in
    for k = 1 to n - 1 do
      let r = rot k in
      if r < !best then best := r
    done;
    !best
  in
  let arr = Array.of_list nodes in
  let rev = Array.of_list (List.rev nodes) in
  min (best_rot arr) (best_rot rev)

let analyze (p : Ast.program) (results : Absint.proc_result array) =
  let accesses =
    Array.to_list results
    |> List.concat_map (fun r -> r.Absint.accesses)
    |> Array.of_list
  in
  let n = Array.length accesses in
  let po = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let a = accesses.(i) and b = accesses.(j) in
      if i <> j && a.Absint.proc = b.Absint.proc then
        po.(i).(j) <- po_within p.Ast.procs.(a.Absint.proc) a b
    done
  done;
  let conflicts = ref [] in
  let conf = Array.make n [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if conflicting accesses.(i) accesses.(j) then begin
        conflicts := (i, j) :: !conflicts;
        conf.(i) <- j :: conf.(i);
        conf.(j) <- i :: conf.(j)
      end
    done
  done;
  let conf = Array.map List.rev conf in
  (* only nodes inside a non-trivial SCC of the po+conflict graph can
     lie on any cycle at all — prune the segment enumeration to them *)
  let eligible =
    if n = 0 then [||]
    else begin
      let g = Graphlib.Digraph.create n in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if po.(i).(j) then Graphlib.Digraph.add_edge g i j
        done
      done;
      List.iter
        (fun (i, j) ->
          Graphlib.Digraph.add_edge g i j;
          Graphlib.Digraph.add_edge g j i)
        !conflicts;
      let scc = Graphlib.Scc.compute g in
      let sizes = Graphlib.Scc.component_sizes scc in
      Array.init n (fun i -> sizes.(scc.Graphlib.Scc.component.(i)) > 1)
    end
  in
  (* per-processor segments: one access, or a po-ordered pair *)
  let n_procs = Array.length p.Ast.procs in
  let segs = Array.make n_procs [] in
  for i = 0 to n - 1 do
    if eligible.(i) then begin
      let pr = accesses.(i).Absint.proc in
      segs.(pr) <- (i, i) :: segs.(pr);
      for j = 0 to n - 1 do
        if eligible.(j) && po.(i).(j) then segs.(pr) <- (i, j) :: segs.(pr)
      done
    end
  done;
  let segs = Array.map List.rev segs in
  let seen = Hashtbl.create 64 in
  let cycles = ref [] in
  let n_found = ref 0 in
  let budget = ref step_budget in
  let truncated = ref false in
  let close path =
    (* path is the segment list in reverse discovery order *)
    let nodes =
      List.concat_map (fun (f, l) -> if f = l then [ f ] else [ f; l ])
        (List.rev path)
    in
    let key = canonical nodes in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      if !n_found < max_cycles then begin
        incr n_found;
        cycles := Array.of_list nodes :: !cycles
      end
      else truncated := true
    end
  in
  let rec extend path used ((f0, l0) as s0) (_, lc) =
    if !budget <= 0 then truncated := true
    else
      List.iter
        (fun w ->
          let pw = accesses.(w).Absint.proc in
          if not (List.mem pw used) then
            List.iter
              (fun ((f, l) as s) ->
                if f = w then begin
                  decr budget;
                  (* a two-segment cycle of two single accesses would use
                     one conflict edge twice — not a cycle *)
                  let degenerate =
                    List.length path = 1 && f0 = l0 && f = l
                  in
                  if List.mem f0 conf.(l) && not degenerate then
                    close (s :: path);
                  extend (s :: path) (pw :: used) s0 s
                end)
              segs.(pw))
        conf.(lc)
  in
  Array.iter
    (fun proc_segs ->
      List.iter
        (fun ((f, _) as s) -> extend [ s ] [ accesses.(f).Absint.proc ] s s)
        proc_segs)
    segs;
  let cycles =
    List.sort
      (fun c1 c2 ->
        let c = compare (Array.length c1) (Array.length c2) in
        if c <> 0 then c else compare c1 c2)
      !cycles
  in
  let delay_tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let len = Array.length c in
      (* a cycle whose po edges are all bidirectional (loop-carried) is
         its own mirror; the mirror's delay pairs are the reversed ones,
         and dedup keeps only one orientation, so emit both *)
      let reversible = ref true in
      for i = 0 to len - 1 do
        let u = c.(i) and v = c.((i + 1) mod len) in
        if
          accesses.(u).Absint.proc = accesses.(v).Absint.proc
          && not po.(v).(u)
        then reversible := false
      done;
      for i = 0 to len - 1 do
        let u = c.(i) and v = c.((i + 1) mod len) in
        if accesses.(u).Absint.proc = accesses.(v).Absint.proc then begin
          Hashtbl.replace delay_tbl (u, v) ();
          if !reversible then Hashtbl.replace delay_tbl (v, u) ()
        end
      done)
    cycles;
  let delays =
    Hashtbl.fold (fun d () acc -> d :: acc) delay_tbl []
    |> List.sort (fun (u1, v1) (u2, v2) ->
           let a1 = accesses.(u1) and a2 = accesses.(u2) in
           let c = compare a1.Absint.proc a2.Absint.proc in
           if c <> 0 then c
           else
             let c =
               Ast.compare_path a1.Absint.path a2.Absint.path
             in
             if c <> 0 then c
             else
               Ast.compare_path accesses.(v1).Absint.path
                 accesses.(v2).Absint.path)
  in
  {
    program = p;
    accesses;
    conflicts = List.rev !conflicts;
    cycles;
    delays;
    truncated = !truncated;
  }

let same_access (a : Absint.access) (b : Absint.access) =
  a.Absint.proc = b.Absint.proc
  && a.Absint.node = b.Absint.node
  && a.Absint.kind = b.Absint.kind

let index_of t (a : Absint.access) =
  let found = ref None in
  Array.iteri
    (fun i b -> if !found = None && same_access a b then found := Some i)
    t.accesses;
  !found

let cycle_for t (pair : Candidates.pair) =
  match (index_of t pair.Candidates.a, index_of t pair.Candidates.b) with
  | Some ia, Some ib ->
    List.find_opt
      (fun c ->
        let len = Array.length c in
        let adj = ref false in
        for i = 0 to len - 1 do
          let u = c.(i) and v = c.((i + 1) mod len) in
          if (u = ia && v = ib) || (u = ib && v = ia) then adj := true
        done;
        !adj)
      t.cycles
  | _ -> None

let delays_for_proc t proc =
  List.filter (fun (u, _) -> t.accesses.(u).Absint.proc = proc) t.delays

(* -- rendering --------------------------------------------------------- *)

let pp_locs p ppf (a : Absdom.t) =
  match Absdom.singleton a with
  | Some l -> Format.pp_print_string ppf (Ast.loc_name p l)
  | None -> (
    match (a : Absdom.t) with
    | Absdom.Bot -> Format.pp_print_string ppf "mem[]"
    | Absdom.Itv (lo, hi) when lo <> min_int && hi <> max_int ->
      Format.fprintf ppf "mem[%d..%d]" lo hi
    | Absdom.Itv _ -> Format.pp_print_string ppf "mem[*]")

let verb (a : Absint.access) =
  match (a.Absint.op_name, a.Absint.kind) with
  | (("test&set" | "fetch&add") as n), Op.Read -> n ^ " (read)"
  | (("test&set" | "fetch&add") as n), Op.Write -> n ^ " (write)"
  | n, _ -> n

let pp_access t ppf i =
  let a = t.accesses.(i) in
  Format.fprintf ppf "P%d %s %a @%s" a.Absint.proc (verb a)
    (pp_locs t.program) a.Absint.addr
    (Ast.path_to_string a.Absint.path)

let pp_cycle t ppf (c : cycle) =
  let len = Array.length c in
  Array.iteri
    (fun i u ->
      let v = c.((i + 1) mod len) in
      let sep =
        if t.accesses.(u).Absint.proc = t.accesses.(v).Absint.proc then
          " -po-> "
        else " -cf-> "
      in
      Format.fprintf ppf "%a%s" (pp_access t) u sep)
    c;
  pp_access t ppf c.(0)

let pp_delay t ppf (u, v) =
  let a = t.accesses.(u) in
  Format.fprintf ppf "P%d: %s %a @%s  ->>  %s %a @%s" a.Absint.proc (verb a)
    (pp_locs t.program) a.Absint.addr
    (Ast.path_to_string a.Absint.path)
    (verb t.accesses.(v))
    (pp_locs t.program) t.accesses.(v).Absint.addr
    (Ast.path_to_string t.accesses.(v).Absint.path)

(* what a missing cycle means depends on whether the enumeration was
   complete: only a complete enumeration proves SC-ordering *)
let no_cycle_note t =
  if t.truncated then
    "no critical cycle found, but the enumeration was truncated: ordering \
     not proven"
  else
    "no critical cycle: already SC-ordered — weak buffering adds no \
     outcomes for this pair"

let pp ppf t =
  Format.fprintf ppf
    "%d access(es), %d cross-processor conflict edge(s), %d critical \
     cycle(s)%s, %d delay pair(s)"
    (Array.length t.accesses)
    (List.length t.conflicts)
    (List.length t.cycles)
    (if t.truncated then " (truncated)" else "")
    (List.length t.delays)
