(** Static may-happen-in-parallel race candidates.

    Two reachable accesses from different processors form a candidate
    when their address abstractions intersect, at least one writes, and
    no static synchronization argument orders them.  Three ordering
    arguments are tried — all justified by so1 pairing, i.e. by an
    acquire that can only have read a release-written value:

    - {e mutex}: both accesses hold a common Test&Set lock whose
      discipline is clean ({!Disctab.mutex_ok});
    - {e handoff} in either direction: one side's [facts] prove a
      release of [L] happens-before it, and every release site of [L]
      sits in the other side's processor, always after the other
      access.

    Everything else is emitted: the set over-approximates, never
    misses (the qcheck differential suite in [test/staticcheck]
    enforces this against the dynamic detector). *)

type pair = {
  a : Absint.access;
  b : Absint.access;  (** [a.proc < b.proc] *)
  locs : Absdom.t;    (** intersection of the two address abstractions *)
  data : bool;        (** at least one endpoint is a data access *)
}

val find : Minilang.Ast.program -> Disctab.t -> Absint.access list -> pair list
(** All candidate pairs, deduplicated by site, data pairs first, in
    program order.  Callers split on [data]: data pairs are the analogue
    of the paper's data races; sync-sync pairs are reported separately
    (unordered synchronization is often benign contention, e.g. two
    Test&Sets on one lock). *)
