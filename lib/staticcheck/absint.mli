(** Abstract interpretation of one processor body.

    A worklist fixpoint over {!Cfg} computes, at every node, an interval
    environment for the registers plus two kinds of synchronization
    knowledge used by the race-candidate pruning:

    - [facts]: locations [L] such that on {e every} path reaching the
      node, an acquire that necessarily paired with some release of [L]
      (under so1) has already executed — established when a branch
      refines a register holding a Test&Set or acquire result to a value
      that only release-class writes can produce (the {!tables} say
      which guards are trustworthy);
    - [held]: locations whose Test&Set returned 0 on every path, with no
      intervening release by this processor — the static lockset.

    Accesses are recorded with the fixpoint state of their node, giving
    each a sound over-approximation of the addresses it can touch and
    the values it can write. *)

type sync_kind = Tas | Acq

type src = Any | Sync of { sk : sync_kind; loc : int; other : Absdom.t }
(** Provenance of a register value: [Sync] means the value may come from
    the given synchronization read; [other] over-approximates every
    contribution that does {e not} come from that read, so refining the
    register to a value outside [other] proves the sync read produced
    it. *)

type aval = { v : Absdom.t; src : src }

module Iset : Set.S with type elt = int

type tables = {
  tas_guard_ok : int -> bool;
      (** [Test&Set] on this location returning 0 implies pairing with a
          release: the location is never 0 initially and every write
          that may store 0 is release-class. *)
  acq_guard_ok : int -> value:int -> bool;
      (** An acquire of this location reading [value] implies pairing:
          the initial value differs and only release-class writes may
          store [value]. *)
}

val no_tables : tables
(** Both checks answer [false]; used for the first analysis phase, before
    the discipline tables exist. *)

type access = {
  proc : int;
  node : int;
  path : Minilang.Ast.path;
  label : string option;
  op_name : string;  (** concrete-syntax name: "load", "test&set", ... *)
  kind : Memsim.Op.kind;
  cls : Memsim.Op.op_class;
  addr : Absdom.t;   (** clipped to the location space *)
  wval : Absdom.t;   (** written value; [Absdom.top] for reads *)
  facts : Iset.t;
  held : Iset.t;
}

type fence = {
  f_proc : int;
  f_node : int;
  f_path : Minilang.Ast.path;
  f_label : string option;
  f_may_drain : bool;  (** a data store may precede it on some path *)
}

type proc_result = {
  cfg : Cfg.t;
  reachable : bool array;  (** indexed by node id; abstract reachability *)
  accesses : access list;  (** reachable accesses, in program order *)
  fences : fence list;
}

val analyze :
  proc:int ->
  n_locs:int ->
  mem_read:(Absdom.t -> Absdom.t) ->
  tables:tables ->
  Minilang.Ast.instr list ->
  proc_result
