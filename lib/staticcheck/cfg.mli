(** Per-processor control-flow graph over {!Minilang.Ast.instr}.

    Straight-line instructions become [Atomic] nodes; [If]/[While]
    conditions become [Branch] nodes whose outgoing edges carry the
    condition and its expected truth value, which is what lets the
    abstract interpreter refine register intervals on each arm.  Every
    node remembers its {!Minilang.Ast.path} so diagnostics can say where
    it sits in the source. *)

type stmt =
  | Entry
  | Exit
  | Branch of Minilang.Ast.expr
  | Atomic of Minilang.Ast.instr

type guard =
  | Always
  | Cond of Minilang.Ast.expr * bool  (** condition, expected truth *)

type node = { id : int; path : Minilang.Ast.path; stmt : stmt }

type t = {
  nodes : node array;
  succ : (guard * int) list array;  (** edges [node.id -> (guard, dest)] *)
  entry : int;
  exit_ : int;
}

val build : Minilang.Ast.instr list -> t

val always_before :
  Minilang.Ast.instr list -> Minilang.Ast.path -> Minilang.Ast.path -> bool
(** [always_before body p1 p2] holds when, within one processor, every
    execution that reaches the instruction at [p2] has already executed
    the instruction at [p1] — or the two can never both execute
    (exclusive [If] arms).  Divergence under a [While] is never ordered,
    because iterations interleave the two sites both ways. *)
