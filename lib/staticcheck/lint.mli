(** Driver for the static analysis: runs the whole-program abstract
    interpretation to a fixpoint, derives the discipline tables, and
    produces the sync-discipline findings plus the candidate race
    pairs. *)

type report = {
  program : Minilang.Ast.program;
  results : Absint.proc_result array;
  disctab : Disctab.t;
  findings : Syncdisc.finding list;
  data_candidates : Candidates.pair list;
      (** at least one endpoint is a data access: the static analogue of
          the paper's data races.  Empty means the analysis {e proves}
          the program free of data races under every model. *)
  sync_candidates : Candidates.pair list;
      (** unordered sync-sync pairs; informational (lock contention is
          one of these) *)
}

val analyze : Minilang.Ast.program -> report

val pp :
  ?model:Memsim.Model.t ->
  ?show_sync:bool ->
  ?delays:Delayset.t ->
  Format.formatter ->
  report ->
  unit
(** [?model] keeps only the findings relevant to that model;
    [?show_sync] (default false) itemizes the sync-sync pairs instead of
    just counting them; [?delays] attaches to every data candidate the
    critical cycle witnessing it ({!Delayset.cycle_for}) or a
    provably-SC-ordered note when no cycle crosses the pair. *)

(** {1 Rendering pieces}

    Exposed so the triage layer can render candidates the same way the
    lint report does. *)

val pp_locs : Minilang.Ast.program -> Format.formatter -> Absdom.t -> unit
val pp_side : Minilang.Ast.program -> Format.formatter -> Absint.access -> unit
val pp_pair : Minilang.Ast.program -> Format.formatter -> Candidates.pair -> unit
