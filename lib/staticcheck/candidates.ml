module Op = Memsim.Op
module Iset = Absint.Iset

type pair = {
  a : Absint.access;
  b : Absint.access;
  locs : Absdom.t;
  data : bool;
}

(* every release site of [l] lies in [x]'s processor, after [x] *)
let handoff_orders program dt (x : Absint.access) (y : Absint.access) =
  Iset.exists
    (fun l ->
      match Disctab.releases dt l with
      | [] -> false
      | rels ->
        List.for_all
          (fun (u : Absint.access) ->
            u.Absint.proc = x.Absint.proc
            && Cfg.always_before
                 program.Minilang.Ast.procs.(x.Absint.proc)
                 x.Absint.path u.Absint.path)
          rels)
    y.Absint.facts

let mutex_orders dt (a : Absint.access) (b : Absint.access) =
  Iset.exists (fun l -> Disctab.mutex_ok dt l)
    (Iset.inter a.Absint.held b.Absint.held)

let ordered program dt a b =
  mutex_orders dt a b
  || handoff_orders program dt a b
  || handoff_orders program dt b a

let find program dt accesses =
  let arr = Array.of_list accesses in
  let pairs = ref [] in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = arr.(i) and b = arr.(j) in
      if a.Absint.proc <> b.Absint.proc then begin
        let a, b = if a.Absint.proc < b.Absint.proc then (a, b) else (b, a) in
        let locs = Absdom.meet a.Absint.addr b.Absint.addr in
        let conflict =
          (not (Absdom.is_bot locs))
          && (a.Absint.kind = Op.Write || b.Absint.kind = Op.Write)
        in
        if conflict && not (ordered program dt a b) then
          pairs :=
            {
              a;
              b;
              locs;
              data = a.Absint.cls = Op.Data || b.Absint.cls = Op.Data;
            }
            :: !pairs
      end
    done
  done;
  let key p =
    ( (not p.data),
      p.a.Absint.proc,
      p.a.Absint.node,
      p.b.Absint.proc,
      p.b.Absint.node,
      p.a.Absint.kind,
      p.b.Absint.kind )
  in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun p ->
      match Hashtbl.find_opt tbl (key p) with
      | Some q ->
        Hashtbl.replace tbl (key p)
          { p with locs = Absdom.join p.locs q.locs }
      | None -> Hashtbl.add tbl (key p) p)
    !pairs;
  (* deterministic report order: data pairs first, then by processor and
     source position of both sides (node ids are CFG-construction
     artifacts; paths are what the reader sees) *)
  let order p q =
    let cmp_side (a : Absint.access) (b : Absint.access) =
      let c = compare a.Absint.proc b.Absint.proc in
      if c <> 0 then c
      else
        let c = Minilang.Ast.compare_path a.Absint.path b.Absint.path in
        if c <> 0 then c else compare a.Absint.kind b.Absint.kind
    in
    let c = compare (not p.data) (not q.data) in
    if c <> 0 then c
    else
      let c = cmp_side p.a q.a in
      if c <> 0 then c else cmp_side p.b q.b
  in
  Hashtbl.fold (fun _ p acc -> p :: acc) tbl [] |> List.sort order
