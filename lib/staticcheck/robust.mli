(** Static robustness certification: per-variant critical-cycle
    feasibility.

    A program is {e robust} against a weak model when every behaviour
    the model admits is SC-explainable — orthogonal to racy/race-free
    (the sb litmus is racy {e and} non-robust; lb is racy yet robust).
    Realizing a {!Delayset} critical cycle requires the hardware to
    perform at least one of its program-order edges out of order, so a
    cycle every po edge of which is provably enforced by the
    {!Memsim.Variant}'s knobs is infeasible; a program with no feasible
    cycle — and, under the [read=bypass] coherence defect, no
    same-processor stale-read hazard — is statically ROBUST for that
    variant.

    Each po edge [u ->> v] is mapped to the delay kind the hardware
    would need ({!Memsim.Variant.delay_kind}): the source must be a
    buffered plain data write at all, the sink's class/location decides
    between a W→R delay, an out-of-order W→W retirement, or the bypass
    own-read defect, and an always-executed draining operation strictly
    between the pair suppresses it.  Every rule errs on the side of
    {e feasible}, so ROBUST is sound; feasible cycles are handed to the
    dynamic closure ({!Explore.Robustcheck}) for a witness or a
    refutation.  See DESIGN.md §11 for the soundness argument. *)

type edge = {
  e_u : int;  (** delayed access (a buffered data write), {!Delayset} index *)
  e_v : int;  (** program-later access it can overtake *)
  e_breakable : bool;
  e_kind : Memsim.Variant.delay_kind option;  (** when breakable *)
  e_reason : string;  (** why enforced / how the hardware breaks it *)
}

type cycle_verdict = {
  c_cycle : Delayset.cycle;
  c_feasible : bool;  (** some po edge of the cycle is breakable *)
  c_edges : edge list;
      (** the cycle's po edges — stored orientation plus the reversed
          one when the cycle is loop-carried in both directions *)
}

type hazard = { h_write : int; h_read : int }
(** A same-processor (pending data write, later overlapping read) pair
    that [read=bypass] lets read stale memory — single-processor
    incoherence no SC execution explains, checked separately because
    critical cycles assume uniprocessor coherence. *)

type t = {
  variant : Memsim.Variant.t;
  ds : Delayset.t;
  results : Absint.proc_result array;
  edges : edge list;  (** one verdict per delay pair *)
  cycles : cycle_verdict list;
  hazards : hazard list;
  robust : bool;
      (** enumeration complete, no breakable delay pair, no hazard *)
  truncated : bool;
}

val check : Memsim.Variant.t -> Absint.proc_result array -> Delayset.t -> t
(** Classify a precomputed delay-set analysis under one variant. *)

val analyze : Memsim.Variant.t -> Minilang.Ast.program -> t
(** Run {!Lint.analyze} + {!Delayset.analyze} + {!check}. *)

type frontier_entry = {
  f_name : string;
  f_variant : Memsim.Variant.t;
  f_robust : bool;
}

val frontier : Absint.proc_result array -> Delayset.t -> frontier_entry list
(** The static verdict at every lattice point the variants campaign
    sweeps: the six named models as canonical variants, then
    {!Memsim.Variant.aliases}. *)

val feasible_cycles : t -> cycle_verdict list

val verdict_str : t -> string
(** ["ROBUST"], ["NOT PROVEN"] (some feasible cycle or hazard), or
    ["UNKNOWN"] (cycle enumeration truncated). *)

val pp : Format.formatter -> t -> unit
val pp_explain : Format.formatter -> t -> unit
val pp_edge : t -> Format.formatter -> edge -> unit
val pp_hazard : t -> Format.formatter -> hazard -> unit
val pp_frontier : Format.formatter -> frontier_entry list -> unit
