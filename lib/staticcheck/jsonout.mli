(** Minimal JSON emission for machine-readable reports ([--json]).

    Hand-rolled on purpose: the repo carries no JSON dependency, and the
    emitters only need objects with a stable, caller-chosen key order —
    which is what lets the cram tests lock the schema byte-for-byte. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty-printed with two-space indentation, keys in the given order,
    strings escaped per RFC 8259. *)

val of_locs : Minilang.Ast.program -> Absdom.t -> t
(** The rendering {!Lint}'s reports use: ["x"], ["mem[37..99]"]. *)

val of_access : Minilang.Ast.program -> Absint.access -> t

val of_finding : Syncdisc.finding -> t

val of_pair :
  Minilang.Ast.program -> ?cycle:Delayset.t * Delayset.cycle option ->
  Candidates.pair -> t
(** With [?cycle], adds a ["cycle"] key: the witnessing critical cycle
    as a node list, or [null] with ["delay_ordered"] true. *)

val of_cycle : Delayset.t -> Delayset.cycle -> t

val lint :
  ?delays:Delayset.t -> Lint.report -> t
(** The [racedet lint --json] document.  With [?delays], every data
    candidate carries its critical-cycle explanation. *)
