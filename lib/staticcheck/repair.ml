module Ast = Minilang.Ast
module Op = Memsim.Op
module Model = Memsim.Model
module Variant = Memsim.Variant

type promotion = {
  pr_proc : int;
  pr_path : Ast.path;
  pr_store : bool;
  pr_label : string option;
  pr_loc : Absdom.t;
  pr_forced : bool;
}

type fence_site = {
  fn_proc : int;
  fn_after : Ast.path;
  fn_covers : int;
}

type t = {
  original : Ast.program;
  model : Model.t;
  variant : Variant.t;
  lint0 : Lint.report;
  delays0 : Delayset.t;
  fence_only : fence_site list option;
  promotions : promotion list;
  fences : fence_site list;
  repaired : Ast.program;
  lint1 : Lint.report;
  rounds : int;
}

(* -- AST surgery ------------------------------------------------------- *)

let rec update_at body (path : Ast.path) f =
  match path with
  | [ Ast.Nth i ] -> List.mapi (fun j ins -> if j = i then f ins else ins) body
  | Ast.Nth i :: rest ->
    List.mapi
      (fun j ins ->
        if j <> i then ins
        else
          match (ins, rest) with
          | Ast.If (e, t, e'), Ast.Then :: rest' ->
            Ast.If (e, update_at t rest' f, e')
          | Ast.If (e, t, e'), Ast.Else :: rest' ->
            Ast.If (e, t, update_at e' rest' f)
          | Ast.While (e, b), Ast.Body :: rest' ->
            Ast.While (e, update_at b rest' f)
          | _ -> ins)
      body
  | _ -> body

let rec insert_after body (path : Ast.path) ins_new =
  match path with
  | [ Ast.Nth i ] ->
    List.concat
      (List.mapi (fun j ins -> if j = i then [ ins; ins_new ] else [ ins ]) body)
  | Ast.Nth i :: rest ->
    List.mapi
      (fun j ins ->
        if j <> i then ins
        else
          match (ins, rest) with
          | Ast.If (e, t, e'), Ast.Then :: rest' ->
            Ast.If (e, insert_after t rest' ins_new, e')
          | Ast.If (e, t, e'), Ast.Else :: rest' ->
            Ast.If (e, t, insert_after e' rest' ins_new)
          | Ast.While (e, b), Ast.Body :: rest' ->
            Ast.While (e, insert_after b rest' ins_new)
          | _ -> ins)
      body
  | _ -> body

let promote_instr = function
  | Ast.Load { reg; addr; label } -> Ast.Sync_load { reg; addr; label }
  | Ast.Store { addr; value; label } -> Ast.Sync_store { addr; value; label }
  | i -> i

let apply_promotions (p : Ast.program) promos =
  {
    p with
    Ast.procs =
      Array.mapi
        (fun pi body ->
          List.fold_left
            (fun b pr ->
              if pr.pr_proc = pi then update_at b pr.pr_path promote_instr
              else b)
            body promos)
        p.Ast.procs;
  }

let apply_fences (p : Ast.program) sites =
  {
    p with
    Ast.procs =
      Array.mapi
        (fun pi body ->
          (* apply in reverse source order so sibling indices stay valid *)
          List.filter (fun s -> s.fn_proc = pi) sites
          |> List.sort (fun s1 s2 ->
                 Ast.compare_path s2.fn_after s1.fn_after)
          |> List.fold_left
               (fun b s ->
                 insert_after b s.fn_after (Ast.Fence { label = None }))
               body)
        p.Ast.procs;
  }

(* -- which delay pairs the variant already enforces -------------------- *)

let singleton_same (u : Absint.access) (v : Absint.access) =
  match (Absdom.singleton u.Absint.addr, Absdom.singleton v.Absint.addr) with
  | Some x, Some y -> x = y
  | _ -> false

(* A delay (u, v) asks that u performs globally before v.  Reads and
   sync operations perform at issue on every lattice point, so only a
   buffered data write as u can be delayed past v; v then re-orders
   unless something makes u's retirement precede v's issue. *)
let enforced var (u : Absint.access) (v : Absint.access) =
  (not (Variant.has_buffer var))
  || u.Absint.kind = Op.Read
  || u.Absint.cls <> Op.Data
  ||
  match v.Absint.cls with
  | Op.Data ->
    (v.Absint.kind = Op.Write && var.Variant.retire = Variant.Fifo)
    || v.Absint.kind = Op.Read
       && singleton_same u v
       && var.Variant.read <> Variant.Bypass
  | cls -> (
    match Variant.drain_on var cls with
    | Variant.Drain -> true
    | Variant.Partial -> singleton_same u v
    | Variant.Nop -> false)

let unenforced (ds : Delayset.t) var =
  List.filter
    (fun (u, v) -> not (enforced var ds.Delayset.accesses.(u) ds.Delayset.accesses.(v)))
    ds.Delayset.delays

(* -- minimal fence placement ------------------------------------------- *)

(* strict, really-executes-both ordering (exclusive If arms are
   vacuously always_before in both directions — never place on those) *)
let strictly_before body p q =
  Cfg.always_before body p q && not (Cfg.always_before body q p)

(* One fence right after a delay's source covers every delay whose open
   interval (source, sink) contains that point; greedy over delays in
   sink order is the classic interval-point cover. *)
let place (ds : Delayset.t) delays =
  let acc i = ds.Delayset.accesses.(i) in
  let by_proc = Hashtbl.create 4 in
  List.iter
    (fun (u, v) ->
      let p = (acc u).Absint.proc in
      Hashtbl.replace by_proc p ((u, v) :: (try Hashtbl.find by_proc p with Not_found -> []))
    )
    delays;
  Hashtbl.fold (fun proc ds_p sites -> (proc, ds_p) :: sites) by_proc []
  |> List.sort (fun (p1, _) (p2, _) -> compare p1 p2)
  |> List.concat_map (fun (proc, ds_p) ->
         let body = ds.Delayset.program.Ast.procs.(proc) in
         let ds_p =
           List.sort
             (fun (u1, v1) (u2, v2) ->
               let c =
                 Ast.compare_path (acc v1).Absint.path (acc v2).Absint.path
               in
               if c <> 0 then c
               else
                 Ast.compare_path (acc u1).Absint.path (acc u2).Absint.path)
             ds_p
         in
         let placed = ref [] in
         List.iter
           (fun (u, v) ->
             let up = (acc u).Absint.path and vp = (acc v).Absint.path in
             let covered =
               List.exists
                 (fun (w, _) ->
                   (w = up || strictly_before body up w)
                   && strictly_before body w vp)
                 !placed
             in
             if covered then
               placed :=
                 List.map
                   (fun (w, n) ->
                     if
                       (w = up || strictly_before body up w)
                       && strictly_before body w vp
                     then (w, n + 1)
                     else (w, n))
                   !placed
             else placed := !placed @ [ (up, 1) ])
           ds_p;
         List.map
           (fun (w, n) -> { fn_proc = proc; fn_after = w; fn_covers = n })
           !placed)

(* -- promotion fixpoint ------------------------------------------------ *)

let endpoints (c : Candidates.pair) =
  List.filter_map
    (fun (a : Absint.access) ->
      if a.Absint.cls = Op.Data then
        Some
          {
            pr_proc = a.Absint.proc;
            pr_path = a.Absint.path;
            pr_store = a.Absint.kind = Op.Write;
            pr_label = a.Absint.label;
            pr_loc = a.Absint.addr;
            pr_forced = false;
          }
      else None)
    [ c.Candidates.a; c.Candidates.b ]

let dedup_against promos news =
  List.filter
    (fun pr ->
      not
        (List.exists
           (fun q -> q.pr_proc = pr.pr_proc && q.pr_path = pr.pr_path)
           promos))
    news
  |> List.fold_left
       (fun acc pr ->
         if
           List.exists
             (fun q -> q.pr_proc = pr.pr_proc && q.pr_path = pr.pr_path)
             acc
         then acc
         else acc @ [ pr ])
       []

let rec fix_candidates prog promos rounds =
  let r = Lint.analyze prog in
  match r.Lint.data_candidates with
  | [] -> (prog, r, promos, rounds)
  | data ->
    let chosen =
      if List.length data > 12 || rounds >= 8 then List.concat_map endpoints data
      else begin
        (* trial-promote each candidate; keep the one leaving the least *)
        let scored =
          List.map
            (fun c ->
              let eps = endpoints c in
              let trial = apply_promotions prog eps in
              ( List.length (Lint.analyze trial).Lint.data_candidates, eps ))
            data
        in
        let best, eps =
          List.fold_left
            (fun (bs, be) (s, e) -> if s < bs then (s, e) else (bs, be))
            (List.hd scored) (List.tl scored)
        in
        ignore best;
        eps
      end
    in
    let fresh = dedup_against promos chosen in
    if fresh = [] then (prog, r, promos, rounds)
    else
      fix_candidates (apply_promotions prog fresh) (promos @ fresh) (rounds + 1)

(* -- the plan ---------------------------------------------------------- *)

let plan ?(model = Model.WO) (p0 : Ast.program) =
  let var = Model.variant model in
  let lint0 = Lint.analyze p0 in
  let delays0 = Delayset.analyze p0 lint0.Lint.results in
  (* On a variant that preserves Condition 3.4, a data-race-free program
     is already SC (Theorem 3.5) — only the candidate-breaking promotions
     are needed, and a DRF program needs no fence at all.  Only on
     non-conforming lattice points (release=nop, bypass reads, ...) must
     delay pairs be enforced mechanically. *)
  let conforming = Variant.preserves_condition var in
  let fence_only =
    if conforming && lint0.Lint.data_candidates = [] then Some []
    else
      match unenforced delays0 var with
      | [] -> Some []
      | unenf ->
        if Variant.honors_fences var then Some (place delays0 unenf) else None
  in
  let rec outer prog promos rounds guard =
    let prog, lint, promos, rounds = fix_candidates prog promos rounds in
    if conforming then (prog, lint, promos, [], rounds)
    else
    let ds = Delayset.analyze prog lint.Lint.results in
    match unenforced ds var with
    | [] -> (prog, lint, promos, [], rounds)
    | unenf when Variant.honors_fences var ->
      let sites = place ds unenf in
      let prog' = apply_fences prog sites in
      (prog', Lint.analyze prog', promos, sites, rounds)
    | unenf ->
      (* the variant ignores fences: a release write performs at issue
         on every point, so promote each delayed data write instead *)
      let forced =
        List.filter_map
          (fun (u, _) ->
            let a = ds.Delayset.accesses.(u) in
            if a.Absint.cls = Op.Data && a.Absint.kind = Op.Write then
              Some
                {
                  pr_proc = a.Absint.proc;
                  pr_path = a.Absint.path;
                  pr_store = true;
                  pr_label = a.Absint.label;
                  pr_loc = a.Absint.addr;
                  pr_forced = true;
                }
            else None)
          unenf
        |> dedup_against promos
      in
      if forced = [] || guard = 0 then (prog, lint, promos, [], rounds)
      else outer (apply_promotions prog forced) (promos @ forced) (rounds + 1) (guard - 1)
  in
  let repaired, lint1, promotions, fences, rounds = outer p0 [] 0 4 in
  {
    original = p0;
    model;
    variant = var;
    lint0;
    delays0;
    fence_only;
    promotions;
    fences;
    repaired;
    lint1;
    rounds;
  }

let statically_drf t = t.lint1.Lint.data_candidates = []

let source t = Minilang.Parser.to_source t.repaired

(* -- rendering --------------------------------------------------------- *)

let pp_promotion p ppf pr =
  Format.fprintf ppf "P%d @%s%s: %s %a -> %s%s" pr.pr_proc
    (Ast.path_to_string pr.pr_path)
    (match pr.pr_label with Some l -> " (" ^ l ^ ")" | None -> "")
    (if pr.pr_store then "store" else "load")
    (Delayset.pp_locs p) pr.pr_loc
    (if pr.pr_store then "release write" else "acquire read")
    (if pr.pr_forced then "  [forced: delay pair unenforced, variant ignores fences]"
     else "")

let pp_fence ppf f =
  Format.fprintf ppf "P%d: fence after @%s  [enforces %d delay pair(s)]"
    f.fn_proc
    (Ast.path_to_string f.fn_after)
    f.fn_covers

let pp ppf t =
  let p = t.original in
  Format.fprintf ppf "repair (model %s):@," (Model.name t.model);
  (match t.fence_only with
  | Some [] ->
    Format.fprintf ppf
      "  fence-only: no fence needed under this model@,"
  | Some sites ->
    Format.fprintf ppf
      "  fence-only: %d fence(s) make every execution SC, but leave the \
       races in place:@,"
      (List.length sites);
    List.iter (fun f -> Format.fprintf ppf "    %a@," pp_fence f) sites
  | None ->
    Format.fprintf ppf
      "  fence-only: unavailable — the variant ignores fences \
       (on_fence=nop)@,");
  (match t.promotions with
  | [] -> Format.fprintf ppf "  promotions: none needed@,"
  | promos ->
    Format.fprintf ppf "  promotions (%d):@," (List.length promos);
    List.iter
      (fun pr -> Format.fprintf ppf "    %a@," (pp_promotion p) pr)
      promos);
  (match t.fences with
  | [] ->
    if t.promotions <> [] then
      Format.fprintf ppf
        "  residual fences: none — promoted synchronization enforces every \
         remaining delay pair@,"
  | sites ->
    Format.fprintf ppf "  residual fences (%d):@," (List.length sites);
    List.iter (fun f -> Format.fprintf ppf "    %a@," pp_fence f) sites);
  if statically_drf t then
    Format.fprintf ppf
      "  repaired program is statically data-race-free under every model"
  else
    Format.fprintf ppf
      "  WARNING: %d data candidate(s) remain in the repaired program"
      (List.length t.lint1.Lint.data_candidates)
