module Ast = Minilang.Ast
module Op = Memsim.Op
module Smap = Map.Make (String)
module Iset = Set.Make (Int)

type sync_kind = Tas | Acq
type src = Any | Sync of { sk : sync_kind; loc : int; other : Absdom.t }
type aval = { v : Absdom.t; src : src }

type state = { env : aval Smap.t; facts : Iset.t; held : Iset.t; wrote : bool }

type tables = {
  tas_guard_ok : int -> bool;
  acq_guard_ok : int -> value:int -> bool;
}

let no_tables =
  { tas_guard_ok = (fun _ -> false); acq_guard_ok = (fun _ ~value:_ -> false) }

type access = {
  proc : int;
  node : int;
  path : Ast.path;
  label : string option;
  op_name : string;
  kind : Op.kind;
  cls : Op.op_class;
  addr : Absdom.t;
  wval : Absdom.t;
  facts : Iset.t;
  held : Iset.t;
}

type fence = {
  f_proc : int;
  f_node : int;
  f_path : Ast.path;
  f_label : string option;
  f_may_drain : bool;
}

type proc_result = {
  cfg : Cfg.t;
  reachable : bool array;
  accesses : access list;
  fences : fence list;
}

(* -- environments ----------------------------------------------------- *)

let zero = { v = Absdom.of_int 0; src = Any }
let lookup env r = match Smap.find_opt r env with Some a -> a | None -> zero

let join_aval ~widen a b =
  let ( |+| ) = if widen then Absdom.widen else Absdom.join in
  let src =
    match (a.src, b.src) with
    | Any, Any -> Any
    | Sync s1, Sync s2 when s1.sk = s2.sk && s1.loc = s2.loc ->
      Sync { s1 with other = s1.other |+| s2.other }
    | Sync s, Any -> Sync { s with other = s.other |+| b.v }
    | Any, Sync s -> Sync { s with other = s.other |+| a.v }
    | Sync _, Sync _ -> Any
  in
  { v = a.v |+| b.v; src }

let join_env ~widen a b =
  Smap.merge
    (fun _ x y ->
      let x = Option.value x ~default:zero
      and y = Option.value y ~default:zero in
      Some (join_aval ~widen x y))
    a b

let join_state ~widen a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b ->
    Some
      {
        env = join_env ~widen a.env b.env;
        facts = Iset.inter a.facts b.facts;
        held = Iset.inter a.held b.held;
        wrote = a.wrote || b.wrote;
      }

let equal_src a b =
  match (a, b) with
  | Any, Any -> true
  | Sync s1, Sync s2 ->
    s1.sk = s2.sk && s1.loc = s2.loc && Absdom.equal s1.other s2.other
  | _ -> false

let equal_state a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
    a.wrote = b.wrote && Iset.equal a.facts b.facts && Iset.equal a.held b.held
    && Smap.equal
         (fun x y -> Absdom.equal x.v y.v && equal_src x.src y.src)
         (Smap.filter (fun _ x -> x <> zero) a.env)
         (Smap.filter (fun _ x -> x <> zero) b.env)
  | _ -> false

(* -- expression evaluation -------------------------------------------- *)

let rec eval env = function
  | Ast.Int n -> Absdom.of_int n
  | Ast.Reg r -> (lookup env r).v
  | Ast.Neg e -> Absdom.neg (eval env e)
  | Ast.Not e -> Absdom.lognot (eval env e)
  | Ast.Bin (op, a, b) -> (
    let va = eval env a and vb = eval env b in
    match op with
    | Ast.Add -> Absdom.add va vb
    | Ast.Sub -> Absdom.sub va vb
    | Ast.Mul -> Absdom.mul va vb
    | Ast.Div -> Absdom.div va vb
    | Ast.Mod -> Absdom.md va vb
    | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.And | Ast.Or
      ->
      Absdom.cmp op va vb)

(* -- branch refinement ------------------------------------------------ *)

let set_reg st r v =
  let old = lookup st.env r in
  if Absdom.is_bot v then None
  else Some { st with env = Smap.add r { old with v } st.env }

(* refine the state under the assumption that [cond] evaluates to
   [expected]; None when the assumption is abstractly impossible *)
let rec refine st cond expected =
  let cv = eval st.env cond in
  if Absdom.is_bot cv then None
  else if expected && Absdom.definitely_zero cv then None
  else if (not expected) && Absdom.definitely_nonzero cv then None
  else
    match (cond, expected) with
    | Ast.Not e, _ -> refine st e (not expected)
    | Ast.Reg r, true -> set_reg st r (Absdom.exclude (lookup st.env r).v 0)
    | Ast.Reg r, false ->
      set_reg st r (Absdom.meet (lookup st.env r).v (Absdom.of_int 0))
    | Ast.Bin (Ast.And, a, b), true ->
      Option.bind (refine st a true) (fun st -> refine st b true)
    | Ast.Bin (Ast.Or, a, b), false ->
      Option.bind (refine st a false) (fun st -> refine st b false)
    | Ast.Bin (op, a, b), _ -> (
      let cmp =
        match (op, expected) with
        | Ast.Eq, true | Ast.Ne, false -> Some `Eq
        | Ast.Ne, true | Ast.Eq, false -> Some `Ne
        | Ast.Lt, true | Ast.Ge, false -> Some `Lt
        | Ast.Le, true | Ast.Gt, false -> Some `Le
        | Ast.Gt, true | Ast.Le, false -> Some `Gt
        | Ast.Ge, true | Ast.Lt, false -> Some `Ge
        | _ -> None
      in
      match cmp with
      | None -> Some st
      | Some cmp ->
        let va = eval st.env a and vb = eval st.env b in
        let bound_l, bound_r =
          (* admissible values for the left / right operand *)
          match cmp with
          | `Eq -> (vb, va)
          | `Ne ->
            let ne self other =
              match Absdom.singleton other with
              | Some v -> Absdom.exclude self v
              | None -> self
            in
            (ne va vb, ne vb va)
          | `Lt -> (Absdom.below vb, Absdom.above va)
          | `Le -> (Absdom.at_most vb, Absdom.at_least va)
          | `Gt -> (Absdom.above vb, Absdom.below va)
          | `Ge -> (Absdom.at_least vb, Absdom.at_most va)
        in
        let narrow st e bound =
          match (st, e) with
          | None, _ -> None
          | Some st, Ast.Reg r ->
            set_reg st r (Absdom.meet (lookup st.env r).v bound)
          | Some st, _ -> Some st
        in
        narrow (narrow (Some st) a bound_l) b bound_r)
    | _ -> Some st

(* promote branch knowledge into facts and the static lockset: a sync-read
   register pinned to a value its non-sync contributions cannot produce
   proves which write the sync read observed *)
let harvest tables (st : state) : state =
  Smap.fold
    (fun _ av (st : state) ->
      match av.src with
      | Any -> st
      | Sync { sk; loc; other } -> (
        match Absdom.singleton av.v with
        | Some v when not (Absdom.contains other v) ->
          let fact =
            match sk with
            | Tas -> v = 0 && tables.tas_guard_ok loc
            | Acq -> tables.acq_guard_ok loc ~value:v
          in
          let st =
            if fact then { st with facts = Iset.add loc st.facts } else st
          in
          if sk = Tas && v = 0 then { st with held = Iset.add loc st.held }
          else st
        | _ -> st))
    st.env st

(* -- transfer --------------------------------------------------------- *)

let transfer ~n_locs ~mem_read st (stmt : Cfg.stmt) =
  let clip a = Absdom.meet a (Absdom.interval 0 (n_locs - 1)) in
  let release_kill st addr =
    let a = clip (eval st.env addr) in
    let killed l = Absdom.contains a l in
    (* a Test&Set register proving "we hold l" stops proving it the
       moment l is released: scrub the provenance, or harvesting would
       put l right back into [held] at the next edge *)
    let env =
      Smap.map
        (fun av ->
          match av.src with
          | Sync { sk = Tas; loc; _ } when killed loc -> { av with src = Any }
          | _ -> av)
        st.env
    in
    { st with env; held = Iset.filter (fun l -> not (killed l)) st.held }
  in
  match stmt with
  | Cfg.Entry | Cfg.Exit | Cfg.Branch _ -> st
  | Cfg.Atomic i -> (
    match i with
    | Ast.Set (r, e) ->
      let av =
        match e with
        | Ast.Reg r' -> lookup st.env r'
        | _ -> { v = eval st.env e; src = Any }
      in
      { st with env = Smap.add r av st.env }
    | Ast.Load { reg; addr; _ } ->
      let v = mem_read (clip (eval st.env addr)) in
      { st with env = Smap.add reg { v; src = Any } st.env }
    | Ast.Sync_load { reg; addr; _ } ->
      let a = clip (eval st.env addr) in
      let src =
        match Absdom.singleton a with
        | Some l -> Sync { sk = Acq; loc = l; other = Absdom.bot }
        | None -> Any
      in
      { st with env = Smap.add reg { v = mem_read a; src } st.env }
    | Ast.Test_and_set { reg; addr; _ } ->
      let a = clip (eval st.env addr) in
      let src =
        match Absdom.singleton a with
        | Some l -> Sync { sk = Tas; loc = l; other = Absdom.bot }
        | None -> Any
      in
      { st with env = Smap.add reg { v = mem_read a; src } st.env }
    | Ast.Fetch_and_add { reg; addr; _ } ->
      let v = mem_read (clip (eval st.env addr)) in
      { st with env = Smap.add reg { v; src = Any } st.env }
    | Ast.Store _ -> { st with wrote = true }
    | Ast.Sync_store { addr; _ } -> release_kill st addr
    | Ast.Unset { addr; _ } -> release_kill st addr
    | Ast.Fence _ -> st
    | Ast.If _ | Ast.While _ -> st)

(* -- fixpoint --------------------------------------------------------- *)

let widen_threshold = 8

let analyze ~proc ~n_locs ~mem_read ~tables instrs =
  let cfg = Cfg.build instrs in
  let n = Array.length cfg.Cfg.nodes in
  let in_state : state option array = Array.make n None in
  let joins = Array.make n 0 in
  (* widening only at loop heads — the targets of back edges (node ids
     are allocated in program order, so an edge to a not-later node loops
     back to a While branch); widening everywhere would destroy the
     refinement the loop-exit and loop-entry guards provide *)
  let widen_point = Array.make n false in
  Array.iteri
    (fun src succs ->
      List.iter (fun (_, dst) -> if dst <= src then widen_point.(dst) <- true)
        succs)
    cfg.Cfg.succ;
  in_state.(cfg.Cfg.entry) <-
    Some
      { env = Smap.empty; facts = Iset.empty; held = Iset.empty; wrote = false };
  let queue = Queue.create () in
  let on_queue = Array.make n false in
  let push id =
    if not on_queue.(id) then begin
      on_queue.(id) <- true;
      Queue.push id queue
    end
  in
  push cfg.Cfg.entry;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    on_queue.(id) <- false;
    match in_state.(id) with
    | None -> ()
    | Some st ->
      let out = transfer ~n_locs ~mem_read st cfg.Cfg.nodes.(id).Cfg.stmt in
      List.iter
        (fun (guard, dst) ->
          let edge_st =
            match guard with
            | Cfg.Always -> Some out
            | Cfg.Cond (c, expected) -> refine out c expected
          in
          let edge_st = Option.map (harvest tables) edge_st in
          match edge_st with
          | None -> ()
          | Some _ ->
            joins.(dst) <- joins.(dst) + 1;
            let widen = widen_point.(dst) && joins.(dst) > widen_threshold in
            let merged = join_state ~widen in_state.(dst) edge_st in
            if not (equal_state merged in_state.(dst)) then begin
              in_state.(dst) <- merged;
              push dst
            end)
        cfg.Cfg.succ.(id)
  done;
  (* emit accesses from the fixpoint states, in program order *)
  let reachable = Array.map (fun s -> s <> None) in_state in
  let accesses = ref [] and fences = ref [] in
  let emit node st (i : Ast.instr) =
    let { Cfg.path; _ } = node in
    let mk op_name kind cls ~label ~addr ~wval =
      let a = Absdom.meet (eval st.env addr) (Absdom.interval 0 (n_locs - 1)) in
      accesses :=
        {
          proc;
          node = node.Cfg.id;
          path;
          label;
          op_name;
          kind;
          cls;
          addr = a;
          wval;
          facts = st.facts;
          held = st.held;
        }
        :: !accesses
    in
    let top = Absdom.top in
    match i with
    | Ast.Set _ -> ()
    | Ast.Load { addr; label; _ } ->
      mk "load" Op.Read Op.Data ~label ~addr ~wval:top
    | Ast.Store { addr; value; label } ->
      mk "store" Op.Write Op.Data ~label ~addr ~wval:(eval st.env value)
    | Ast.Sync_load { addr; label; _ } ->
      mk "acquire" Op.Read Op.Acquire ~label ~addr ~wval:top
    | Ast.Sync_store { addr; value; label } ->
      mk "release" Op.Write Op.Release ~label ~addr ~wval:(eval st.env value)
    | Ast.Test_and_set { addr; label; _ } ->
      mk "test&set" Op.Read Op.Acquire ~label ~addr ~wval:top;
      mk "test&set" Op.Write Op.Plain_sync ~label ~addr
        ~wval:(Absdom.of_int 1)
    | Ast.Unset { addr; label } ->
      mk "unset" Op.Write Op.Release ~label ~addr ~wval:(Absdom.of_int 0)
    | Ast.Fetch_and_add { addr; amount; label; _ } ->
      mk "fetch&add" Op.Read Op.Acquire ~label ~addr ~wval:top;
      let read = mem_read (Absdom.meet (eval st.env addr)
                             (Absdom.interval 0 (n_locs - 1))) in
      mk "fetch&add" Op.Write Op.Plain_sync ~label ~addr
        ~wval:(Absdom.add read (eval st.env amount))
    | Ast.Fence { label } ->
      fences :=
        {
          f_proc = proc;
          f_node = node.Cfg.id;
          f_path = path;
          f_label = label;
          f_may_drain = st.wrote;
        }
        :: !fences
    | Ast.If _ | Ast.While _ -> ()
  in
  Array.iter
    (fun node ->
      match (in_state.(node.Cfg.id), node.Cfg.stmt) with
      | Some st, Cfg.Atomic i -> emit node st i
      | _ -> ())
    cfg.Cfg.nodes;
  { cfg; reachable; accesses = List.rev !accesses; fences = List.rev !fences }
