module Ast = Minilang.Ast
module Op = Memsim.Op

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_string v =
  let b = Buffer.create 256 in
  let pad n = Buffer.add_string b (String.make n ' ') in
  let rec go indent = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (string_of_bool x)
    | Int i -> Buffer.add_string b (string_of_int i)
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          go (indent + 2) x)
        xs;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          go (indent + 2) x)
        kvs;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.contents b

let of_locs p a = Str (Format.asprintf "%a" (Delayset.pp_locs p) a)

let opt_str = function Some s -> Str s | None -> Null

let kind_str = function Op.Read -> "read" | Op.Write -> "write"

let class_str = function
  | Op.Data -> "data"
  | Op.Acquire -> "acquire"
  | Op.Release -> "release"
  | Op.Plain_sync -> "sync"

let of_access p (a : Absint.access) =
  Obj
    [
      ("proc", Int a.Absint.proc);
      ("path", Str (Ast.path_to_string a.Absint.path));
      ("label", opt_str a.Absint.label);
      ("op", Str a.Absint.op_name);
      ("kind", Str (kind_str a.Absint.kind));
      ("class", Str (class_str a.Absint.cls));
      ("locs", of_locs p a.Absint.addr);
    ]

let of_finding (f : Syncdisc.finding) =
  Obj
    [
      ("proc", match f.Syncdisc.w_proc with Some p -> Int p | None -> Null);
      ( "path",
        match f.Syncdisc.w_path with
        | Some p -> Str (Ast.path_to_string p)
        | None -> Null );
      ("label", opt_str f.Syncdisc.w_label);
      ( "models",
        List (List.map (fun m -> Str (Memsim.Model.name m)) f.Syncdisc.w_models)
      );
      ("message", Str f.Syncdisc.w_msg);
    ]

let of_cycle ds (c : Delayset.cycle) =
  let len = Array.length c in
  List
    (List.init len (fun i ->
         let u = c.(i) and v = c.((i + 1) mod len) in
         let a = Delayset.access ds u in
         let edge =
           if a.Absint.proc = (Delayset.access ds v).Absint.proc then "po"
           else "cf"
         in
         match of_access ds.Delayset.program a with
         | Obj kvs -> Obj (kvs @ [ ("edge_to_next", Str edge) ])
         | j -> j))

let of_pair p ?cycle (c : Candidates.pair) =
  let base =
    [
      ("a", of_access p c.Candidates.a);
      ("b", of_access p c.Candidates.b);
      ("locs", of_locs p c.Candidates.locs);
      ("data", Bool c.Candidates.data);
    ]
  in
  let expl =
    match cycle with
    | None -> []
    | Some (ds, Some cy) ->
      [ ("cycle", of_cycle ds cy); ("delay_ordered", Bool false) ]
    | Some (ds, None) ->
      (* SC-ordering is only proven when the enumeration completed *)
      [ ("cycle", Null); ("delay_ordered", Bool (not ds.Delayset.truncated)) ]
  in
  Obj (base @ expl)

let lint ?delays (r : Lint.report) =
  let p = r.Lint.program in
  let pair_json c =
    match delays with
    | None -> of_pair p c
    | Some ds -> of_pair p ~cycle:(ds, Delayset.cycle_for ds c) c
  in
  Obj
    [
      ("schema", Int 1);
      ("program", Str p.Ast.name);
      ("n_procs", Int (Array.length p.Ast.procs));
      ("n_locs", Int p.Ast.n_locs);
      ( "truncated",
        match delays with
        | Some ds -> Bool ds.Delayset.truncated
        | None -> Bool false );
      ("findings", List (List.map of_finding r.Lint.findings));
      ("data_candidates", List (List.map pair_json r.Lint.data_candidates));
      ( "sync_candidates",
        List (List.map (fun c -> of_pair p c) r.Lint.sync_candidates) );
      ("statically_drf", Bool (r.Lint.data_candidates = []));
    ]
