(** Per-location synchronization-discipline tables, derived from the
    reachable accesses of a whole-program abstract interpretation.

    These answer the questions the ordering patterns in {!Candidates} and
    the guard harvesting in {!Absint} depend on: which writes can put a
    given value into a location, whether those writes are release-class,
    and where the release sites live. *)

type t

val build : Minilang.Ast.program -> Absint.access list -> t

val init_value : t -> int -> int

val tables : t -> Absint.tables
(** The guard-trust tables for the final {!Absint} pass. *)

val mutex_ok : t -> int -> bool
(** Location behaves as a Test&Set mutex: every write that may store 0
    is release-class, at least one release exists, and every release
    site is reached holding the lock (so releases close critical
    sections). *)

val releases : t -> int -> Absint.access list
(** Reachable release-class write sites that may touch the location. *)

val acquires : t -> int -> Absint.access list
(** Reachable acquire-class read sites that may touch the location. *)

val plain_sync_writes : t -> int -> Absint.access list

val data_accesses : t -> int -> Absint.access list

val sync_locs : t -> int list
(** Locations touched by at least one sync access, ascending. *)
