(** Interval abstract domain for register and memory values.

    Bounds saturate: [min_int]/[max_int] act as -∞/+∞.  The domain
    over-approximates the interpreter's semantics of {!Minilang.Ast.expr}
    — division and modulo by zero evaluate to 0, [Not] maps 0 to 1 and
    everything else to 0 — so that the abstract value of an expression
    always contains every value the interpreter can produce (assuming no
    native-integer overflow; see DESIGN.md). *)

type t = private Bot | Itv of int * int

val bot : t
val top : t
val of_int : int -> t

val interval : int -> int -> t
(** [interval lo hi] is [Bot] when [lo > hi]. *)

val is_bot : t -> bool
val singleton : t -> int option
val contains : t -> int -> bool
val equal : t -> t -> bool
val leq : t -> t -> bool
val join : t -> t -> t
val meet : t -> t -> t

val widen : t -> t -> t
(** [widen old next] jumps unstable bounds to infinity. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val div : t -> t -> t
val md : t -> t -> t
val lognot : t -> t

val cmp : Minilang.Ast.binop -> t -> t -> t
(** Abstract result of a comparison or logical binop: a sub-interval of
    [0, 1]. *)

val definitely_zero : t -> bool
val definitely_nonzero : t -> bool

val exclude : t -> int -> t
(** Remove value [v] when it sits on a boundary (intervals cannot
    represent interior holes). *)

val below : t -> t
(** Values strictly less than some element: upper bound [hi - 1],
    unbounded below. *)

val above : t -> t
val at_most : t -> t
val at_least : t -> t

val iter_ints : t -> lo:int -> hi:int -> (int -> unit) -> unit
(** Iterate the members clipped to [lo, hi]. *)

val pp : Format.formatter -> t -> unit
