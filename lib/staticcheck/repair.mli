(** Synthesis of a verified repair from the delay-set analysis.

    Two repairs are derived per {!Memsim.Variant} point:

    - the {e fence-only} repair places the fewest fences that enforce
      every delay pair of {!Delayset} the variant does not already
      enforce (a fence after the delay's source drains the buffered
      write before the sink can issue).  It makes every execution
      sequentially consistent on fence-honouring hardware, but fences
      record no operation, so the hb1 races themselves remain — the
      detector still reports them;
    - the {e verified} repair promotes data accesses to release writes /
      acquire reads until the static analysis proves the program
      data-race-free ({!Lint} reports no data candidate), then enforces
      any delay the promoted synchronization still leaves open under the
      variant — with a fence when the variant honours them, by promoting
      the delayed write to a release otherwise (sync operations perform
      at issue on every lattice point).  The result is emitted as a
      [.race] program; {!Explore}'s repair check closes the loop
      dynamically.

    Promotions are chosen greedily: each round trial-promotes every
    remaining data candidate and keeps the one whose promotion leaves
    the fewest data candidates, so a flag protocol is completed at the
    flag (as in [mp_fixed]) rather than by promoting every access.
    Large candidate sets fall back to promoting every data endpoint at
    once.  Each round promotes at least one access that was data before
    it, so the fixpoint terminates. *)

type promotion = {
  pr_proc : int;
  pr_path : Minilang.Ast.path;
  pr_store : bool;  (** [Store] to release write, else [Load] to acquire *)
  pr_label : string option;
  pr_loc : Absdom.t;
  pr_forced : bool;
      (** added to enforce a residual delay pair on a variant that
          ignores fences, not to break a candidate pair *)
}

type fence_site = {
  fn_proc : int;
  fn_after : Minilang.Ast.path;  (** fence inserted right after this *)
  fn_covers : int;  (** delay pairs this fence enforces *)
}

type t = {
  original : Minilang.Ast.program;
  model : Memsim.Model.t;
  variant : Memsim.Variant.t;
  lint0 : Lint.report;  (** analysis of the original program *)
  delays0 : Delayset.t;  (** its critical cycles and delay set *)
  fence_only : fence_site list option;
      (** [None] when the variant ignores fences, or no delay needs one *)
  promotions : promotion list;
  fences : fence_site list;  (** residual enforcement, in the repaired program *)
  repaired : Minilang.Ast.program;
  lint1 : Lint.report;  (** analysis of the repaired program *)
  rounds : int;
}

val plan : ?model:Memsim.Model.t -> Minilang.Ast.program -> t
(** Default model: WO (the paper's weakest canonical point). *)

val statically_drf : t -> bool
(** The repaired program has no data candidate: by the soundness of the
    static analysis, no execution of any model exhibits a data race, so
    Condition 3.4(1) promises SC executions on conforming variants. *)

val source : t -> string
(** The repaired program in concrete syntax ({!Minilang.Parser.to_source}). *)

val pp : Format.formatter -> t -> unit
