(** Synchronization-discipline diagnostics (warnings, not races).

    These check the labeling assumptions behind Condition 3.4 and the
    DRF0/DRF1 models: releases that no acquire can observe, acquires
    with no release to pair with, Test&Set results that are never
    examined, unreachable synchronization, fences with nothing to
    drain, and locations serving both as data and as synchronization.
    A finding may be specific to some models (e.g. a location whose
    only sync writes are Test&Set writes orders accesses under DRF0's
    symmetric synchronization but not under DRF1, where a Test&Set
    write is not a release). *)

type finding = {
  w_proc : int option;            (** None for whole-program findings *)
  w_path : Minilang.Ast.path option;
  w_label : string option;
  w_loc : int option;             (** location concerned, if any *)
  w_models : Memsim.Model.t list; (** empty = applies to every model *)
  w_msg : string;
}

val check :
  Minilang.Ast.program -> Disctab.t -> Absint.proc_result array -> finding list
