module Ast = Minilang.Ast
module Op = Memsim.Op
module Model = Memsim.Model
module Variant = Memsim.Variant

(* Static robustness: classify every Shasha–Snir critical cycle as
   feasible or infeasible under one {!Memsim.Variant} by mapping each of
   its program-order edges to the delay kind the hardware would need to
   violate it, then checking whether the variant's knobs can produce
   that delay.  A cycle none of whose po edges is breakable cannot be
   realized (realizing a critical cycle requires performing at least one
   of its po edges out of order), so a program all of whose delay pairs
   are enforced — plus, under [read=bypass], no same-processor stale-read
   hazard — admits only SC-explainable behaviours: statically ROBUST.

   Every rule errs on the side of *feasible* (breakable): a pair is
   declared enforced only when the machine semantics provably order it
   on every run, so ROBUST verdicts are sound and feasibility is the
   over-approximation the dynamic closure ({!Explore.Robustcheck})
   discharges or confirms with a witness. *)

type edge = {
  e_u : int;  (** delayed access (a buffered data write), index into [ds] *)
  e_v : int;  (** program-later access it can overtake *)
  e_breakable : bool;
  e_kind : Variant.delay_kind option;  (** when breakable *)
  e_reason : string;  (** why enforced / how the hardware breaks it *)
}

type cycle_verdict = {
  c_cycle : Delayset.cycle;
  c_feasible : bool;
  c_edges : edge list;
      (** the cycle's po edges — stored orientation, plus the reversed
          orientation when the cycle is loop-carried both ways *)
}

type hazard = { h_write : int; h_read : int }

type t = {
  variant : Variant.t;
  ds : Delayset.t;
  results : Absint.proc_result array;
  edges : edge list;  (** one verdict per delay pair *)
  cycles : cycle_verdict list;
  hazards : hazard list;
      (** same-processor stale-read pairs under [read=bypass]; critical
          cycles assume uniprocessor coherence, so this is checked
          separately *)
  robust : bool;
  truncated : bool;  (** cycle enumeration was cut: ROBUST not provable *)
}

let is_rmw (a : Absint.access) =
  match a.Absint.op_name with "test&set" | "fetch&add" -> true | _ -> false

(* both addresses resolve to the same single concrete location — the
   only situation in which same-location machine guarantees (in-order
   retirement, forwarding, partial drains) provably apply *)
let certainly_eq (a : Absint.access) (b : Absint.access) =
  match (Absdom.singleton a.Absint.addr, Absdom.singleton b.Absint.addr) with
  | Some x, Some y -> x = y
  | _ -> false

(* the only operations the buffer delays: plain data stores (sync-class
   writes and RMWs write memory at issue) *)
let delayable (a : Absint.access) =
  a.Absint.kind = Op.Write && a.Absint.cls = Op.Data && not (is_rmw a)

(* -- intervening suppression ------------------------------------------- *)

(* [w] executes strictly between [u] and [v] on every path that runs
   both: ordered after [u], before [v], and not merely
   vacuously ordered ([Cfg.always_before] also holds for exclusive If
   arms, in both directions — the negative checks reject that). *)
let strictly_between body (up : Ast.path) (wp : Ast.path) (vp : Ast.path) =
  wp <> up && wp <> vp
  && Cfg.always_before body up wp
  && Cfg.always_before body wp vp
  && not (Cfg.always_before body wp up)
  && not (Cfg.always_before body vp wp)

(* would access [b] refuse to issue while [u]'s write is still pending? *)
let access_blocks (v : Variant.t) (u : Absint.access) (b : Absint.access) =
  let d = Variant.drain_on v b.Absint.cls in
  d = Variant.Drain
  || (d = Variant.Partial && certainly_eq b u)
  || (is_rmw b && certainly_eq b u)
  || (b.Absint.kind = Op.Read && v.Variant.read = Variant.Stall
     && certainly_eq b u)
  || (b.Absint.kind = Op.Write && b.Absint.cls <> Op.Data && certainly_eq b u)

(* an always-executed blocking operation between the pair keeps the
   write from staying pending across [v]: the edge is enforced.  Skipped
   for loop-carried pairs (the blocker sits elsewhere in the iteration
   cycle), which errs feasible. *)
let suppressed (p : Ast.program) (t_res : Absint.proc_result array)
    (v : Variant.t) (u : Absint.access) (vv : Absint.access) =
  if Delayset.loop_carried u vv then None
  else begin
    let r = t_res.(u.Absint.proc) in
    let body = p.Ast.procs.(u.Absint.proc) in
    let up = u.Absint.path and vp = vv.Absint.path in
    let fence_blocker =
      List.find_opt
        (fun (f : Absint.fence) ->
          v.Variant.on_fence <> Variant.Nop
          && strictly_between body up f.Absint.f_path vp)
        r.Absint.fences
    in
    match fence_blocker with
    | Some f ->
      Some
        (Printf.sprintf "fence at %s drains the buffer in between"
           (Ast.path_to_string f.Absint.f_path))
    | None ->
      List.find_opt
        (fun (b : Absint.access) ->
          access_blocks v u b && strictly_between body up b.Absint.path vp)
        r.Absint.accesses
      |> Option.map (fun (b : Absint.access) ->
             Printf.sprintf "%s at %s blocks on the pending write in between"
               b.Absint.op_name
               (Ast.path_to_string b.Absint.path))
  end

(* -- per-edge feasibility ---------------------------------------------- *)

(* verdict for po pair [u ->> v] before intervening suppression *)
let sink_verdict (w : Variant.t) (au : Absint.access) (av : Absint.access) =
  let enforced r = (false, None, r) in
  let breakable k r = (true, Some k, r) in
  if is_rmw av then
    if certainly_eq au av then
      enforced "the RMW waits for pending writes to its own location"
    else if Variant.drain_on w av.Absint.cls = Variant.Drain then
      enforced "the RMW's class drains the buffer before it issues"
    else
      breakable Variant.Delay_wr
        "the RMW runs at memory while the older write is still buffered"
  else
    match av.Absint.kind with
    | Op.Read -> (
      match Variant.drain_on w av.Absint.cls with
      | Variant.Drain -> enforced "the read's class drains the buffer"
      | (Variant.Partial | Variant.Nop) as d ->
        if d = Variant.Partial && certainly_eq au av then
          enforced "a partial drain covers the pending same-location write"
        else if certainly_eq au av then (
          match w.Variant.read with
          | Variant.Stall ->
            enforced "a same-location read stalls until the write retires"
          | Variant.Forward ->
            enforced "a same-location read forwards the buffered value"
          | Variant.Bypass ->
            breakable Variant.Delay_own_read
              "the read bypasses the processor's own pending write")
        else
          breakable Variant.Delay_wr
            "the read performs while the older write is still buffered")
    | Op.Write ->
      if av.Absint.cls = Op.Data then
        if certainly_eq au av then
          enforced "same-location writes retire in order"
        else if Variant.admits w Variant.Delay_ww then
          breakable Variant.Delay_ww "the writes retire out of issue order"
        else if w.Variant.retire = Variant.Fifo then
          enforced "FIFO retirement preserves write order"
        else enforced "the buffer cannot hold two writes at once"
      else if certainly_eq au av then
        enforced "the sync write waits for pending writes to its location"
      else if Variant.drain_on w av.Absint.cls = Variant.Drain then
        enforced "the sync write's class drains the buffer"
      else
        breakable Variant.Delay_wr
          "the sync write performs at issue while the data write is buffered"

let edge_verdict results (w : Variant.t) (ds : Delayset.t) (u, v) =
  let au = ds.Delayset.accesses.(u) and av = ds.Delayset.accesses.(v) in
  let breakable, kind, reason =
    if not (Variant.has_buffer w) then
      (false, None, "no store buffer: nothing is delayed")
    else if not (delayable au) then
      ( false,
        None,
        if au.Absint.kind <> Op.Write then
          "reads perform at issue: nothing to delay"
        else "the write performs at issue (sync class or RMW): never buffered"
      )
    else
      let b, k, r = sink_verdict w au av in
      if not b then (b, k, r)
      else
        match suppressed ds.Delayset.program results w au av with
        | Some why -> (false, None, why)
        | None -> (b, k, r)
  in
  { e_u = u; e_v = v; e_breakable = breakable; e_kind = kind; e_reason = reason }

(* -- bypass coherence hazards ------------------------------------------ *)

(* Critical cycles only cover cross-processor interaction; [read=bypass]
   additionally breaks a single processor's own coherence (a read misses
   its own pending write), which no SC execution can explain.  Flag every
   same-processor (data write, later overlapping read) pair the drain
   knobs do not provably cover.  A [Partial]-draining read waits for
   pending writes to its own concrete location — exactly the hazard
   location — so only [Nop] classes are exposed. *)
let bypass_hazards results (w : Variant.t) (ds : Delayset.t) =
  if not (Variant.admits w Variant.Delay_own_read) then []
  else begin
    let acc = ds.Delayset.accesses in
    let n = Array.length acc in
    let out = ref [] in
    for iu = 0 to n - 1 do
      for iv = 0 to n - 1 do
        let u = acc.(iu) and r = acc.(iv) in
        if
          iu <> iv
          && u.Absint.proc = r.Absint.proc
          && delayable u
          && r.Absint.kind = Op.Read
          && (not (is_rmw r))
          && Variant.drain_on w r.Absint.cls = Variant.Nop
          && (not (Absdom.is_bot (Absdom.meet u.Absint.addr r.Absint.addr)))
          && Delayset.po_within
               ds.Delayset.program.Ast.procs.(u.Absint.proc)
               u r
          && suppressed ds.Delayset.program results w u r = None
        then out := { h_write = iu; h_read = iv } :: !out
      done
    done;
    List.rev !out
  end

(* -- whole-program verdicts -------------------------------------------- *)

let check (variant : Variant.t) (results : Absint.proc_result array)
    (ds : Delayset.t) =
  let edges = List.map (edge_verdict results variant ds) ds.Delayset.delays in
  let acc = ds.Delayset.accesses in
  let po u v =
    acc.(u).Absint.proc = acc.(v).Absint.proc
    && Delayset.po_within
         ds.Delayset.program.Ast.procs.(acc.(u).Absint.proc)
         acc.(u) acc.(v)
  in
  let cycles =
    List.map
      (fun c ->
        let len = Array.length c in
        let pairs = ref [] in
        let reversible = ref true in
        for i = 0 to len - 1 do
          let u = c.(i) and v = c.((i + 1) mod len) in
          if acc.(u).Absint.proc = acc.(v).Absint.proc then begin
            pairs := (u, v) :: !pairs;
            if not (po v u) then reversible := false
          end
        done;
        let pairs = List.rev !pairs in
        let pairs =
          if !reversible then pairs @ List.map (fun (u, v) -> (v, u)) pairs
          else pairs
        in
        let c_edges = List.map (edge_verdict results variant ds) pairs in
        {
          c_cycle = c;
          c_feasible = List.exists (fun e -> e.e_breakable) c_edges;
          c_edges;
        })
      ds.Delayset.cycles
  in
  let hazards = bypass_hazards results variant ds in
  {
    variant;
    ds;
    results;
    edges;
    cycles;
    hazards;
    robust =
      (not ds.Delayset.truncated)
      && (not (List.exists (fun e -> e.e_breakable) edges))
      && hazards = [];
    truncated = ds.Delayset.truncated;
  }

let analyze (variant : Variant.t) (p : Ast.program) =
  let lint = Lint.analyze p in
  let ds = Delayset.analyze p lint.Lint.results in
  check variant lint.Lint.results ds

(* -- the lattice frontier ---------------------------------------------- *)

type frontier_entry = { f_name : string; f_variant : Variant.t; f_robust : bool }

(* same lattice points the variants campaign sweeps: the six named
   models as canonical variants, then the named off-lattice knobs *)
let roster () =
  List.map
    (fun m -> (String.lowercase_ascii (Model.name m), Model.variant m))
    Model.all
  @ Variant.aliases

let frontier (results : Absint.proc_result array) (ds : Delayset.t) =
  List.map
    (fun (n, v) ->
      { f_name = n; f_variant = v; f_robust = (check v results ds).robust })
    (roster ())

(* -- rendering --------------------------------------------------------- *)

let feasible_cycles t = List.filter (fun c -> c.c_feasible) t.cycles

let verdict_str t =
  if t.robust then "ROBUST"
  else if t.truncated then "UNKNOWN"
  else "NOT PROVEN"

let pp_edge t ppf e =
  Format.fprintf ppf "%a  [%s: %s]"
    (Delayset.pp_delay t.ds)
    (e.e_u, e.e_v)
    (if e.e_breakable then
       match e.e_kind with
       | Some Variant.Delay_wr -> "breakable W->R"
       | Some Variant.Delay_ww -> "breakable W->W"
       | Some Variant.Delay_own_read -> "breakable own-read"
       | None -> "breakable"
     else "enforced")
    e.e_reason

let pp_hazard t ppf h =
  Format.fprintf ppf
    "%a  can read stale data over  %a  [read=bypass ignores the buffer]"
    (Delayset.pp_access t.ds) h.h_read (Delayset.pp_access t.ds) h.h_write

let pp ppf t =
  let feas = List.length (feasible_cycles t) in
  Format.fprintf ppf
    "static robustness under %s: %s — %d critical cycle(s), %d feasible, %d \
     delay pair(s) breakable, %d coherence hazard(s)%s"
    (Variant.name t.variant) (verdict_str t)
    (List.length t.cycles)
    feas
    (List.length (List.filter (fun e -> e.e_breakable) t.edges))
    (List.length t.hazards)
    (if t.truncated then " (cycle enumeration truncated)" else "")

let pp_explain ppf t =
  Format.fprintf ppf "@[<v>%a@," pp t;
  List.iteri
    (fun i cv ->
      Format.fprintf ppf "cycle %d: %s@,  %a@," (i + 1)
        (if cv.c_feasible then "FEASIBLE" else "infeasible")
        (Delayset.pp_cycle t.ds) cv.c_cycle;
      List.iter
        (fun e -> Format.fprintf ppf "    %a@," (pp_edge t) e)
        cv.c_edges)
    t.cycles;
  List.iter (fun h -> Format.fprintf ppf "  hazard: %a@," (pp_hazard t) h) t.hazards;
  Format.fprintf ppf "@]"

let pp_frontier ppf entries =
  Format.pp_open_vbox ppf 0;
  Format.fprintf ppf "lattice frontier:";
  List.iter
    (fun f ->
      Format.fprintf ppf "@,  %-20s %s" f.f_name
        (if f.f_robust then "ROBUST" else "not proven"))
    entries;
  Format.pp_close_box ppf ()
