module Ast = Minilang.Ast
module Op = Memsim.Op
module Model = Memsim.Model

type finding = {
  w_proc : int option;
  w_path : Ast.path option;
  w_label : string option;
  w_loc : int option;
  w_models : Model.t list;
  w_msg : string;
}

let of_access ?(models = []) (a : Absint.access) msg =
  {
    w_proc = Some a.Absint.proc;
    w_path = Some a.Absint.path;
    w_label = a.Absint.label;
    w_loc = None;
    w_models = models;
    w_msg = msg;
  }

let is_sync_instr = function
  | Ast.Sync_load _ | Ast.Sync_store _ | Ast.Test_and_set _ | Ast.Unset _
  | Ast.Fetch_and_add _ | Ast.Fence _ ->
    true
  | _ -> false

let check program dt (results : Absint.proc_result array) =
  let out = ref [] in
  let emit f = out := f :: !out in
  (* per-processor structural findings, in program order *)
  Array.iteri
    (fun proc (r : Absint.proc_result) ->
      Array.iter
        (fun (node : Cfg.node) ->
          match node.Cfg.stmt with
          | Cfg.Atomic i
            when is_sync_instr i && not r.Absint.reachable.(node.Cfg.id) ->
            let label =
              match i with
              | Ast.Sync_load { label; _ }
              | Ast.Sync_store { label; _ }
              | Ast.Test_and_set { label; _ }
              | Ast.Unset { label; _ }
              | Ast.Fetch_and_add { label; _ }
              | Ast.Fence { label } ->
                label
              | _ -> None
            in
            emit
              {
                w_proc = Some proc;
                w_path = Some node.Cfg.path;
                w_label = label;
                w_loc = None;
                w_models = [];
                w_msg = "unreachable synchronization: this point never executes";
              }
          | _ -> ())
        r.Absint.cfg.Cfg.nodes;
      List.iter
        (fun (f : Absint.fence) ->
          if r.Absint.reachable.(f.Absint.f_node) && not f.Absint.f_may_drain
          then
            emit
              {
                w_proc = Some proc;
                w_path = Some f.Absint.f_path;
                w_label = f.Absint.f_label;
                w_loc = None;
                w_models = [];
                w_msg =
                  "fence drains nothing: no data store can be buffered here";
              })
        r.Absint.fences)
    results;
  (* per-location pairing findings *)
  let all_accesses =
    Array.to_list results |> List.concat_map (fun r -> r.Absint.accesses)
  in
  List.iter
    (fun l ->
      let name = Ast.loc_name program l in
      let acquires = Disctab.acquires dt l in
      let releases = Disctab.releases dt l in
      let plain = Disctab.plain_sync_writes dt l in
      (match (acquires, releases, plain) with
      | a :: _, [], _ :: _ ->
        emit
          (of_access ~models:[ Model.DRF1 ] a
             (Printf.sprintf
                "acquires of %s can only observe Test&Set/Fetch&Add writes, \
                 which are not releases: no so1 pairing under DRF1 (DRF0's \
                 symmetric synchronization still orders them)"
                name))
      | a :: _, [], [] ->
        emit
          (of_access a
             (Printf.sprintf
                "acquires of %s can never pair: no synchronization write to \
                 %s exists"
                name name))
      | _ -> ());
      List.iter
        (fun (u : Absint.access) ->
          let foreign_acquire =
            List.exists
              (fun (a : Absint.access) -> a.Absint.proc <> u.Absint.proc)
              acquires
          in
          if not foreign_acquire then
            emit
              (of_access u
                 (Printf.sprintf
                    "release of %s orders nothing: no acquire of %s in any \
                     other processor"
                    name name)))
        releases;
      (* a Test&Set whose result never pins a guard acquires for nothing *)
      let tas_sites =
        List.filter
          (fun (a : Absint.access) -> a.Absint.op_name = "test&set")
          acquires
      in
      (match tas_sites with
      | t :: _ ->
        let used =
          List.exists
            (fun (a : Absint.access) ->
              Absint.Iset.mem l a.Absint.held
              || Absint.Iset.mem l a.Absint.facts)
            all_accesses
        in
        if not used then
          emit
            (of_access t
               (Printf.sprintf
                  "the result of test&set(%s) never guards anything: no \
                   later instruction is conditional on it having read 0"
                  name))
      | [] -> ());
      if Disctab.data_accesses dt l <> [] then
        emit
          {
            w_proc = None;
            w_path = None;
            w_label = None;
            w_loc = Some l;
            w_models = [ Model.DRF0; Model.DRF1 ];
            w_msg =
              Printf.sprintf
                "%s is used both as data and for synchronization: the \
                 program is not well-labeled, so the DRF0/DRF1 guarantees \
                 do not apply to it"
                name;
          })
    (Disctab.sync_locs dt);
  (* deterministic report order: per-processor findings by source
     position, program-level findings last; stable within one site *)
  let finding_key (f : finding) =
    match f.w_proc with
    | Some p -> (0, p, Option.value ~default:[] f.w_path)
    | None -> (1, Option.value ~default:0 f.w_loc, [])
  in
  List.stable_sort
    (fun f1 f2 ->
      let (k1, p1, pa1) = finding_key f1 and (k2, p2, pa2) = finding_key f2 in
      let c = compare k1 k2 in
      if c <> 0 then c
      else
        let c = compare p1 p2 in
        if c <> 0 then c else Ast.compare_path pa1 pa2)
    (List.rev !out)
