module Ast = Minilang.Ast

type stmt = Entry | Exit | Branch of Ast.expr | Atomic of Ast.instr
type guard = Always | Cond of Ast.expr * bool
type node = { id : int; path : Ast.path; stmt : stmt }

type t = {
  nodes : node array;
  succ : (guard * int) list array;
  entry : int;
  exit_ : int;
}

let build instrs =
  let nodes = ref [] in
  let n = ref 0 in
  let edges = ref [] in
  let add_node path stmt =
    let id = !n in
    incr n;
    nodes := { id; path; stmt } :: !nodes;
    id
  in
  (* a frontier is the set of dangling (source, guard) edges waiting for
     the next node in program order *)
  let wire frontier dst =
    List.iter (fun (src, g) -> edges := (src, g, dst) :: !edges) frontier
  in
  let rec block prefix frontier instrs =
    List.fold_left
      (fun (i, frontier) instr ->
        let path = prefix @ [ Ast.Nth i ] in
        let frontier =
          match instr with
          | Ast.If (c, t, f) ->
            let b = add_node path (Branch c) in
            wire frontier b;
            let ft = block (path @ [ Ast.Then ]) [ (b, Cond (c, true)) ] t in
            let ff = block (path @ [ Ast.Else ]) [ (b, Cond (c, false)) ] f in
            ft @ ff
          | Ast.While (c, body) ->
            let b = add_node path (Branch c) in
            wire frontier b;
            let fb = block (path @ [ Ast.Body ]) [ (b, Cond (c, true)) ] body in
            wire fb b;
            [ (b, Cond (c, false)) ]
          | _ ->
            let a = add_node path (Atomic instr) in
            wire frontier a;
            [ (a, Always) ]
        in
        (i + 1, frontier))
      (0, frontier) instrs
    |> snd
  in
  let entry = add_node [] Entry in
  let frontier = block [] [ (entry, Always) ] instrs in
  let exit_ = add_node [] Exit in
  wire frontier exit_;
  let nodes =
    List.rev !nodes |> Array.of_list
  in
  let succ = Array.make (Array.length nodes) [] in
  List.iter (fun (src, g, dst) -> succ.(src) <- (g, dst) :: succ.(src)) !edges;
  { nodes; succ; entry; exit_ }

let rec always_before instrs p1 p2 =
  walk instrs false p1 p2

and walk instrs in_loop p1 p2 =
  match (p1, p2) with
  | Ast.Nth i :: r1, Ast.Nth j :: r2 ->
    if i <> j then (not in_loop) && i < j
    else (
      match (List.nth_opt instrs i, r1, r2) with
      | Some (Ast.If (_, t, f)), tag1 :: q1, tag2 :: q2 -> (
        match (tag1, tag2) with
        | Ast.Then, Ast.Then -> walk t in_loop q1 q2
        | Ast.Else, Ast.Else -> walk f in_loop q1 q2
        | Ast.Then, Ast.Else | Ast.Else, Ast.Then ->
          (* exclusive arms: both sites can never execute in one run, so
             the ordering claim is vacuous — unless a loop re-enters *)
          not in_loop
        | _ -> false)
      | Some (Ast.While (_, body)), Ast.Body :: q1, Ast.Body :: q2 ->
        walk body true q1 q2
      | _ -> false)
  | _ -> false
