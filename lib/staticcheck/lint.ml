module Ast = Minilang.Ast
module Op = Memsim.Op
module Model = Memsim.Model

type report = {
  program : Ast.program;
  results : Absint.proc_result array;
  disctab : Disctab.t;
  findings : Syncdisc.finding list;
  data_candidates : Candidates.pair list;
  sync_candidates : Candidates.pair list;
}

(* -- the three phases ------------------------------------------------- *)

let init_mem (p : Ast.program) =
  Array.init p.n_locs (fun l ->
      Absdom.of_int
        (match List.assoc_opt l p.init with Some v -> v | None -> 0))

let mem_reader mem n_locs a =
  let acc = ref Absdom.bot in
  Absdom.iter_ints a ~lo:0 ~hi:(n_locs - 1) (fun l ->
      acc := Absdom.join !acc mem.(l));
  !acc

let run_pass (p : Ast.program) mem tables =
  Array.mapi
    (fun proc instrs ->
      Absint.analyze ~proc ~n_locs:p.n_locs
        ~mem_read:(mem_reader mem p.n_locs)
        ~tables instrs)
    p.procs

let all_accesses results =
  Array.to_list results |> List.concat_map (fun r -> r.Absint.accesses)

(* the flow-insensitive memory abstraction: init joined with every value
   any reachable write may store; iterated with the per-processor pass
   until mutually stable, widening once the chains get long *)
let fix_memory (p : Ast.program) =
  let collect results =
    let nm = init_mem p in
    List.iter
      (fun (a : Absint.access) ->
        if a.Absint.kind = Op.Write then
          Absdom.iter_ints a.Absint.addr ~lo:0 ~hi:(p.n_locs - 1) (fun l ->
              nm.(l) <- Absdom.join nm.(l) a.Absint.wval))
      (all_accesses results);
    nm
  in
  let rec iterate mem results round =
    let nm = collect results in
    let nm =
      if round >= 4 then Array.mapi (fun l v -> Absdom.widen mem.(l) v) nm
      else Array.mapi (fun l v -> Absdom.join mem.(l) v) nm
    in
    if Array.for_all2 Absdom.equal nm mem || round > 50 then (mem, results)
    else iterate nm (run_pass p nm Absint.no_tables) (round + 1)
  in
  let mem0 = init_mem p in
  iterate mem0 (run_pass p mem0 Absint.no_tables) 1

let analyze (p : Ast.program) =
  let mem, phase1 = fix_memory p in
  let tables = Disctab.tables (Disctab.build p (all_accesses phase1)) in
  let results = run_pass p mem tables in
  let disctab = Disctab.build p (all_accesses results) in
  let findings = Syncdisc.check p disctab results in
  let candidates = Candidates.find p disctab (all_accesses results) in
  let data_candidates, sync_candidates =
    List.partition (fun c -> c.Candidates.data) candidates
  in
  { program = p; results; disctab; findings; data_candidates; sync_candidates }

(* -- rendering -------------------------------------------------------- *)

let pp_locs = Delayset.pp_locs
let verb = Delayset.verb

let pp_side p ppf (a : Absint.access) =
  Format.fprintf ppf "P%d at %s%s: %s %a" a.Absint.proc
    (Ast.path_to_string a.Absint.path)
    (match a.Absint.label with Some l -> " (" ^ l ^ ")" | None -> "")
    (verb a) (pp_locs p) a.Absint.addr

let pp_pair p ppf (c : Candidates.pair) =
  Format.fprintf ppf "%a  <->  %a  on %a" (pp_side p) c.Candidates.a
    (pp_side p) c.Candidates.b (pp_locs p) c.Candidates.locs

let pp_finding ppf (f : Syncdisc.finding) =
  (match (f.Syncdisc.w_proc, f.Syncdisc.w_path) with
  | Some proc, Some path ->
    Format.fprintf ppf "P%d at %s%s: " proc (Ast.path_to_string path)
      (match f.Syncdisc.w_label with Some l -> " (" ^ l ^ ")" | None -> "")
  | _ -> Format.fprintf ppf "program: ");
  Format.pp_print_string ppf f.Syncdisc.w_msg;
  match f.Syncdisc.w_models with
  | [] -> ()
  | ms ->
    Format.fprintf ppf " [%s]" (String.concat ", " (List.map Model.name ms))

let pp ?model ?(show_sync = false) ?delays ppf r =
  let p = r.program in
  let lines = ref [] in
  let add fmt = Format.kasprintf (fun s -> lines := s :: !lines) fmt in
  add "program %s: %d processors, %d locations" p.Ast.name
    (Array.length p.Ast.procs) p.Ast.n_locs;
  let findings =
    match model with
    | None -> r.findings
    | Some m ->
      List.filter
        (fun (f : Syncdisc.finding) ->
          f.Syncdisc.w_models = [] || List.mem m f.Syncdisc.w_models)
        r.findings
  in
  add "";
  add "sync discipline:";
  if findings = [] then add "  no findings"
  else List.iter (fun f -> add "  %a" pp_finding f) findings;
  add "";
  add "data race candidates:";
  (match r.data_candidates with
  | [] -> add "  none: the program is statically data-race-free under every model"
  | cands ->
    List.iter
      (fun c ->
        add "  %a" (pp_pair p) c;
        match delays with
        | None -> ()
        | Some ds -> (
          match Delayset.cycle_for ds c with
          | Some cy -> add "    cycle: %a" (Delayset.pp_cycle ds) cy
          | None -> add "    %s" (Delayset.no_cycle_note ds)))
      cands;
    add
      "  %d candidate pair(s): any data race an execution exhibits is among \
       these"
      (List.length cands));
  (match r.sync_candidates with
  | [] -> ()
  | sync ->
    add "";
    add "unordered sync-sync pairs (informational): %d" (List.length sync);
    if show_sync then List.iter (fun c -> add "  %a" (pp_pair p) c) sync);
  Format.pp_print_string ppf (String.concat "\n" (List.rev !lines))
