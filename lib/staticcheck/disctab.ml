module Op = Memsim.Op

type t = {
  program : Minilang.Ast.program;
  accesses : Absint.access list;
}

let build program accesses = { program; accesses }

let init_value t l =
  match List.assoc_opt l t.program.Minilang.Ast.init with
  | Some v -> v
  | None -> 0

let touches (a : Absint.access) l = Absdom.contains a.Absint.addr l

let writes t l =
  List.filter (fun a -> a.Absint.kind = Op.Write && touches a l) t.accesses

let releases t l =
  List.filter
    (fun a ->
      a.Absint.kind = Op.Write && a.Absint.cls = Op.Release && touches a l)
    t.accesses

let acquires t l =
  List.filter
    (fun a ->
      a.Absint.kind = Op.Read && a.Absint.cls = Op.Acquire && touches a l)
    t.accesses

let plain_sync_writes t l =
  List.filter
    (fun a ->
      a.Absint.kind = Op.Write && a.Absint.cls = Op.Plain_sync && touches a l)
    t.accesses

let data_accesses t l =
  List.filter (fun a -> a.Absint.cls = Op.Data && touches a l) t.accesses

let sync_locs t =
  let locs = Hashtbl.create 16 in
  List.iter
    (fun (a : Absint.access) ->
      if a.Absint.cls <> Op.Data then
        Absdom.iter_ints a.Absint.addr ~lo:0
          ~hi:(t.program.Minilang.Ast.n_locs - 1) (fun l ->
            Hashtbl.replace locs l ()))
    t.accesses;
  Hashtbl.fold (fun l () acc -> l :: acc) locs []
  |> List.sort compare

(* only release-class writes can ever store [v] into [l] *)
let value_needs_release t l v =
  List.for_all
    (fun (a : Absint.access) ->
      (not (Absdom.contains a.Absint.wval v)) || a.Absint.cls = Op.Release)
    (writes t l)

let tas_guard_ok t l = init_value t l <> 0 && value_needs_release t l 0

let acq_guard_ok t l ~value =
  init_value t l <> value && value_needs_release t l value

let tables t =
  (* memoized: the fixpoint consults these on every edge visit *)
  let memo tbl key compute =
    match Hashtbl.find_opt tbl key with
    | Some b -> b
    | None ->
      let b = compute () in
      Hashtbl.add tbl key b;
      b
  in
  let tas_memo = Hashtbl.create 8 and acq_memo = Hashtbl.create 8 in
  {
    Absint.tas_guard_ok =
      (fun l -> memo tas_memo l (fun () -> tas_guard_ok t l));
    acq_guard_ok =
      (fun l ~value ->
        memo acq_memo (l, value) (fun () -> acq_guard_ok t l ~value));
  }

let mutex_ok t l =
  value_needs_release t l 0
  &&
  match releases t l with
  | [] -> false
  | rels ->
    List.for_all (fun (r : Absint.access) -> Absint.Iset.mem l r.Absint.held)
      rels
