type t = Bot | Itv of int * int

let bot = Bot
let top = Itv (min_int, max_int)
let of_int n = Itv (n, n)
let interval lo hi = if lo > hi then Bot else Itv (lo, hi)
let is_bot = function Bot -> true | Itv _ -> false
let singleton = function Itv (a, b) when a = b -> Some a | _ -> None
let contains t n = match t with Bot -> false | Itv (a, b) -> a <= n && n <= b
let equal a b = a = b

let leq a b =
  match (a, b) with
  | Bot, _ -> true
  | _, Bot -> false
  | Itv (a1, b1), Itv (a2, b2) -> a2 <= a1 && b1 <= b2

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Itv (a1, b1), Itv (a2, b2) -> Itv (min a1 a2, max b1 b2)

let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (a1, b1), Itv (a2, b2) -> interval (max a1 a2) (min b1 b2)

let widen old next =
  match (old, next) with
  | Bot, x | x, Bot -> x
  | Itv (a, b), Itv (c, d) ->
    Itv ((if c < a then min_int else a), (if d > b then max_int else b))

(* -- saturating bound arithmetic -------------------------------------- *)

let is_fin x = x <> min_int && x <> max_int

let badd a b =
  if a = min_int || b = min_int then min_int
  else if a = max_int || b = max_int then max_int
  else
    let s = a + b in
    if a >= 0 && b >= 0 && s < 0 then max_int
    else if a < 0 && b < 0 && s >= 0 then min_int
    else s

let bneg a = if a = min_int then max_int else if a = max_int then min_int else -a

let bmul a b =
  if a = 0 || b = 0 then 0
  else
    let sign = (a > 0) = (b > 0) in
    if not (is_fin a) || not (is_fin b) then if sign then max_int else min_int
    else
      let lim = 1 lsl 31 in
      if abs a > lim || abs b > lim then if sign then max_int else min_int
      else a * b

let add a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (a1, b1), Itv (a2, b2) -> Itv (badd a1 a2, badd b1 b2)

let neg = function Bot -> Bot | Itv (a, b) -> Itv (bneg b, bneg a)
let sub a b = add a (neg b)

let mul a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (a1, b1), Itv (a2, b2) ->
    let c = [ bmul a1 a2; bmul a1 b2; bmul b1 a2; bmul b1 b2 ] in
    Itv (List.fold_left min max_int c, List.fold_left max min_int c)

let div a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (a1, b1), Itv (a2, b2) ->
    (* the interpreter evaluates x/0 to 0, so a divisor straddling 0 can
       yield anything in between; go to top rather than model it finely *)
    if a2 <= 0 && 0 <= b2 then top
    else if not (is_fin a1 && is_fin b1 && is_fin a2 && is_fin b2) then top
    else
      let c = [ a1 / a2; a1 / b2; b1 / a2; b1 / b2 ] in
      Itv (List.fold_left min max_int c, List.fold_left max min_int c)

let md a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (a1, _), Itv (a2, b2) ->
    if a2 <= 0 && 0 <= b2 then top
    else if not (is_fin a2 && is_fin b2) then top
    else
      let m = max (abs a2) (abs b2) - 1 in
      if a1 >= 0 then Itv (0, m) else Itv (-m, m)

let definitely_zero = function Itv (0, 0) -> true | _ -> false

let definitely_nonzero = function
  | Bot -> false
  | t -> not (contains t 0)

let lognot = function
  | Bot -> Bot
  | t ->
    if definitely_zero t then of_int 1
    else if definitely_nonzero t then of_int 0
    else interval 0 1

let bool_itv definite_true definite_false =
  if definite_true then of_int 1
  else if definite_false then of_int 0
  else interval 0 1

let cmp op a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (a1, b1), Itv (a2, b2) -> (
    let module A = Minilang.Ast in
    match op with
    | A.Eq ->
      bool_itv
        (a1 = b1 && a2 = b2 && a1 = a2)
        (is_bot (meet a b))
    | A.Ne ->
      bool_itv (is_bot (meet a b)) (a1 = b1 && a2 = b2 && a1 = a2)
    | A.Lt -> bool_itv (b1 < a2) (a1 >= b2)
    | A.Le -> bool_itv (b1 <= a2) (a1 > b2)
    | A.Gt -> bool_itv (a1 > b2) (b1 <= a2)
    | A.Ge -> bool_itv (a1 >= b2) (b1 < a2)
    | A.And ->
      bool_itv
        (definitely_nonzero a && definitely_nonzero b)
        (definitely_zero a || definitely_zero b)
    | A.Or ->
      bool_itv
        (definitely_nonzero a || definitely_nonzero b)
        (definitely_zero a && definitely_zero b)
    | A.Add | A.Sub | A.Mul | A.Div | A.Mod ->
      invalid_arg "Absdom.cmp: arithmetic operator")

let exclude t v =
  match t with
  | Bot -> Bot
  | Itv (a, b) ->
    if a = v && b = v then Bot
    else if a = v then Itv (a + 1, b)
    else if b = v then Itv (a, b - 1)
    else t

let below = function
  | Bot -> Bot
  | Itv (_, b) -> if b = min_int then Bot else Itv (min_int, badd b (-1))

let above = function
  | Bot -> Bot
  | Itv (a, _) -> if a = max_int then Bot else Itv (badd a 1, max_int)

let at_most = function Bot -> Bot | Itv (_, b) -> Itv (min_int, b)
let at_least = function Bot -> Bot | Itv (a, _) -> Itv (a, max_int)

let iter_ints t ~lo ~hi f =
  match meet t (interval lo hi) with
  | Bot -> ()
  | Itv (a, b) ->
    for v = a to b do
      f v
    done

let pp ppf = function
  | Bot -> Format.pp_print_string ppf "bot"
  | Itv (a, b) when a = b -> Format.pp_print_int ppf a
  | Itv (a, b) ->
    let bound ppf x =
      if x = min_int then Format.pp_print_string ppf "-inf"
      else if x = max_int then Format.pp_print_string ppf "+inf"
      else Format.pp_print_int ppf x
    in
    Format.fprintf ppf "[%a,%a]" bound a bound b
