(** Shasha–Snir delay-set analysis over the static conflict graph.

    Nodes are the reachable abstract accesses of every processor
    ({!Absint.access}); program-order edges connect accesses of one
    processor ordered on every execution ({!Cfg.always_before}), plus
    both directions between accesses sharing an enclosing loop (each
    iteration's instance of one precedes the next iteration's instance
    of the other — the classic two-iteration unrolling); conflict edges
    connect cross-processor accesses whose abstract address sets
    overlap with at least one write.  A {e critical cycle}
    alternates program-order segments of at most two accesses with
    conflict edges, visits each processor at most once, and uses at
    least two distinct conflict edges (so a lone conflicting pair is not
    a cycle: reordering cannot produce a non-SC outcome for it).

    The {e delay set} is the set of program-order pairs lying on some
    critical cycle.  Per Shasha–Snir this is the minimum set of
    orderings that must be enforced for every execution to be
    sequentially consistent: enforcing it breaks every critical cycle,
    and dropping any member leaves some cycle's non-SC witness
    reachable.  {!Graphlib.Scc} prunes the enumeration to nodes inside
    a non-trivial strongly connected component of the po+conflict
    graph. *)

type cycle = int array
(** Access indices in cycle order; consecutive entries of one processor
    are a program-order segment, processor changes cross a conflict
    edge, and the last entry conflicts back to the first. *)

type t = {
  program : Minilang.Ast.program;
  accesses : Absint.access array;  (** all reachable accesses, all procs *)
  conflicts : (int * int) list;  (** cross-proc overlapping pairs, i < j *)
  cycles : cycle list;  (** critical cycles, shortest first *)
  delays : (int * int) list;
      (** program-order pairs [(u, v)] on some critical cycle *)
  truncated : bool;  (** enumeration hit the cycle or step budget *)
}

val analyze : Minilang.Ast.program -> Absint.proc_result array -> t
(** Cycles are canonicalised up to rotation {e and} reversal before the
    [max_cycles] budget counter, so one critical cycle is reported once
    no matter how many enumeration orders reach it.  The delay set still
    contains both orientations of a pair when the cycle is loop-carried
    in both directions (the mirror cycle's orderings are real). *)

val access : t -> int -> Absint.access

val loop_carried : Absint.access -> Absint.access -> bool
(** Both accesses sit under a common enclosing loop, so program order
    connects their instances in both directions across iterations. *)

val po_within :
  Minilang.Ast.instr list -> Absint.access -> Absint.access -> bool
(** Program order between two accesses of one processor: structural
    {!Cfg.always_before} order, read-before-write within one RMW, or
    {!loop_carried}. *)

val cycle_for : t -> Candidates.pair -> cycle option
(** The shortest critical cycle crossing the pair's conflict edge
    (adjacent endpoints), if any.  [None] means no weak-memory
    reordering can turn this pair into a non-SC outcome — the pair is
    delay-set ordered (any race it names already occurs under SC). *)

val delays_for_proc : t -> int -> (int * int) list

val no_cycle_note : t -> string
(** The sentence to attach to a candidate with no cycle: the SC-ordered
    guarantee when the enumeration completed, a weaker "not proven" note
    when it was truncated. *)

(** {1 Rendering} *)

val pp_locs : Minilang.Ast.program -> Format.formatter -> Absdom.t -> unit
(** ["x"], ["mem[37..99]"], ["mem[*]"] — shared with {!Lint}'s report. *)

val verb : Absint.access -> string
(** ["store"], ["load"], ["test&set (read)"], ... *)

val pp_access : t -> Format.formatter -> int -> unit
(** ["P0 store x @0"] *)

val pp_cycle : t -> Format.formatter -> cycle -> unit
val pp_delay : t -> Format.formatter -> int * int -> unit
val pp : Format.formatter -> t -> unit
