let version = 1
let magic = "weakrace-serve"

type hello =
  | Session of string
  | Metrics
  | Stop

let valid_session_id id =
  let n = String.length id in
  n >= 1 && n <= 64
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '.' || c = '_' || c = '-')
       id

let hello_line = function
  | Session id -> Printf.sprintf "%s %d session %s" magic version id
  | Metrics -> Printf.sprintf "%s %d metrics" magic version
  | Stop -> Printf.sprintf "%s %d stop" magic version

let parse_hello line =
  match String.split_on_char ' ' (String.trim line) with
  | [ m; v; "session"; id ] when m = magic ->
    if v <> string_of_int version then
      Error (Printf.sprintf "unsupported protocol version %s (this build speaks %d)" v version)
    else if not (valid_session_id id) then
      Error (Printf.sprintf "invalid session id %S (1-64 chars of [A-Za-z0-9._-])" id)
    else Ok (Session id)
  | [ m; v; "metrics" ] when m = magic ->
    if v <> string_of_int version then
      Error (Printf.sprintf "unsupported protocol version %s (this build speaks %d)" v version)
    else Ok Metrics
  | [ m; v; "stop" ] when m = magic ->
    if v <> string_of_int version then
      Error (Printf.sprintf "unsupported protocol version %s (this build speaks %d)" v version)
    else Ok Stop
  | _ -> Error "malformed hello (expected \"weakrace-serve 1 session <id>\")"

type outcome =
  | Analyzed of Racedetect.Postmortem.verdict * int
  | Shed of string
  | Aborted of string
  | Failed of string

type outcome_class =
  | Race_free
  | Races of int
  | Degraded of int
  | Shed_c
  | Aborted_c
  | Error_c

(* Failure reasons travel as a single token in the verdict line (the
   full message goes in the report body), so the line stays trivially
   splittable. *)
let reason_token s =
  let s = if s = "" then "unknown" else s in
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-' || c = '_'
      then c
      else if c >= 'A' && c <= 'Z' then Char.lowercase_ascii c
      else '-')
    (String.sub s 0 (min 32 (String.length s)))

let races_of a = List.length (Racedetect.Postmortem.reported_races a)

let verdict_line = function
  | Analyzed (Racedetect.Postmortem.Race_free _, events) ->
    Printf.sprintf "verdict race-free events %d" events
  | Analyzed (Racedetect.Postmortem.Races a, events) ->
    Printf.sprintf "verdict races %d events %d" (races_of a) events
  | Analyzed (Racedetect.Postmortem.Degraded { analysis; _ }, events) ->
    Printf.sprintf "verdict degraded races %d events %d" (races_of analysis) events
  | Shed reason -> Printf.sprintf "verdict shed reason %s" (reason_token reason)
  | Aborted reason -> Printf.sprintf "verdict aborted reason %s" (reason_token reason)
  | Failed reason -> Printf.sprintf "verdict error reason %s" (reason_token reason)

let parse_verdict_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "verdict"; "race-free"; "events"; n ] ->
    (match int_of_string_opt n with
     | Some n -> Ok (Race_free, Some n, None)
     | None -> Error ("bad verdict line: " ^ line))
  | [ "verdict"; "races"; k; "events"; n ] ->
    (match int_of_string_opt k, int_of_string_opt n with
     | Some k, Some n -> Ok (Races k, Some n, None)
     | _ -> Error ("bad verdict line: " ^ line))
  | [ "verdict"; "degraded"; "races"; k; "events"; n ] ->
    (match int_of_string_opt k, int_of_string_opt n with
     | Some k, Some n -> Ok (Degraded k, Some n, None)
     | _ -> Error ("bad verdict line: " ^ line))
  | [ "verdict"; "shed"; "reason"; w ] -> Ok (Shed_c, None, Some w)
  | [ "verdict"; "aborted"; "reason"; w ] -> Ok (Aborted_c, None, Some w)
  | [ "verdict"; "error"; "reason"; w ] -> Ok (Error_c, None, Some w)
  | _ -> Error ("bad verdict line: " ^ line)

let exit_code = function
  | Race_free -> 0
  | Races _ -> 2
  | Degraded _ -> 3
  | Shed_c -> 4
  | Aborted_c -> 5
  | Error_c -> 1

(* Must stay byte-identical to what bin/racedet's [print_verdict]
   writes to stdout — the serve cram test [cmp]s the two. *)
let render_verdict_report v =
  let a = Racedetect.Postmortem.verdict_analysis v in
  let pp =
    match v with
    | Racedetect.Postmortem.Degraded _ ->
      Racedetect.Report.pp_analysis_degraded ?loc_name:None
    | _ -> Racedetect.Report.pp_analysis ?loc_name:None
  in
  let buf = Buffer.create 1024 in
  let f = Format.formatter_of_buffer buf in
  Format.fprintf f "%a@." pp a;
  (match v with
   | Racedetect.Postmortem.Degraded { loss; _ } ->
     Format.fprintf f "@.@[<v>%a@]@." Racedetect.Postmortem.pp_loss loss
   | _ -> ());
  Format.pp_print_flush f ();
  Buffer.contents buf

let outcome_report = function
  | Analyzed (v, _) -> render_verdict_report v
  | Shed reason -> Printf.sprintf "session shed by the server: %s\n" reason
  | Aborted reason -> Printf.sprintf "session aborted by the server: %s\n" reason
  | Failed msg -> Printf.sprintf "session failed: %s\n" msg
