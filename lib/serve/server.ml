type addr =
  | Unix_sock of string
  | Tcp of string * int

let pp_addr ppf = function
  | Unix_sock p -> Format.fprintf ppf "unix:%s" p
  | Tcp (h, p) -> Format.fprintf ppf "tcp:%s:%d" (if h = "" then "127.0.0.1" else h) p

let parse_addr s =
  match String.index_opt s ':' with
  | None ->
    (match int_of_string_opt s with
     | Some p when p >= 0 -> Ok (Tcp ("", p))
     | _ -> Ok (Unix_sock s))
  | Some i ->
    let scheme = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    (match scheme with
     | "unix" -> if rest = "" then Error "unix: needs a path" else Ok (Unix_sock rest)
     | "tcp" ->
       (match String.rindex_opt rest ':' with
        | None ->
          (match int_of_string_opt rest with
           | Some p when p >= 0 -> Ok (Tcp ("", p))
           | _ -> Error (Printf.sprintf "tcp: bad port %S" rest))
        | Some j ->
          let host = String.sub rest 0 j in
          let port = String.sub rest (j + 1) (String.length rest - j - 1) in
          (match int_of_string_opt port with
           | Some p when p >= 0 -> Ok (Tcp (host, p))
           | _ -> Error (Printf.sprintf "tcp: bad port %S" port)))
     | _ -> Ok (Unix_sock s) (* a bare path with a colon in it *))

type config = {
  addr : addr;
  shards : int;
  max_sessions : int;
  global_live : int option;
  session_max_live : int option;
  idle_timeout : float;
  session_timeout : float;
  finish_timeout : float;
  checkpoint_dir : string option;
  checkpoint_every : int;
  resume : bool;
  log : string -> unit;
  ready : string -> unit;
}

let default_config addr =
  {
    addr;
    shards = 2;
    max_sessions = 64;
    global_live = None;
    session_max_live = None;
    idle_timeout = 30.;
    session_timeout = 0.;
    finish_timeout = 30.;
    checkpoint_dir = None;
    checkpoint_every = 64;
    resume = false;
    log = (fun _ -> ());
    ready = (fun _ -> ());
  }

(* -- shared state ---------------------------------------------------- *)

(* Per-session stats row for the metrics snapshot.  A single shard
   writes each row; metrics render reads them racily (int stores are
   atomic words, so a row is at worst slightly stale, never torn). *)
type row = {
  r_id : string;
  r_shard : int;
  mutable r_events : int;
  mutable r_live : int;
  mutable r_consumed : int;
  mutable r_ckpt_events : int;
  mutable r_ckpt_consumed : int;
}

type shared = {
  cfg : config;
  metrics : Metrics.t;
  stop : bool Atomic.t;
  mu : Mutex.t;                           (* guards the three tables below *)
  active : (string, unit) Hashtbl.t;      (* session ids currently streaming *)
  parked : (string, string) Hashtbl.t;    (* session id -> checkpoint path *)
  rows : (string, row) Hashtbl.t;
}

let locked sh f =
  Mutex.lock sh.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.mu) f

(* Everything the serve checkpoint needs to resume a session: the id
   (sanity-checked against the filename on restore), the salvage codec
   state, and the count of trace bytes consumed — the client resends
   from that offset. *)
type ckpt_extra = string * Tracing.Codec.Salvage.t * int

let ckpt_path sh id =
  match sh.cfg.checkpoint_dir with
  | None -> None
  | Some dir -> Some (Filename.concat dir (id ^ ".ckpt"))

(* -- per-connection state -------------------------------------------- *)

type session = {
  id : string;
  engine : Racedetect.Stream.t;
  sal : Tracing.Codec.Salvage.t;
  row : row;
  mutable consumed : int;
  mutable events_at_ckpt : int;
  mutable consumed_at_ckpt : int;
  mutable marks_since_ckpt : int;
  mutable marks_total : int;
  mutable end_marked : bool;    (* v2: the post-end epoch mark arrived *)
  mutable last_live : int;
}

type phase =
  | Hello of Buffer.t
  | Streaming of session
  | Draining

type conn = {
  fd : Unix.file_descr;
  opened : float;
  mutable last_activity : float;
  mutable phase : phase;
  mutable out : string;
  mutable out_pos : int;
  mutable closed : bool;
}

let now () = Unix.gettimeofday ()

let push_record s () r =
  (match r with
   | Tracing.Codec.Mark _ ->
     s.marks_since_ckpt <- s.marks_since_ckpt + 1;
     s.marks_total <- s.marks_total + 1;
     if Racedetect.Stream.saw_end s.engine then s.end_marked <- true
   | _ -> ());
  Racedetect.Stream.push s.engine r

(* The trace is fully delivered once the end record — and, for v2
   input, its final epoch mark — has been consumed; the server then
   answers without waiting for the client to half-close. *)
let complete s =
  Racedetect.Stream.saw_end s.engine
  && (s.end_marked
      || Tracing.Codec.decoder_version (Tracing.Codec.Salvage.decoder s.sal)
         <> Tracing.Codec.version_checksummed)

(* -- the shard loop -------------------------------------------------- *)

type shard = {
  sh : shared;
  index : int;
  listen_fd : Unix.file_descr;
  mutable conns : conn list;
}

let queue_out c s =
  if not c.closed then begin
    if c.out_pos > 0 then begin
      c.out <- String.sub c.out c.out_pos (String.length c.out - c.out_pos);
      c.out_pos <- 0
    end;
    c.out <- c.out ^ s
  end

let close_conn shard c =
  if not c.closed then begin
    c.closed <- true;
    (match c.phase with
     | Streaming s ->
       let sh = shard.sh in
       Atomic.decr sh.metrics.Metrics.sessions_active;
       ignore (Atomic.fetch_and_add sh.metrics.Metrics.live_events (-s.last_live));
       locked sh (fun () ->
           Hashtbl.remove sh.active s.id;
           Hashtbl.remove sh.rows s.id)
     | _ -> ());
    c.phase <- Draining;
    (try Unix.close c.fd with Unix.Unix_error _ -> ())
  end

(* Best-effort synchronous flush used on shutdown paths: give the peer
   a short, bounded chance to take the final bytes. *)
let flush_best_effort c =
  let deadline = now () +. 0.5 in
  let rec go () =
    let n = String.length c.out - c.out_pos in
    if n > 0 && now () < deadline then
      match Unix.select [] [ c.fd ] [] 0.1 with
      | [], [], [] -> go ()
      | _ ->
        (match Unix.write_substring c.fd c.out c.out_pos n with
         | 0 -> ()
         | w ->
           c.out_pos <- c.out_pos + w;
           go ()
         | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> go ()
         | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error _ -> ()
  in
  go ()

let update_counters shard s =
  let sh = shard.sh in
  let seen = Racedetect.Stream.seen_events s.engine in
  let live = Racedetect.Stream.live_events s.engine in
  ignore (Atomic.fetch_and_add sh.metrics.Metrics.events_total (seen - s.row.r_events));
  ignore (Atomic.fetch_and_add sh.metrics.Metrics.live_events (live - s.last_live));
  s.last_live <- live;
  s.row.r_events <- seen;
  s.row.r_live <- live;
  s.row.r_consumed <- s.consumed;
  if sh.cfg.checkpoint_dir <> None then
    Metrics.max_hwm sh.metrics.Metrics.ckpt_lag_hwm (seen - s.events_at_ckpt)

let save_checkpoint shard s =
  match ckpt_path shard.sh s.id with
  | None -> ()
  | Some path ->
    let sh = shard.sh in
    (try
       Racedetect.Stream.checkpoint ~kind:"serve" path s.engine
         ~extra:((s.id, s.sal, s.consumed) : ckpt_extra);
       s.events_at_ckpt <- Racedetect.Stream.seen_events s.engine;
       s.consumed_at_ckpt <- s.consumed;
       s.marks_since_ckpt <- 0;
       s.row.r_ckpt_events <- s.events_at_ckpt;
       s.row.r_ckpt_consumed <- s.consumed_at_ckpt;
       Atomic.incr sh.metrics.Metrics.checkpoints
     with Sys_error msg ->
       sh.cfg.log (Printf.sprintf "session %s: checkpoint failed: %s" s.id msg))

let maybe_checkpoint shard s =
  if shard.sh.cfg.checkpoint_dir <> None then begin
    let since = Racedetect.Stream.seen_events s.engine - s.events_at_ckpt in
    (* align to epoch marks when the input has them (v2); fall back to a
       raw event quota for v1 streams *)
    if since >= shard.sh.cfg.checkpoint_every
       && (s.marks_since_ckpt > 0 || s.marks_total = 0)
    then save_checkpoint shard s
  end

(* Park a session: persist it and remember the checkpoint file so a
   reconnect with the same id resumes from disk.  The engine memory is
   released when the connection record is dropped. *)
let park shard s =
  match ckpt_path shard.sh s.id with
  | None -> ()
  | Some path ->
    save_checkpoint shard s;
    if Sys.file_exists path then
      locked shard.sh (fun () -> Hashtbl.replace shard.sh.parked s.id path)

let count_outcome sh (o : Protocol.outcome) =
  let m = sh.metrics in
  Atomic.incr m.Metrics.completed;
  match o with
  | Protocol.Analyzed (Racedetect.Postmortem.Race_free _, _) ->
    Atomic.incr m.Metrics.race_free
  | Protocol.Analyzed (Racedetect.Postmortem.Races _, _) -> Atomic.incr m.Metrics.racy
  | Protocol.Analyzed (Racedetect.Postmortem.Degraded _, _) ->
    Atomic.incr m.Metrics.degraded
  | Protocol.Shed _ -> Atomic.incr m.Metrics.shed
  | Protocol.Aborted _ -> Atomic.incr m.Metrics.aborted
  | Protocol.Failed _ -> Atomic.incr m.Metrics.errors

let respond shard c (o : Protocol.outcome) =
  let report = Protocol.outcome_report o in
  queue_out c
    (Printf.sprintf "%s\nreport %d\n%s" (Protocol.verdict_line o)
       (String.length report) report);
  count_outcome shard.sh o;
  (match c.phase with
   | Streaming s ->
     let sh = shard.sh in
     Atomic.decr sh.metrics.Metrics.sessions_active;
     ignore (Atomic.fetch_and_add sh.metrics.Metrics.live_events (-s.last_live));
     locked sh (fun () ->
         Hashtbl.remove sh.active s.id;
         Hashtbl.remove sh.rows s.id)
   | _ -> ());
  c.phase <- Draining

(* Run the final analysis, under the shard's wall-clock budget when one
   is configured — a wedged finish burns an abandoned domain, not the
   shard. *)
let finish_session shard c s =
  let work () =
    match Tracing.Codec.Salvage.finish_feed s.sal ~f:(push_record s) () with
    | Error m -> Error m
    | Ok () ->
      Racedetect.Stream.finish_salvaged s.engine
        ~decode_losses:(Tracing.Codec.Salvage.losses s.sal)
  in
  let outcome =
    match
      if shard.sh.cfg.finish_timeout > 0. then
        Engine.Parbatch.run_timeout ~timeout:shard.sh.cfg.finish_timeout work
      else Ok (work ())
    with
    (* the worker domain is joined on both Ok branches, so reading the
       engine here is safe; on timeout it may still be mutating and must
       not be touched again *)
    | Ok (Ok (v, _stats)) ->
      update_counters shard s;
      Protocol.Analyzed (v, Racedetect.Stream.seen_events s.engine)
    | Ok (Error msg) ->
      update_counters shard s;
      Protocol.Failed msg
    | Error `Timeout -> Protocol.Aborted "analysis-timeout"
    | exception e -> Protocol.Failed (Printexc.to_string e)
  in
  (* a finished session needs no resume file *)
  (match ckpt_path shard.sh s.id with
   | Some path when (match outcome with Protocol.Analyzed _ -> true | _ -> false) ->
     (try Sys.remove path with Sys_error _ -> ());
     locked shard.sh (fun () -> Hashtbl.remove shard.sh.parked s.id)
   | _ -> ());
  respond shard c outcome

let abort_session shard c s ~park_it reason =
  if park_it then park shard s;
  respond shard c (Protocol.Aborted reason)

let shed_session shard c s reason =
  park shard s;
  shard.sh.cfg.log
    (Printf.sprintf "shard %d: shedding session %s (%s)" shard.index s.id reason);
  respond shard c (Protocol.Shed reason)

(* -- session establishment ------------------------------------------- *)

let start_session shard c id =
  let sh = shard.sh in
  let dup = locked sh (fun () -> Hashtbl.mem sh.active id) in
  if dup then begin
    queue_out c (Printf.sprintf "err duplicate session %s\n" id);
    c.phase <- Draining
  end
  else begin
    let adopt =
      match locked sh (fun () -> Hashtbl.find_opt sh.parked id) with
      | None -> None
      | Some path ->
        (match
           (Racedetect.Stream.restore ~kind:"serve" path
             : (Racedetect.Stream.t * ckpt_extra, string) result)
         with
         | Ok (engine, (id', sal, consumed)) when id' = id ->
           Some (engine, sal, consumed, path)
         | Ok _ ->
           sh.cfg.log
             (Printf.sprintf "session %s: checkpoint %s names another session; starting fresh"
                id path);
           (try Sys.remove path with Sys_error _ -> ());
           locked sh (fun () -> Hashtbl.remove sh.parked id);
           None
         | Error msg ->
           sh.cfg.log (Printf.sprintf "session %s: %s; starting fresh" id msg);
           (try Sys.remove path with Sys_error _ -> ());
           locked sh (fun () -> Hashtbl.remove sh.parked id);
           None)
    in
    let engine, sal, consumed, resumed =
      match adopt with
      | Some (engine, sal, consumed, _path) -> (engine, sal, consumed, true)
      | None ->
        ( Racedetect.Stream.create ?max_live:sh.cfg.session_max_live ~tolerant:true (),
          Tracing.Codec.Salvage.create (), 0, false )
    in
    let row =
      {
        r_id = id;
        r_shard = shard.index;
        r_events = Racedetect.Stream.seen_events engine;
        r_live = Racedetect.Stream.live_events engine;
        r_consumed = consumed;
        r_ckpt_events = Racedetect.Stream.seen_events engine;
        r_ckpt_consumed = consumed;
      }
    in
    let s =
      {
        id;
        engine;
        sal;
        row;
        consumed;
        events_at_ckpt = Racedetect.Stream.seen_events engine;
        consumed_at_ckpt = consumed;
        marks_since_ckpt = 0;
        marks_total = 0;
        end_marked = false;
        last_live = Racedetect.Stream.live_events engine;
      }
    in
    locked sh (fun () ->
        Hashtbl.replace sh.active id ();
        Hashtbl.replace sh.rows id row);
    Atomic.incr sh.metrics.Metrics.sessions_active;
    Atomic.incr sh.metrics.Metrics.sessions_total;
    if resumed then begin
      Atomic.incr sh.metrics.Metrics.sessions_resumed;
      ignore (Atomic.fetch_and_add sh.metrics.Metrics.live_events s.last_live)
    end;
    c.phase <- Streaming s;
    queue_out c (Printf.sprintf "ok %d\n" consumed)
  end

let metrics_snapshot sh =
  let extra =
    locked sh (fun () ->
        let rows =
          Hashtbl.fold
            (fun _ r acc ->
              Printf.sprintf
                "session %s shard %d state streaming events %d live %d consumed %d ckpt_events %d ckpt_consumed %d"
                r.r_id r.r_shard r.r_events r.r_live r.r_consumed r.r_ckpt_events
                r.r_ckpt_consumed
              :: acc)
            sh.rows []
        in
        let parked =
          Hashtbl.fold
            (fun id _ acc -> Printf.sprintf "session %s state parked" id :: acc)
            sh.parked []
        in
        List.sort compare (rows @ parked))
  in
  Metrics.render sh.metrics ~extra

(* -- reading --------------------------------------------------------- *)

let feed_session shard c s data =
  let sh = shard.sh in
  ignore (Atomic.fetch_and_add sh.metrics.Metrics.bytes_in (String.length data));
  match Tracing.Codec.Salvage.feed s.sal data ~f:(push_record s) () with
  | Error msg ->
    update_counters shard s;
    respond shard c (Protocol.Failed msg)
  | Ok () ->
    s.consumed <- s.consumed + String.length data;
    update_counters shard s;
    maybe_checkpoint shard s;
    if complete s then finish_session shard c s

let handle_hello shard c line rest =
  match Protocol.parse_hello line with
  | Error msg ->
    queue_out c (Printf.sprintf "err %s\n" msg);
    c.phase <- Draining
  | Ok Protocol.Metrics ->
    queue_out c (metrics_snapshot shard.sh);
    c.phase <- Draining
  | Ok Protocol.Stop ->
    queue_out c "ok stopping\n";
    c.phase <- Draining;
    shard.sh.cfg.log (Printf.sprintf "shard %d: stop requested over the wire" shard.index);
    Atomic.set shard.sh.stop true
  | Ok (Protocol.Session id) ->
    start_session shard c id;
    (match c.phase with
     | Streaming s when rest <> "" -> feed_session shard c s rest
     | _ -> ())

let handle_read shard c =
  let buf = Bytes.create 65536 in
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error _ ->
    (* connection reset: finish a streaming session with what arrived *)
    (match c.phase with
     | Streaming s -> finish_session shard c s
     | _ -> ());
    close_conn shard c
  | 0 ->
    (match c.phase with
     | Streaming s -> finish_session shard c s
     | Hello _ -> close_conn shard c
     | Draining -> ())
  | n ->
    c.last_activity <- now ();
    let data = Bytes.sub_string buf 0 n in
    (match c.phase with
     | Streaming s -> feed_session shard c s data
     | Hello hb ->
       Buffer.add_string hb data;
       let all = Buffer.contents hb in
       (match String.index_opt all '\n' with
        | Some i ->
          let line = String.sub all 0 i in
          let rest = String.sub all (i + 1) (String.length all - i - 1) in
          handle_hello shard c line rest
        | None ->
          if Buffer.length hb > 256 then begin
            queue_out c "err hello line too long\n";
            c.phase <- Draining
          end)
     | Draining -> ())

let handle_write shard c =
  let n = String.length c.out - c.out_pos in
  if n > 0 then
    match Unix.write_substring c.fd c.out c.out_pos n with
    | w ->
      c.out_pos <- c.out_pos + w;
      if w > 0 then c.last_activity <- now ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> close_conn shard c

(* -- budgets and timeouts -------------------------------------------- *)

let streaming_conns shard =
  List.filter_map
    (fun c ->
      match c.phase with
      | Streaming s when not c.closed -> Some (c, s)
      | _ -> None)
    shard.conns

let shed_check shard =
  let sh = shard.sh in
  let over_sessions () =
    Atomic.get sh.metrics.Metrics.sessions_active > sh.cfg.max_sessions
  in
  let over_live () =
    match sh.cfg.global_live with
    | None -> false
    | Some b -> Atomic.get sh.metrics.Metrics.live_events > b
  in
  let rec go () =
    let reason =
      if over_sessions () then Some "max-sessions"
      else if over_live () then Some "live-budget"
      else None
    in
    match reason with
    | None -> ()
    | Some reason ->
      (* shed this shard's least-recently-active session; other shards
         do the same, so the global budget converges within a tick *)
      (match
         List.sort
           (fun (a, _) (b, _) -> Float.compare a.last_activity b.last_activity)
           (streaming_conns shard)
       with
       | [] -> ()
       | (c, s) :: _ ->
         shed_session shard c s reason;
         go ())
  in
  go ()

let timeout_check shard =
  let t = now () in
  let cfg = shard.sh.cfg in
  List.iter
    (fun c ->
      if not c.closed then
        match c.phase with
        | Streaming s ->
          if cfg.idle_timeout > 0. && t -. c.last_activity > cfg.idle_timeout then
            abort_session shard c s ~park_it:(cfg.checkpoint_dir <> None) "idle-timeout"
          else if cfg.session_timeout > 0. && t -. c.opened > cfg.session_timeout then
            abort_session shard c s ~park_it:(cfg.checkpoint_dir <> None)
              "session-timeout"
        | Hello _ ->
          if cfg.idle_timeout > 0. && t -. c.last_activity > cfg.idle_timeout then
            close_conn shard c
        | Draining ->
          (* a peer that never reads its response must not pin the fd *)
          let cap = if cfg.idle_timeout > 0. then cfg.idle_timeout else 30. in
          if t -. c.last_activity > cap then close_conn shard c)
    shard.conns

(* -- shard main loop ------------------------------------------------- *)

let accept_loop shard =
  let rec go () =
    match Unix.accept ~cloexec:true shard.listen_fd with
    | fd, _ ->
      Unix.set_nonblock fd;
      let t = now () in
      shard.conns <-
        { fd; opened = t; last_activity = t; phase = Hello (Buffer.create 64);
          out = ""; out_pos = 0; closed = false }
        :: shard.conns;
      go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let shutdown_shard shard =
  List.iter
    (fun c ->
      if not c.closed then begin
        (match c.phase with
         | Streaming s ->
           if shard.sh.cfg.checkpoint_dir <> None then begin
             park shard s;
             (* parked, not aborted: the client resumes after restart *)
             let sh = shard.sh in
             Atomic.decr sh.metrics.Metrics.sessions_active;
             ignore (Atomic.fetch_and_add sh.metrics.Metrics.live_events (-s.last_live));
             locked sh (fun () ->
                 Hashtbl.remove sh.active s.id;
                 Hashtbl.remove sh.rows s.id);
             c.phase <- Draining
           end
           else abort_session shard c s ~park_it:false "shutdown"
         | _ -> ());
        flush_best_effort c;
        close_conn shard c
      end)
    shard.conns;
  shard.conns <- []

let shard_loop sh index listen_fd =
  let shard = { sh; index; listen_fd; conns = [] } in
  let rec loop () =
    if Atomic.get sh.stop then shutdown_shard shard
    else begin
      shed_check shard;
      timeout_check shard;
      shard.conns <- List.filter (fun c -> not c.closed) shard.conns;
      let want_read c =
        match c.phase with Hello _ | Streaming _ -> not c.closed | Draining -> false
      in
      let rds =
        listen_fd :: List.filter_map (fun c -> if want_read c then Some c.fd else None) shard.conns
      in
      let wrs =
        List.filter_map
          (fun c ->
            if (not c.closed) && c.out_pos < String.length c.out then Some c.fd
            else None)
          shard.conns
      in
      let r, w =
        match Unix.select rds wrs [] 0.2 with
        | r, w, _ -> (r, w)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
      in
      if List.memq listen_fd r then accept_loop shard;
      List.iter
        (fun c ->
          if (not c.closed) && List.memq c.fd r then
            (try handle_read shard c
             with e ->
               (* fault isolation: an unexpected exception kills this
                  session, never the shard *)
               sh.cfg.log
                 (Printf.sprintf "shard %d: session handler raised %s" index
                    (Printexc.to_string e));
               Atomic.incr sh.metrics.Metrics.errors;
               close_conn shard c))
        shard.conns;
      List.iter
        (fun c -> if (not c.closed) && List.memq c.fd w then handle_write shard c)
        shard.conns;
      (* drained responses: close once everything is written *)
      List.iter
        (fun c ->
          match c.phase with
          | Draining when (not c.closed) && c.out_pos >= String.length c.out ->
            close_conn shard c
          | _ -> ())
        shard.conns;
      loop ()
    end
  in
  loop ()

(* -- startup --------------------------------------------------------- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let bind_listener cfg =
  match cfg.addr with
  | Unix_sock path ->
    if String.length path > 100 then
      Error (Printf.sprintf "%s: unix socket path too long (%d > 100 bytes)" path
               (String.length path))
    else begin
      (match Unix.stat path with
       | { Unix.st_kind = Unix.S_SOCK; _ } -> (try Unix.unlink path with Unix.Unix_error _ -> ())
       | _ -> ()
       | exception Unix.Unix_error _ -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX path);
         Unix.listen fd 128;
         Unix.set_nonblock fd;
         Ok (fd, Printf.sprintf "unix:%s" path)
       with Unix.Unix_error (e, _, _) ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         Error (Printf.sprintf "%s: %s" path (Unix.error_message e)))
    end
  | Tcp (host, port) ->
    let inet =
      if host = "" then Ok Unix.inet_addr_loopback
      else
        match Unix.inet_addr_of_string host with
        | a -> Ok a
        | exception Failure _ ->
          (match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
           | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> Ok a
           | _ -> Error (Printf.sprintf "cannot resolve host %S" host))
    in
    (match inet with
     | Error _ as e -> e
     | Ok inet ->
       let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try
          Unix.setsockopt fd Unix.SO_REUSEADDR true;
          Unix.bind fd (Unix.ADDR_INET (inet, port));
          Unix.listen fd 128;
          Unix.set_nonblock fd;
          let bound =
            match Unix.getsockname fd with
            | Unix.ADDR_INET (a, p) ->
              Printf.sprintf "tcp:%s:%d" (Unix.string_of_inet_addr a) p
            | _ -> Printf.sprintf "tcp:%s:%d" host port
          in
          Ok (fd, bound)
        with Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "tcp %s:%d: %s" (if host = "" then "127.0.0.1" else host)
               port (Unix.error_message e))))

let scan_checkpoints sh dir =
  match Sys.readdir dir with
  | exception Sys_error msg -> Error msg
  | files ->
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".ckpt" then begin
          let id = Filename.chop_suffix f ".ckpt" in
          if Protocol.valid_session_id id then begin
            Hashtbl.replace sh.parked id (Filename.concat dir f);
            sh.cfg.log (Printf.sprintf "resume: parked session %s" id)
          end
        end)
      files;
    Ok ()

let run ?stop cfg =
  if cfg.shards < 1 then Error "serve: shards must be >= 1"
  else if cfg.max_sessions < 1 then Error "serve: max-sessions must be >= 1"
  else begin
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let stop = match stop with Some s -> s | None -> Atomic.make false in
    let sh =
      {
        cfg;
        metrics = Metrics.create ();
        stop;
        mu = Mutex.create ();
        active = Hashtbl.create 64;
        parked = Hashtbl.create 64;
        rows = Hashtbl.create 64;
      }
    in
    let setup =
      match cfg.checkpoint_dir with
      | None -> Ok ()
      | Some dir ->
        (match mkdir_p dir with
         | () -> if cfg.resume then scan_checkpoints sh dir else Ok ()
         | exception Unix.Unix_error (e, _, _) ->
           Error (Printf.sprintf "%s: %s" dir (Unix.error_message e)))
    in
    match setup with
    | Error _ as e -> e
    | Ok () ->
      (match bind_listener cfg with
       | Error _ as e -> e
       | Ok (listen_fd, bound) ->
         cfg.log (Printf.sprintf "listening on %s (%d shard(s))" bound cfg.shards);
         cfg.ready bound;
         let doms =
           Array.init (cfg.shards - 1) (fun i ->
               Domain.spawn (fun () -> shard_loop sh (i + 1) listen_fd))
         in
         shard_loop sh 0 listen_fd;
         Array.iter Domain.join doms;
         (try Unix.close listen_fd with Unix.Unix_error _ -> ());
         (match cfg.addr with
          | Unix_sock path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
          | Tcp _ -> ());
         cfg.log "stopped";
         Ok ())
  end
