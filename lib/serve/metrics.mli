(** Shared counters of the serve daemon, readable over the wire.

    All fields are {!Atomic} so shard domains update them without a
    lock; the rendered snapshot is therefore approximate across
    counters (each one is exact).  [render] produces the plaintext
    [name value] lines the harnesses and operators consume. *)

type t = {
  started : float;                  (** daemon start, epoch seconds *)
  sessions_active : int Atomic.t;   (** connections in the streaming phase *)
  sessions_total : int Atomic.t;    (** sessions ever opened *)
  sessions_resumed : int Atomic.t;  (** sessions adopted from a checkpoint *)
  completed : int Atomic.t;         (** sessions that got a verdict line *)
  race_free : int Atomic.t;
  racy : int Atomic.t;
  degraded : int Atomic.t;
  shed : int Atomic.t;
  aborted : int Atomic.t;
  errors : int Atomic.t;
  events_total : int Atomic.t;      (** events pushed into engines, ever *)
  live_events : int Atomic.t;       (** resident payloads across sessions *)
  bytes_in : int Atomic.t;
  checkpoints : int Atomic.t;       (** checkpoint files written *)
  ckpt_lag_hwm : int Atomic.t;      (** max events-past-last-checkpoint seen *)
}

val create : unit -> t

val max_hwm : int Atomic.t -> int -> unit
(** Raise a high-water-mark atomic to at least the given value. *)

val render : t -> extra:string list -> string
(** The plaintext snapshot: one [serve_<name> <value>] line per counter,
    an aggregate [serve_events_per_sec] derived from uptime, then the
    caller's [extra] lines (per-session rows) verbatim. *)
