(** Blocking client for the [racedet serve] daemon — used by the
    [racedet client] CLI, the load generator, and the chaos harness. *)

type outcome = {
  cls : Protocol.outcome_class;
  events : int option;       (** events analyzed, for analyzed classes *)
  reason : string option;    (** shed/aborted/error reason token *)
  report : string;           (** report body, byte-identical to analyze *)
  resumed_from : int;        (** byte offset the server asked us to resend from *)
}

val connect :
  ?attempts:int -> ?delay:float -> Server.addr -> (Unix.file_descr, string) result
(** Connect, retrying [attempts] times (default 1) every [delay] seconds
    (default 0.1) — the retry loop lets callers race a daemon that is
    still binding its socket. *)

val session :
  ?chunk:int ->
  ?delay:float ->
  ?abort_after:int ->
  Server.addr ->
  id:string ->
  trace:string ->
  (outcome, string) result
(** Open session [id], stream [trace] (resending from the server's
    resume offset when it is non-zero) in [chunk]-byte writes (default
    65536) sleeping [delay] seconds between chunks (default 0), then
    half-close and read the verdict.  [abort_after n] drops the
    connection after [n] bytes without half-closing — a simulated client
    crash — and returns [Error "aborted"]. *)

val raw_open : Server.addr -> id:string -> (Unix.file_descr * int, string) result
(** Open a session and return the raw socket plus the server's resume
    offset, without streaming anything — the chaos harness uses this to
    hold half-fed sessions open, trickle bytes, or drop the connection
    at a precise byte.  Close the fd with {!Unix.close}. *)

val raw_send : Unix.file_descr -> string -> (unit, string) result
(** Write all given bytes to a {!raw_open} socket. *)

val metrics : Server.addr -> (string, string) result
(** Fetch the plaintext metrics snapshot. *)

val metric_value : string -> string -> int option
(** [metric_value snapshot name] extracts [serve_<name> <int>]. *)

val session_row : string -> string -> (string * int) list option
(** [session_row snapshot id]: the per-session row as key/value pairs
    ([shard], [events], [live], [consumed], [ckpt_events],
    [ckpt_consumed]) — [None] if the session has no row; a parked
    session yields [[("parked", 1)]]. *)

val stop : Server.addr -> (unit, string) result
(** Ask the daemon to shut down gracefully. *)
