(** The [racedet serve] daemon: many concurrent trace-analysis sessions,
    sharded over a small pool of OCaml 5 domains.

    Each connection speaks {!Protocol} and owns one tolerant
    {!Racedetect.Stream} engine fed through a {!Tracing.Codec.Salvage}
    decoder, so every fault our pipeline models — corrupt frames, torn
    lines, a writer that dies mid-stream — degrades {e that session's}
    verdict through the existing salvage path and never takes the server
    down.  Robustness mechanisms, all per the failure model in DESIGN
    §10:

    - {b fault isolation}: decode damage and engine errors are confined
      to their session ([Degraded]/[error] outcomes); an unexpected
      exception in a session handler closes that session only.
    - {b load shedding}: beyond [max_sessions] streaming sessions, or a
      [global_live] resident-event budget, the least-recently-active
      session is shed with an explicit [verdict shed] (checkpointed to
      disk first when checkpointing is on, so the client can resume).
    - {b timeouts}: [idle_timeout] catches silent peers,
      [session_timeout] bounds total session wall clock (slowloris),
      [finish_timeout] runs the final analysis under a
      {!Engine.Parbatch.run_timeout} budget so a wedged analysis cannot
      stall its shard.
    - {b crash safety}: with [checkpoint_dir] set, sessions are
      checkpointed at v2 epoch marks (at least every [checkpoint_every]
      events); after a SIGKILL, a restart with [resume = true] re-adopts
      every on-disk session and the reconnecting client is told the
      byte offset to resend from — final verdicts are byte-identical to
      an uninterrupted run. *)

type addr =
  | Unix_sock of string        (** path of a Unix-domain socket *)
  | Tcp of string * int        (** host (empty = loopback), port (0 = ephemeral) *)

val pp_addr : Format.formatter -> addr -> unit
val parse_addr : string -> (addr, string) result
(** [unix:PATH], [tcp:HOST:PORT], [tcp:PORT], or a bare path (unix). *)

type config = {
  addr : addr;
  shards : int;                  (** worker domains (>= 1) *)
  max_sessions : int;            (** streaming-session budget before shedding *)
  global_live : int option;      (** global resident-event budget *)
  session_max_live : int option; (** per-session [Stream.create ?max_live] *)
  idle_timeout : float;          (** seconds without bytes; <= 0 disables *)
  session_timeout : float;       (** total session wall clock; <= 0 disables *)
  finish_timeout : float;        (** analysis budget; <= 0 runs inline *)
  checkpoint_dir : string option;
  checkpoint_every : int;        (** min events between checkpoints *)
  resume : bool;                 (** adopt checkpoints already in the dir *)
  log : string -> unit;          (** one line per noteworthy server event *)
  ready : string -> unit;        (** called once, with the bound address *)
}

val default_config : addr -> config
(** [shards = 2], [max_sessions = 64], no live budgets, 30 s idle
    timeout, no session timeout, 30 s finish timeout, no checkpointing,
    [checkpoint_every = 64], silent [log]/[ready]. *)

val run : ?stop:bool Atomic.t -> config -> (unit, string) result
(** Bind, optionally adopt checkpointed sessions, serve until [stop]
    flips (or a {!Protocol.Stop} hello arrives), then shut down
    gracefully: in-flight sessions are checkpointed and parked when
    checkpointing is on (their files stay for [resume]), otherwise
    aborted with reason [shutdown].  Returns [Error] only for startup
    failures (bad address, bind, unreadable checkpoint dir).  The caller
    is responsible for SIGTERM/SIGINT wiring; SIGPIPE is ignored
    process-wide on entry. *)
