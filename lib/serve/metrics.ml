type t = {
  started : float;
  sessions_active : int Atomic.t;
  sessions_total : int Atomic.t;
  sessions_resumed : int Atomic.t;
  completed : int Atomic.t;
  race_free : int Atomic.t;
  racy : int Atomic.t;
  degraded : int Atomic.t;
  shed : int Atomic.t;
  aborted : int Atomic.t;
  errors : int Atomic.t;
  events_total : int Atomic.t;
  live_events : int Atomic.t;
  bytes_in : int Atomic.t;
  checkpoints : int Atomic.t;
  ckpt_lag_hwm : int Atomic.t;
}

let create () =
  {
    started = Unix.gettimeofday ();
    sessions_active = Atomic.make 0;
    sessions_total = Atomic.make 0;
    sessions_resumed = Atomic.make 0;
    completed = Atomic.make 0;
    race_free = Atomic.make 0;
    racy = Atomic.make 0;
    degraded = Atomic.make 0;
    shed = Atomic.make 0;
    aborted = Atomic.make 0;
    errors = Atomic.make 0;
    events_total = Atomic.make 0;
    live_events = Atomic.make 0;
    bytes_in = Atomic.make 0;
    checkpoints = Atomic.make 0;
    ckpt_lag_hwm = Atomic.make 0;
  }

let rec max_hwm a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then max_hwm a v

let render t ~extra =
  let b = Buffer.create 512 in
  let line name v = Buffer.add_string b (Printf.sprintf "serve_%s %d\n" name v) in
  let uptime = Unix.gettimeofday () -. t.started in
  line "sessions_active" (Atomic.get t.sessions_active);
  line "sessions_total" (Atomic.get t.sessions_total);
  line "sessions_resumed" (Atomic.get t.sessions_resumed);
  line "completed" (Atomic.get t.completed);
  line "race_free" (Atomic.get t.race_free);
  line "races" (Atomic.get t.racy);
  line "degraded" (Atomic.get t.degraded);
  line "shed" (Atomic.get t.shed);
  line "aborted" (Atomic.get t.aborted);
  line "errors" (Atomic.get t.errors);
  line "events_total" (Atomic.get t.events_total);
  line "live_events" (Atomic.get t.live_events);
  line "bytes_in" (Atomic.get t.bytes_in);
  line "checkpoints" (Atomic.get t.checkpoints);
  line "checkpoint_lag_hwm" (Atomic.get t.ckpt_lag_hwm);
  Buffer.add_string b
    (Printf.sprintf "serve_uptime_sec %.3f\n" (Float.max 0. uptime));
  Buffer.add_string b
    (Printf.sprintf "serve_events_per_sec %.1f\n"
       (if uptime > 0. then float_of_int (Atomic.get t.events_total) /. uptime
        else 0.));
  List.iter (fun l -> Buffer.add_string b l; Buffer.add_char b '\n') extra;
  Buffer.contents b
