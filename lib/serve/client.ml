type outcome = {
  cls : Protocol.outcome_class;
  events : int option;
  reason : string option;
  report : string;
  resumed_from : int;
}

let sockaddr_of = function
  | Server.Unix_sock path -> Ok (Unix.ADDR_UNIX path)
  | Server.Tcp (host, port) ->
    if host = "" then Ok (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
    else
      (match Unix.inet_addr_of_string host with
       | a -> Ok (Unix.ADDR_INET (a, port))
       | exception Failure _ ->
         (match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ ->
            Ok (Unix.ADDR_INET (a, port))
          | _ -> Error (Printf.sprintf "cannot resolve host %S" host)))

let connect ?(attempts = 1) ?(delay = 0.1) addr =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match sockaddr_of addr with
  | Error _ as e -> e
  | Ok sa ->
    let domain = match sa with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET in
    let rec go n =
      let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
      match Unix.connect fd sa with
      | () -> Ok fd
      | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if n > 1 then begin
          Unix.sleepf delay;
          go (n - 1)
        end
        else
          Error
            (Format.asprintf "connect %a: %s" Server.pp_addr addr
               (Unix.error_message e))
    in
    go (max 1 attempts)

let write_all fd s pos len =
  let rec go pos len =
    if len = 0 then Ok ()
    else
      match Unix.write_substring fd s pos len with
      | 0 -> Error "connection closed while writing"
      | n -> go (pos + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos len
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  go pos len

let read_all fd =
  let buf = Bytes.create 65536 in
  let b = Buffer.create 1024 in
  let rec go () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> Ok (Buffer.contents b)
    | n ->
      Buffer.add_subbytes b buf 0 n;
      go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  go ()

let read_line fd =
  let b = Buffer.create 64 in
  let one = Bytes.create 1 in
  let rec go () =
    match Unix.read fd one 0 1 with
    | 0 -> if Buffer.length b = 0 then Error "connection closed" else Ok (Buffer.contents b)
    | _ ->
      if Bytes.get one 0 = '\n' then Ok (Buffer.contents b)
      else begin
        Buffer.add_char b (Bytes.get one 0);
        if Buffer.length b > 4096 then Error "oversized reply line" else go ()
      end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  go ()

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

let finally fd f =
  Fun.protect ~finally:(fun () -> close_noerr fd) f

(* The response tail: "verdict ...\nreport <len>\n<len bytes>". *)
let read_response fd =
  match read_line fd with
  | Error _ as e -> e
  | Ok vline ->
    if String.length vline >= 4 && String.sub vline 0 4 = "err " then
      Error (String.sub vline 4 (String.length vline - 4))
    else
      (match Protocol.parse_verdict_line vline with
       | Error _ as e -> e
       | Ok (cls, events, reason) ->
         (match read_line fd with
          | Error _ as e -> e
          | Ok rline ->
            (match String.split_on_char ' ' rline with
             | [ "report"; n ] ->
               (match int_of_string_opt n with
                | None -> Error ("bad report header: " ^ rline)
                | Some want ->
                  (match read_all fd with
                   | Error _ as e -> e
                   | Ok body ->
                     if String.length body < want then
                       Error
                         (Printf.sprintf "report truncated (%d of %d bytes)"
                            (String.length body) want)
                     else Ok (cls, events, reason, String.sub body 0 want)))
             | _ -> Error ("bad report header: " ^ rline))))

let hello fd h =
  let line = Protocol.hello_line h ^ "\n" in
  write_all fd line 0 (String.length line)

let session ?(chunk = 65536) ?(delay = 0.) ?abort_after addr ~id ~trace =
  match connect addr with
  | Error msg -> Error msg
  | Ok fd ->
    finally fd (fun () ->
        match hello fd (Protocol.Session id) with
        | Error _ as e -> e
        | Ok () ->
          (match read_line fd with
           | Error _ as e -> e
           | Ok ack ->
             (match String.split_on_char ' ' ack with
              | [ "ok"; off ] ->
                (match int_of_string_opt off with
                 | None -> Error ("bad ack: " ^ ack)
                 | Some resumed_from ->
                   if resumed_from > String.length trace then
                     Error
                       (Printf.sprintf
                          "server resume offset %d exceeds trace length %d"
                          resumed_from (String.length trace))
                   else begin
                     let budget =
                       match abort_after with Some n -> n | None -> max_int
                     in
                     let pos = ref resumed_from in
                     let sent = ref 0 in
                     let err = ref None in
                     let aborted = ref false in
                     while
                       !err = None && (not !aborted) && !pos < String.length trace
                     do
                       let n = min chunk (String.length trace - !pos) in
                       let n = min n (budget - !sent) in
                       if n <= 0 then aborted := true
                       else begin
                         (match write_all fd trace !pos n with
                          | Ok () ->
                            pos := !pos + n;
                            sent := !sent + n;
                            if delay > 0. then Unix.sleepf delay
                          | Error e -> err := Some e)
                       end
                     done;
                     match !err with
                     | Some e -> Error e
                     | None ->
                       if !aborted then Error "aborted"
                       else begin
                         (* half-close: our trace is fully sent *)
                         (try Unix.shutdown fd Unix.SHUTDOWN_SEND
                          with Unix.Unix_error _ -> ());
                         match read_response fd with
                         | Error _ as e -> e
                         | Ok (cls, events, reason, report) ->
                           Ok { cls; events; reason; report; resumed_from }
                       end
                   end)
              | "err" :: rest -> Error (String.concat " " rest)
              | _ -> Error ("bad ack: " ^ ack))))

let raw_open addr ~id =
  match connect addr with
  | Error msg -> Error msg
  | Ok fd ->
    (match hello fd (Protocol.Session id) with
     | Error e ->
       close_noerr fd;
       Error e
     | Ok () ->
       (match read_line fd with
        | Error e ->
          close_noerr fd;
          Error e
        | Ok ack ->
          (match String.split_on_char ' ' ack with
           | [ "ok"; off ] ->
             (match int_of_string_opt off with
              | Some n -> Ok (fd, n)
              | None ->
                close_noerr fd;
                Error ("bad ack: " ^ ack))
           | "err" :: rest ->
             close_noerr fd;
             Error (String.concat " " rest)
           | _ ->
             close_noerr fd;
             Error ("bad ack: " ^ ack))))

let raw_send fd s = write_all fd s 0 (String.length s)

let metrics addr =
  match connect addr with
  | Error msg -> Error msg
  | Ok fd ->
    finally fd (fun () ->
        match hello fd Protocol.Metrics with
        | Error _ as e -> e
        | Ok () -> read_all fd)

let stop addr =
  match connect addr with
  | Error msg -> Error msg
  | Ok fd ->
    finally fd (fun () ->
        match hello fd Protocol.Stop with
        | Error _ as e -> e
        | Ok () ->
          (match read_line fd with
           | Ok "ok stopping" -> Ok ()
           | Ok other -> Error ("unexpected reply: " ^ other)
           | Error _ as e -> e))

let metric_value snapshot name =
  let prefix = "serve_" ^ name ^ " " in
  String.split_on_char '\n' snapshot
  |> List.find_map (fun l ->
         if String.length l > String.length prefix
            && String.sub l 0 (String.length prefix) = prefix
         then
           int_of_string_opt
             (String.sub l (String.length prefix)
                (String.length l - String.length prefix))
         else None)

let session_row snapshot id =
  let prefix = "session " ^ id ^ " " in
  String.split_on_char '\n' snapshot
  |> List.find_map (fun l ->
         if String.length l > String.length prefix
            && String.sub l 0 (String.length prefix) = prefix
         then
           Some (String.sub l (String.length prefix) (String.length l - String.length prefix))
         else None)
  |> Option.map (fun rest ->
         match String.split_on_char ' ' rest with
         | [ "state"; "parked" ] -> [ ("parked", 1) ]
         | toks ->
           let rec pairs = function
             | k :: v :: tl ->
               (match int_of_string_opt v with
                | Some n -> (k, n) :: pairs tl
                | None -> pairs tl)
             | _ -> []
           in
           pairs toks)
