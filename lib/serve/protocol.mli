(** Wire protocol of the [racedet serve] daemon.

    Everything on the wire is line-oriented plain text except the trace
    bytes themselves, which are the unmodified v1/v2 codec stream.  A
    connection opens with one {e hello} line, gets one {e ack} line
    back, then (for sessions) the client streams trace bytes and
    half-closes its writing side; the server answers with one
    {e verdict} line, a [report <len>] line, [len] bytes of report text
    (byte-identical to [racedet analyze --salvage] on the same input),
    and closes.

    {v
    client:  weakrace-serve 1 session build-42\n
    server:  ok 0\n
    client:  <trace bytes ...> (shutdown write)
    server:  verdict races 2 events 400\n
             report 1234\n
             <1234 bytes>
    v}

    For a resumed session the ack carries the byte offset already
    consumed at the last checkpoint; the client must resend the trace
    from that offset. *)

val version : int
(** Protocol version spoken by this build (in the hello line). *)

type hello =
  | Session of string  (** open (or resume) the named analysis session *)
  | Metrics            (** dump the plaintext metrics snapshot and close *)
  | Stop               (** ask the daemon to shut down gracefully *)

val valid_session_id : string -> bool
(** 1–64 chars drawn from [A-Za-z0-9._-] — safe as a checkpoint file
    name and unambiguous on the wire. *)

val hello_line : hello -> string
val parse_hello : string -> (hello, string) result

(** How a session ended, as encoded in the verdict line.  [Analyzed]
    carries the full analysis verdict; the others are server-side
    terminations that never certify anything. *)
type outcome =
  | Analyzed of Racedetect.Postmortem.verdict * int  (** verdict, events *)
  | Shed of string     (** load-shedding; reason token *)
  | Aborted of string  (** timeout/shutdown; reason token *)
  | Failed of string   (** analysis or protocol error; message *)

val verdict_line : outcome -> string
(** The one-line machine-readable summary, without trailing newline:
    [verdict race-free events N] / [verdict races K events N] /
    [verdict degraded races K events N] / [verdict shed reason W] /
    [verdict aborted reason W] / [verdict error reason W]. *)

type outcome_class =
  | Race_free
  | Races of int
  | Degraded of int
  | Shed_c
  | Aborted_c
  | Error_c

val parse_verdict_line : string -> (outcome_class * int option * string option, string) result
(** Parse back what {!verdict_line} printed: class, event count (for
    analyzed classes), reason token. *)

val exit_code : outcome_class -> int
(** The [racedet client] exit-code convention, an extension of the
    analyze one: 0 race-free, 2 races, 3 degraded, 4 shed, 5 aborted,
    1 error. *)

val render_verdict_report : Racedetect.Postmortem.verdict -> string
(** Exactly the bytes [racedet analyze] prints for this verdict: the
    (possibly degraded) report and, for lossy verdicts, the loss
    summary.  Shared by the daemon and the CLI so a served session and
    a local analysis of the same trace compare byte-for-byte. *)

val outcome_report : outcome -> string
(** The report body sent after the verdict line: the rendered analysis
    for [Analyzed], a one-line explanation otherwise. *)
