type fixture = {
  f_name : string;
  f_trace : string;
  f_report : string;
  f_cls : Protocol.outcome_class;
  f_events : int;
}

(* Local reference: the exact pipeline a serve session runs — salvage
   decode into a tolerant engine — rendered with the shared renderer. *)
let reference text =
  match Racedetect.Stream.analyze_salvage_string text with
  | exception e -> Error (Printf.sprintf "salvage raised %s" (Printexc.to_string e))
  | Error _ as e -> e
  | Ok (v, st) ->
    let races a = List.length (Racedetect.Postmortem.reported_races a) in
    let cls =
      match v with
      | Racedetect.Postmortem.Race_free _ -> Protocol.Race_free
      | Racedetect.Postmortem.Races a -> Protocol.Races (races a)
      | Racedetect.Postmortem.Degraded { analysis; _ } ->
        Protocol.Degraded (races analysis)
    in
    Ok (cls, Protocol.render_verdict_report v, st.Racedetect.Stream.total_events)

let fixtures ?(seeds_per_program = 2) programs =
  if programs = [] then Error "no programs to build fixtures from"
  else begin
    let out = ref [] in
    let err = ref None in
    List.iter
      (fun (name, p) ->
        for seed = 0 to seeds_per_program - 1 do
          if !err = None then begin
            match
              Minilang.Interp.run ~max_steps:4_000 ~model:Memsim.Model.WO
                ~sched:(Memsim.Sched.adversarial ~seed ()) p
            with
            | exception e ->
              err :=
                Some
                  (Printf.sprintf "%s seed %d: simulation raised %s" name seed
                     (Printexc.to_string e))
            | e ->
              let t = Tracing.Trace.of_execution e in
              let text =
                Tracing.Codec.encode_stream
                  ~version:Tracing.Codec.version_checksummed t
              in
              (match reference text with
               | Error m ->
                 err := Some (Printf.sprintf "%s seed %d: reference failed: %s" name seed m)
               | Ok (cls, report, events) ->
                 out :=
                   {
                     f_name = Printf.sprintf "%s/%d" name seed;
                     f_trace = text;
                     f_report = report;
                     f_cls = cls;
                     f_events = events;
                   }
                   :: !out)
          end
        done)
      programs;
    match !err with
    | Some m -> Error m
    | None -> Ok (Array.of_list (List.rev !out))
  end

(* -- load generation -------------------------------------------------- *)

type load_report = {
  l_sessions : int;
  l_events : int;
  l_bytes : int;
  l_wall : float;
  l_events_per_sec : float;
  l_failures : string list;
}

let check_outcome ~what (f : fixture) (o : Client.outcome) =
  if o.Client.cls <> f.f_cls then
    Error
      (Printf.sprintf
         "%s (%s): verdict class mismatch (got exit %d, want exit %d)" what
         f.f_name
         (Protocol.exit_code o.Client.cls)
         (Protocol.exit_code f.f_cls))
  else if o.Client.report <> f.f_report then
    Error (Printf.sprintf "%s (%s): report bytes differ from reference" what f.f_name)
  else if o.Client.events <> Some f.f_events then
    Error
      (Printf.sprintf "%s (%s): event count %s, want %d" what f.f_name
         (match o.Client.events with None -> "missing" | Some n -> string_of_int n)
         f.f_events)
  else Ok ()

let load ?(concurrency = 8) ?(chunk = 65536) ~sessions ~fixtures:fx addr =
  let n = max 1 sessions in
  let t0 = Unix.gettimeofday () in
  let results =
    Engine.Parbatch.map ~jobs:(max 1 concurrency)
      (fun i ->
        let f = fx.(i mod Array.length fx) in
        match Client.session ~chunk addr ~id:(Printf.sprintf "load-%d" i) ~trace:f.f_trace with
        | Ok o ->
          (match check_outcome ~what:(Printf.sprintf "load-%d" i) f o with
           | Ok () -> Ok (f.f_events, String.length f.f_trace)
           | Error m -> Error m)
        | Error e -> Error (Printf.sprintf "load-%d (%s): %s" i f.f_name e))
      (Array.init n Fun.id)
  in
  let wall = Unix.gettimeofday () -. t0 in
  let events = ref 0 and bytes = ref 0 and failures = ref [] in
  Array.iter
    (function
      | Ok (e, b) ->
        events := !events + e;
        bytes := !bytes + b
      | Error m -> failures := m :: !failures)
    results;
  {
    l_sessions = n;
    l_events = !events;
    l_bytes = !bytes;
    l_wall = wall;
    l_events_per_sec = (if wall > 0. then float_of_int !events /. wall else 0.);
    l_failures = List.rev !failures;
  }

let pp_load ppf r =
  Format.fprintf ppf
    "loadgen: %d session(s), %d event(s), %d byte(s) in %.2fs — %.0f events/sec, %d failure(s)"
    r.l_sessions r.l_events r.l_bytes r.l_wall r.l_events_per_sec
    (List.length r.l_failures)

(* -- chaos campaign --------------------------------------------------- *)

type chaos_report = {
  c_cases : int;
  c_baseline : int;
  c_corrupt : int;
  c_corrupt_degraded : int;
  c_corrupt_refused : int;
  c_kill_conn : int;
  c_slowloris : int;
  c_dup_id : int;
  c_kill_resume : int;
  c_violations : string list;
}

let pp_chaos ppf r =
  Format.fprintf ppf
    "chaos: %d case(s) — baseline %d, corrupt %d (%d degraded, %d refused), \
     kill-conn %d, slowloris %d, dup-id %d, kill-resume %d, %d invariant violation(s)"
    r.c_cases r.c_baseline r.c_corrupt r.c_corrupt_degraded r.c_corrupt_refused
    r.c_kill_conn r.c_slowloris r.c_dup_id r.c_kill_resume
    (List.length r.c_violations)

let chaos_exit_code r = if r.c_violations = [] then 0 else 1

type daemon = { d_pid : int; d_addr : Server.addr; d_log : string }

let fresh_dir prefix =
  let base = Filename.get_temp_dir_name () in
  let rec go i =
    let d = Filename.concat base (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) i) in
    match Unix.mkdir d 0o700 with
    | () -> d
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (i + 1)
  in
  go 0

let start_daemon ~exe ~sock ~logf args =
  let fd = Unix.openfile logf [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  let argv = Array.of_list ((exe :: [ "serve"; "--listen"; "unix:" ^ sock ]) @ args) in
  let pid = Unix.create_process exe argv Unix.stdin fd fd in
  Unix.close fd;
  let addr = Server.Unix_sock sock in
  match Client.connect ~attempts:100 ~delay:0.05 addr with
  | Ok fd ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Ok { d_pid = pid; d_addr = addr; d_log = logf }
  | Error e ->
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "daemon did not come up: %s" e)

let wait_daemon d = try ignore (Unix.waitpid [] d.d_pid) with Unix.Unix_error _ -> ()

let sigkill_daemon d =
  (try Unix.kill d.d_pid Sys.sigkill with Unix.Unix_error _ -> ());
  wait_daemon d

let stop_daemon d =
  match Client.stop d.d_addr with
  | Ok () ->
    wait_daemon d;
    Ok ()
  | Error e ->
    sigkill_daemon d;
    Error e

(* Byte offsets just past each v2 epoch-mark line. *)
let mark_offsets text =
  let res = ref [] in
  let pos = ref 0 in
  List.iter
    (fun line ->
      let next = !pos + String.length line + 1 in
      if String.length line >= 5 && String.sub line 0 5 = "mark " then
        res := next :: !res;
      pos := next)
    (String.split_on_char '\n' text);
  List.rev !res

let poll ?(attempts = 50) ?(delay = 0.1) f =
  let rec go n = if f () then true else if n <= 1 then false else (Unix.sleepf delay; go (n - 1)) in
  go attempts

let copy_file src dst =
  try
    let data = In_channel.with_open_bin src In_channel.input_all in
    Out_channel.with_open_bin dst (fun oc -> Out_channel.output_string oc data)
  with Sys_error _ -> ()

let write_file path data =
  try Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data)
  with Sys_error _ -> ()

let chaos ~exe ?(seeds = 5) ?(log_dir = None) ?(log = ignore) ~fixtures:fx () =
  if Array.length fx = 0 then Error "chaos: no fixtures"
  else begin
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let tmp = fresh_dir "racedet-chaos" in
    let violations = ref [] in
    let artifacts = ref [] in
    let violate f fmt =
      Printf.ksprintf
        (fun m ->
          violations := m :: !violations;
          (match f with
           | Some (fix : fixture) -> artifacts := (fix.f_name, fix.f_trace) :: !artifacts
           | None -> ());
          log ("violation: " ^ m))
        fmt
    in
    let cases = ref 0 in
    let baseline = ref 0 and corrupt = ref 0 and corrupt_degraded = ref 0 in
    let corrupt_refused = ref 0 and kill_conn = ref 0 and slowloris = ref 0 in
    let dup_id = ref 0 and kill_resume = ref 0 in
    let logs = ref [] in
    let daemon name args =
      let sock = Filename.concat tmp (name ^ ".sock") in
      let logf = Filename.concat tmp (name ^ ".log") in
      logs := logf :: !logs;
      start_daemon ~exe ~sock ~logf args
    in
    let result =
      match
        daemon "main"
          [ "--shards"; "2"; "--max-sessions"; "64"; "--idle-timeout"; "30";
            "--checkpoint-dir"; Filename.concat tmp "main-ckpt";
            "--checkpoint-every"; "16" ]
      with
      | Error _ as e -> e
      | Ok d ->
        (* --- baseline / interleave: everything concurrent, byte-exact --- *)
        log "chaos: baseline interleave";
        let res =
          Engine.Parbatch.map ~jobs:4
            (fun i ->
              let f = fx.(i) in
              Client.session d.d_addr ~id:(Printf.sprintf "base-%d" i)
                ~trace:f.f_trace)
            (Array.init (Array.length fx) Fun.id)
        in
        Array.iteri
          (fun i r ->
            incr cases;
            incr baseline;
            let f = fx.(i) in
            match r with
            | Error e -> violate (Some f) "baseline %s: %s" f.f_name e
            | Ok o ->
              (match check_outcome ~what:"baseline" f o with
               | Ok () -> ()
               | Error m -> violate (Some f) "%s" m))
          res;
        (* --- corrupt frames: server must equal the local salvage --- *)
        log "chaos: corrupt frames";
        let corrupt_cases =
          Array.of_list
            (List.concat_map
               (fun seed ->
                 Array.to_list fx
                 |> List.mapi (fun i f ->
                        let open Tracing.Corrupt in
                        let kind =
                          match (seed + i) mod 4 with
                          | 0 -> Flip_bits (1 + (seed mod 5))
                          | 1 -> Garble_bytes (1 + (seed mod 7))
                          | 2 -> Drop_lines (1 + (seed mod 3))
                          | _ -> Truncate_tail (1 + (seed * 13 mod 160))
                        in
                        (seed, f, Tracing.Corrupt.apply ~seed kind f.f_trace)))
               (List.init seeds Fun.id))
        in
        let cres =
          Engine.Parbatch.map ~jobs:4
            (fun (seed, (f : fixture), damaged) ->
              ( seed, f, damaged,
                reference damaged,
                Client.session d.d_addr
                  ~id:(Printf.sprintf "corrupt-%d-%s" seed
                         (String.map (fun c -> if c = '/' then '.' else c) f.f_name))
                  ~trace:damaged ))
            corrupt_cases
        in
        Array.iter
          (fun (seed, f, damaged, local, served) ->
            incr cases;
            incr corrupt;
            let name = Printf.sprintf "corrupt seed %d %s" seed f.f_name in
            match (local, served) with
            | Ok (cls, report, _events), Ok o ->
              (match cls with
               | Protocol.Degraded _ -> incr corrupt_degraded
               | _ -> ());
              if o.Client.cls <> cls then begin
                violate (Some f) "%s: class differs from local salvage" name;
                artifacts := (f.f_name ^ ".damaged", damaged) :: !artifacts
              end
              else if o.Client.report <> report then begin
                violate (Some f) "%s: report differs from local salvage" name;
                artifacts := (f.f_name ^ ".damaged", damaged) :: !artifacts
              end
              else if
                (match cls with Protocol.Race_free -> false | _ -> true)
                && o.Client.cls = Protocol.Race_free
              then violate (Some f) "%s: lossy session certified race-free" name
            | Error _, Ok o ->
              incr corrupt_refused;
              if o.Client.cls <> Protocol.Error_c then
                violate (Some f)
                  "%s: local salvage refused but the server said %d" name
                  (Protocol.exit_code o.Client.cls)
            | Error _, Error _ -> incr corrupt_refused
            | Ok _, Error e ->
              violate (Some f) "%s: server failed a case local salvage handles: %s"
                name e)
          cres;
        (match Client.metrics d.d_addr with
         | Ok _ -> ()
         | Error e -> violate None "server dead after corrupt sweep: %s" e);
        (* --- connection kills mid-stream --- *)
        log "chaos: connection kills";
        for seed = 0 to seeds - 1 do
          incr cases;
          incr kill_conn;
          let f = fx.(seed mod Array.length fx) in
          let cut = 1 + (seed * 37) mod (max 2 (String.length f.f_trace - 1)) in
          (match
             Client.session d.d_addr ~abort_after:cut
               ~id:(Printf.sprintf "killconn-%d" seed) ~trace:f.f_trace
           with
           | Error _ -> ()
           | Ok _ -> violate (Some f) "kill-conn %d: aborted client got a verdict" seed);
          (* the server must survive and still verify fresh sessions *)
          match
            Client.session d.d_addr ~id:(Printf.sprintf "postkill-%d" seed)
              ~trace:f.f_trace
          with
          | Error e -> violate (Some f) "kill-conn %d: server unusable after kill: %s" seed e
          | Ok o ->
            (match check_outcome ~what:(Printf.sprintf "post-kill-%d" seed) f o with
             | Ok () -> ()
             | Error m -> violate (Some f) "%s" m)
        done;
        (* --- duplicate session ids --- *)
        log "chaos: duplicate session ids";
        incr cases;
        incr dup_id;
        let fdup = fx.(0) in
        (match Client.raw_open d.d_addr ~id:"dup-0" with
         | Error e -> violate (Some fdup) "dup-id: open failed: %s" e
         | Ok (fd, _off) ->
           let half = String.length fdup.f_trace / 2 in
           (match Client.raw_send fd (String.sub fdup.f_trace 0 half) with
            | Error e ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              violate (Some fdup) "dup-id: send failed: %s" e
            | Ok () ->
              (* second claimant must be refused while the first holds the id *)
              (match
                 Client.session d.d_addr ~id:"dup-0" ~trace:fdup.f_trace
               with
               | Error e
                 when String.length e >= 9 && String.sub e 0 9 = "duplicate" ->
                 ()
               | Error e -> violate (Some fdup) "dup-id: unexpected refusal: %s" e
               | Ok _ -> violate (Some fdup) "dup-id: second claimant was accepted");
              (try Unix.close fd with Unix.Unix_error _ -> ());
              (* once released, the id must be reusable with no leaked state *)
              (match
                 poll ~attempts:50 ~delay:0.1 (fun () ->
                     match
                       Client.session d.d_addr ~id:"dup-0" ~trace:fdup.f_trace
                     with
                     | Ok o -> check_outcome ~what:"dup-id reuse" fdup o = Ok ()
                     | Error _ -> false)
               with
               | true -> ()
               | false ->
                 violate (Some fdup)
                   "dup-id: id not reusable with an exact verdict after release")))
        ;
        (* --- slowloris against a tight-deadline daemon --- *)
        log "chaos: slowloris";
        incr cases;
        incr slowloris;
        (match
           daemon "slow"
             [ "--shards"; "1"; "--session-timeout"; "1"; "--idle-timeout"; "5" ]
         with
         | Error e -> violate None "slowloris daemon: %s" e
         | Ok ds ->
           let f = fx.(Array.length fx - 1) in
           (match Client.raw_open ds.d_addr ~id:"slow-0" with
            | Error e -> violate (Some f) "slowloris open: %s" e
            | Ok (fd, _) ->
              let stopd = ref false in
              let pos = ref 0 in
              let t0 = Unix.gettimeofday () in
              while (not !stopd) && Unix.gettimeofday () -. t0 < 4. do
                let n = min 16 (String.length f.f_trace - !pos) in
                if n <= 0 then stopd := true
                else
                  match Client.raw_send fd (String.sub f.f_trace !pos n) with
                  | Ok () ->
                    pos := !pos + n;
                    Unix.sleepf 0.1
                  | Error _ -> stopd := true
              done;
              (try Unix.close fd with Unix.Unix_error _ -> ());
              (match Client.metrics ds.d_addr with
               | Error e -> violate None "slowloris: daemon dead: %s" e
               | Ok snap ->
                 let aborted =
                   Option.value ~default:0 (Client.metric_value snap "aborted")
                 in
                 let rf =
                   Option.value ~default:0 (Client.metric_value snap "race_free")
                 in
                 if aborted < 1 then
                   violate (Some f)
                     "slowloris: trickle session was not aborted (aborted=%d)"
                     aborted;
                 if rf > 0 then
                   violate (Some f) "slowloris: a trickled session was certified race-free");
              (match stop_daemon ds with
               | Ok () -> ()
               | Error e ->
                 violate None "slowloris: graceful stop failed: %s" e)));
        (* --- SIGKILL the daemon, restart with --resume --- *)
        log "chaos: SIGKILL + resume";
        let resumable =
          Array.to_list fx
          |> List.filter (fun f ->
                 match mark_offsets f.f_trace with
                 | [] -> false
                 | offs ->
                   (* need a mark well before the end so a resend tail exists *)
                   List.exists
                     (fun o -> o * 10 < String.length f.f_trace * 8)
                     offs)
        in
        List.iteri
          (fun i (f : fixture) ->
            List.iter
              (fun between ->
                incr cases;
                incr kill_resume;
                let label =
                  Printf.sprintf "kill-resume %s (%s marks)" f.f_name
                    (if between then "between" else "at")
                in
                let offs = mark_offsets f.f_trace in
                let usable =
                  List.filter (fun o -> o * 10 < String.length f.f_trace * 8) offs
                in
                let mark = List.nth usable (List.length usable / 2) in
                let cut =
                  if between then
                    (* halfway into the line after the mark *)
                    let rest = String.length f.f_trace - mark in
                    let next_nl =
                      match String.index_from_opt f.f_trace mark '\n' with
                      | Some j -> j - mark + 1
                      | None -> rest
                    in
                    min (String.length f.f_trace - 1) (mark + max 1 (next_nl / 2))
                  else mark
                in
                let name = Printf.sprintf "kr-%d-%b" i between in
                let ckdir = Filename.concat tmp (name ^ "-ckpt") in
                match
                  daemon name
                    [ "--shards"; "1"; "--checkpoint-dir"; ckdir;
                      "--checkpoint-every"; "16"; "--resume" ]
                with
                | Error e -> violate (Some f) "%s: daemon: %s" label e
                | Ok dk ->
                  let id = "resume-" ^ name in
                  (match Client.raw_open dk.d_addr ~id with
                   | Error e ->
                     violate (Some f) "%s: open: %s" label e;
                     sigkill_daemon dk
                   | Ok (fd, off0) ->
                     if off0 <> 0 then
                       violate (Some f) "%s: fresh session offered offset %d" label off0;
                     (match Client.raw_send fd (String.sub f.f_trace 0 cut) with
                      | Error e ->
                        violate (Some f) "%s: prefix send: %s" label e;
                        (try Unix.close fd with Unix.Unix_error _ -> ());
                        sigkill_daemon dk
                      | Ok () ->
                        (* wait for a checkpoint covering (part of) the prefix *)
                        let got_ckpt =
                          poll ~attempts:60 ~delay:0.1 (fun () ->
                              match Client.metrics dk.d_addr with
                              | Error _ -> false
                              | Ok snap ->
                                (match Client.session_row snap id with
                                 | Some kv ->
                                   (match List.assoc_opt "ckpt_consumed" kv with
                                    | Some n -> n > 0
                                    | None -> false)
                                 | None -> false))
                        in
                        if not got_ckpt then
                          violate (Some f) "%s: no checkpoint observed before the kill"
                            label;
                        (* let a trailing checkpoint land, then murder it *)
                        Unix.sleepf 0.2;
                        sigkill_daemon dk;
                        (try Unix.close fd with Unix.Unix_error _ -> ());
                        (match
                           daemon (name ^ "-2")
                             [ "--shards"; "1"; "--checkpoint-dir"; ckdir;
                               "--checkpoint-every"; "16"; "--resume" ]
                         with
                         | Error e -> violate (Some f) "%s: restart: %s" label e
                         | Ok dk2 ->
                           (match
                              Client.session dk2.d_addr ~id ~trace:f.f_trace
                            with
                            | Error e -> violate (Some f) "%s: resumed session: %s" label e
                            | Ok o ->
                              if got_ckpt && o.Client.resumed_from = 0 then
                                violate (Some f)
                                  "%s: checkpointed session resumed from offset 0"
                                  label;
                              if o.Client.resumed_from > cut then
                                violate (Some f)
                                  "%s: resume offset %d beyond the %d bytes ever sent"
                                  label o.Client.resumed_from cut;
                              (match
                                 check_outcome ~what:label f o
                               with
                               | Ok () -> ()
                               | Error m ->
                                 violate (Some f) "%s (after resume)" m);
                              let ck =
                                Filename.concat ckdir (id ^ ".ckpt")
                              in
                              if Sys.file_exists ck then
                                violate (Some f)
                                  "%s: checkpoint file survives completion" label);
                           (match stop_daemon dk2 with
                            | Ok () -> ()
                            | Error e ->
                              violate None "%s: graceful stop failed: %s" label e)))))
              [ false; true ])
          (match resumable with
           | [] -> []
           | l -> [ List.hd l ] @ (if List.length l > 1 then [ List.nth l (List.length l - 1) ] else []));
        (* --- graceful stop of the main daemon --- *)
        (match stop_daemon d with
         | Ok () -> ()
         | Error e -> violate None "main daemon: graceful stop failed: %s" e);
        Ok ()
    in
    (* ship artifacts for any violation *)
    (match (log_dir, !violations) with
     | Some dir, _ :: _ ->
       (try
          (match Unix.mkdir dir 0o755 with
           | () -> ()
           | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
          List.iter
            (fun l -> copy_file l (Filename.concat dir (Filename.basename l)))
            !logs;
          List.iteri
            (fun i (n, data) ->
              write_file
                (Filename.concat dir
                   (Printf.sprintf "failing-%d-%s.trace" i
                      (String.map (fun c -> if c = '/' then '.' else c) n)))
                data)
            !artifacts
        with Unix.Unix_error _ -> ())
     | _ -> ());
    match result with
    | Error _ as e -> e
    | Ok () ->
      Ok
        {
          c_cases = !cases;
          c_baseline = !baseline;
          c_corrupt = !corrupt;
          c_corrupt_degraded = !corrupt_degraded;
          c_corrupt_refused = !corrupt_refused;
          c_kill_conn = !kill_conn;
          c_slowloris = !slowloris;
          c_dup_id = !dup_id;
          c_kill_resume = !kill_resume;
          c_violations = List.rev !violations;
        }
  end
