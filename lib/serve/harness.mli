(** Load generator and chaos campaign for the serve daemon.

    Both harnesses compare what the server says against a local
    reference computed with the very same salvage pipeline
    ([Racedetect.Stream.analyze_salvage_string] rendered through
    {!Protocol.render_verdict_report}), so every assertion is
    byte-for-byte, not approximate. *)

type fixture = {
  f_name : string;     (** program + seed label *)
  f_trace : string;    (** v2 stream-layout trace text *)
  f_report : string;   (** reference report bytes *)
  f_cls : Protocol.outcome_class;
  f_events : int;
}

val fixtures :
  ?seeds_per_program:int ->
  (string * Minilang.Ast.program) list ->
  (fixture array, string) result
(** Simulate each program under the WO model with adversarial schedules
    (one execution per seed), encode as v2 stream traces, and compute
    the reference verdicts. *)

(** {2 Load generation} *)

type load_report = {
  l_sessions : int;
  l_events : int;
  l_bytes : int;
  l_wall : float;
  l_events_per_sec : float;
  l_failures : string list;  (** verdict mismatches and transport errors *)
}

val load :
  ?concurrency:int ->
  ?chunk:int ->
  sessions:int ->
  fixtures:fixture array ->
  Server.addr ->
  load_report
(** Replay [sessions] interleaved sessions (cycling over the fixtures)
    against a running daemon with [concurrency] blocking clients
    (default 8) and assert every verdict and report byte-identical to
    its reference.  Failures are collected, never raised. *)

val pp_load : Format.formatter -> load_report -> unit

(** {2 Chaos campaign} *)

type chaos_report = {
  c_cases : int;
  c_baseline : int;
  c_corrupt : int;
  c_corrupt_degraded : int;
  c_corrupt_refused : int;
  c_kill_conn : int;
  c_slowloris : int;
  c_dup_id : int;
  c_kill_resume : int;
  c_violations : string list;
}

val pp_chaos : Format.formatter -> chaos_report -> unit
val chaos_exit_code : chaos_report -> int

val chaos :
  exe:string ->
  ?seeds:int ->
  ?log_dir:string option ->
  ?log:(string -> unit) ->
  fixtures:fixture array ->
  unit ->
  (chaos_report, string) result
(** Spawn real daemon processes from [exe] (the racedet binary) in a
    fresh temp directory and drive the full fault matrix against them:

    - {b baseline/interleave}: all fixtures streamed concurrently —
      every verdict byte-identical to its reference (this is also the
      cross-talk check: any leakage between engines changes a report).
    - {b corrupt frames}: per seed and fixture, damaged traces
      ({!Tracing.Corrupt}) must reproduce the local salvage verdict
      byte-for-byte — lossy sessions are never certified race-free —
      and refusals must map to [error], with the server staying live.
    - {b connection kills}: clients dropped mid-stream; the server must
      survive and fresh sessions must still verify exactly.
    - {b slowloris}: a trickle writer against a daemon with a tight
      session timeout must be aborted with a structured reason, never
      certified.
    - {b duplicate session ids}: the second claimant is refused, the
      first completes exactly.
    - {b SIGKILL + resume}: sessions cut at and between epoch marks,
      the daemon SIGKILLed and restarted with [--resume]; reconnecting
      clients must be offered a non-zero offset (when a mark preceded
      the cut) and the final report must be byte-identical to the
      uninterrupted reference, after which the checkpoint file is gone.

    Every broken invariant lands in [c_violations] (and, when [log_dir]
    is set, the server log and offending traces are copied there).
    [Error] is returned only when the campaign cannot run at all. *)
