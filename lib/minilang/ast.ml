type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type expr =
  | Int of int
  | Reg of string
  | Neg of expr
  | Not of expr
  | Bin of binop * expr * expr

type instr =
  | Set of string * expr
  | Load of { reg : string; addr : expr; label : string option }
  | Store of { addr : expr; value : expr; label : string option }
  | Sync_load of { reg : string; addr : expr; label : string option }
  | Sync_store of { addr : expr; value : expr; label : string option }
  | Test_and_set of { reg : string; addr : expr; label : string option }
  | Unset of { addr : expr; label : string option }
  | Fetch_and_add of { reg : string; addr : expr; amount : expr; label : string option }
  | Fence of { label : string option }
  | If of expr * instr list * instr list
  | While of expr * instr list

type program = {
  name : string;
  n_locs : int;
  init : (int * int) list;
  procs : instr list array;
  symbols : (string * int) list;
}

type step = Nth of int | Then | Else | Body
type path = step list

let pp_path ppf = function
  | [] -> Format.pp_print_string ppf "-"
  | path ->
    let pp_step ppf = function
      | Nth i -> Format.pp_print_int ppf i
      | Then -> Format.pp_print_string ppf "then"
      | Else -> Format.pp_print_string ppf "else"
      | Body -> Format.pp_print_string ppf "body"
    in
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_char ppf '.')
      pp_step ppf path

let path_to_string p = Format.asprintf "%a" pp_path p

(* Source order: a path earlier in the program text compares smaller.
   Sibling instructions compare by index; a block prefix precedes anything
   inside it; [Then] arms precede [Else] arms of the same [If]. *)
let compare_path (p : path) (q : path) =
  let rank = function Nth i -> i | Then -> 0 | Else -> 1 | Body -> 0 in
  let rec go p q =
    match (p, q) with
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | s :: p', t :: q' ->
      let c = compare (rank s) (rank t) in
      if c <> 0 then c else go p' q'
  in
  go p q

let loc_name p l =
  match List.find_opt (fun (_, l') -> l' = l) p.symbols with
  | Some (n, _) -> n
  | None -> string_of_int l

(* Validation walks every instruction carrying its path so errors can say
   where the offence sits, not just that one exists. *)

let rec check_expr ~proc ~path = function
  | Int _ | Reg _ -> Ok ()
  | Neg e | Not e -> check_expr ~proc ~path e
  | Bin (op, a, b) -> (
    match (op, b) with
    | Div, Int 0 ->
      Error
        (Printf.sprintf "P%d at %s: division by constant zero" proc
           (path_to_string path))
    | Mod, Int 0 ->
      Error
        (Printf.sprintf "P%d at %s: modulo by constant zero" proc
           (path_to_string path))
    | _ -> (
      match check_expr ~proc ~path a with
      | Error _ as e -> e
      | Ok () -> check_expr ~proc ~path b))

let check_addr ~n_locs ~proc ~path = function
  | Int a when a < 0 || a >= n_locs ->
    Error
      (Printf.sprintf
         "P%d at %s: constant address %d outside the location space [0, %d)"
         proc (path_to_string path) a n_locs)
  | _ -> Ok () (* computed addresses are checked at run time *)

let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

let rec check_block ~n_locs ~proc ~prefix instrs =
  List.fold_left
    (fun (i, acc) instr ->
      let acc =
        match acc with
        | Error _ -> acc
        | Ok () -> check_instr ~n_locs ~proc ~path:(prefix @ [ Nth i ]) instr
      in
      (i + 1, acc))
    (0, Ok ()) instrs
  |> snd

and check_instr ~n_locs ~proc ~path instr =
  let expr = check_expr ~proc ~path in
  let addr = check_addr ~n_locs ~proc ~path in
  match instr with
  | Set (_, e) -> expr e
  | Fence _ -> Ok ()
  | Load { addr = a; _ } | Sync_load { addr = a; _ }
  | Test_and_set { addr = a; _ } ->
    let* () = expr a in
    addr a
  | Unset { addr = a; _ } ->
    let* () = expr a in
    addr a
  | Store { addr = a; value; _ } | Sync_store { addr = a; value; _ } ->
    let* () = expr a in
    let* () = expr value in
    addr a
  | Fetch_and_add { addr = a; amount; _ } ->
    let* () = expr a in
    let* () = expr amount in
    addr a
  | If (c, t, f) ->
    let* () = expr c in
    let* () = check_block ~n_locs ~proc ~prefix:(path @ [ Then ]) t in
    check_block ~n_locs ~proc ~prefix:(path @ [ Else ]) f
  | While (c, body) ->
    let* () = expr c in
    check_block ~n_locs ~proc ~prefix:(path @ [ Body ]) body

let validate p =
  if Array.length p.procs = 0 then Error "program has no processors"
  else if p.n_locs <= 0 then Error "program has no memory locations"
  else
    match List.find_opt (fun (l, _) -> l < 0 || l >= p.n_locs) p.init with
    | Some (l, _) ->
      Error
        (Printf.sprintf
           "initialization of mem[%d] outside the location space [0, %d)" l
           p.n_locs)
    | None ->
      let rec procs i =
        if i >= Array.length p.procs then Ok ()
        else
          match
            check_block ~n_locs:p.n_locs ~proc:i ~prefix:[] p.procs.(i)
          with
          | Error _ as e -> e
          | Ok () -> procs (i + 1)
      in
      procs 0

let binop_symbol = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "&&" | Or -> "||"

let rec pp_expr ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Reg r -> Format.pp_print_string ppf r
  | Neg e -> Format.fprintf ppf "-(%a)" pp_expr e
  | Not e -> Format.fprintf ppf "!(%a)" pp_expr e
  | Bin (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_symbol op) pp_expr b

let rec pp_instr ppf = function
  | Set (r, e) -> Format.fprintf ppf "%s := %a" r pp_expr e
  | Load { reg; addr; _ } -> Format.fprintf ppf "%s := mem[%a]" reg pp_expr addr
  | Store { addr; value; _ } ->
    Format.fprintf ppf "mem[%a] := %a" pp_expr addr pp_expr value
  | Sync_load { reg; addr; _ } ->
    Format.fprintf ppf "%s := acquire mem[%a]" reg pp_expr addr
  | Sync_store { addr; value; _ } ->
    Format.fprintf ppf "release mem[%a] := %a" pp_expr addr pp_expr value
  | Test_and_set { reg; addr; _ } ->
    Format.fprintf ppf "%s := test&set(mem[%a])" reg pp_expr addr
  | Unset { addr; _ } -> Format.fprintf ppf "unset(mem[%a])" pp_expr addr
  | Fetch_and_add { reg; addr; amount; _ } ->
    Format.fprintf ppf "%s := fetch&add(mem[%a], %a)" reg pp_expr addr pp_expr amount
  | Fence _ -> Format.pp_print_string ppf "fence"
  | If (c, t, f) ->
    Format.fprintf ppf "@[<v 2>if %a then%a%a@]" pp_expr c pp_block t
      (fun ppf -> function
        | [] -> ()
        | f -> Format.fprintf ppf "@;<1 -2>else%a" pp_block f)
      f
  | While (c, body) ->
    Format.fprintf ppf "@[<v 2>while %a do%a@]" pp_expr c pp_block body

and pp_block ppf instrs =
  List.iter (fun i -> Format.fprintf ppf "@,%a" pp_instr i) instrs

let pp_program ppf p =
  Format.fprintf ppf "@[<v>program %s (%d locations)" p.name p.n_locs;
  if p.symbols <> [] then begin
    Format.fprintf ppf "@,symbols:";
    List.iter (fun (n, l) -> Format.fprintf ppf " %s=%d" n l) p.symbols
  end;
  if p.init <> [] then begin
    Format.fprintf ppf "@,init:";
    List.iter (fun (l, v) -> Format.fprintf ppf " mem[%d]=%d" l v) p.init
  end;
  Array.iteri
    (fun i instrs ->
      Format.fprintf ppf "@,@[<v 2>P%d:%a@]" i pp_block instrs)
    p.procs;
  Format.fprintf ppf "@]"
