type token =
  | IDENT of string
  | INT of int
  | ASSIGN
  | EQUALS
  | LPAREN | RPAREN
  | LBRACE | RBRACE
  | LBRACKET | RBRACKET
  | COMMA
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | EQEQ | NEQ | LT | LE | GT | GE
  | ANDAND | OROR | BANG
  | KW_PROGRAM | KW_ARRAY | KW_LOC | KW_PROC
  | KW_IF | KW_ELSE | KW_WHILE
  | KW_ACQUIRE | KW_RELEASE | KW_UNSET | KW_TAS | KW_FAA | KW_FENCE | KW_MEM
  | EOF

type located = { token : token; line : int; col : int }

exception Error of string

let fail line col fmt =
  Printf.ksprintf
    (fun msg ->
      raise (Error (Printf.sprintf "line %d, column %d: %s" line col msg)))
    fmt

let keyword = function
  | "program" -> Some KW_PROGRAM
  | "array" -> Some KW_ARRAY
  | "loc" -> Some KW_LOC
  | "proc" -> Some KW_PROC
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "acquire" -> Some KW_ACQUIRE
  | "release" -> Some KW_RELEASE
  | "unset" -> Some KW_UNSET
  | "tas" -> Some KW_TAS
  | "faa" -> Some KW_FAA
  | "fence" -> Some KW_FENCE
  | "mem" -> Some KW_MEM
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let bol = ref 0 in
  (* column of the byte at offset [i], 1-based *)
  let col i = i - !bol + 1 in
  let out = ref [] in
  let rec go i =
    let emit token = out := { token; line = !line; col = col i } :: !out in
    if i >= n then emit EOF
    else
      let c = src.[i] in
      match c with
      | '\n' -> incr line; bol := i + 1; go (i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '#' ->
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip i)
      | ':' when i + 1 < n && src.[i + 1] = '=' -> emit ASSIGN; go (i + 2)
      | '=' when i + 1 < n && src.[i + 1] = '=' -> emit EQEQ; go (i + 2)
      | '=' -> emit EQUALS; go (i + 1)
      | '!' when i + 1 < n && src.[i + 1] = '=' -> emit NEQ; go (i + 2)
      | '!' -> emit BANG; go (i + 1)
      | '<' when i + 1 < n && src.[i + 1] = '=' -> emit LE; go (i + 2)
      | '<' -> emit LT; go (i + 1)
      | '>' when i + 1 < n && src.[i + 1] = '=' -> emit GE; go (i + 2)
      | '>' -> emit GT; go (i + 1)
      | '&' when i + 1 < n && src.[i + 1] = '&' -> emit ANDAND; go (i + 2)
      | '|' when i + 1 < n && src.[i + 1] = '|' -> emit OROR; go (i + 2)
      | '(' -> emit LPAREN; go (i + 1)
      | ')' -> emit RPAREN; go (i + 1)
      | '{' -> emit LBRACE; go (i + 1)
      | '}' -> emit RBRACE; go (i + 1)
      | '[' -> emit LBRACKET; go (i + 1)
      | ']' -> emit RBRACKET; go (i + 1)
      | ',' -> emit COMMA; go (i + 1)
      | ';' -> go (i + 1)  (* statement separators are optional noise *)
      | '+' -> emit PLUS; go (i + 1)
      | '-' -> emit MINUS; go (i + 1)
      | '*' -> emit STAR; go (i + 1)
      | '/' -> emit SLASH; go (i + 1)
      | '%' -> emit PERCENT; go (i + 1)
      | c when is_digit c ->
        let rec num j = if j < n && is_digit src.[j] then num (j + 1) else j in
        let j = num i in
        (match int_of_string_opt (String.sub src i (j - i)) with
         | Some v -> emit (INT v)
         | None -> fail !line (col i) "malformed number");
        go j
      | c when is_ident_start c ->
        let rec word j = if j < n && is_ident_char src.[j] then word (j + 1) else j in
        let j = word i in
        let w = String.sub src i (j - i) in
        (match keyword w with Some k -> emit k | None -> emit (IDENT w));
        go j
      | c -> fail !line (col i) "unexpected character %C" c
  in
  go 0;
  List.rev !out

let describe = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT v -> Printf.sprintf "number %d" v
  | ASSIGN -> "':='"
  | EQUALS -> "'='"
  | LPAREN -> "'('" | RPAREN -> "')'"
  | LBRACE -> "'{'" | RBRACE -> "'}'"
  | LBRACKET -> "'['" | RBRACKET -> "']'"
  | COMMA -> "','"
  | PLUS -> "'+'" | MINUS -> "'-'" | STAR -> "'*'" | SLASH -> "'/'" | PERCENT -> "'%'"
  | EQEQ -> "'=='" | NEQ -> "'!='" | LT -> "'<'" | LE -> "'<='" | GT -> "'>'" | GE -> "'>='"
  | ANDAND -> "'&&'" | OROR -> "'||'" | BANG -> "'!'"
  | KW_PROGRAM -> "'program'" | KW_ARRAY -> "'array'" | KW_LOC -> "'loc'"
  | KW_PROC -> "'proc'" | KW_IF -> "'if'" | KW_ELSE -> "'else'" | KW_WHILE -> "'while'"
  | KW_ACQUIRE -> "'acquire'" | KW_RELEASE -> "'release'" | KW_UNSET -> "'unset'"
  | KW_TAS -> "'tas'" | KW_FAA -> "'faa'" | KW_FENCE -> "'fence'" | KW_MEM -> "'mem'"
  | EOF -> "end of input"
