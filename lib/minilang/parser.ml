exception Error of string

type state = {
  mutable toks : Lexer.located list;
  mutable locs : (string * int) list;  (* name -> address *)
  mutable proc_name : string;          (* for generated labels *)
}

let fail (t : Lexer.located) fmt =
  Printf.ksprintf
    (fun msg ->
      raise
        (Error (Printf.sprintf "line %d, column %d: %s" t.Lexer.line t.Lexer.col msg)))
    fmt

let peek st =
  match st.toks with
  | t :: _ -> t
  | [] -> { Lexer.token = Lexer.EOF; line = 0; col = 0 }

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let next st =
  let t = peek st in
  advance st;
  t

let expect st token =
  let t = next st in
  if t.Lexer.token <> token then
    fail t "expected %s, found %s" (Lexer.describe token)
      (Lexer.describe t.Lexer.token)

let expect_ident st =
  let t = next st in
  match t.Lexer.token with
  | Lexer.IDENT s -> (s, t)
  | other -> fail t "expected an identifier, found %s" (Lexer.describe other)

let expect_int st =
  let t = next st in
  match t.Lexer.token with
  | Lexer.INT v -> v
  | Lexer.MINUS -> (
    match (next st).Lexer.token with
    | Lexer.INT v -> -v
    | other -> fail t "expected a number, found %s" (Lexer.describe other))
  | other -> fail t "expected a number, found %s" (Lexer.describe other)

let is_loc st name = List.mem_assoc name st.locs
let loc_addr st name = List.assoc name st.locs

(* -- expressions (registers and constants only) ---------------------- *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if (peek st).Lexer.token = Lexer.OROR then begin
    advance st;
    Ast.Bin (Ast.Or, lhs, parse_or st)
  end
  else lhs

and parse_and st =
  let lhs = parse_cmp st in
  if (peek st).Lexer.token = Lexer.ANDAND then begin
    advance st;
    Ast.Bin (Ast.And, lhs, parse_and st)
  end
  else lhs

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match (peek st).Lexer.token with
    | Lexer.EQEQ -> Some Ast.Eq
    | Lexer.NEQ -> Some Ast.Ne
    | Lexer.LT -> Some Ast.Lt
    | Lexer.LE -> Some Ast.Le
    | Lexer.GT -> Some Ast.Gt
    | Lexer.GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance st;
    Ast.Bin (op, lhs, parse_add st)

and parse_add st =
  let rec loop lhs =
    match (peek st).Lexer.token with
    | Lexer.PLUS -> advance st; loop (Ast.Bin (Ast.Add, lhs, parse_mul st))
    | Lexer.MINUS -> advance st; loop (Ast.Bin (Ast.Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop lhs =
    match (peek st).Lexer.token with
    | Lexer.STAR -> advance st; loop (Ast.Bin (Ast.Mul, lhs, parse_unary st))
    | Lexer.SLASH -> advance st; loop (Ast.Bin (Ast.Div, lhs, parse_unary st))
    | Lexer.PERCENT -> advance st; loop (Ast.Bin (Ast.Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  let t = peek st in
  match t.Lexer.token with
  | Lexer.MINUS -> advance st; Ast.Neg (parse_unary st)
  | Lexer.BANG -> advance st; Ast.Not (parse_unary st)
  | Lexer.INT v -> advance st; Ast.Int v
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    e
  | Lexer.IDENT name ->
    if is_loc st name then
      fail t
        "location %S used inside an expression; load it into a register first" name
    else begin
      advance st;
      Ast.Reg name
    end
  | other -> fail t "expected an expression, found %s" (Lexer.describe other)

(* -- lvalues: named location or mem[expr] ---------------------------- *)

let parse_lvalue st =
  let t = peek st in
  match t.Lexer.token with
  | Lexer.KW_MEM ->
    advance st;
    expect st Lexer.LBRACKET;
    let e = parse_expr st in
    expect st Lexer.RBRACKET;
    e
  | Lexer.IDENT name when is_loc st name -> advance st; Ast.Int (loc_addr st name)
  | other ->
    fail t "expected a memory location, found %s" (Lexer.describe other)

let looks_like_lvalue st =
  match (peek st).Lexer.token with
  | Lexer.KW_MEM -> true
  | Lexer.IDENT name -> is_loc st name
  | _ -> false

(* -- statements ------------------------------------------------------ *)

let label st line = Some (Printf.sprintf "%s:L%d" st.proc_name line)

let rec parse_block st =
  expect st Lexer.LBRACE;
  let rec stmts acc =
    if (peek st).Lexer.token = Lexer.RBRACE then begin
      advance st;
      List.rev acc
    end
    else stmts (parse_stmt st :: acc)
  in
  stmts []

and parse_stmt st =
  let t = peek st in
  let line = t.Lexer.line in
  match t.Lexer.token with
  | Lexer.KW_FENCE -> advance st; Ast.Fence { label = label st line }
  | Lexer.KW_UNSET ->
    advance st;
    Ast.Unset { addr = parse_lvalue st; label = label st line }
  | Lexer.KW_RELEASE ->
    advance st;
    let addr = parse_lvalue st in
    expect st Lexer.ASSIGN;
    Ast.Sync_store { addr; value = parse_expr st; label = label st line }
  | Lexer.KW_IF ->
    advance st;
    let c = parse_expr st in
    let then_ = parse_block st in
    let else_ =
      if (peek st).Lexer.token = Lexer.KW_ELSE then begin
        advance st;
        parse_block st
      end
      else []
    in
    Ast.If (c, then_, else_)
  | Lexer.KW_WHILE ->
    advance st;
    let c = parse_expr st in
    Ast.While (c, parse_block st)
  | Lexer.KW_MEM ->
    (* mem[e] := expr *)
    let addr = parse_lvalue st in
    expect st Lexer.ASSIGN;
    Ast.Store { addr; value = parse_expr st; label = label st line }
  | Lexer.IDENT name when is_loc st name ->
    (* store to a named location *)
    advance st;
    expect st Lexer.ASSIGN;
    Ast.Store { addr = Ast.Int (loc_addr st name); value = parse_expr st;
                label = label st line }
  | Lexer.IDENT reg ->
    advance st;
    expect st Lexer.ASSIGN;
    parse_register_rhs st reg line
  | other -> fail t "expected a statement, found %s" (Lexer.describe other)

and parse_register_rhs st reg line =
  match (peek st).Lexer.token with
  | Lexer.KW_ACQUIRE ->
    advance st;
    Ast.Sync_load { reg; addr = parse_lvalue st; label = label st line }
  | Lexer.KW_TAS ->
    advance st;
    expect st Lexer.LPAREN;
    let addr = parse_lvalue st in
    expect st Lexer.RPAREN;
    Ast.Test_and_set { reg; addr; label = label st line }
  | Lexer.KW_FAA ->
    advance st;
    expect st Lexer.LPAREN;
    let addr = parse_lvalue st in
    expect st Lexer.COMMA;
    let amount = parse_expr st in
    expect st Lexer.RPAREN;
    Ast.Fetch_and_add { reg; addr; amount; label = label st line }
  | _ when looks_like_lvalue st ->
    let load = Ast.Load { reg; addr = parse_lvalue st; label = label st line } in
    (match (peek st).Lexer.token with
     | Lexer.PLUS | Lexer.MINUS | Lexer.STAR | Lexer.SLASH | Lexer.PERCENT
     | Lexer.EQEQ | Lexer.NEQ | Lexer.LT | Lexer.LE | Lexer.GT | Lexer.GE
     | Lexer.ANDAND | Lexer.OROR ->
       fail (peek st)
         "memory cannot appear inside an expression; load it into a register first"
     | _ -> load)
  | _ -> Ast.Set (reg, parse_expr st)

(* -- top level -------------------------------------------------------- *)

let parse_program st =
  expect st Lexer.KW_PROGRAM;
  let name, _ = expect_ident st in
  let extra_locs =
    if (peek st).Lexer.token = Lexer.KW_ARRAY then begin
      advance st;
      expect_int st
    end
    else 0
  in
  let init = ref [] in
  let next_addr = ref extra_locs in
  while (peek st).Lexer.token = Lexer.KW_LOC do
    advance st;
    let lname, ltok = expect_ident st in
    if is_loc st lname then fail ltok "location %S declared twice" lname;
    st.locs <- st.locs @ [ (lname, !next_addr) ];
    if (peek st).Lexer.token = Lexer.EQUALS then begin
      advance st;
      init := (!next_addr, expect_int st) :: !init
    end;
    incr next_addr
  done;
  let procs = ref [] in
  let idx = ref 0 in
  while (peek st).Lexer.token = Lexer.KW_PROC do
    advance st;
    let pname =
      match (peek st).Lexer.token with
      | Lexer.IDENT n -> advance st; n
      | _ -> Printf.sprintf "P%d" !idx
    in
    st.proc_name <- pname;
    procs := parse_block st :: !procs;
    incr idx
  done;
  let t = peek st in
  if t.Lexer.token <> Lexer.EOF then
    fail t "unexpected %s after the last processor"
      (Lexer.describe t.Lexer.token);
  let p =
    {
      Ast.name;
      n_locs = !next_addr;
      init = List.rev !init;
      procs = Array.of_list (List.rev !procs);
      symbols = st.locs;
    }
  in
  match Ast.validate p with
  | Ok () -> p
  | Error msg -> raise (Error msg)

let parse_exn src =
  let toks =
    try Lexer.tokenize src with Lexer.Error msg -> raise (Error msg)
  in
  parse_program { toks; locs = []; proc_name = "P0" }

let parse src = try Ok (parse_exn src) with Error msg -> Result.Error msg

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | src -> parse src
  | exception Sys_error msg -> Result.Error msg

(* -- printing back to concrete syntax -------------------------------- *)

let to_source (p : Ast.program) =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let loc_of_addr a = List.find_opt (fun (_, a') -> a' = a) p.Ast.symbols in
  let rec expr = function
    | Ast.Int v -> string_of_int v
    | Ast.Reg r -> r
    | Ast.Neg e -> Printf.sprintf "(-%s)" (expr e)
    | Ast.Not e -> Printf.sprintf "(!%s)" (expr e)
    | Ast.Bin (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr a) (Ast.binop_symbol op) (expr b)
  in
  let lvalue = function
    | Ast.Int a -> (
      match loc_of_addr a with
      | Some (name, _) -> name
      | None -> Printf.sprintf "mem[%d]" a)
    | e -> Printf.sprintf "mem[%s]" (expr e)
  in
  let rec stmt indent s =
    let pad = String.make indent ' ' in
    match s with
    | Ast.Set (r, e) -> out "%s%s := %s\n" pad r (expr e)
    | Ast.Load { reg; addr; _ } -> out "%s%s := %s\n" pad reg (lvalue addr)
    | Ast.Store { addr; value; _ } -> out "%s%s := %s\n" pad (lvalue addr) (expr value)
    | Ast.Sync_load { reg; addr; _ } ->
      out "%s%s := acquire %s\n" pad reg (lvalue addr)
    | Ast.Sync_store { addr; value; _ } ->
      out "%srelease %s := %s\n" pad (lvalue addr) (expr value)
    | Ast.Test_and_set { reg; addr; _ } -> out "%s%s := tas(%s)\n" pad reg (lvalue addr)
    | Ast.Unset { addr; _ } -> out "%sunset %s\n" pad (lvalue addr)
    | Ast.Fetch_and_add { reg; addr; amount; _ } ->
      out "%s%s := faa(%s, %s)\n" pad reg (lvalue addr) (expr amount)
    | Ast.Fence _ -> out "%sfence\n" pad
    | Ast.If (c, t, f) ->
      out "%sif %s {\n" pad (expr c);
      List.iter (stmt (indent + 2)) t;
      if f <> [] then begin
        out "%s} else {\n" pad;
        List.iter (stmt (indent + 2)) f
      end;
      out "%s}\n" pad
    | Ast.While (c, body) ->
      out "%swhile %s {\n" pad (expr c);
      List.iter (stmt (indent + 2)) body;
      out "%s}\n" pad
  in
  List.iter
    (fun (addr, _) ->
      if not (List.mem_assoc addr (List.map (fun (n, a) -> (a, n)) p.Ast.symbols)) then
        invalid_arg "Parser.to_source: initialized anonymous location has no syntax")
    p.Ast.init;
  out "program %s\n" p.Ast.name;
  let n_named = List.length p.Ast.symbols in
  let extra = p.Ast.n_locs - n_named in
  if extra > 0 then out "array %d\n" extra;
  List.iter
    (fun (name, addr) ->
      match List.assoc_opt addr p.Ast.init with
      | Some v -> out "loc %s = %d\n" name v
      | None -> out "loc %s\n" name)
    p.Ast.symbols;
  Array.iteri
    (fun i instrs ->
      out "proc P%d {\n" i;
      List.iter (stmt 2) instrs;
      out "}\n")
    p.Ast.procs;
  Buffer.contents buf
