open Build

let fig1a =
  program ~name:"fig1a" ~locs:[ "x"; "y" ]
    [
      [ store "x" (i 1) ~label:"P1:write-x"; store "y" (i 1) ~label:"P1:write-y" ];
      [ load "r1" "y" ~label:"P2:read-y"; load "r2" "x" ~label:"P2:read-x" ];
    ]

let fig1b =
  program ~name:"fig1b" ~locs:[ "x"; "y"; "s" ] ~init:[ ("s", 1) ]
    [
      [
        store "x" (i 1) ~label:"P1:write-x";
        store "y" (i 1) ~label:"P1:write-y";
        unset "s" ~label:"P1:unset-s";
      ];
      spin_lock "s" ~label:"P2:test&set-s"
      @ [ load "r1" "y" ~label:"P2:read-y"; load "r2" "x" ~label:"P2:read-x" ];
    ]

let queue_bug ?(region = 100) ?stale () =
  let stale =
    match stale with
    | Some s -> s
    | None -> max 1 (37 * region / 100)
  in
  if stale < 0 || stale + region > 3 * region then
    invalid_arg "Programs.queue_bug: stale region out of bounds";
  (* work array: locations 0 .. 3*region-1; control locations after *)
  program ~name:"queue_bug" ~extra_locs:(3 * region)
    ~locs:[ "Q"; "QEmpty"; "S" ]
    ~init:[ ("Q", stale); ("QEmpty", 1) ]
    [
      (* P1: enqueue the address of the second region, clear QEmpty,
         leave the critical section — but the Test&Set that should have
         opened it is missing. *)
      [
        set "addr" (i region);
        store "Q" (r "addr") ~label:"P1:enqueue";
        store "QEmpty" (i 0) ~label:"P1:clear-qempty";
        unset "S" ~label:"P1:unset-S";
      ];
      (* P2: check for work, dequeue, work on [addr, addr+region) *)
      [
        load "empty" "QEmpty" ~label:"P2:read-qempty";
        if_
          (r "empty" =: i 0)
          ([ load "addr" "Q" ~label:"P2:dequeue"; unset "S" ~label:"P2:unset-S" ]
           @ for_ "i" ~from:(r "addr") ~below:(r "addr" +: i region)
               [
                 load_at "tmp" (r "i") ~label:"P2:work-read";
                 store_at (r "i") (r "tmp" +: i 1) ~label:"P2:work-write";
               ])
          [];
      ];
      (* P3: work independently on region [0, region) *)
      for_ "i" ~from:(i 0) ~below:(i region)
        [ store_at (r "i") (r "i" +: i 1) ~label:"P3:work-write" ];
    ]

let dekker =
  program ~name:"dekker" ~locs:[ "x"; "y" ]
    [
      [ store "x" (i 1) ~label:"P1:write-x"; load "r1" "y" ~label:"P1:read-y" ];
      [ store "y" (i 1) ~label:"P2:write-y"; load "r2" "x" ~label:"P2:read-x" ];
    ]

let dekker_fenced =
  program ~name:"dekker_fenced" ~locs:[ "x"; "y" ]
    [
      [
        store "x" (i 1) ~label:"P1:write-x";
        fence () ~label:"P1:fence";
        load "r1" "y" ~label:"P1:read-y";
      ];
      [
        store "y" (i 1) ~label:"P2:write-y";
        fence () ~label:"P2:fence";
        load "r2" "x" ~label:"P2:read-x";
      ];
    ]

(* The smallest coherence probe: one processor stores and immediately
   reloads the same location.  Race-free (single processor), so every
   sane variant must return 1 — only read=bypass hardware can lose its
   own write. *)
let read_own_write =
  program ~name:"read_own_write" ~locs:[ "x" ]
    [ [ store "x" (i 1) ~label:"P1:write-x"; load "r" "x" ~label:"P1:read-x" ] ]

let mp_data_flag =
  program ~name:"mp_data_flag" ~locs:[ "data"; "flag" ]
    [
      [ store "data" (i 42) ~label:"P1:write-data"; store "flag" (i 1) ~label:"P1:write-flag" ];
      [
        load "f" "flag" ~label:"P2:read-flag";
        if_ (r "f" =: i 1) [ load "d" "data" ~label:"P2:read-data" ] [];
      ];
    ]

let mp_release_acquire =
  program ~name:"mp_release_acquire" ~locs:[ "data"; "flag" ]
    [
      [
        store "data" (i 42) ~label:"P1:write-data";
        release_store "flag" (i 1) ~label:"P1:release-flag";
      ];
      [
        acquire_load "f" "flag" ~label:"P2:acquire-flag";
        if_ (r "f" =: i 1) [ load "d" "data" ~label:"P2:read-data" ] [];
      ];
    ]

let handoff_update =
  program ~name:"handoff_update" ~locs:[ "data"; "flag" ]
    [
      [
        store "data" (i 7) ~label:"P1:write-data";
        release_store "flag" (i 1) ~label:"P1:release-flag";
      ];
      [
        acquire_load "f" "flag" ~label:"P2:acquire-flag";
        if_ (r "f" =: i 1)
          [
            load "d" "data" ~label:"P2:read-data";
            store "data" (r "d" +: i 1) ~label:"P2:update-data";
          ]
          [];
      ];
    ]

let guarded_handoff =
  program ~name:"guarded_handoff" ~locs:[ "x"; "flag" ] ~init:[ ("flag", 1) ]
    [
      [ store "x" (i 42) ~label:"P1:write-x"; unset "flag" ~label:"P1:unset-flag" ];
      [
        test_and_set "t" "flag" ~label:"P2:test&set-flag";
        if_ (r "t" =: i 0) [ load "v" "x" ~label:"P2:read-x" ] [];
      ];
    ]

let unguarded_handoff =
  program ~name:"unguarded_handoff" ~locs:[ "x"; "flag" ] ~init:[ ("flag", 1) ]
    [
      [ store "x" (i 42) ~label:"P1:write-x"; unset "flag" ~label:"P1:unset-flag" ];
      [
        test_and_set "t" "flag" ~label:"P2:test&set-flag";
        load "v" "x" ~label:"P2:read-x";
      ];
    ]

let critical_increment ~who =
  spin_lock "lock" ~label:(who ^ ":lock")
  @ [
      load "c" "counter" ~label:(who ^ ":read-counter");
      store "counter" (r "c" +: i 1) ~label:(who ^ ":write-counter");
      unset "lock" ~label:(who ^ ":unlock");
    ]

let counter_locked =
  program ~name:"counter_locked" ~locs:[ "counter"; "lock" ]
    [ critical_increment ~who:"P1"; critical_increment ~who:"P2" ]

let racy_increment ~who =
  [
    load "c" "counter" ~label:(who ^ ":read-counter");
    store "counter" (r "c" +: i 1) ~label:(who ^ ":write-counter");
  ]

let counter_racy =
  program ~name:"counter_racy" ~locs:[ "counter" ]
    [ racy_increment ~who:"P1"; racy_increment ~who:"P2" ]

let disjoint =
  program ~name:"disjoint" ~locs:[ "a"; "b"; "c"; "d" ]
    [
      [ store "a" (i 1); store "b" (i 2); load "ra" "a" ];
      [ store "c" (i 3); store "d" (i 4); load "rc" "c" ];
    ]

(* Peterson's algorithm with data operations only: flags, turn, and the
   critical-section counter all race on weak hardware. *)
let peterson =
  let entry ~me ~other ~turn_val =
    let my_flag = if me = 0 then "flag0" else "flag1" in
    let other_flag = if other = 0 then "flag0" else "flag1" in
    let tag fmt = Printf.sprintf fmt me in
    [
      store my_flag (i 1) ~label:(tag "P%d:flag-up");
      store "turn" (i turn_val) ~label:(tag "P%d:turn");
      (* wait while (other_flag = 1 && turn = turn_val) *)
      set "_spin" (i 1);
      while_
        (r "_spin" =: i 1)
        [
          load "_of" other_flag ~label:(tag "P%d:read-other-flag");
          load "_tn" "turn" ~label:(tag "P%d:read-turn");
          if_
            (Ast.Bin (Ast.And, r "_of" =: i 1, r "_tn" =: i turn_val))
            []
            [ set "_spin" (i 0) ];
        ];
      load "c" "counter" ~label:(tag "P%d:cs-read");
      store "counter" (r "c" +: i 1) ~label:(tag "P%d:cs-write");
      store my_flag (i 0) ~label:(tag "P%d:flag-down");
    ]
  in
  program ~name:"peterson" ~locs:[ "flag0"; "flag1"; "turn"; "counter" ]
    [ entry ~me:0 ~other:1 ~turn_val:1; entry ~me:1 ~other:0 ~turn_val:0 ]

(* Double-checked lazy initialization. *)
let lazy_init =
  let user ~me =
    let tag fmt = Printf.sprintf fmt me in
    [
      load "ini" "init" ~label:(tag "P%d:fast-check");
      if_
        (r "ini" =: i 0)
        (spin_lock "lock" ~label:(tag "P%d:lock")
         @ [
             load "ini2" "init" ~label:(tag "P%d:slow-check");
             if_
               (r "ini2" =: i 0)
               [
                 store "payload" (i 42) ~label:(tag "P%d:init-payload");
                 store "init" (i 1) ~label:(tag "P%d:publish");
               ]
               [];
             unset "lock" ~label:(tag "P%d:unlock");
           ])
        [];
      load "v" "payload" ~label:(tag "P%d:use");
    ]
  in
  program ~name:"lazy_init" ~locs:[ "payload"; "init"; "lock" ]
    [ user ~me:0; user ~me:1 ]

(* A correct two-phase barrier: arrivals counted under a lock, the gate
   opened by the last arriver's Unset and awaited with acquire spins. *)
let barrier_phases ?(n_procs = 3) () =
  let worker ~me =
    let tag fmt = Printf.sprintf fmt me in
    [ store_at (i me) (i (100 + me)) ~label:(tag "P%d:phase1-write") ]
    @ spin_lock "lock" ~label:(tag "P%d:lock")
    @ [
        load "c" "count" ~label:(tag "P%d:count-read");
        store "count" (r "c" +: i 1) ~label:(tag "P%d:count-write");
        if_ (r "c" +: i 1 =: i n_procs) [ unset "gate" ~label:(tag "P%d:open-gate") ] [];
        unset "lock" ~label:(tag "P%d:unlock");
        (* await the gate with acquire loads (pairs with the Unset) *)
        set "g" (i 1);
        while_ (r "g" <>: i 0)
          [ acquire_load "g" "gate" ~label:(tag "P%d:await-gate") ];
        (* phase 2: read the neighbour's phase-1 slot *)
        load_at "nv" (i ((me + 1) mod n_procs)) ~label:(tag "P%d:phase2-read");
      ]
  in
  program ~name:"barrier_phases" ~extra_locs:n_procs
    ~locs:[ "count"; "lock"; "gate" ] ~init:[ ("gate", 1) ]
    (List.init n_procs (fun me -> worker ~me))

let all =
  [
    ("fig1a", fig1a);
    ("fig1b", fig1b);
    ("queue_bug", queue_bug ());
    ("dekker", dekker);
    ("dekker_fenced", dekker_fenced);
    ("read_own_write", read_own_write);
    ("mp_data_flag", mp_data_flag);
    ("mp_release_acquire", mp_release_acquire);
    ("handoff_update", handoff_update);
    ("guarded_handoff", guarded_handoff);
    ("unguarded_handoff", unguarded_handoff);
    ("counter_locked", counter_locked);
    ("counter_racy", counter_racy);
    ("disjoint", disjoint);
    ("peterson", peterson);
    ("lazy_init", lazy_init);
    ("barrier_phases", barrier_phases ());
  ]

let find name = List.assoc_opt name all
